#!/usr/bin/env python3
"""Compare two directories of BENCH_*.json reports and fail on regressions.

Usage:
    bench_diff.py <previous-dir> <current-dir> [--threshold 1.75]
                  [--min-abs-ms 5.0]

Every bench binary in this repo emits, under --json, a file of the shape

    {"bench": "<name>", "<section>": [ {"key": value, ...}, ... ], ...}

where rows mix identity fields (workload names, sizes, counts) with timing
fields. A field counts as a *timing* when its key names a time unit
("cold_ms", "time (ms)", "ns/op", "seconds", ...); everything else is
identity. Rows are matched across runs by (file, section, identity); a
matched timing regresses when

    current > previous * threshold   and   current - previous > min-abs-ms

both hold — the absolute floor keeps microsecond-scale noise from tripping
the ratio test. Ratio-style fields ("speedup", "ratio") and rows that
appear in only one run are reported informationally, never fatally, so
adding a bench or a workload does not break the diff job.

Exit code: 0 = no regressions (or nothing comparable), 1 = regressions,
2 = usage error.
"""

import argparse
import json
import math
import re
import sys
from pathlib import Path

TIMING_KEY = re.compile(r"(?:^|[_\s(/])(?:ms|ns|us|time|seconds?)\b", re.I)
RATIO_KEY = re.compile(r"speedup|ratio|x\b", re.I)


def is_timing_key(key):
    return bool(TIMING_KEY.search(key)) and not RATIO_KEY.search(key)


def as_float(value):
    """Numeric value of a row field, or None. Booleans are identity-like
    flags, and non-finite numbers (a truncated write can leave NaN/Infinity,
    which Python's json accepts) would poison both identity matching and
    the ratio math — treat all of them as non-numeric."""
    if isinstance(value, bool):
        return None
    try:
        num = float(value)
    except (TypeError, ValueError):
        return None
    return num if math.isfinite(num) else None


def load_rows(path):
    """Yields (section, identity, {timing_key: float}) for one report.

    A corrupt or truncated report — unreadable bytes, invalid JSON, or
    JSON of the wrong shape — is warned about and treated as missing, so
    one bad artifact degrades coverage instead of failing the diff job.
    """
    try:
        # ValueError covers json.JSONDecodeError and the UnicodeDecodeError
        # a binary-garbage file raises from read_text().
        data = json.loads(path.read_text())
    except (OSError, ValueError) as err:
        print(f"warning: skipping unreadable {path.name}: {err}")
        return
    if not isinstance(data, dict):
        print(f"warning: skipping {path.name}: expected a JSON object, "
              f"got {type(data).__name__}")
        return
    seen = {}
    for section, rows in data.items():
        if not isinstance(rows, list):
            continue
        for row in rows:
            if not isinstance(row, dict):
                continue
            identity_parts = []
            timings = {}
            for key, value in row.items():
                num = as_float(value)
                if is_timing_key(key) and num is not None:
                    timings[key] = num
                elif num is None or num == int(num):
                    # Strings and integer-valued fields identify the row
                    # (workload names, sizes, counts); non-integer numbers
                    # are run-dependent measurements (speedups, ratios)
                    # and would break matching across runs.
                    identity_parts.append(f"{key}={value}")
            identity = ", ".join(identity_parts)
            # Disambiguate duplicate identities by occurrence order.
            occurrence = seen.setdefault((section, identity), 0)
            seen[(section, identity)] = occurrence + 1
            if occurrence:
                identity = f"{identity} #{occurrence + 1}"
            if timings:
                yield section, identity, timings


def index_dir(directory):
    out = {}
    for path in sorted(Path(directory).glob("BENCH_*.json")):
        for section, identity, timings in load_rows(path):
            out[(path.name, section, identity)] = timings
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("previous")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=1.75,
                        help="fatal ratio of current/previous (default 1.75)")
    parser.add_argument("--min-abs-ms", type=float, default=5.0,
                        help="ignore regressions smaller than this many "
                             "units of the timing field (default 5.0)")
    args = parser.parse_args()

    # A missing, non-directory, or empty previous artifact (first run on a
    # branch or fork, or artifacts past their retention window) is not an
    # error: there is simply no baseline yet. Pass with a notice so the CI
    # log says why nothing was compared.
    previous = Path(args.previous)
    if not previous.is_dir():
        print(f"notice: no previous bench results at {args.previous} "
              "(first run or expired artifacts); nothing to compare, "
              "passing")
        return 0
    if not any(previous.glob("BENCH_*.json")):
        print(f"notice: previous bench artifact at {args.previous} is "
              "empty (first run on a fork or expired artifacts); nothing "
              "to compare, passing")
        return 0
    if not Path(args.current).is_dir():
        print(f"error: current bench directory {args.current} not found")
        return 2

    prev = index_dir(args.previous)
    cur = index_dir(args.current)
    if not prev or not cur:
        # Files existed but held no comparable rows (corrupt or
        # shape-only reports): still not a regression signal.
        print("notice: no comparable BENCH_*.json rows on one side; "
              "passing")
        return 0

    regressions = []
    improvements = []
    compared = 0
    unmatched_cur = sorted(set(cur) - set(prev))
    unmatched_prev = sorted(set(prev) - set(cur))
    for key, cur_timings in sorted(cur.items()):
        prev_timings = prev.get(key)
        if prev_timings is None:
            continue
        file_name, section, identity = key
        for field, cur_value in cur_timings.items():
            prev_value = prev_timings.get(field)
            if prev_value is None or prev_value <= 0:
                continue
            compared += 1
            ratio = cur_value / prev_value
            where = f"{file_name} [{section}] {identity} :: {field}"
            if (ratio > args.threshold
                    and cur_value - prev_value > args.min_abs_ms):
                regressions.append(
                    f"  {where}: {prev_value:.2f} -> {cur_value:.2f} "
                    f"({ratio:.2f}x)")
            elif ratio < 1 / args.threshold:
                improvements.append(
                    f"  {where}: {prev_value:.2f} -> {cur_value:.2f} "
                    f"({ratio:.2f}x)")

    print(f"compared {compared} timing fields across "
          f"{len(set(cur) & set(prev))} matched rows "
          f"(threshold {args.threshold}x, floor {args.min_abs_ms})")
    # Renamed/added/removed rows drop out of regression coverage; say so,
    # so a silent coverage loss is visible in the CI log.
    if unmatched_cur:
        print(f"rows only in current run, not compared ({len(unmatched_cur)}):")
        for file_name, section, identity in unmatched_cur:
            print(f"  {file_name} [{section}] {identity}")
    if unmatched_prev:
        print(f"rows only in previous run, not compared "
              f"({len(unmatched_prev)}):")
        for file_name, section, identity in unmatched_prev:
            print(f"  {file_name} [{section}] {identity}")
    if improvements:
        print(f"improvements ({len(improvements)}):")
        print("\n".join(improvements))
    if regressions:
        print(f"REGRESSIONS ({len(regressions)}):")
        print("\n".join(regressions))
        return 1
    print("no regressions beyond the noise threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
