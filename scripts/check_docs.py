#!/usr/bin/env python3
"""Docs guardrails: markdown link check + README quickstart extraction.

Two modes, both wired into CI (the `docs` job) so the documentation
cannot rot silently:

  check_docs.py --link-check FILE.md [FILE.md ...]
      Verifies that every relative markdown link target exists on disk,
      resolved against the linking file's directory. External links
      (http/https/mailto) and pure in-page #anchors are skipped — CI
      must not depend on network reachability. Exits 1 listing every
      broken link otherwise.

  check_docs.py --extract-quickstart FILE.md
      Prints the first ```cpp fenced code block of the file to stdout.
      That block is the README's compilable-quickstart contract: CI
      compiles and runs it verbatim against the built library, so the
      snippet can never drift from the actual API.
"""

import argparse
import pathlib
import re
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:")


def check_links(paths):
    broken = []
    for path in paths:
        md = pathlib.Path(path)
        if not md.is_file():
            broken.append((path, "<the markdown file itself is missing>"))
            continue
        text = md.read_text(encoding="utf-8")
        # Fenced code blocks often hold example syntax that merely looks
        # like links; strip them before scanning.
        text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            resolved = (md.parent / file_part).resolve()
            if not resolved.exists():
                broken.append((path, target))
    if broken:
        for origin, target in broken:
            print(f"BROKEN LINK in {origin}: {target}", file=sys.stderr)
        return 1
    print(f"link check OK across {len(paths)} file(s)")
    return 0


def extract_quickstart(path):
    text = pathlib.Path(path).read_text(encoding="utf-8")
    match = re.search(r"```cpp\n(.*?)```", text, flags=re.DOTALL)
    if match is None:
        print(f"no ```cpp block found in {path}", file=sys.stderr)
        return 1
    sys.stdout.write(match.group(1))
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--link-check", action="store_true",
                      help="verify relative link targets exist")
    mode.add_argument("--extract-quickstart", action="store_true",
                      help="print the first ```cpp block to stdout")
    parser.add_argument("files", nargs="+", help="markdown files")
    args = parser.parse_args()
    if args.link_check:
        return check_links(args.files)
    if len(args.files) != 1:
        print("--extract-quickstart takes exactly one file", file=sys.stderr)
        return 2
    return extract_quickstart(args.files[0])


if __name__ == "__main__":
    sys.exit(main())
