// A miniature semantic query optimizer built on the library:
// given a workload of queries and a set of integrity constraints, each
// query is (1) minimized to its core, (2) tested for semantic acyclicity
// under the constraints, and (3) routed to the cheapest evaluator.
#include <cstdio>

#include "core/core_min.h"
#include "core/hypergraph.h"
#include "core/parser.h"
#include "deps/classify.h"
#include "semacyc/decider.h"

using namespace semacyc;

int main() {
  // A toy "social commerce" schema with constraints of different classes.
  DependencySet sigma = MustParseDependencySet(
      // Inclusion dependency (linear, guarded): buyers are users.
      "Buys(u,p) -> User(u).\n"
      // Full, non-recursive: wishlist + stock means a reserved pair.
      "Wishes(u,p), InStock(p) -> Reserved(u,p).\n"
      // Key (egd): a product has one seller.
      "SoldBy(p,s), SoldBy(p,t) -> s = t.");
  TgdClassification cls = Classify(sigma.tgds);
  std::printf("constraint classes: %s; egds: %zu\n\n",
              cls.ToString().c_str(), sigma.egds.size());

  const char* workload[] = {
      // Redundant atom: folds away in the core.
      "q(u) :- User(u), Buys(u,p), Buys(u,p2)",
      // Cyclic, rescued by the Reserved tgd.
      "q(u,p) :- Wishes(u,p), InStock(p), Reserved(u,p)",
      // Cyclic triangle, not rescued by anything.
      "q(u) :- Follows(u,v), Follows(v,w), Follows(w,u)",
      // Key-based rescue: two SoldBy atoms merge.
      "q(p) :- SoldBy(p,s), SoldBy(p,t), Partner(s,t)",
  };

  std::printf("%-55s %-9s %-9s %-10s %s\n", "query", "core", "semAc",
              "strategy", "plan");
  for (const char* text : workload) {
    ConjunctiveQuery q = MustParseQuery(text);
    ConjunctiveQuery core = ComputeCore(q);
    SemAcResult decision = DecideSemanticAcyclicity(q, sigma);
    const char* plan = "generic join (NP)";
    if (decision.answer == SemAcAnswer::kYes) {
      plan = "Yannakakis on witness (linear)";
    } else if (decision.answer == SemAcAnswer::kUnknown) {
      plan = "generic join (undecided)";
    }
    std::printf("%-55s %zu->%zu     %-9s %-10s %s\n", text, q.size(),
                core.size(), ToString(decision.answer),
                ToString(decision.strategy), plan);
    if (decision.witness.has_value()) {
      std::printf("    witness: %s\n", decision.witness->ToString().c_str());
    }
  }
  std::printf(
      "\nQueries 1, 2 and 4 get linear-time plans (minimization, tgd\n"
      "rescue, key rescue); the genuine triangle keeps the generic plan.\n");
  return 0;
}
