// semacycd: the long-running semantic-acyclicity decision service.
//
//   semacycd --schema <file> [--port N] [--workers N] [--queue N]
//            [--deadline-ms N] [--cache-mb N] [--tenants a,b,c]
//            [--drain-ms N]
//
// Binds 127.0.0.1:<port> (0 = ephemeral; the bound port is printed to
// stderr as "semacycd listening on 127.0.0.1:<port>") and serves the
// JSON-lines protocol of docs/SERVING.md over persistent connections:
// raw `--batch` query lines or {"op": ...} JSON requests in, one JSON
// decision line out per request, plus the built-in `stats` and `health`
// endpoints. One shared Engine per tenant over the schema; decide
// requests run on a fixed worker pool and are shed with an immediate
// {"status": "overloaded"} line when the queue is at its high-water
// mark. SIGTERM/SIGINT shut down gracefully: stop accepting, drain
// in-flight decisions under --drain-ms, cancel stragglers, exit 0.
//
// `semacyc_cli --serve PORT <schema-file>` runs the same server setup
// (both binaries call serve::ServeForever).
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "chase/dependency.h"
#include "serve/server.h"

using namespace semacyc;

namespace {

void PrintUsage(FILE* out, const char* prog) {
  std::fprintf(
      out,
      "usage: %s --schema <file> [--port N] [--workers N] [--queue N]\n"
      "       %*s [--deadline-ms N] [--cache-mb N] [--tenants a,b,c]\n"
      "       %*s [--drain-ms N]\n"
      "  --schema FILE   dependency set served by this instance (required;\n"
      "                  '%%' comments allowed)\n"
      "  --port N        TCP port on 127.0.0.1; 0 (default) binds an\n"
      "                  ephemeral port, printed on stderr\n"
      "  --workers N     decision worker threads (default 4)\n"
      "  --queue N       worker-queue high-water mark; requests beyond it\n"
      "                  are shed with {\"status\": \"overloaded\"}\n"
      "                  (default 64)\n"
      "  --deadline-ms N server-wide per-request deadline default; a\n"
      "                  request's own deadline_ms field overrides it\n"
      "                  (default: none)\n"
      "  --cache-mb N    total cache budget in MiB, split evenly across\n"
      "                  tenant engines (default: unbounded)\n"
      "  --tenants LIST  comma-separated tenant names, each with its own\n"
      "                  engine + budget share; the default tenant always\n"
      "                  exists (requests without \"tenant\" use it)\n"
      "  --drain-ms N    graceful-shutdown drain budget per phase\n"
      "                  (default 2000)\n"
      "protocol and endpoints: docs/SERVING.md; JSON decision schema:\n"
      "docs/CLI.md (shared with semacyc_cli --batch)\n",
      prog, static_cast<int>(std::strlen(prog)), "",
      static_cast<int>(std::strlen(prog)), "");
}

/// Digits-only positive-int parse shared by every numeric flag (strtoull
/// would silently wrap "-1"); `max` guards the target type's range.
bool ParseCount(const char* text, unsigned long long max,
                unsigned long long* out) {
  if (text == nullptr || *text == '\0') return false;
  for (const char* c = text; *c != '\0'; ++c) {
    if (*c < '0' || *c > '9') return false;
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long n = std::strtoull(text, &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0' || n > max) return false;
  *out = n;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const char* schema_path = nullptr;
  serve::ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](unsigned long long max, unsigned long long* out) {
      if (i + 1 >= argc) return false;
      return ParseCount(argv[++i], max, out);
    };
    unsigned long long n = 0;
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      PrintUsage(stdout, argv[0]);
      return 0;
    } else if (std::strcmp(argv[i], "--schema") == 0) {
      if (i + 1 >= argc) {
        PrintUsage(stderr, argv[0]);
        return 3;
      }
      schema_path = argv[++i];
    } else if (std::strcmp(argv[i], "--port") == 0) {
      if (!next(65535, &n)) {
        PrintUsage(stderr, argv[0]);
        return 3;
      }
      options.port = static_cast<uint16_t>(n);
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      if (!next(1024, &n) || n == 0) {
        PrintUsage(stderr, argv[0]);
        return 3;
      }
      options.workers = static_cast<size_t>(n);
    } else if (std::strcmp(argv[i], "--queue") == 0) {
      if (!next(1u << 20, &n) || n == 0) {
        PrintUsage(stderr, argv[0]);
        return 3;
      }
      options.queue_high_water = static_cast<size_t>(n);
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      if (!next(INT64_MAX, &n) || n == 0) {
        PrintUsage(stderr, argv[0]);
        return 3;
      }
      options.default_deadline_ms = static_cast<int64_t>(n);
    } else if (std::strcmp(argv[i], "--cache-mb") == 0) {
      if (!next(SIZE_MAX >> 20, &n) || n == 0) {
        PrintUsage(stderr, argv[0]);
        return 3;
      }
      options.cache_mb = static_cast<size_t>(n);
    } else if (std::strcmp(argv[i], "--drain-ms") == 0) {
      if (!next(INT64_MAX, &n)) {
        PrintUsage(stderr, argv[0]);
        return 3;
      }
      options.drain_ms = static_cast<int64_t>(n);
    } else if (std::strcmp(argv[i], "--tenants") == 0) {
      if (i + 1 >= argc) {
        PrintUsage(stderr, argv[0]);
        return 3;
      }
      std::string list = argv[++i];
      size_t start = 0;
      while (start <= list.size()) {
        size_t comma = list.find(',', start);
        if (comma == std::string::npos) comma = list.size();
        if (comma > start) {
          options.tenants.push_back(list.substr(start, comma - start));
        }
        start = comma + 1;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      PrintUsage(stderr, argv[0]);
      return 3;
    }
  }
  if (schema_path == nullptr) {
    PrintUsage(stderr, argv[0]);
    return 3;
  }

  std::ifstream schema_file(schema_path);
  if (!schema_file) {
    std::fprintf(stderr, "cannot open schema file: %s\n", schema_path);
    return 3;
  }
  std::stringstream schema_text;
  schema_text << schema_file.rdbuf();
  ParseResult<DependencySet> sigma = ParseDependencySet(schema_text.str());
  if (!sigma.ok()) {
    std::fprintf(stderr, "schema parse error: %s\n", sigma.error.c_str());
    return 3;
  }
  return serve::ServeForever(*sigma.value, options);
}
