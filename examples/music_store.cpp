// Example 1 of the paper at scale: the music-store workload.
//
// Generates a synthetic store (customers x records x styles) satisfying
// the compulsive-collector tgd, reformulates the cyclic query, and
// reports the evaluation speedup of the acyclic plan.
#include <chrono>
#include <cstdio>

#include "core/homomorphism.h"
#include "eval/yannakakis.h"
#include "gen/generators.h"
#include "semacyc/engine.h"

using namespace semacyc;

namespace {

long MicrosOf(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(stop - start)
      .count();
}

}  // namespace

int main() {
  std::printf("music store (Example 1, scaled)\n");
  std::printf("%-10s %-8s %-9s %-12s %-12s %s\n", "customers", "|D|",
              "answers", "cyclic(us)", "acyclic(us)", "speedup");

  // The schema (and query) are the same at every scale: one Engine finds
  // the acyclic reformulation once and serves every later scale from its
  // decision cache — the session pattern the Engine API exists for.
  std::optional<Engine> engine;

  for (int customers : {20, 40, 80, 160}) {
    MusicStoreWorkload w =
        MakeMusicStoreWorkload(2024, customers, 2 * customers, 8, 0.3);
    if (!engine.has_value()) engine.emplace(w.sigma);

    SemAcResult decision = engine->Decide(w.q);
    if (decision.answer != SemAcAnswer::kYes) {
      std::printf("unexpected: query not semantically acyclic\n");
      return 1;
    }

    size_t n_brute = 0, n_fast = 0;
    long brute_us = MicrosOf([&] {
      n_brute = EvaluateQuery(w.q, w.database).size();
    });
    long fast_us = MicrosOf([&] {
      n_fast = EvaluateAcyclic(*decision.witness, w.database).answers.size();
    });
    if (n_brute != n_fast) {
      std::printf("MISMATCH %zu vs %zu\n", n_brute, n_fast);
      return 1;
    }
    std::printf("%-10d %-8zu %-9zu %-12ld %-12ld %.1fx\n", customers,
                w.database.size(), n_brute, brute_us, fast_us,
                fast_us > 0 ? static_cast<double>(brute_us) / fast_us : 0.0);
  }
  std::printf(
      "\nThe acyclic reformulation (2 atoms instead of 3, no cycle)\n"
      "evaluates in time linear in |D| — the paper's motivating win.\n");
  EngineStats stats = engine->stats();
  std::printf("engine: %zu decisions, %zu served from the cache\n",
              stats.decisions, stats.decision_cache_hits);
  return 0;
}
