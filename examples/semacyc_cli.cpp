// Command-line driver: decide semantic acyclicity for queries under a
// dependency set.
//
// One-shot mode (one query, human-readable report):
//   semacyc_cli '<query>' '<dependencies>'
//   semacyc_cli 'q(x,y) :- Interest(x,z), Class(y,z), Owns(x,y)' \
//               'Interest(x,z), Class(y,z) -> Owns(x,y).'
//
// Batch mode (many queries against one schema file, one JSON line per
// decision, a single Engine / PreparedSchema shared by every call):
//   semacyc_cli [--stats] [--cache-mb <n>] --batch <schema-file> [<queries-file>]
// The schema file holds a dependency set ('%' comments allowed); queries
// come one per line from <queries-file> or stdin (blank lines and '%'
// comment lines skipped).
//
// Batch flags:
//   --stats       after the run, print Engine::Stats() (per-cache entries,
//                 bytes, hits/misses/inserts/evictions) plus the aggregate
//                 counters as one JSON object line on stdout.
//   --cache-mb N  bound the engine's cache memory: N MiB total, split
//                 across the four caches (chase half, oracles a quarter,
//                 rewritings and decisions an eighth each) with LRU
//                 eviction. Default: unbounded.
//   --trace[=F]   emit one {"trace": ...} JSON line per decision (nested
//                 phase spans + counters, core/obs.h) to stdout, or to
//                 file F; each trace line precedes its decision line.
//   --metrics     after the run, print Engine::Metrics() (per-strategy /
//                 per-phase latency histograms + lifetime counters) as
//                 one {"metrics": ...} JSON line on stdout.
//   --deadline-ms N  wall-clock budget per decision (one-shot and batch):
//                 an elapsed deadline aborts that decision gracefully —
//                 answer "unknown", strategy "deadline-exceeded" — and the
//                 batch continues with the next line.
//   --decide-threads N  worker threads for the subsets/exhaustive witness
//                 searches of each single decision (core/worksteal.h);
//                 answers, strategies and witnesses are bitwise identical
//                 to one thread. Default 1 (sequential).
//
// Serve mode (the semacycd network server as a CLI flag; one setup path,
// docs/SERVING.md):
//   semacyc_cli [--cache-mb <n>] [--deadline-ms <n>] --serve <port> <schema>
//
// Eval mode (Prop 24 FPT evaluation over a fact file, docs/DATAPLANE.md;
// the database is loaded and dictionary-encoded once, then every query
// runs the compiled semi-join program over it):
//   semacyc_cli --eval --db <fact-file> '<query>' '<dependencies>'
//   semacyc_cli --eval --db <fact-file> [--max-answers <n>] \
//               --batch <schema-file> [<queries-file>]
//
// Exit code, one-shot: 0 = yes, 1 = no, 2 = unknown, 3 = usage/parse error.
// Exit code, batch: 0 once the schema parsed (per-line errors are reported
// as JSON on the line that failed), 3 on usage/schema errors.
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/core_min.h"
#include "core/hypergraph.h"
#include "core/obs.h"
#include "core/parser.h"
#include "data/columnar.h"
#include "deps/classify.h"
#include "semacyc/engine.h"
#include "serve/protocol.h"
#include "serve/server.h"

using namespace semacyc;

namespace {

void PrintStatsJson(const Engine& engine) {
  std::printf("{\"stats\": %s}\n", serve::EngineStatsJson(engine).c_str());
}

/// `trace` enables per-decision trace lines; `trace_path` (optional)
/// redirects them to a file instead of stdout. `print_metrics` dumps
/// Engine::Metrics() as one JSON line after the batch. A non-null
/// `eval_db` switches every line from decide to eval (--eval --db):
/// the same loop, with serve::EvalLineResponse rendering each line.
int RunBatch(const char* schema_path, const char* queries_path,
             bool print_stats, size_t cache_mb, bool trace,
             const char* trace_path, bool print_metrics,
             int64_t deadline_ms, size_t decide_threads,
             const data::ColumnarInstance* eval_db,
             size_t max_answers) {
  std::ifstream schema_file(schema_path);
  if (!schema_file) {
    std::fprintf(stderr, "cannot open schema file: %s\n", schema_path);
    return 3;
  }
  std::stringstream schema_text;
  schema_text << schema_file.rdbuf();
  ParseResult<DependencySet> sigma = ParseDependencySet(schema_text.str());
  if (!sigma.ok()) {
    std::fprintf(stderr, "schema parse error: %s\n", sigma.error.c_str());
    return 3;
  }

  std::ifstream queries_file;
  if (queries_path != nullptr) {
    queries_file.open(queries_path);
    if (!queries_file) {
      std::fprintf(stderr, "cannot open queries file: %s\n", queries_path);
      return 3;
    }
  }
  std::istream& in = queries_path != nullptr
                         ? static_cast<std::istream&>(queries_file)
                         : std::cin;

  // One Engine for the whole stream: Σ is analyzed once and every
  // repeated (or isomorphic) query is served from the shared caches.
  EngineOptions options;
  options.semac.deadline_ms = deadline_ms;
  options.semac.decide_threads = decide_threads;
  if (cache_mb > 0) {
    options.SetTotalCacheBudget(cache_mb * size_t{1024} * 1024);
  }
  std::FILE* trace_out = nullptr;
  std::optional<obs::JsonLinesSink> sink;
  if (trace) {
    if (trace_path != nullptr) {
      trace_out = std::fopen(trace_path, "w");
      if (trace_out == nullptr) {
        std::fprintf(stderr, "cannot open trace file: %s\n", trace_path);
        return 3;
      }
    }
    sink.emplace(trace_out != nullptr ? trace_out : stdout);
    options.semac.trace_sink = &*sink;
  }
  Engine engine(*sigma.value, options);
  std::string line;
  while (std::getline(in, line)) {
    // Exactly the line handler the semacycd server runs (parse errors and
    // internal errors come back as the two-field JSON shape; blank and
    // comment lines produce nothing) — one rendering path for both
    // surfaces, so the batch and server schemas cannot drift.
    std::optional<std::string> response =
        eval_db != nullptr
            ? serve::EvalLineResponse(engine, *eval_db, line, deadline_ms,
                                      nullptr, max_answers)
            : serve::BatchLineResponse(engine, line, deadline_ms, nullptr);
    if (!response.has_value()) continue;
    std::printf("%s\n", response->c_str());
    std::fflush(stdout);
  }

  EngineStats stats = engine.stats();
  std::fprintf(stderr,
               "decided %zu (cache hits: %zu decision, %zu chase, %zu "
               "oracle memo)\n",
               stats.decisions, stats.decision_cache_hits,
               stats.chase_cache_hits, stats.oracle_hits);
  if (print_stats) PrintStatsJson(engine);
  if (print_metrics) {
    std::printf("{\"metrics\": %s}\n", engine.Metrics().ToJson().c_str());
  }
  if (trace_out != nullptr) std::fclose(trace_out);
  return 0;
}

int RunOneShot(const char* query_text, const char* sigma_text,
               int64_t deadline_ms, size_t decide_threads) {
  ParseResult<ConjunctiveQuery> q = ParseQuery(query_text);
  if (!q.ok()) {
    std::fprintf(stderr, "query parse error: %s\n", q.error.c_str());
    return 3;
  }
  ParseResult<DependencySet> sigma = ParseDependencySet(sigma_text);
  if (!sigma.ok()) {
    std::fprintf(stderr, "dependency parse error: %s\n", sigma.error.c_str());
    return 3;
  }

  std::printf("query:      %s\n", q->ToString().c_str());
  std::printf("acyclic:    %s\n", IsAcyclic(*q.value) ? "yes" : "no");
  ConjunctiveQuery core = ComputeCore(*q.value);
  std::printf("core size:  %zu (of %zu)\n", core.size(), q->size());
  if (sigma->HasTgds()) {
    std::printf("tgd classes: %s\n", Classify(sigma->tgds).ToString().c_str());
  }
  if (sigma->HasEgds()) {
    std::printf("egds:       %zu%s\n", sigma->egds.size(),
                IsK2Set(sigma->egds) ? " (K2: keys over arity <= 2)" : "");
  }

  SemAcOptions semac;
  semac.deadline_ms = deadline_ms;
  semac.decide_threads = decide_threads;
  SemAcResult result = DecideSemanticAcyclicity(*q.value, *sigma.value, semac);
  if (result.strategy == Strategy::kDeadlineExceeded) {
    std::printf("deadline:   exceeded after %lld ms (answer is unknown; "
                "retry without --deadline-ms for the exact result)\n",
                static_cast<long long>(deadline_ms));
  }
  std::printf(
      "semantically acyclic: %s (strategy: %s, exact: %s, bound %zu%s)\n",
      ToString(result.answer), ToString(result.strategy),
      result.exact ? "yes" : "no", result.small_query_bound,
      result.bound_justified ? "" : " [heuristic]");
  if (result.witness.has_value()) {
    std::printf("witness:    %s\n", result.witness->ToString().c_str());
  }
  switch (result.answer) {
    case SemAcAnswer::kYes:
      return 0;
    case SemAcAnswer::kNo:
      return 1;
    case SemAcAnswer::kUnknown:
      return 2;
  }
  return 2;
}

/// One-shot eval: decide + reformulate + run the compiled semi-join
/// program over `db`, printing the same JSON eval line the batch mode
/// emits (one rendering path, serve::EvalResponse). The exit code maps
/// the "status" field onto the one-shot convention: 0 ok, 1 not_found,
/// 2 deadline_exceeded/unsupported, 3 parse/internal error.
int RunEvalOneShot(const char* query_text, const char* sigma_text,
                   const data::ColumnarInstance& db, int64_t deadline_ms,
                   size_t max_answers) {
  ParseResult<DependencySet> sigma = ParseDependencySet(sigma_text);
  if (!sigma.ok()) {
    std::fprintf(stderr, "dependency parse error: %s\n", sigma.error.c_str());
    return 3;
  }
  EngineOptions options;
  options.semac.deadline_ms = deadline_ms;
  Engine engine(*sigma.value, options);
  std::string line =
      serve::EvalResponse(engine, db, query_text, deadline_ms,
                          /*cancel=*/nullptr, max_answers);
  std::printf("%s\n", line.c_str());
  // The renderer is the single source of the "status" literals below
  // (serve_test pins them); match on the rendered field rather than
  // re-running the evaluation just to learn the exit code.
  if (line.find("\"status\": \"ok\"") != std::string::npos) return 0;
  if (line.find("\"status\": \"not_found\"") != std::string::npos) return 1;
  if (line.find("\"status\": \"deadline_exceeded\"") != std::string::npos ||
      line.find("\"status\": \"unsupported\"") != std::string::npos) {
    return 2;
  }
  return 3;
}

/// The flag reference, shared by `--help` (stdout, exit 0) and usage
/// errors (stderr, exit 3). docs/CLI.md documents the same flags — keep
/// the two in sync.
void PrintUsage(FILE* out, const char* prog) {
  std::fprintf(out,
               "usage: %s [--deadline-ms <n>] [--decide-threads <n>] "
               "'<query>' '<dependencies>'\n"
               "       %s [--stats] [--metrics] [--trace[=FILE]] "
               "[--cache-mb <n>]\n"
               "          [--deadline-ms <n>] [--decide-threads <n>] "
               "--batch <schema-file> "
               "[<queries-file>]\n"
               "       %s [--cache-mb <n>] [--deadline-ms <n>] "
               "--serve <port> <schema-file>\n"
               "       %s --eval --db <fact-file> [--max-answers <n>] "
               "[--deadline-ms <n>]\n"
               "          '<query>' '<dependencies>'   |   --batch "
               "<schema-file> [<queries-file>]\n"
               "       %s --help\n"
               "  query:        q(x,y) :- R(x,z), S(z,y)   (head optional)\n"
               "  dependencies: tgds 'body -> head' and egds 'body -> x = "
               "y',\n"
               "                separated by '.'; may be empty ('')\n"
               "  --batch:      one query per line from <queries-file> or "
               "stdin,\n"
               "                one JSON line per decision, a single "
               "prepared\n"
               "                schema shared by the whole run (see "
               "docs/CLI.md\n"
               "                for the JSON output schema)\n"
               "  --stats:      print Engine::Stats() as one JSON line "
               "after the batch\n"
               "  --cache-mb:   total cache budget in MiB, LRU-split "
               "across the four caches\n"
               "                (chase 1/2, oracles 1/4, rewrite & "
               "decisions 1/8 each);\n"
               "                default: unbounded\n"
               "  --trace:      one {\"trace\": ...} JSON line per "
               "decision (phase spans\n"
               "                + counters) on stdout, or to FILE with "
               "--trace=FILE; each\n"
               "                trace line precedes its decision line\n"
               "  --metrics:    print Engine::Metrics() (latency "
               "histograms by strategy\n"
               "                and phase, lifetime counters) as one JSON "
               "line after the batch\n"
               "  --deadline-ms: wall-clock budget per decision in ms; an "
               "elapsed\n"
               "                deadline aborts that decision gracefully "
               "(answer unknown,\n"
               "                strategy deadline-exceeded) and the run "
               "continues;\n"
               "                default: none\n"
               "  --decide-threads: worker threads for the witness "
               "searches of each\n"
               "                single decision (one-shot and batch); "
               "answers, strategies\n"
               "                and witnesses are bitwise identical to 1 "
               "thread — threads\n"
               "                buy latency only; default 1 (sequential)\n"
               "  --serve:      run the semacycd network server on "
               "127.0.0.1:<port>\n"
               "                (0 = ephemeral) over <schema-file> — the "
               "same JSON-lines\n"
               "                protocol and server setup as the semacycd "
               "binary\n"
               "                (docs/SERVING.md); --cache-mb and "
               "--deadline-ms apply,\n"
               "                SIGTERM drains gracefully\n"
               "  --eval:       evaluate instead of just deciding: "
               "reformulate each\n"
               "                query to an acyclic witness, then run the "
               "vectorized\n"
               "                semi-join program over the --db facts "
               "(docs/DATAPLANE.md);\n"
               "                one JSON line per query with status, "
               "witness, answer_count,\n"
               "                answers (capped) and cost counters\n"
               "  --db:         fact file for --eval, one ground atom "
               "R('a',42) per line\n"
               "                ('%%' comments allowed); loaded and "
               "dictionary-encoded once\n"
               "  --max-answers: cap on tuples in each line's \"answers\" "
               "array (0 = count\n"
               "                only; answer_count is always the full "
               "size); default 20\n"
               "  --help:       print this reference and exit\n"
               "exit codes, one-shot: 0 yes, 1 no, 2 unknown, 3 "
               "usage/parse error\n"
               "            (--eval:  0 ok, 1 not_found, 2 "
               "deadline/unsupported, 3 error)\n"
               "exit codes, batch:    0 once the schema parsed, 3 on "
               "usage/schema errors\n",
               prog, prog, prog, prog, prog);
}

int Usage(const char* prog) {
  PrintUsage(stderr, prog);
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  bool batch = false;
  bool serve = false;
  uint16_t serve_port = 0;
  bool print_stats = false;
  bool trace = false;
  bool print_metrics = false;
  const char* trace_path = nullptr;
  size_t cache_mb = 0;
  int64_t deadline_ms = 0;
  size_t decide_threads = 1;
  bool eval_mode = false;
  const char* db_path = nullptr;
  size_t max_answers = 20;
  bool max_answers_set = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      PrintUsage(stdout, argv[0]);
      return 0;
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      batch = true;
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      if (i + 1 >= argc) return Usage(argv[0]);
      const char* text = argv[++i];
      // Digits only, 0 allowed (0 = ephemeral port, printed on stderr).
      if (*text == '\0') return Usage(argv[0]);
      for (const char* c = text; *c != '\0'; ++c) {
        if (*c < '0' || *c > '9') return Usage(argv[0]);
      }
      errno = 0;
      char* end = nullptr;
      unsigned long long n = std::strtoull(text, &end, 10);
      if (errno != 0 || end == nullptr || *end != '\0' || n > 65535) {
        return Usage(argv[0]);
      }
      serve = true;
      serve_port = static_cast<uint16_t>(n);
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      print_stats = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      print_metrics = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace = true;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace = true;
      trace_path = argv[i] + 8;
      if (*trace_path == '\0') return Usage(argv[0]);
    } else if (std::strcmp(argv[i], "--cache-mb") == 0) {
      if (i + 1 >= argc) return Usage(argv[0]);
      const char* text = argv[++i];
      // Digits only: strtoull would silently wrap "-1" to ULLONG_MAX.
      if (*text == '\0') return Usage(argv[0]);
      for (const char* c = text; *c != '\0'; ++c) {
        if (*c < '0' || *c > '9') return Usage(argv[0]);
      }
      errno = 0;
      char* end = nullptr;
      unsigned long long n = std::strtoull(text, &end, 10);
      // Reject zero (the default is already unbounded; an explicit 0 is
      // more likely a typo than a request for it), out-of-range input,
      // and budgets whose MiB conversion would overflow size_t.
      if (errno != 0 || end == nullptr || *end != '\0' || n == 0 ||
          n > (SIZE_MAX >> 20)) {
        return Usage(argv[0]);
      }
      cache_mb = static_cast<size_t>(n);
    } else if (std::strcmp(argv[i], "--decide-threads") == 0) {
      if (i + 1 >= argc) return Usage(argv[0]);
      const char* text = argv[++i];
      // Same validation shape as --cache-mb: digits only (strtoull would
      // silently wrap "-1"), no zero (1 already means sequential; 0 is
      // more likely a typo), no absurd widths.
      if (*text == '\0') return Usage(argv[0]);
      for (const char* c = text; *c != '\0'; ++c) {
        if (*c < '0' || *c > '9') return Usage(argv[0]);
      }
      errno = 0;
      char* end = nullptr;
      unsigned long long n = std::strtoull(text, &end, 10);
      if (errno != 0 || end == nullptr || *end != '\0' || n == 0 ||
          n > 1024) {
        return Usage(argv[0]);
      }
      decide_threads = static_cast<size_t>(n);
    } else if (std::strcmp(argv[i], "--eval") == 0) {
      eval_mode = true;
    } else if (std::strcmp(argv[i], "--db") == 0) {
      if (i + 1 >= argc) return Usage(argv[0]);
      db_path = argv[++i];
      if (*db_path == '\0') return Usage(argv[0]);
    } else if (std::strcmp(argv[i], "--max-answers") == 0) {
      if (i + 1 >= argc) return Usage(argv[0]);
      const char* text = argv[++i];
      // Digits only (strtoull would silently wrap "-1"); 0 is meaningful
      // here — it asks for answer_count without the answers array.
      if (*text == '\0') return Usage(argv[0]);
      for (const char* c = text; *c != '\0'; ++c) {
        if (*c < '0' || *c > '9') return Usage(argv[0]);
      }
      errno = 0;
      char* end = nullptr;
      unsigned long long n = std::strtoull(text, &end, 10);
      if (errno != 0 || end == nullptr || *end != '\0') {
        return Usage(argv[0]);
      }
      max_answers = static_cast<size_t>(n);
      max_answers_set = true;
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      if (i + 1 >= argc) return Usage(argv[0]);
      const char* text = argv[++i];
      // Same validation shape as --cache-mb: digits only (strtoull would
      // silently wrap "-1"), no zero (0 already means "no deadline"), no
      // values that overflow the int64 the options carry.
      if (*text == '\0') return Usage(argv[0]);
      for (const char* c = text; *c != '\0'; ++c) {
        if (*c < '0' || *c > '9') return Usage(argv[0]);
      }
      errno = 0;
      char* end = nullptr;
      unsigned long long n = std::strtoull(text, &end, 10);
      if (errno != 0 || end == nullptr || *end != '\0' || n == 0 ||
          n > static_cast<unsigned long long>(INT64_MAX)) {
        return Usage(argv[0]);
      }
      deadline_ms = static_cast<int64_t>(n);
    } else {
      positional.push_back(argv[i]);
    }
  }
  // --eval needs --db (and vice versa: a fact file without --eval is a
  // typo); --max-answers only means anything under --eval; the server
  // speaks the decide protocol only.
  if (eval_mode != (db_path != nullptr)) return Usage(argv[0]);
  if (max_answers_set && !eval_mode) return Usage(argv[0]);
  if (eval_mode && serve) return Usage(argv[0]);
  std::optional<data::ColumnarInstance> eval_db;
  if (eval_mode) {
    std::string error;
    eval_db = data::ColumnarInstance::FromFile(db_path, &error);
    if (!eval_db.has_value()) {
      std::fprintf(stderr, "cannot load fact file %s: %s\n", db_path,
                   error.c_str());
      return 3;
    }
  }
  if (serve) {
    // Thin wrapper over the semacycd server setup: same protocol, same
    // ServeForever loop (docs/SERVING.md). The batch-only output flags
    // have no meaning here.
    if (batch || positional.size() != 1 || print_stats || trace ||
        print_metrics) {
      return Usage(argv[0]);
    }
    std::ifstream schema_file(positional[0]);
    if (!schema_file) {
      std::fprintf(stderr, "cannot open schema file: %s\n", positional[0]);
      return 3;
    }
    std::stringstream schema_text;
    schema_text << schema_file.rdbuf();
    ParseResult<DependencySet> sigma = ParseDependencySet(schema_text.str());
    if (!sigma.ok()) {
      std::fprintf(stderr, "schema parse error: %s\n", sigma.error.c_str());
      return 3;
    }
    serve::ServerOptions options;
    options.port = serve_port;
    options.cache_mb = cache_mb;
    options.default_deadline_ms = deadline_ms;
    return serve::ServeForever(*sigma.value, options);
  }
  if (batch) {
    if (positional.empty() || positional.size() > 2) return Usage(argv[0]);
    return RunBatch(positional[0],
                    positional.size() >= 2 ? positional[1] : nullptr,
                    print_stats, cache_mb, trace, trace_path, print_metrics,
                    deadline_ms, decide_threads,
                    eval_db.has_value() ? &*eval_db : nullptr, max_answers);
  }
  if (positional.size() != 2 || print_stats || cache_mb > 0 || trace ||
      print_metrics) {
    return Usage(argv[0]);
  }
  if (eval_mode) {
    return RunEvalOneShot(positional[0], positional[1], *eval_db,
                          deadline_ms, max_answers);
  }
  return RunOneShot(positional[0], positional[1], deadline_ms,
                    decide_threads);
}
