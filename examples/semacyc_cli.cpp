// Command-line driver: decide semantic acyclicity for a query under a
// dependency set.
//
//   semacyc_cli '<query>' '<dependencies>'
//   semacyc_cli 'q(x,y) :- Interest(x,z), Class(y,z), Owns(x,y)' \
//               'Interest(x,z), Class(y,z) -> Owns(x,y).'
//
// Exit code: 0 = yes, 1 = no, 2 = unknown, 3 = usage/parse error.
#include <cstdio>

#include "core/core_min.h"
#include "core/hypergraph.h"
#include "core/parser.h"
#include "deps/classify.h"
#include "semacyc/decider.h"

using namespace semacyc;

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr,
                 "usage: %s '<query>' '<dependencies>'\n"
                 "  query:        q(x,y) :- R(x,z), S(z,y)   (head optional)\n"
                 "  dependencies: tgds 'body -> head' and egds 'body -> x = y',\n"
                 "                separated by '.'; may be empty ('')\n",
                 argv[0]);
    return 3;
  }
  ParseResult<ConjunctiveQuery> q = ParseQuery(argv[1]);
  if (!q.ok()) {
    std::fprintf(stderr, "query parse error: %s\n", q.error.c_str());
    return 3;
  }
  ParseResult<DependencySet> sigma = ParseDependencySet(argv[2]);
  if (!sigma.ok()) {
    std::fprintf(stderr, "dependency parse error: %s\n", sigma.error.c_str());
    return 3;
  }

  std::printf("query:      %s\n", q->ToString().c_str());
  std::printf("acyclic:    %s\n", IsAcyclic(*q.value) ? "yes" : "no");
  ConjunctiveQuery core = ComputeCore(*q.value);
  std::printf("core size:  %zu (of %zu)\n", core.size(), q->size());
  if (sigma->HasTgds()) {
    std::printf("tgd classes: %s\n", Classify(sigma->tgds).ToString().c_str());
  }
  if (sigma->HasEgds()) {
    std::printf("egds:       %zu%s\n", sigma->egds.size(),
                IsK2Set(sigma->egds) ? " (K2: keys over arity <= 2)" : "");
  }

  SemAcResult result = DecideSemanticAcyclicity(*q.value, *sigma.value);
  std::printf("semantically acyclic: %s (strategy: %s, exact: %s)\n",
              ToString(result.answer), result.strategy.c_str(),
              result.exact ? "yes" : "no");
  if (result.witness.has_value()) {
    std::printf("witness:    %s\n", result.witness->ToString().c_str());
  }
  switch (result.answer) {
    case SemAcAnswer::kYes:
      return 0;
    case SemAcAnswer::kNo:
      return 1;
    case SemAcAnswer::kUnknown:
      return 2;
  }
  return 2;
}
