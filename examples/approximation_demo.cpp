// §8.2: acyclic approximations as "quick answers".
//
// A cyclic query that is NOT semantically acyclic still admits a maximally
// contained acyclic under-approximation; evaluating it gives sound (if
// partial) answers at linear cost.
#include <cstdio>

#include "core/homomorphism.h"
#include "core/hypergraph.h"
#include "core/parser.h"
#include "eval/yannakakis.h"
#include "gen/generators.h"
#include "semacyc/engine.h"

using namespace semacyc;

int main() {
  // Mutual-follow triangle plus a profile lookup: cyclic, and no
  // constraint rescues it.
  ConjunctiveQuery q = MustParseQuery(
      "q(u) :- Follows(u,v), Follows(v,w), Follows(w,u), Premium(u)");
  DependencySet sigma = MustParseDependencySet(
      "Premium(u) -> User(u)");  // unrelated: the triangle stays essential
  std::printf("query: %s\n", q.ToString().c_str());

  Engine engine(sigma);
  ApproximateOutcome outcome = engine.Approximate(engine.Prepare(q));
  if (!outcome.status.ok()) {
    std::printf("approximation unavailable: %s\n",
                outcome.status.message.c_str());
    return 1;
  }
  const ApproximationResult* result = &outcome.result;
  std::printf("semantically acyclic: %s\n", result->is_exact ? "yes" : "no");
  std::printf("approximation (%zu candidates explored): %s\n",
              result->candidates.size(),
              result->approximation.ToString().c_str());
  std::printf("approximation acyclic: %s\n\n",
              IsAcyclic(result->approximation) ? "yes" : "no");

  // Evaluate both on a database: the approximation's answers are a subset
  // of the exact answers (q' ⊆Σ q), available at linear cost.
  Instance db;
  db.InsertAll(MustParseAtoms(
      "Follows('a','b'), Follows('b','c'), Follows('c','a'), "
      "Follows('d','d'), "
      "Follows('x','y'), Follows('y','x'), "
      "Premium('a'), Premium('d'), Premium('x'), "
      "User('a'), User('d'), User('x')"));
  auto exact = EvaluateQuery(q, db);
  YannakakisResult approx = EvaluateAcyclic(result->approximation, db);
  std::printf("exact answers:  ");
  for (const auto& t : exact) std::printf("%s ", t[0].ToString().c_str());
  std::printf("\napprox answers: ");
  for (const auto& t : approx.answers) {
    std::printf("%s ", t[0].ToString().c_str());
  }
  std::printf("\n");

  // Soundness check: every approximate answer is an exact answer.
  size_t sound = 0;
  for (const auto& t : approx.answers) {
    for (const auto& e : exact) {
      if (t == e) {
        ++sound;
        break;
      }
    }
  }
  std::printf("soundness: %zu/%zu approximate answers are exact answers\n",
              sound, approx.answers.size());
  return sound == approx.answers.size() ? 0 : 1;
}
