// Quickstart: build an Engine for a constraint set, prepare a query,
// decide semantic acyclicity, and evaluate the acyclic reformulation.
//
//   $ ./examples/quickstart
//
// This walks through the library's core loop on the paper's Example 1,
// using the session-oriented Engine API (one schema, many queries). The
// free functions (DecideSemanticAcyclicity & co.) remain as one-shot
// wrappers over a transient Engine.
#include <cstdio>

#include "chase/query_chase.h"
#include "core/homomorphism.h"
#include "core/hypergraph.h"
#include "core/parser.h"
#include "semacyc/engine.h"

using namespace semacyc;

int main() {
  // 1. A conjunctive query. Identifiers are variables; 'quoted' tokens are
  //    constants. This is the paper's Example 1: customers, records,
  //    musical styles.
  ConjunctiveQuery q = MustParseQuery(
      "q(x,y) :- Interest(x,z), Class(y,z), Owns(x,y)");
  std::printf("query:        %s\n", q.ToString().c_str());

  // 2. A constraint: every customer owns every record classified with a
  //    style they are interested in ("compulsive collectors"). The Engine
  //    analyzes Σ once; every later call runs off that prepared schema
  //    and its shared caches (chase memo, rewritings, oracle memos).
  DependencySet sigma = MustParseDependencySet(
      "Interest(x,z), Class(y,z) -> Owns(x,y)");
  std::printf("constraints:  %s", sigma.ToString().c_str());
  Engine engine(sigma);

  // 3. Prepare the query (classification with certificates, small-query
  //    bound) and decide semantic acyclicity under the constraints.
  PreparedQuery pq = engine.Prepare(q);
  std::printf("acyclic?      %s (class: %s)\n",
              pq.MeetsTarget(acyclic::AcyclicityClass::kAlpha) ? "yes" : "no",
              ToString(pq.acyclicity_class()));
  SemAcResult decision = engine.Decide(pq);
  std::printf("semantically acyclic? %s (strategy: %s)\n",
              ToString(decision.answer), ToString(decision.strategy));
  if (decision.answer != SemAcAnswer::kYes) return 1;
  std::printf("witness:      %s\n", decision.witness->ToString().c_str());

  // 4. The witness is equivalent to q on every database satisfying Σ —
  //    verify on a small database, then evaluate via Engine::Eval (the
  //    reformulation is served from the decision cache; Yannakakis runs
  //    over a view-based join tree of the witness).
  Instance db;
  db.InsertAll(MustParseAtoms(
      "Interest('ana','jazz'), Interest('bob','rock'), "
      "Class('kind_of_blue','jazz'), Class('nevermind','rock'), "
      "Owns('ana','kind_of_blue'), Owns('bob','nevermind')"));
  if (!Satisfies(db, sigma)) {
    std::printf("database violates the constraints!\n");
    return 1;
  }
  EvalOutcome fast = engine.Eval(pq, db);
  if (!fast.status.ok()) {
    std::printf("evaluation failed: %s\n", fast.status.message.c_str());
    return 1;
  }
  std::printf("answers via acyclic witness (linear time):\n");
  for (const auto& tuple : fast.evaluation.answers) {
    std::printf("  (%s, %s)\n", tuple[0].ToString().c_str(),
                tuple[1].ToString().c_str());
  }

  // 5. Cross-check with the generic evaluator on the original query.
  auto brute = EvaluateQuery(q, db);
  std::printf("generic evaluation of q returns %zu answers — %s\n",
              brute.size(),
              brute.size() == fast.evaluation.answers.size() ? "they agree"
                                                             : "MISMATCH");

  // 6. Session statistics: the decision above was computed once; Eval
  //    reused it from the cache.
  EngineStats stats = engine.stats();
  std::printf("engine: %zu decisions, %zu served from cache\n",
              stats.decisions, stats.decision_cache_hits);
  return 0;
}
