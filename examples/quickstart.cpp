// Quickstart: parse a query and a constraint set, decide semantic
// acyclicity, and evaluate the acyclic reformulation.
//
//   $ ./examples/quickstart
//
// This walks through the library's core loop on the paper's Example 1.
#include <cstdio>

#include "chase/query_chase.h"
#include "core/homomorphism.h"
#include "core/hypergraph.h"
#include "core/parser.h"
#include "eval/yannakakis.h"
#include "semacyc/decider.h"

using namespace semacyc;

int main() {
  // 1. A conjunctive query. Identifiers are variables; 'quoted' tokens are
  //    constants. This is the paper's Example 1: customers, records,
  //    musical styles.
  ConjunctiveQuery q = MustParseQuery(
      "q(x,y) :- Interest(x,z), Class(y,z), Owns(x,y)");
  std::printf("query:        %s\n", q.ToString().c_str());
  std::printf("acyclic?      %s\n", IsAcyclic(q) ? "yes" : "no");

  // 2. A constraint: every customer owns every record classified with a
  //    style they are interested in ("compulsive collectors").
  DependencySet sigma = MustParseDependencySet(
      "Interest(x,z), Class(y,z) -> Owns(x,y)");
  std::printf("constraints:  %s", sigma.ToString().c_str());

  // 3. Decide semantic acyclicity under the constraints.
  SemAcResult decision = DecideSemanticAcyclicity(q, sigma);
  std::printf("semantically acyclic? %s (strategy: %s)\n",
              ToString(decision.answer), decision.strategy.c_str());
  if (decision.answer != SemAcAnswer::kYes) return 1;
  std::printf("witness:      %s\n", decision.witness->ToString().c_str());

  // 4. The witness is equivalent to q on every database satisfying Σ —
  //    verify on a small database, then evaluate it with Yannakakis.
  Instance db;
  db.InsertAll(MustParseAtoms(
      "Interest('ana','jazz'), Interest('bob','rock'), "
      "Class('kind_of_blue','jazz'), Class('nevermind','rock'), "
      "Owns('ana','kind_of_blue'), Owns('bob','nevermind')"));
  if (!Satisfies(db, sigma)) {
    std::printf("database violates the constraints!\n");
    return 1;
  }
  YannakakisResult fast = EvaluateAcyclic(*decision.witness, db);
  std::printf("answers via acyclic witness (linear time):\n");
  for (const auto& tuple : fast.answers) {
    std::printf("  (%s, %s)\n", tuple[0].ToString().c_str(),
                tuple[1].ToString().c_str());
  }

  // 5. Cross-check with the generic evaluator on the original query.
  auto brute = EvaluateQuery(q, db);
  std::printf("generic evaluation of q returns %zu answers — %s\n",
              brute.size(),
              brute.size() == fast.answers.size() ? "they agree" : "MISMATCH");
  return 0;
}
