// Theorem 7 up close: explore the PCP reduction that makes SemAc(F)
// undecidable.
//
// Builds (q, Σ) from a PCP instance, solves the instance with the bounded
// solver, and shows how the chase derives sync-atoms along matching
// prefix pairs until the finalization rule fires — exactly when the path
// query spells a solution.
#include <cstdio>

#include "chase/query_chase.h"
#include "core/homomorphism.h"
#include "pcp/pcp.h"
#include "pcp/reduction.h"

using namespace semacyc;

int main() {
  PcpInstance instance{{"ab", "ba"}, {"ab", "ba"}};
  std::printf("PCP instance (top_i, bottom_i):\n%s",
              instance.ToString().c_str());

  auto solution = SolvePcpBounded(instance, 16);
  if (solution.has_value()) {
    std::printf("bounded solver: solution word \"%s\" via tiles",
                solution->word.c_str());
    for (int i : solution->indices) std::printf(" %d", i + 1);
    std::printf("\n\n");
  } else {
    std::printf("bounded solver: no solution within bound\n\n");
  }

  PcpReduction reduction = PcpReduction::Build(instance);
  std::printf("reduction: |q| = %zu atoms, |Sigma| = %zu full tgds\n",
              reduction.q().size(), reduction.sigma().tgds.size());

  for (const std::string word :
       {std::string("ab"), std::string("abba"), std::string("aa")}) {
    ConjunctiveQuery path = PcpReduction::PathQuery(word);
    QueryChaseResult chase = ChaseQuery(path, reduction.sigma());
    size_t sync_atoms = 0;
    for (const Atom& a : chase.instance.atoms()) {
      if (a.predicate() == Predicate::Get("sync", 2)) ++sync_atoms;
    }
    bool equivalent = EvaluatesTrue(reduction.q(), chase.instance);
    std::printf(
        "word %-6s  path atoms %-3zu chase atoms %-4zu sync atoms %-4zu "
        "q =_Sigma path? %s\n",
        ("\"" + word + "\"").c_str(), path.size(), chase.instance.size(),
        sync_atoms, equivalent ? "YES" : "no");
  }

  std::printf(
      "\nOnly genuine solution words make the acyclic path equivalent to\n"
      "the cyclic gadget q: deciding SemAc(F) would decide PCP (Thm 7).\n");
  return 0;
}
