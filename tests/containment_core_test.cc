#include <gtest/gtest.h>

#include "core/canonical.h"
#include "core/containment.h"
#include "core/core_min.h"
#include "core/hypergraph.h"
#include "core/parser.h"

namespace semacyc {
namespace {

TEST(ContainmentTest, PathContainments) {
  // Longer paths are contained in shorter ones (over the same endpoints
  // pattern they map); Boolean case.
  ConjunctiveQuery p2 = MustParseQuery("E(x,y), E(y,z)");
  ConjunctiveQuery p1 = MustParseQuery("E(x,y)");
  EXPECT_TRUE(ContainedInClassic(p2, p1));
  EXPECT_FALSE(ContainedInClassic(p1, p2));
}

TEST(ContainmentTest, CycleContainedInPath) {
  ConjunctiveQuery c3 = MustParseQuery("E(x,y), E(y,z), E(z,x)");
  ConjunctiveQuery p3 = MustParseQuery("E(x,y), E(y,z), E(z,w)");
  EXPECT_TRUE(ContainedInClassic(c3, p3));
  EXPECT_FALSE(ContainedInClassic(p3, c3));
}

TEST(ContainmentTest, HeadsMatter) {
  ConjunctiveQuery q1 = MustParseQuery("q(x) :- E(x,y)");
  ConjunctiveQuery q2 = MustParseQuery("q(y) :- E(x,y)");
  EXPECT_FALSE(ContainedInClassic(q1, q2));
  EXPECT_FALSE(ContainedInClassic(q2, q1));
}

TEST(ContainmentTest, ConstantsRefine) {
  ConjunctiveQuery qa = MustParseQuery("E('a',y)");
  ConjunctiveQuery qv = MustParseQuery("E(x,y)");
  EXPECT_TRUE(ContainedInClassic(qa, qv));
  EXPECT_FALSE(ContainedInClassic(qv, qa));
}

TEST(ContainmentTest, EquivalentVariants) {
  ConjunctiveQuery q1 = MustParseQuery("q(x) :- E(x,y), E(x,z)");
  ConjunctiveQuery q2 = MustParseQuery("q(x) :- E(x,y)");
  EXPECT_TRUE(EquivalentClassic(q1, q2));
}

TEST(ContainmentTest, UcqContainment) {
  UnionQuery Q({MustParseQuery("E(x,y), E(y,x)"), MustParseQuery("L(x)")});
  EXPECT_TRUE(ContainedInClassic(MustParseQuery("E(x,x)"), Q));
  EXPECT_FALSE(ContainedInClassic(MustParseQuery("E(x,y)"), Q));
  EXPECT_TRUE(ContainedInClassic(MustParseQuery("L('a')"), Q));
}

TEST(ContainmentTest, UcqInUcq) {
  UnionQuery Q1({MustParseQuery("E(x,x)")});
  UnionQuery Q2({MustParseQuery("E(x,y)"), MustParseQuery("L(x)")});
  EXPECT_TRUE(ContainedInClassic(Q1, Q2));
  EXPECT_FALSE(ContainedInClassic(Q2, Q1));
}

TEST(CoreTest, PathFoldsOntoEdge) {
  // Boolean: E(x,y), E(y,z) folds? No — needs a 2-path in itself; the
  // canonical counterexample: it does NOT fold onto one edge since
  // mapping z to x creates E(y,x) which is absent. Actually folding needs
  // h(E(y,z)) in the remaining atoms; h(y)=x? then E(x,y)->E(x,?) fine
  // but E(y,z)->E(x,?) requires second edge from x: absent. So the
  // 2-path is a core.
  ConjunctiveQuery p2 = MustParseQuery("E(x,y), E(y,z)");
  EXPECT_TRUE(IsCore(p2));
  EXPECT_EQ(ComputeCore(p2).size(), 2u);
}

TEST(CoreTest, RedundantAtomFolds) {
  ConjunctiveQuery q = MustParseQuery("E(x,y), E(x,z)");
  ConjunctiveQuery core = ComputeCore(q);
  EXPECT_EQ(core.size(), 1u);
  EXPECT_TRUE(EquivalentClassic(q, core));
}

TEST(CoreTest, HeadVariablesAreFixed) {
  ConjunctiveQuery q = MustParseQuery("q(y,z) :- E(x,y), E(x,z)");
  // y and z are both free: the two atoms cannot be collapsed.
  EXPECT_TRUE(IsCore(q));
}

TEST(CoreTest, TriangleWithPendantPath) {
  // Triangle plus a path that folds into the triangle.
  ConjunctiveQuery q = MustParseQuery(
      "E(x,y), E(y,z), E(z,x), E(x,u), E(u,v)");
  ConjunctiveQuery core = ComputeCore(q);
  EXPECT_EQ(core.size(), 3u);
  EXPECT_TRUE(EquivalentClassic(q, core));
  EXPECT_FALSE(IsAcyclic(core));
}

TEST(CoreTest, ExampleOneQueryIsACore) {
  ConjunctiveQuery q =
      MustParseQuery("q(x,y) :- Interest(x,z), Class(y,z), Owns(x,y)");
  EXPECT_TRUE(IsCore(q));
}

TEST(CoreTest, DirectedFourCycleIsACore) {
  // The *directed* 4-cycle does not fold (hom C_m -> C_n needs n | m and
  // C4 contains no shorter directed cycle).
  ConjunctiveQuery c4 = MustParseQuery("E(a,b), E(b,c), E(c,d), E(d,a)");
  EXPECT_TRUE(IsCore(c4));
}

TEST(CoreTest, DiamondFoldsOntoPath) {
  // Two parallel directed 2-paths a->b->c and a->d->c: hypergraph-cyclic,
  // but d folds onto b, leaving an acyclic 2-path.
  ConjunctiveQuery diamond = MustParseQuery("E(a,b), E(b,c), E(a,d), E(d,c)");
  EXPECT_FALSE(IsAcyclic(diamond));
  ConjunctiveQuery core = ComputeCore(diamond);
  EXPECT_EQ(core.size(), 2u);
  EXPECT_TRUE(IsAcyclic(core));
}

TEST(CoreTest, OddCycleIsACore) {
  ConjunctiveQuery c5 =
      MustParseQuery("E(a,b), E(b,c), E(c,d), E(d,e), E(e,a)");
  EXPECT_TRUE(IsCore(c5));
}

TEST(IsomorphismTest, DetectsRenamings) {
  ConjunctiveQuery q1 = MustParseQuery("q(x) :- E(x,y), F(y,z)");
  ConjunctiveQuery q2 = MustParseQuery("q(a) :- E(a,b), F(b,c)");
  EXPECT_TRUE(AreIsomorphic(q1, q2));
  EXPECT_EQ(StructuralKey(q1), StructuralKey(q2));
}

TEST(IsomorphismTest, DistinguishesShapes) {
  ConjunctiveQuery q1 = MustParseQuery("E(x,y), E(y,z)");
  ConjunctiveQuery q2 = MustParseQuery("E(x,y), E(x,z)");
  EXPECT_FALSE(AreIsomorphic(q1, q2));
}

TEST(IsomorphismTest, HeadPositionsMatter) {
  ConjunctiveQuery q1 = MustParseQuery("q(x) :- E(x,y)");
  ConjunctiveQuery q2 = MustParseQuery("q(y) :- E(x,y)");
  EXPECT_FALSE(AreIsomorphic(q1, q2));
}

TEST(IsomorphismTest, ConstantsMustAgree) {
  ConjunctiveQuery q1 = MustParseQuery("E(x,'a')");
  ConjunctiveQuery q2 = MustParseQuery("E(x,'b')");
  ConjunctiveQuery q3 = MustParseQuery("E(y,'a')");
  EXPECT_FALSE(AreIsomorphic(q1, q2));
  EXPECT_TRUE(AreIsomorphic(q1, q3));
}

TEST(IsomorphismTest, RepeatedVariablePatterns) {
  ConjunctiveQuery q1 = MustParseQuery("T(x,x,y)");
  ConjunctiveQuery q2 = MustParseQuery("T(u,u,v)");
  ConjunctiveQuery q3 = MustParseQuery("T(u,v,v)");
  EXPECT_TRUE(AreIsomorphic(q1, q2));
  EXPECT_FALSE(AreIsomorphic(q1, q3));
}

}  // namespace
}  // namespace semacyc
