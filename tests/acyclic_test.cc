#include <gtest/gtest.h>

#include <functional>
#include <random>

#include "acyclic/beta.h"
#include "acyclic/classify.h"
#include "acyclic/gyo.h"
#include "acyclic/oracle.h"
#include "core/hypergraph.h"
#include "core/parser.h"
#include "gen/generators.h"
#include "semacyc/decider.h"

namespace semacyc {
namespace {

using acyclic::AcyclicityClass;

acyclic::Hypergraph MakeHg(std::vector<std::vector<int>> edges) {
  acyclic::Hypergraph hg;
  for (auto& e : edges) hg.AddEdge(std::move(e));
  return hg;
}

AcyclicityClass ClassOf(const acyclic::Hypergraph& hg) {
  return acyclic::Classify(hg).cls;
}

// ------------------------------------------------------------- fixtures --

TEST(ClassifyTest, HierarchyFixtures) {
  EXPECT_EQ(ClassOf(MakeHg({})), AcyclicityClass::kBerge);
  EXPECT_EQ(ClassOf(MakeHg({{0, 1}})), AcyclicityClass::kBerge);
  EXPECT_EQ(ClassOf(MakeHg({{0, 1}, {1, 2}, {2, 3}})),
            AcyclicityClass::kBerge);  // path
  EXPECT_EQ(ClassOf(MakeHg({{0, 1}, {0, 2}, {0, 3}})),
            AcyclicityClass::kBerge);  // star
  EXPECT_EQ(ClassOf(MakeHg({{0, 1}, {1, 2}, {2, 0}})),
            AcyclicityClass::kCyclic);  // triangle
  EXPECT_EQ(ClassOf(MakeHg({{0, 1}, {1, 2}, {2, 0}, {0, 1, 2}})),
            AcyclicityClass::kAlpha);  // guarded triangle: alpha, not beta
  EXPECT_EQ(ClassOf(MakeHg({{0, 1}, {1, 2}, {0, 1, 2}})),
            AcyclicityClass::kBeta);  // Fagin's beta-not-gamma witness
  EXPECT_EQ(ClassOf(MakeHg({{0, 1, 2}, {0, 1, 3}})),
            AcyclicityClass::kGamma);  // Berge cycle through {0,1}
  EXPECT_EQ(ClassOf(MakeHg({{0, 1}, {0, 1}})),
            AcyclicityClass::kGamma);  // duplicate edge = Berge cycle
  EXPECT_EQ(ClassOf(MakeHg({{0, 1}, {0, 1, 2}, {0, 1, 2, 3}})),
            AcyclicityClass::kGamma);  // nested chain
}

TEST(ClassifyTest, TriangleQueryIsCyclicAndGuardMakesItAlpha) {
  EXPECT_EQ(ClassifyQuery(MustParseQuery("R(x,y), R(y,z), R(z,x)")).cls,
            AcyclicityClass::kCyclic);
  EXPECT_EQ(
      ClassifyQuery(MustParseQuery("R(x,y), R(y,z), R(z,x), G(x,y,z)")).cls,
      AcyclicityClass::kAlpha);
}

TEST(ClassifyTest, GeneratorFamiliesClassifyExactly) {
  Generator gen(3);
  for (int n : {1, 2, 5}) {
    EXPECT_EQ(ClassifyQuery(gen.AlphaNotBetaQuery(n)).cls,
              AcyclicityClass::kAlpha)
        << "AlphaNotBeta n=" << n;
    EXPECT_EQ(ClassifyQuery(gen.BetaNotGammaQuery(n)).cls,
              AcyclicityClass::kBeta)
        << "BetaNotGamma n=" << n;
    EXPECT_EQ(ClassifyQuery(gen.GammaNotBergeQuery(n)).cls,
              AcyclicityClass::kGamma)
        << "GammaNotBerge n=" << n;
  }
  for (int n : {1, 8, 40}) {
    EXPECT_EQ(ClassifyQuery(gen.BergeTreeQuery(n)).cls,
              AcyclicityClass::kBerge)
        << "BergeTree n=" << n;
  }
}

// --------------------------------------------------------- certificates --

TEST(CertificateTest, JoinTreeFromGyoForestValidates) {
  Generator gen(17);
  for (int iter = 0; iter < 50; ++iter) {
    ConjunctiveQuery q = gen.RandomAcyclicQuery(3 + iter, 3, 4);
    std::optional<JoinTree> tree =
        BuildJoinTree(q.body(), ConnectingTerms::kVariables);
    ASSERT_TRUE(tree.has_value()) << q.ToString();
    EXPECT_TRUE(tree->Validate(q.Variables())) << tree->ToString();
  }
}

TEST(CertificateTest, BetaEliminationOrderReplays) {
  Generator gen(19);
  for (int n : {1, 3, 10}) {
    ConjunctiveQuery q = gen.BetaNotGammaQuery(n);
    acyclic::Hypergraph hg = ToAcyclicHypergraph(
        Hypergraph::FromAtoms(q.body(), ConnectingTerms::kVariables));
    acyclic::BetaResult beta = acyclic::DecideBeta(hg);
    ASSERT_TRUE(beta.beta_acyclic);
    EXPECT_TRUE(acyclic::ValidateBetaOrder(hg, beta.elimination_order));
    // A truncated order must not validate (unless trivially empty).
    if (beta.elimination_order.size() > 1) {
      std::vector<int> truncated(beta.elimination_order.begin(),
                                 beta.elimination_order.end() - 1);
      EXPECT_FALSE(acyclic::ValidateBetaOrder(hg, truncated));
    }
  }
}

TEST(CertificateTest, GammaTraceCoversEverything) {
  Generator gen(23);
  ConjunctiveQuery q = gen.GammaNotBergeQuery(4);
  acyclic::Hypergraph hg = ToAcyclicHypergraph(
      Hypergraph::FromAtoms(q.body(), ConnectingTerms::kVariables));
  acyclic::GammaResult gamma = acyclic::DecideGamma(hg);
  ASSERT_TRUE(gamma.gamma_acyclic);
  size_t vertex_steps = 0;
  size_t edge_steps = 0;
  for (const auto& step : gamma.trace) {
    if (step.vertex >= 0) ++vertex_steps;
    if (step.edge >= 0) ++edge_steps;
  }
  EXPECT_EQ(vertex_steps, static_cast<size_t>(hg.num_vertices));
  EXPECT_EQ(edge_steps, hg.edges.size());
}

TEST(CertificateTest, GammaWorklistAgreesWithRounds) {
  // The worklist γ decider against the round-based reference on random
  // hypergraphs (both reductions are confluent, so traces may differ but
  // the verdict may not).
  std::mt19937_64 rng(61);
  for (int iter = 0; iter < 2000; ++iter) {
    int n = 2 + static_cast<int>(rng() % 7);
    int m = 1 + static_cast<int>(rng() % 8);
    acyclic::Hypergraph hg;
    hg.num_vertices = n;
    for (int e = 0; e < m; ++e) {
      std::vector<int> verts;
      for (int v = 0; v < n; ++v) {
        if (rng() % 3 == 0) verts.push_back(v);
      }
      if (verts.empty()) verts.push_back(static_cast<int>(rng() % n));
      hg.edges.push_back(std::move(verts));
    }
    acyclic::GammaResult worklist = acyclic::DecideGamma(hg);
    acyclic::GammaResult rounds = acyclic::DecideGammaRounds(hg);
    ASSERT_EQ(worklist.gamma_acyclic, rounds.gamma_acyclic)
        << "iteration " << iter;
    // On γ-acyclic inputs both traces erase everything exactly once.
    if (worklist.gamma_acyclic) {
      ASSERT_EQ(worklist.trace.size(), rounds.trace.size());
    }
  }
}

// -------------------------------------------- engine vs naive agreement --

TEST(GyoEngineTest, AgreesWithNaiveOnRandomHypergraphs) {
  std::mt19937_64 rng(5);
  for (int iter = 0; iter < 500; ++iter) {
    int n = 2 + static_cast<int>(rng() % 8);
    int m = 1 + static_cast<int>(rng() % 10);
    acyclic::Hypergraph hg;
    hg.num_vertices = n;
    for (int e = 0; e < m; ++e) {
      std::vector<int> verts;
      for (int v = 0; v < n; ++v) {
        if (rng() % 3 == 0) verts.push_back(v);
      }
      if (verts.empty()) verts.push_back(static_cast<int>(rng() % n));
      hg.edges.push_back(std::move(verts));
    }
    acyclic::GyoResult fast = acyclic::GyoReduce(hg);
    acyclic::GyoResult naive = acyclic::GyoReduceNaive(hg);
    ASSERT_EQ(fast.acyclic, naive.acyclic) << "iteration " << iter;
  }
}

TEST(GyoEngineTest, ProducesValidJoinForestsOnGeneratedQueries) {
  Generator gen(29);
  for (int iter = 0; iter < 20; ++iter) {
    ConjunctiveQuery q = gen.RandomAcyclicQuery(50, 3, 5);
    GyoResult gyo =
        RunGyo(Hypergraph::FromAtoms(q.body(), ConnectingTerms::kVariables));
    ASSERT_TRUE(gyo.acyclic);
    ASSERT_EQ(gyo.elimination_order.size(), q.body().size());
    JoinTree tree = JoinTreeFromForest(q.body(), gyo.parent);
    EXPECT_TRUE(tree.Validate(q.Variables()));
  }
}

// ------------------------------------- exhaustive brute-force agreement --

TEST(OracleCrossCheckTest, AllHypergraphsWithAtMostFourEdges) {
  // Every hypergraph with <= 4 (distinct, non-empty) edges over a 4-vertex
  // universe: 1940 hypergraphs, each checked against the brute-force
  // definition-level oracles for all four classes.
  std::vector<std::vector<int>> all_edges;
  for (int mask = 1; mask < 16; ++mask) {
    std::vector<int> e;
    for (int v = 0; v < 4; ++v) {
      if (mask & (1 << v)) e.push_back(v);
    }
    all_edges.push_back(std::move(e));
  }
  long checked = 0;
  std::vector<int> chosen;
  std::function<void(size_t)> sweep = [&](size_t start) {
    if (!chosen.empty()) {
      acyclic::Hypergraph hg;
      hg.num_vertices = 4;
      for (int i : chosen) hg.edges.push_back(all_edges[static_cast<size_t>(i)]);
      ++checked;
      acyclic::Classification fast = acyclic::Classify(hg);
      AcyclicityClass slow = acyclic::OracleClassify(hg);
      ASSERT_EQ(fast.cls, slow)
          << "fast=" << ToString(fast.cls) << " oracle=" << ToString(slow)
          << " on hypergraph #" << checked;
      // Per-class spot checks of the certificates.
      if (AtLeast(fast.cls, AcyclicityClass::kAlpha)) {
        EXPECT_EQ(fast.gyo.elimination_order.size(), hg.edges.size());
      }
      if (AtLeast(fast.cls, AcyclicityClass::kBeta)) {
        EXPECT_TRUE(
            acyclic::ValidateBetaOrder(hg, fast.beta.elimination_order));
      }
    }
    if (chosen.size() == 4) return;
    for (size_t i = start; i < all_edges.size(); ++i) {
      chosen.push_back(static_cast<int>(i));
      sweep(i + 1);
      chosen.pop_back();
    }
  };
  sweep(0);
  EXPECT_EQ(checked, 1940);
}

TEST(OracleCrossCheckTest, RandomHypergraphsUpToSixEdges) {
  std::mt19937_64 rng(42);
  for (int iter = 0; iter < 3000; ++iter) {
    int n = 3 + static_cast<int>(rng() % 4);
    int m = 2 + static_cast<int>(rng() % 5);
    acyclic::Hypergraph hg;
    hg.num_vertices = n;
    for (int e = 0; e < m; ++e) {
      std::vector<int> verts;
      for (int v = 0; v < n; ++v) {
        if (rng() % 2) verts.push_back(v);
      }
      if (verts.empty()) verts.push_back(static_cast<int>(rng() % n));
      hg.edges.push_back(std::move(verts));
    }
    ASSERT_EQ(acyclic::Classify(hg).cls, acyclic::OracleClassify(hg))
        << "iteration " << iter;
  }
}

// ------------------------------------------------- semacyc integration --

TEST(TargetClassTest, BetaTargetAcceptsBetaAcyclicQueryDirectly) {
  Generator gen(31);
  ConjunctiveQuery q = gen.BetaNotGammaQuery(1);
  DependencySet sigma;
  SemAcOptions options;
  options.target_class = AcyclicityClass::kBeta;
  SemAcResult result = DecideSemanticAcyclicity(q, sigma, options);
  EXPECT_EQ(result.answer, SemAcAnswer::kYes);
  EXPECT_EQ(result.strategy, Strategy::kAlreadyAcyclic);
  EXPECT_TRUE(AtLeast(result.witness_class, AcyclicityClass::kBeta));
}

TEST(TargetClassTest, GammaTargetRejectsBetaOnlyCore) {
  // The beta-not-gamma gadget is its own core (the ternary guard pins all
  // three variables), so under empty Σ there is no γ-acyclic equivalent.
  Generator gen(37);
  ConjunctiveQuery q = gen.BetaNotGammaQuery(1);
  DependencySet sigma;
  SemAcOptions options;
  options.target_class = AcyclicityClass::kGamma;
  SemAcResult result = DecideSemanticAcyclicity(q, sigma, options);
  EXPECT_EQ(result.answer, SemAcAnswer::kNo);
  EXPECT_TRUE(result.exact);
}

TEST(TargetClassTest, FoldingCoreReachesBergeTarget) {
  // The diamond folds onto a 2-path, which is Berge-acyclic.
  ConjunctiveQuery diamond = MustParseQuery("E(a,b), E(b,c), E(a,d), E(d,c)");
  DependencySet sigma;
  SemAcOptions options;
  options.target_class = AcyclicityClass::kBerge;
  SemAcResult result = DecideSemanticAcyclicity(diamond, sigma, options);
  EXPECT_EQ(result.answer, SemAcAnswer::kYes);
  EXPECT_EQ(result.strategy, Strategy::kCore);
  EXPECT_EQ(result.witness_class, AcyclicityClass::kBerge);
}

TEST(TargetClassTest, MusicStoreFindsGammaWitnessUnderTgd) {
  // Example 1 of the paper: the cyclic collector query becomes acyclic
  // under the compulsive-collector tgd; the known witness
  // q'(x,y) :- Interest(x,z), Class(y,z), Owns(x,y) drops to a 2-atom
  // image whose hypergraph is even Berge-acyclic, so the stricter γ
  // target succeeds too.
  MusicStoreWorkload w = MakeMusicStoreWorkload(7, 3, 3, 2, 0.5);
  SemAcOptions options;
  options.target_class = AcyclicityClass::kGamma;
  SemAcResult result = DecideSemanticAcyclicity(w.q, w.sigma, options);
  ASSERT_EQ(result.answer, SemAcAnswer::kYes);
  ASSERT_TRUE(result.witness.has_value());
  EXPECT_TRUE(AtLeast(result.witness_class, AcyclicityClass::kGamma))
      << "witness " << result.witness->ToString() << " classifies as "
      << ToString(result.witness_class);
  EXPECT_TRUE(MeetsAcyclicityClass(result.witness->body(),
                                   ConnectingTerms::kVariables,
                                   AcyclicityClass::kGamma));
}

TEST(TargetClassTest, AlphaDefaultMatchesLegacyBehaviour) {
  Generator gen(41);
  ConjunctiveQuery q = gen.CycleQuery(4);
  DependencySet sigma;
  SemAcResult result = DecideSemanticAcyclicity(q, sigma);
  EXPECT_EQ(result.answer, SemAcAnswer::kNo);
  EXPECT_TRUE(result.exact);
}

}  // namespace
}  // namespace semacyc
