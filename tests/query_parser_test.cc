#include <gtest/gtest.h>

#include "chase/dependency.h"
#include "core/parser.h"
#include "core/query.h"

namespace semacyc {
namespace {

TEST(ParserTest, ParsesBooleanQuery) {
  auto result = ParseQuery("R(x,y), S(y,z)");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_TRUE(result->IsBoolean());
  EXPECT_EQ(result->size(), 2u);
}

TEST(ParserTest, ParsesHeadedQuery) {
  auto result = ParseQuery("q(x,y) :- R(x,z), S(z,y)");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result->arity(), 2u);
  EXPECT_EQ(result->head()[0], Term::Variable("x"));
  EXPECT_EQ(result->head()[1], Term::Variable("y"));
}

TEST(ParserTest, ParsesQuotedAndNumericConstants) {
  auto result = ParseQuery("R(x,'madrid'), S(x, 42)");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result->body()[0].arg(1), Term::Constant("madrid"));
  EXPECT_EQ(result->body()[1].arg(1), Term::Constant("42"));
}

TEST(ParserTest, ParsesZeroAryAtomAndTrailingDot) {
  auto result = ParseQuery("Flag().");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result->body()[0].arity(), 0u);
}

TEST(ParserTest, CommentsAreSkipped) {
  auto result = ParseQuery("R(x,y) % the edge\n, S(y,z) % another\n");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result->size(), 2u);
}

TEST(ParserTest, ReportsErrors) {
  EXPECT_FALSE(ParseQuery("R(x,").ok());
  EXPECT_FALSE(ParseQuery("R(x,y) S(y)").ok());
  EXPECT_FALSE(ParseQuery("(x)").ok());
  EXPECT_FALSE(ParseQuery("R(x,'unterminated)").ok());
}

TEST(ParserTest, TgdParsesWithImplicitExistential) {
  Tgd tgd = MustParseTgd("R(x,y), P(y,z) -> T(x,y,w)");
  EXPECT_EQ(tgd.body().size(), 2u);
  EXPECT_EQ(tgd.head().size(), 1u);
  ASSERT_EQ(tgd.existential_variables().size(), 1u);
  EXPECT_EQ(tgd.existential_variables()[0], Term::Variable("w"));
  EXPECT_EQ(tgd.frontier().size(), 2u);  // x and y
}

TEST(ParserTest, TgdWithMultiAtomHead) {
  Tgd tgd = MustParseTgd("R(x,y) -> S(x,u), T(u,y)");
  EXPECT_EQ(tgd.head().size(), 2u);
  EXPECT_EQ(tgd.existential_variables().size(), 1u);
}

TEST(ParserTest, EgdParses) {
  Egd egd = MustParseEgd("R(x,y), R(x,z) -> y = z");
  EXPECT_EQ(egd.body().size(), 2u);
  EXPECT_EQ(egd.lhs(), Term::Variable("y"));
  EXPECT_EQ(egd.rhs(), Term::Variable("z"));
}

TEST(ParserTest, DependencySetMixesTgdsAndEgds) {
  DependencySet set = MustParseDependencySet(
      "R(x,y) -> S(y).\n"
      "% a key:\n"
      "S2(x,y), S2(x,z) -> y = z.\n"
      "T(x) -> U(x,w).");
  EXPECT_EQ(set.tgds.size(), 2u);
  EXPECT_EQ(set.egds.size(), 1u);
  EXPECT_EQ(set.size(), 3u);
}

TEST(QueryTest, VariablesAndExistentials) {
  ConjunctiveQuery q = MustParseQuery("q(x) :- R(x,y), S(y,z)");
  EXPECT_EQ(q.Variables().size(), 3u);
  EXPECT_EQ(q.FreeVariables().size(), 1u);
  EXPECT_EQ(q.ExistentialVariables().size(), 2u);
}

TEST(QueryTest, ConnectedComponents) {
  ConjunctiveQuery q = MustParseQuery("R(x,y), S(y,z), T(u,v)");
  auto comps = q.ConnectedComponents();
  EXPECT_EQ(comps.size(), 2u);
  EXPECT_FALSE(q.IsConnected());
  EXPECT_TRUE(MustParseQuery("R(x,y), S(y,z)").IsConnected());
}

TEST(QueryTest, ConstantsDoNotConnect) {
  ConjunctiveQuery q = MustParseQuery("R(x,'c'), S('c',y)");
  EXPECT_FALSE(q.IsConnected());
}

TEST(QueryTest, SubstituteAndRenameApart) {
  ConjunctiveQuery q = MustParseQuery("q(x) :- R(x,y)");
  Substitution sub = {{Term::Variable("y"), Term::Variable("fresh")}};
  ConjunctiveQuery q2 = q.Substitute(sub);
  EXPECT_TRUE(q2.body()[0].Mentions(Term::Variable("fresh")));
  ConjunctiveQuery q3 = q.RenameApart();
  for (Term v : q3.Variables()) {
    EXPECT_EQ(v.name().rfind("v$", 0), 0u) << v.ToString();
  }
}

TEST(QueryTest, FreezeToConstantsAndBack) {
  ConjunctiveQuery q = MustParseQuery("q(x) :- R(x,y), S(y,'k')");
  FrozenQuery frozen = Freeze(q);
  EXPECT_EQ(frozen.instance.size(), 2u);
  EXPECT_EQ(frozen.frozen_head.size(), 1u);
  EXPECT_TRUE(frozen.frozen_head[0].IsConstant());
  // Genuine constants survive freezing.
  bool found_k = false;
  for (const Atom& a : frozen.instance.atoms()) {
    if (a.Mentions(Term::Constant("k"))) found_k = true;
  }
  EXPECT_TRUE(found_k);

  ConjunctiveQuery back =
      QueryFromInstance(frozen.instance, frozen.frozen_head);
  EXPECT_EQ(back.size(), q.size());
  EXPECT_EQ(back.arity(), q.arity());
  // The genuine constant is still a constant after unfreezing.
  bool constant_kept = false;
  for (const Atom& a : back.body()) {
    if (a.Mentions(Term::Constant("k"))) constant_kept = true;
  }
  EXPECT_TRUE(constant_kept);
}

TEST(QueryTest, FreezeToNulls) {
  ConjunctiveQuery q = MustParseQuery("R(x,y)");
  FrozenQuery frozen = Freeze(q, TermKind::kNull);
  for (const Atom& a : frozen.instance.atoms()) {
    for (Term t : a.args()) EXPECT_TRUE(t.IsNull());
  }
}

TEST(QueryTest, TwoFreezesUseDistinctConstants) {
  ConjunctiveQuery q = MustParseQuery("R(x,y)");
  FrozenQuery f1 = Freeze(q);
  FrozenQuery f2 = Freeze(q);
  EXPECT_FALSE(f1.instance == f2.instance);
}

TEST(UnionQueryTest, HeightAndToString) {
  UnionQuery Q({MustParseQuery("R(x,y)"), MustParseQuery("R(x,y), S(y,z)")});
  EXPECT_EQ(Q.size(), 2u);
  EXPECT_EQ(Q.Height(), 2u);
  EXPECT_NE(Q.ToString().find("UNION"), std::string::npos);
}

TEST(QueryTest, ToStringRoundTripsThroughParser) {
  ConjunctiveQuery q = MustParseQuery("q(x,y) :- R(x,z), S(z,y), T(x,y)");
  auto reparsed = ParseQuery(q.ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.error;
  EXPECT_EQ(reparsed->size(), q.size());
  EXPECT_EQ(reparsed->arity(), q.arity());
}

}  // namespace
}  // namespace semacyc
