// End-to-end tests of the semacycd decision service (src/serve/): a real
// server on an ephemeral loopback port, driven through LineClient —
// persistent-connection pipelining, CLI/server response parity,
// malformed-line recovery, per-request deadlines, overload shedding,
// stats/health endpoints, tenant isolation, graceful drain without fd
// leaks, and the fault matrix through the server path.
#include <gtest/gtest.h>

#include <dirent.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "chase/dependency.h"
#include "core/interrupt.h"
#include "core/obs.h"
#include "gen/generators.h"
#include "semacyc/engine.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/worker_pool.h"

namespace semacyc {
namespace {

using serve::LineClient;
using serve::Server;
using serve::ServerOptions;

DependencySet GuardedSigma() {
  return MustParseDependencySet("T(x,y) -> E(y,z), E(z,x)");
}

DependencySet OwnsSigma() {
  return MustParseDependencySet("Interest(x,z), Class(y,z) -> Owns(x,y)");
}

/// A query that grinds through tens of millions of enumeration visits
/// unless a deadline stops it — the serve-side analogue of
/// interrupt_test's heavy decision (the options below raise the budgets).
std::string HeavyQueryText() {
  Generator gen(7);
  return gen.CycleQuery(5).ToString();
}

SemAcOptions HeavyOptions() {
  SemAcOptions options;
  options.subset_budget = 500000000;
  options.exhaustive_budget = 500000000;
  return options;
}

/// Runs `server.Run()` on a background thread for the lifetime of the
/// fixture object; the destructor shuts the server down and joins.
class RunningServer {
 public:
  explicit RunningServer(Server* server) : server_(server) {
    thread_ = std::thread([server] { server->Run(); });
  }
  ~RunningServer() {
    server_->RequestShutdown();
    thread_.join();
  }

 private:
  Server* server_;
  std::thread thread_;
};

LineClient MustConnect(const Server& server) {
  LineClient client;
  std::string error;
  EXPECT_TRUE(client.Connect(server.port(), &error)) << error;
  return client;
}

std::string MustRecv(LineClient* client, int timeout_ms = 30000) {
  std::optional<std::string> line = client->RecvLine(timeout_ms);
  EXPECT_TRUE(line.has_value()) << "no response within " << timeout_ms
                                << "ms";
  return line.value_or("");
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

/// Extracts the JSON object value of `key` from one rendered line by
/// brace matching (the line is trusted test output, not arbitrary JSON).
std::string ExtractObject(const std::string& line, const std::string& key) {
  size_t at = line.find("\"" + key + "\": {");
  if (at == std::string::npos) return "";
  size_t start = line.find('{', at);
  int depth = 0;
  bool in_string = false;
  for (size_t i = start; i < line.size(); ++i) {
    char c = line[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++depth;
    if (c == '}' && --depth == 0) return line.substr(start, i - start + 1);
  }
  return "";
}

// ---------------------------------------------------------------------------
// Pipelining + parity with the CLI batch path.
// ---------------------------------------------------------------------------

TEST(ServeTest, PipelinedResponsesArriveInRequestOrderWithBatchParity) {
  ServerOptions options;
  options.workers = 4;
  Server server(OwnsSigma(), options);
  ASSERT_TRUE(server.ok()) << server.error();
  RunningServer running(&server);
  LineClient client = MustConnect(server);

  // The same lines the CI batch smoke uses, plus a parse error and a
  // comment, sent as ONE write (pipelined): responses must come back in
  // request order and byte-identical to the CLI batch path over a fresh
  // engine (serve/protocol.h is the single rendering path for both).
  std::vector<std::string> lines = {
      "q(x,y) :- Interest(x,z), Class(y,z), Owns(x,y)",
      "q(a,b) :- Interest(a,c), Class(b,c), Owns(a,b)",
      "% a comment line: no response slot",
      "Interest(x,z), Class(y,z)",
      "nonsense ( line",
      "q(x) :- Interest(x,z), Class(y,z), Owns(x,y), Owns(y,x)",
  };
  std::string pipelined;
  for (const std::string& line : lines) pipelined += line + "\n";
  ASSERT_TRUE(client.SendLine(pipelined.substr(0, pipelined.size() - 1)));

  Engine reference(OwnsSigma(), SemAcOptions{});
  for (const std::string& line : lines) {
    std::optional<std::string> expected =
        serve::BatchLineResponse(reference, line, 0, nullptr);
    if (!expected.has_value()) continue;  // comment: server sends nothing
    EXPECT_EQ(MustRecv(&client), *expected) << "for line: " << line;
  }
}

TEST(ServeTest, RepeatDecisionsHitTheSharedEngineCache) {
  Server server(OwnsSigma(), ServerOptions{});
  ASSERT_TRUE(server.ok()) << server.error();
  RunningServer running(&server);

  // Two connections, same query: the second decision is served by the
  // shared engine's decision cache — one Engine per schema, not per
  // connection.
  const std::string query = "q(x,y) :- Interest(x,z), Class(y,z), Owns(x,y)";
  LineClient first = MustConnect(server);
  ASSERT_TRUE(first.SendLine(query));
  std::string a = MustRecv(&first);
  LineClient second = MustConnect(server);
  ASSERT_TRUE(second.SendLine(query));
  std::string b = MustRecv(&second);
  EXPECT_EQ(a, b);

  const Engine* engine = server.tenant_engine("");
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->stats().decisions, 2u);
  EXPECT_GE(engine->stats().decision_cache_hits, 1u);
}

// ---------------------------------------------------------------------------
// Malformed input never takes the connection down.
// ---------------------------------------------------------------------------

TEST(ServeTest, MalformedJsonLineGetsErrorAndConnectionSurvives) {
  Server server(OwnsSigma(), ServerOptions{});
  ASSERT_TRUE(server.ok()) << server.error();
  RunningServer running(&server);
  LineClient client = MustConnect(server);

  const std::string bad_lines[] = {
      "{\"op\": \"decide\", \"query\"",      // truncated JSON
      "{\"op\": \"decide\"}",                // missing query
      "{\"op\": \"warp\", \"query\": \"q() :- Owns(x,y)\"}",  // unknown op
      "{\"query\": \"q() :- Owns(x,y)\", \"shards\": 3}",     // unknown field
      "{\"query\": 42}",                     // wrong type
      "{\"query\": \"q() :- Owns(x,y)\", \"query\": \"x\"}",  // duplicate
  };
  for (const std::string& bad : bad_lines) {
    ASSERT_TRUE(client.SendLine(bad));
    std::string response = MustRecv(&client);
    EXPECT_TRUE(Contains(response, "\"error\"")) << response;
    EXPECT_FALSE(Contains(response, "\"answer\"")) << response;
  }

  // The same connection still decides.
  ASSERT_TRUE(client.SendLine("{\"query\": \"q() :- Owns(x,y)\"}"));
  EXPECT_TRUE(Contains(MustRecv(&client), "\"answer\": \"yes\""));
}

TEST(ServeTest, QueryParseErrorMatchesBatchShapeAndConnectionSurvives) {
  Server server(OwnsSigma(), ServerOptions{});
  ASSERT_TRUE(server.ok()) << server.error();
  RunningServer running(&server);
  LineClient client = MustConnect(server);

  Engine reference(OwnsSigma(), SemAcOptions{});
  const std::string bad = "q(x :- Owns(x,y)";
  ASSERT_TRUE(client.SendLine(bad));
  std::optional<std::string> expected =
      serve::BatchLineResponse(reference, bad, 0, nullptr);
  ASSERT_TRUE(expected.has_value());
  EXPECT_EQ(MustRecv(&client), *expected);

  ASSERT_TRUE(client.SendLine("q(x,y) :- Owns(x,y)"));
  EXPECT_TRUE(Contains(MustRecv(&client), "\"answer\": \"yes\""));
}

// ---------------------------------------------------------------------------
// Per-request deadlines.
// ---------------------------------------------------------------------------

TEST(ServeTest, PerRequestDeadlineAbortsHeavyDecisionGracefully) {
  ServerOptions options;
  options.semac = HeavyOptions();
  Server server(GuardedSigma(), options);
  ASSERT_TRUE(server.ok()) << server.error();
  RunningServer running(&server);
  LineClient client = MustConnect(server);

  ASSERT_TRUE(client.SendLine("{\"query\": \"" + HeavyQueryText() +
                              "\", \"deadline_ms\": 25}"));
  std::string response = MustRecv(&client);
  EXPECT_TRUE(Contains(response, "\"strategy\": \"deadline-exceeded\""))
      << response;
  EXPECT_TRUE(Contains(response, "\"answer\": \"unknown\"")) << response;
  EXPECT_TRUE(Contains(response, "\"deadline_ms\": 25")) << response;

  // The shared engine is immediately reusable on the same connection.
  ASSERT_TRUE(client.SendLine("q(x,y) :- E(x,y)"));
  EXPECT_TRUE(Contains(MustRecv(&client), "\"answer\": \"yes\""));
}

TEST(ServeTest, ServerDefaultDeadlineAppliesWhenRequestHasNone) {
  ServerOptions options;
  options.semac = HeavyOptions();
  options.default_deadline_ms = 25;
  Server server(GuardedSigma(), options);
  ASSERT_TRUE(server.ok()) << server.error();
  RunningServer running(&server);
  LineClient client = MustConnect(server);

  ASSERT_TRUE(client.SendLine(HeavyQueryText()));
  std::string response = MustRecv(&client);
  EXPECT_TRUE(Contains(response, "\"strategy\": \"deadline-exceeded\""))
      << response;
  EXPECT_TRUE(Contains(response, "\"deadline_ms\": 25")) << response;
}

// ---------------------------------------------------------------------------
// Overload shedding.
// ---------------------------------------------------------------------------

TEST(ServeTest, QueueHighWaterShedsExcessRequestsImmediately) {
  // One worker, queue of one: a burst of heavy pipelined decides can keep
  // at most two in the system (one running, one queued); the rest must be
  // shed with an immediate overloaded line, in request order.
  ServerOptions options;
  options.workers = 1;
  options.queue_high_water = 1;
  options.semac = HeavyOptions();
  options.default_deadline_ms = 150;
  Server server(GuardedSigma(), options);
  ASSERT_TRUE(server.ok()) << server.error();
  RunningServer running(&server);
  LineClient client = MustConnect(server);

  constexpr int kBurst = 8;
  std::string burst;
  for (int i = 0; i < kBurst; ++i) burst += HeavyQueryText() + "\n";
  burst.pop_back();
  ASSERT_TRUE(client.SendLine(burst));

  int overloaded = 0;
  int decided = 0;
  for (int i = 0; i < kBurst; ++i) {
    std::string response = MustRecv(&client);
    if (Contains(response, "\"status\": \"overloaded\"")) {
      ++overloaded;
      EXPECT_EQ(response, serve::OverloadedResponse());
    } else {
      ++decided;
      EXPECT_TRUE(Contains(response, "\"query\"")) << response;
    }
  }
  // The two admitted decisions run under the 150ms default deadline; the
  // burst lands in microseconds, so at least kBurst - 2 shed.
  EXPECT_GE(overloaded, kBurst - 2);
  EXPECT_GE(decided, 1);
  EXPECT_EQ(server.counters().shed, static_cast<size_t>(overloaded));

  // Shedding is load-dependent, not sticky: the drained server accepts
  // new work on the same connection.
  ASSERT_TRUE(client.SendLine("q(x,y) :- E(x,y)"));
  EXPECT_TRUE(Contains(MustRecv(&client), "\"answer\": \"yes\""));
}

TEST(WorkerPoolTest, TrySubmitRefusesAtHighWaterAndCountsShed) {
  serve::WorkerPool pool(1, 2);
  std::atomic<int> ran{0};
  std::atomic<bool> release{false};
  // Occupy the single worker so submissions stack up in the queue.
  ASSERT_TRUE(pool.TrySubmit([&] {
    while (!release.load()) std::this_thread::sleep_for(
        std::chrono::milliseconds(1));
    ++ran;
  }));
  // Wait until the blocker is actually running (queue empty again).
  while (pool.active() == 0) std::this_thread::sleep_for(
      std::chrono::milliseconds(1));
  ASSERT_TRUE(pool.TrySubmit([&] { ++ran; }));
  ASSERT_TRUE(pool.TrySubmit([&] { ++ran; }));
  // Queue now at high-water (2): refuse.
  EXPECT_FALSE(pool.TrySubmit([&] { ++ran; }));
  EXPECT_EQ(pool.shed(), 1u);
  EXPECT_EQ(pool.submitted(), 3u);
  release.store(true);
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 3);
}

// ---------------------------------------------------------------------------
// Built-in endpoints.
// ---------------------------------------------------------------------------

TEST(ServeTest, HealthAndStatsEndpointsServeValidPayloads) {
  ServerOptions options;
  options.cache_mb = 16;
  Server server(OwnsSigma(), options);
  ASSERT_TRUE(server.ok()) << server.error();
  RunningServer running(&server);
  LineClient client = MustConnect(server);

  ASSERT_TRUE(client.SendLine("health"));
  EXPECT_EQ(MustRecv(&client), serve::HealthResponse());

  ASSERT_TRUE(client.SendLine("q(x,y) :- Interest(x,z), Class(y,z), "
                              "Owns(x,y)"));
  MustRecv(&client);

  ASSERT_TRUE(client.SendLine("{\"op\": \"stats\"}"));
  std::string stats = MustRecv(&client);
  // The "stats" object is exactly the CLI's --stats payload...
  const Engine* engine = server.tenant_engine("");
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(ExtractObject(stats, "stats"), serve::EngineStatsJson(*engine));
  EXPECT_TRUE(Contains(stats, "\"caches\"")) << stats;
  // ...and the "metrics" object is the Engine::Metrics() snapshot: it
  // must round-trip through MetricsSnapshot::FromJson (PR 6 built the
  // snapshot as this endpoint's payload).
  std::string metrics = ExtractObject(stats, "metrics");
  ASSERT_FALSE(metrics.empty()) << stats;
  std::optional<obs::MetricsSnapshot> snapshot =
      obs::MetricsSnapshot::FromJson(metrics);
  ASSERT_TRUE(snapshot.has_value()) << metrics;
  EXPECT_EQ(snapshot->decisions_total, 1u);
  EXPECT_EQ(snapshot->ToJson(), metrics);
  // The "server" object reports the serving counters.
  std::string server_obj = ExtractObject(stats, "server");
  EXPECT_TRUE(Contains(server_obj, "\"connections_accepted\": 1"))
      << server_obj;
  EXPECT_TRUE(Contains(server_obj, "\"shed\": 0")) << server_obj;
  EXPECT_TRUE(Contains(server_obj, "\"draining\": false")) << server_obj;
}

TEST(ServeTest, TenantsGetIsolatedEnginesAndBudgetShares) {
  ServerOptions options;
  options.tenants = {"alpha", "beta"};
  options.cache_mb = 24;  // split three ways with the default tenant
  Server server(OwnsSigma(), options);
  ASSERT_TRUE(server.ok()) << server.error();
  RunningServer running(&server);
  LineClient client = MustConnect(server);

  const std::string query = "q(x,y) :- Interest(x,z), Class(y,z), Owns(x,y)";
  ASSERT_TRUE(client.SendLine("{\"query\": \"" + query +
                              "\", \"tenant\": \"alpha\"}"));
  EXPECT_TRUE(Contains(MustRecv(&client), "\"answer\": \"yes\""));

  // Decisions land on the tenant's engine only.
  const Engine* alpha = server.tenant_engine("alpha");
  const Engine* beta = server.tenant_engine("beta");
  const Engine* def = server.tenant_engine("");
  ASSERT_NE(alpha, nullptr);
  ASSERT_NE(beta, nullptr);
  ASSERT_NE(def, nullptr);
  EXPECT_EQ(alpha->stats().decisions, 1u);
  EXPECT_EQ(beta->stats().decisions, 0u);
  EXPECT_EQ(def->stats().decisions, 0u);
  // The 24 MiB total split across three tenants: each chase cache got
  // (24 MiB / 3) / 2.
  EXPECT_EQ(alpha->Stats().chase.max_bytes, 24u * 1024 * 1024 / 3 / 2);

  // Unknown tenants are refused per-request, not fatally.
  ASSERT_TRUE(client.SendLine("{\"query\": \"" + query +
                              "\", \"tenant\": \"nosuch\"}"));
  EXPECT_TRUE(Contains(MustRecv(&client), "unknown tenant"));
  ASSERT_TRUE(client.SendLine("health"));
  EXPECT_EQ(MustRecv(&client), serve::HealthResponse());
}

// ---------------------------------------------------------------------------
// Graceful shutdown.
// ---------------------------------------------------------------------------

size_t OpenFdCount() {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  size_t count = 0;
  while (readdir(dir) != nullptr) ++count;
  closedir(dir);
  return count;
}

TEST(ServeTest, ShutdownDrainsInFlightWorkAndLeaksNoFds) {
  size_t fds_before = OpenFdCount();
  {
    ServerOptions options;
    options.semac = HeavyOptions();
    options.drain_ms = 100;  // cancel stragglers quickly
    Server server(GuardedSigma(), options);
    ASSERT_TRUE(server.ok()) << server.error();
    std::thread runner([&server] { server.Run(); });

    LineClient client = MustConnect(server);
    // A heavy decision with no deadline: only the drain token's phase-2
    // cancellation can stop it.
    ASSERT_TRUE(client.SendLine(HeavyQueryText()));
    // Wait until a worker has actually BEGUN the decision (the engine
    // counts a decision at entry), then pull the plug the same way the
    // SIGTERM handler does. A fixed sleep here flakes under sanitizer
    // slowdowns (TSan runs 5-15x slower): shutdown could win the race
    // and drain an empty pool instead of cancelling in-flight work.
    const Engine* engine = server.tenant_engine("");
    ASSERT_NE(engine, nullptr);
    while (engine->stats().decisions == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    server.RequestShutdown();
    // The in-flight decision is cancelled and its deadline-exceeded
    // line still flushes to the client before the close.
    std::string response = MustRecv(&client);
    EXPECT_TRUE(Contains(response, "\"strategy\": \"deadline-exceeded\""))
        << response;
    // The server then closes the connection.
    EXPECT_FALSE(client.RecvLine(2000).has_value());
    runner.join();
  }
  // Everything the server and client opened is closed again (ASan's
  // leak check covers the memory side in the sanitize CI job).
  EXPECT_EQ(OpenFdCount(), fds_before);
}

// ---------------------------------------------------------------------------
// Fault matrix through the server path (PR 7's reusability invariant:
// an abort at any failpoint leaves the shared Engine coherent).
// ---------------------------------------------------------------------------

#if defined(SEMACYC_FAILPOINTS_ENABLED) && SEMACYC_FAILPOINTS_ENABLED
TEST(ServeFaultTest, FailpointAbortsLeaveConnectionAndEngineUsable) {
  struct Case {
    const char* failpoint;
    FailpointAction action;
  };
  const Case cases[] = {
      {"decide.after_core", FailpointAction::kCancel},
      {"oracle.candidate", FailpointAction::kCancel},
      {"oracle.candidate", FailpointAction::kBadAlloc},
      {"subsets.visit", FailpointAction::kBadAlloc},
  };
  const std::string query = "q(x,y) :- Interest(x,z), Class(y,z), Owns(x,y)";
  Engine reference(OwnsSigma(), SemAcOptions{});
  std::optional<std::string> expected =
      serve::BatchLineResponse(reference, query, 0, nullptr);
  ASSERT_TRUE(expected.has_value());

  for (const Case& c : cases) {
    Server server(OwnsSigma(), ServerOptions{});
    ASSERT_TRUE(server.ok()) << server.error();
    RunningServer running(&server);
    LineClient client = MustConnect(server);

    FailpointRegistry::Global().Arm(c.failpoint, c.action);
    ASSERT_TRUE(client.SendLine(query));
    std::string aborted = MustRecv(&client);
    const bool fired = FailpointRegistry::Global().Fired(c.failpoint);
    FailpointRegistry::Global().Disarm(c.failpoint);
    if (fired) {
      // A cancel surfaces as a graceful deadline-exceeded line; an
      // injected bad_alloc as the internal-error shape. Either way the
      // connection answered — it never died.
      EXPECT_TRUE(Contains(aborted, "deadline-exceeded") ||
                  Contains(aborted, "\"error\": \"internal:"))
          << c.failpoint << ": " << aborted;
    } else {
      // Failpoint not on this query's decision path: normal answer.
      EXPECT_EQ(aborted, *expected) << c.failpoint;
    }

    // Re-decide on the SAME connection and engine: byte-identical to a
    // never-aborted engine's decision (rollback left no trace).
    ASSERT_TRUE(client.SendLine(query));
    EXPECT_EQ(MustRecv(&client), *expected) << "after " << c.failpoint;
  }
}
#endif  // SEMACYC_FAILPOINTS_ENABLED

}  // namespace
}  // namespace semacyc
