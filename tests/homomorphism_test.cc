#include <gtest/gtest.h>

#include "core/homomorphism.h"
#include "core/parser.h"
#include "gen/generators.h"

namespace semacyc {
namespace {

Term C(const std::string& s) { return Term::Constant(s); }
Term V(const std::string& s) { return Term::Variable(s); }

Instance Db(const std::string& atoms) {
  Instance inst;
  inst.InsertAll(MustParseAtoms(atoms));
  return inst;
}

TEST(HomTest, SimpleMatch) {
  Instance db = Db("E('a','b'), E('b','c')");
  EXPECT_TRUE(HasHomomorphism(MustParseAtoms("E(x,y), E(y,z)"), db));
  EXPECT_FALSE(HasHomomorphism(MustParseAtoms("E(x,y), E(y,x)"), db));
}

TEST(HomTest, ConstantsMustMatchExactly) {
  Instance db = Db("E('a','b')");
  EXPECT_TRUE(HasHomomorphism(MustParseAtoms("E('a',y)"), db));
  EXPECT_FALSE(HasHomomorphism(MustParseAtoms("E('b',y)"), db));
}

TEST(HomTest, RepeatedVariablesForceEquality) {
  Instance db = Db("E('a','b')");
  EXPECT_FALSE(HasHomomorphism(MustParseAtoms("E(x,x)"), db));
  Instance loop = Db("E('a','a')");
  EXPECT_TRUE(HasHomomorphism(MustParseAtoms("E(x,x)"), loop));
}

TEST(HomTest, FixedBindingsAreRespected) {
  Instance db = Db("E('a','b'), E('c','d')");
  Substitution fixed = {{V("x"), C("c")}};
  auto hom = FindHomomorphism(MustParseAtoms("E(x,y)"), db, fixed);
  ASSERT_TRUE(hom.has_value());
  EXPECT_EQ(Apply(*hom, V("y")), C("d"));
}

TEST(HomTest, EmptySourceAlwaysMaps) {
  Instance db;
  EXPECT_TRUE(HasHomomorphism({}, db));
}

TEST(HomTest, AllSolutionsEnumerated) {
  Instance db = Db("E('a','b'), E('a','c'), E('b','c')");
  HomOptions options;
  options.max_solutions = 0;
  HomResult result = FindHomomorphisms(MustParseAtoms("E(x,y)"), db, options);
  EXPECT_EQ(result.solutions.size(), 3u);
}

TEST(HomTest, StepBudgetReportsExhaustion) {
  // A hard instance with no solution: budget must trip.
  Generator gen(3);
  Instance db = gen.RandomDatabase({Predicate::Get("E", 2)}, 60, 12);
  ConjunctiveQuery clique = gen.CliqueQuery(9);
  HomOptions options;
  options.step_budget = 50;
  HomResult result = FindHomomorphisms(clique.body(), db, options);
  EXPECT_TRUE(result.budget_exhausted || result.found);
}

TEST(HomTest, InjectiveModeRejectsCollapses) {
  Instance db = Db("E('a','a')");
  HomOptions options;
  options.injective = true;
  EXPECT_FALSE(
      FindHomomorphisms(MustParseAtoms("E(x,y)"), db, options).found);
  Instance db2 = Db("E('a','b')");
  EXPECT_TRUE(
      FindHomomorphisms(MustParseAtoms("E(x,y)"), db2, options).found);
}

TEST(HomTest, MapNullsControlsNullRigidity) {
  Instance target = Db("E('a','b')");
  Term n = Term::FreshNull();
  std::vector<Atom> source = {Atom(Predicate::Get("E", 2), {n, C("b")})};
  HomOptions flexible;
  EXPECT_TRUE(FindHomomorphisms(source, target, flexible).found);
  HomOptions rigid;
  rigid.map_nulls = false;
  EXPECT_FALSE(FindHomomorphisms(source, target, rigid).found);
}

TEST(EvaluateQueryTest, ReturnsTuples) {
  Instance db = Db("E('a','b'), E('b','c')");
  ConjunctiveQuery q = MustParseQuery("q(x,z) :- E(x,y), E(y,z)");
  auto answers = EvaluateQuery(q, db);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0][0], C("a"));
  EXPECT_EQ(answers[0][1], C("c"));
}

TEST(EvaluateQueryTest, DeduplicatesAnswers) {
  Instance db = Db("E('a','b'), E('a','c')");
  ConjunctiveQuery q = MustParseQuery("q(x) :- E(x,y)");
  EXPECT_EQ(EvaluateQuery(q, db).size(), 1u);
}

TEST(EvaluateQueryTest, DecisionVersion) {
  Instance db = Db("E('a','b')");
  ConjunctiveQuery q = MustParseQuery("q(x) :- E(x,y)");
  EXPECT_TRUE(EvaluatesTo(q, db, {C("a")}));
  EXPECT_FALSE(EvaluatesTo(q, db, {C("b")}));
}

TEST(EvaluateQueryTest, RepeatedHeadVariable) {
  Instance db = Db("E('a','a'), E('a','b')");
  ConjunctiveQuery q = MustParseQuery("q(x,x) :- E(x,x)");
  EXPECT_TRUE(EvaluatesTo(q, db, {C("a"), C("a")}));
  EXPECT_FALSE(EvaluatesTo(q, db, {C("a"), C("b")}));
}

TEST(HomEquivalenceTest, InstancesWithNulls) {
  Instance a, b;
  Term n1 = Term::FreshNull(), n2 = Term::FreshNull();
  Predicate e = Predicate::Get("E", 2);
  a.Insert(Atom(e, {C("a"), n1}));
  b.Insert(Atom(e, {C("a"), n2}));
  b.Insert(Atom(e, {C("a"), C("a")}));
  // a maps into b (null flexible) and b maps into a? E(a,a) needs a loop
  // in a: no. So not equivalent.
  EXPECT_TRUE(HasHomomorphism(a.atoms(), b));
  EXPECT_FALSE(HomomorphicallyEquivalent(a, b));
}

/// Property: EvaluateQuery agrees with a naive re-check of each answer.
class HomSweep : public ::testing::TestWithParam<int> {};

TEST_P(HomSweep, AnswersVerifyIndividually) {
  Generator gen(static_cast<uint64_t>(GetParam()));
  std::vector<Predicate> preds = {Predicate::Get("E", 2),
                                  Predicate::Get("F", 2)};
  Instance db = gen.RandomDatabase(preds, 30, 6);
  ConjunctiveQuery q = MustParseQuery("q(x,z) :- E(x,y), F(y,z)");
  auto answers = EvaluateQuery(q, db);
  for (const auto& t : answers) {
    EXPECT_TRUE(EvaluatesTo(q, db, t));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HomSweep, ::testing::Range(0, 10));

}  // namespace
}  // namespace semacyc
