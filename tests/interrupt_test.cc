#include <gtest/gtest.h>

#include <chrono>
#include <new>
#include <thread>

#include "core/canonical.h"
#include "core/interrupt.h"
#include "core/parser.h"
#include "gen/generators.h"
#include "semacyc/engine.h"

namespace semacyc {
namespace {

// ---------------------------------------------------------------------------
// CancelToken unit behavior.
// ---------------------------------------------------------------------------

TEST(CancelTokenTest, DefaultTokenNeverTrips) {
  CancelToken token;
  for (int i = 0; i < 500; ++i) EXPECT_FALSE(token.Poll());
  EXPECT_FALSE(token.PollNow());
  EXPECT_FALSE(token.triggered());
  EXPECT_FALSE(token.has_deadline());
}

TEST(CancelTokenTest, RequestCancelIsSticky) {
  CancelToken token;
  EXPECT_FALSE(token.Poll());
  token.RequestCancel();
  EXPECT_TRUE(token.Poll());
  EXPECT_TRUE(token.triggered());
  // Tripped stays tripped: every later poll along the unwind agrees.
  EXPECT_TRUE(token.Poll());
  EXPECT_TRUE(token.PollNow());
}

TEST(CancelTokenTest, PollNowTripsOnElapsedDeadline) {
  CancelToken token;
  token.SetDeadline(CancelToken::Clock::now() -
                    std::chrono::milliseconds(1));
  EXPECT_TRUE(token.PollNow());
  EXPECT_TRUE(token.triggered());
}

TEST(CancelTokenTest, AmortizedPollTripsWithinOneStride) {
  CancelToken token;
  token.SetDeadline(CancelToken::Clock::now() -
                    std::chrono::milliseconds(1));
  // Poll() reads the clock only every kPollStride calls, so the trip may
  // lag — but never by more than one stride.
  uint32_t polls = 0;
  while (!token.Poll()) {
    ASSERT_LT(++polls, CancelToken::kPollStride + 1);
  }
  EXPECT_TRUE(token.triggered());
}

TEST(CancelTokenTest, SetDeadlineOnlyTightens) {
  CancelToken token;
  token.SetDeadlineInMs(5);
  auto first = token.deadline();
  token.SetDeadlineInMs(10000);  // later: must not loosen
  EXPECT_EQ(token.deadline(), first);
  auto earlier = CancelToken::Clock::now() - std::chrono::milliseconds(1);
  token.SetDeadline(earlier);  // earlier: must tighten
  EXPECT_EQ(token.deadline(), earlier);
}

TEST(CancelTokenTest, NonPositiveMsIsNoop) {
  CancelToken token;
  token.SetDeadlineInMs(0);
  token.SetDeadlineInMs(-7);
  EXPECT_FALSE(token.has_deadline());
}

TEST(CancelTokenTest, ChildObservesParentCancel) {
  CancelToken parent;
  CancelToken child;
  child.SetParent(&parent);
  EXPECT_FALSE(child.PollNow());
  parent.RequestCancel();
  EXPECT_TRUE(child.PollNow());
  EXPECT_TRUE(child.triggered());
  // The parent itself was only requested, not polled.
  EXPECT_FALSE(parent.triggered());
}

TEST(CancelTokenTest, SetParentFoldsParentDeadline) {
  CancelToken parent;
  parent.SetDeadlineInMs(5);
  CancelToken child;
  child.SetParent(&parent);
  EXPECT_TRUE(child.has_deadline());
  EXPECT_EQ(child.deadline(), parent.deadline());
  // A tighter own deadline wins over the inherited one.
  CancelToken tight;
  auto past = CancelToken::Clock::now() - std::chrono::milliseconds(1);
  tight.SetDeadline(past);
  tight.SetParent(&parent);
  EXPECT_EQ(tight.deadline(), past);
}

TEST(CancelTokenTest, CancelFromAnotherThreadTrips) {
  CancelToken token;
  std::thread canceller([&token]() { token.RequestCancel(); });
  canceller.join();
  EXPECT_TRUE(token.PollNow());
}

// ---------------------------------------------------------------------------
// FailpointRegistry unit behavior. The registry is process-global, so each
// test disarms what it armed. These tests drive the registry directly and
// hold with failpoints compiled in or out.
// ---------------------------------------------------------------------------

TEST(FailpointRegistryTest, FiresOnKthHitOnly) {
  auto& reg = FailpointRegistry::Global();
  reg.Arm("test.kth", FailpointAction::kCancel, 3);
  CancelToken token;
  reg.Hit("test.kth", &token);
  reg.Hit("test.kth", &token);
  EXPECT_FALSE(token.PollNow());
  EXPECT_FALSE(reg.Fired("test.kth"));
  reg.Hit("test.kth", &token);
  EXPECT_TRUE(token.PollNow());
  EXPECT_TRUE(reg.Fired("test.kth"));
  EXPECT_EQ(reg.HitCount("test.kth"), 3u);
  // Exactly the K-th hit acts; later hits are counted but do not re-fire.
  CancelToken fresh;
  reg.Hit("test.kth", &fresh);
  EXPECT_FALSE(fresh.PollNow());
  EXPECT_EQ(reg.HitCount("test.kth"), 4u);
  reg.DisarmAll();
}

TEST(FailpointRegistryTest, DisarmedPointIsInert) {
  auto& reg = FailpointRegistry::Global();
  reg.Arm("test.inert", FailpointAction::kCancel);
  reg.Disarm("test.inert");
  CancelToken token;
  reg.Hit("test.inert", &token);
  EXPECT_FALSE(token.PollNow());
  EXPECT_EQ(reg.HitCount("test.inert"), 0u);
}

TEST(FailpointRegistryTest, BadAllocActionThrows) {
  auto& reg = FailpointRegistry::Global();
  reg.Arm("test.oom", FailpointAction::kBadAlloc);
  EXPECT_THROW(reg.Hit("test.oom", nullptr), std::bad_alloc);
  reg.DisarmAll();
}

TEST(FailpointRegistryTest, FlipActionInvertsFlag) {
  auto& reg = FailpointRegistry::Global();
  reg.Arm("test.flip", FailpointAction::kFlipBranch, 2);
  bool flag = true;
  reg.HitFlip("test.flip", &flag);
  EXPECT_TRUE(flag);  // 1st hit: not yet
  reg.HitFlip("test.flip", &flag);
  EXPECT_FALSE(flag);  // 2nd hit: inverted
  reg.HitFlip("test.flip", &flag);
  EXPECT_FALSE(flag);  // later hits: inert
  reg.DisarmAll();
}

TEST(FailpointRegistryTest, ArmFromSpecParsesWellFormedEntries) {
  auto& reg = FailpointRegistry::Global();
  EXPECT_TRUE(reg.ArmFromSpec("a.one=cancel@2,b.two=bad_alloc,c.three=flip"));
  EXPECT_EQ(reg.ArmedNames().size(), 3u);
  CancelToken token;
  reg.Hit("a.one", &token);
  EXPECT_FALSE(token.PollNow());
  reg.Hit("a.one", &token);
  EXPECT_TRUE(token.PollNow());
  reg.DisarmAll();
}

TEST(FailpointRegistryTest, ArmFromSpecRejectsMalformedEntries) {
  auto& reg = FailpointRegistry::Global();
  EXPECT_FALSE(reg.ArmFromSpec("=cancel"));
  EXPECT_FALSE(reg.ArmFromSpec("x"));
  EXPECT_FALSE(reg.ArmFromSpec("x=nosuchaction"));
  EXPECT_FALSE(reg.ArmFromSpec("x=cancel@"));
  EXPECT_FALSE(reg.ArmFromSpec("x=cancel@12q"));
  // Valid entries before a malformed one stay armed.
  EXPECT_FALSE(reg.ArmFromSpec("ok.point=cancel,broken"));
  EXPECT_EQ(reg.ArmedNames().size(), 1u);
  EXPECT_EQ(reg.ArmedNames()[0], "ok.point");
  reg.DisarmAll();
}

// ---------------------------------------------------------------------------
// Engine-level deadline / cancellation behavior.
// ---------------------------------------------------------------------------

/// Field-wise decision equality up to witness isomorphism (witness
/// variables are minted from a process-wide counter).
void ExpectSameDecision(const SemAcResult& a, const SemAcResult& b) {
  EXPECT_EQ(a.answer, b.answer);
  EXPECT_EQ(a.strategy, b.strategy);
  EXPECT_EQ(a.exact, b.exact);
  EXPECT_EQ(a.witness.has_value(), b.witness.has_value());
  if (a.witness.has_value() && b.witness.has_value()) {
    EXPECT_TRUE(AreIsomorphic(*a.witness, *b.witness));
  }
}

void ExpectAborted(const SemAcResult& r) {
  EXPECT_EQ(r.answer, SemAcAnswer::kUnknown);
  EXPECT_EQ(r.strategy, Strategy::kDeadlineExceeded);
  EXPECT_FALSE(r.exact);
  EXPECT_FALSE(r.witness.has_value());
}

DependencySet GuardedSigma() {
  return MustParseDependencySet("T(x,y) -> E(y,z), E(z,x)");
}

SemAcOptions SweepOptions() {
  SemAcOptions options;
  options.subset_budget = 8000;
  options.exhaustive_budget = 8000;
  return options;
}

TEST(EngineDeadlineTest, PreCancelledTokenAbortsAndEngineStaysReusable) {
  Generator gen(7);
  ConjunctiveQuery q = gen.CycleQuery(4);
  Engine engine(GuardedSigma(), SweepOptions());
  PreparedQuery pq = engine.Prepare(q);

  CancelToken cancelled;
  cancelled.RequestCancel();
  ExpectAborted(engine.Decide(pq, &cancelled));

  // The abort protocol rolled back everything the aborted call inserted,
  // so the same engine now answers exactly like one that never saw it —
  // and its re-decide does the same cache work as a fresh engine's first.
  EngineCacheStats before = engine.Stats();
  SemAcResult warm = engine.Decide(pq);
  EngineCacheStats after = engine.Stats();

  Engine fresh(GuardedSigma(), SweepOptions());
  EngineCacheStats fresh_before = fresh.Stats();
  SemAcResult cold = fresh.Decide(fresh.Prepare(q));
  EngineCacheStats fresh_after = fresh.Stats();

  ExpectSameDecision(cold, warm);
  EXPECT_EQ(after.chase.inserts - before.chase.inserts,
            fresh_after.chase.inserts - fresh_before.chase.inserts);
  EXPECT_EQ(after.oracles.inserts - before.oracles.inserts,
            fresh_after.oracles.inserts - fresh_before.oracles.inserts);
  EXPECT_EQ(after.decisions.inserts - before.decisions.inserts,
            fresh_after.decisions.inserts - fresh_before.decisions.inserts);
  EXPECT_EQ(after.rewrite.inserts - before.rewrite.inserts,
            fresh_after.rewrite.inserts - fresh_before.rewrite.inserts);
}

TEST(EngineDeadlineTest, ElapsedTokenDeadlineAborts) {
  Generator gen(7);
  Engine engine(GuardedSigma(), SweepOptions());
  PreparedQuery pq = engine.Prepare(gen.CycleQuery(4));
  CancelToken token;
  token.SetDeadline(CancelToken::Clock::now() -
                    std::chrono::milliseconds(1));
  ExpectAborted(engine.Decide(pq, &token));
}

TEST(EngineDeadlineTest, DeadlineMsBoundsAHeavyDecision) {
  // A cyclic query with near-unbounded enumeration budgets: without the
  // deadline this decision would grind through tens of millions of DFS
  // visits. The 25ms deadline must bring it back promptly.
  SemAcOptions options;
  options.subset_budget = 500000000;
  options.exhaustive_budget = 500000000;
  options.deadline_ms = 25;
  Generator gen(7);
  ConjunctiveQuery q = gen.CycleQuery(5);
  Engine engine(GuardedSigma(), options);
  PreparedQuery pq = engine.Prepare(q);

  auto t0 = std::chrono::steady_clock::now();
  SemAcResult r = engine.Decide(pq);
  auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  ExpectAborted(r);
  // Generous CI slack; the real bound (deadline + one poll stride) is
  // asserted with statistics by bench_interrupt_overhead's tightness gate.
  EXPECT_LT(elapsed_ms, 5000);
  // Aborted decisions are never cached: a repeat attempt re-runs (and
  // re-aborts under the same engine-level deadline).
  ExpectAborted(engine.Decide(pq));
}

TEST(EngineDeadlineTest, ExternalCancelFromAnotherThreadMidFlight) {
  SemAcOptions options;
  options.subset_budget = 500000000;
  options.exhaustive_budget = 500000000;
  Generator gen(7);
  Engine engine(GuardedSigma(), options);
  PreparedQuery pq = engine.Prepare(gen.CycleQuery(5));
  CancelToken token;
  std::thread canceller([&token]() {
    // The sleep only shapes the interleaving; it cannot flake. Whether
    // the cancel lands before the first poll or mid-search (TSan's 5-15x
    // slowdown shifts it either way), the decision aborts identically.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    token.RequestCancel();
  });
  SemAcResult r = engine.Decide(pq, &token);
  canceller.join();
  ExpectAborted(r);
}

TEST(EngineDeadlineTest, BatchDeadlineAbortsStragglers) {
  SemAcOptions options;
  options.subset_budget = 500000000;
  options.exhaustive_budget = 500000000;
  Generator gen(7);
  Engine engine(GuardedSigma(), options);
  std::vector<PreparedQuery> batch;
  for (int i = 0; i < 4; ++i) {
    batch.push_back(engine.Prepare(gen.CycleQuery(5 + i)));
  }
  Engine::BatchDeadlines deadlines;
  deadlines.batch_ms = 25;
  auto t0 = std::chrono::steady_clock::now();
  std::vector<SemAcResult> results = engine.DecideBatch(batch, 2, deadlines);
  auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  ASSERT_EQ(results.size(), batch.size());
  for (const SemAcResult& r : results) ExpectAborted(r);
  EXPECT_LT(elapsed_ms, 5000);
}

TEST(EngineDeadlineTest, PerQueryDeadlineLeavesFastQueriesAlone) {
  SemAcOptions options;
  options.subset_budget = 500000000;
  options.exhaustive_budget = 500000000;
  Generator gen(7);
  Engine engine(GuardedSigma(), options);
  // One trivially-acyclic query (decided at the kAlreadyAcyclic gate,
  // microseconds) and one heavy cyclic one.
  std::vector<PreparedQuery> batch;
  batch.push_back(engine.Prepare(MustParseQuery("E(x,y), E(y,z)")));
  batch.push_back(engine.Prepare(gen.CycleQuery(5)));
  Engine::BatchDeadlines deadlines;
  deadlines.per_query_ms = 25;
  std::vector<SemAcResult> results = engine.DecideBatch(batch, 1, deadlines);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].answer, SemAcAnswer::kYes);
  EXPECT_EQ(results[0].strategy, Strategy::kAlreadyAcyclic);
  ExpectAborted(results[1]);
}

TEST(EngineDeadlineTest, BatchWithoutDeadlinesMatchesPlainBatch) {
  Generator gen(7);
  Engine engine(GuardedSigma(), SweepOptions());
  std::vector<PreparedQuery> batch;
  batch.push_back(engine.Prepare(gen.CycleQuery(3)));
  batch.push_back(engine.Prepare(gen.RandomAcyclicQuery(4, 2, 2, "E")));
  std::vector<SemAcResult> plain = engine.DecideBatch(batch, 1);
  std::vector<SemAcResult> timed =
      engine.DecideBatch(batch, 1, Engine::BatchDeadlines{});
  ASSERT_EQ(plain.size(), timed.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    ExpectSameDecision(plain[i], timed[i]);
  }
}

TEST(EngineDeadlineTest, ApproximateAndEvalSurfaceDeadlineStatus) {
  SemAcOptions options;
  options.subset_budget = 500000000;
  options.exhaustive_budget = 500000000;
  options.deadline_ms = 25;
  Generator gen(7);
  Engine engine(GuardedSigma(), options);
  PreparedQuery pq = engine.Prepare(gen.CycleQuery(5));

  ApproximateOutcome approx = engine.Approximate(pq);
  EXPECT_EQ(approx.status.code, Status::Code::kDeadlineExceeded);

  EvalOutcome eval = engine.Eval(pq, Instance{});
  EXPECT_EQ(eval.status.code, Status::Code::kDeadlineExceeded);
  EXPECT_FALSE(eval.reformulated);
}

// ---------------------------------------------------------------------------
// Step-budget floor behavior (satellite): budgets of exactly 0 and 1 must
// degrade to a consistent kBudgetExhausted — kUnknown, exact = false, no
// witness, no crash — for the subsets and exhaustive strategies alike.
// ---------------------------------------------------------------------------

TEST(BudgetFloorTest, ZeroAndOneBudgetsDegradeConsistently) {
  Generator gen(7);
  // Cyclic, not semantically acyclic under the guarded schema, and not
  // decidable by the early strategies — so the witness searches are the
  // only hope, and starving them must yield kBudgetExhausted.
  ConjunctiveQuery q = gen.CycleQuery(4);
  for (size_t budget : {size_t{0}, size_t{1}}) {
    for (int config = 0; config < 3; ++config) {
      SemAcOptions options;
      options.image_homs = budget;
      options.subset_budget = budget;
      options.exhaustive_budget = budget;
      options.enable_images = false;
      options.enable_subsets = config != 1;     // 0: subsets only
      options.enable_exhaustive = config != 0;  // 1: exhaustive only, 2: both
      Engine engine(GuardedSigma(), options);
      SemAcResult r = engine.Decide(engine.Prepare(q));
      EXPECT_EQ(r.answer, SemAcAnswer::kUnknown)
          << "budget=" << budget << " config=" << config;
      EXPECT_EQ(r.strategy, Strategy::kBudgetExhausted);
      EXPECT_FALSE(r.exact);
      EXPECT_FALSE(r.witness.has_value());
    }
  }
}

}  // namespace
}  // namespace semacyc
