#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>

#include "core/canonical.h"
#include "core/homomorphism.h"
#include "core/hypergraph.h"
#include "core/parser.h"
#include "gen/generators.h"
#include "semacyc/engine.h"

namespace semacyc {
namespace {

/// Engine construction for the answer-only tests (parity, concurrency,
/// batch): unbounded caches by default; the tiny-cache ctest job sets
/// SEMACYC_TEST_CACHE_BYTES to a small per-cache byte budget so the same
/// sweeps exercise the eviction paths on every push. Tests that assert
/// hit/miss counters pin their own explicit configurations instead.
EngineOptions EnvCacheOptions(SemAcOptions semac) {
  EngineOptions options;
  options.semac = semac;
  if (const char* env = std::getenv("SEMACYC_TEST_CACHE_BYTES")) {
    size_t bytes = static_cast<size_t>(std::strtoull(env, nullptr, 10));
    if (bytes > 0) {
      for (CacheConfig* c :
           {&options.chase, &options.rewrite, &options.oracles,
            &options.decisions}) {
        c->max_bytes = bytes;
        c->shards = 1;
      }
    }
  }
  return options;
}

/// Field-wise equality of two decisions (SemAcResult has no operator==).
/// Witnesses are compared up to isomorphism: the pipeline is deterministic
/// in structure, but witness variables are minted from a process-wide
/// fresh-name counter, so two runs of the same decision name them apart.
void ExpectSameDecision(const SemAcResult& a, const SemAcResult& b) {
  EXPECT_EQ(a.answer, b.answer);
  EXPECT_EQ(a.strategy, b.strategy);
  EXPECT_EQ(a.exact, b.exact);
  EXPECT_EQ(a.small_query_bound, b.small_query_bound);
  EXPECT_EQ(a.bound_justified, b.bound_justified);
  EXPECT_EQ(a.witness.has_value(), b.witness.has_value());
  if (a.witness.has_value() && b.witness.has_value()) {
    EXPECT_TRUE(AreIsomorphic(*a.witness, *b.witness))
        << a.witness->ToString() << "\n  vs\n  " << b.witness->ToString();
    EXPECT_EQ(a.witness_class, b.witness_class);
  }
}

/// The workload of the parity/reuse tests: one schema, queries drawn from
/// the generator families plus the paper's named examples.
struct Workload {
  DependencySet sigma;
  std::vector<ConjunctiveQuery> queries;
};

Workload GuardedWorkload(uint64_t seed) {
  Workload w;
  w.sigma = MustParseDependencySet("T(x,y) -> E(y,z), E(z,x)");
  Generator gen(seed);
  w.queries.push_back(MustParseQuery("T(x,y), E(y,z), E(z,x)"));
  w.queries.push_back(gen.CycleQuery(3));
  w.queries.push_back(gen.CycleQuery(4));
  w.queries.push_back(gen.RandomAcyclicQuery(4, 2, 2, "E"));
  w.queries.push_back(MustParseQuery("E(a,b), E(b,c), E(a,d), E(d,c)"));
  w.queries.push_back(gen.AlphaNotBetaQuery(1));
  w.queries.push_back(gen.BergeTreeQuery(5));
  return w;
}

Workload NrWorkload(uint64_t seed) {
  Workload w;
  w.sigma = MustParseDependencySet("B1(x,y), B2(y,z) -> B3(z,x)");
  Generator gen(seed);
  w.queries.push_back(MustParseQuery("B1(x,y), B2(y,z), B3(z,x)"));
  w.queries.push_back(MustParseQuery("B1(x,y), B2(y,x)"));
  w.queries.push_back(gen.RandomAcyclicQuery(3, 2, 3, "B"));
  w.queries.push_back(gen.BetaNotGammaQuery(1));
  return w;
}

Workload EgdWorkload(uint64_t) {
  Workload w;
  w.sigma = MustParseDependencySet("R(a,b), R(a,c) -> b = c");
  w.queries.push_back(MustParseQuery("R(x,y), R(x,z), E(y,z)"));
  w.queries.push_back(MustParseQuery("E(a,b), E(b,c), E(c,a)"));
  w.queries.push_back(MustParseQuery("R(x,y), E(y,y)"));
  return w;
}

SemAcOptions SweepOptions() {
  SemAcOptions options;
  options.subset_budget = 8000;
  options.exhaustive_budget = 8000;
  return options;
}

TEST(EngineTest, PreparedStateMatchesDirectAnalysis) {
  Workload w = GuardedWorkload(11);
  Engine engine(w.sigma, SweepOptions());
  for (const ConjunctiveQuery& q : w.queries) {
    PreparedQuery pq = engine.Prepare(q);
    EXPECT_EQ(pq.fingerprint(), CanonicalFingerprint(q));
    EXPECT_EQ(pq.classification().cls, ClassifyQuery(q).cls);
    bool justified = false;
    EXPECT_EQ(pq.small_query_bound(), SmallQueryBound(q, w.sigma, &justified));
    EXPECT_EQ(pq.bound_justified(), justified);
  }
}

/// Engine-vs-free-function parity: a *warm* shared engine (every query
/// decided twice, in between other queries) answers exactly like the cold
/// one-shot free function.
TEST(EngineTest, ParitySweepAcrossGeneratorFamilies) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    for (Workload w :
         {GuardedWorkload(seed), NrWorkload(seed), EgdWorkload(seed)}) {
      SemAcOptions options = SweepOptions();
      Engine engine(w.sigma, EnvCacheOptions(options));
      std::vector<PreparedQuery> prepared;
      for (const auto& q : w.queries) prepared.push_back(engine.Prepare(q));
      // First pass warms every cache; second pass must not drift.
      std::vector<SemAcResult> warm;
      for (const auto& pq : prepared) warm.push_back(engine.Decide(pq));
      for (size_t i = 0; i < prepared.size(); ++i) {
        SemAcResult cold =
            DecideSemanticAcyclicity(w.queries[i], w.sigma, options);
        SemAcResult again = engine.Decide(prepared[i]);
        ExpectSameDecision(cold, warm[i]);
        ExpectSameDecision(cold, again);
        if (cold.answer == SemAcAnswer::kYes && cold.witness.has_value()) {
          EXPECT_EQ(EquivalentUnder(w.queries[i], *cold.witness, w.sigma),
                    Tri::kYes);
        }
      }
    }
  }
}

TEST(EngineTest, DecisionCacheServesRepeats) {
  Workload w = GuardedWorkload(5);
  Engine engine(w.sigma, SweepOptions());
  PreparedQuery pq = engine.Prepare(w.queries[0]);
  SemAcResult first = engine.Decide(pq);
  SemAcResult second = engine.Decide(pq);
  ExpectSameDecision(first, second);
  EngineStats stats = engine.stats();
  EXPECT_EQ(stats.decisions, 2u);
  EXPECT_EQ(stats.decision_cache_hits, 1u);
}

TEST(EngineTest, DecisionCacheResolvesIsomorphicQueries) {
  Workload w = GuardedWorkload(6);
  Engine engine(w.sigma, SweepOptions());
  ConjunctiveQuery q = MustParseQuery("T(x,y), E(y,z), E(z,x)");
  ConjunctiveQuery renamed = MustParseQuery("T(u,v), E(v,w), E(w,u)");
  engine.Decide(q);
  SemAcResult hit = engine.Decide(renamed);
  EXPECT_EQ(engine.stats().decision_cache_hits, 1u);
  EXPECT_EQ(hit.answer, SemAcAnswer::kYes);
}

/// Oracle persistence: with the decision cache off, re-deciding the same
/// query re-enumerates the same candidates, and the surviving per-query
/// oracle answers them from its memo instead of re-chasing.
TEST(EngineTest, OracleMemoSurvivesAcrossCalls) {
  // Transitive closure keeps the triangle cyclic and its chase finite, and
  // — because the tgd head predicate occurs in q — forces the oracle onto
  // its memoized chase path (not the chase-free degeneration). Every
  // strategy runs in full, so the candidate stream is long enough to make
  // reuse visible.
  DependencySet sigma = MustParseDependencySet("E(x,y), E(y,z) -> E(x,z)");
  Generator gen(2);
  ConjunctiveQuery triangle = gen.CycleQuery(3);
  EngineConfig config;
  config.cache_decisions = false;
  Engine engine(sigma, SweepOptions(), config);
  PreparedQuery pq = engine.Prepare(triangle);

  SemAcResult first = engine.Decide(pq);
  EngineStats after_first = engine.stats();
  ASSERT_GT(first.candidates_tested, 0u);
  ASSERT_GT(after_first.oracle_misses + after_first.oracle_prefiltered, 0u);

  SemAcResult second = engine.Decide(pq);
  EngineStats after_second = engine.stats();
  ExpectSameDecision(first, second);
  EXPECT_GE(after_second.oracle_reuses, 1u);
  // No new memo misses in the second run: every non-prefiltered candidate
  // was served from the surviving memo.
  EXPECT_EQ(after_second.oracle_misses, after_first.oracle_misses);
  EXPECT_GT(after_second.oracle_hits, after_first.oracle_hits);
}

TEST(EngineTest, ChaseCacheSharedAcrossEntrypoints) {
  Workload w = GuardedWorkload(7);
  EngineConfig config;
  config.cache_decisions = false;
  Engine engine(w.sigma, SweepOptions(), config);
  PreparedQuery pq = engine.Prepare(w.queries[1]);  // cyclic triangle
  engine.Decide(pq);
  size_t misses_once = engine.stats().chase_cache_misses;
  engine.Decide(pq);
  EXPECT_EQ(engine.stats().chase_cache_misses, misses_once);
  EXPECT_GT(engine.stats().chase_cache_hits, 0u);
}

/// Concurrent decisions on one shared Engine are deterministic: every
/// thread sees the same answers the sequential reference produced.
TEST(EngineTest, ConcurrentDecideIsDeterministic) {
  Workload w = GuardedWorkload(13);
  SemAcOptions options = SweepOptions();
  std::vector<SemAcResult> reference;
  {
    Engine engine(w.sigma, options);
    for (const auto& q : w.queries) reference.push_back(engine.Decide(q));
  }

  Engine shared(w.sigma, EnvCacheOptions(options));
  std::vector<PreparedQuery> prepared;
  for (const auto& q : w.queries) prepared.push_back(shared.Prepare(q));

  constexpr size_t kThreads = 8;
  std::vector<std::vector<SemAcResult>> per_thread(kThreads);
  std::vector<std::thread> pool;
  for (size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t]() {
      // Different starting offsets so threads race on different queries.
      for (size_t k = 0; k < prepared.size(); ++k) {
        size_t i = (k + t) % prepared.size();
        per_thread[t].push_back(shared.Decide(prepared[i]));
      }
    });
  }
  for (auto& t : pool) t.join();

  for (size_t t = 0; t < kThreads; ++t) {
    for (size_t k = 0; k < prepared.size(); ++k) {
      size_t i = (k + t) % prepared.size();
      ExpectSameDecision(reference[i], per_thread[t][k]);
    }
  }
}

TEST(EngineTest, DecideBatchMatchesSequentialAnyThreadCount) {
  Workload w = NrWorkload(21);
  SemAcOptions options = SweepOptions();
  Engine engine(w.sigma, EnvCacheOptions(options));
  std::vector<PreparedQuery> batch;
  for (int rep = 0; rep < 3; ++rep) {
    for (const auto& q : w.queries) batch.push_back(engine.Prepare(q));
  }
  std::vector<SemAcResult> sequential = engine.DecideBatch(batch, 1);
  std::vector<SemAcResult> parallel = engine.DecideBatch(batch, 4);
  ASSERT_EQ(sequential.size(), batch.size());
  ASSERT_EQ(parallel.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ExpectSameDecision(sequential[i], parallel[i]);
  }
}

TEST(EngineTest, EvalRunsYannakakisOverTheWitness) {
  MusicStoreWorkload w = MakeMusicStoreWorkload(3, 6, 6, 3, 0.5);
  Engine engine(w.sigma);
  PreparedQuery pq = engine.Prepare(w.q);
  EvalOutcome out = engine.Eval(pq, w.database);
  ASSERT_TRUE(out.status.ok()) << out.status.message;
  ASSERT_TRUE(out.reformulated);
  EXPECT_TRUE(IsAcyclic(out.witness));
  // Same answers as the generic evaluator on the original query.
  auto generic = EvaluateQuery(w.q, w.database);
  EXPECT_EQ(out.evaluation.answers.size(), generic.size());
  // Repeat Eval is served off the decision cache.
  EvalOutcome again = engine.Eval(pq, w.database);
  ASSERT_TRUE(again.reformulated);
  EXPECT_EQ(again.evaluation.answers.size(), out.evaluation.answers.size());
  EXPECT_GE(engine.stats().decision_cache_hits, 1u);
}

TEST(EngineTest, EvalReportsWhyWithoutReformulation) {
  DependencySet empty;
  Engine engine(empty, SweepOptions());
  Generator gen(4);
  PreparedQuery pq = engine.Prepare(gen.CycleQuery(4));
  Instance db;
  EvalOutcome out = engine.Eval(pq, db);
  EXPECT_FALSE(out.reformulated);
  EXPECT_EQ(out.status.code, Status::Code::kNotFound);
  EXPECT_FALSE(out.status.message.empty());
}

TEST(EngineTest, ApproximateReportsUnsupportedOnConstants) {
  DependencySet empty;
  Engine engine(empty);
  PreparedQuery pq = engine.Prepare(MustParseQuery("R(x,'a'), R(y,x)"));
  ApproximateOutcome out = engine.Approximate(pq);
  EXPECT_EQ(out.status.code, Status::Code::kUnsupported);
  // The free-function wrapper maps this to its historical nullopt.
  EXPECT_FALSE(
      AcyclicApproximation(pq.query(), empty, SemAcOptions{}).has_value());
}

TEST(EngineTest, ApproximateParityWithFreeFunction) {
  Generator gen(9);
  ConjunctiveQuery q = gen.CliqueQuery(3);
  DependencySet sigma = MustParseDependencySet("E(x,y) -> E(y,x)");
  SemAcOptions options = SweepOptions();
  Engine engine(sigma, options);
  ApproximateOutcome engine_out = engine.Approximate(engine.Prepare(q));
  ASSERT_TRUE(engine_out.status.ok());
  std::optional<ApproximationResult> free_out =
      AcyclicApproximation(q, sigma, options);
  ASSERT_TRUE(free_out.has_value());
  EXPECT_EQ(engine_out.result.approximation, free_out->approximation);
  EXPECT_EQ(engine_out.result.is_exact, free_out->is_exact);
}

TEST(EngineTest, DecideUcqSharesCachesAndSurvivesEmptyDisjuncts) {
  DependencySet sigma = MustParseDependencySet("R(u,v), R(u,w) -> v = w");
  ConjunctiveQuery unsat =
      MustParseQuery("R(x,'a'), R(x,'b'), E(x,y), E(y,z), E(z,x)");
  ConjunctiveQuery fine = MustParseQuery("E(x,y), R(x,x)");
  Engine engine(sigma, SweepOptions());

  // A failing-chase disjunct alongside a satisfiable one: the failing one
  // is contained in everything, hence redundant; the witness is the rest.
  UcqSemAcResult both = engine.DecideUcq(UnionQuery({unsat, fine}));
  EXPECT_EQ(both.answer, SemAcAnswer::kYes);
  ASSERT_TRUE(both.witness.has_value());
  for (const ConjunctiveQuery& d : both.witness->disjuncts()) {
    EXPECT_TRUE(IsAcyclic(d));
  }

  // A UCQ that is empty under Σ outright: YES with no witness to
  // assemble — the path that used to dereference a missing optional.
  UcqSemAcResult all_empty = engine.DecideUcq(UnionQuery({unsat}));
  EXPECT_EQ(all_empty.answer, SemAcAnswer::kYes);
  EXPECT_FALSE(all_empty.witness.has_value());

  // Free-function parity.
  UcqSemAcResult wrapped = DecideUcqSemanticAcyclicity(
      UnionQuery({unsat, fine}), sigma, SweepOptions());
  EXPECT_EQ(wrapped.answer, both.answer);
}

TEST(EngineTest, BoundJustificationIsSurfaced) {
  ConjunctiveQuery q = MustParseQuery("E(x,y), E(y,z), E(z,x)");
  // Guarded: justified. Full recursive: heuristic.
  SemAcResult guarded = DecideSemanticAcyclicity(
      q, MustParseDependencySet("E(x,y) -> E(y,w)"), SweepOptions());
  EXPECT_TRUE(guarded.bound_justified);
  SemAcResult recursive = DecideSemanticAcyclicity(
      q, MustParseDependencySet("E(x,y), E(y,z) -> E(x,z)"), SweepOptions());
  EXPECT_FALSE(recursive.bound_justified);
}

TEST(EngineTest, StrategyToStringKeepsHistoricalNames) {
  EXPECT_STREQ(ToString(Strategy::kAlreadyAcyclic), "already-acyclic");
  EXPECT_STREQ(ToString(Strategy::kCore), "core");
  EXPECT_STREQ(ToString(Strategy::kFailingChase), "failing-chase");
  EXPECT_STREQ(ToString(Strategy::kChaseCompaction), "chase-compaction");
  EXPECT_STREQ(ToString(Strategy::kImages), "images");
  EXPECT_STREQ(ToString(Strategy::kSubsets), "subsets");
  EXPECT_STREQ(ToString(Strategy::kExhaustive), "exhaustive");
  EXPECT_STREQ(ToString(Strategy::kBudgetExhausted), "budget-exhausted");
}

/// The chase memo's iso-resolution rename layer: an α-renamed variant of
/// a cached query hits the memo, and the adapted result is the chase of
/// the variant (frozen head evaluates, var_to_frozen keyed by the
/// variant's own variables, same saturation facts).
TEST(EngineTest, ChaseCacheResolvesIsomorphicQueries) {
  DependencySet sigma = MustParseDependencySet("T(x,y) -> E(y,z), E(z,x)");
  ConjunctiveQuery q = MustParseQuery("q(a) :- E(a,b), E(b,c), E(c,a)");
  ConjunctiveQuery renamed = MustParseQuery("q(u) :- E(u,v), E(v,w), E(w,u)");
  ChaseOptions chase_options;

  QueryChaseCache cache;
  std::shared_ptr<const QueryChaseResult> original =
      cache.GetOrCompute(q, sigma, chase_options);
  EXPECT_EQ(cache.misses(), 1u);
  std::shared_ptr<const QueryChaseResult> adapted =
      cache.GetOrCompute(renamed, sigma, chase_options);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);  // served by the rename layer, no chase

  // The adapted result shares the instance verbatim and transports the
  // saturation facts; var_to_frozen is keyed by the variant's variables.
  EXPECT_EQ(adapted->instance, original->instance);
  EXPECT_EQ(adapted->saturated, original->saturated);
  EXPECT_EQ(adapted->failed, original->failed);
  for (Term v : renamed.Variables()) {
    EXPECT_TRUE(adapted->var_to_frozen.count(v))
        << "missing frozen image for " << v.ToString();
  }
  EXPECT_EQ(adapted->var_to_frozen.at(Term::Variable("u")),
            adapted->frozen_head[0]);
  // Lemma 1 sanity: c(x̄) ∈ q'(chase(q', Σ)) through the adapted result.
  EXPECT_TRUE(
      EvaluatesTo(renamed, adapted->instance, adapted->frozen_head));

  // The next probe with the same variant exact-hits the memoized
  // adaptation instead of re-adapting.
  cache.GetOrCompute(renamed, sigma, chase_options);
  EXPECT_EQ(cache.hits(), 2u);

  // Engine level: with the decision cache off, deciding an α-renamed
  // variant still hits the shared chase memo and answers identically.
  EngineConfig config;
  config.cache_decisions = false;
  Engine engine(sigma, SweepOptions(), config);
  SemAcResult first = engine.Decide(q);
  size_t misses_after_first = engine.stats().chase_cache_misses;
  SemAcResult second = engine.Decide(renamed);
  EXPECT_EQ(engine.stats().chase_cache_misses, misses_after_first);
  EXPECT_GT(engine.stats().chase_cache_hits, 0u);
  EXPECT_EQ(first.answer, second.answer);
  EXPECT_EQ(first.strategy, second.strategy);
}

/// Eviction correctness: answers under 1-entry and tiny-byte-budget
/// caches are identical to unbounded-cache answers (and to the free
/// function) across the generator families — eviction only ever costs
/// recomputation, never changes a result.
TEST(EngineTest, EvictionParitySweepAcrossGeneratorFamilies) {
  for (uint64_t seed : {1u, 3u}) {
    for (Workload w :
         {GuardedWorkload(seed), NrWorkload(seed), EgdWorkload(seed)}) {
      SemAcOptions options = SweepOptions();
      std::vector<SemAcResult> reference;
      {
        Engine unbounded(w.sigma, options);
        for (const auto& q : w.queries) {
          reference.push_back(unbounded.Decide(q));
        }
      }

      EngineOptions one_entry;
      one_entry.semac = options;
      EngineOptions tiny_bytes;
      tiny_bytes.semac = options;
      for (EngineOptions* o : {&one_entry, &tiny_bytes}) {
        for (CacheConfig* c :
             {&o->chase, &o->rewrite, &o->oracles, &o->decisions}) {
          c->shards = 1;
          if (o == &one_entry) c->max_entries = 1;
          if (o == &tiny_bytes) c->max_bytes = 512;
        }
      }

      for (const EngineOptions& bounded : {one_entry, tiny_bytes}) {
        Engine engine(w.sigma, bounded);
        // Two passes so the second runs against whatever survived
        // eviction in the first.
        for (int pass = 0; pass < 2; ++pass) {
          for (size_t i = 0; i < w.queries.size(); ++i) {
            ExpectSameDecision(reference[i], engine.Decide(w.queries[i]));
          }
        }
      }
    }
  }
}

/// CacheStats accounting through Engine::Stats(): hits/misses/entries on
/// the unbounded configuration, evictions under a tiny byte budget, and
/// TrimCaches() as explicit pressure relief.
TEST(EngineTest, CacheStatsAccountingAndTrim) {
  Workload w = GuardedWorkload(23);
  SemAcOptions options = SweepOptions();

  Engine engine(w.sigma, options);
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& q : w.queries) engine.Decide(q);
  }
  EngineCacheStats stats = engine.Stats();
  EXPECT_GT(stats.decisions.entries, 0u);
  EXPECT_GT(stats.decisions.bytes, 0u);
  EXPECT_GT(stats.decisions.hits, 0u);  // second pass served from cache
  EXPECT_EQ(stats.decisions.misses, stats.decisions.inserts);
  EXPECT_GT(stats.chase.entries, 0u);
  EXPECT_GT(stats.chase.bytes, 0u);
  EXPECT_EQ(stats.chase.evictions, 0u);  // unbounded: nothing evicts
  EXPECT_EQ(stats.chase.max_bytes, 0u);
  EXPECT_GT(stats.oracles.entries, 0u);

  // Trim drops every resident entry; deciding afterwards still works.
  engine.TrimCaches();
  EngineCacheStats trimmed = engine.Stats();
  EXPECT_EQ(trimmed.chase.entries, 0u);
  EXPECT_EQ(trimmed.chase.bytes, 0u);
  EXPECT_GT(trimmed.chase.evictions + trimmed.decisions.evictions +
                trimmed.oracles.evictions + trimmed.rewrite.evictions,
            0u);
  for (size_t i = 0; i < w.queries.size(); ++i) {
    engine.Decide(w.queries[i]);
  }

  // A tiny byte budget on the same workload must evict.
  EngineOptions tiny;
  tiny.semac = options;
  tiny.SetTotalCacheBudget(2048);
  for (CacheConfig* c :
       {&tiny.chase, &tiny.rewrite, &tiny.oracles, &tiny.decisions}) {
    c->shards = 1;
  }
  Engine bounded(w.sigma, tiny);
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& q : w.queries) bounded.Decide(q);
  }
  EngineCacheStats bounded_stats = bounded.Stats();
  size_t evictions = bounded_stats.chase.evictions +
                     bounded_stats.rewrite.evictions +
                     bounded_stats.oracles.evictions +
                     bounded_stats.decisions.evictions;
  EXPECT_GT(evictions, 0u);
  size_t budget_bytes = bounded_stats.chase.max_bytes;
  EXPECT_EQ(budget_bytes, 1024u);  // half of the 2 KiB total
  EXPECT_LE(bounded_stats.chase.bytes, budget_bytes);
}

/// Eviction under contention: 8 threads over one engine whose caches all
/// run a tiny byte budget; every thread must still observe the sequential
/// reference answers (eviction may only cost recomputation).
TEST(EngineTest, ConcurrentDecideDeterministicUnderEviction) {
  Workload w = GuardedWorkload(29);
  SemAcOptions options = SweepOptions();
  std::vector<SemAcResult> reference;
  {
    Engine engine(w.sigma, options);
    for (const auto& q : w.queries) reference.push_back(engine.Decide(q));
  }

  EngineOptions tiny;
  tiny.semac = options;
  for (CacheConfig* c :
       {&tiny.chase, &tiny.rewrite, &tiny.oracles, &tiny.decisions}) {
    c->max_bytes = 512;
    c->shards = 1;  // maximal contention: one shard, everyone collides
  }
  Engine shared(w.sigma, tiny);
  std::vector<PreparedQuery> prepared;
  for (const auto& q : w.queries) prepared.push_back(shared.Prepare(q));

  constexpr size_t kThreads = 8;
  std::vector<std::vector<SemAcResult>> per_thread(kThreads);
  std::vector<std::thread> pool;
  for (size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t]() {
      for (size_t k = 0; k < prepared.size(); ++k) {
        size_t i = (k + t) % prepared.size();
        per_thread[t].push_back(shared.Decide(prepared[i]));
      }
    });
  }
  for (auto& t : pool) t.join();

  for (size_t t = 0; t < kThreads; ++t) {
    for (size_t k = 0; k < prepared.size(); ++k) {
      size_t i = (k + t) % prepared.size();
      ExpectSameDecision(reference[i], per_thread[t][k]);
    }
  }
}

/// The view-based join tree satellites eval/yannakakis: same running
/// intersection and same evaluation results as the atom-copying JoinTree.
TEST(EngineTest, JoinTreeViewMatchesOwningJoinTree) {
  Generator gen(17);
  for (int i = 0; i < 10; ++i) {
    ConjunctiveQuery q = gen.RandomAcyclicQuery(6, 3, 3, "V");
    std::optional<JoinTree> owning =
        BuildJoinTree(q.body(), ConnectingTerms::kVariables);
    std::optional<JoinTreeView> view =
        BuildJoinTreeView(q.body(), ConnectingTerms::kVariables);
    ASSERT_TRUE(owning.has_value());
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(view->parent(), owning->parent());
    EXPECT_EQ(view->root(), owning->root());
    EXPECT_TRUE(view->Validate(q.Variables()));

    Instance db = gen.RandomDatabase(
        {Predicate::Get("V0", 3), Predicate::Get("V1", 3),
         Predicate::Get("V2", 3)},
        40, 5);
    YannakakisResult via_view = EvaluateAcyclic(q, *view, db);
    YannakakisResult direct = EvaluateAcyclic(q, db);
    ASSERT_TRUE(via_view.ok);
    EXPECT_EQ(via_view.answers, direct.answers);
  }
}

}  // namespace
}  // namespace semacyc
