#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/canonical.h"
#include "core/homomorphism.h"
#include "core/interrupt.h"
#include "core/parser.h"
#include "gen/generators.h"
#include "semacyc/engine.h"

namespace semacyc {
namespace {

/// The parity contract of SemAcOptions::decide_threads: N workers run the
/// SAME ordered search space under the deterministic commit protocol
/// (core/worksteal.h), so every observable field of the decision —
/// including the budget-truncation point, the candidates-tested counter
/// and the witness itself — is bitwise identical to the sequential run.
/// This is strictly stronger than engine_test's ExpectSameDecision (which
/// tolerates witness renaming across unrelated runs): the parallel
/// witness strategies mint their variables from deterministic per-
/// candidate pools, so even the names must match.
void ExpectBitwiseParity(const SemAcResult& seq, const SemAcResult& par,
                         const std::string& context) {
  EXPECT_EQ(seq.answer, par.answer) << context;
  EXPECT_EQ(seq.strategy, par.strategy) << context;
  EXPECT_EQ(seq.exact, par.exact) << context;
  EXPECT_EQ(seq.small_query_bound, par.small_query_bound) << context;
  EXPECT_EQ(seq.bound_justified, par.bound_justified) << context;
  EXPECT_EQ(seq.bound_used, par.bound_used) << context;
  EXPECT_EQ(seq.candidates_tested, par.candidates_tested) << context;
  ASSERT_EQ(seq.witness.has_value(), par.witness.has_value()) << context;
  if (seq.witness.has_value()) {
    EXPECT_EQ(seq.witness_class, par.witness_class) << context;
    if (seq.strategy == Strategy::kSubsets ||
        seq.strategy == Strategy::kExhaustive) {
      EXPECT_EQ(seq.witness->ToString(), par.witness->ToString()) << context;
    } else {
      // Other strategies run identical sequential code either way, but
      // their witnesses use the process-wide fresh-name counter, which
      // two separate decisions legitimately advance apart.
      EXPECT_TRUE(AreIsomorphic(*seq.witness, *par.witness))
          << context << "\n  " << seq.witness->ToString() << "\n  vs\n  "
          << par.witness->ToString();
    }
  }
}

struct Workload {
  std::string name;
  DependencySet sigma;
  std::vector<ConjunctiveQuery> queries;
};

/// One workload per generator family / schema class, mirroring
/// engine_test's parity sweep: guarded tgds (chase oracles), a
/// non-recursive set (UCQ-rewriting oracles), and egds (K2 machinery).
/// Cyclic members drive the subsets and exhaustive strategies — the two
/// with a parallel implementation.
std::vector<Workload> Workloads(uint64_t seed) {
  std::vector<Workload> out;
  Generator gen(seed);
  {
    Workload w;
    w.name = "guarded";
    w.sigma = MustParseDependencySet("T(x,y) -> E(y,z), E(z,x)");
    w.queries.push_back(MustParseQuery("T(x,y), E(y,z), E(z,x)"));
    w.queries.push_back(gen.CycleQuery(3));
    w.queries.push_back(gen.CycleQuery(4));
    w.queries.push_back(gen.RandomAcyclicQuery(4, 2, 2, "E"));
    w.queries.push_back(MustParseQuery("E(a,b), E(b,c), E(a,d), E(d,c)"));
    w.queries.push_back(gen.AlphaNotBetaQuery(1));
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.name = "nr";
    w.sigma = MustParseDependencySet("B1(x,y), B2(y,z) -> B3(z,x)");
    w.queries.push_back(MustParseQuery("B1(x,y), B2(y,z), B3(z,x)"));
    w.queries.push_back(MustParseQuery("B1(x,y), B2(y,x)"));
    w.queries.push_back(gen.CycleQuery(3, "B3"));
    w.queries.push_back(gen.BetaNotGammaQuery(1));
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.name = "egd";
    w.sigma = MustParseDependencySet("R(a,b), R(a,c) -> b = c");
    w.queries.push_back(MustParseQuery("R(x,y), R(x,z), E(y,z)"));
    w.queries.push_back(MustParseQuery("E(a,b), E(b,c), E(c,a)"));
    w.queries.push_back(MustParseQuery("R(x,y), E(y,y)"));
    out.push_back(std::move(w));
  }
  return out;
}

SemAcOptions SweepOptions(size_t threads) {
  SemAcOptions options;
  options.subset_budget = 8000;
  options.exhaustive_budget = 8000;
  options.decide_threads = threads;
  return options;
}

/// The tentpole harness: a seeded sweep over every generator family,
/// 1 thread vs {2, 4, 8} threads at identical budgets, every decision
/// field compared bitwise. Fresh engines per thread count so no cache
/// state can paper over a divergence.
TEST(ParallelDecideTest, BitwiseParityAcrossGeneratorFamilies) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    for (const Workload& w : Workloads(seed)) {
      Engine reference(w.sigma, SweepOptions(1));
      std::vector<SemAcResult> seq;
      for (const auto& q : w.queries) {
        seq.push_back(reference.Decide(reference.Prepare(q)));
      }
      for (size_t threads : {size_t{2}, size_t{4}, size_t{8}}) {
        Engine engine(w.sigma, SweepOptions(threads));
        for (size_t i = 0; i < w.queries.size(); ++i) {
          std::string context = w.name + " seed " + std::to_string(seed) +
                                " / " + w.queries[i].ToString() + " @ " +
                                std::to_string(threads) + " threads";
          SemAcResult par = engine.Decide(engine.Prepare(w.queries[i]));
          ExpectBitwiseParity(seq[i], par, context);
        }
      }
    }
  }
}

/// Budget-edge parity: tiny budgets land the truncation point inside
/// arbitrary units (including unit 0 and mid-unit), the exact territory
/// where a racy shared budget would drift. The commit protocol must
/// reproduce the sequential truncation bitwise at every budget.
TEST(ParallelDecideTest, BudgetTruncationPointsMatchSequential) {
  Generator gen(23);
  DependencySet sigma = MustParseDependencySet("T(x,y) -> E(y,z), E(z,x)");
  std::vector<ConjunctiveQuery> queries;
  queries.push_back(gen.CycleQuery(3));
  queries.push_back(gen.CycleQuery(4));
  queries.push_back(MustParseQuery("E(a,b), E(b,c), E(a,d), E(d,c)"));
  for (size_t budget : {size_t{1}, size_t{3}, size_t{17}, size_t{101},
                        size_t{555}}) {
    SemAcOptions seq_options = SweepOptions(1);
    seq_options.subset_budget = budget;
    seq_options.exhaustive_budget = budget;
    Engine reference(sigma, seq_options);
    for (const ConjunctiveQuery& q : queries) {
      SemAcResult seq = reference.Decide(reference.Prepare(q));
      for (size_t threads : {size_t{2}, size_t{4}, size_t{8}}) {
        SemAcOptions options = SweepOptions(threads);
        options.subset_budget = budget;
        options.exhaustive_budget = budget;
        Engine engine(sigma, options);
        SemAcResult par = engine.Decide(engine.Prepare(q));
        ExpectBitwiseParity(seq, par,
                            q.ToString() + " budget " +
                                std::to_string(budget) + " @ " +
                                std::to_string(threads) + " threads");
      }
    }
  }
}

/// The legacy tuning has no parallel implementation; decide_threads must
/// silently keep the sequential reference path and still agree with it.
TEST(ParallelDecideTest, LegacyTuningIgnoresThreadCount) {
  Generator gen(23);
  DependencySet sigma = MustParseDependencySet("T(x,y) -> E(y,z), E(z,x)");
  ConjunctiveQuery q = gen.CycleQuery(4);
  SemAcOptions seq_options = SweepOptions(1);
  seq_options.witness.legacy = true;
  Engine reference(sigma, seq_options);
  SemAcResult seq = reference.Decide(reference.Prepare(q));
  SemAcOptions options = SweepOptions(8);
  options.witness.legacy = true;
  Engine engine(sigma, options);
  SemAcResult par = engine.Decide(engine.Prepare(q));
  ExpectBitwiseParity(seq, par, "legacy tuning @ 8 threads");
}

/// A deadline that can fire while workers hold stolen subtrees: whatever
/// the outcome (aborted or completed before the deadline), the SAME
/// engine must afterwards decide the query exactly like a fresh one — no
/// torn caches, no leaked worker state.
TEST(ParallelDecideTest, DeadlineMidParallelSearchLeavesEngineReusable) {
  Generator gen(23);
  DependencySet sigma = MustParseDependencySet("T(x,y) -> E(y,z), E(z,x)");
  ConjunctiveQuery q = gen.CycleQuery(4);
  Engine engine(sigma, SweepOptions(8));
  PreparedQuery pq = engine.Prepare(q);
  for (int64_t deadline_ms : {int64_t{0}, int64_t{1}, int64_t{2}}) {
    CancelToken token;
    token.SetDeadlineInMs(deadline_ms);
    if (deadline_ms == 0) token.RequestCancel();  // fires at the first poll
    SemAcResult interrupted = engine.Decide(pq, &token);
    if (interrupted.strategy == Strategy::kDeadlineExceeded) {
      EXPECT_EQ(interrupted.answer, SemAcAnswer::kUnknown);
      EXPECT_FALSE(interrupted.witness.has_value());
    }
  }
  SemAcResult warm = engine.Decide(pq);
  Engine fresh(sigma, SweepOptions(8));
  SemAcResult cold = fresh.Decide(fresh.Prepare(q));
  ExpectBitwiseParity(cold, warm, "post-deadline reuse");
}

#if defined(SEMACYC_FAILPOINTS_ENABLED) && SEMACYC_FAILPOINTS_ENABLED

struct DisarmOnExit {
  ~DisarmOnExit() { FailpointRegistry::Global().DisarmAll(); }
};

/// Abort-mid-steal reusability: a cancel injected at the steal point
/// fires inside a worker that owns a stolen subtree. The whole decision
/// must abort gracefully, and a re-decide on the same engine must match
/// a fresh engine bitwise — the abort rollback covers state the workers
/// touched concurrently.
TEST(ParallelDecideTest, CancelMidStealAbortsAndRecovers) {
  DisarmOnExit cleanup;
  auto& reg = FailpointRegistry::Global();
  Generator gen(23);
  DependencySet sigma = MustParseDependencySet("T(x,y) -> E(y,z), E(z,x)");
  for (const char* point : {"parallel.steal", "parallel.replay"}) {
    for (uint64_t fire_on : {uint64_t{1}, uint64_t{3}}) {
      std::string context = std::string(point) + "@" +
                            std::to_string(fire_on);
      ConjunctiveQuery q = gen.CycleQuery(4);
      Engine engine(sigma, SweepOptions(4));
      PreparedQuery pq = engine.Prepare(q);

      reg.Arm(point, FailpointAction::kCancel, fire_on);
      CancelToken token;
      SemAcResult injected = engine.Decide(pq, &token);
      bool fired = reg.Fired(point);
      reg.DisarmAll();
      if (fired) {
        EXPECT_EQ(injected.answer, SemAcAnswer::kUnknown) << context;
        EXPECT_EQ(injected.strategy, Strategy::kDeadlineExceeded) << context;
        EXPECT_FALSE(injected.witness.has_value()) << context;
      }

      SemAcResult warm = engine.Decide(pq);
      Engine fresh(sigma, SweepOptions(4));
      SemAcResult cold = fresh.Decide(fresh.Prepare(q));
      ExpectBitwiseParity(cold, warm, context + " post-abort reuse");
    }
  }
}

#endif  // SEMACYC_FAILPOINTS_ENABLED

}  // namespace
}  // namespace semacyc
