// Observability subsystem (core/obs.h): tracing parity, trace
// well-formedness, metrics JSON round-trip, batch metrics coherence, and
// honest oracle-memo cache accounting.
#include "core/obs.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/canonical.h"
#include "core/homomorphism.h"
#include "core/parser.h"
#include "gen/generators.h"
#include "semacyc/engine.h"

namespace semacyc {
namespace {

/// The engine_test generator-family sweep, reused so tracing parity is
/// checked over the same query shapes the engine suites pin.
struct Workload {
  DependencySet sigma;
  std::vector<ConjunctiveQuery> queries;
};

Workload GuardedWorkload(uint64_t seed) {
  Workload w;
  w.sigma = MustParseDependencySet("T(x,y) -> E(y,z), E(z,x)");
  Generator gen(seed);
  w.queries.push_back(MustParseQuery("T(x,y), E(y,z), E(z,x)"));
  w.queries.push_back(gen.CycleQuery(3));
  w.queries.push_back(gen.CycleQuery(4));
  w.queries.push_back(gen.RandomAcyclicQuery(4, 2, 2, "E"));
  w.queries.push_back(MustParseQuery("E(a,b), E(b,c), E(a,d), E(d,c)"));
  w.queries.push_back(gen.AlphaNotBetaQuery(1));
  w.queries.push_back(gen.BergeTreeQuery(5));
  return w;
}

Workload NrWorkload(uint64_t seed) {
  Workload w;
  w.sigma = MustParseDependencySet("B1(x,y), B2(y,z) -> B3(z,x)");
  Generator gen(seed);
  w.queries.push_back(MustParseQuery("B1(x,y), B2(y,z), B3(z,x)"));
  w.queries.push_back(MustParseQuery("B1(x,y), B2(y,x)"));
  w.queries.push_back(gen.RandomAcyclicQuery(3, 2, 3, "B"));
  w.queries.push_back(gen.BetaNotGammaQuery(1));
  return w;
}

SemAcOptions SweepOptions() {
  SemAcOptions options;
  options.subset_budget = 8000;
  options.exhaustive_budget = 8000;
  return options;
}

/// Tracing must be a pure observer: decisions with a sink attached are
/// field-for-field identical to decisions without one (same engine state
/// progression too — both engines decide the same stream in the same
/// order).
TEST(ObsTest, TracingOnVsOffDecisionParity) {
  for (uint64_t seed : {3u, 17u}) {
    for (const Workload& w : {GuardedWorkload(seed), NrWorkload(seed)}) {
      obs::CollectingSink sink;
      SemAcOptions traced = SweepOptions();
      traced.trace_sink = &sink;
      Engine off(w.sigma, SweepOptions());
      Engine on(w.sigma, traced);
      for (const ConjunctiveQuery& q : w.queries) {
        SemAcResult a = off.Decide(off.Prepare(q));
        SemAcResult b = on.Decide(on.Prepare(q));
        EXPECT_EQ(a.answer, b.answer) << q.ToString();
        EXPECT_EQ(a.strategy, b.strategy) << q.ToString();
        EXPECT_EQ(a.exact, b.exact);
        EXPECT_EQ(a.candidates_tested, b.candidates_tested);
        EXPECT_EQ(a.small_query_bound, b.small_query_bound);
        EXPECT_EQ(a.witness.has_value(), b.witness.has_value());
        if (a.witness.has_value() && b.witness.has_value()) {
          EXPECT_TRUE(AreIsomorphic(*a.witness, *b.witness))
              << a.witness->ToString() << "\n  vs\n  "
              << b.witness->ToString();
        }
      }
      EXPECT_EQ(sink.size(), w.queries.size());
    }
  }
}

int64_t RootCounter(const obs::DecisionTrace& trace, const char* name) {
  for (const obs::SpanCounter& c : trace.spans[0].counters) {
    if (std::string(c.name) == name) return c.value;
  }
  return -1;
}

/// Structural invariants of every emitted trace: root-first span order,
/// valid preorder parents, monotone non-negative times, children nested
/// inside their parents, and root counters that reconcile with the
/// decision's own result and the engine's cache-stat deltas.
TEST(ObsTest, TraceWellFormednessAndCounterReconciliation) {
  Workload w = GuardedWorkload(7);
  obs::CollectingSink sink;
  SemAcOptions options = SweepOptions();
  options.trace_sink = &sink;
  Engine engine(w.sigma, options);
  for (const ConjunctiveQuery& q : w.queries) {
    EngineCacheStats before = engine.Stats();
    PreparedQuery pq = engine.Prepare(q);
    SemAcResult result = engine.Decide(pq);
    EngineCacheStats after = engine.Stats();
    std::vector<obs::DecisionTrace> traces = sink.Take();
    ASSERT_EQ(traces.size(), 1u);
    const obs::DecisionTrace& trace = traces[0];

    EXPECT_EQ(trace.query, q.ToString());
    EXPECT_EQ(trace.answer, ToString(result.answer));
    EXPECT_EQ(trace.strategy, ToString(result.strategy));
    ASSERT_FALSE(trace.spans.empty());
    EXPECT_EQ(trace.spans[0].phase, obs::Phase::kDecision);
    EXPECT_EQ(trace.spans[0].parent, -1);
    EXPECT_EQ(trace.total_ns, trace.spans[0].end_ns);
    for (size_t i = 0; i < trace.spans.size(); ++i) {
      const obs::Span& s = trace.spans[i];
      EXPECT_GE(s.start_ns, 0);
      EXPECT_LE(s.start_ns, s.end_ns);
      if (i == 0) continue;
      ASSERT_GE(s.parent, 0);
      ASSERT_LT(static_cast<size_t>(s.parent), i);  // preorder
      const obs::Span& parent = trace.spans[static_cast<size_t>(s.parent)];
      EXPECT_GE(s.start_ns, parent.start_ns);
      EXPECT_LE(s.end_ns, parent.end_ns);
    }

    EXPECT_EQ(RootCounter(trace, "candidates_tested"),
              static_cast<int64_t>(result.candidates_tested));
    EXPECT_EQ(RootCounter(trace, "chase_cache_hits"),
              static_cast<int64_t>(after.chase.hits - before.chase.hits));
    EXPECT_EQ(RootCounter(trace, "chase_cache_misses"),
              static_cast<int64_t>(after.chase.misses - before.chase.misses));
    EXPECT_EQ(RootCounter(trace, "decision_cache_hits"),
              static_cast<int64_t>(
                  after.decisions.hits - before.decisions.hits));
    EXPECT_EQ(trace.cached, after.decisions.hits > before.decisions.hits);

    // The decision's JSON renders and stays one line (the JSONL contract).
    std::string json = trace.ToJson();
    EXPECT_NE(json.find("\"spans\""), std::string::npos);
    EXPECT_EQ(json.find('\n'), std::string::npos);
  }
  // Repeat decisions are served from the decision cache and traced as
  // such: a root-only span tree flagged cached.
  PreparedQuery pq = engine.Prepare(w.queries[0]);
  engine.Decide(pq);
  std::vector<obs::DecisionTrace> traces = sink.Take();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_TRUE(traces[0].cached);
  EXPECT_EQ(traces[0].spans.size(), 1u);
}

/// Engine::Metrics() must reconcile with a batch of known size, and its
/// JSON must round-trip exactly (the future semacycd /stats payload).
TEST(ObsTest, MetricsReconcileWithBatchAndJsonRoundTrips) {
  Workload w = GuardedWorkload(23);
  Engine engine(w.sigma, SweepOptions());
  std::vector<PreparedQuery> batch;
  for (const ConjunctiveQuery& q : w.queries) {
    batch.push_back(engine.Prepare(q));
  }
  std::vector<SemAcResult> results = engine.DecideBatch(batch, 1);
  // Decide everything again: decision-cache hits, counted as cached.
  engine.DecideBatch(batch, 1);

  obs::MetricsSnapshot snap = engine.Metrics();
  EXPECT_EQ(snap.decisions_total, 2 * w.queries.size());
  // All isomorphism-distinct queries: every repeat is a cache hit.
  EXPECT_EQ(snap.decisions_cached, w.queries.size());

  std::map<std::string, uint64_t> by_strategy, by_answer;
  size_t candidates = 0;
  for (const SemAcResult& r : results) {
    by_strategy[ToString(r.strategy)] += 2;  // decided twice
    by_answer[ToString(r.answer)] += 2;
    candidates += r.candidates_tested;
  }
  uint64_t strategy_total = 0;
  for (const obs::MetricsSnapshot::StrategyRow& row : snap.strategies) {
    EXPECT_EQ(row.decisions, by_strategy[row.name]) << row.name;
    strategy_total += row.decisions;
    // Cached repeats skip the latency histogram; each strategy saw
    // exactly one uncached decision per distinct query routed to it.
    EXPECT_EQ(row.latency.count, by_strategy[row.name] / 2) << row.name;
  }
  EXPECT_EQ(strategy_total, snap.decisions_total);
  for (const auto& [name, count] : by_answer) {
    bool found = false;
    for (const auto& [answer, value] : snap.answers) {
      if (answer == name) {
        EXPECT_EQ(value, count) << name;
        found = true;
      }
    }
    EXPECT_TRUE(found) << name;
  }
  for (const auto& [name, value] : snap.counters) {
    if (name == "candidates_tested") {
      EXPECT_EQ(value, candidates);
    }
    if (name == "traces_emitted") {
      EXPECT_EQ(value, 0u);  // no sink attached
    }
  }
  // Phase histograms: every uncached decision recorded one DECISION
  // phase; cached ones record it too (acquisition latency).
  for (const obs::MetricsSnapshot::PhaseRow& row : snap.phases) {
    if (row.name == "DECISION") {
      EXPECT_EQ(row.latency.count, snap.decisions_total);
    }
    if (row.name == "SCHEMA_ANALYZE") {
      EXPECT_EQ(row.latency.count, 1u);  // one Engine construction
    }
  }

  std::string json = snap.ToJson();
  std::optional<obs::MetricsSnapshot> parsed =
      obs::MetricsSnapshot::FromJson(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(*parsed == snap);
  EXPECT_EQ(parsed->ToJson(), json);
  EXPECT_FALSE(obs::MetricsSnapshot::FromJson("{broken").has_value());
}

/// Metrics stay coherent under a concurrent 8-thread batch: totals equal
/// the batch size and per-strategy rows sum to the total (relaxed atomics
/// may interleave, but nothing is lost).
TEST(ObsTest, EightThreadBatchMetricsCoherence) {
  Workload guarded = GuardedWorkload(31);
  Workload nr = NrWorkload(31);
  Engine engine(guarded.sigma, SweepOptions());
  std::vector<PreparedQuery> batch;
  for (int rep = 0; rep < 4; ++rep) {
    for (const ConjunctiveQuery& q : guarded.queries) {
      batch.push_back(engine.Prepare(q));
    }
    for (const ConjunctiveQuery& q : nr.queries) {
      batch.push_back(engine.Prepare(q));
    }
  }
  std::vector<SemAcResult> results = engine.DecideBatch(batch, 8);
  ASSERT_EQ(results.size(), batch.size());

  obs::MetricsSnapshot snap = engine.Metrics();
  EXPECT_EQ(snap.decisions_total, batch.size());
  uint64_t strategy_total = 0;
  uint64_t latency_total = 0;
  for (const obs::MetricsSnapshot::StrategyRow& row : snap.strategies) {
    strategy_total += row.decisions;
    latency_total += row.latency.count;
    uint64_t bucket_total = 0;
    for (uint64_t b : row.latency.buckets) bucket_total += b;
    EXPECT_EQ(bucket_total, row.latency.count) << row.name;
  }
  EXPECT_EQ(strategy_total, snap.decisions_total);
  // Uncached + cached partition the batch (racing workers may decide an
  // isomorphic duplicate before its twin's insert lands, so `cached` is
  // at most, not exactly, the duplicate count).
  EXPECT_EQ(latency_total + snap.decisions_cached, snap.decisions_total);
  uint64_t answer_total = 0;
  for (const auto& [name, value] : snap.answers) answer_total += value;
  EXPECT_EQ(answer_total, snap.decisions_total);
}

/// Honest cache accounting (ROADMAP perf-debt item b): a workload whose
/// containment oracle memoizes candidate answers must re-charge the grown
/// memo against the oracle cache — visible as recharged_bytes and a byte
/// figure that keeps growing after the insert.
TEST(ObsTest, OracleMemoGrowthIsRecharged) {
  DependencySet sigma =
      MustParseDependencySet("Interest(x,z), Class(y,z) -> Owns(x,y).");
  ConjunctiveQuery q =
      MustParseQuery("q(x,y) :- Interest(x,z), Class(y,z), Owns(x,y)");
  Engine engine(sigma, SemAcOptions{});
  size_t bytes_before = engine.Stats().oracles.bytes;
  EXPECT_EQ(engine.Stats().oracles.recharged_bytes, 0u);
  engine.Decide(engine.Prepare(q));
  EngineCacheStats stats = engine.Stats();
  // The decision memoized oracle answers; the growth was re-charged.
  EXPECT_GT(stats.oracles.recharged_bytes, 0u);
  EXPECT_GT(stats.oracles.bytes, bytes_before);
  // The charged figure reflects the memo: larger than an empty oracle
  // entry of the same query would charge.
  EXPECT_GE(stats.oracles.bytes, stats.oracles.recharged_bytes);
}

}  // namespace
}  // namespace semacyc
