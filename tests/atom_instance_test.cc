#include <gtest/gtest.h>

#include "core/atom.h"
#include "core/instance.h"
#include "core/parser.h"

namespace semacyc {
namespace {

Term C(const std::string& s) { return Term::Constant(s); }
Term V(const std::string& s) { return Term::Variable(s); }

TEST(PredicateTest, InternsByNameAndArity) {
  Predicate r2 = Predicate::Get("R", 2);
  Predicate r2b = Predicate::Get("R", 2);
  Predicate r3 = Predicate::Get("R", 3);
  EXPECT_EQ(r2, r2b);
  EXPECT_NE(r2, r3);
  EXPECT_EQ(r2.arity(), 2);
  EXPECT_EQ(r3.ToString(), "R/3");
}

TEST(AtomTest, BasicAccessors) {
  Atom a(Predicate::Get("Edge", 2), {C("u"), C("v")});
  EXPECT_EQ(a.arity(), 2u);
  EXPECT_EQ(a.arg(0), C("u"));
  EXPECT_TRUE(a.Mentions(C("v")));
  EXPECT_FALSE(a.Mentions(C("w")));
  EXPECT_EQ(a.ToString(), "Edge(u,v)");
}

TEST(AtomTest, DistinctTermsDeduplicates) {
  Atom a(Predicate::Get("T", 3), {C("u"), C("u"), C("v")});
  EXPECT_EQ(a.DistinctTerms().size(), 2u);
}

TEST(AtomTest, MentionsKind) {
  Atom a(Predicate::Get("Mix", 2), {C("u"), V("x")});
  EXPECT_TRUE(a.MentionsKind(TermKind::kConstant));
  EXPECT_TRUE(a.MentionsKind(TermKind::kVariable));
  EXPECT_FALSE(a.MentionsKind(TermKind::kNull));
}

TEST(AtomTest, EqualityAndHash) {
  Atom a1(Predicate::Get("R", 2), {C("a"), C("b")});
  Atom a2(Predicate::Get("R", 2), {C("a"), C("b")});
  Atom a3(Predicate::Get("R", 2), {C("b"), C("a")});
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, a3);
  EXPECT_EQ(AtomHash{}(a1), AtomHash{}(a2));
}

TEST(InstanceTest, InsertDeduplicates) {
  Instance inst;
  EXPECT_TRUE(inst.Insert(Atom(Predicate::Get("R", 2), {C("a"), C("b")})));
  EXPECT_FALSE(inst.Insert(Atom(Predicate::Get("R", 2), {C("a"), C("b")})));
  EXPECT_EQ(inst.size(), 1u);
}

TEST(InstanceTest, PerPredicateIndex) {
  Instance inst;
  inst.InsertAll(MustParseAtoms("R('a','b'), R('b','c'), S('a')"));
  EXPECT_EQ(inst.AtomsOf(Predicate::Get("R", 2)).size(), 2u);
  EXPECT_EQ(inst.AtomsOf(Predicate::Get("S", 1)).size(), 1u);
  EXPECT_TRUE(inst.AtomsOf(Predicate::Get("T", 1)).empty());
}

TEST(InstanceTest, PositionIndexFindsCandidates) {
  Instance inst;
  inst.InsertAll(MustParseAtoms("R('a','b'), R('a','c'), R('b','c')"));
  const auto* hits = inst.FindCandidates(Predicate::Get("R", 2), 0, C("a"));
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->size(), 2u);
  EXPECT_EQ(inst.FindCandidates(Predicate::Get("R", 2), 0, C("z")), nullptr);
}

TEST(InstanceTest, ActiveDomain) {
  Instance inst;
  inst.InsertAll(MustParseAtoms("R('a','b'), S('b')"));
  EXPECT_EQ(inst.ActiveDomain().size(), 2u);
}

TEST(InstanceTest, ReplaceTermMergesAtoms) {
  Instance inst;
  inst.InsertAll(MustParseAtoms("R('a','b'), R('a','c'), S('b'), S('c')"));
  size_t changed = inst.ReplaceTerm(C("c"), C("b"));
  EXPECT_EQ(changed, 2u);
  EXPECT_EQ(inst.size(), 2u);  // R(a,b) and S(b) remain
  EXPECT_TRUE(inst.Contains(Atom(Predicate::Get("R", 2), {C("a"), C("b")})));
  EXPECT_FALSE(inst.Contains(Atom(Predicate::Get("R", 2), {C("a"), C("c")})));
}

TEST(InstanceTest, ReplaceTermRebuildsIndexes) {
  Instance inst;
  inst.InsertAll(MustParseAtoms("R('a','b')"));
  inst.ReplaceTerm(C("b"), C("z"));
  EXPECT_NE(inst.FindCandidates(Predicate::Get("R", 2), 1, C("z")), nullptr);
  EXPECT_EQ(inst.FindCandidates(Predicate::Get("R", 2), 1, C("b")), nullptr);
}

TEST(InstanceTest, RestrictKeepsSelectedAtoms) {
  Instance inst;
  inst.InsertAll(MustParseAtoms("R('a','b'), R('b','c'), R('c','d')"));
  Instance sub = inst.Restrict({0, 2});
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_TRUE(sub.Contains(inst.atom(0)));
  EXPECT_FALSE(sub.Contains(inst.atom(1)));
}

TEST(InstanceTest, AtomsMentioning) {
  Instance inst;
  inst.InsertAll(MustParseAtoms("R('a','b'), R('b','c'), S('d')"));
  EXPECT_EQ(inst.AtomsMentioning(C("b")).size(), 2u);
  EXPECT_EQ(inst.AtomsMentioning(C("d")).size(), 1u);
  EXPECT_TRUE(inst.AtomsMentioning(C("q")).empty());
}

TEST(InstanceTest, EqualityIsSetEquality) {
  Instance a, b;
  a.InsertAll(MustParseAtoms("R('a','b'), S('c')"));
  b.InsertAll(MustParseAtoms("S('c'), R('a','b')"));
  EXPECT_TRUE(a == b);
  b.Insert(Atom(Predicate::Get("S", 1), {C("d")}));
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace semacyc
