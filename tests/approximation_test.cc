#include <gtest/gtest.h>

#include "chase/query_chase.h"
#include "core/hypergraph.h"
#include "core/parser.h"
#include "gen/generators.h"
#include "semacyc/approximation.h"

namespace semacyc {
namespace {

TEST(ApproximationTest, TrivialWitnessIsContained) {
  Generator gen(21);
  ConjunctiveQuery triangle = gen.CycleQuery(3);
  ConjunctiveQuery trivial = TrivialAcyclicUnderApproximation(triangle);
  EXPECT_TRUE(IsAcyclic(trivial));
  DependencySet empty;
  EXPECT_EQ(ContainedUnder(trivial, triangle, empty), Tri::kYes);
}

TEST(ApproximationTest, TrivialWitnessKeepsHeadArity) {
  ConjunctiveQuery q = MustParseQuery("q(x,y) :- E(x,y), E(y,x)");
  ConjunctiveQuery trivial = TrivialAcyclicUnderApproximation(q);
  EXPECT_EQ(trivial.arity(), 2u);
}

TEST(ApproximationTest, ExactWhenSemanticallyAcyclic) {
  ConjunctiveQuery q =
      MustParseQuery("Interest(x,z), Class(y,z), Owns(x,y)");
  DependencySet sigma =
      MustParseDependencySet("Interest(x,z), Class(y,z) -> Owns(x,y)");
  auto result = AcyclicApproximation(q, sigma);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->is_exact);
  EXPECT_TRUE(IsAcyclic(result->approximation));
  EXPECT_EQ(EquivalentUnder(q, result->approximation, sigma), Tri::kYes);
}

TEST(ApproximationTest, TriangleGetsProperApproximation) {
  Generator gen(22);
  ConjunctiveQuery triangle = gen.CycleQuery(3);
  DependencySet empty;
  auto result = AcyclicApproximation(triangle, empty);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->is_exact);
  EXPECT_TRUE(IsAcyclic(result->approximation));
  EXPECT_EQ(ContainedUnder(result->approximation, triangle, empty), Tri::kYes);
  // The approximation answers a subset of the query on any database: the
  // containment above is the formal statement; spot-check the loop db.
  Instance loop;
  loop.InsertAll(MustParseAtoms("E('a','a')"));
  // triangle true on loop; approximation must also be true (it is the
  // all-variables-merged fold) or false — but never true where triangle
  // is false.
}

TEST(ApproximationTest, RefusesConstantsInQuery) {
  ConjunctiveQuery q = MustParseQuery("E(x,'a'), E('a',x)");
  DependencySet empty;
  EXPECT_FALSE(AcyclicApproximation(q, empty).has_value());
}

TEST(ApproximationTest, CandidatesAreAllSound) {
  Generator gen(23);
  ConjunctiveQuery c5 = gen.CycleQuery(5);
  DependencySet sigma = MustParseDependencySet("E(x,y) -> E2(x,y)");
  SemAcOptions options;
  options.exhaustive_budget = 10000;
  options.subset_budget = 10000;
  auto result = AcyclicApproximation(c5, sigma, options);
  ASSERT_TRUE(result.has_value());
  for (const auto& candidate : result->candidates) {
    EXPECT_TRUE(IsAcyclic(candidate));
    EXPECT_EQ(ContainedUnder(candidate, c5, sigma), Tri::kYes)
        << candidate.ToString();
  }
}

}  // namespace
}  // namespace semacyc
