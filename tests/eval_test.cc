#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/homomorphism.h"
#include "core/parser.h"
#include "eval/cover_game.h"
#include "eval/semac_eval.h"
#include "eval/yannakakis.h"
#include "gen/generators.h"

namespace semacyc {
namespace {

Term C(const std::string& s) { return Term::Constant(s); }

Instance Db(const std::string& atoms) {
  Instance inst;
  inst.InsertAll(MustParseAtoms(atoms));
  return inst;
}

std::set<std::vector<Term>> AsSet(std::vector<std::vector<Term>> v) {
  return std::set<std::vector<Term>>(v.begin(), v.end());
}

TEST(YannakakisTest, SimplePath) {
  Instance db = Db("E('a','b'), E('b','c'), E('c','d')");
  ConjunctiveQuery q = MustParseQuery("q(x,z) :- E(x,y), E(y,z)");
  YannakakisResult result = EvaluateAcyclic(q, db);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(AsSet(result.answers), AsSet(EvaluateQuery(q, db)));
}

TEST(YannakakisTest, RefusesCyclicQueries) {
  Generator gen(5);
  YannakakisResult result = EvaluateAcyclic(gen.CycleQuery(3), Db("E('a','a')"));
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(EvaluateAcyclicBoolean(gen.CycleQuery(3), Db("E('a','a')")), -1);
}

TEST(YannakakisTest, BooleanFastPath) {
  Instance db = Db("E('a','b'), E('b','c')");
  EXPECT_EQ(EvaluateAcyclicBoolean(MustParseQuery("E(x,y), E(y,z)"), db), 1);
  EXPECT_EQ(EvaluateAcyclicBoolean(
                MustParseQuery("E(x,y), E(y,z), E(z,w)"), db),
            0);
}

TEST(YannakakisTest, SemiJoinsPruneDanglingTuples) {
  // A star query where most tuples dangle.
  Instance db = Db(
      "R('a','b'), R('a','c'), S('b','x1'), T('c','y1'), "
      "R('q','w'), S('w','x2')");
  ConjunctiveQuery q = MustParseQuery("q(u) :- R(u,v), S(v,s), R(u,w), T(w,t)");
  YannakakisResult result = EvaluateAcyclic(q, db);
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.answers.size(), 1u);
  EXPECT_EQ(result.answers[0][0], C("a"));
}

TEST(YannakakisTest, ConstantsInQuery) {
  Instance db = Db("E('a','b'), E('c','b')");
  ConjunctiveQuery q = MustParseQuery("q(x) :- E(x,'b')");
  YannakakisResult result = EvaluateAcyclic(q, db);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.answers.size(), 2u);
}

TEST(YannakakisTest, DisconnectedQueryCrossProduct) {
  Instance db = Db("A('x'), B('y'), B('z')");
  ConjunctiveQuery q = MustParseQuery("q(u,v) :- A(u), B(v)");
  YannakakisResult result = EvaluateAcyclic(q, db);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.answers.size(), 2u);
}

/// Property sweep: Yannakakis agrees with the backtracking evaluator on
/// random acyclic queries and random databases.
class YannakakisSweep : public ::testing::TestWithParam<int> {};

TEST_P(YannakakisSweep, AgreesWithBacktrackingJoin) {
  Generator gen(static_cast<uint64_t>(GetParam()) + 31);
  ConjunctiveQuery shape = gen.RandomAcyclicQuery(5, 2, 2, "Y");
  // Promote up to two variables to the head.
  std::vector<Term> vars = shape.Variables();
  std::vector<Term> head;
  for (size_t i = 0; i < vars.size() && head.size() < 2; i += 3) {
    head.push_back(vars[i]);
  }
  ConjunctiveQuery q(head, shape.body());
  std::vector<Predicate> preds = {Predicate::Get("Y0", 2),
                                  Predicate::Get("Y1", 2)};
  Instance db = gen.RandomDatabase(preds, 40, 5);
  YannakakisResult fast = EvaluateAcyclic(q, db);
  ASSERT_TRUE(fast.ok);
  EXPECT_EQ(AsSet(fast.answers), AsSet(EvaluateQuery(q, db)));
  int boolean = EvaluateAcyclicBoolean(ConjunctiveQuery({}, q.body()), db);
  EXPECT_EQ(boolean, EvaluatesTrue(q, db) ? 1 : 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, YannakakisSweep, ::testing::Range(0, 20));

TEST(CoverGameTest, TrivialCases) {
  Instance empty;
  EXPECT_TRUE(DuplicatorWins(empty, {}, empty, {}));
  Instance one = Db("E('a','b')");
  EXPECT_FALSE(DuplicatorWins(one, {}, empty, {}));
}

TEST(CoverGameTest, GenuineConstantsAreRigid) {
  Instance I = Db("E('a','b')");
  Instance J = Db("E('c','d')");
  EXPECT_FALSE(DuplicatorWins(I, {}, J, {}));
  Instance J2 = Db("E('a','b'), E('c','d')");
  EXPECT_TRUE(DuplicatorWins(I, {}, J2, {}));
}

TEST(CoverGameTest, AcyclicQueryGameMatchesEvaluation) {
  // For an acyclic q: duplicator wins on (q,x̄) vs (D,t̄) iff t̄ ∈ q(D).
  ConjunctiveQuery q = MustParseQuery("q(x) :- E(x,y), E(y,z)");
  Instance db = Db("E('a','b'), E('b','c')");
  FrozenQuery frozen = Freeze(q, TermKind::kNull);
  EXPECT_TRUE(
      DuplicatorWins(frozen.instance, frozen.frozen_head, db, {C("a")}));
  EXPECT_FALSE(
      DuplicatorWins(frozen.instance, frozen.frozen_head, db, {C("c")}));
}

TEST(CoverGameTest, CyclicQueryGameIsWeaker) {
  // The 1-cover game only preserves acyclic queries: a triangle query can
  // win the game on a database with no triangle (odd cycle example).
  Generator gen(6);
  ConjunctiveQuery triangle = gen.CycleQuery(3);
  // A long odd cycle has no triangle but the duplicator wins the 1-cover
  // game (locally everything looks consistent).
  Instance c9;
  Predicate e = Predicate::Get("E", 2);
  for (int i = 0; i < 9; ++i) {
    c9.Insert(Atom(e, {C("n" + std::to_string(i)),
                       C("n" + std::to_string((i + 1) % 9))}));
  }
  EXPECT_FALSE(EvaluatesTrue(triangle, c9));
  FrozenQuery frozen = Freeze(triangle, TermKind::kNull);
  EXPECT_TRUE(DuplicatorWins(frozen.instance, {}, c9, {}));
}

TEST(SemAcEvalTest, GuardedGameEvaluationMatchesSemantics) {
  // Theorem 25 setup: q ≡Σ T(x,y) under the guarded Σ below.
  ConjunctiveQuery q = MustParseQuery("q(x) :- T(x,y), E(y,z), E(z,x)");
  DependencySet sigma = MustParseDependencySet("T(x,y) -> E(y,z), E(z,x)");
  // Build a database satisfying Σ.
  Instance db = Db(
      "T('u','v'), E('v','w'), E('w','u'), "
      "T('p','q'), E('q','r'), E('r','p'), E('s','s')");
  ASSERT_TRUE(Satisfies(db, sigma));
  // Semantics: q(D) = {u, p} (via the T atoms).
  EXPECT_TRUE(GuardedGameEvaluate(q, db, {C("u")}));
  EXPECT_TRUE(GuardedGameEvaluate(q, db, {C("p")}));
  EXPECT_FALSE(GuardedGameEvaluate(q, db, {C("v")}));
  EXPECT_FALSE(GuardedGameEvaluate(q, db, {C("s")}));
  // Cross-check against brute force.
  for (const char* c : {"u", "v", "w", "p", "q", "r", "s"}) {
    EXPECT_EQ(GuardedGameEvaluate(q, db, {C(c)}),
              EvaluatesTo(q, db, {C(c)}))
        << c;
  }
}

TEST(SemAcEvalTest, ChaseGameAgreesWhenSaturated) {
  ConjunctiveQuery q = MustParseQuery("q(x) :- T(x,y), E(y,z), E(z,x)");
  DependencySet sigma = MustParseDependencySet("T(x,y) -> E(y,z), E(z,x)");
  Instance db = Db("T('u','v'), E('v','w'), E('w','u')");
  EXPECT_EQ(GameEvaluateViaChase(q, sigma, db, {C("u")}), Tri::kYes);
  EXPECT_EQ(GameEvaluateViaChase(q, sigma, db, {C("w")}), Tri::kNo);
}

TEST(SemAcEvalTest, FptPipelineMatchesBruteForce) {
  MusicStoreWorkload w = MakeMusicStoreWorkload(11, 6, 8, 3, 0.4);
  ASSERT_TRUE(Satisfies(w.database, w.sigma));
  FptEvalResult fpt = FptEvaluate(w.q, w.sigma, w.database);
  ASSERT_TRUE(fpt.reformulated);
  ASSERT_TRUE(fpt.evaluation.ok);
  EXPECT_EQ(AsSet(fpt.evaluation.answers),
            AsSet(EvaluateQuery(w.q, w.database)));
}

TEST(SemAcEvalTest, FptPipelineFailsGracefullyOnNonSemAc) {
  Generator gen(8);
  ConjunctiveQuery triangle = gen.CycleQuery(3);
  DependencySet sigma;
  Instance db = Db("E('a','b')");
  FptEvalResult fpt = FptEvaluate(triangle, sigma, db);
  EXPECT_FALSE(fpt.reformulated);
}

}  // namespace
}  // namespace semacyc
