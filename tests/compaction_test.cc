#include <gtest/gtest.h>

#include "core/containment.h"
#include "core/homomorphism.h"
#include "core/hypergraph.h"
#include "core/parser.h"
#include "gen/generators.h"
#include "semacyc/compaction.h"

namespace semacyc {
namespace {

TEST(CompactionTest, IdentityImageOnSmallInstance) {
  Instance inst;
  inst.InsertAll(MustParseAtoms("E('a','b'), E('b','c')"));
  ConjunctiveQuery q = MustParseQuery("E(x,y)");
  auto result = CompactAcyclicWitness(q, inst, {});
  ASSERT_TRUE(result.has_value());
  EXPECT_LE(result->witness.size(), 2u * q.size());
  EXPECT_TRUE(IsAcyclic(result->witness));
}

TEST(CompactionTest, FailsOnCyclicInstance) {
  Instance inst;
  Term n1 = Term::FreshNull(), n2 = Term::FreshNull(), n3 = Term::FreshNull();
  Predicate e = Predicate::Get("E", 2);
  inst.Insert(Atom(e, {n1, n2}));
  inst.Insert(Atom(e, {n2, n3}));
  inst.Insert(Atom(e, {n3, n1}));
  ConjunctiveQuery q = MustParseQuery("E(x,y)");
  EXPECT_FALSE(CompactAcyclicWitness(q, inst, {}).has_value());
}

TEST(CompactionTest, FailsWhenTupleNotInEvaluation) {
  Instance inst;
  inst.InsertAll(MustParseAtoms("E('a','b')"));
  ConjunctiveQuery q = MustParseQuery("q(x) :- E(x,y)");
  EXPECT_FALSE(
      CompactAcyclicWitness(q, inst, {Term::Constant("b")}).has_value());
  EXPECT_TRUE(
      CompactAcyclicWitness(q, inst, {Term::Constant("a")}).has_value());
}

TEST(CompactionTest, WitnessContainsImageOfQ) {
  // The witness must be plainly contained in q (hom from q onto it).
  Instance inst;
  inst.InsertAll(
      MustParseAtoms("E('a','b'), E('b','c'), E('c','d'), F('d')"));
  ConjunctiveQuery q = MustParseQuery("E(x,y), E(y,z)");
  auto result = CompactAcyclicWitness(q, inst, {});
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(ContainedInClassic(result->witness, q));
}

/// Figure 3 / Lemma 9 property sweep: random acyclic instances and random
/// queries mapping into them; the compact witness must be acyclic, obey
/// the 2·|q| bound, be contained in q, and hold at the target tuple.
class CompactionSweep : public ::testing::TestWithParam<int> {};

TEST_P(CompactionSweep, Lemma9Invariants) {
  Generator gen(static_cast<uint64_t>(GetParam()) + 10);
  // Random acyclic instance: freeze a random acyclic query to nulls.
  ConjunctiveQuery shape = gen.RandomAcyclicQuery(14, 2, 2, "L");
  FrozenQuery frozen = Freeze(shape, TermKind::kNull);
  const Instance& inst = frozen.instance;
  ASSERT_TRUE(IsAcyclic(inst.atoms(), ConnectingTerms::kAllTerms));

  // A query that maps into it: take a connected sub-pattern of the shape.
  size_t take = 3 + static_cast<size_t>(GetParam()) % 4;
  std::vector<Atom> sub(shape.body().begin(),
                        shape.body().begin() +
                            static_cast<long>(
                                std::min(take, shape.body().size())));
  ConjunctiveQuery q({}, sub);

  auto result = CompactAcyclicWitness(q, inst, {});
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(IsAcyclic(result->witness));
  EXPECT_LE(result->witness.size(), 2 * q.size());
  EXPECT_TRUE(ContainedInClassic(result->witness, q))
      << "witness must contain q's image";
  // q'(c̄) holds in I: the witness maps back into the instance.
  EXPECT_TRUE(HasHomomorphism(result->sub_instance.atoms(), inst));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompactionSweep, ::testing::Range(0, 25));

}  // namespace
}  // namespace semacyc
