// Tests for the incremental candidate pipeline: the push/pop classifier
// against batch classification, the memoizing containment oracle against
// the uncached one, fingerprint canonicality, and fast-vs-legacy strategy
// agreement.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <random>

#include "acyclic/incremental.h"
#include "core/canonical.h"
#include "core/parser.h"
#include "gen/generators.h"
#include "semacyc/witness_search.h"

namespace semacyc {
namespace {

using acyclic::AcyclicityClass;
using acyclic::IncrementalClassifier;

const AcyclicityClass kAllTargets[] = {
    AcyclicityClass::kAlpha, AcyclicityClass::kBeta, AcyclicityClass::kGamma,
    AcyclicityClass::kBerge};

// ------------------------------- incremental vs batch classification --

/// Pushes hg's edges one at a time, checking Meets() against the batch
/// decider on each prefix; then pops them all, re-checking each prefix on
/// the way back down. Exercises exactly the DFS access pattern.
void CheckPushPopAgainstBatch(const acyclic::Hypergraph& hg,
                              AcyclicityClass target) {
  IncrementalClassifier inc(target);
  std::vector<acyclic::Hypergraph> prefixes;
  acyclic::Hypergraph prefix;
  prefix.num_vertices = hg.num_vertices;
  prefixes.push_back(prefix);
  for (size_t e = 0; e < hg.edges.size(); ++e) {
    prefix.edges.push_back(hg.edges[e]);
    prefixes.push_back(prefix);
    inc.PushEdge(hg.edges[e]);
    bool batch = acyclic::Meets(prefix, target);
    ASSERT_EQ(inc.Meets(), batch)
        << "push prefix of " << e + 1 << " edges, target "
        << acyclic::ToString(target);
    if (inc.CannotRecover()) {
      // CannotRecover is only claimed for hereditary targets on violated
      // sets — both facts must hold.
      ASSERT_FALSE(batch);
      ASSERT_NE(target, AcyclicityClass::kAlpha);
    }
  }
  for (size_t e = hg.edges.size(); e-- > 0;) {
    inc.PopEdge();
    ASSERT_EQ(inc.Meets(), acyclic::Meets(prefixes[e], target))
        << "pop back to prefix of " << e << " edges, target "
        << acyclic::ToString(target);
  }
  ASSERT_EQ(inc.depth(), 0u);
}

TEST(IncrementalClassifierTest, MatchesBatchOnAllFourEdgeHypergraphs) {
  // Every hypergraph with <= 4 (distinct, non-empty) edges over a
  // 4-vertex universe, as in the acyclic_test oracle sweep.
  std::vector<std::vector<int>> all_edges;
  for (int mask = 1; mask < 16; ++mask) {
    std::vector<int> e;
    for (int v = 0; v < 4; ++v) {
      if (mask & (1 << v)) e.push_back(v);
    }
    all_edges.push_back(std::move(e));
  }
  long checked = 0;
  std::vector<int> chosen;
  std::function<void(size_t)> sweep = [&](size_t start) {
    if (!chosen.empty()) {
      acyclic::Hypergraph hg;
      hg.num_vertices = 4;
      for (int i : chosen) {
        hg.edges.push_back(all_edges[static_cast<size_t>(i)]);
      }
      ++checked;
      for (AcyclicityClass target : kAllTargets) {
        CheckPushPopAgainstBatch(hg, target);
      }
    }
    if (chosen.size() == 4) return;
    for (size_t i = start; i < all_edges.size(); ++i) {
      chosen.push_back(static_cast<int>(i));
      sweep(i + 1);
      chosen.pop_back();
    }
  };
  sweep(0);
  EXPECT_EQ(checked, 1940);
}

TEST(IncrementalClassifierTest, RandomDfsInterleavingMatchesBatch) {
  // Random push/pop interleavings (not just push-all-pop-all): at every
  // step the classifier must agree with the batch decider on the current
  // stack of edges.
  std::mt19937_64 rng(17);
  for (AcyclicityClass target : kAllTargets) {
    for (int iter = 0; iter < 200; ++iter) {
      int n = 3 + static_cast<int>(rng() % 5);
      IncrementalClassifier inc(target);
      std::vector<std::vector<int>> stack;
      for (int step = 0; step < 30; ++step) {
        bool push = stack.empty() || rng() % 3 != 0;
        if (push) {
          std::vector<int> e;
          for (int v = 0; v < n; ++v) {
            if (rng() % 2) e.push_back(v);
          }
          if (e.empty()) e.push_back(static_cast<int>(rng() % n));
          stack.push_back(e);
          inc.PushEdge(e);
        } else {
          stack.pop_back();
          inc.PopEdge();
        }
        acyclic::Hypergraph hg;
        hg.num_vertices = n;
        hg.edges = stack;
        ASSERT_EQ(inc.Meets(), acyclic::Meets(hg, target))
            << "target " << acyclic::ToString(target) << " iter " << iter
            << " step " << step;
      }
    }
  }
}

// ----------------------------------------------- canonical fingerprint --

TEST(CanonicalFingerprintTest, InvariantUnderRenamingAndReordering) {
  Generator gen(23);
  std::mt19937_64 rng(29);
  for (int iter = 0; iter < 200; ++iter) {
    ConjunctiveQuery q = gen.RandomAcyclicQuery(5, 3, 3, "F");
    // Renamed-apart copy with shuffled body order: isomorphic, and the
    // fingerprint must not notice.
    ConjunctiveQuery renamed = q.RenameApart();
    std::vector<Atom> body = renamed.body();
    std::shuffle(body.begin(), body.end(), rng);
    ConjunctiveQuery shuffled(renamed.head(), body);
    EXPECT_EQ(CanonicalFingerprint(q), CanonicalFingerprint(shuffled));
    EXPECT_EQ(CanonicalFingerprint128(q), CanonicalFingerprint128(shuffled));
    EXPECT_EQ(CanonicalFingerprint128(q).first, CanonicalFingerprint(q));
    EXPECT_TRUE(AreIsomorphic(q, shuffled));
  }
}

TEST(CanonicalFingerprintTest, SeparatesKnownNonIsomorphicPairs) {
  ConjunctiveQuery path = MustParseQuery("E(x,y), E(y,z)");
  ConjunctiveQuery fork = MustParseQuery("E(x,y), E(x,z)");
  ConjunctiveQuery loop = MustParseQuery("E(x,x)");
  ConjunctiveQuery cycle = MustParseQuery("E(x,y), E(y,x)");
  EXPECT_NE(CanonicalFingerprint(path), CanonicalFingerprint(fork));
  EXPECT_NE(CanonicalFingerprint(path), CanonicalFingerprint(cycle));
  EXPECT_NE(CanonicalFingerprint(loop), CanonicalFingerprint(cycle));
}

// ------------------------------------------------- oracle memoization --

TEST(ContainmentOracleTest, MemoizedAgreesWithUncachedOnRandomCandidates) {
  // q and a weakly acyclic Σ (saturating chase => exact oracle).
  ConjunctiveQuery q = MustParseQuery("E(x,y), E(y,z), E(z,x), A(x)");
  DependencySet sigma = MustParseDependencySet("A(x) -> E(x,x)");
  ChaseOptions chase_options;
  RewriteOptions rewrite_options;
  ContainmentOracle cached(q, sigma, chase_options, rewrite_options,
                           /*try_rewriting=*/true, /*memoize=*/true);
  ContainmentOracle plain(q, sigma, chase_options, rewrite_options,
                          /*try_rewriting=*/true, /*memoize=*/false);

  // Random small candidates over q's signature; duplicates on purpose so
  // the cache's hit path is exercised, not just populated.
  std::mt19937_64 rng(31);
  Predicate e = Predicate::Get("E", 2);
  Predicate a = Predicate::Get("A", 1);
  std::vector<Term> vars;
  for (int i = 0; i < 4; ++i) {
    vars.push_back(Term::Variable("m$" + std::to_string(i)));
  }
  auto random_candidate = [&]() {
    std::vector<Atom> body;
    int num_atoms = 1 + static_cast<int>(rng() % 3);
    for (int i = 0; i < num_atoms; ++i) {
      if (rng() % 4 == 0) {
        body.push_back(Atom(a, {vars[rng() % vars.size()]}));
      } else {
        body.push_back(
            Atom(e, {vars[rng() % vars.size()], vars[rng() % vars.size()]}));
      }
    }
    return ConjunctiveQuery({}, std::move(body));
  };

  size_t candidates = 0;
  for (int round = 0; round < 600; ++round) {
    ConjunctiveQuery candidate = random_candidate();
    Tri uncached_answer = plain.ContainedInQ(candidate);
    // Ask the cached oracle twice: the second call must be a hit and both
    // must agree with the uncached engine.
    EXPECT_EQ(cached.ContainedInQ(candidate), uncached_answer);
    EXPECT_EQ(cached.ContainedInQ(candidate), uncached_answer);
    candidates += 2;
  }
  EXPECT_GE(candidates, 1000u);
  EXPECT_GT(cached.cache_hits(), 0u);
  EXPECT_GT(cached.cache_misses(), 0u);
  // Every call is a cache hit, an instant predicate-prefilter rejection,
  // or a first-time decision; repeats never re-decide, so misses are
  // bounded by the number of distinct candidates (<= 600 rounds).
  EXPECT_EQ(cached.cache_hits() + cached.cache_misses() +
                cached.prefiltered(),
            1200u);
  EXPECT_LE(cached.cache_misses(), 600u);
}

TEST(ContainmentOracleTest, ChaseFreeAgreesWithChasedOnConstantsAndHeads) {
  // Σ's tgd head predicate (B) does not occur in q, so the memoized
  // oracle takes the compiled chase-free Chandra–Merlin path; the
  // unmemoized one chases. Constants in q and non-Boolean heads exercise
  // the compiled path's constant positions and head pre-binding.
  ConjunctiveQuery q =
      MustParseQuery("q(x,x,'m') :- E(x,y), E(y,'m'), A(x)");
  DependencySet sigma = MustParseDependencySet("A(x) -> B(x)");
  ChaseOptions chase_options;
  RewriteOptions rewrite_options;
  ContainmentOracle chase_free(q, sigma, chase_options, rewrite_options,
                               /*try_rewriting=*/true, /*memoize=*/true);
  ContainmentOracle chased(q, sigma, chase_options, rewrite_options,
                           /*try_rewriting=*/true, /*memoize=*/false);

  std::mt19937_64 rng(37);
  Predicate e = Predicate::Get("E", 2);
  Predicate a = Predicate::Get("A", 1);
  std::vector<Term> terms;
  for (int i = 0; i < 3; ++i) {
    terms.push_back(Term::Variable("cf$" + std::to_string(i)));
  }
  terms.push_back(Term::Constant("m"));
  terms.push_back(Term::Constant("other"));
  size_t agreements = 0;
  for (int round = 0; round < 400; ++round) {
    std::vector<Atom> body;
    int num_atoms = 1 + static_cast<int>(rng() % 3);
    for (int i = 0; i < num_atoms; ++i) {
      if (rng() % 3 == 0) {
        body.push_back(Atom(a, {terms[rng() % terms.size()]}));
      } else {
        body.push_back(Atom(
            e, {terms[rng() % terms.size()], terms[rng() % terms.size()]}));
      }
    }
    // A 3-ary head over the candidate's terms, matching q's arity; skip
    // shapes whose head terms miss the body (the query ctor requires
    // head variables to occur in the body).
    std::vector<Term> head(3);
    bool ok = true;
    for (int i = 0; i < 3; ++i) {
      head[static_cast<size_t>(i)] = terms[rng() % terms.size()];
      if (!head[static_cast<size_t>(i)].IsVariable()) continue;
      bool occurs = false;
      for (const Atom& at : body) {
        if (at.Mentions(head[static_cast<size_t>(i)])) occurs = true;
      }
      ok = ok && occurs;
    }
    if (!ok) continue;
    ConjunctiveQuery candidate(head, body);
    EXPECT_EQ(chase_free.ContainedInQ(candidate),
              chased.ContainedInQ(candidate))
        << candidate.ToString();
    ++agreements;
  }
  EXPECT_GT(agreements, 100u);
}

// ------------------------------------- fast vs legacy strategy parity --

struct StrategyCase {
  const char* name;
  const char* query;
  const char* sigma;
};

TEST(WitnessTuningParityTest, FastAndLegacyAgreeWhenExhausted) {
  const StrategyCase cases[] = {
      {"example1", "q(x,y) :- Interest(x,z), Class(y,z), Owns(x,y)",
       "Interest(x,z), Class(y,z) -> Owns(x,y)"},
      {"guarded-linear", "T(x,y), E(y,z), E(z,x)",
       "T(x,y) -> E(y,z), E(z,x)"},
      {"triangle-unrelated", "E(a,b), E(b,c), E(c,a)", "A(x) -> B(x)"},
      {"full-tgd", "E(x,y), E(y,z), E(z,x), A(x)", "A(x) -> E(x,x)"},
  };
  const AcyclicityClass targets[] = {AcyclicityClass::kAlpha,
                                     AcyclicityClass::kBeta,
                                     AcyclicityClass::kGamma};
  for (const StrategyCase& c : cases) {
    ConjunctiveQuery q = MustParseQuery(c.query);
    DependencySet sigma = MustParseDependencySet(c.sigma);
    ChaseOptions chase_options;
    RewriteOptions rewrite_options;
    QueryChaseResult chase = ChaseQuery(q, sigma, chase_options);
    ASSERT_FALSE(chase.failed);
    ContainmentOracle oracle(q, sigma, chase_options, rewrite_options);
    WitnessTuning fast;
    WitnessTuning legacy;
    legacy.legacy = true;
    for (AcyclicityClass target : targets) {
      WitnessSearchOutcome sub_fast = FindWitnessInChaseSubsets(
          q, chase, oracle, 4, 500000, target, fast);
      WitnessSearchOutcome sub_legacy = FindWitnessInChaseSubsets(
          q, chase, oracle, 4, 500000, target, legacy);
      ASSERT_TRUE(sub_fast.exhausted || sub_fast.answer == Tri::kYes);
      ASSERT_TRUE(sub_legacy.exhausted || sub_legacy.answer == Tri::kYes);
      EXPECT_EQ(sub_fast.answer, sub_legacy.answer)
          << c.name << " subsets, target " << acyclic::ToString(target);

      WitnessSearchOutcome ex_fast = ExhaustiveWitnessSearch(
          q, sigma, chase, oracle, 3, 500000, target, fast);
      WitnessSearchOutcome ex_legacy = ExhaustiveWitnessSearch(
          q, sigma, chase, oracle, 3, 500000, target, legacy);
      ASSERT_TRUE(ex_fast.exhausted || ex_fast.answer == Tri::kYes);
      ASSERT_TRUE(ex_legacy.exhausted || ex_legacy.answer == Tri::kYes);
      EXPECT_EQ(ex_fast.answer, ex_legacy.answer)
          << c.name << " exhaustive, target " << acyclic::ToString(target);
    }
  }
}

}  // namespace
}  // namespace semacyc
