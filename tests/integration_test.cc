#include <gtest/gtest.h>

#include <set>

#include "chase/query_chase.h"
#include "core/gaifman.h"
#include "core/homomorphism.h"
#include "core/hypergraph.h"
#include "core/parser.h"
#include "deps/classify.h"
#include "deps/nonrecursive.h"
#include "deps/sticky.h"
#include "eval/semac_eval.h"
#include "eval/yannakakis.h"
#include "gen/generators.h"
#include "semacyc/decider.h"

namespace semacyc {
namespace {

TEST(MusicStoreIntegration, EndToEndReformulationPipeline) {
  MusicStoreWorkload w = MakeMusicStoreWorkload(42, 10, 15, 4, 0.35);
  ASSERT_TRUE(Satisfies(w.database, w.sigma));
  ASSERT_FALSE(IsAcyclic(w.q));

  SemAcResult decision = DecideSemanticAcyclicity(w.q, w.sigma);
  ASSERT_EQ(decision.answer, SemAcAnswer::kYes);
  ASSERT_TRUE(IsAcyclic(*decision.witness));

  // The acyclic reformulation returns exactly the same answers on the
  // constraint-satisfying database.
  YannakakisResult fast = EvaluateAcyclic(*decision.witness, w.database);
  ASSERT_TRUE(fast.ok);
  auto brute = EvaluateQuery(w.q, w.database);
  std::set<std::vector<Term>> fast_set(fast.answers.begin(),
                                       fast.answers.end());
  std::set<std::vector<Term>> brute_set(brute.begin(), brute.end());
  EXPECT_EQ(fast_set, brute_set);
  EXPECT_FALSE(brute_set.empty()) << "workload should produce answers";
}

TEST(MusicStoreIntegration, WitnessDiffersOnUnconstrainedDatabases) {
  // On a database violating the tgd, q and its Σ-witness may disagree —
  // equivalence holds only on models of Σ.
  MusicStoreWorkload w = MakeMusicStoreWorkload(43, 4, 4, 2, 0.5);
  SemAcResult decision = DecideSemanticAcyclicity(w.q, w.sigma);
  ASSERT_EQ(decision.answer, SemAcAnswer::kYes);
  Instance bad;
  bad.InsertAll(
      MustParseAtoms("Interest('c0','s0'), Class('r0','s0')"));  // no Owns
  auto q_answers = EvaluateQuery(w.q, bad);
  auto w_answers = EvaluateQuery(*decision.witness, bad);
  EXPECT_TRUE(q_answers.empty());
  EXPECT_FALSE(w_answers.empty());
}

TEST(KeyGridIntegration, Figure4GridEmergesFromAcyclicQuery) {
  for (int n : {1, 2, 3}) {
    KeyGridWorkload w = MakeKeyGridWorkload(n);
    ASSERT_TRUE(IsAcyclic(w.q)) << "n=" << n;
    ASSERT_FALSE(IsK2Set(w.sigma.egds)) << "the R-key has arity 4";

    QueryChaseResult chase = ChaseQuery(w.q, w.sigma);
    ASSERT_TRUE(chase.saturated);
    ASSERT_FALSE(chase.failed);
    if (n >= 2) {
      EXPECT_FALSE(IsAcyclicChase(chase.instance))
          << "the chase must become cyclic (n=" << n << ")";
    }

    // Verify the full (n+1) x (n+1) grid: resolve the grid coordinates.
    auto p = [&](int r, int c) -> Term {
      Term var = (c == 0) ? Term::Variable("l" + std::to_string(r))
                 : (r < n ? Term::Variable("t_" + std::to_string(r) + "_" +
                                           std::to_string(c - 1))
                          : Term::Variable("w1_" + std::to_string(r - 1) +
                                           "_" + std::to_string(c - 1)));
      auto it = chase.var_to_frozen.find(var);
      EXPECT_TRUE(it != chase.var_to_frozen.end()) << var.ToString();
      return it->second;
    };
    Predicate H = Predicate::Get("H", 2);
    Predicate V = Predicate::Get("V", 2);
    for (int r = 0; r <= n; ++r) {
      for (int c = 0; c < n; ++c) {
        EXPECT_TRUE(chase.instance.Contains(Atom(H, {p(r, c), p(r, c + 1)})))
            << "missing H edge at (" << r << "," << c << "), n=" << n;
      }
    }
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c <= n; ++c) {
        EXPECT_TRUE(chase.instance.Contains(Atom(V, {p(r, c), p(r + 1, c)})))
            << "missing V edge at (" << r << "," << c << "), n=" << n;
      }
    }
    // Treewidth proxy: the Gaifman graph of the chase contains the grid,
    // while the input query's hypergraph was a tree.
    GaifmanGraph g =
        GaifmanGraph::Of(chase.instance, ConnectingTerms::kAllTerms);
    EXPECT_TRUE(g.HasEdge(p(0, 0), p(0, 1)));
    EXPECT_TRUE(g.HasEdge(p(0, 0), p(1, 0)));
  }
}

TEST(CliqueChaseIntegration, Example2KillsTreewidthToo) {
  CliqueChaseWorkload w = MakeCliqueChaseWorkload(6);
  QueryChaseResult chase = ChaseQuery(w.q, w.sigma);
  ASSERT_TRUE(chase.saturated);
  GaifmanGraph g =
      GaifmanGraph::Of(chase.instance, ConnectingTerms::kAllTerms);
  EXPECT_GE(g.GreedyCliqueLowerBound(), 6u);
  // NR and sticky both hold for the single tgd — neither class has
  // acyclicity-preserving chase (the point of Example 2).
  EXPECT_TRUE(IsNonRecursive(w.sigma.tgds));
  EXPECT_TRUE(IsSticky(w.sigma.tgds));
  EXPECT_FALSE(IsGuardedSet(w.sigma.tgds));
}

TEST(GeneratorsIntegration, RandomWorkloadsAreWellFormed) {
  Generator gen(99);
  std::vector<Predicate> preds = {Predicate::Get("W0", 2),
                                  Predicate::Get("W1", 3)};
  auto ids = gen.RandomInclusionDependencies(preds, 10);
  EXPECT_TRUE(IsInclusionSet(ids));
  auto guarded = gen.RandomGuardedTgds(preds, 10, 2);
  EXPECT_TRUE(IsGuardedSet(guarded));
  Instance db = gen.RandomDatabase(preds, 50, 8);
  EXPECT_EQ(db.size(), 50u);
}

TEST(DecisionLandscapeIntegration, PerClassBehaviourOnSharedQuery) {
  // One cyclic query probed under a representative of each class.
  ConjunctiveQuery q =
      MustParseQuery("Interest(x,z), Class(y,z), Owns(x,y)");
  struct Case {
    const char* name;
    const char* sigma;
    SemAcAnswer expected;
  };
  const Case cases[] = {
      {"sticky-rescue", "Interest(x,z), Class(y,z) -> Owns(x,y)",
       SemAcAnswer::kYes},
      {"unrelated-guarded", "Other(x) -> Owns(x,w)", SemAcAnswer::kNo},
      {"k2-unrelated", "Owns(x,y), Owns(x,z) -> y = z", SemAcAnswer::kNo},
  };
  for (const Case& c : cases) {
    DependencySet sigma = MustParseDependencySet(c.sigma);
    SemAcResult result = DecideSemanticAcyclicity(q, sigma);
    EXPECT_EQ(result.answer, c.expected) << c.name;
  }
}

}  // namespace
}  // namespace semacyc
