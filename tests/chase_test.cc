#include <gtest/gtest.h>

#include "chase/egd_chase.h"
#include "chase/query_chase.h"
#include "chase/tgd_chase.h"
#include "core/gaifman.h"
#include "core/hypergraph.h"
#include "core/parser.h"
#include "gen/generators.h"

namespace semacyc {
namespace {

Term C(const std::string& s) { return Term::Constant(s); }

Instance Db(const std::string& atoms) {
  Instance inst;
  inst.InsertAll(MustParseAtoms(atoms));
  return inst;
}

TEST(TgdChaseTest, FullTgdsTerminate) {
  DependencySet sigma = MustParseDependencySet("E(x,y), E(y,z) -> E(x,z)");
  Instance db = Db("E('a','b'), E('b','c'), E('c','d')");
  ChaseResult result = ChaseTgds(db, sigma.tgds);
  EXPECT_TRUE(result.saturated);
  // Transitive closure of a 3-path: 3+2+1 edges.
  EXPECT_EQ(result.instance.size(), 6u);
  EXPECT_TRUE(Satisfies(result.instance, sigma));
}

TEST(TgdChaseTest, ExistentialsCreateNulls) {
  DependencySet sigma = MustParseDependencySet("P(x) -> E(x,y)");
  Instance db = Db("P('a')");
  ChaseResult result = ChaseTgds(db, sigma.tgds);
  EXPECT_TRUE(result.saturated);
  EXPECT_EQ(result.instance.size(), 2u);
  bool has_null = false;
  for (const Atom& a : result.instance.atoms()) {
    if (a.MentionsKind(TermKind::kNull)) has_null = true;
  }
  EXPECT_TRUE(has_null);
}

TEST(TgdChaseTest, RestrictedChaseSkipsSatisfiedTriggers) {
  DependencySet sigma = MustParseDependencySet("P(x) -> E(x,y)");
  Instance db = Db("P('a'), E('a','b')");
  ChaseResult result = ChaseTgds(db, sigma.tgds);
  EXPECT_TRUE(result.saturated);
  EXPECT_EQ(result.instance.size(), 2u);  // nothing added
}

TEST(TgdChaseTest, ObliviousChaseFiresAnyway) {
  DependencySet sigma = MustParseDependencySet("P(x) -> E(x,y)");
  Instance db = Db("P('a'), E('a','b')");
  ChaseOptions options;
  options.variant = ChaseOptions::Variant::kOblivious;
  ChaseResult result = ChaseTgds(db, sigma.tgds, options);
  EXPECT_EQ(result.instance.size(), 3u);  // fresh null edge added
}

TEST(TgdChaseTest, NonTerminatingChaseHitsBudget) {
  DependencySet sigma = MustParseDependencySet("E(x,y) -> E(y,z)");
  Instance db = Db("E('a','b')");
  ChaseOptions options;
  options.max_rounds = 10;
  ChaseResult result = ChaseTgds(db, sigma.tgds, options);
  EXPECT_FALSE(result.saturated);
  EXPECT_GE(result.instance.size(), 10u);
}

TEST(TgdChaseTest, FairnessAcrossTgds) {
  DependencySet sigma =
      MustParseDependencySet("A(x) -> B(x). B(x) -> Cc(x). Cc(x) -> D(x).");
  ChaseResult result = ChaseTgds(Db("A('a')"), sigma.tgds);
  EXPECT_TRUE(result.saturated);
  EXPECT_EQ(result.instance.size(), 4u);
}

TEST(TgdChaseTest, ExampleTwoCliqueEmerges) {
  // Example 2: chase of P(x1)..P(xn) under P(x),P(y) -> R(x,y) yields an
  // n-clique on the Gaifman graph (and destroys acyclicity).
  for (int n : {3, 5, 7}) {
    CliqueChaseWorkload w = MakeCliqueChaseWorkload(n);
    QueryChaseResult chase = ChaseQuery(w.q, w.sigma);
    EXPECT_TRUE(chase.saturated);
    // n unary atoms + n^2 binary atoms (including loops).
    EXPECT_EQ(chase.instance.size(),
              static_cast<size_t>(n) + static_cast<size_t>(n) * n);
    GaifmanGraph g =
        GaifmanGraph::Of(chase.instance, ConnectingTerms::kAllTerms);
    EXPECT_GE(g.GreedyCliqueLowerBound(), static_cast<size_t>(n));
    if (n >= 3) {
      EXPECT_FALSE(IsAcyclicChase(chase.instance));
    }
    EXPECT_TRUE(IsAcyclic(w.q));  // the input was acyclic
  }
}

TEST(EgdChaseTest, FunctionalDependencyMergesNulls) {
  Term n1 = Term::FreshNull(), n2 = Term::FreshNull();
  Predicate r = Predicate::Get("R", 2);
  Instance db;
  db.Insert(Atom(r, {C("a"), n1}));
  db.Insert(Atom(r, {C("a"), n2}));
  std::vector<Egd> egds = {MustParseEgd("R(x,y), R(x,z) -> y = z")};
  Substitution term_map;
  EgdChaseResult result = ChaseEgds(db, egds, &term_map);
  EXPECT_FALSE(result.failed);
  EXPECT_TRUE(result.changed);
  EXPECT_EQ(result.instance.size(), 1u);
}

TEST(EgdChaseTest, ConstantBeatsNull) {
  Term n1 = Term::FreshNull();
  Predicate r = Predicate::Get("R", 2);
  Instance db;
  db.Insert(Atom(r, {C("a"), n1}));
  db.Insert(Atom(r, {C("a"), C("b")}));
  std::vector<Egd> egds = {MustParseEgd("R(x,y), R(x,z) -> y = z")};
  EgdChaseResult result = ChaseEgds(db, egds);
  EXPECT_FALSE(result.failed);
  EXPECT_EQ(result.instance.size(), 1u);
  EXPECT_TRUE(result.instance.Contains(Atom(r, {C("a"), C("b")})));
}

TEST(EgdChaseTest, ConstantClashFails) {
  Instance db = Db("R('a','b'), R('a','c')");
  std::vector<Egd> egds = {MustParseEgd("R(x,y), R(x,z) -> y = z")};
  EgdChaseResult result = ChaseEgds(db, egds);
  EXPECT_TRUE(result.failed);
}

TEST(EgdChaseTest, CascadingMerges) {
  // Merging at one level triggers merges at the next.
  Term n1 = Term::FreshNull(), n2 = Term::FreshNull(), n3 = Term::FreshNull(),
       n4 = Term::FreshNull();
  Predicate r = Predicate::Get("R", 2);
  Instance db;
  db.Insert(Atom(r, {C("a"), n1}));
  db.Insert(Atom(r, {C("a"), n2}));
  db.Insert(Atom(r, {n1, n3}));
  db.Insert(Atom(r, {n2, n4}));
  std::vector<Egd> egds = {MustParseEgd("R(x,y), R(x,z) -> y = z")};
  EgdChaseResult result = ChaseEgds(db, egds);
  EXPECT_FALSE(result.failed);
  EXPECT_EQ(result.instance.size(), 2u);  // chain collapses
  EXPECT_GE(result.merges, 2u);
}

TEST(EgdChaseTest, ExampleFourDestroysAcyclicity) {
  KeySquareWorkload w = MakeKeySquareWorkload();
  EXPECT_TRUE(IsAcyclic(w.q));
  QueryChaseResult chase = ChaseQuery(w.q, w.sigma);
  EXPECT_TRUE(chase.saturated);
  EXPECT_FALSE(chase.failed);
  // R(x,y) and R(x,v) merge y = v; the S-chain closes into a cycle.
  EXPECT_EQ(chase.instance.size(), 4u);
  EXPECT_FALSE(IsAcyclicChase(chase.instance));
}

TEST(QueryChaseTest, FrozenHeadTracksMerges) {
  ConjunctiveQuery q = MustParseQuery("q(y,z) :- R(x,y), R(x,z)");
  DependencySet sigma = MustParseDependencySet("R(x,y), R(x,z) -> y = z");
  QueryChaseResult chase = ChaseQuery(q, sigma);
  EXPECT_TRUE(chase.saturated);
  EXPECT_EQ(chase.frozen_head[0], chase.frozen_head[1]);
}

TEST(QueryChaseTest, MixedTgdsAndEgds) {
  ConjunctiveQuery q = MustParseQuery("A(x)");
  DependencySet sigma = MustParseDependencySet(
      "A(x) -> R(x,y).\n"
      "A(x) -> R(x,z).\n"
      "R(x,y), R(x,z) -> y = z.");
  QueryChaseResult chase = ChaseQuery(q, sigma);
  EXPECT_TRUE(chase.saturated);
  EXPECT_FALSE(chase.failed);
  EXPECT_EQ(chase.instance.size(), 2u);  // A(x) + one merged R-atom
  EXPECT_TRUE(Satisfies(chase.instance, sigma));
}

TEST(ContainmentUnderTest, ExampleOneEquivalence) {
  // Example 1: q ≡Σ q' where q drops the Owns atom.
  ConjunctiveQuery q =
      MustParseQuery("q(x,y) :- Interest(x,z), Class(y,z), Owns(x,y)");
  ConjunctiveQuery q_prime =
      MustParseQuery("q(x,y) :- Interest(x,z), Class(y,z)");
  DependencySet sigma =
      MustParseDependencySet("Interest(x,z), Class(y,z) -> Owns(x,y)");
  EXPECT_EQ(EquivalentUnder(q, q_prime, sigma), Tri::kYes);
  // Without the tgd they are not equivalent.
  DependencySet empty;
  EXPECT_EQ(EquivalentUnder(q, q_prime, empty), Tri::kNo);
}

TEST(ContainmentUnderTest, DirectionalityUnderTgds) {
  DependencySet sigma = MustParseDependencySet("A(x) -> B(x)");
  ConjunctiveQuery qa = MustParseQuery("A(x)");
  ConjunctiveQuery qb = MustParseQuery("B(x)");
  EXPECT_EQ(ContainedUnder(qa, qb, sigma), Tri::kYes);
  EXPECT_EQ(ContainedUnder(qb, qa, sigma), Tri::kNo);
}

TEST(ContainmentUnderTest, TruncatedChaseGivesUnknown) {
  DependencySet sigma = MustParseDependencySet("E(x,y) -> E(y,z)");
  ConjunctiveQuery q1 = MustParseQuery("E(x,y)");
  ConjunctiveQuery q2 = MustParseQuery("Zz(x)");  // never derivable
  ChaseOptions options;
  options.max_rounds = 4;
  EXPECT_EQ(ContainedUnder(q1, q2, sigma, options), Tri::kUnknown);
}

TEST(ContainmentUnderTest, SoundYesOnTruncatedChase) {
  DependencySet sigma = MustParseDependencySet("E(x,y) -> E(y,z)");
  ConjunctiveQuery q1 = MustParseQuery("E(x,y)");
  ConjunctiveQuery q2 = MustParseQuery("E(x,y), E(y,z)");
  ChaseOptions options;
  options.max_rounds = 4;
  EXPECT_EQ(ContainedUnder(q1, q2, sigma, options), Tri::kYes);
}

TEST(ContainmentUnderTest, UcqVariant) {
  DependencySet sigma = MustParseDependencySet("A(x) -> B(x)");
  ConjunctiveQuery q = MustParseQuery("A(x)");
  UnionQuery Q({MustParseQuery("Cq(x)"), MustParseQuery("B(x)")});
  EXPECT_EQ(ContainedUnder(q, Q, sigma), Tri::kYes);
  UnionQuery Q2({MustParseQuery("Cq(x)")});
  EXPECT_EQ(ContainedUnder(q, Q2, sigma), Tri::kNo);
}

TEST(SatisfiesTest, DetectsViolations) {
  DependencySet sigma = MustParseDependencySet("E(x,y), E(y,z) -> E(x,z)");
  EXPECT_FALSE(Satisfies(Db("E('a','b'), E('b','c')"), sigma));
  EXPECT_TRUE(Satisfies(Db("E('a','b'), E('b','c'), E('a','c')"), sigma));
  DependencySet key = MustParseDependencySet("R(x,y), R(x,z) -> y = z");
  EXPECT_TRUE(Satisfies(Db("R('a','b')"), key));
  EXPECT_FALSE(Satisfies(Db("R('a','b'), R('a','c')"), key));
}

/// Prop 12 property sweep: guarded chases preserve acyclicity (any finite
/// prefix of the chase of an acyclic query stays acyclic).
class GuardedApcSweep : public ::testing::TestWithParam<int> {};

TEST_P(GuardedApcSweep, GuardedChasePreservesAcyclicity) {
  Generator gen(static_cast<uint64_t>(GetParam()));
  ConjunctiveQuery q = gen.RandomAcyclicQuery(6, 3, 2, "G");
  std::vector<Predicate> preds = {Predicate::Get("G0", 3),
                                  Predicate::Get("G1", 3)};
  DependencySet sigma;
  sigma.tgds = gen.RandomGuardedTgds(preds, 3, 2);
  ChaseOptions options;
  options.max_rounds = 3;  // prefix of a possibly infinite chase
  options.max_atoms = 4000;
  QueryChaseResult chase = ChaseQuery(q, sigma, options);
  EXPECT_TRUE(IsAcyclicChase(chase.instance))
      << "guarded chase prefix became cyclic (Prop 12 violated)";
}

INSTANTIATE_TEST_SUITE_P(Seeds, GuardedApcSweep, ::testing::Range(0, 15));

/// Prop 22 property sweep: keys over unary/binary predicates (K2)
/// preserve acyclicity.
class K2ApcSweep : public ::testing::TestWithParam<int> {};

TEST_P(K2ApcSweep, BinaryKeysPreserveAcyclicity) {
  Generator gen(static_cast<uint64_t>(GetParam()) + 500);
  ConjunctiveQuery q = gen.RandomAcyclicQuery(8, 2, 3, "K");
  DependencySet sigma;
  for (int p = 0; p < 3; ++p) {
    std::string name = "K" + std::to_string(p);
    sigma.egds.push_back(
        MustParseEgd(name + "(x,y), " + name + "(x,z) -> y = z"));
  }
  QueryChaseResult chase = ChaseQuery(q, sigma);
  EXPECT_TRUE(chase.saturated);
  EXPECT_FALSE(chase.failed);
  EXPECT_TRUE(IsAcyclicChase(chase.instance))
      << "K2 chase became cyclic (Prop 22 violated)";
}

INSTANTIATE_TEST_SUITE_P(Seeds, K2ApcSweep, ::testing::Range(0, 15));

}  // namespace
}  // namespace semacyc
