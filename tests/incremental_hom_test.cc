// Tests for the incremental chase-homomorphism checker
// (core/incremental_hom): exact parity with a from-scratch
// FindHomomorphisms at every step of random push/pop walks (found flag AND
// witness validity), plus end-to-end witness-search outcome parity between
// the incremental and the full per-push check at equal budgets.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "chase/query_chase.h"
#include "core/homomorphism.h"
#include "core/incremental_hom.h"
#include "core/parser.h"
#include "gen/generators.h"
#include "semacyc/witness_search.h"

namespace semacyc {
namespace {

using acyclic::AcyclicityClass;

/// One (query, schema) pair whose chase is the walk target.
struct ChaseCase {
  std::string name;
  ConjunctiveQuery q;
  DependencySet sigma;
};

std::vector<ChaseCase> ChaseCases() {
  Generator gen(41);
  std::vector<ChaseCase> cases;
  cases.push_back({"cycle6-chain", gen.CycleQuery(6),
                   MustParseDependencySet(
                       "E(x,y) -> F(x,y). F(x,y) -> G(x,y).")});
  cases.push_back({"clique4-copy", gen.CliqueQuery(4),
                   MustParseDependencySet("E(x,y) -> F(x,y).")});
  cases.push_back({"alpha-not-beta", gen.AlphaNotBetaQuery(2),
                   MustParseDependencySet("E(x,y) -> E(y,x).")});
  cases.push_back({"beta-not-gamma", gen.BetaNotGammaQuery(2),
                   MustParseDependencySet("P(x,y) -> T(x,y,y).")});
  cases.push_back(
      {"berge-tree", gen.BergeTreeQuery(8), DependencySet{}});
  cases.push_back({"full-tgd",
                   MustParseQuery("E(x,y), E(y,z), E(z,x), A(x)"),
                   MustParseDependencySet("A(x) -> E(x,x)")});
  return cases;
}

/// Validates the session against the batch decider on the current stack:
/// identical found flag, and when found a witness under which every pushed
/// atom lands inside the target (with the fixed seeds respected verbatim).
void CheckAgainstBatch(IncrementalHomomorphism& hom,
                       const std::vector<Atom>& stack, const Instance& target,
                       const Substitution& fixed, const std::string& context) {
  HomOptions options;
  options.fixed = fixed;
  bool batch = FindHomomorphisms(stack, target, options).found;
  ASSERT_EQ(hom.found(), batch) << context;
  ASSERT_EQ(hom.depth(), stack.size()) << context;
  if (!hom.found()) return;
  Substitution witness = hom.Witness();
  for (const auto& [src, dst] : fixed) {
    auto it = witness.find(src);
    ASSERT_TRUE(it != witness.end()) << context << " fixed seed dropped";
    ASSERT_EQ(it->second, dst) << context << " fixed seed rebound";
  }
  for (const Atom& a : stack) {
    Atom image = Apply(witness, a);
    for (Term t : image.args()) {
      ASSERT_FALSE(t.IsVariable())
          << context << " unmapped variable in witness image of "
          << a.ToString();
    }
    ASSERT_TRUE(target.Contains(image))
        << context << " witness image " << image.ToString()
        << " not in target for " << a.ToString();
  }
}

TEST(IncrementalHomTest, RandomWalkMatchesBatchOverGeneratorFamilies) {
  std::mt19937_64 rng(53);
  ChaseOptions chase_options;
  for (const ChaseCase& c : ChaseCases()) {
    QueryChaseResult chase = ChaseQuery(c.q, c.sigma, chase_options);
    ASSERT_FALSE(chase.failed) << c.name;
    const Instance& target = chase.instance;
    std::vector<Predicate> preds = target.Predicates();
    ASSERT_FALSE(preds.empty()) << c.name;
    // A predicate absent from the chase: pushes over it must fail exactly.
    Predicate alien = Predicate::Get("IncHomAlien", 2);
    std::vector<Term> chase_terms = target.ActiveDomain();
    std::vector<Term> pool;
    for (int i = 0; i < 6; ++i) {
      pool.push_back(Term::Variable("ih$" + std::to_string(i)));
    }
    // Fixed seeds mirror the enumerator: head variables bound to the
    // frozen head, position-wise.
    Substitution fixed;
    for (size_t i = 0; i < c.q.head().size(); ++i) {
      Term h = c.q.head()[i];
      if (h.IsVariable()) fixed.emplace(h, chase.frozen_head[i]);
    }
    std::vector<Term> head_vars;
    for (const auto& [src, dst] : fixed) head_vars.push_back(src);

    auto random_atom = [&]() {
      Predicate p = rng() % 16 == 0
                        ? alien
                        : preds[rng() % preds.size()];
      std::vector<Term> args;
      for (int i = 0; i < p.arity(); ++i) {
        uint64_t kind = rng() % 8;
        if (kind == 0 && !chase_terms.empty()) {
          // Ground argument (a chase term, possibly a frozen null).
          args.push_back(chase_terms[rng() % chase_terms.size()]);
        } else if (kind == 1 && !head_vars.empty()) {
          args.push_back(head_vars[rng() % head_vars.size()]);
        } else {
          args.push_back(pool[rng() % pool.size()]);
        }
      }
      return Atom(p, std::move(args));
    };

    IncrementalHomomorphism hom(target);
    for (int walk = 0; walk < 25; ++walk) {
      bool with_fixed = walk % 2 == 0;
      const Substitution& seeds = with_fixed ? fixed : Substitution{};
      hom.Reset(seeds);
      std::vector<Atom> stack;
      for (int step = 0; step < 24; ++step) {
        bool push = stack.empty() || rng() % 3 != 0;
        if (push) {
          Atom a = random_atom();
          stack.push_back(a);
          hom.PushAtom(a);
        } else {
          stack.pop_back();
          hom.PopAtom();
        }
        CheckAgainstBatch(hom, stack, target, seeds,
                          c.name + " walk " + std::to_string(walk) +
                              " step " + std::to_string(step));
        if (HasFatalFailure()) return;
      }
      while (!stack.empty()) {
        stack.pop_back();
        hom.PopAtom();
        CheckAgainstBatch(hom, stack, target, seeds,
                          c.name + " unwind to " +
                              std::to_string(stack.size()));
        if (HasFatalFailure()) return;
      }
      ASSERT_EQ(hom.depth(), 0u);
    }
    // The walk must have exercised every absorption path at least once
    // across the case (pushes, forward-checking rejections, extensions).
    EXPECT_GT(hom.stats().pushes, 0u) << c.name;
    EXPECT_GT(hom.stats().fc_rejects, 0u) << c.name;
    EXPECT_GT(hom.stats().extends, 0u) << c.name;
  }
}

TEST(IncrementalHomTest, RepeatedVariableAndGroundEdgeCases) {
  // Hand-picked shapes around the scan's corner cases: repeated variables
  // inside one atom, ground positions, and fixed seeds outside the target.
  Instance target;
  Predicate e = Predicate::Get("E", 2);
  Term a = Term::Constant("a");
  Term b = Term::Constant("b");
  target.InsertAll({Atom(e, {a, b}), Atom(e, {b, b})});

  Term x = Term::Variable("ehx");
  Term y = Term::Variable("ehy");
  IncrementalHomomorphism hom(target);
  hom.Reset();
  // E(x,x) only maps onto E(b,b).
  EXPECT_TRUE(hom.PushAtom(Atom(e, {x, x})));
  EXPECT_EQ(hom.Witness().at(x), b);
  // E(x,y) with x=b forces y=b; then ground E(a,a) is impossible.
  EXPECT_TRUE(hom.PushAtom(Atom(e, {x, y})));
  EXPECT_FALSE(hom.PushAtom(Atom(e, {a, a})));
  hom.PopAtom();
  EXPECT_TRUE(hom.found());
  hom.PopAtom();
  hom.PopAtom();
  EXPECT_EQ(hom.depth(), 0u);

  // A fixed seed mapping outside the target: the empty conjunction still
  // maps, but any atom mentioning the seed is exactly refuted.
  Substitution fixed;
  fixed.emplace(x, Term::Constant("elsewhere"));
  hom.Reset(fixed);
  EXPECT_TRUE(hom.found());
  EXPECT_FALSE(hom.PushAtom(Atom(e, {x, y})));
  hom.PopAtom();
  EXPECT_TRUE(hom.PushAtom(Atom(e, {y, y})));  // seed unused: fine
  EXPECT_EQ(hom.Witness().at(x), Term::Constant("elsewhere"));
}

// ------------------------------- end-to-end witness-search parity --------

struct ParityCase {
  const char* name;
  const char* query;
  const char* sigma;
};

/// The exhaustive strategy with the incremental checker must equal the
/// full per-push re-search in EVERY outcome field — the checker is exact,
/// so the two search trees coincide node for node, including where a
/// budget truncates them.
TEST(IncrementalHomTest, ExhaustiveOutcomeBitwiseParityIncVsFull) {
  const ParityCase cases[] = {
      {"example1", "q(x,y) :- Interest(x,z), Class(y,z), Owns(x,y)",
       "Interest(x,z), Class(y,z) -> Owns(x,y)"},
      {"guarded-linear", "T(x,y), E(y,z), E(z,x)",
       "T(x,y) -> E(y,z), E(z,x)"},
      {"triangle-unrelated", "E(a,b), E(b,c), E(c,a)", "A(x) -> B(x)"},
      {"full-tgd", "E(x,y), E(y,z), E(z,x), A(x)", "A(x) -> E(x,x)"},
  };
  const AcyclicityClass targets[] = {AcyclicityClass::kAlpha,
                                     AcyclicityClass::kBeta,
                                     AcyclicityClass::kBerge};
  // Generous and deliberately tiny budgets: with an exact checker the
  // truncation point is identical too.
  const size_t budgets[] = {500000, 200, 37};
  for (const ParityCase& c : cases) {
    ConjunctiveQuery q = MustParseQuery(c.query);
    DependencySet sigma = MustParseDependencySet(c.sigma);
    ChaseOptions chase_options;
    RewriteOptions rewrite_options;
    QueryChaseResult chase = ChaseQuery(q, sigma, chase_options);
    ASSERT_FALSE(chase.failed);
    ContainmentOracle oracle(q, sigma, chase_options, rewrite_options);
    for (AcyclicityClass target : targets) {
      for (size_t budget : budgets) {
        WitnessTuning inc;
        inc.incremental_hom = true;
        WitnessTuning full;
        full.incremental_hom = false;
        WitnessSearchOutcome with_inc = ExhaustiveWitnessSearch(
            q, sigma, chase, oracle, 3, budget, target, inc);
        WitnessSearchOutcome with_full = ExhaustiveWitnessSearch(
            q, sigma, chase, oracle, 3, budget, target, full);
        std::string context = std::string(c.name) + " target " +
                              acyclic::ToString(target) + " budget " +
                              std::to_string(budget);
        EXPECT_EQ(with_inc.answer, with_full.answer) << context;
        EXPECT_EQ(with_inc.exhausted, with_full.exhausted) << context;
        EXPECT_EQ(with_inc.candidates_tested, with_full.candidates_tested)
            << context;
        ASSERT_EQ(with_inc.witness.has_value(), with_full.witness.has_value())
            << context;
        if (with_inc.witness.has_value()) {
          EXPECT_EQ(*with_inc.witness, *with_full.witness) << context;
        }
      }
    }
  }
}

/// Fast (incremental everything) vs legacy (seed pipeline) at equal,
/// exhausting budgets: identical answers always; and identical
/// candidates_tested whenever no witness cut a search short (both dedups
/// are renaming-invariant, so the distinct-candidate sets coincide).
TEST(IncrementalHomTest, ExhaustiveFastVsLegacyOutcomeParity) {
  const ParityCase cases[] = {
      {"example1", "q(x,y) :- Interest(x,z), Class(y,z), Owns(x,y)",
       "Interest(x,z), Class(y,z) -> Owns(x,y)"},
      {"full-tgd", "E(x,y), E(y,z), E(z,x), A(x)", "A(x) -> E(x,x)"},
  };
  const AcyclicityClass targets[] = {AcyclicityClass::kAlpha,
                                     AcyclicityClass::kGamma};
  for (const ParityCase& c : cases) {
    ConjunctiveQuery q = MustParseQuery(c.query);
    DependencySet sigma = MustParseDependencySet(c.sigma);
    ChaseOptions chase_options;
    RewriteOptions rewrite_options;
    QueryChaseResult chase = ChaseQuery(q, sigma, chase_options);
    ASSERT_FALSE(chase.failed);
    ContainmentOracle oracle(q, sigma, chase_options, rewrite_options);
    for (AcyclicityClass target : targets) {
      WitnessTuning fast;
      WitnessTuning legacy;
      legacy.legacy = true;
      WitnessSearchOutcome with_fast = ExhaustiveWitnessSearch(
          q, sigma, chase, oracle, 3, 500000, target, fast);
      WitnessSearchOutcome with_legacy = ExhaustiveWitnessSearch(
          q, sigma, chase, oracle, 3, 500000, target, legacy);
      std::string context =
          std::string(c.name) + " target " + acyclic::ToString(target);
      ASSERT_TRUE(with_fast.exhausted || with_fast.answer == Tri::kYes)
          << context;
      ASSERT_TRUE(with_legacy.exhausted || with_legacy.answer == Tri::kYes)
          << context;
      EXPECT_EQ(with_fast.answer, with_legacy.answer) << context;
      if (with_fast.answer != Tri::kYes) {
        EXPECT_EQ(with_fast.exhausted, with_legacy.exhausted) << context;
        EXPECT_EQ(with_fast.candidates_tested, with_legacy.candidates_tested)
            << context;
      }
    }
  }
}

}  // namespace
}  // namespace semacyc
