#include <gtest/gtest.h>

#include "core/hypergraph.h"
#include "core/parser.h"
#include "gen/generators.h"
#include "semacyc/ucq_semac.h"

namespace semacyc {
namespace {

TEST(UcqSemAcTest, AllAcyclicDisjunctsIsYes) {
  UnionQuery Q({MustParseQuery("E(x,y)"), MustParseQuery("F(x,y), F(y,z)")});
  DependencySet empty;
  UcqSemAcResult result = DecideUcqSemanticAcyclicity(Q, empty);
  EXPECT_EQ(result.answer, SemAcAnswer::kYes);
  ASSERT_TRUE(result.witness.has_value());
  EXPECT_EQ(result.witness->size(), 2u);
}

TEST(UcqSemAcTest, RedundantCyclicDisjunctIsAbsorbed) {
  // The triangle is contained in the single-edge disjunct; it is
  // redundant, so the UCQ is semantically acyclic.
  Generator gen(31);
  UnionQuery Q({gen.CycleQuery(3), MustParseQuery("E(x,y)")});
  DependencySet empty;
  UcqSemAcResult result = DecideUcqSemanticAcyclicity(Q, empty);
  EXPECT_EQ(result.answer, SemAcAnswer::kYes);
  ASSERT_TRUE(result.witness.has_value());
  EXPECT_EQ(result.witness->size(), 1u);  // only the edge survives
  EXPECT_TRUE(result.disjuncts[0].redundant);
}

TEST(UcqSemAcTest, IrredundantCyclicDisjunctIsNo) {
  Generator gen(32);
  UnionQuery Q({gen.CycleQuery(5), MustParseQuery("F(x,y)")});
  DependencySet empty;
  UcqSemAcResult result = DecideUcqSemanticAcyclicity(Q, empty);
  EXPECT_EQ(result.answer, SemAcAnswer::kNo);
}

TEST(UcqSemAcTest, ConstraintsRescueDisjuncts) {
  // Example 1 pattern inside a union.
  UnionQuery Q({MustParseQuery("Interest(x,z), Class(y,z), Owns(x,y)"),
                MustParseQuery("Interest(x,z)")});
  DependencySet sigma =
      MustParseDependencySet("Interest(x,z), Class(y,z) -> Owns(x,y)");
  UcqSemAcResult result = DecideUcqSemanticAcyclicity(Q, sigma);
  EXPECT_EQ(result.answer, SemAcAnswer::kYes);
  ASSERT_TRUE(result.witness.has_value());
  for (const auto& d : result.witness->disjuncts()) {
    EXPECT_TRUE(IsAcyclic(d));
  }
}

TEST(UcqSemAcTest, MutuallyEquivalentDisjunctsKeepOne) {
  UnionQuery Q({MustParseQuery("E(x,y)"), MustParseQuery("E(u,v)")});
  DependencySet empty;
  UcqSemAcResult result = DecideUcqSemanticAcyclicity(Q, empty);
  EXPECT_EQ(result.answer, SemAcAnswer::kYes);
  ASSERT_TRUE(result.witness.has_value());
  EXPECT_EQ(result.witness->size(), 1u);
}

TEST(UcqSemAcTest, SingleDisjunctReducesToCqCase) {
  // The diamond folds onto an acyclic 2-path: YES.
  UnionQuery Q({MustParseQuery("E(a,b), E(b,c), E(a,d), E(d,c)")});
  DependencySet empty;
  UcqSemAcResult result = DecideUcqSemanticAcyclicity(Q, empty);
  EXPECT_EQ(result.answer, SemAcAnswer::kYes);
}

}  // namespace
}  // namespace semacyc
