#include <gtest/gtest.h>

#include "chase/query_chase.h"
#include "core/containment.h"
#include "core/parser.h"
#include "deps/nonrecursive.h"
#include "deps/sticky.h"
#include "gen/generators.h"
#include "rewrite/rewrite_containment.h"
#include "rewrite/ucq_rewriter.h"
#include "rewrite/unify.h"

namespace semacyc {
namespace {

TEST(UnifyTest, VariablesUnify) {
  TermUnification u;
  EXPECT_TRUE(u.Union(Term::Variable("x"), Term::Variable("y")));
  EXPECT_EQ(u.Find(Term::Variable("x")), u.Find(Term::Variable("y")));
}

TEST(UnifyTest, ConstantsClash) {
  TermUnification u;
  EXPECT_FALSE(u.Union(Term::Constant("a"), Term::Constant("b")));
  TermUnification v;
  EXPECT_TRUE(v.Union(Term::Constant("a"), Term::Constant("a")));
}

TEST(UnifyTest, ConstantBecomesRepresentative) {
  TermUnification u;
  EXPECT_TRUE(u.Union(Term::Variable("x"), Term::Constant("a")));
  EXPECT_TRUE(u.Union(Term::Variable("y"), Term::Variable("x")));
  EXPECT_EQ(u.Find(Term::Variable("y")), Term::Constant("a"));
  Substitution sub = u.ToSubstitution();
  EXPECT_EQ(Apply(sub, Term::Variable("x")), Term::Constant("a"));
}

TEST(UnifyTest, MguOfAtoms) {
  auto mgu = MguOfAtoms(MustParseAtoms("R(x,y)")[0],
                        MustParseAtoms("R('a',z)")[0]);
  ASSERT_TRUE(mgu.has_value());
  EXPECT_EQ(Apply(*mgu, Term::Variable("x")), Term::Constant("a"));
  EXPECT_FALSE(MguOfAtoms(MustParseAtoms("R(x,x)")[0],
                          MustParseAtoms("R('a','b')")[0])
                   .has_value());
}

TEST(RewriteTest, LinearTgdSingleStep) {
  // q = S(x); Σ = A(x) -> S(x): rewriting adds A(x).
  ConjunctiveQuery q = MustParseQuery("S(x)");
  auto tgds = MustParseDependencySet("A(x) -> S(x)").tgds;
  RewriteResult result = RewriteToUcq(q, tgds);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.ucq.size(), 2u);
}

TEST(RewriteTest, ExistentialBlocksSharedVariables) {
  // Σ = A(x) -> E(x,y) (y existential). q = E(x,y), B(y): the piece
  // {E(x,y)} cannot resolve because y occurs outside it.
  ConjunctiveQuery q = MustParseQuery("E(x,y), B(y)");
  auto tgds = MustParseDependencySet("A(x) -> E(x,y)").tgds;
  RewriteResult result = RewriteToUcq(q, tgds);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.ucq.size(), 1u);  // only q itself
}

TEST(RewriteTest, ExistentialResolvesWhenPrivate) {
  ConjunctiveQuery q = MustParseQuery("E(x,y)");
  auto tgds = MustParseDependencySet("A(x) -> E(x,y)").tgds;
  RewriteResult result = RewriteToUcq(q, tgds);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.ucq.size(), 2u);  // q and A(x)
}

TEST(RewriteTest, FreeVariableBlocksExistentialUnification) {
  ConjunctiveQuery q = MustParseQuery("q(y) :- E(x,y)");
  auto tgds = MustParseDependencySet("A(x) -> E(x,y)").tgds;
  RewriteResult result = RewriteToUcq(q, tgds);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.ucq.size(), 1u);  // y is an answer variable
}

TEST(RewriteTest, TransitiveRewritingThroughNrSet) {
  ConjunctiveQuery q = MustParseQuery("Cc(x)");
  auto tgds = MustParseDependencySet("A(x) -> B(x). B(x) -> Cc(x).").tgds;
  RewriteResult result = RewriteToUcq(q, tgds);
  EXPECT_TRUE(result.complete);
  // Cc(x), B(x), A(x).
  EXPECT_EQ(result.ucq.size(), 3u);
}

TEST(RewriteTest, MultiAtomHeadPiece) {
  // Σ = A(x) -> S(x,y), T(y): the two-atom piece resolves together.
  ConjunctiveQuery q = MustParseQuery("S(x,y), T(y)");
  auto tgds = MustParseDependencySet("A(x) -> S(x,y), T(y)").tgds;
  RewriteResult result = RewriteToUcq(q, tgds);
  EXPECT_TRUE(result.complete);
  bool has_a = false;
  for (const auto& d : result.ucq.disjuncts()) {
    if (d.size() == 1 && d.body()[0].predicate() == Predicate::Get("A", 1)) {
      has_a = true;
    }
  }
  EXPECT_TRUE(has_a) << result.ucq.ToString();
}

TEST(RewriteTest, DisjunctsAreSoundUnderSigma) {
  // Every disjunct must be Σ-contained in q.
  ConjunctiveQuery q = MustParseQuery("q(x) :- S(x,y), T(y)");
  DependencySet sigma = MustParseDependencySet(
      "A(x) -> S(x,y), T(y). B(y) -> T(y). E(x,y) -> S(x,y).");
  RewriteResult result = RewriteToUcq(q, sigma.tgds);
  EXPECT_TRUE(result.complete);
  for (const auto& d : result.ucq.disjuncts()) {
    EXPECT_EQ(ContainedUnder(d, q, sigma), Tri::kYes) << d.ToString();
  }
}

TEST(RewriteTest, Example3HeightIsExponential) {
  for (int n : {1, 2, 3}) {
    StickyBlowupWorkload w = MakeStickyBlowupWorkload(n);
    ASSERT_TRUE(IsSticky(w.sigma.tgds)) << "Example 3 set must be sticky";
    RewriteResult result = RewriteToUcq(w.q, w.sigma.tgds);
    EXPECT_TRUE(result.complete);
    EXPECT_EQ(result.Height(), static_cast<size_t>(1) << n)
        << "n=" << n << ": the P_n disjunct must have 2^n atoms";
  }
}

TEST(RewriteTest, PaperBoundDominatesObservedHeight) {
  for (int n : {1, 2}) {
    StickyBlowupWorkload w = MakeStickyBlowupWorkload(n);
    RewriteResult result = RewriteToUcq(w.q, w.sigma.tgds);
    EXPECT_LE(result.Height(), PaperRewriteHeightBound(w.q, w.sigma.tgds));
  }
}

TEST(RewriteContainmentTest, AgreesWithChaseOnNrSets) {
  DependencySet sigma = MustParseDependencySet(
      "A(x) -> B(x). B(x) -> E(x,y). E(x,y) -> F(y).");
  ConjunctiveQuery q = MustParseQuery("F(z)");
  // A(x) ⊆Σ F(z)?  chase(A) = {A,B,E(x,n),F(n)} => yes.
  ConjunctiveQuery qa = MustParseQuery("A(x)");
  EXPECT_EQ(ContainedUnder(qa, q, sigma), Tri::kYes);
  EXPECT_EQ(RewriteContained(qa, q, sigma.tgds), Tri::kYes);
  ConjunctiveQuery qg = MustParseQuery("G(x)");
  EXPECT_EQ(ContainedUnder(qg, q, sigma), Tri::kNo);
  EXPECT_EQ(RewriteContained(qg, q, sigma.tgds), Tri::kNo);
}

/// Property sweep: chase-based and rewriting-based containment agree on
/// random queries under non-recursive sets (both are exact there).
class RewriteAgreementSweep : public ::testing::TestWithParam<int> {};

TEST_P(RewriteAgreementSweep, ChaseAndRewritingAgree) {
  Generator gen(static_cast<uint64_t>(GetParam()) + 99);
  DependencySet sigma = MustParseDependencySet(
      "A0(x) -> B0(x). B0(x) -> E0(x,y). A0(x), B0(y) -> F0(x,y). "
      "E0(x,y) -> G0(y).");
  ASSERT_TRUE(IsNonRecursive(sigma.tgds));
  // Random small left-hand queries over the same predicates.
  std::vector<Predicate> preds = {
      Predicate::Get("A0", 1), Predicate::Get("B0", 1),
      Predicate::Get("E0", 2), Predicate::Get("F0", 2),
      Predicate::Get("G0", 1)};
  Instance shape = gen.RandomDatabase(preds, 4, 3, "v");
  // Reinterpret the random database as a Boolean query.
  ConjunctiveQuery lhs = QueryFromInstance(shape, {});
  Substitution to_vars;
  std::vector<Atom> body;
  for (const Atom& a : shape.atoms()) {
    std::vector<Term> args;
    for (Term t : a.args()) {
      auto it = to_vars.find(t);
      if (it == to_vars.end()) {
        it = to_vars.emplace(t, FreshVariable()).first;
      }
      args.push_back(it->second);
    }
    body.emplace_back(a.predicate(), args);
  }
  lhs = ConjunctiveQuery({}, body);
  for (const char* rhs_text :
       {"G0(u)", "E0(u,v)", "F0(u,v), B0(v)", "A0(u), G0(u)"}) {
    ConjunctiveQuery rhs = MustParseQuery(rhs_text);
    Tri by_chase = ContainedUnder(lhs, rhs, sigma);
    Tri by_rewriting = RewriteContained(lhs, rhs, sigma.tgds);
    EXPECT_EQ(by_chase, by_rewriting)
        << "lhs=" << lhs.ToString() << " rhs=" << rhs_text;
    EXPECT_NE(by_chase, Tri::kUnknown);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriteAgreementSweep, ::testing::Range(0, 12));

}  // namespace
}  // namespace semacyc
