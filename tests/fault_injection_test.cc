#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/canonical.h"
#include "core/interrupt.h"
#include "core/parser.h"
#include "gen/generators.h"
#include "semacyc/engine.h"

namespace semacyc {
namespace {

#if !(defined(SEMACYC_FAILPOINTS_ENABLED) && SEMACYC_FAILPOINTS_ENABLED)

TEST(FaultInjectionTest, FailpointsCompiledOut) {
  GTEST_SKIP() << "built with SEMACYC_FAILPOINTS=OFF; failpoint sites are "
                  "compiled away, nothing to inject";
}

#else  // failpoints compiled in

/// Every cancel/bad_alloc injection site reachable from Engine::Decide.
/// Keep in sync with the catalogue in docs/ROBUSTNESS.md.
const char* const kDecideFailpoints[] = {
    "decide.start",          "decide.after_core",
    "decide.after_chase",    "decide.after_oracle",
    "decide.after_compaction", "decide.after_images",
    "decide.after_subsets",  "decide.after_exhaustive",
    "chase.round",           "rewrite.step",
    "oracle.candidate",      "subsets.visit",
    "exhaustive.visit",
};

void ExpectAborted(const SemAcResult& r) {
  EXPECT_EQ(r.answer, SemAcAnswer::kUnknown);
  EXPECT_EQ(r.strategy, Strategy::kDeadlineExceeded);
  EXPECT_FALSE(r.exact);
  EXPECT_FALSE(r.witness.has_value());
}

void ExpectSameDecision(const SemAcResult& a, const SemAcResult& b,
                        const std::string& context) {
  EXPECT_EQ(a.answer, b.answer) << context;
  EXPECT_EQ(a.strategy, b.strategy) << context;
  EXPECT_EQ(a.exact, b.exact) << context;
  EXPECT_EQ(a.witness.has_value(), b.witness.has_value()) << context;
  if (a.witness.has_value() && b.witness.has_value()) {
    EXPECT_TRUE(AreIsomorphic(*a.witness, *b.witness)) << context;
  }
}

struct Workload {
  std::string name;
  DependencySet sigma;
  std::vector<ConjunctiveQuery> queries;
};

/// One workload per generator family / schema class: guarded (chase-based
/// oracles), non-recursive (UCQ-rewriting oracles, so rewrite.step is
/// reachable), and egds (the K2 equality machinery).
std::vector<Workload> Workloads() {
  std::vector<Workload> out;
  Generator gen(23);
  {
    Workload w;
    w.name = "guarded";
    w.sigma = MustParseDependencySet("T(x,y) -> E(y,z), E(z,x)");
    w.queries.push_back(MustParseQuery("T(x,y), E(y,z), E(z,x)"));
    w.queries.push_back(gen.CycleQuery(4));
    w.queries.push_back(gen.RandomAcyclicQuery(4, 2, 2, "E"));
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.name = "nr";
    w.sigma = MustParseDependencySet("B1(x,y), B2(y,z) -> B3(z,x)");
    w.queries.push_back(MustParseQuery("B1(x,y), B2(y,z), B3(z,x)"));
    w.queries.push_back(gen.CycleQuery(3, "B3"));
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.name = "egd";
    w.sigma = MustParseDependencySet("R(a,b), R(a,c) -> b = c");
    w.queries.push_back(MustParseQuery("R(x,y), R(x,z), E(y,z)"));
    w.queries.push_back(MustParseQuery("E(a,b), E(b,c), E(c,a)"));
    out.push_back(std::move(w));
  }
  return out;
}

SemAcOptions SweepOptions() {
  SemAcOptions options;
  options.subset_budget = 8000;
  options.exhaustive_budget = 8000;
  return options;
}

/// Per-cache insert/miss deltas of one decision; the post-abort parity
/// checks compare these against a fresh engine's first decision.
struct CacheDeltas {
  size_t inserts[4];
  size_t misses[4];
};

CacheDeltas Delta(const EngineCacheStats& before,
                  const EngineCacheStats& after) {
  CacheDeltas d;
  const CacheStats* b[4] = {&before.chase, &before.rewrite, &before.oracles,
                            &before.decisions};
  const CacheStats* a[4] = {&after.chase, &after.rewrite, &after.oracles,
                            &after.decisions};
  for (int i = 0; i < 4; ++i) {
    d.inserts[i] = a[i]->inserts - b[i]->inserts;
    d.misses[i] = a[i]->misses - b[i]->misses;
  }
  return d;
}

void ExpectSameDeltas(const CacheDeltas& x, const CacheDeltas& y,
                      const std::string& context) {
  const char* names[4] = {"chase", "rewrite", "oracles", "decisions"};
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(x.inserts[i], y.inserts[i]) << context << " " << names[i]
                                          << " inserts";
    EXPECT_EQ(x.misses[i], y.misses[i]) << context << " " << names[i]
                                        << " misses";
  }
}

/// RAII: no test leaves the process-global registry armed.
struct DisarmOnExit {
  ~DisarmOnExit() { FailpointRegistry::Global().DisarmAll(); }
};

/// The tentpole invariant: abort at ANY failpoint leaves the engine
/// exactly as reusable as one that never saw the query. For every
/// failpoint × workload × query × fire-on-hit K: inject a cancel, then
/// disarm and re-decide on the SAME engine — result and per-cache work
/// must match a fresh engine's first decision of that query.
TEST(FaultInjectionTest, CancelAtEveryFailpointLeavesEngineCoherent) {
  DisarmOnExit cleanup;
  auto& reg = FailpointRegistry::Global();
  for (const Workload& w : Workloads()) {
    for (const ConjunctiveQuery& q : w.queries) {
      for (const char* point : kDecideFailpoints) {
        for (uint64_t fire_on : {uint64_t{1}, uint64_t{25}}) {
          std::string context = w.name + " / " + q.ToString() + " / " +
                                point + "@" + std::to_string(fire_on);
          Engine engine(w.sigma, SweepOptions());
          PreparedQuery pq = engine.Prepare(q);

          reg.Arm(point, FailpointAction::kCancel, fire_on);
          CancelToken token;
          SemAcResult injected = engine.Decide(pq, &token);
          bool fired = reg.Fired(point);
          reg.DisarmAll();

          // A failpoint this decision never reached (or reached fewer
          // than K times) leaves the decision untouched; one that fired
          // must abort it gracefully.
          if (fired) {
            ExpectAborted(injected);
          } else {
            EXPECT_NE(injected.strategy, Strategy::kDeadlineExceeded)
                << context;
          }

          // Post-abort parity on the same engine vs a fresh engine.
          EngineCacheStats before = engine.Stats();
          SemAcResult warm = engine.Decide(pq);
          CacheDeltas warm_delta = Delta(before, engine.Stats());

          Engine fresh(w.sigma, SweepOptions());
          PreparedQuery fresh_pq = fresh.Prepare(q);
          EngineCacheStats fresh_before = fresh.Stats();
          SemAcResult cold = fresh.Decide(fresh_pq);
          CacheDeltas cold_delta = Delta(fresh_before, fresh.Stats());

          ExpectSameDecision(cold, warm, context);
          if (fired) {
            // The aborted attempt was fully rolled back, so the re-decide
            // repeats the fresh engine's cache work exactly. (Without a
            // firing the first decide populated the caches and the warm
            // deltas are legitimately all-hit.)
            ExpectSameDeltas(warm_delta, cold_delta, context);
          }
        }
      }
    }
  }
}

/// Simulated allocation failure: a std::bad_alloc thrown mid-pipeline
/// must never escape Decide, must surface as the same graceful abort, and
/// must leave the engine reusable. No CancelToken needed — the throw
/// itself is the interruption.
TEST(FaultInjectionTest, BadAllocAnywhereIsContainedAndRecoverable) {
  DisarmOnExit cleanup;
  auto& reg = FailpointRegistry::Global();
  for (const Workload& w : Workloads()) {
    const ConjunctiveQuery& q = w.queries.front();
    for (const char* point : kDecideFailpoints) {
      std::string context = w.name + " / bad_alloc @ " + point;
      Engine engine(w.sigma, SweepOptions());
      PreparedQuery pq = engine.Prepare(q);

      reg.Arm(point, FailpointAction::kBadAlloc);
      SemAcResult injected;
      EXPECT_NO_THROW(injected = engine.Decide(pq)) << context;
      bool fired = reg.Fired(point);
      reg.DisarmAll();
      if (fired) ExpectAborted(injected);

      SemAcResult warm = engine.Decide(pq);
      Engine fresh(w.sigma, SweepOptions());
      SemAcResult cold = fresh.Decide(fresh.Prepare(q));
      ExpectSameDecision(cold, warm, context);
    }
  }
}

/// The work-stealing path (decide_threads > 1): `parallel.steal` fires at
/// a worker's unit claim and `parallel.replay` at a session replay to a
/// stolen prefix — both inside worker threads. Cancel and bad_alloc there
/// must abort the WHOLE decision gracefully (the injection lands on the
/// decision's parent token / propagates out of the pool join), and the
/// same engine must afterwards decide like a fresh one. Cache deltas are
/// deliberately NOT compared: parallel workers insert speculative oracle
/// memo entries whose count is scheduling-dependent (answers are not).
TEST(FaultInjectionTest, ParallelStealFailpointsAbortAndRecover) {
  DisarmOnExit cleanup;
  auto& reg = FailpointRegistry::Global();
  for (const Workload& w : Workloads()) {
    for (const ConjunctiveQuery& q : w.queries) {
      for (const char* point : {"parallel.steal", "parallel.replay"}) {
        for (FailpointAction action :
             {FailpointAction::kCancel, FailpointAction::kBadAlloc}) {
          for (uint64_t fire_on : {uint64_t{1}, uint64_t{25}}) {
            std::string context =
                w.name + " / " + q.ToString() + " / " + point +
                (action == FailpointAction::kCancel ? "=cancel@"
                                                    : "=bad_alloc@") +
                std::to_string(fire_on);
            SemAcOptions options = SweepOptions();
            options.decide_threads = 4;
            Engine engine(w.sigma, options);
            PreparedQuery pq = engine.Prepare(q);

            reg.Arm(point, action, fire_on);
            CancelToken token;
            SemAcResult injected;
            EXPECT_NO_THROW(injected = engine.Decide(pq, &token)) << context;
            bool fired = reg.Fired(point);
            reg.DisarmAll();
            if (fired) {
              ExpectAborted(injected);
            } else {
              EXPECT_NE(injected.strategy, Strategy::kDeadlineExceeded)
                  << context;
            }

            SemAcResult warm = engine.Decide(pq);
            Engine fresh(w.sigma, options);
            SemAcResult cold = fresh.Decide(fresh.Prepare(q));
            ExpectSameDecision(cold, warm, context);
          }
        }
      }
    }
  }
}

/// The flip failpoint drives the exhaustive strategy through its
/// non-default hom-machinery configuration; WitnessTuning switches are
/// answer-preserving, so the decision must not change.
TEST(FaultInjectionTest, FlipIncrementalHomPreservesAnswers) {
  DisarmOnExit cleanup;
  auto& reg = FailpointRegistry::Global();
  Generator gen(23);
  DependencySet sigma = MustParseDependencySet("T(x,y) -> E(y,z), E(z,x)");
  // A cyclic query that walks the full pipeline into the exhaustive
  // strategy (budgets high enough for the flip site to be reached).
  ConjunctiveQuery q = gen.CycleQuery(4);

  Engine plain(sigma, SweepOptions());
  SemAcResult reference = plain.Decide(plain.Prepare(q));

  reg.Arm("exhaustive.flip_inc_hom", FailpointAction::kFlipBranch);
  Engine flipped(sigma, SweepOptions());
  SemAcResult flipped_result = flipped.Decide(flipped.Prepare(q));
  EXPECT_TRUE(reg.Fired("exhaustive.flip_inc_hom"));
  reg.DisarmAll();

  ExpectSameDecision(reference, flipped_result, "flip_inc_hom");
}

/// Environment-spec arming is how CI and operators reach the registry;
/// make sure a spec armed through the same parser the env path uses
/// actually aborts a decision.
TEST(FaultInjectionTest, SpecArmedFailpointFires) {
  DisarmOnExit cleanup;
  auto& reg = FailpointRegistry::Global();
  ASSERT_TRUE(reg.ArmFromSpec("decide.after_chase=cancel@1"));
  Generator gen(23);
  Engine engine(MustParseDependencySet("T(x,y) -> E(y,z), E(z,x)"),
                SweepOptions());
  CancelToken token;
  SemAcResult r = engine.Decide(engine.Prepare(gen.CycleQuery(4)), &token);
  ExpectAborted(r);
}

#endif  // SEMACYC_FAILPOINTS_ENABLED

}  // namespace
}  // namespace semacyc
