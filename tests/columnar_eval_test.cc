#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/homomorphism.h"
#include "core/hypergraph.h"
#include "core/join_tree.h"
#include "core/parser.h"
#include "data/columnar.h"
#include "data/semijoin_program.h"
#include "eval/yannakakis.h"
#include "gen/generators.h"
#include "semacyc/engine.h"

namespace semacyc {
namespace {

Term C(const std::string& s) { return Term::Constant(s); }

Instance Db(const std::string& atoms) {
  Instance inst;
  inst.InsertAll(MustParseAtoms(atoms));
  return inst;
}

std::set<std::vector<Term>> AsSet(std::vector<std::vector<Term>> v) {
  return std::set<std::vector<Term>>(v.begin(), v.end());
}

/// The core differential check: the compiled columnar program and the
/// row-path evaluator agree on the full answer set, and the Boolean fast
/// paths agree too.
void ExpectColumnarMatchesRow(const ConjunctiveQuery& q, const Instance& db) {
  std::optional<JoinTreeView> tree =
      BuildJoinTreeView(q.body(), ConnectingTerms::kVariables);
  ASSERT_TRUE(tree.has_value()) << "query unexpectedly cyclic";
  data::ColumnarInstance col = data::ColumnarInstance::FromInstance(db);
  data::SemiJoinProgram prog = data::SemiJoinProgram::Compile(q, *tree);
  data::ColumnarEvalResult res = prog.Execute(col);
  ASSERT_FALSE(res.aborted);
  YannakakisResult row = EvaluateAcyclic(q, *tree, db);
  ASSERT_TRUE(row.ok);
  EXPECT_EQ(AsSet(res.answers), AsSet(row.answers));

  ConjunctiveQuery boolean_q({}, q.body());
  data::SemiJoinProgram bool_prog =
      data::SemiJoinProgram::Compile(boolean_q, *tree);
  EXPECT_EQ(bool_prog.ExecuteBoolean(col),
            EvaluateAcyclicBoolean(boolean_q, *tree, db));
}

TEST(ColumnarInstanceTest, FromInstanceRoundTrips) {
  Instance db = Db("E('a','b'), E('b','c'), P('a'), F('a','b','c')");
  data::ColumnarInstance col = data::ColumnarInstance::FromInstance(db);
  EXPECT_EQ(col.TotalRows(), db.size());
  EXPECT_EQ(col.relations().size(), 3u);
  Instance back = col.ToInstance();
  EXPECT_EQ(back.size(), db.size());
  for (const Atom& a : db.atoms()) EXPECT_TRUE(back.Contains(a));
  EXPECT_GT(col.ApproxBytes(), 0u);
}

TEST(ColumnarInstanceTest, DictionaryAndEqualRange) {
  Instance db = Db("E('a','b'), E('a','c'), E('b','c')");
  data::ColumnarInstance col = data::ColumnarInstance::FromInstance(db);
  uint32_t a = col.ValueIdOf(C("a"));
  ASSERT_NE(a, data::kNoValue);
  EXPECT_EQ(col.TermOf(a), C("a"));
  EXPECT_EQ(col.ValueIdOf(C("zzz")), data::kNoValue);
  const data::ColumnarInstance::Relation* rel =
      col.RelationOf(Predicate::Get("E", 2));
  ASSERT_NE(rel, nullptr);
  auto [lo, hi] = col.EqualRange(*rel, 0, a);
  EXPECT_EQ(hi - lo, 2);  // two E-rows with 'a' in position 0
  for (const uint32_t* r = lo; r != hi; ++r) {
    EXPECT_EQ(rel->columns[0][*r], a);
  }
}

TEST(ColumnarInstanceTest, FromTextParsesGroundFacts) {
  std::string error;
  std::optional<data::ColumnarInstance> col = data::ColumnarInstance::FromText(
      "% a comment line\n"
      "E('a','b'), E('b','c')\n"
      "\n"
      "P(42)\n",
      &error);
  ASSERT_TRUE(col.has_value()) << error;
  EXPECT_EQ(col->TotalRows(), 3u);
  Instance back = col->ToInstance();
  EXPECT_TRUE(back.Contains(MustParseAtoms("E('a','b')")[0]));
  EXPECT_TRUE(back.Contains(MustParseAtoms("P(42)")[0]));
}

TEST(ColumnarInstanceTest, FromTextRejectsVariablesWithLineNumber) {
  std::string error;
  std::optional<data::ColumnarInstance> col = data::ColumnarInstance::FromText(
      "E('a','b')\nE(x,'c')\n", &error);
  EXPECT_FALSE(col.has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("ground"), std::string::npos) << error;
}

TEST(ColumnarInstanceTest, FromTextReportsParseErrors) {
  std::string error;
  std::optional<data::ColumnarInstance> col =
      data::ColumnarInstance::FromText("E('a','b')\nE('a',\n", &error);
  EXPECT_FALSE(col.has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(SemiJoinProgramTest, SimplePath) {
  ExpectColumnarMatchesRow(MustParseQuery("q(x,z) :- E(x,y), E(y,z)"),
                           Db("E('a','b'), E('b','c'), E('c','d')"));
}

TEST(SemiJoinProgramTest, ConstantsInAtoms) {
  ExpectColumnarMatchesRow(MustParseQuery("q(x) :- E(x,'b')"),
                           Db("E('a','b'), E('c','b'), E('c','d')"));
}

TEST(SemiJoinProgramTest, ConstantAbsentFromInstance) {
  // The constant never occurs in the database: the dictionary lookup
  // fails and the whole program short-circuits to empty.
  ExpectColumnarMatchesRow(MustParseQuery("q(x) :- E(x,'nope')"),
                           Db("E('a','b')"));
}

TEST(SemiJoinProgramTest, RepeatedVariableInAtom) {
  ExpectColumnarMatchesRow(
      MustParseQuery("q(x,y) :- E(x,x), F(x,y)"),
      Db("E('a','a'), E('a','b'), E('c','c'), F('a','u'), F('c','v')"));
}

TEST(SemiJoinProgramTest, HeadConstants) {
  ConjunctiveQuery parsed = MustParseQuery("q(x) :- E(x,y), E(y,z)");
  // Head mixes a constant slot with a variable slot.
  std::vector<Term> head = {C("tag"), parsed.head()[0]};
  ExpectColumnarMatchesRow(ConjunctiveQuery(head, parsed.body()),
                           Db("E('a','b'), E('b','c')"));
}

TEST(SemiJoinProgramTest, EmptyRelationShortCircuits) {
  // Z has no facts at all: the match op finds no relation and exits
  // before any semi-join work.
  ExpectColumnarMatchesRow(MustParseQuery("q(x) :- E(x,y), Z(y)"),
                           Db("E('a','b')"));
}

TEST(SemiJoinProgramTest, DisconnectedQueryCrossProduct) {
  ExpectColumnarMatchesRow(MustParseQuery("q(u,v) :- A(u), B(v)"),
                           Db("A('x'), B('y'), B('z')"));
  // And the empty side clears the product.
  ExpectColumnarMatchesRow(MustParseQuery("q(u,v) :- A(u), B(v)"),
                           Db("A('x'), C('y')"));
}

TEST(SemiJoinProgramTest, StarQueryPrunesDanglingTuples) {
  ExpectColumnarMatchesRow(
      MustParseQuery("q(u) :- R(u,v), S(v,s), R(u,w), T(w,t)"),
      Db("R('a','b'), R('a','c'), S('b','x1'), T('c','y1'), "
         "R('q','w'), S('w','x2')"));
}

TEST(SemiJoinProgramTest, WideAtomHashedKeys) {
  // A 4-column connector forces the hashed (collision-verified) key path.
  ExpectColumnarMatchesRow(
      MustParseQuery("q(a) :- G(a,b,c,d,e), H(b,c,d,e)"),
      Db("G('1','2','3','4','5'), G('1','2','3','4','6'), "
         "G('7','8','9','a','b'), H('2','3','4','5'), H('2','3','4','6'), "
         "H('8','9','a','b')"));
}

TEST(SemiJoinProgramTest, AbortsOnFiredToken) {
  ConjunctiveQuery q = MustParseQuery("q(x,z) :- E(x,y), E(y,z)");
  Instance db = Db("E('a','b'), E('b','c')");
  std::optional<JoinTreeView> tree =
      BuildJoinTreeView(q.body(), ConnectingTerms::kVariables);
  ASSERT_TRUE(tree.has_value());
  data::ColumnarInstance col = data::ColumnarInstance::FromInstance(db);
  data::SemiJoinProgram prog = data::SemiJoinProgram::Compile(q, *tree);
  CancelToken token;
  token.RequestCancel();
  data::ExecOptions opts;
  opts.cancel = &token;
  data::ColumnarEvalResult res = prog.Execute(col, opts);
  EXPECT_TRUE(res.aborted);
  EXPECT_TRUE(res.answers.empty());
  EXPECT_EQ(prog.ExecuteBoolean(col, opts), -1);
  // The program is immutable: a clean re-run succeeds.
  data::ColumnarEvalResult again = prog.Execute(col);
  EXPECT_FALSE(again.aborted);
  EXPECT_EQ(again.answers.size(), 1u);
}

/// Differential sweep over random acyclic queries and databases — the
/// columnar program must agree with both the row path and the exact
/// backtracking evaluator.
class ColumnarSweep : public ::testing::TestWithParam<int> {};

TEST_P(ColumnarSweep, AgreesWithRowPathAndBruteForce) {
  Generator gen(static_cast<uint64_t>(GetParam()) + 97);
  ConjunctiveQuery shape = gen.RandomAcyclicQuery(5, 2, 2, "Y");
  std::vector<Term> vars = shape.Variables();
  std::vector<Term> head;
  for (size_t i = 0; i < vars.size() && head.size() < 2; i += 3) {
    head.push_back(vars[i]);
  }
  ConjunctiveQuery q(head, shape.body());
  std::vector<Predicate> preds = {Predicate::Get("Y0", 2),
                                  Predicate::Get("Y1", 2)};
  Instance db = gen.RandomDatabase(preds, 40, 5);
  ExpectColumnarMatchesRow(q, db);

  std::optional<JoinTreeView> tree =
      BuildJoinTreeView(q.body(), ConnectingTerms::kVariables);
  ASSERT_TRUE(tree.has_value());
  data::ColumnarInstance col = data::ColumnarInstance::FromInstance(db);
  data::SemiJoinProgram prog = data::SemiJoinProgram::Compile(q, *tree);
  EXPECT_EQ(AsSet(prog.Execute(col).answers), AsSet(EvaluateQuery(q, db)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColumnarSweep, ::testing::Range(0, 20));

TEST(ColumnarWorkloadTest, StarFamilyMatchesRowPath) {
  EvalWorkload w = MakeStarEvalWorkload(3, 3, 2000, 50, 100);
  ExpectColumnarMatchesRow(w.q, w.database);
}

TEST(ColumnarWorkloadTest, PathFamilyMatchesRowPath) {
  EvalWorkload w = MakePathEvalWorkload(4, 3, 2000, 60);
  ExpectColumnarMatchesRow(w.q, w.database);
}

TEST(ColumnarWorkloadTest, SkewFamilyMatchesRowPath) {
  EvalWorkload w = MakeSkewEvalWorkload(5, 2000, 100, 3.0);
  ExpectColumnarMatchesRow(w.q, w.database);
}

TEST(RerootForHeadTest, RootCoversHeadAndAnswersUnchanged) {
  // Chain E1-E2-E3 with the head variable at the far end: GYO may root
  // the tree at E3, which would make the answer DP carry x0 through every
  // join (Θ(|D|·|answers|) intermediates). RerootForHead must move the
  // root to E1 and leave the answer set untouched on both paths.
  ConjunctiveQuery q = MustParseQuery(
      "q(x0) :- E1(x0,x1), E2(x1,x2), E3(x2,x3)");
  std::optional<JoinTreeView> tree =
      BuildJoinTreeView(q.body(), ConnectingTerms::kVariables);
  ASSERT_TRUE(tree.has_value());
  JoinTreeView rooted = RerootForHead(*tree, q.head());
  EXPECT_TRUE(rooted.atom(rooted.root()).Mentions(Term::Variable("x0")));
  EXPECT_TRUE(rooted.Validate({Term::Variable("x0"), Term::Variable("x1"),
                               Term::Variable("x2"), Term::Variable("x3")}));

  Instance db = Db(
      "E1('a','m'), E1('b','m'), E1('c','n'), "
      "E2('m','u'), E2('n','u'), E2('n','w'), "
      "E3('u','z'), E3('w','z')");
  data::ColumnarInstance col = data::ColumnarInstance::FromInstance(db);
  auto on_tree = [&](const JoinTreeView& t) {
    data::SemiJoinProgram prog = data::SemiJoinProgram::Compile(q, t);
    data::ColumnarEvalResult res = prog.Execute(col);
    EXPECT_FALSE(res.aborted);
    YannakakisResult row = EvaluateAcyclic(q, t, db);
    EXPECT_TRUE(row.ok);
    EXPECT_EQ(AsSet(res.answers), AsSet(row.answers));
    return AsSet(res.answers);
  };
  EXPECT_EQ(on_tree(*tree), on_tree(rooted));
  EXPECT_EQ(on_tree(rooted), AsSet(EvaluateQuery(q, db)));

  // Boolean heads (no variables) keep the tree as-is.
  ConjunctiveQuery boolean_q({}, q.body());
  JoinTreeView same = RerootForHead(*tree, boolean_q.head());
  EXPECT_EQ(same.root(), tree->root());
}

TEST(EngineEvalTest, ColumnarIsDefaultAndMatchesRowPath) {
  MusicStoreWorkload w = MakeMusicStoreWorkload(11, 6, 8, 3, 0.4);
  Engine engine(w.sigma);
  PreparedQuery pq = engine.Prepare(w.q);

  EvalOutcome columnar = engine.Eval(pq, w.database);
  ASSERT_TRUE(columnar.status.ok()) << columnar.status.message;
  ASSERT_TRUE(columnar.reformulated);
  EXPECT_TRUE(columnar.columnar);
  ASSERT_TRUE(columnar.evaluation.ok);

  EvalOptions row_opts;
  row_opts.path = EvalOptions::Path::kRow;
  EvalOutcome row = engine.Eval(pq, w.database, row_opts);
  ASSERT_TRUE(row.status.ok());
  EXPECT_FALSE(row.columnar);
  EXPECT_EQ(AsSet(columnar.evaluation.answers), AsSet(row.evaluation.answers));
  EXPECT_EQ(AsSet(columnar.evaluation.answers),
            AsSet(EvaluateQuery(w.q, w.database)));
  // The EVAL phase shows up in the engine's metrics.
  obs::MetricsSnapshot snap = engine.Metrics();
  bool saw_eval = false;
  for (const auto& phase : snap.phases) {
    if (phase.name == "EVAL" && phase.latency.count > 0) saw_eval = true;
  }
  EXPECT_TRUE(saw_eval);
}

TEST(EngineEvalTest, PreEncodedColumnarDatabase) {
  MusicStoreWorkload w = MakeMusicStoreWorkload(12, 5, 6, 3, 0.5);
  Engine engine(w.sigma);
  PreparedQuery pq = engine.Prepare(w.q);
  data::ColumnarInstance col =
      data::ColumnarInstance::FromInstance(w.database);
  EvalOutcome out = engine.Eval(pq, col);
  ASSERT_TRUE(out.status.ok()) << out.status.message;
  EXPECT_TRUE(out.columnar);
  EXPECT_EQ(AsSet(out.evaluation.answers),
            AsSet(EvaluateQuery(w.q, w.database)));
}

TEST(EngineEvalTest, CancelledEvalLeavesEngineReusable) {
  MusicStoreWorkload w = MakeMusicStoreWorkload(13, 6, 8, 3, 0.4);
  Engine engine(w.sigma);
  PreparedQuery pq = engine.Prepare(w.q);
  // Warm the decision cache so the abort lands in the evaluation itself.
  ASSERT_TRUE(engine.Eval(pq, w.database).status.ok());

  CancelToken token;
  token.RequestCancel();
  EvalOptions opts;
  opts.cancel = &token;
  EvalOutcome aborted = engine.Eval(pq, w.database, opts);
  EXPECT_EQ(aborted.status.code, Status::Code::kDeadlineExceeded);
  EXPECT_TRUE(aborted.evaluation.answers.empty());

  // The engine is immediately reusable for the exact answer.
  EvalOutcome retry = engine.Eval(pq, w.database);
  ASSERT_TRUE(retry.status.ok());
  EXPECT_EQ(AsSet(retry.evaluation.answers),
            AsSet(EvaluateQuery(w.q, w.database)));
}

TEST(EngineEvalTest, NonSemAcQueryReportsNotFound) {
  Generator gen(8);
  Engine engine(DependencySet{});
  PreparedQuery pq = engine.Prepare(gen.CycleQuery(3));
  EvalOutcome out = engine.Eval(pq, Db("E('a','b')"));
  EXPECT_EQ(out.status.code, Status::Code::kNotFound);
  EXPECT_FALSE(out.reformulated);
}

}  // namespace
}  // namespace semacyc
