#include "core/fingerprint_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/canonical.h"
#include "core/parser.h"

namespace semacyc {
namespace {

/// A value with a controllable byte report, so budgets can be exercised
/// without depending on the ApproxBytes estimates of real payloads.
struct Payload {
  int id = 0;
  size_t bytes = 0;
  size_t ApproxBytes() const { return bytes; }
};

ConjunctiveQuery Q(const std::string& text) { return MustParseQuery(text); }

/// Distinct (non-isomorphic) queries: chain of n atoms over predicate Pn.
ConjunctiveQuery ChainQuery(int n) {
  std::string body;
  for (int i = 0; i < n; ++i) {
    if (i > 0) body += ", ";
    body += "P" + std::to_string(n) + "(x" + std::to_string(i) + ",x" +
            std::to_string(i + 1) + ")";
  }
  return Q(body);
}

TEST(FingerprintCacheTest, HitMissInsertAccounting) {
  FingerprintCache<Payload, ExactMatch<Payload>> cache;
  int computes = 0;
  auto compute = [&](int id) {
    return [&computes, id]() {
      ++computes;
      return std::make_shared<const Payload>(Payload{id, 64});
    };
  };
  ConjunctiveQuery a = ChainQuery(1);
  ConjunctiveQuery b = ChainQuery(2);

  EXPECT_EQ(cache.GetOrCompute(a, compute(1))->id, 1);
  EXPECT_EQ(cache.GetOrCompute(a, compute(99))->id, 1);  // hit, not recomputed
  EXPECT_EQ(cache.GetOrCompute(b, compute(2))->id, 2);
  EXPECT_EQ(computes, 2);

  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.inserts, 2u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_GT(stats.bytes, 2u * 64u);  // payload plus key/bookkeeping charge
}

TEST(FingerprintCacheTest, DisabledCacheComputesEveryTime) {
  CacheConfig config;
  config.enabled = false;
  FingerprintCache<Payload, ExactMatch<Payload>> cache(config);
  ConjunctiveQuery a = ChainQuery(1);
  int computes = 0;
  for (int i = 0; i < 3; ++i) {
    cache.GetOrCompute(a, [&]() {
      ++computes;
      return std::make_shared<const Payload>(Payload{i, 8});
    });
  }
  EXPECT_EQ(computes, 3);
  EXPECT_EQ(cache.Stats().entries, 0u);
  EXPECT_EQ(cache.Stats().misses, 3u);
}

TEST(FingerprintCacheTest, LruEvictionUnderEntryBudget) {
  CacheConfig config;
  config.max_entries = 2;
  config.shards = 1;  // exact small-entry budget needs one shard
  FingerprintCache<Payload, ExactMatch<Payload>> cache(config);
  auto value = [](int id) {
    return [id]() { return std::make_shared<const Payload>(Payload{id, 16}); };
  };
  ConjunctiveQuery a = ChainQuery(1), b = ChainQuery(2), c = ChainQuery(3);

  cache.GetOrCompute(a, value(1));
  cache.GetOrCompute(b, value(2));
  cache.GetOrCompute(a, value(1));  // touch a: b becomes LRU
  cache.GetOrCompute(c, value(3));  // evicts b

  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_NE(cache.Find(CanonicalFingerprint(a), a), nullptr);
  EXPECT_EQ(cache.Find(CanonicalFingerprint(b), b), nullptr);  // evicted
  EXPECT_NE(cache.Find(CanonicalFingerprint(c), c), nullptr);
}

TEST(FingerprintCacheTest, ByteBudgetEvictsAndNeverBreaksCallers) {
  CacheConfig config;
  config.max_bytes = 1;  // below any single entry: every insert self-evicts
  config.shards = 1;
  FingerprintCache<Payload, ExactMatch<Payload>> cache(config);
  ConjunctiveQuery a = ChainQuery(1);
  std::shared_ptr<const Payload> first = cache.GetOrCompute(a, []() {
    return std::make_shared<const Payload>(Payload{7, 4096});
  });
  // The value survives in the caller's hands even though the cache
  // declined to keep it.
  EXPECT_EQ(first->id, 7);
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.evictions, 1u);
  // And the next probe recomputes (a miss, not a crash).
  std::shared_ptr<const Payload> second = cache.GetOrCompute(a, []() {
    return std::make_shared<const Payload>(Payload{8, 4096});
  });
  EXPECT_EQ(second->id, 8);
}

TEST(FingerprintCacheTest, TrimDropsEntriesAndCountsEvictions) {
  FingerprintCache<Payload, ExactMatch<Payload>> cache;
  for (int i = 1; i <= 4; ++i) {
    cache.GetOrCompute(ChainQuery(i), [i]() {
      return std::make_shared<const Payload>(Payload{i, 32});
    });
  }
  EXPECT_EQ(cache.Stats().entries, 4u);
  cache.Trim(0);
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.evictions, 4u);
  EXPECT_EQ(stats.misses, 4u);  // counters survive the trim
}

TEST(FingerprintCacheTest, IsoMatchServesRenamedVariants) {
  FingerprintCache<Payload, IsoMatch<Payload>> cache;
  ConjunctiveQuery q = Q("R(x,y), S(y,z)");
  ConjunctiveQuery renamed = Q("R(u,v), S(v,w)");
  cache.GetOrCompute(q, []() {
    return std::make_shared<const Payload>(Payload{1, 16});
  });
  std::shared_ptr<const Payload> hit = cache.GetOrCompute(renamed, []() {
    ADD_FAILURE() << "isomorphic probe should not recompute";
    return std::make_shared<const Payload>(Payload{2, 16});
  });
  EXPECT_EQ(hit->id, 1);
  EXPECT_EQ(cache.Stats().hits, 1u);
  EXPECT_EQ(cache.Stats().entries, 1u);  // served verbatim, no new entry
}

TEST(FingerprintCacheTest, ConcurrentGetOrComputeKeepsFirstInsert) {
  FingerprintCache<Payload, ExactMatch<Payload>> cache;
  ConjunctiveQuery a = ChainQuery(4);
  constexpr size_t kThreads = 8;
  std::atomic<int> computes{0};
  std::vector<std::shared_ptr<const Payload>> seen(kThreads);
  std::vector<std::thread> pool;
  for (size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t]() {
      seen[t] = cache.GetOrCompute(a, [&]() {
        return std::make_shared<const Payload>(
            Payload{computes.fetch_add(1) + 1, 16});
      });
    });
  }
  for (auto& t : pool) t.join();
  // Whatever raced, every thread observed one shared value object.
  for (size_t t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(cache.Stats().entries, 1u);
}

/// Eviction under contention: 8 threads over a 2-entry cache; the cache
/// must stay within budget, never serve a wrong value, and end coherent.
TEST(FingerprintCacheTest, ConcurrentEvictionStaysCoherent) {
  CacheConfig config;
  config.max_entries = 2;
  config.shards = 1;
  FingerprintCache<Payload, ExactMatch<Payload>> cache(config);
  std::vector<ConjunctiveQuery> keys;
  for (int i = 1; i <= 6; ++i) keys.push_back(ChainQuery(i));
  constexpr size_t kThreads = 8;
  std::vector<std::thread> pool;
  std::atomic<bool> mismatch{false};
  for (size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t]() {
      for (size_t k = 0; k < 60; ++k) {
        size_t i = (k + t) % keys.size();
        auto v = cache.GetOrCompute(keys[i], [i]() {
          return std::make_shared<const Payload>(
              Payload{static_cast<int>(i), 16});
        });
        if (v->id != static_cast<int>(i)) mismatch.store(true);
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_FALSE(mismatch.load());
  CacheStats stats = cache.Stats();
  EXPECT_LE(stats.entries, 2u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.misses, stats.inserts);
  EXPECT_EQ(stats.hits + stats.misses, kThreads * 60u);
}

/// A value whose reported footprint can change after insertion — the
/// oracle-memo shape Reweigh exists for.
struct Growing {
  std::shared_ptr<size_t> size;
  size_t ApproxBytes() const { return *size; }
};

TEST(FingerprintCacheTest, ReweighRechargesGrownValues) {
  CacheConfig config;
  config.shards = 1;
  FingerprintCache<Growing, ExactMatch<Growing>> cache(config);
  ConjunctiveQuery a = ChainQuery(1);
  auto size = std::make_shared<size_t>(64);
  cache.GetOrCompute(a, [&]() {
    return std::make_shared<const Growing>(Growing{size});
  });
  CacheStats inserted = cache.Stats();
  EXPECT_EQ(inserted.recharged_bytes, 0u);

  // Post-insert growth is invisible until the owner re-weighs.
  *size = 1064;
  EXPECT_EQ(cache.Stats().bytes, inserted.bytes);
  cache.Reweigh(CanonicalFingerprint(a), a);
  CacheStats grown = cache.Stats();
  EXPECT_EQ(grown.bytes, inserted.bytes + 1000);
  EXPECT_EQ(grown.recharged_bytes, 1000u);
  EXPECT_EQ(grown.inserts, inserted.inserts);  // a re-charge is not an insert

  // A shrink adjusts the byte figure but not the growth counter.
  *size = 564;
  cache.Reweigh(CanonicalFingerprint(a), a);
  CacheStats shrunk = cache.Stats();
  EXPECT_EQ(shrunk.bytes, grown.bytes - 500);
  EXPECT_EQ(shrunk.recharged_bytes, 1000u);

  // Unknown keys are a no-op (the entry may have been evicted).
  ConjunctiveQuery b = ChainQuery(2);
  cache.Reweigh(CanonicalFingerprint(b), b);
  EXPECT_EQ(cache.Stats().bytes, shrunk.bytes);
  EXPECT_EQ(cache.Stats().recharged_bytes, 1000u);
}

TEST(FingerprintCacheTest, ReweighEnforcesBudgetsLikeAnInsert) {
  CacheConfig config;
  config.max_bytes = 4096;
  config.shards = 1;
  FingerprintCache<Growing, ExactMatch<Growing>> cache(config);
  ConjunctiveQuery a = ChainQuery(1);
  ConjunctiveQuery b = ChainQuery(2);
  auto size_a = std::make_shared<size_t>(64);
  auto size_b = std::make_shared<size_t>(64);
  cache.GetOrCompute(a, [&]() {
    return std::make_shared<const Growing>(Growing{size_a});
  });
  size_t entry_a = cache.Stats().bytes;  // payload + key/entry overhead
  cache.GetOrCompute(b, [&]() {
    return std::make_shared<const Growing>(Growing{size_b});
  });
  size_t entry_b = cache.Stats().bytes - entry_a;
  EXPECT_EQ(cache.Stats().entries, 2u);

  // a grows close to the budget: re-weighing it touches it MRU and
  // evicts the LRU tail (b) to fit, exactly as an insert of that size.
  // Target: a alone fits with half of b's footprint to spare, a + b
  // does not — sizes derived from observed entry overheads so the test
  // holds on any platform.
  *size_a = 64 + (config.max_bytes - entry_b / 2) - entry_a;
  cache.Reweigh(CanonicalFingerprint(a), a);
  EXPECT_EQ(cache.Stats().entries, 1u);
  EXPECT_NE(cache.Find(CanonicalFingerprint(a), a), nullptr);
  EXPECT_EQ(cache.Find(CanonicalFingerprint(b), b), nullptr);

  // a grows past the whole budget: evicting everything else cannot make
  // it fit, so the entry itself is dropped (declined-oversize rule).
  *size_a = 100000;
  cache.Reweigh(CanonicalFingerprint(a), a);
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
}

}  // namespace
}  // namespace semacyc
