#include <gtest/gtest.h>

#include "chase/query_chase.h"
#include "core/hypergraph.h"
#include "core/parser.h"
#include "deps/classify.h"
#include "deps/nonrecursive.h"
#include "deps/sticky.h"
#include "gen/generators.h"
#include "semacyc/decider.h"

namespace semacyc {
namespace {

/// Independently verifies a YES answer: the witness must be acyclic and
/// equivalent to q under Σ (checked through the chase).
void VerifyYes(const ConjunctiveQuery& q, const DependencySet& sigma,
               const SemAcResult& result) {
  ASSERT_EQ(result.answer, SemAcAnswer::kYes);
  ASSERT_TRUE(result.witness.has_value()) << "YES without witness";
  EXPECT_TRUE(IsAcyclic(*result.witness))
      << "witness is cyclic: " << result.witness->ToString();
  EXPECT_EQ(EquivalentUnder(q, *result.witness, sigma), Tri::kYes)
      << "witness not equivalent: " << result.witness->ToString();
}

TEST(SemAcTest, AcyclicQueryIsTriviallyYes) {
  ConjunctiveQuery q = MustParseQuery("E(x,y), F(y,z)");
  DependencySet sigma;
  SemAcResult result = DecideSemanticAcyclicity(q, sigma);
  VerifyYes(q, sigma, result);
  EXPECT_EQ(result.strategy, Strategy::kAlreadyAcyclic);
}

TEST(SemAcTest, NonCoreCyclicQueryFoldsAway) {
  // The diamond (two parallel 2-paths) is hypergraph-cyclic but folds onto
  // an acyclic 2-path: semantically acyclic with empty Σ.
  ConjunctiveQuery diamond = MustParseQuery("E(a,b), E(b,c), E(a,d), E(d,c)");
  DependencySet sigma;
  SemAcResult result = DecideSemanticAcyclicity(diamond, sigma);
  VerifyYes(diamond, sigma, result);
  EXPECT_EQ(result.strategy, Strategy::kCore);
}

TEST(SemAcTest, DirectedFourCycleIsNo) {
  // The directed 4-cycle is a cyclic core: NO under empty Σ.
  ConjunctiveQuery c4 = MustParseQuery("E(a,b), E(b,c), E(c,d), E(d,a)");
  DependencySet sigma;
  SemAcResult result = DecideSemanticAcyclicity(c4, sigma);
  EXPECT_EQ(result.answer, SemAcAnswer::kNo);
  EXPECT_TRUE(result.exact);
}

TEST(SemAcTest, OddCycleWithoutConstraintsIsNo) {
  Generator gen(1);
  ConjunctiveQuery c5 = gen.CycleQuery(5);
  DependencySet sigma;
  SemAcResult result = DecideSemanticAcyclicity(c5, sigma);
  EXPECT_EQ(result.answer, SemAcAnswer::kNo);
  EXPECT_TRUE(result.exact);
}

TEST(SemAcTest, ExampleOneBecomesAcyclicUnderTheTgd) {
  // The paper's motivating example.
  ConjunctiveQuery q =
      MustParseQuery("q(x,y) :- Interest(x,z), Class(y,z), Owns(x,y)");
  DependencySet sigma =
      MustParseDependencySet("Interest(x,z), Class(y,z) -> Owns(x,y)");
  SemAcResult result = DecideSemanticAcyclicity(q, sigma);
  VerifyYes(q, sigma, result);
  EXPECT_LE(result.witness->size(), 2u);
  // And without the constraint the same query is NOT semantically acyclic.
  DependencySet empty;
  SemAcResult no = DecideSemanticAcyclicity(q, empty);
  EXPECT_EQ(no.answer, SemAcAnswer::kNo);
}

TEST(SemAcTest, GuardedLinearYesCase) {
  // Σ: T(x,y) -> E(y,z), E(z,x) (linear, hence guarded).
  // q = T(x,y), E(y,z), E(z,x) is cyclic but ≡Σ T(x,y).
  ConjunctiveQuery q = MustParseQuery("T(x,y), E(y,z), E(z,x)");
  DependencySet sigma = MustParseDependencySet("T(x,y) -> E(y,z), E(z,x)");
  ASSERT_TRUE(IsGuardedSet(sigma.tgds));
  ASSERT_FALSE(IsAcyclic(q));
  SemAcResult result = DecideSemanticAcyclicity(q, sigma);
  VerifyYes(q, sigma, result);
}

TEST(SemAcTest, GuardedNoCase) {
  // A genuine triangle with an unrelated guarded tgd stays cyclic.
  Generator gen(2);
  ConjunctiveQuery triangle = gen.CycleQuery(3);
  DependencySet sigma = MustParseDependencySet("A(x) -> B(x)");
  ASSERT_TRUE(IsGuardedSet(sigma.tgds));
  SemAcResult result = DecideSemanticAcyclicity(triangle, sigma);
  EXPECT_EQ(result.answer, SemAcAnswer::kNo);
  EXPECT_TRUE(result.exact);
}

TEST(SemAcTest, FullTgdYesCaseFromTheorem7Pattern) {
  // Full tgds can also create witnesses (SemAc(F) is undecidable in
  // general, but individual instances can be solved).
  ConjunctiveQuery q = MustParseQuery("E(x,y), E(y,z), E(z,x), A(x)");
  DependencySet sigma =
      MustParseDependencySet("A(x) -> E(x,x)");
  // chase(A(x)) = {A(x), E(x,x)}: the triangle maps (all vars to x), so
  // A(x) ⊆Σ q; and q ⊆ A(x) trivially => q ≡Σ A(x), which is acyclic.
  SemAcResult result = DecideSemanticAcyclicity(q, sigma);
  VerifyYes(q, sigma, result);
}

TEST(SemAcTest, EgdKeyYesCase) {
  // Keys can equate variables and fold a cycle.
  // q = R(x,y), R(x,z), E(y,z): under key R(a,b),R(a,c) -> b = c the
  // chase merges y = z, E(y,y) remains; q ≡Σ R(x,y), E(y,y).
  ConjunctiveQuery q = MustParseQuery("R(x,y), R(x,z), E(y,z)");
  DependencySet sigma = MustParseDependencySet("R(a,b), R(a,c) -> b = c");
  SemAcResult result = DecideSemanticAcyclicity(q, sigma);
  VerifyYes(q, sigma, result);
}

TEST(SemAcTest, K2NoCase) {
  Generator gen(3);
  ConjunctiveQuery c3 = gen.CycleQuery(3);
  DependencySet sigma = MustParseDependencySet("E(x,y), E(x,z) -> y = z");
  ASSERT_TRUE(IsK2Set(sigma.egds));
  SemAcResult result = DecideSemanticAcyclicity(c3, sigma);
  EXPECT_EQ(result.answer, SemAcAnswer::kNo);
  EXPECT_TRUE(result.exact);
}

TEST(SemAcTest, NonRecursiveYesCase) {
  // NR (full, non-sticky) set closes the B-triangle: q ≡Σ {B1, B2}.
  ConjunctiveQuery q = MustParseQuery("B1(x,y), B2(y,z), B3(z,x)");
  DependencySet sigma = MustParseDependencySet("B1(x,y), B2(y,z) -> B3(z,x)");
  ASSERT_TRUE(IsNonRecursive(sigma.tgds));
  ASSERT_FALSE(IsAcyclic(q));
  SemAcResult result = DecideSemanticAcyclicity(q, sigma);
  VerifyYes(q, sigma, result);
  EXPECT_LE(result.witness->size(), 2u * q.size());
}

TEST(SemAcTest, StickyYesCase) {
  // A genuinely sticky set (note: Example 1's tgd is NOT sticky — its
  // join variable z never reaches the head). Here the marked body
  // variables x, y each occur once, so stickiness holds.
  ConjunctiveQuery q = MustParseQuery("T(x,y), E(y,z), E(z,x)");
  DependencySet sigma = MustParseDependencySet("T(x,y) -> E(y,z), E(z,x)");
  ASSERT_TRUE(IsSticky(sigma.tgds));
  ASSERT_FALSE(IsSticky(
      MustParseDependencySet("Interest(x,z), Class(y,z) -> Owns(x,y)").tgds));
  SemAcResult result = DecideSemanticAcyclicity(q, sigma);
  VerifyYes(q, sigma, result);
}

TEST(SemAcTest, WitnessRespectsSmallQueryBoundForGuarded) {
  ConjunctiveQuery q = MustParseQuery("T(x,y), E(y,z), E(z,x)");
  DependencySet sigma = MustParseDependencySet("T(x,y) -> E(y,z), E(z,x)");
  SemAcResult result = DecideSemanticAcyclicity(q, sigma);
  ASSERT_EQ(result.answer, SemAcAnswer::kYes);
  EXPECT_EQ(result.small_query_bound, 2 * q.size());
  EXPECT_LE(result.witness->size(), result.small_query_bound);
}

TEST(SemAcTest, NonBooleanHeadsSurviveReformulation) {
  ConjunctiveQuery q =
      MustParseQuery("q(x,y) :- Interest(x,z), Class(y,z), Owns(x,y)");
  DependencySet sigma =
      MustParseDependencySet("Interest(x,z), Class(y,z) -> Owns(x,y)");
  SemAcResult result = DecideSemanticAcyclicity(q, sigma);
  ASSERT_EQ(result.answer, SemAcAnswer::kYes);
  EXPECT_EQ(result.witness->arity(), 2u);
}

TEST(SemAcTest, UnsatisfiableUnderEgdsIsYes) {
  // Chase failure: q forces two distinct constants to be equal (and is
  // genuinely cyclic, so no earlier strategy answers first).
  ConjunctiveQuery q =
      MustParseQuery("R(x,'a'), R(x,'b'), E(x,y), E(y,z), E(z,x)");
  DependencySet sigma = MustParseDependencySet("R(u,v), R(u,w) -> v = w");
  SemAcResult result = DecideSemanticAcyclicity(q, sigma);
  EXPECT_EQ(result.answer, SemAcAnswer::kYes);
  EXPECT_EQ(result.strategy, Strategy::kFailingChase);
}

TEST(SemAcTest, SmallQueryBoundsPerClass) {
  ConjunctiveQuery q = MustParseQuery("E(x,y), E(y,z), E(z,x)");
  bool justified = false;
  DependencySet guarded = MustParseDependencySet("E(x,y) -> E(y,w)");
  EXPECT_EQ(SmallQueryBound(q, guarded, &justified), 2 * q.size());
  EXPECT_TRUE(justified);
  DependencySet k2 = MustParseDependencySet("E(x,y), E(x,z) -> y = z");
  EXPECT_EQ(SmallQueryBound(q, k2, &justified), 2 * q.size());
  EXPECT_TRUE(justified);
  DependencySet nr = MustParseDependencySet("A(x) -> E(x,w)");
  EXPECT_GE(SmallQueryBound(q, nr, &justified), 2 * q.size());
  EXPECT_TRUE(justified);
  // Full recursive sets get the heuristic bound, not a justified one.
  DependencySet full = MustParseDependencySet("E(x,y), E(y,z) -> E(x,z)");
  SmallQueryBound(q, full, &justified);
  EXPECT_FALSE(justified);
}

/// Soundness sweep: on random inputs the decider never returns an
/// unverifiable YES (every witness re-verifies), and NO answers claim
/// exactness only with saturated machinery.
class DeciderSoundnessSweep : public ::testing::TestWithParam<int> {};

TEST_P(DeciderSoundnessSweep, YesAnswersCarryValidWitnesses) {
  Generator gen(static_cast<uint64_t>(GetParam()) + 77);
  ConjunctiveQuery q = gen.RandomAcyclicQuery(4, 2, 2, "Z");
  // Randomly add one chord to (sometimes) make it cyclic.
  std::vector<Atom> body = q.body();
  std::vector<Term> vars = q.Variables();
  if (vars.size() >= 2) {
    body.push_back(Atom(Predicate::Get("Z0", 2),
                        {vars[static_cast<size_t>(gen.Uniform(
                             0, static_cast<int>(vars.size()) - 1))],
                         vars[static_cast<size_t>(gen.Uniform(
                             0, static_cast<int>(vars.size()) - 1))]}));
  }
  ConjunctiveQuery q2({}, body);
  DependencySet sigma = MustParseDependencySet("Z0(x,y) -> Z1(x,y)");
  SemAcOptions options;
  // Soundness sweep, not completeness: the budget trades explored-subset
  // coverage for wall time (at the default kAlpha target a visit covers
  // the same search node as the seed's did), and every YES that does
  // surface is still verified below.
  options.exhaustive_budget = 8000;
  options.subset_budget = 8000;
  SemAcResult result = DecideSemanticAcyclicity(q2, sigma, options);
  if (result.answer == SemAcAnswer::kYes) {
    ASSERT_TRUE(result.witness.has_value());
    EXPECT_TRUE(IsAcyclic(*result.witness));
    EXPECT_EQ(EquivalentUnder(q2, *result.witness, sigma), Tri::kYes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeciderSoundnessSweep, ::testing::Range(0, 15));

}  // namespace
}  // namespace semacyc
