#include <gtest/gtest.h>

#include "core/gaifman.h"
#include "core/hypergraph.h"
#include "core/parser.h"
#include "gen/generators.h"

namespace semacyc {
namespace {

TEST(GyoTest, EmptyAndSingleAtomAreAcyclic) {
  EXPECT_TRUE(IsAcyclic(MustParseQuery("R(x,y)")));
  EXPECT_TRUE(IsAcyclic(std::vector<Atom>{}, ConnectingTerms::kVariables));
}

TEST(GyoTest, PathsAndTreesAreAcyclic) {
  EXPECT_TRUE(IsAcyclic(MustParseQuery("R(x,y), R(y,z), R(z,w)")));
  EXPECT_TRUE(IsAcyclic(MustParseQuery("R(x,y), R(x,z), R(x,w), S(w,u)")));
}

TEST(GyoTest, TriangleIsCyclic) {
  EXPECT_FALSE(IsAcyclic(MustParseQuery("R(x,y), R(y,z), R(z,x)")));
}

TEST(GyoTest, TriangleWithGuardIsAlphaAcyclic) {
  // Alpha-acyclicity: a covering hyperedge makes the triangle acyclic.
  EXPECT_TRUE(
      IsAcyclic(MustParseQuery("R(x,y), R(y,z), R(z,x), G(x,y,z)")));
}

TEST(GyoTest, CyclesOfVariousLengths) {
  Generator gen(1);
  for (int len = 3; len <= 8; ++len) {
    EXPECT_FALSE(IsAcyclic(gen.CycleQuery(len))) << "cycle " << len;
  }
}

TEST(GyoTest, TwoAtomCycleIsAcyclic) {
  // E(x,y), E(y,x) has edges {x,y}, {x,y}: one contains the other.
  EXPECT_TRUE(IsAcyclic(MustParseQuery("E(x,y), E(y,x)")));
}

TEST(GyoTest, CliquesAreCyclic) {
  Generator gen(2);
  for (int n = 3; n <= 6; ++n) {
    EXPECT_FALSE(IsAcyclic(gen.CliqueQuery(n))) << "clique " << n;
  }
}

TEST(GyoTest, DisconnectedAcyclicQuery) {
  EXPECT_TRUE(IsAcyclic(MustParseQuery("R(x,y), S(u,v)")));
}

TEST(GyoTest, ConstantsDoNotCreateCycles) {
  // The "cycle" runs through constants, which do not connect.
  EXPECT_TRUE(IsAcyclic(MustParseQuery("R(x,'c'), R('c',y), S(y,x)")));
}

TEST(GyoTest, ExampleOneQueryIsCyclic) {
  EXPECT_FALSE(
      IsAcyclic(MustParseQuery("Interest(x,z), Class(y,z), Owns(x,y)")));
}

TEST(GyoTest, InstanceAcyclicityUsesNullsOnly) {
  // As an instance over constants only, everything is acyclic (§2: the
  // join-tree connectedness condition ranges over nulls).
  Instance inst;
  inst.InsertAll(MustParseAtoms("R('a','b'), R('b','c'), R('c','a')"));
  EXPECT_TRUE(IsAcyclicInstance(inst));
  EXPECT_FALSE(IsAcyclicChase(inst));  // over all terms it is a cycle
}

TEST(JoinTreeTest, BuildsForAcyclicAndRefusesCyclic) {
  ConjunctiveQuery acyclic = MustParseQuery("R(x,y), S(y,z), T(z,w)");
  EXPECT_TRUE(
      BuildJoinTree(acyclic.body(), ConnectingTerms::kVariables).has_value());
  ConjunctiveQuery cyclic = MustParseQuery("R(x,y), R(y,z), R(z,x)");
  EXPECT_FALSE(
      BuildJoinTree(cyclic.body(), ConnectingTerms::kVariables).has_value());
}

TEST(JoinTreeTest, ValidatesRunningIntersection) {
  ConjunctiveQuery q = MustParseQuery("R(x,y), S(y,z), T(z,w), U(y,u)");
  auto tree = BuildJoinTree(q.body(), ConnectingTerms::kVariables);
  ASSERT_TRUE(tree.has_value());
  EXPECT_TRUE(tree->ValidateAllTerms());
  EXPECT_EQ(tree->size(), 4u);
  EXPECT_EQ(tree->TopDownOrder().size(), 4u);
  EXPECT_EQ(tree->BottomUpOrder().size(), 4u);
}

TEST(JoinTreeTest, SingleRootEvenWhenDisconnected) {
  ConjunctiveQuery q = MustParseQuery("R(x,y), S(u,v), T(p,q)");
  auto tree = BuildJoinTree(q.body(), ConnectingTerms::kVariables);
  ASSERT_TRUE(tree.has_value());
  EXPECT_GE(tree->root(), 0);
  EXPECT_TRUE(tree->ValidateAllTerms());
}

/// Property sweep: random acyclic queries must pass GYO and produce valid
/// join trees; their cyclic "closures" (adding a long chord cycle) fail.
class RandomAcyclicSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomAcyclicSweep, RandomJoinTreesAreDetectedAcyclic) {
  Generator gen(static_cast<uint64_t>(GetParam()));
  ConjunctiveQuery q = gen.RandomAcyclicQuery(
      5 + GetParam() % 10, 2 + GetParam() % 3, 3);
  EXPECT_TRUE(IsAcyclic(q));
  auto tree = BuildJoinTree(q.body(), ConnectingTerms::kVariables);
  ASSERT_TRUE(tree.has_value());
  EXPECT_TRUE(tree->ValidateAllTerms());
}

TEST_P(RandomAcyclicSweep, AddingCycleChordsBreaksAcyclicity) {
  Generator gen(static_cast<uint64_t>(GetParam()) + 1000);
  ConjunctiveQuery cyc = gen.CycleQuery(3 + GetParam() % 5);
  ConjunctiveQuery tree = gen.RandomAcyclicQuery(4, 2, 2);
  std::vector<Atom> body = tree.body();
  for (const Atom& a : cyc.body()) body.push_back(a);
  EXPECT_FALSE(IsAcyclic(ConjunctiveQuery({}, body)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAcyclicSweep, ::testing::Range(0, 20));

TEST(GaifmanTest, CliqueDetection) {
  Generator gen(7);
  ConjunctiveQuery k4 = gen.CliqueQuery(4);
  GaifmanGraph g = GaifmanGraph::Of(k4.body(), ConnectingTerms::kVariables);
  EXPECT_EQ(g.VertexCount(), 4u);
  EXPECT_EQ(g.EdgeCount(), 6u);
  EXPECT_TRUE(g.IsClique(k4.Variables()));
  EXPECT_GE(g.GreedyCliqueLowerBound(), 4u);
  EXPECT_TRUE(g.IsConnected());
}

TEST(GaifmanTest, PathGraph) {
  ConjunctiveQuery p = MustParseQuery("R(x,y), R(y,z)");
  GaifmanGraph g = GaifmanGraph::Of(p.body(), ConnectingTerms::kVariables);
  EXPECT_TRUE(g.HasEdge(Term::Variable("x"), Term::Variable("y")));
  EXPECT_FALSE(g.HasEdge(Term::Variable("x"), Term::Variable("z")));
}

TEST(GaifmanTest, DisconnectedGraph) {
  ConjunctiveQuery p = MustParseQuery("R(x,y), R(u,v)");
  GaifmanGraph g = GaifmanGraph::Of(p.body(), ConnectingTerms::kVariables);
  EXPECT_FALSE(g.IsConnected());
}

}  // namespace
}  // namespace semacyc
