#include <gtest/gtest.h>

#include "chase/query_chase.h"
#include "core/hypergraph.h"
#include "core/parser.h"
#include "deps/classify.h"
#include "deps/connecting.h"
#include "deps/nonrecursive.h"
#include "deps/sticky.h"
#include "deps/weakly_acyclic.h"

namespace semacyc {
namespace {

std::vector<Tgd> Tgds(const std::string& text) {
  return MustParseDependencySet(text).tgds;
}

TEST(ClassifyTest, FullTgds) {
  EXPECT_TRUE(IsFullSet(Tgds("E(x,y), E(y,z) -> E(x,z)")));
  EXPECT_FALSE(IsFullSet(Tgds("E(x,y) -> E(y,z)")));
}

TEST(ClassifyTest, GuardedTgds) {
  // Guard = atom containing all body variables.
  EXPECT_TRUE(IsGuardedSet(Tgds("T(x,y,z), E(x,y) -> S(x,w)")));
  EXPECT_FALSE(IsGuardedSet(Tgds("E(x,y), E(y,z) -> E(x,z)")));
  // Single-atom bodies are trivially guarded (linear ⊆ guarded).
  EXPECT_TRUE(IsGuardedSet(Tgds("E(x,y) -> E(y,w)")));
}

TEST(ClassifyTest, ExampleOneTgdIsNotGuarded) {
  EXPECT_FALSE(IsGuardedSet(Tgds("Interest(x,z), Class(y,z) -> Owns(x,y)")));
}

TEST(ClassifyTest, LinearAndInclusion) {
  auto linear = Tgds("T(x,y,x) -> S(x,w)");
  EXPECT_TRUE(IsLinearSet(linear));
  EXPECT_FALSE(IsInclusionSet(linear));  // repeated variable in body
  auto id = Tgds("T(x,y,z) -> S(y,w)");
  EXPECT_TRUE(IsInclusionSet(id));
  EXPECT_TRUE(IsLinearSet(id));
  EXPECT_FALSE(IsLinearSet(Tgds("A(x), B(x) -> Cx(x)")));
}

TEST(ClassifyTest, NonRecursive) {
  EXPECT_TRUE(IsNonRecursive(Tgds("A(x) -> B(x). B(x) -> Cc(x).")));
  EXPECT_FALSE(IsNonRecursive(Tgds("A(x) -> B(x). B(x) -> A(x).")));
  EXPECT_FALSE(IsNonRecursive(Tgds("E(x,y) -> E(y,z)")));  // self-loop
}

TEST(ClassifyTest, PredicateGraphStrata) {
  PredicateGraph g =
      PredicateGraph::Of(Tgds("A(x) -> B(x). B(x) -> Cc(x). A(x) -> Cc(x)."));
  EXPECT_FALSE(g.HasDirectedCycle());
  auto strata = g.Strata();
  ASSERT_EQ(strata.size(), 3u);
  EXPECT_GE(NonRecursiveChaseDepthBound(
                Tgds("A(x) -> B(x). B(x) -> Cc(x). A(x) -> Cc(x).")),
            3u);
}

TEST(StickyTest, Figure1StickySet) {
  // Figure 1: {T(x,y,z) -> S(y,w); R(x,y), P(y,z) -> T(x,y,w)} is sticky:
  // marking: tgd1 marks x,z; propagation marks x in tgd2 (position (T,1));
  // the doubly-occurring y stays unmarked.
  auto sticky_set = Tgds("T(x,y,z) -> S(y,w). R(x,y), P(y,z) -> T(x,y,w).");
  StickyMarking marking = ComputeStickyMarking(sticky_set);
  EXPECT_TRUE(marking.IsSticky()) << marking.ToString(sticky_set);
  // tgd1 marks exactly {x, z}.
  EXPECT_EQ(marking.marked[0].size(), 2u);
  EXPECT_TRUE(marking.marked[0].count(Term::Variable("x")));
  EXPECT_TRUE(marking.marked[0].count(Term::Variable("z")));
  // tgd2 marks {x, z} but not the join variable y.
  EXPECT_FALSE(marking.marked[1].count(Term::Variable("y")));
}

TEST(StickyTest, Figure1NonStickySet) {
  // With head S(x,w) instead: y gets marked through position (T,2) and
  // occurs twice in tgd2's body -> not sticky.
  auto non_sticky = Tgds("T(x,y,z) -> S(x,w). R(x,y), P(y,z) -> T(x,y,w).");
  StickyMarking marking = ComputeStickyMarking(non_sticky);
  EXPECT_FALSE(marking.IsSticky()) << marking.ToString(non_sticky);
  EXPECT_EQ(marking.violating_tgd, 1);
  EXPECT_EQ(marking.violating_variable, Term::Variable("y"));
}

TEST(StickyTest, JoinlessSetsAreSticky) {
  EXPECT_TRUE(IsSticky(Tgds("A(x) -> B(x). E(x,y) -> E(y,w).")));
}

TEST(StickyTest, ImmediateDoubleJoinViolation) {
  // x is marked (not in head) and occurs twice.
  EXPECT_FALSE(IsSticky(Tgds("E(x,y), E(x,z) -> A(y)")));
  // If the join variable reaches the head everywhere, it is sticky.
  EXPECT_TRUE(IsSticky(Tgds("E(x,y), E(x,z) -> A(x)")));
}

TEST(StickyTest, ExampleTwoTgdIsSticky) {
  EXPECT_TRUE(IsSticky(Tgds("P(x), P(y) -> Rclq(x,y)")));
}

TEST(WeaklyAcyclicTest, FullSetsAreWeaklyAcyclic) {
  EXPECT_TRUE(IsWeaklyAcyclic(Tgds("E(x,y), E(y,z) -> E(x,z)")));
}

TEST(WeaklyAcyclicTest, SelfFeedingExistentialIsNot) {
  EXPECT_FALSE(IsWeaklyAcyclic(Tgds("E(x,y) -> E(y,z)")));
}

TEST(WeaklyAcyclicTest, AcyclicExistentialFlow) {
  EXPECT_TRUE(IsWeaklyAcyclic(Tgds("A(x) -> E(x,y). E(x,y) -> B(y).")));
}

TEST(WeaklyAcyclicTest, TwoStepSpecialCycle) {
  EXPECT_FALSE(
      IsWeaklyAcyclic(Tgds("E(x,y) -> F(y,z). F(x,y) -> E(y,z).")));
}

TEST(ClassifyTest, FullReport) {
  TgdClassification cls = Classify(Tgds("T(x,y,z) -> S(y,w)"));
  EXPECT_FALSE(cls.full);
  EXPECT_TRUE(cls.guarded);
  EXPECT_TRUE(cls.linear);
  EXPECT_TRUE(cls.inclusion);
  EXPECT_TRUE(cls.non_recursive);
  EXPECT_TRUE(cls.sticky);
  EXPECT_TRUE(cls.weakly_acyclic);
  EXPECT_NE(cls.ToString().find("guarded"), std::string::npos);
}

TEST(FdRecognizerTest, RecognizesKeys) {
  std::optional<RecognizedFd> fd =
      RecognizeFd(MustParseEgd("R(x,y), R(x,z) -> y = z"));
  ASSERT_TRUE(fd.has_value());
  EXPECT_EQ(fd->lhs, std::vector<int>{0});
  EXPECT_EQ(fd->rhs, 1);
  EXPECT_TRUE(fd->IsKey());
  EXPECT_TRUE(fd->IsUnary());
}

TEST(FdRecognizerTest, NonKeyFd) {
  // Ternary: first attribute determines second; third is free.
  std::optional<RecognizedFd> fd =
      RecognizeFd(MustParseEgd("T(x,y,a), T(x,z,b) -> y = z"));
  ASSERT_TRUE(fd.has_value());
  EXPECT_FALSE(fd->IsKey());
  EXPECT_TRUE(fd->IsUnary());
}

TEST(FdRecognizerTest, RejectsNonFdShapes) {
  EXPECT_FALSE(RecognizeFd(MustParseEgd("R(x,y), S(x,z) -> y = z")).has_value());
  EXPECT_FALSE(
      RecognizeFd(MustParseEgd("R(x,y), R(y,z), R(x,w) -> w = z")).has_value());
}

TEST(FdRecognizerTest, K2Recognition) {
  std::vector<Egd> k2 = {MustParseEgd("R(x,y), R(x,z) -> y = z"),
                         MustParseEgd("S(y,x), S(z,x) -> y = z")};
  EXPECT_TRUE(IsK2Set(k2));
  std::vector<Egd> not_k2 = {
      MustParseEgd("T(x,y,u), T(x,y,v) -> u = v")};  // arity 3
  EXPECT_FALSE(IsK2Set(not_k2));
  EXPECT_TRUE(IsUnaryFdSet(k2));
}

TEST(FunctionalDependencyTest, ToEgdsExpansion) {
  FunctionalDependency fd{Predicate::Get("T", 3), {0}, {1, 2}};
  std::vector<Egd> egds = fd.ToEgds();
  EXPECT_EQ(egds.size(), 2u);
  EXPECT_TRUE(fd.IsKey());
  EXPECT_TRUE(fd.IsUnary());
}

TEST(ConnectingTest, PreservesClassMembership) {
  auto guarded = Tgds("T(x,y,z), E(x,y) -> S(x,w)");
  DependencySet sigma;
  sigma.tgds = guarded;
  DependencySet connected = ConnectingOperator::Connect(sigma);
  EXPECT_TRUE(IsGuardedSet(connected.tgds));
  EXPECT_TRUE(connected.tgds[0].IsBodyConnected());

  auto linear = Tgds("T(x,y,z) -> S(y,w)");
  sigma.tgds = linear;
  EXPECT_TRUE(IsLinearSet(ConnectingOperator::Connect(sigma).tgds));
  EXPECT_TRUE(IsInclusionSet(ConnectingOperator::Connect(sigma).tgds));

  auto nr = Tgds("A(x) -> B(x). B(x) -> Cc(x).");
  sigma.tgds = nr;
  EXPECT_TRUE(IsNonRecursive(ConnectingOperator::Connect(sigma).tgds));

  auto sticky = Tgds("T(x,y,z) -> S(y,w). R(x,y), P(y,z) -> T(x,y,w).");
  sigma.tgds = sticky;
  EXPECT_TRUE(IsSticky(ConnectingOperator::Connect(sigma).tgds));
}

TEST(ConnectingTest, LeftStaysAcyclicRightBecomesCyclic) {
  ConjunctiveQuery acyclic = MustParseQuery("E(x,y), F(y,z)");
  ConjunctiveQuery cq = ConnectingOperator::ConnectLeft(acyclic);
  EXPECT_TRUE(IsAcyclic(cq));
  EXPECT_TRUE(cq.IsConnected());
  ConjunctiveQuery cqp = ConnectingOperator::ConnectRight(acyclic);
  EXPECT_FALSE(IsAcyclic(cqp));  // the aux triangle
  EXPECT_TRUE(cqp.IsConnected());
}

TEST(ConnectingTest, ContainmentTransfersThroughTheOperator) {
  // q ⊆Σ q' iff c(q) ⊆ c(Σ) c(q'): checked on a terminating instance.
  ConjunctiveQuery q = MustParseQuery("A(x), B(x)");
  ConjunctiveQuery qp = MustParseQuery("D(x,y), D(y,z), D(z,x)");
  DependencySet sigma = MustParseDependencySet(
      "A(x), B(x) -> D(x,x)");
  // q ⊆Σ qp: chase(q) = {A,B,D(x,x)}; the D-triangle maps (all to x).
  EXPECT_EQ(ContainedUnder(q, qp, sigma), Tri::kYes);
  ConjunctiveQuery cq = ConnectingOperator::ConnectLeft(q);
  ConjunctiveQuery cqp = ConnectingOperator::ConnectRight(qp);
  DependencySet csigma = ConnectingOperator::Connect(sigma);
  EXPECT_EQ(ContainedUnder(cq, cqp, csigma), Tri::kYes);

  // And a negative transfer.
  ConjunctiveQuery qn = MustParseQuery("A(x)");
  EXPECT_EQ(ContainedUnder(qn, qp, sigma), Tri::kNo);
  ConjunctiveQuery cqn = ConnectingOperator::ConnectLeft(qn);
  EXPECT_EQ(ContainedUnder(cqn, cqp, csigma), Tri::kNo);
}

}  // namespace
}  // namespace semacyc
