#include "core/term.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace semacyc {
namespace {

TEST(TermTest, DefaultConstructedIsInvalid) {
  Term t;
  EXPECT_FALSE(t.IsValid());
  EXPECT_FALSE(t.IsConstant());
  EXPECT_FALSE(t.IsNull());
  EXPECT_FALSE(t.IsVariable());
  EXPECT_EQ(t.ToString(), "<invalid>");
}

TEST(TermTest, ConstantsInternByName) {
  Term a1 = Term::Constant("alpha");
  Term a2 = Term::Constant("alpha");
  Term b = Term::Constant("beta");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_TRUE(a1.IsConstant());
  EXPECT_EQ(a1.name(), "alpha");
  EXPECT_EQ(a1.ToString(), "alpha");
}

TEST(TermTest, VariablesInternByName) {
  Term x1 = Term::Variable("x");
  Term x2 = Term::Variable("x");
  Term y = Term::Variable("y");
  EXPECT_EQ(x1, x2);
  EXPECT_NE(x1, y);
  EXPECT_TRUE(x1.IsVariable());
}

TEST(TermTest, ConstantAndVariableWithSameNameDiffer) {
  Term c = Term::Constant("n");
  Term v = Term::Variable("n");
  EXPECT_NE(c, v);
  EXPECT_EQ(c.kind(), TermKind::kConstant);
  EXPECT_EQ(v.kind(), TermKind::kVariable);
}

TEST(TermTest, FreshNullsAreDistinct) {
  std::set<Term> nulls;
  for (int i = 0; i < 1000; ++i) {
    Term n = Term::FreshNull();
    EXPECT_TRUE(n.IsNull());
    EXPECT_TRUE(nulls.insert(n).second) << "null minted twice";
  }
}

TEST(TermTest, NullToStringMentionsIndex) {
  Term n = Term::NullAt(42);
  EXPECT_EQ(n.ToString(), "_:42");
  EXPECT_EQ(n.index(), 42u);
}

TEST(TermTest, OrderingIsTotal) {
  Term a = Term::Constant("a");
  Term b = Term::Constant("b");
  EXPECT_TRUE((a < b) || (b < a));
  EXPECT_FALSE(a < a);
}

TEST(TermTest, HashingSupportsUnorderedContainers) {
  std::unordered_set<Term> set;
  set.insert(Term::Constant("c1"));
  set.insert(Term::Constant("c1"));
  set.insert(Term::Variable("c1"));
  set.insert(Term::FreshNull());
  EXPECT_EQ(set.size(), 3u);
}

TEST(TermTest, KindAndIndexRoundTrip) {
  Term c = Term::Constant("kind_round_trip");
  EXPECT_EQ(c.kind(), TermKind::kConstant);
  Term v = Term::Variable("kind_round_trip");
  EXPECT_EQ(v.kind(), TermKind::kVariable);
  EXPECT_NE(c.raw_bits(), v.raw_bits());
}

}  // namespace
}  // namespace semacyc
