#include <gtest/gtest.h>

#include "chase/query_chase.h"
#include "core/containment.h"
#include "core/core_min.h"
#include "core/hypergraph.h"
#include "core/parser.h"
#include "deps/classify.h"
#include "deps/nonrecursive.h"
#include "deps/sticky.h"
#include "eval/cover_game.h"
#include "eval/yannakakis.h"
#include "gen/generators.h"
#include "rewrite/ucq_rewriter.h"
#include "semacyc/decider.h"

namespace semacyc {
namespace {

Term C(const std::string& s) { return Term::Constant(s); }

Instance Db(const std::string& atoms) {
  Instance inst;
  inst.InsertAll(MustParseAtoms(atoms));
  return inst;
}

// ---- Rewriter: factorization. ----

TEST(EdgeRewriteTest, ParallelAtomsResolveThroughOneHeadAtom) {
  // q = E(x,y), E(x,z): both atoms unify with the head of A(x) -> E(x,w)
  // *as one piece* (y ~ w ~ z is legal: both are private existential-side
  // variables), so the rewriting reaches A(x). The explicit factorization
  // step covers the same ground and must not break anything.
  ConjunctiveQuery q = MustParseQuery("E(x,y), E(x,z)");
  auto tgds = MustParseDependencySet("A(x) -> E(x,w)").tgds;
  for (bool factorize : {true, false}) {
    RewriteOptions options;
    options.factorize = factorize;
    RewriteResult result = RewriteToUcq(q, tgds, options);
    EXPECT_TRUE(result.complete);
    bool found_a = false;
    for (const auto& d : result.ucq.disjuncts()) {
      if (d.size() == 1 &&
          d.body()[0].predicate() == Predicate::Get("A", 1)) {
        found_a = true;
      }
    }
    EXPECT_TRUE(found_a) << "factorize=" << factorize << "\n"
                         << result.ucq.ToString();
  }
}

TEST(EdgeRewriteTest, ConstantsSurviveRewriting) {
  ConjunctiveQuery q = MustParseQuery("E('a',y)");
  auto tgds = MustParseDependencySet("B(x) -> E(x,w)").tgds;
  RewriteResult result = RewriteToUcq(q, tgds);
  EXPECT_TRUE(result.complete);
  bool found = false;
  for (const auto& d : result.ucq.disjuncts()) {
    if (d.size() == 1 && d.body()[0].predicate() == Predicate::Get("B", 1)) {
      found = true;
      EXPECT_EQ(d.body()[0].arg(0), C("a"));
    }
  }
  EXPECT_TRUE(found);
}

TEST(EdgeRewriteTest, ConstantClashBlocksRewriting) {
  ConjunctiveQuery q = MustParseQuery("E('a',y)");
  auto tgds = MustParseDependencySet("B(x) -> E('b',w)").tgds;
  RewriteResult result = RewriteToUcq(q, tgds);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.ucq.size(), 1u);  // no rewriting possible
}

// ---- Cover game corner cases. ----

TEST(EdgeCoverGameTest, ConflictingHeadCorrespondenceLoses) {
  // t repeats a term but t' does not: condition (1) is unsatisfiable for
  // atoms mentioning that term.
  Instance I;
  Term n = Term::FreshNull();
  I.Insert(Atom(Predicate::Get("E", 2), {n, n}));
  Instance J = Db("E('a','b')");
  EXPECT_FALSE(DuplicatorWins(I, {n, n}, J, {C("a"), C("b")}));
  EXPECT_TRUE(DuplicatorWins(I, {n}, Db("E('c','c')"), {C("c")}));
}

TEST(EdgeCoverGameTest, EmptyLeftInstanceAlwaysWins) {
  Instance I, J;
  EXPECT_TRUE(DuplicatorWins(I, {}, J, {}));
}

TEST(EdgeCoverGameTest, StrategyIsExposed) {
  Instance I;
  Term n = Term::FreshNull();
  I.Insert(Atom(Predicate::Get("E", 2), {n, Term::FreshNull()}));
  Instance J = Db("E('a','b'), E('a','c')");
  CoverGameResult result = SolveCoverGame(I, {}, J, {});
  ASSERT_TRUE(result.duplicator_wins);
  ASSERT_EQ(result.strategy.size(), 1u);
  EXPECT_EQ(result.strategy[0].size(), 2u);  // both images survive
}

// ---- Yannakakis corner cases. ----

TEST(EdgeYannakakisTest, RepeatedVariableInsideAtom) {
  Instance db = Db("T('a','a','b'), T('c','d','e')");
  ConjunctiveQuery q = MustParseQuery("q(x,z) :- T(x,x,z)");
  YannakakisResult result = EvaluateAcyclic(q, db);
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.answers.size(), 1u);
  EXPECT_EQ(result.answers[0][0], C("a"));
}

TEST(EdgeYannakakisTest, EmptyRelationShortCircuits) {
  Instance db = Db("R('a','b')");
  ConjunctiveQuery q = MustParseQuery("R(x,y), S(y,z)");
  EXPECT_EQ(EvaluateAcyclicBoolean(q, db), 0);
  YannakakisResult result = EvaluateAcyclic(q, db);
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(result.answers.empty());
}

TEST(EdgeYannakakisTest, HeadConstant) {
  Instance db = Db("R('a','b')");
  ConjunctiveQuery q({C("k"), Term::Variable("x")},
                     MustParseAtoms("R(x,y)"));
  YannakakisResult result = EvaluateAcyclic(q, db);
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.answers.size(), 1u);
  EXPECT_EQ(result.answers[0][0], C("k"));
}

// ---- Chase corner cases. ----

TEST(EdgeChaseTest, CascadedConstantClash) {
  // Merging nulls eventually forces two constants together.
  DependencySet sigma = MustParseDependencySet(
      "R(x,y), R(x,z) -> y = z. S(y,u), S(z,v), R(x,y), R(x,z) -> u = v.");
  Instance db = Db("R('r','p'), R('r','q'), S('p','a'), S('q','b')");
  ChaseResult result = Chase(db, sigma);
  EXPECT_TRUE(result.failed);
}

TEST(EdgeChaseTest, TermMapResolvesChains) {
  ConjunctiveQuery q = MustParseQuery("q(a,b,c) :- R(x,a), R(x,b), R(x,c)");
  DependencySet sigma = MustParseDependencySet("R(x,y), R(x,z) -> y = z");
  QueryChaseResult chase = ChaseQuery(q, sigma);
  EXPECT_TRUE(chase.saturated);
  EXPECT_EQ(chase.frozen_head[0], chase.frozen_head[1]);
  EXPECT_EQ(chase.frozen_head[1], chase.frozen_head[2]);
  EXPECT_EQ(chase.instance.size(), 1u);
}

TEST(EdgeChaseTest, MultiHeadTgdAddsAllAtoms) {
  DependencySet sigma = MustParseDependencySet("A(x) -> B(x,w), Cc(w)");
  ChaseResult result = ChaseTgds(Db("A('a')"), sigma.tgds);
  EXPECT_TRUE(result.saturated);
  EXPECT_EQ(result.instance.size(), 3u);
  // The existential w is shared between the two head atoms.
  Term w;
  for (const Atom& a : result.instance.atoms()) {
    if (a.predicate() == Predicate::Get("B", 2)) w = a.arg(1);
  }
  EXPECT_TRUE(
      result.instance.Contains(Atom(Predicate::Get("Cc", 1), {w})));
}

// ---- Decider option plumbing. ----

TEST(EdgeDeciderTest, StrategiesCanBeDisabled) {
  ConjunctiveQuery q =
      MustParseQuery("Interest(x,z), Class(y,z), Owns(x,y)");
  DependencySet sigma =
      MustParseDependencySet("Interest(x,z), Class(y,z) -> Owns(x,y)");
  SemAcOptions options;
  options.enable_images = false;
  options.enable_subsets = false;
  options.enable_exhaustive = false;
  SemAcResult result = DecideSemanticAcyclicity(q, sigma, options);
  // All witness-search strategies disabled: must degrade to kUnknown,
  // never to a wrong answer.
  EXPECT_EQ(result.answer, SemAcAnswer::kUnknown);
  options.enable_exhaustive = true;
  SemAcResult with_exhaustive = DecideSemanticAcyclicity(q, sigma, options);
  EXPECT_EQ(with_exhaustive.answer, SemAcAnswer::kYes);
}

TEST(EdgeDeciderTest, ZeroBudgetIsHonest) {
  Generator gen(55);
  ConjunctiveQuery q = gen.CycleQuery(3);
  DependencySet sigma = MustParseDependencySet("A(x) -> B(x)");
  SemAcOptions options;
  options.subset_budget = 1;
  options.exhaustive_budget = 1;
  options.image_homs = 1;
  SemAcResult result = DecideSemanticAcyclicity(q, sigma, options);
  EXPECT_EQ(result.answer, SemAcAnswer::kUnknown);
  EXPECT_FALSE(result.exact);
}

// ---- Misc core. ----

TEST(EdgeCoreTest, ConstantOnlyQueryIsItsOwnCore) {
  ConjunctiveQuery q = MustParseQuery("R('a','b'), S('b')");
  EXPECT_TRUE(IsCore(q));
  EXPECT_TRUE(IsAcyclic(q));
}

TEST(EdgeCoreTest, QueryFromPureConstantInstance) {
  Instance db = Db("R('a','b')");
  ConjunctiveQuery q = QueryFromInstance(db, {});
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.Variables().size(), 0u);  // genuine constants stay
}

TEST(EdgeStickyTest, MultiHeadMarkingUsesEveryAtom) {
  // x appears in one head atom but not the other: marked (the paper's
  // "not in every head-atom" base step).
  auto tgds = MustParseDependencySet("E(x,y) -> F(x,w), G(y,w)").tgds;
  StickyMarking marking = ComputeStickyMarking(tgds);
  EXPECT_TRUE(marking.marked[0].count(Term::Variable("x")));
  EXPECT_TRUE(marking.marked[0].count(Term::Variable("y")));
  EXPECT_TRUE(marking.IsSticky());  // single occurrences each
}

TEST(EdgeClassifyTest, NonRecursiveBoundGrowsWithStrata) {
  auto shallow = MustParseDependencySet("A(x) -> B(x)").tgds;
  auto deep = MustParseDependencySet(
                  "A(x) -> B(x). B(x) -> Cc(x). Cc(x) -> D(x).")
                  .tgds;
  EXPECT_LT(NonRecursiveChaseDepthBound(shallow),
            NonRecursiveChaseDepthBound(deep));
}

TEST(EdgeContainmentTest, EmptyBodyNeverParses) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("q(x) :- ").ok());
}

}  // namespace
}  // namespace semacyc
