#include <gtest/gtest.h>

#include "chase/query_chase.h"
#include "core/homomorphism.h"
#include "core/hypergraph.h"
#include "deps/classify.h"
#include "pcp/pcp.h"
#include "pcp/reduction.h"

namespace semacyc {
namespace {

TEST(PcpSolverTest, SolvableInstance) {
  // Classic solvable instance: (a, ab), (b, -)... use a crafted one:
  // top = (a, b), bottom = (ab, ...)? Take the standard:
  // pairs: (a, ab), (ba, a): solution 1,2? a+ba = aba; ab+a = aba. Yes.
  PcpInstance instance{{"a", "ba"}, {"ab", "a"}};
  auto solution = SolvePcpBounded(instance, 32);
  ASSERT_TRUE(solution.has_value());
  std::string top, bottom;
  for (int i : solution->indices) {
    top += instance.top[static_cast<size_t>(i)];
    bottom += instance.bottom[static_cast<size_t>(i)];
  }
  EXPECT_EQ(top, bottom);
  EXPECT_EQ(solution->word, top);
}

TEST(PcpSolverTest, UnsolvableInstance) {
  // Lengths always differ: top strictly longer.
  PcpInstance instance{{"ab", "aab"}, {"a", "aa"}};
  EXPECT_FALSE(SolvePcpBounded(instance, 64).has_value());
}

TEST(PcpSolverTest, TrivialIdenticalTile) {
  PcpInstance instance{{"ab"}, {"ab"}};
  auto solution = SolvePcpBounded(instance, 8);
  ASSERT_TRUE(solution.has_value());
  EXPECT_EQ(solution->indices.size(), 1u);
}

TEST(PcpSolverTest, MadeEvenPreservesSolvability) {
  PcpInstance instance{{"a", "ba"}, {"ab", "a"}};
  PcpInstance even = instance.MadeEven();
  EXPECT_TRUE(even.AllEven());
  auto solution = SolvePcpBounded(even, 64);
  ASSERT_TRUE(solution.has_value());
}

TEST(PcpReductionTest, SigmaIsFullButNotInDecidableClasses) {
  PcpInstance instance{{"aa", "bbaa"}, {"aabb", "bb"}};
  PcpReduction reduction = PcpReduction::Build(instance);
  TgdClassification cls = Classify(reduction.sigma().tgds);
  EXPECT_TRUE(cls.full) << "Theorem 7 reduction uses full tgds";
  EXPECT_TRUE(cls.weakly_acyclic) << "full sets are weakly acyclic";
  EXPECT_FALSE(cls.guarded);
  EXPECT_FALSE(cls.non_recursive);
  EXPECT_FALSE(cls.sticky);
}

TEST(PcpReductionTest, QueryIsCyclicAndClosedUnderSigma) {
  PcpInstance instance{{"aa", "bbaa"}, {"aabb", "bb"}};
  PcpReduction reduction = PcpReduction::Build(instance);
  EXPECT_FALSE(IsAcyclic(reduction.q()));
  // q = chase(q, Σ) (the proof's closure property).
  QueryChaseResult chase = ChaseQuery(reduction.q(), reduction.sigma());
  ASSERT_TRUE(chase.saturated);
  EXPECT_EQ(chase.instance.size(), reduction.q().size())
      << "q must be closed under Σ";
}

TEST(PcpReductionTest, PathQueryShape) {
  ConjunctiveQuery path = PcpReduction::PathQuery("ab");
  // start + P# + 2 letters + Pa + Pa + P* + end = 8 atoms.
  EXPECT_EQ(path.size(), 8u);
  EXPECT_TRUE(IsAcyclic(path));
}

TEST(PcpReductionTest, SolutionWordYieldsEquivalentPathQuery) {
  // Instance with solution "aa"+"bb" vs "aabb": indices (1, 2).
  PcpInstance instance{{"aa", "bb"}, {"aabb", "bb"}};
  // tile 1: (aa, aabb); tile 2: (bb, bb). Solution: 1 then 2:
  // top = aabb, bottom = aabbbb? No: aabb vs aabb+... bottom= aabb bb.
  // Fix: use tiles (aa, aabb) and (bb, ""): empty words are awkward;
  // instead take the classic even instance below.
  PcpInstance solvable{{"aa", "bb"}, {"aabb", "bb"}};
  auto solution = SolvePcpBounded(solvable, 24);
  if (!solution.has_value()) {
    // Fall back to a guaranteed-solvable instance: identical tiles.
    solvable = PcpInstance{{"ab", "ba"}, {"ab", "ba"}};
    solution = SolvePcpBounded(solvable, 8);
  }
  ASSERT_TRUE(solution.has_value());
  PcpReduction reduction = PcpReduction::Build(solvable);
  EXPECT_TRUE(reduction.PathWitnessWorks(solution->word))
      << "solution word " << solution->word
      << " must make q map into chase(q',Σ)";
}

TEST(PcpReductionTest, NonSolutionWordFails) {
  PcpInstance instance{{"ab", "ba"}, {"ab", "ba"}};
  PcpReduction reduction = PcpReduction::Build(instance);
  // "aa" is not a solution word of this instance (words must be built
  // from matching tiles); the finalization rule never fires.
  EXPECT_FALSE(reduction.PathWitnessWorks("aa"));
  EXPECT_FALSE(reduction.PathWitnessWorks("bb"));
}

TEST(PcpReductionTest, SolutionGivesFullEquivalence) {
  PcpInstance instance{{"ab", "ba"}, {"ab", "ba"}};
  auto solution = SolvePcpBounded(instance, 8);
  ASSERT_TRUE(solution.has_value());
  PcpReduction reduction = PcpReduction::Build(instance);
  ConjunctiveQuery path = PcpReduction::PathQuery(solution->word);
  // q ≡Σ q' via both chase directions (full tgds: chases terminate).
  EXPECT_EQ(EquivalentUnder(reduction.q(), path, reduction.sigma()),
            Tri::kYes);
}

TEST(PcpReductionTest, SyncDerivationTracksPrefixPairs) {
  PcpInstance instance{{"ab", "ba"}, {"ab", "ba"}};
  PcpReduction reduction = PcpReduction::Build(instance);
  ConjunctiveQuery path = PcpReduction::PathQuery("ab");
  QueryChaseResult chase = ChaseQuery(path, reduction.sigma());
  ASSERT_TRUE(chase.saturated);
  // The initialization rule produces sync on the first word node, and the
  // synchronization rule walks matching prefixes: count sync atoms.
  size_t sync_atoms = 0;
  for (const Atom& a : chase.instance.atoms()) {
    if (a.predicate() == Predicate::Get("sync", 2)) ++sync_atoms;
  }
  EXPECT_GE(sync_atoms, 2u) << "init + at least one synchronization step";
}

}  // namespace
}  // namespace semacyc
