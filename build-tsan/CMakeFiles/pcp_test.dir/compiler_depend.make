# Empty compiler generated dependencies file for pcp_test.
# This may be replaced when dependencies are built.
