file(REMOVE_RECURSE
  "CMakeFiles/pcp_test.dir/tests/pcp_test.cc.o"
  "CMakeFiles/pcp_test.dir/tests/pcp_test.cc.o.d"
  "pcp_test"
  "pcp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
