file(REMOVE_RECURSE
  "CMakeFiles/incremental_hom_test.dir/tests/incremental_hom_test.cc.o"
  "CMakeFiles/incremental_hom_test.dir/tests/incremental_hom_test.cc.o.d"
  "incremental_hom_test"
  "incremental_hom_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_hom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
