# Empty compiler generated dependencies file for incremental_hom_test.
# This may be replaced when dependencies are built.
