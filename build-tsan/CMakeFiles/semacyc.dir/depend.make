# Empty dependencies file for semacyc.
# This may be replaced when dependencies are built.
