
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/acyclic/beta.cc" "CMakeFiles/semacyc.dir/src/acyclic/beta.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/acyclic/beta.cc.o.d"
  "/root/repo/src/acyclic/classify.cc" "CMakeFiles/semacyc.dir/src/acyclic/classify.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/acyclic/classify.cc.o.d"
  "/root/repo/src/acyclic/gamma.cc" "CMakeFiles/semacyc.dir/src/acyclic/gamma.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/acyclic/gamma.cc.o.d"
  "/root/repo/src/acyclic/gyo.cc" "CMakeFiles/semacyc.dir/src/acyclic/gyo.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/acyclic/gyo.cc.o.d"
  "/root/repo/src/acyclic/hypergraph.cc" "CMakeFiles/semacyc.dir/src/acyclic/hypergraph.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/acyclic/hypergraph.cc.o.d"
  "/root/repo/src/acyclic/incremental.cc" "CMakeFiles/semacyc.dir/src/acyclic/incremental.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/acyclic/incremental.cc.o.d"
  "/root/repo/src/acyclic/oracle.cc" "CMakeFiles/semacyc.dir/src/acyclic/oracle.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/acyclic/oracle.cc.o.d"
  "/root/repo/src/chase/dependency.cc" "CMakeFiles/semacyc.dir/src/chase/dependency.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/chase/dependency.cc.o.d"
  "/root/repo/src/chase/egd_chase.cc" "CMakeFiles/semacyc.dir/src/chase/egd_chase.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/chase/egd_chase.cc.o.d"
  "/root/repo/src/chase/query_chase.cc" "CMakeFiles/semacyc.dir/src/chase/query_chase.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/chase/query_chase.cc.o.d"
  "/root/repo/src/chase/tgd_chase.cc" "CMakeFiles/semacyc.dir/src/chase/tgd_chase.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/chase/tgd_chase.cc.o.d"
  "/root/repo/src/core/atom.cc" "CMakeFiles/semacyc.dir/src/core/atom.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/core/atom.cc.o.d"
  "/root/repo/src/core/canonical.cc" "CMakeFiles/semacyc.dir/src/core/canonical.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/core/canonical.cc.o.d"
  "/root/repo/src/core/containment.cc" "CMakeFiles/semacyc.dir/src/core/containment.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/core/containment.cc.o.d"
  "/root/repo/src/core/core_min.cc" "CMakeFiles/semacyc.dir/src/core/core_min.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/core/core_min.cc.o.d"
  "/root/repo/src/core/gaifman.cc" "CMakeFiles/semacyc.dir/src/core/gaifman.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/core/gaifman.cc.o.d"
  "/root/repo/src/core/homomorphism.cc" "CMakeFiles/semacyc.dir/src/core/homomorphism.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/core/homomorphism.cc.o.d"
  "/root/repo/src/core/hypergraph.cc" "CMakeFiles/semacyc.dir/src/core/hypergraph.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/core/hypergraph.cc.o.d"
  "/root/repo/src/core/incremental_hom.cc" "CMakeFiles/semacyc.dir/src/core/incremental_hom.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/core/incremental_hom.cc.o.d"
  "/root/repo/src/core/instance.cc" "CMakeFiles/semacyc.dir/src/core/instance.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/core/instance.cc.o.d"
  "/root/repo/src/core/interrupt.cc" "CMakeFiles/semacyc.dir/src/core/interrupt.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/core/interrupt.cc.o.d"
  "/root/repo/src/core/join_tree.cc" "CMakeFiles/semacyc.dir/src/core/join_tree.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/core/join_tree.cc.o.d"
  "/root/repo/src/core/obs.cc" "CMakeFiles/semacyc.dir/src/core/obs.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/core/obs.cc.o.d"
  "/root/repo/src/core/parser.cc" "CMakeFiles/semacyc.dir/src/core/parser.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/core/parser.cc.o.d"
  "/root/repo/src/core/query.cc" "CMakeFiles/semacyc.dir/src/core/query.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/core/query.cc.o.d"
  "/root/repo/src/core/term.cc" "CMakeFiles/semacyc.dir/src/core/term.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/core/term.cc.o.d"
  "/root/repo/src/core/worksteal.cc" "CMakeFiles/semacyc.dir/src/core/worksteal.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/core/worksteal.cc.o.d"
  "/root/repo/src/data/columnar.cc" "CMakeFiles/semacyc.dir/src/data/columnar.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/data/columnar.cc.o.d"
  "/root/repo/src/data/semijoin_program.cc" "CMakeFiles/semacyc.dir/src/data/semijoin_program.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/data/semijoin_program.cc.o.d"
  "/root/repo/src/deps/classify.cc" "CMakeFiles/semacyc.dir/src/deps/classify.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/deps/classify.cc.o.d"
  "/root/repo/src/deps/connecting.cc" "CMakeFiles/semacyc.dir/src/deps/connecting.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/deps/connecting.cc.o.d"
  "/root/repo/src/deps/nonrecursive.cc" "CMakeFiles/semacyc.dir/src/deps/nonrecursive.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/deps/nonrecursive.cc.o.d"
  "/root/repo/src/deps/sticky.cc" "CMakeFiles/semacyc.dir/src/deps/sticky.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/deps/sticky.cc.o.d"
  "/root/repo/src/deps/weakly_acyclic.cc" "CMakeFiles/semacyc.dir/src/deps/weakly_acyclic.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/deps/weakly_acyclic.cc.o.d"
  "/root/repo/src/eval/cover_game.cc" "CMakeFiles/semacyc.dir/src/eval/cover_game.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/eval/cover_game.cc.o.d"
  "/root/repo/src/eval/semac_eval.cc" "CMakeFiles/semacyc.dir/src/eval/semac_eval.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/eval/semac_eval.cc.o.d"
  "/root/repo/src/eval/yannakakis.cc" "CMakeFiles/semacyc.dir/src/eval/yannakakis.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/eval/yannakakis.cc.o.d"
  "/root/repo/src/gen/generators.cc" "CMakeFiles/semacyc.dir/src/gen/generators.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/gen/generators.cc.o.d"
  "/root/repo/src/pcp/pcp.cc" "CMakeFiles/semacyc.dir/src/pcp/pcp.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/pcp/pcp.cc.o.d"
  "/root/repo/src/pcp/reduction.cc" "CMakeFiles/semacyc.dir/src/pcp/reduction.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/pcp/reduction.cc.o.d"
  "/root/repo/src/rewrite/rewrite_containment.cc" "CMakeFiles/semacyc.dir/src/rewrite/rewrite_containment.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/rewrite/rewrite_containment.cc.o.d"
  "/root/repo/src/rewrite/ucq_rewriter.cc" "CMakeFiles/semacyc.dir/src/rewrite/ucq_rewriter.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/rewrite/ucq_rewriter.cc.o.d"
  "/root/repo/src/rewrite/unify.cc" "CMakeFiles/semacyc.dir/src/rewrite/unify.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/rewrite/unify.cc.o.d"
  "/root/repo/src/semacyc/approximation.cc" "CMakeFiles/semacyc.dir/src/semacyc/approximation.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/semacyc/approximation.cc.o.d"
  "/root/repo/src/semacyc/compaction.cc" "CMakeFiles/semacyc.dir/src/semacyc/compaction.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/semacyc/compaction.cc.o.d"
  "/root/repo/src/semacyc/decider.cc" "CMakeFiles/semacyc.dir/src/semacyc/decider.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/semacyc/decider.cc.o.d"
  "/root/repo/src/semacyc/engine.cc" "CMakeFiles/semacyc.dir/src/semacyc/engine.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/semacyc/engine.cc.o.d"
  "/root/repo/src/semacyc/ucq_semac.cc" "CMakeFiles/semacyc.dir/src/semacyc/ucq_semac.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/semacyc/ucq_semac.cc.o.d"
  "/root/repo/src/semacyc/witness_search.cc" "CMakeFiles/semacyc.dir/src/semacyc/witness_search.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/semacyc/witness_search.cc.o.d"
  "/root/repo/src/serve/protocol.cc" "CMakeFiles/semacyc.dir/src/serve/protocol.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/serve/protocol.cc.o.d"
  "/root/repo/src/serve/server.cc" "CMakeFiles/semacyc.dir/src/serve/server.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/serve/server.cc.o.d"
  "/root/repo/src/serve/worker_pool.cc" "CMakeFiles/semacyc.dir/src/serve/worker_pool.cc.o" "gcc" "CMakeFiles/semacyc.dir/src/serve/worker_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
