file(REMOVE_RECURSE
  "libsemacyc.a"
)
