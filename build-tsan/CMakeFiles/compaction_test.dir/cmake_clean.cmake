file(REMOVE_RECURSE
  "CMakeFiles/compaction_test.dir/tests/compaction_test.cc.o"
  "CMakeFiles/compaction_test.dir/tests/compaction_test.cc.o.d"
  "compaction_test"
  "compaction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compaction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
