# Empty compiler generated dependencies file for compaction_test.
# This may be replaced when dependencies are built.
