file(REMOVE_RECURSE
  "CMakeFiles/atom_instance_test.dir/tests/atom_instance_test.cc.o"
  "CMakeFiles/atom_instance_test.dir/tests/atom_instance_test.cc.o.d"
  "atom_instance_test"
  "atom_instance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atom_instance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
