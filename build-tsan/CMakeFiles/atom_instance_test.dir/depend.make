# Empty dependencies file for atom_instance_test.
# This may be replaced when dependencies are built.
