# Empty dependencies file for witness_pipeline_test.
# This may be replaced when dependencies are built.
