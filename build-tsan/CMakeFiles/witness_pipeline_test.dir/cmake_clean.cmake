file(REMOVE_RECURSE
  "CMakeFiles/witness_pipeline_test.dir/tests/witness_pipeline_test.cc.o"
  "CMakeFiles/witness_pipeline_test.dir/tests/witness_pipeline_test.cc.o.d"
  "witness_pipeline_test"
  "witness_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witness_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
