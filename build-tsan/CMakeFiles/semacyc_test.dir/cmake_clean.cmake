file(REMOVE_RECURSE
  "CMakeFiles/semacyc_test.dir/tests/semacyc_test.cc.o"
  "CMakeFiles/semacyc_test.dir/tests/semacyc_test.cc.o.d"
  "semacyc_test"
  "semacyc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semacyc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
