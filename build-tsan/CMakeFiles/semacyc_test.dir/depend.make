# Empty dependencies file for semacyc_test.
# This may be replaced when dependencies are built.
