# Empty dependencies file for ucq_semac_test.
# This may be replaced when dependencies are built.
