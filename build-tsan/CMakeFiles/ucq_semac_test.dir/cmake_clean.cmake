file(REMOVE_RECURSE
  "CMakeFiles/ucq_semac_test.dir/tests/ucq_semac_test.cc.o"
  "CMakeFiles/ucq_semac_test.dir/tests/ucq_semac_test.cc.o.d"
  "ucq_semac_test"
  "ucq_semac_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucq_semac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
