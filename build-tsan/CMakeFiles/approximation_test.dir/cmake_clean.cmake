file(REMOVE_RECURSE
  "CMakeFiles/approximation_test.dir/tests/approximation_test.cc.o"
  "CMakeFiles/approximation_test.dir/tests/approximation_test.cc.o.d"
  "approximation_test"
  "approximation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approximation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
