# Empty dependencies file for columnar_eval_test.
# This may be replaced when dependencies are built.
