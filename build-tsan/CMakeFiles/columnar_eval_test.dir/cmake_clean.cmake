file(REMOVE_RECURSE
  "CMakeFiles/columnar_eval_test.dir/tests/columnar_eval_test.cc.o"
  "CMakeFiles/columnar_eval_test.dir/tests/columnar_eval_test.cc.o.d"
  "columnar_eval_test"
  "columnar_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/columnar_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
