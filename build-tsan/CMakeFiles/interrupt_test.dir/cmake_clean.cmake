file(REMOVE_RECURSE
  "CMakeFiles/interrupt_test.dir/tests/interrupt_test.cc.o"
  "CMakeFiles/interrupt_test.dir/tests/interrupt_test.cc.o.d"
  "interrupt_test"
  "interrupt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interrupt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
