# Empty dependencies file for fingerprint_cache_test.
# This may be replaced when dependencies are built.
