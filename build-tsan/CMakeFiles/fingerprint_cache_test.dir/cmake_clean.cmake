file(REMOVE_RECURSE
  "CMakeFiles/fingerprint_cache_test.dir/tests/fingerprint_cache_test.cc.o"
  "CMakeFiles/fingerprint_cache_test.dir/tests/fingerprint_cache_test.cc.o.d"
  "fingerprint_cache_test"
  "fingerprint_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fingerprint_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
