# Empty dependencies file for parallel_decide_test.
# This may be replaced when dependencies are built.
