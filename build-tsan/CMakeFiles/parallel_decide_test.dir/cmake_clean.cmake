file(REMOVE_RECURSE
  "CMakeFiles/parallel_decide_test.dir/tests/parallel_decide_test.cc.o"
  "CMakeFiles/parallel_decide_test.dir/tests/parallel_decide_test.cc.o.d"
  "parallel_decide_test"
  "parallel_decide_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_decide_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
