file(REMOVE_RECURSE
  "CMakeFiles/containment_core_test.dir/tests/containment_core_test.cc.o"
  "CMakeFiles/containment_core_test.dir/tests/containment_core_test.cc.o.d"
  "containment_core_test"
  "containment_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/containment_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
