# Empty dependencies file for containment_core_test.
# This may be replaced when dependencies are built.
