#ifndef SEMACYC_GEN_GENERATORS_H_
#define SEMACYC_GEN_GENERATORS_H_

#include <random>
#include <string>
#include <vector>

#include "chase/dependency.h"
#include "core/instance.h"
#include "core/query.h"

namespace semacyc {

/// Deterministic workload generators for tests and benchmarks — the
/// synthetic substitute for the paper's non-existent datasets (DESIGN.md,
/// "Substitutions").
class Generator {
 public:
  explicit Generator(uint64_t seed) : rng_(seed) {}

  std::mt19937_64& rng() { return rng_; }
  /// Uniform integer in [lo, hi].
  int Uniform(int lo, int hi);

  /// A random acyclic CQ built from a random join tree: atom i shares one
  /// variable with its parent atom and owns fresh variables elsewhere.
  ConjunctiveQuery RandomAcyclicQuery(int num_atoms, int arity,
                                      int num_predicates,
                                      const std::string& pred_prefix = "R");

  /// The canonical cyclic query: a directed cycle x1 -> x2 -> ... -> x1.
  ConjunctiveQuery CycleQuery(int length, const std::string& pred = "E");

  /// The n-clique query over a binary edge predicate (maximally cyclic).
  ConjunctiveQuery CliqueQuery(int n, const std::string& pred = "E");

  /// Hierarchy families (acyclic/classify.h): Boolean queries whose body
  /// hypergraphs land *exactly* in a prescribed stratum of the acyclicity
  /// hierarchy. Each is a disjoint union of `gadgets` copies of a minimal
  /// separating witness over fresh variables — disjoint unions preserve
  /// both membership in each class and non-membership (all four cycle
  /// notions are connected), so the whole family classifies like one
  /// gadget while scaling to arbitrary size for tests and benches.

  /// α-acyclic but not β: a guarded triangle E(x,y),E(y,z),E(z,x),G(x,y,z)
  /// per gadget (dropping the guard leaves an α-cyclic triangle).
  ConjunctiveQuery AlphaNotBetaQuery(int gadgets);
  /// β-acyclic but not γ: P(x,y),P(y,z),T(x,y,z) per gadget (Fagin's
  /// minimal γ-cycle).
  ConjunctiveQuery BetaNotGammaQuery(int gadgets);
  /// γ-acyclic but not Berge: R(a,b,x),R(a,b,y) per gadget (two edges
  /// sharing two vertices form a Berge cycle but no γ-cycle).
  ConjunctiveQuery GammaNotBergeQuery(int gadgets);
  /// Berge-acyclic (hence γ, β and α): a random tree of `num_atoms` binary
  /// edges — every new atom links one existing variable to a fresh one, so
  /// the incidence graph stays a forest.
  ConjunctiveQuery BergeTreeQuery(int num_atoms, const std::string& pred = "E");

  /// A random database over the given predicates: `num_atoms` atoms with
  /// arguments drawn uniformly from `domain_size` constants.
  Instance RandomDatabase(const std::vector<Predicate>& predicates,
                          int num_atoms, int domain_size,
                          const std::string& const_prefix = "d");

  /// Random inclusion dependencies between the given predicates
  /// (projection of one predicate into another, no repeated variables).
  std::vector<Tgd> RandomInclusionDependencies(
      const std::vector<Predicate>& predicates, int count);

  /// Random guarded tgds: bodies with a guard atom over all variables plus
  /// side atoms over subsets; single-atom heads with optional existentials.
  std::vector<Tgd> RandomGuardedTgds(const std::vector<Predicate>& predicates,
                                     int count, int body_atoms);

 private:
  std::mt19937_64 rng_;
};

/// Example 1 of the paper, scaled: the music-store schema with the
/// compulsive-collector tgd, a database satisfying it, and the cyclic core
/// query q(x,y) that becomes acyclic under the tgd.
struct MusicStoreWorkload {
  ConjunctiveQuery q;    // q(x,y) :- Interest(x,z), Class(y,z), Owns(x,y)
  DependencySet sigma;   // Interest(x,z), Class(y,z) -> Owns(x,y)
  Instance database;     // satisfies sigma by construction
  int customers = 0;
  int records = 0;
  int styles = 0;
};

MusicStoreWorkload MakeMusicStoreWorkload(uint64_t seed, int customers,
                                          int records, int styles,
                                          double interest_prob);

/// Example 5 / Figure 4, scaled: an acyclic query over H/V/R whose chase
/// under two keys (an arity-4 key and a binary key — deliberately not K2)
/// contains a full (n+1) x (n+1) grid. The construction is a row-major
/// chain of "split squares": each square's bottom-right corner exists
/// twice (w1 via the bottom H-edge, w2 via the right V-edge); ǫ1 merges
/// the copies and ǫ2 knits neighbouring rows (see bench_fig4_key_grid).
struct KeyGridWorkload {
  ConjunctiveQuery q;            // acyclic by construction (GYO-verified)
  DependencySet sigma;           // ǫ1: R key on {1,2,3}; ǫ2: H key on {1}
  int n = 0;                     // cells per side
  /// Names of the left-column variables l_0..l_n (for inspection).
  std::vector<Term> left_column;
};

KeyGridWorkload MakeKeyGridWorkload(int n);

/// Example 4: q = R(x,y), S(x,y,z), S(x,z,w), S(x,w,v), R(x,v) with the
/// key R(x,y), R(x,z) -> y = z; one chase step destroys acyclicity.
struct KeySquareWorkload {
  ConjunctiveQuery q;
  DependencySet sigma;
};

KeySquareWorkload MakeKeySquareWorkload();

/// Example 2: q = P(x1), ..., P(xn); τ = P(x), P(y) -> R(x,y); the chase
/// puts an n-clique into the Gaifman graph.
struct CliqueChaseWorkload {
  ConjunctiveQuery q;
  DependencySet sigma;
  int n = 0;
};

CliqueChaseWorkload MakeCliqueChaseWorkload(int n);

/// Example 3: the sticky set whose UCQ rewritings necessarily have a
/// disjunct with 2^n atoms (f_S is exponential in the arity).
struct StickyBlowupWorkload {
  ConjunctiveQuery q;    // Boolean: P0(0,...,0,0,1)
  DependencySet sigma;   // n sticky tgds over arity-(n+2) predicates
  int n = 0;
};

StickyBlowupWorkload MakeStickyBlowupWorkload(int n);

/// Scalable evaluation workloads for the data plane (10⁴–10⁶ tuples):
/// one instance family plus the acyclic query shaped to it, sized by a
/// tuple budget. Used by bench_columnar_eval and the differential
/// columnar-vs-row tests. Instances dedup on insert, so a relation holds
/// *at most* its tuple budget (slightly fewer under small domains).
struct EvalWorkload {
  std::string name;
  ConjunctiveQuery q;  // acyclic by construction (star / path shaped)
  Instance database;
};

/// Star join: binary relations R1..R<spokes> over a shared hub column.
/// q(x) :- R1(x,y1), ..., R<spokes>(x,y<spokes>) — answers are the hubs
/// present in every relation (≤ `hubs`), so the output stays small while
/// the reduction streams every tuple.
EvalWorkload MakeStarEvalWorkload(uint64_t seed, int spokes,
                                  size_t tuples_per_relation, int hubs,
                                  int spoke_domain);

/// Path join: E1(x0,x1), E2(x1,x2), ..., E<length>(x<length-1>,x<length>)
/// over one shared `domain`; q(x0) keeps the output ≤ domain while every
/// connector variable must flow through the semi-join chain.
EvalWorkload MakePathEvalWorkload(uint64_t seed, int length,
                                  size_t tuples_per_relation, int domain);

/// Skewed join: q(x) :- R(x,y), S(y,z) where the join column y follows a
/// power law (value index = domain · u^skew, so skew > 1 piles mass onto
/// few hot keys). Stresses hash-bucket imbalance in the join/semijoin.
EvalWorkload MakeSkewEvalWorkload(uint64_t seed, size_t tuples_per_relation,
                                  int domain, double skew);

}  // namespace semacyc

#endif  // SEMACYC_GEN_GENERATORS_H_
