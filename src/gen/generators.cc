#include "gen/generators.h"

#include <cassert>
#include <cmath>

#include "core/hypergraph.h"

namespace semacyc {

int Generator::Uniform(int lo, int hi) {
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(rng_);
}

ConjunctiveQuery Generator::RandomAcyclicQuery(int num_atoms, int arity,
                                               int num_predicates,
                                               const std::string& prefix) {
  std::vector<Predicate> preds;
  for (int i = 0; i < num_predicates; ++i) {
    preds.push_back(Predicate::Get(prefix + std::to_string(i), arity));
  }
  std::vector<Atom> body;
  std::vector<std::vector<Term>> node_vars;
  for (int i = 0; i < num_atoms; ++i) {
    std::vector<Term> args;
    if (i == 0) {
      for (int a = 0; a < arity; ++a) args.push_back(FreshVariable());
    } else {
      // Share one variable with a random earlier atom; fresh elsewhere.
      int parent = Uniform(0, i - 1);
      Term shared =
          node_vars[parent][static_cast<size_t>(Uniform(0, arity - 1))];
      int shared_pos = Uniform(0, arity - 1);
      for (int a = 0; a < arity; ++a) {
        args.push_back(a == shared_pos ? shared : FreshVariable());
      }
    }
    node_vars.push_back(args);
    body.emplace_back(preds[static_cast<size_t>(Uniform(0, num_predicates - 1))],
                      args);
  }
  ConjunctiveQuery q({}, std::move(body));
  assert(IsAcyclic(q));
  return q;
}

ConjunctiveQuery Generator::CycleQuery(int length, const std::string& pred) {
  Predicate e = Predicate::Get(pred, 2);
  std::vector<Term> vars;
  for (int i = 0; i < length; ++i) {
    vars.push_back(Term::Variable("c" + std::to_string(i)));
  }
  std::vector<Atom> body;
  for (int i = 0; i < length; ++i) {
    body.push_back(Atom(e, {vars[static_cast<size_t>(i)],
                            vars[static_cast<size_t>((i + 1) % length)]}));
  }
  return ConjunctiveQuery({}, std::move(body));
}

ConjunctiveQuery Generator::CliqueQuery(int n, const std::string& pred) {
  Predicate e = Predicate::Get(pred, 2);
  std::vector<Term> vars;
  for (int i = 0; i < n; ++i) {
    vars.push_back(Term::Variable("k" + std::to_string(i)));
  }
  std::vector<Atom> body;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j) {
        body.push_back(Atom(e, {vars[static_cast<size_t>(i)],
                                vars[static_cast<size_t>(j)]}));
      }
    }
  }
  return ConjunctiveQuery({}, std::move(body));
}

ConjunctiveQuery Generator::AlphaNotBetaQuery(int gadgets) {
  Predicate e = Predicate::Get("AnbE", 2);
  Predicate g = Predicate::Get("AnbG", 3);
  std::vector<Atom> body;
  for (int i = 0; i < gadgets; ++i) {
    Term x = FreshVariable();
    Term y = FreshVariable();
    Term z = FreshVariable();
    body.push_back(Atom(e, {x, y}));
    body.push_back(Atom(e, {y, z}));
    body.push_back(Atom(e, {z, x}));
    body.push_back(Atom(g, {x, y, z}));
  }
  return ConjunctiveQuery({}, std::move(body));
}

ConjunctiveQuery Generator::BetaNotGammaQuery(int gadgets) {
  Predicate p = Predicate::Get("BngP", 2);
  Predicate t = Predicate::Get("BngT", 3);
  std::vector<Atom> body;
  for (int i = 0; i < gadgets; ++i) {
    Term x = FreshVariable();
    Term y = FreshVariable();
    Term z = FreshVariable();
    body.push_back(Atom(p, {x, y}));
    body.push_back(Atom(p, {y, z}));
    body.push_back(Atom(t, {x, y, z}));
  }
  return ConjunctiveQuery({}, std::move(body));
}

ConjunctiveQuery Generator::GammaNotBergeQuery(int gadgets) {
  Predicate r = Predicate::Get("GnbR", 3);
  std::vector<Atom> body;
  for (int i = 0; i < gadgets; ++i) {
    Term a = FreshVariable();
    Term b = FreshVariable();
    body.push_back(Atom(r, {a, b, FreshVariable()}));
    body.push_back(Atom(r, {a, b, FreshVariable()}));
  }
  return ConjunctiveQuery({}, std::move(body));
}

ConjunctiveQuery Generator::BergeTreeQuery(int num_atoms,
                                           const std::string& pred) {
  Predicate e = Predicate::Get(pred, 2);
  std::vector<Term> vars = {FreshVariable()};
  std::vector<Atom> body;
  for (int i = 0; i < num_atoms; ++i) {
    Term parent =
        vars[static_cast<size_t>(Uniform(0, static_cast<int>(vars.size()) - 1))];
    Term child = FreshVariable();
    body.push_back(Atom(e, {parent, child}));
    vars.push_back(child);
  }
  return ConjunctiveQuery({}, std::move(body));
}

Instance Generator::RandomDatabase(const std::vector<Predicate>& predicates,
                                   int num_atoms, int domain_size,
                                   const std::string& const_prefix) {
  std::vector<Term> domain;
  for (int i = 0; i < domain_size; ++i) {
    domain.push_back(Term::Constant(const_prefix + std::to_string(i)));
  }
  Instance db;
  // Attempt cap: with small domains the number of distinct atoms is
  // bounded (sum of domain^arity), so requesting more must not spin.
  long attempts = static_cast<long>(num_atoms) * 50 + 1000;
  while (static_cast<int>(db.size()) < num_atoms && attempts-- > 0) {
    Predicate p = predicates[static_cast<size_t>(
        Uniform(0, static_cast<int>(predicates.size()) - 1))];
    std::vector<Term> args;
    for (int a = 0; a < p.arity(); ++a) {
      args.push_back(domain[static_cast<size_t>(Uniform(0, domain_size - 1))]);
    }
    db.Insert(Atom(p, std::move(args)));
  }
  return db;
}

std::vector<Tgd> Generator::RandomInclusionDependencies(
    const std::vector<Predicate>& predicates, int count) {
  std::vector<Tgd> out;
  for (int i = 0; i < count; ++i) {
    Predicate from = predicates[static_cast<size_t>(
        Uniform(0, static_cast<int>(predicates.size()) - 1))];
    Predicate to = predicates[static_cast<size_t>(
        Uniform(0, static_cast<int>(predicates.size()) - 1))];
    std::vector<Term> body_args;
    for (int a = 0; a < from.arity(); ++a) body_args.push_back(FreshVariable());
    // Head: each position either a distinct body variable or existential.
    std::vector<Term> head_args;
    for (int a = 0; a < to.arity(); ++a) {
      if (!body_args.empty() && Uniform(0, 1) == 0) {
        // Use a body variable not yet used in the head (ID: no repeats).
        std::vector<Term> unused;
        for (Term b : body_args) {
          bool used = false;
          for (Term h : head_args) {
            if (h == b) used = true;
          }
          if (!used) unused.push_back(b);
        }
        if (!unused.empty()) {
          head_args.push_back(unused[static_cast<size_t>(
              Uniform(0, static_cast<int>(unused.size()) - 1))]);
          continue;
        }
      }
      head_args.push_back(FreshVariable());
    }
    out.emplace_back(std::vector<Atom>{Atom(from, body_args)},
                     std::vector<Atom>{Atom(to, head_args)});
    assert(out.back().IsInclusionDependency());
  }
  return out;
}

std::vector<Tgd> Generator::RandomGuardedTgds(
    const std::vector<Predicate>& predicates, int count, int body_atoms) {
  std::vector<Tgd> out;
  for (int i = 0; i < count; ++i) {
    // Guard: the widest predicate, with distinct variables.
    Predicate guard = predicates[0];
    for (Predicate p : predicates) {
      if (p.arity() > guard.arity()) guard = p;
    }
    std::vector<Term> guard_args;
    for (int a = 0; a < guard.arity(); ++a) {
      guard_args.push_back(FreshVariable());
    }
    std::vector<Atom> body = {Atom(guard, guard_args)};
    for (int b = 1; b < body_atoms; ++b) {
      Predicate p = predicates[static_cast<size_t>(
          Uniform(0, static_cast<int>(predicates.size()) - 1))];
      std::vector<Term> args;
      for (int a = 0; a < p.arity(); ++a) {
        args.push_back(guard_args[static_cast<size_t>(
            Uniform(0, guard.arity() - 1))]);
      }
      body.push_back(Atom(p, std::move(args)));
    }
    Predicate hp = predicates[static_cast<size_t>(
        Uniform(0, static_cast<int>(predicates.size()) - 1))];
    std::vector<Term> head_args;
    for (int a = 0; a < hp.arity(); ++a) {
      if (Uniform(0, 2) == 0) {
        head_args.push_back(FreshVariable());  // existential
      } else {
        head_args.push_back(guard_args[static_cast<size_t>(
            Uniform(0, guard.arity() - 1))]);
      }
    }
    out.emplace_back(std::move(body),
                     std::vector<Atom>{Atom(hp, std::move(head_args))});
    assert(out.back().IsGuarded());
  }
  return out;
}

MusicStoreWorkload MakeMusicStoreWorkload(uint64_t seed, int customers,
                                          int records, int styles,
                                          double interest_prob) {
  MusicStoreWorkload w;
  w.customers = customers;
  w.records = records;
  w.styles = styles;
  Predicate interest = Predicate::Get("Interest", 2);
  Predicate cls = Predicate::Get("Class", 2);
  Predicate owns = Predicate::Get("Owns", 2);

  Term x = Term::Variable("x");
  Term y = Term::Variable("y");
  Term z = Term::Variable("z");
  w.q = ConjunctiveQuery(
      {x, y},
      {Atom(interest, {x, z}), Atom(cls, {y, z}), Atom(owns, {x, y})});
  w.sigma.tgds.emplace_back(
      std::vector<Atom>{Atom(interest, {x, z}), Atom(cls, {y, z})},
      std::vector<Atom>{Atom(owns, {x, y})});

  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<int> style_of(0, styles - 1);
  std::vector<Term> style_terms, customer_terms, record_terms;
  for (int s = 0; s < styles; ++s) {
    style_terms.push_back(Term::Constant("style" + std::to_string(s)));
  }
  for (int c = 0; c < customers; ++c) {
    customer_terms.push_back(Term::Constant("cust" + std::to_string(c)));
  }
  for (int r = 0; r < records; ++r) {
    record_terms.push_back(Term::Constant("rec" + std::to_string(r)));
    w.database.Insert(Atom(
        cls, {record_terms.back(),
              style_terms[static_cast<size_t>(style_of(rng))]}));
  }
  for (int c = 0; c < customers; ++c) {
    for (int s = 0; s < styles; ++s) {
      if (coin(rng) < interest_prob) {
        w.database.Insert(
            Atom(interest, {customer_terms[static_cast<size_t>(c)],
                            style_terms[static_cast<size_t>(s)]}));
      }
    }
  }
  // Close under the compulsive-collector tgd so database |= sigma.
  for (int c = 0; c < customers; ++c) {
    for (int r = 0; r < records; ++r) {
      for (int s = 0; s < styles; ++s) {
        Atom i_atom(interest, {customer_terms[static_cast<size_t>(c)],
                               style_terms[static_cast<size_t>(s)]});
        Atom c_atom(cls, {record_terms[static_cast<size_t>(r)],
                          style_terms[static_cast<size_t>(s)]});
        if (w.database.Contains(i_atom) && w.database.Contains(c_atom)) {
          w.database.Insert(
              Atom(owns, {customer_terms[static_cast<size_t>(c)],
                          record_terms[static_cast<size_t>(r)]}));
        }
      }
    }
  }
  return w;
}

KeyGridWorkload MakeKeyGridWorkload(int n) {
  KeyGridWorkload w;
  w.n = n;
  Predicate H = Predicate::Get("H", 2);
  Predicate V = Predicate::Get("V", 2);
  Predicate R = Predicate::Get("R", 4);

  // ǫ1: R(x,y,z,w), R(x,y,z,w') -> w = w'.
  {
    Term x = Term::Variable("e1x"), y = Term::Variable("e1y"),
         z = Term::Variable("e1z"), u = Term::Variable("e1w"),
         v = Term::Variable("e1v");
    w.sigma.egds.emplace_back(
        std::vector<Atom>{Atom(R, {x, y, z, u}), Atom(R, {x, y, z, v})}, u,
        v);
  }
  // ǫ2: H(x,y), H(x,z) -> y = z.
  {
    Term x = Term::Variable("e2x"), y = Term::Variable("e2y"),
         z = Term::Variable("e2z");
    w.sigma.egds.emplace_back(
        std::vector<Atom>{Atom(H, {x, y}), Atom(H, {x, z})}, y, z);
  }

  auto var = [](const std::string& name) { return Term::Variable(name); };
  std::vector<Atom> body;
  // Left column l_0..l_n.
  std::vector<Term> l;
  for (int i = 0; i <= n; ++i) {
    l.push_back(var("l" + std::to_string(i)));
    if (i > 0) body.push_back(Atom(V, {l[static_cast<size_t>(i - 1)],
                                       l[static_cast<size_t>(i)]}));
  }
  w.left_column = l;

  // Split-square gadgets, row-major. T[i][c], W1[i][c], W2[i][c].
  auto T = [&](int i, int c) {
    return var("t_" + std::to_string(i) + "_" + std::to_string(c));
  };
  auto W1 = [&](int i, int c) {
    return var("w1_" + std::to_string(i) + "_" + std::to_string(c));
  };
  auto W2 = [&](int i, int c) {
    return var("w2_" + std::to_string(i) + "_" + std::to_string(c));
  };
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < n; ++c) {
      Term tl = (c == 0) ? l[static_cast<size_t>(i)] : T(i, c - 1);
      Term bl = (c == 0) ? l[static_cast<size_t>(i + 1)] : W2(i, c - 1);
      Term tr = T(i, c);
      Term w1 = W1(i, c);
      Term w2 = W2(i, c);
      body.push_back(Atom(H, {tl, tr}));        // top edge
      body.push_back(Atom(H, {bl, w1}));        // bottom edge (split BR #1)
      body.push_back(Atom(V, {tr, w2}));        // right edge (split BR #2)
      body.push_back(Atom(R, {tl, tr, bl, w1}));
      body.push_back(Atom(R, {tl, tr, bl, w2}));
    }
  }
  w.q = ConjunctiveQuery({}, std::move(body));
  assert(IsAcyclic(w.q));
  return w;
}

KeySquareWorkload MakeKeySquareWorkload() {
  KeySquareWorkload w;
  Predicate R = Predicate::Get("R2", 2);
  Predicate S = Predicate::Get("S3", 3);
  Term x = Term::Variable("x"), y = Term::Variable("y"),
       z = Term::Variable("z"), u = Term::Variable("w"),
       v = Term::Variable("v");
  w.q = ConjunctiveQuery({}, {Atom(R, {x, y}), Atom(S, {x, y, z}),
                              Atom(S, {x, z, u}), Atom(S, {x, u, v}),
                              Atom(R, {x, v})});
  Term kx = Term::Variable("kx"), ky = Term::Variable("ky"),
       kz = Term::Variable("kz");
  w.sigma.egds.emplace_back(
      std::vector<Atom>{Atom(R, {kx, ky}), Atom(R, {kx, kz})}, ky, kz);
  return w;
}

CliqueChaseWorkload MakeCliqueChaseWorkload(int n) {
  CliqueChaseWorkload w;
  w.n = n;
  Predicate P = Predicate::Get("P", 1);
  Predicate R = Predicate::Get("Rclq", 2);
  std::vector<Atom> body;
  for (int i = 0; i < n; ++i) {
    body.push_back(Atom(P, {Term::Variable("x" + std::to_string(i))}));
  }
  w.q = ConjunctiveQuery({}, std::move(body));
  Term x = Term::Variable("cx"), y = Term::Variable("cy");
  w.sigma.tgds.emplace_back(
      std::vector<Atom>{Atom(P, {x}), Atom(P, {y})},
      std::vector<Atom>{Atom(R, {x, y})});
  return w;
}

StickyBlowupWorkload MakeStickyBlowupWorkload(int n) {
  StickyBlowupWorkload w;
  w.n = n;
  const int arity = n + 2;
  std::vector<Predicate> P;
  for (int i = 0; i <= n; ++i) {
    P.push_back(Predicate::Get("Pblow" + std::to_string(i), arity));
  }
  Term Z = Term::Variable("Z"), O = Term::Variable("O");
  for (int i = 1; i <= n; ++i) {
    // P_i(x1..x_{i-1}, Z, x_{i+1}..x_n, Z, O),
    // P_i(x1..x_{i-1}, O, x_{i+1}..x_n, Z, O) -> P_{i-1}(.., Z, .., Z, O).
    std::vector<Term> base;
    for (int j = 1; j <= n; ++j) {
      base.push_back(Term::Variable("bx" + std::to_string(j)));
    }
    auto make_args = [&](Term at_i) {
      std::vector<Term> args = base;
      args[static_cast<size_t>(i - 1)] = at_i;
      args.push_back(Z);
      args.push_back(O);
      return args;
    };
    std::vector<Atom> body = {
        Atom(P[static_cast<size_t>(i)], make_args(Z)),
        Atom(P[static_cast<size_t>(i)], make_args(O))};
    std::vector<Atom> head = {Atom(P[static_cast<size_t>(i - 1)],
                                   make_args(Z))};
    w.sigma.tgds.emplace_back(std::move(body), std::move(head));
  }
  Term zero = Term::Constant("0");
  Term one = Term::Constant("1");
  std::vector<Term> qargs(static_cast<size_t>(arity - 1), zero);
  qargs.push_back(one);
  w.q = ConjunctiveQuery({}, {Atom(P[0], qargs)});
  return w;
}

namespace {

/// `n` constants named <prefix>0..<prefix>(n-1), interned once up front so
/// million-tuple generation never touches the string interner per tuple.
std::vector<Term> ConstantPool(const std::string& prefix, int n) {
  std::vector<Term> pool;
  pool.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    pool.push_back(Term::Constant(prefix + std::to_string(i)));
  }
  return pool;
}

}  // namespace

EvalWorkload MakeStarEvalWorkload(uint64_t seed, int spokes,
                                  size_t tuples_per_relation, int hubs,
                                  int spoke_domain) {
  assert(spokes >= 1 && hubs >= 1 && spoke_domain >= 1);
  EvalWorkload w;
  w.name = "star" + std::to_string(spokes) + "_n" +
           std::to_string(tuples_per_relation);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> hub_of(0, hubs - 1);
  std::uniform_int_distribution<int> spoke_of(0, spoke_domain - 1);
  std::vector<Term> hub_pool = ConstantPool("h", hubs);
  std::vector<Term> spoke_pool = ConstantPool("s", spoke_domain);

  Term x = Term::Variable("x");
  std::vector<Atom> body;
  w.database.Reserve(tuples_per_relation * static_cast<size_t>(spokes));
  for (int i = 0; i < spokes; ++i) {
    Predicate r = Predicate::Get("R" + std::to_string(i + 1), 2);
    body.push_back(Atom(r, {x, Term::Variable("y" + std::to_string(i + 1))}));
    for (size_t t = 0; t < tuples_per_relation; ++t) {
      w.database.Insert(
          Atom(r, {hub_pool[static_cast<size_t>(hub_of(rng))],
                   spoke_pool[static_cast<size_t>(spoke_of(rng))]}));
    }
  }
  w.q = ConjunctiveQuery({x}, std::move(body));
  return w;
}

EvalWorkload MakePathEvalWorkload(uint64_t seed, int length,
                                  size_t tuples_per_relation, int domain) {
  assert(length >= 1 && domain >= 1);
  EvalWorkload w;
  w.name = "path" + std::to_string(length) + "_n" +
           std::to_string(tuples_per_relation);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> node_of(0, domain - 1);
  std::vector<Term> pool = ConstantPool("v", domain);

  std::vector<Term> xs;
  for (int i = 0; i <= length; ++i) {
    xs.push_back(Term::Variable("x" + std::to_string(i)));
  }
  std::vector<Atom> body;
  w.database.Reserve(tuples_per_relation * static_cast<size_t>(length));
  for (int i = 0; i < length; ++i) {
    Predicate e = Predicate::Get("E" + std::to_string(i + 1), 2);
    body.push_back(Atom(e, {xs[static_cast<size_t>(i)],
                            xs[static_cast<size_t>(i) + 1]}));
    for (size_t t = 0; t < tuples_per_relation; ++t) {
      w.database.Insert(
          Atom(e, {pool[static_cast<size_t>(node_of(rng))],
                   pool[static_cast<size_t>(node_of(rng))]}));
    }
  }
  w.q = ConjunctiveQuery({xs[0]}, std::move(body));
  return w;
}

EvalWorkload MakeSkewEvalWorkload(uint64_t seed, size_t tuples_per_relation,
                                  int domain, double skew) {
  assert(domain >= 1 && skew >= 1.0);
  EvalWorkload w;
  w.name = "skew_n" + std::to_string(tuples_per_relation);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::uniform_int_distribution<int> flat(0, domain - 1);
  std::vector<Term> pool = ConstantPool("k", domain);
  // Power-law index: u^skew concentrates toward 0 for skew > 1, so a few
  // hot keys absorb most of the mass (the hash-imbalance stressor).
  auto skewed = [&]() {
    int i = static_cast<int>(static_cast<double>(domain) * std::pow(u(rng),
                                                                    skew));
    return pool[static_cast<size_t>(std::min(i, domain - 1))];
  };

  Predicate r = Predicate::Get("Rsk", 2);
  Predicate s = Predicate::Get("Ssk", 2);
  Term x = Term::Variable("x");
  Term y = Term::Variable("y");
  Term z = Term::Variable("z");
  w.database.Reserve(tuples_per_relation * 2);
  for (size_t t = 0; t < tuples_per_relation; ++t) {
    w.database.Insert(
        Atom(r, {pool[static_cast<size_t>(flat(rng))], skewed()}));
    w.database.Insert(
        Atom(s, {skewed(), pool[static_cast<size_t>(flat(rng))]}));
  }
  w.q = ConjunctiveQuery({x}, {Atom(r, {x, y}), Atom(s, {y, z})});
  return w;
}

}  // namespace semacyc
