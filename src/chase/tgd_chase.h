#ifndef SEMACYC_CHASE_TGD_CHASE_H_
#define SEMACYC_CHASE_TGD_CHASE_H_

#include <cstddef>
#include <string>

#include "chase/dependency.h"
#include "core/instance.h"
#include "core/interrupt.h"

namespace semacyc {

/// Chase configuration.
struct ChaseOptions {
  enum class Variant {
    /// Standard/restricted chase: fire a trigger only when the head is not
    /// already satisfied by an extension of the trigger (§2 semantics).
    kRestricted,
    /// Oblivious chase: fire every trigger exactly once. Used for the
    /// worst-case constructions (Examples 2 and 3).
    kOblivious,
  };
  Variant variant = Variant::kRestricted;

  /// Stop after this many trigger firings (0 = unlimited).
  size_t max_steps = 200000;
  /// Stop once the instance holds this many atoms (0 = unlimited).
  size_t max_atoms = 2000000;
  /// Stop after this many chase rounds / null-generation depth
  /// (0 = unlimited). A "round" adds all triggers visible at round start.
  size_t max_rounds = 0;
  /// Cooperative cancellation token polled alongside every budget check
  /// (nullptr = not cancellable, the default). A fired token stops the
  /// chase exactly like an exhausted budget: the result reports
  /// saturated = false, so every downstream consumer already treats it as
  /// a truncated prefix.
  CancelToken* cancel = nullptr;
};

/// Outcome of a chase run.
struct ChaseResult {
  Instance instance;
  /// True iff the chase reached a fixpoint: no applicable trigger remains.
  /// When false, `instance` is a finite prefix of some (possibly infinite)
  /// chase result.
  bool saturated = false;
  /// True iff an egd tried to merge two distinct genuine constants.
  bool failed = false;
  size_t steps = 0;
  size_t rounds = 0;
  /// For egd chases: the accumulated term merges, mapping each original
  /// term to its final representative.
  Substitution term_map;

  /// Resolves a term through `term_map` (identity if unmapped).
  Term Resolve(Term t) const;

  std::string Summary() const;
};

/// Chases `start` with tgds only. Fair scheduling (round-robin over rounds,
/// anchored on newly derived atoms), so every applicable trigger is
/// eventually fired.
ChaseResult ChaseTgds(const Instance& start, const std::vector<Tgd>& tgds,
                      const ChaseOptions& options = {});

/// Chases `start` with a full dependency set (tgds + egds interleaved:
/// each tgd round is followed by an egd fixpoint).
ChaseResult Chase(const Instance& start, const DependencySet& sigma,
                  const ChaseOptions& options = {});

/// Does `instance` satisfy the dependency set? (Definition in §2: for tgds
/// via containment of the body query in the head query; for egds via
/// absence of violating homomorphisms.)
bool Satisfies(const Instance& instance, const DependencySet& sigma);
bool Satisfies(const Instance& instance, const Tgd& tgd);
bool Satisfies(const Instance& instance, const Egd& egd);

}  // namespace semacyc

#endif  // SEMACYC_CHASE_TGD_CHASE_H_
