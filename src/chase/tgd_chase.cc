#include "chase/tgd_chase.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "chase/egd_chase.h"
#include "core/homomorphism.h"

namespace semacyc {

Term ChaseResult::Resolve(Term t) const {
  // term_map entries always point to representatives that are themselves
  // resolved (the egd chase maintains this), but walk defensively.
  Term cur = t;
  for (int i = 0; i < 64; ++i) {
    auto it = term_map.find(cur);
    if (it == term_map.end() || it->second == cur) return cur;
    cur = it->second;
  }
  return cur;
}

std::string ChaseResult::Summary() const {
  std::string out = "chase: " + std::to_string(instance.size()) + " atoms, " +
                    std::to_string(steps) + " steps, " +
                    std::to_string(rounds) + " rounds, ";
  out += saturated ? "saturated" : "truncated";
  if (failed) out += ", FAILED";
  return out;
}

namespace {

/// A canonical string key for a trigger: tgd index plus the images of its
/// body variables. Used to avoid re-firing the same trigger (this is what
/// makes the oblivious chase "fire every trigger once", and saves the
/// restricted chase from re-deriving).
std::string TriggerKey(size_t tgd_index, const Tgd& tgd,
                       const Substitution& h) {
  std::string key = std::to_string(tgd_index) + "|";
  for (Term v : tgd.body_variables()) {
    key += std::to_string(Apply(h, v).raw_bits()) + ",";
  }
  return key;
}

/// Restricted-chase applicability: the head, with the frontier bound as in
/// the trigger, already maps into the instance.
bool HeadSatisfied(const Instance& instance, const Tgd& tgd,
                   const Substitution& h, CancelToken* cancel) {
  HomOptions options;
  for (Term v : tgd.frontier()) options.fixed.emplace(v, Apply(h, v));
  options.cancel = cancel;
  // A cancelled check conservatively reports "not satisfied": the trigger
  // fires redundantly, and the fired token then truncates the chase at
  // the next budget check (saturated = false), so no answer depends on it.
  return FindHomomorphisms(tgd.head(), instance, options).found;
}

/// Fires the trigger: adds head atoms with fresh nulls for existential
/// variables. Returns number of new atoms.
size_t FireTrigger(Instance* instance, const Tgd& tgd, const Substitution& h) {
  Substitution full = h;
  for (Term z : tgd.existential_variables()) full[z] = Term::FreshNull();
  size_t added = 0;
  for (const Atom& head_atom : tgd.head()) {
    if (instance->Insert(Apply(full, head_atom))) ++added;
  }
  return added;
}

/// Enumerates the homomorphisms of `tgd`'s body into `instance` where the
/// body atom at `anchor_index` maps to the instance atom `anchor_atom`.
std::vector<Substitution> AnchoredBodyHoms(const Instance& instance,
                                           const Tgd& tgd, size_t anchor_index,
                                           uint32_t anchor_atom,
                                           CancelToken* cancel) {
  const Atom& pattern = tgd.body()[anchor_index];
  const Atom& target = instance.atom(anchor_atom);
  if (pattern.predicate() != target.predicate()) return {};
  Substitution fixed;
  for (size_t pos = 0; pos < pattern.arity(); ++pos) {
    Term s = pattern.arg(pos);
    Term d = target.arg(pos);
    if (s.IsVariable()) {
      auto it = fixed.find(s);
      if (it != fixed.end()) {
        if (it->second != d) return {};
      } else {
        fixed.emplace(s, d);
      }
    } else if (s != d) {
      return {};
    }
  }
  HomOptions options;
  options.fixed = std::move(fixed);
  options.max_solutions = 0;  // all
  options.cancel = cancel;
  HomResult result = FindHomomorphisms(tgd.body(), instance, options);
  return std::move(result.solutions);
}

struct Budget {
  const ChaseOptions& options;
  size_t steps = 0;
  bool Exhausted(const Instance& instance, size_t rounds) const {
    // A fired cancellation token truncates exactly like a budget: every
    // call site already maps "exhausted" to saturated = false.
    if (options.cancel != nullptr && options.cancel->Poll()) return true;
    if (options.max_steps > 0 && steps >= options.max_steps) return true;
    if (options.max_atoms > 0 && instance.size() >= options.max_atoms) {
      return true;
    }
    if (options.max_rounds > 0 && rounds >= options.max_rounds) return true;
    return false;
  }
};

}  // namespace

ChaseResult ChaseTgds(const Instance& start, const std::vector<Tgd>& tgds,
                      const ChaseOptions& options) {
  ChaseResult result;
  result.instance = start;
  std::unordered_set<std::string> fired;
  Budget budget{options};

  // Delta-driven rounds: in round 0 consider every atom "new".
  std::vector<uint32_t> delta(result.instance.size());
  for (size_t i = 0; i < delta.size(); ++i) delta[i] = static_cast<uint32_t>(i);

  bool hit_budget = false;
  while (!delta.empty() && !hit_budget) {
    SEMACYC_FAILPOINT("chase.round", options.cancel);
    if (budget.Exhausted(result.instance, result.rounds)) {
      hit_budget = true;
      break;
    }
    ++result.rounds;
    size_t size_before = result.instance.size();
    for (size_t ti = 0; ti < tgds.size() && !hit_budget; ++ti) {
      const Tgd& tgd = tgds[ti];
      for (size_t bi = 0; bi < tgd.body().size() && !hit_budget; ++bi) {
        for (uint32_t atom_idx : delta) {
          if (budget.Exhausted(result.instance, result.rounds)) {
            hit_budget = true;
            break;
          }
          for (Substitution& h : AnchoredBodyHoms(result.instance, tgd, bi,
                                                  atom_idx, options.cancel)) {
            std::string key = TriggerKey(ti, tgd, h);
            if (!fired.insert(key).second) continue;
            if (options.variant == ChaseOptions::Variant::kRestricted &&
                HeadSatisfied(result.instance, tgd, h, options.cancel)) {
              continue;
            }
            FireTrigger(&result.instance, tgd, h);
            ++budget.steps;
            if (budget.Exhausted(result.instance, result.rounds)) {
              hit_budget = true;
              break;
            }
          }
          if (hit_budget) break;
        }
      }
    }
    delta.clear();
    for (size_t i = size_before; i < result.instance.size(); ++i) {
      delta.push_back(static_cast<uint32_t>(i));
    }
  }

  result.steps = budget.steps;
  result.saturated = !hit_budget;
  return result;
}

ChaseResult Chase(const Instance& start, const DependencySet& sigma,
                  const ChaseOptions& options) {
  if (!sigma.HasEgds()) return ChaseTgds(start, sigma.tgds, options);

  ChaseResult result;
  result.instance = start;
  Budget budget{options};

  // Interleave: egd fixpoint, then one full tgd saturation round, repeat.
  // Each phase runs on the merged instance; term merges are accumulated.
  bool changed = true;
  bool hit_budget = false;
  while (changed && !hit_budget) {
    changed = false;
    // Egd fixpoint.
    EgdChaseResult egd_result = ChaseEgds(result.instance, sigma.egds,
                                          &result.term_map, options.cancel);
    if (egd_result.changed) changed = true;
    result.instance = std::move(egd_result.instance);
    if (egd_result.failed) {
      result.failed = true;
      result.saturated = true;
      return result;
    }
    if (egd_result.truncated) {
      hit_budget = true;
      break;
    }
    if (!sigma.HasTgds()) break;
    // One bounded tgd phase: run rounds until fixpoint or budget.
    ChaseOptions phase = options;
    if (options.max_steps > 0) {
      if (budget.steps >= options.max_steps) {
        hit_budget = true;
        break;
      }
      phase.max_steps = options.max_steps - budget.steps;
    }
    ChaseResult tgd_result = ChaseTgds(result.instance, sigma.tgds, phase);
    budget.steps += tgd_result.steps;
    result.rounds += tgd_result.rounds;
    if (tgd_result.instance.size() != result.instance.size()) changed = true;
    result.instance = std::move(tgd_result.instance);
    if (!tgd_result.saturated) hit_budget = true;
  }

  result.steps = budget.steps;
  result.saturated = !hit_budget;
  return result;
}

bool Satisfies(const Instance& instance, const Tgd& tgd) {
  HomOptions options;
  options.max_solutions = 0;
  HomResult result = FindHomomorphisms(tgd.body(), instance, options);
  for (const Substitution& h : result.solutions) {
    Substitution fixed;
    for (Term v : tgd.frontier()) fixed.emplace(v, Apply(h, v));
    if (!HasHomomorphism(tgd.head(), instance, fixed)) return false;
  }
  return true;
}

bool Satisfies(const Instance& instance, const Egd& egd) {
  HomOptions options;
  options.max_solutions = 0;
  HomResult result = FindHomomorphisms(egd.body(), instance, options);
  for (const Substitution& h : result.solutions) {
    if (Apply(h, egd.lhs()) != Apply(h, egd.rhs())) return false;
  }
  return true;
}

bool Satisfies(const Instance& instance, const DependencySet& sigma) {
  for (const Tgd& t : sigma.tgds) {
    if (!Satisfies(instance, t)) return false;
  }
  for (const Egd& e : sigma.egds) {
    if (!Satisfies(instance, e)) return false;
  }
  return true;
}

}  // namespace semacyc
