#ifndef SEMACYC_CHASE_DEPENDENCY_H_
#define SEMACYC_CHASE_DEPENDENCY_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/parser.h"
#include "core/query.h"

namespace semacyc {

/// A tuple-generating dependency φ(x̄,ȳ) → ∃z̄ ψ(x̄,z̄) (§2). Body and head
/// are conjunctions of atoms over variables and constants; head variables
/// that do not occur in the body are (implicitly) existentially quantified.
class Tgd {
 public:
  Tgd() = default;
  Tgd(std::vector<Atom> body, std::vector<Atom> head);

  const std::vector<Atom>& body() const { return body_; }
  const std::vector<Atom>& head() const { return head_; }

  /// Distinct variables of the body, in first-occurrence order.
  const std::vector<Term>& body_variables() const { return body_vars_; }
  /// Body variables that also occur in the head (the frontier x̄).
  const std::vector<Term>& frontier() const { return frontier_; }
  /// Head variables that do not occur in the body (the z̄).
  const std::vector<Term>& existential_variables() const {
    return existential_vars_;
  }

  /// No existentially quantified head variables (Datalog rule).
  bool IsFull() const { return existential_vars_.empty(); }
  /// Some body atom (a guard) contains all body variables.
  bool IsGuarded() const;
  /// Index of a guard atom, or -1.
  int GuardIndex() const;
  /// Single-atom body.
  bool IsLinear() const { return body_.size() == 1; }
  /// Linear, single head atom, and no repeated variables in body or head.
  bool IsInclusionDependency() const;
  /// The Gaifman graph of the body is connected (§3.2).
  bool IsBodyConnected() const;

  std::string ToString() const;

 private:
  std::vector<Atom> body_;
  std::vector<Atom> head_;
  std::vector<Term> body_vars_;
  std::vector<Term> frontier_;
  std::vector<Term> existential_vars_;
};

/// An equality-generating dependency φ(x̄) → x_i = x_j (§2).
class Egd {
 public:
  Egd() = default;
  Egd(std::vector<Atom> body, Term lhs, Term rhs);

  const std::vector<Atom>& body() const { return body_; }
  Term lhs() const { return lhs_; }
  Term rhs() const { return rhs_; }

  std::string ToString() const;

 private:
  std::vector<Atom> body_;
  Term lhs_;
  Term rhs_;
};

/// A functional dependency R : A → B over attribute positions (1-based in
/// the paper; 0-based here). Compiles to egds; IsKey per §2.
struct FunctionalDependency {
  Predicate predicate;
  std::vector<int> lhs;
  std::vector<int> rhs;

  /// One egd per right-hand attribute (the paper's encoding).
  std::vector<Egd> ToEgds() const;
  /// A ∪ B covers all attributes.
  bool IsKey() const;
  /// |A| = 1 (unary FD; Theorem 23's extension / [Figueira]).
  bool IsUnary() const { return lhs.size() == 1; }

  std::string ToString() const;
};

/// A finite set of dependencies: tgds and/or egds.
struct DependencySet {
  std::vector<Tgd> tgds;
  std::vector<Egd> egds;

  bool HasTgds() const { return !tgds.empty(); }
  bool HasEgds() const { return !egds.empty(); }
  size_t size() const { return tgds.size() + egds.size(); }

  /// Predicates mentioned anywhere in the set.
  std::vector<Predicate> Predicates() const;
  /// Maximum arity over all mentioned predicates.
  int MaxArity() const;

  std::string ToString() const;
};

/// Parses one dependency: "body -> head" where head is an atom list (tgd)
/// or "x = y" (egd). See core/parser.h for the token syntax.
ParseResult<Tgd> ParseTgd(std::string_view text);
ParseResult<Egd> ParseEgd(std::string_view text);

/// Parses a whole set: statements separated by '.' or newlines; '%'
/// comments allowed.
ParseResult<DependencySet> ParseDependencySet(std::string_view text);

Tgd MustParseTgd(std::string_view text);
Egd MustParseEgd(std::string_view text);
DependencySet MustParseDependencySet(std::string_view text);

}  // namespace semacyc

#endif  // SEMACYC_CHASE_DEPENDENCY_H_
