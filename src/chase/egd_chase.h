#ifndef SEMACYC_CHASE_EGD_CHASE_H_
#define SEMACYC_CHASE_EGD_CHASE_H_

#include "chase/dependency.h"
#include "core/instance.h"
#include "core/interrupt.h"

namespace semacyc {

/// Result of an egd chase (always finite, §2).
struct EgdChaseResult {
  Instance instance;
  /// True iff a merge of two distinct genuine constants was demanded.
  bool failed = false;
  /// True iff at least one merge happened.
  bool changed = false;
  /// True iff cancellation stopped the run before the fixpoint: the
  /// instance may still hold unrepaired violations and must not be
  /// treated as egd-satisfying.
  bool truncated = false;
  size_t merges = 0;
};

/// Runs the egd chase to fixpoint. Merging rules (§2): constant beats null
/// (the null is replaced everywhere); null-null merges keep the first term;
/// constant-constant conflicts fail the chase.
///
/// Frozen-query chases freeze variables to *nulls*, which realizes the
/// paper's "special constants that are treated as nulls" device.
///
/// `term_map`, when non-null, accumulates the merges: after the call,
/// resolving any prior term through the map yields its representative.
/// `cancel` (nullptr = not cancellable) is polled per repaired violation
/// and inside the violation search; a fired token returns early with
/// `truncated` set.
EgdChaseResult ChaseEgds(const Instance& start, const std::vector<Egd>& egds,
                         Substitution* term_map = nullptr,
                         CancelToken* cancel = nullptr);

}  // namespace semacyc

#endif  // SEMACYC_CHASE_EGD_CHASE_H_
