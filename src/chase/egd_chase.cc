#include "chase/egd_chase.h"

#include <cassert>

#include "core/homomorphism.h"

namespace semacyc {
namespace {

/// Finds one violating homomorphism for `egd` (body maps, equality fails).
std::optional<Substitution> FindViolation(const Instance& instance,
                                          const Egd& egd,
                                          CancelToken* cancel) {
  HomOptions options;
  options.max_solutions = 0;
  options.cancel = cancel;
  HomResult result = FindHomomorphisms(egd.body(), instance, options);
  for (Substitution& h : result.solutions) {
    if (Apply(h, egd.lhs()) != Apply(h, egd.rhs())) return std::move(h);
  }
  return std::nullopt;
}

}  // namespace

EgdChaseResult ChaseEgds(const Instance& start, const std::vector<Egd>& egds,
                         Substitution* term_map, CancelToken* cancel) {
  EgdChaseResult result;
  result.instance = start;
  if (egds.empty()) return result;

  bool progress = true;
  while (progress) {
    progress = false;
    for (const Egd& egd : egds) {
      while (true) {
        if (cancel != nullptr && cancel->Poll()) {
          // A violation may remain unrepaired; the caller must treat the
          // instance as an unfinished fixpoint, never as satisfied.
          result.truncated = true;
          return result;
        }
        std::optional<Substitution> h =
            FindViolation(result.instance, egd, cancel);
        if (cancel != nullptr && cancel->triggered()) {
          result.truncated = true;
          return result;
        }
        if (!h.has_value()) break;
        Term a = Apply(*h, egd.lhs());
        Term b = Apply(*h, egd.rhs());
        assert(a != b);
        if (a.IsConstant() && b.IsConstant()) {
          result.failed = true;
          return result;
        }
        // Constant wins; otherwise keep `a` as representative.
        Term keep = a, drop = b;
        if (b.IsConstant()) {
          keep = b;
          drop = a;
        }
        result.instance.ReplaceTerm(drop, keep);
        if (term_map != nullptr) {
          // Re-point everything that resolved to `drop`.
          for (auto& [from, to] : *term_map) {
            if (to == drop) to = keep;
          }
          (*term_map)[drop] = keep;
        }
        ++result.merges;
        result.changed = true;
        progress = true;
      }
    }
  }
  return result;
}

}  // namespace semacyc
