#include "chase/dependency.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <unordered_set>

namespace semacyc {
namespace {

std::vector<Term> DistinctVariables(const std::vector<Atom>& atoms) {
  std::vector<Term> out;
  std::unordered_set<Term> seen;
  for (const Atom& a : atoms) {
    for (Term t : a.args()) {
      if (t.IsVariable() && seen.insert(t).second) out.push_back(t);
    }
  }
  return out;
}

}  // namespace

Tgd::Tgd(std::vector<Atom> body, std::vector<Atom> head)
    : body_(std::move(body)), head_(std::move(head)) {
  assert(!body_.empty() && !head_.empty());
  body_vars_ = DistinctVariables(body_);
  std::unordered_set<Term> body_set(body_vars_.begin(), body_vars_.end());
  std::vector<Term> head_vars = DistinctVariables(head_);
  for (Term v : head_vars) {
    if (!body_set.count(v)) existential_vars_.push_back(v);
  }
  std::unordered_set<Term> head_set(head_vars.begin(), head_vars.end());
  for (Term v : body_vars_) {
    if (head_set.count(v)) frontier_.push_back(v);
  }
}

int Tgd::GuardIndex() const {
  for (size_t i = 0; i < body_.size(); ++i) {
    bool covers = true;
    for (Term v : body_vars_) {
      if (!body_[i].Mentions(v)) {
        covers = false;
        break;
      }
    }
    if (covers) return static_cast<int>(i);
  }
  return -1;
}

bool Tgd::IsGuarded() const { return GuardIndex() >= 0; }

bool Tgd::IsInclusionDependency() const {
  if (body_.size() != 1 || head_.size() != 1) return false;
  auto no_repeats = [](const Atom& a) {
    return a.DistinctTerms().size() == a.arity();
  };
  auto all_vars = [](const Atom& a) {
    for (Term t : a.args()) {
      if (!t.IsVariable()) return false;
    }
    return true;
  };
  return no_repeats(body_[0]) && no_repeats(head_[0]) && all_vars(body_[0]) &&
         all_vars(head_[0]);
}

bool Tgd::IsBodyConnected() const {
  ConjunctiveQuery body_query({}, body_);
  return body_query.IsConnected();
}

std::string Tgd::ToString() const {
  return AtomsToString(body_) + " -> " + AtomsToString(head_);
}

Egd::Egd(std::vector<Atom> body, Term lhs, Term rhs)
    : body_(std::move(body)), lhs_(lhs), rhs_(rhs) {
  assert(!body_.empty());
  assert(lhs_.IsVariable() && rhs_.IsVariable());
#ifndef NDEBUG
  bool found_l = false, found_r = false;
  for (const Atom& a : body_) {
    if (a.Mentions(lhs_)) found_l = true;
    if (a.Mentions(rhs_)) found_r = true;
  }
  assert(found_l && found_r && "egd equality variables must occur in body");
#endif
}

std::string Egd::ToString() const {
  return AtomsToString(body_) + " -> " + lhs_.ToString() + " = " +
         rhs_.ToString();
}

std::vector<Egd> FunctionalDependency::ToEgds() const {
  // R(x1..xn), R(y1..yn) with xi = yi on A, and one egd per attribute in B.
  const int n = predicate.arity();
  std::vector<Term> xs, ys;
  for (int i = 0; i < n; ++i) {
    xs.push_back(Term::Variable("fdx" + std::to_string(i)));
    ys.push_back(Term::Variable("fdy" + std::to_string(i)));
  }
  for (int a : lhs) ys[a] = xs[a];
  std::vector<Egd> out;
  for (int b : rhs) {
    if (std::find(lhs.begin(), lhs.end(), b) != lhs.end()) continue;
    std::vector<Atom> body = {Atom(predicate, xs), Atom(predicate, ys)};
    out.emplace_back(std::move(body), xs[b], ys[b]);
  }
  return out;
}

bool FunctionalDependency::IsKey() const {
  std::unordered_set<int> covered(lhs.begin(), lhs.end());
  covered.insert(rhs.begin(), rhs.end());
  return static_cast<int>(covered.size()) == predicate.arity();
}

std::string FunctionalDependency::ToString() const {
  std::string out = predicate.name() + " : {";
  for (size_t i = 0; i < lhs.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(lhs[i] + 1);
  }
  out += "} -> {";
  for (size_t i = 0; i < rhs.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(rhs[i] + 1);
  }
  out += "}";
  return out;
}

std::vector<Predicate> DependencySet::Predicates() const {
  std::vector<Predicate> out;
  auto add = [&out](const std::vector<Atom>& atoms) {
    for (const Atom& a : atoms) {
      if (std::find(out.begin(), out.end(), a.predicate()) == out.end()) {
        out.push_back(a.predicate());
      }
    }
  };
  for (const Tgd& t : tgds) {
    add(t.body());
    add(t.head());
  }
  for (const Egd& e : egds) add(e.body());
  return out;
}

int DependencySet::MaxArity() const {
  int m = 0;
  for (Predicate p : Predicates()) m = std::max(m, p.arity());
  return m;
}

std::string DependencySet::ToString() const {
  std::string out;
  for (const Tgd& t : tgds) out += t.ToString() + ".\n";
  for (const Egd& e : egds) out += e.ToString() + ".\n";
  return out;
}

namespace {

/// Parses the atoms before '->'; returns false on error.
bool ParseBody(Lexer* lexer, std::vector<Atom>* body, std::string* error) {
  while (true) {
    // Inline a small atom parser over the shared lexer.
    Token name = lexer->Next();
    if (name.kind != Token::kIdent) {
      *error = "expected predicate name";
      return false;
    }
    if (lexer->Next().kind != Token::kLParen) {
      *error = "expected '('";
      return false;
    }
    std::vector<Term> args;
    if (lexer->Peek().kind == Token::kRParen) {
      lexer->Next();
    } else {
      while (true) {
        Token t = lexer->Next();
        if (t.kind == Token::kIdent) {
          args.push_back(Term::Variable(t.text));
        } else if (t.kind == Token::kConstant) {
          args.push_back(Term::Constant(t.text));
        } else {
          *error = "expected term";
          return false;
        }
        Token sep = lexer->Next();
        if (sep.kind == Token::kComma) continue;
        if (sep.kind == Token::kRParen) break;
        *error = "expected ',' or ')'";
        return false;
      }
    }
    body->push_back(
        Atom(Predicate::Get(name.text, static_cast<int>(args.size())), args));
    Token sep = lexer->Peek();
    if (sep.kind == Token::kComma) {
      lexer->Next();
      continue;
    }
    return true;
  }
}

enum class DepKind { kTgd, kEgd, kError };

/// Parses one dependency starting at the lexer; used by both the single
/// and the set parser.
DepKind ParseOneDependency(Lexer* lexer, Tgd* tgd, Egd* egd,
                           std::string* error) {
  std::vector<Atom> body;
  if (!ParseBody(lexer, &body, error)) return DepKind::kError;
  if (lexer->Next().kind != Token::kArrow) {
    *error = "expected '->'";
    return DepKind::kError;
  }
  // Lookahead: "ident =" means egd; "ident (" means tgd head atom.
  Token first = lexer->Next();
  if (first.kind != Token::kIdent) {
    *error = "expected head";
    return DepKind::kError;
  }
  Token second = lexer->Peek();
  if (second.kind == Token::kEquals) {
    lexer->Next();  // consume '='
    Token rhs = lexer->Next();
    if (rhs.kind != Token::kIdent) {
      *error = "expected variable after '='";
      return DepKind::kError;
    }
    *egd = Egd(std::move(body), Term::Variable(first.text),
               Term::Variable(rhs.text));
    return DepKind::kEgd;
  }
  // Tgd: re-parse the head atom list; we already consumed the predicate
  // name, so parse its argument list here then continue with ParseBody.
  if (lexer->Next().kind != Token::kLParen) {
    *error = "expected '(' in head atom";
    return DepKind::kError;
  }
  std::vector<Atom> head;
  std::vector<Term> args;
  if (lexer->Peek().kind == Token::kRParen) {
    lexer->Next();
  } else {
    while (true) {
      Token t = lexer->Next();
      if (t.kind == Token::kIdent) {
        args.push_back(Term::Variable(t.text));
      } else if (t.kind == Token::kConstant) {
        args.push_back(Term::Constant(t.text));
      } else {
        *error = "expected term in head atom";
        return DepKind::kError;
      }
      Token sep = lexer->Next();
      if (sep.kind == Token::kComma) continue;
      if (sep.kind == Token::kRParen) break;
      *error = "expected ',' or ')' in head atom";
      return DepKind::kError;
    }
  }
  head.push_back(
      Atom(Predicate::Get(first.text, static_cast<int>(args.size())), args));
  if (lexer->Peek().kind == Token::kComma) {
    lexer->Next();
    if (!ParseBody(lexer, &head, error)) return DepKind::kError;
  }
  *tgd = Tgd(std::move(body), std::move(head));
  return DepKind::kTgd;
}

}  // namespace

ParseResult<Tgd> ParseTgd(std::string_view text) {
  ParseResult<Tgd> result;
  Lexer lexer(text);
  Tgd tgd;
  Egd egd;
  std::string error;
  DepKind kind = ParseOneDependency(&lexer, &tgd, &egd, &error);
  if (kind == DepKind::kError) {
    result.error = error;
    return result;
  }
  if (kind != DepKind::kTgd) {
    result.error = "expected a tgd, found an egd";
    return result;
  }
  Token tail = lexer.Next();
  if (tail.kind == Token::kDot) tail = lexer.Next();
  if (tail.kind != Token::kEnd) {
    result.error = "trailing input";
    return result;
  }
  result.value = std::move(tgd);
  return result;
}

ParseResult<Egd> ParseEgd(std::string_view text) {
  ParseResult<Egd> result;
  Lexer lexer(text);
  Tgd tgd;
  Egd egd;
  std::string error;
  DepKind kind = ParseOneDependency(&lexer, &tgd, &egd, &error);
  if (kind == DepKind::kError) {
    result.error = error;
    return result;
  }
  if (kind != DepKind::kEgd) {
    result.error = "expected an egd, found a tgd";
    return result;
  }
  Token tail = lexer.Next();
  if (tail.kind == Token::kDot) tail = lexer.Next();
  if (tail.kind != Token::kEnd) {
    result.error = "trailing input";
    return result;
  }
  result.value = std::move(egd);
  return result;
}

ParseResult<DependencySet> ParseDependencySet(std::string_view text) {
  ParseResult<DependencySet> result;
  DependencySet set;
  Lexer lexer(text);
  while (true) {
    if (lexer.Peek().kind == Token::kEnd) break;
    Tgd tgd;
    Egd egd;
    std::string error;
    DepKind kind = ParseOneDependency(&lexer, &tgd, &egd, &error);
    if (kind == DepKind::kError) {
      result.error = error;
      return result;
    }
    if (kind == DepKind::kTgd) {
      set.tgds.push_back(std::move(tgd));
    } else {
      set.egds.push_back(std::move(egd));
    }
    Token sep = lexer.Peek();
    if (sep.kind == Token::kDot) {
      lexer.Next();
      continue;
    }
    if (sep.kind == Token::kEnd) break;
    // Statements may also be separated by nothing but whitespace; any other
    // token restarts a dependency parse.
  }
  result.value = std::move(set);
  return result;
}

Tgd MustParseTgd(std::string_view text) {
  ParseResult<Tgd> result = ParseTgd(text);
  if (!result.ok()) {
    std::fprintf(stderr, "MustParseTgd(\"%.*s\"): %s\n",
                 static_cast<int>(text.size()), text.data(),
                 result.error.c_str());
    std::abort();
  }
  return *result.value;
}

Egd MustParseEgd(std::string_view text) {
  ParseResult<Egd> result = ParseEgd(text);
  if (!result.ok()) {
    std::fprintf(stderr, "MustParseEgd(\"%.*s\"): %s\n",
                 static_cast<int>(text.size()), text.data(),
                 result.error.c_str());
    std::abort();
  }
  return *result.value;
}

DependencySet MustParseDependencySet(std::string_view text) {
  ParseResult<DependencySet> result = ParseDependencySet(text);
  if (!result.ok()) {
    std::fprintf(stderr, "MustParseDependencySet: %s\n",
                 result.error.c_str());
    std::abort();
  }
  return *result.value;
}

}  // namespace semacyc
