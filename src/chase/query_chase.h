#ifndef SEMACYC_CHASE_QUERY_CHASE_H_
#define SEMACYC_CHASE_QUERY_CHASE_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "chase/tgd_chase.h"
#include "core/fingerprint_cache.h"
#include "core/query.h"

namespace semacyc {

/// chase(q, Σ): the chase of the canonical database of q (§2). Variables
/// are frozen to fresh *nulls* — the paper's "special constants treated as
/// nulls" — so that egds may merge them.
struct QueryChaseResult {
  Instance instance;
  /// Images of the head terms after any egd merges.
  std::vector<Term> frozen_head;
  /// Final representative of each query variable.
  Substitution var_to_frozen;
  bool saturated = false;
  bool failed = false;
  size_t steps = 0;
  /// Wall time of the chase that built this result (observability; a
  /// cache-served result still reports the original build cost).
  int64_t build_ns = 0;

  /// Approximate heap footprint (cache byte accounting).
  size_t ApproxBytes() const;
};

QueryChaseResult ChaseQuery(const ConjunctiveQuery& q,
                            const DependencySet& sigma,
                            const ChaseOptions& options = {});

/// FingerprintCache matcher giving the chase memo isomorphism resolution:
/// the chase instance freezes variables to anonymous nulls and its
/// frozen_head is aligned with the head position-wise, so for a query q'
/// isomorphic to a cached q both transport verbatim — only var_to_frozen
/// is keyed by q's variables, and it is renamed through the witnessing
/// bijection σ (σ(q) = q', heads position-wise). The adapted result is
/// inserted under q' by the cache, so each α-renamed variant pays the
/// adaptation (one instance copy) once and exact-hits afterwards.
struct ChaseIsoMatch {
  static std::shared_ptr<const QueryChaseResult> Resolve(
      const ConjunctiveQuery& key,
      const std::shared_ptr<const QueryChaseResult>& value,
      const ConjunctiveQuery& probe);
};

/// Thread-safe memo of chase(q, Σ) for a *fixed* Σ and ChaseOptions — a
/// FingerprintCache keyed by the canonical fingerprint of q, resolved by
/// exact query equality with iso-resolution fallback (ChaseIsoMatch: an
/// α-renamed variant of a cached query is served the cached chase with
/// var_to_frozen renamed under the bijection). One lives inside each
/// semacyc::Engine: Decide/Approximate/DecideUcq runs against one schema
/// share the chase instead of re-deriving it per entrypoint and per repeat
/// call. Neither Σ nor the options participate in the key — use one cache
/// per (Σ, options).
class QueryChaseCache {
 public:
  QueryChaseCache() = default;
  explicit QueryChaseCache(const CacheConfig& config) : cache_(config) {}

  /// Returns the cached chase of q, or computes and inserts it. The chase
  /// runs outside the lock; a racing insert of the same query keeps the
  /// first entry, so every caller sees one result object. A chase
  /// truncated by options.cancel is never memoized and comes back as
  /// nullptr. `inserted` (optional) reports whether this call computed
  /// and stored a fresh entry — the abort-rollback hook.
  std::shared_ptr<const QueryChaseResult> GetOrCompute(
      const ConjunctiveQuery& q, const DependencySet& sigma,
      const ChaseOptions& options, bool* inserted = nullptr);

  /// Drops the entry stored under exactly q, if resident (abort rollback;
  /// see FingerprintCache::Erase).
  bool Erase(const ConjunctiveQuery& q) {
    return cache_.Erase(CanonicalFingerprint(q), q);
  }

  size_t hits() const { return cache_.hits(); }
  size_t misses() const { return cache_.misses(); }
  CacheStats Stats() const { return cache_.Stats(); }
  void Trim(size_t target_bytes) { cache_.Trim(target_bytes); }

 private:
  FingerprintCache<QueryChaseResult, ChaseIsoMatch> cache_;
};

/// Three-valued answers for chase-based decision procedures whose chase
/// may have been truncated.
enum class Tri { kYes, kNo, kUnknown };

const char* ToString(Tri t);

/// q1 ⊆Σ q2 via Lemma 1: c(x̄) ∈ q2(chase(q1, Σ)).
///
///  * kYes is always sound: a homomorphism into a chase prefix extends to
///    the full chase result; a failing chase makes containment vacuous.
///  * kNo is reported only when the chase saturated (exact).
///  * kUnknown when the chase was truncated and no homomorphism was found.
Tri ContainedUnder(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                   const DependencySet& sigma, const ChaseOptions& options = {});

/// q1 ≡Σ q2 (both containments).
Tri EquivalentUnder(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                    const DependencySet& sigma,
                    const ChaseOptions& options = {});

/// UCQ generalization used by §8.1: q ⊆Σ Q iff some disjunct of Q maps
/// into chase(q, Σ).
Tri ContainedUnder(const ConjunctiveQuery& q, const UnionQuery& Q,
                   const DependencySet& sigma, const ChaseOptions& options = {});

}  // namespace semacyc

#endif  // SEMACYC_CHASE_QUERY_CHASE_H_
