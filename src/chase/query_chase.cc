#include "chase/query_chase.h"

#include <cassert>

#include "core/homomorphism.h"

namespace semacyc {

const char* ToString(Tri t) {
  switch (t) {
    case Tri::kYes:
      return "yes";
    case Tri::kNo:
      return "no";
    case Tri::kUnknown:
      return "unknown";
  }
  return "?";
}

QueryChaseResult ChaseQuery(const ConjunctiveQuery& q,
                            const DependencySet& sigma,
                            const ChaseOptions& options) {
  FrozenQuery frozen = Freeze(q, TermKind::kNull);
  ChaseResult chase = Chase(frozen.instance, sigma, options);
  QueryChaseResult result;
  result.instance = std::move(chase.instance);
  result.saturated = chase.saturated;
  result.failed = chase.failed;
  result.steps = chase.steps;
  for (const auto& [var, frozen_term] : frozen.var_to_frozen) {
    result.var_to_frozen[var] = chase.Resolve(frozen_term);
  }
  result.frozen_head.reserve(frozen.frozen_head.size());
  for (Term t : frozen.frozen_head) {
    result.frozen_head.push_back(chase.Resolve(t));
  }
  return result;
}

Tri ContainedUnder(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                   const DependencySet& sigma, const ChaseOptions& options) {
  assert(q1.arity() == q2.arity());
  QueryChaseResult chased = ChaseQuery(q1, sigma, options);
  if (chased.failed) return Tri::kYes;  // q1 is empty on every model of Σ
  if (EvaluatesTo(q2, chased.instance, chased.frozen_head)) return Tri::kYes;
  return chased.saturated ? Tri::kNo : Tri::kUnknown;
}

Tri EquivalentUnder(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                    const DependencySet& sigma, const ChaseOptions& options) {
  Tri forward = ContainedUnder(q1, q2, sigma, options);
  if (forward == Tri::kNo) return Tri::kNo;
  Tri backward = ContainedUnder(q2, q1, sigma, options);
  if (backward == Tri::kNo) return Tri::kNo;
  if (forward == Tri::kYes && backward == Tri::kYes) return Tri::kYes;
  return Tri::kUnknown;
}

Tri ContainedUnder(const ConjunctiveQuery& q, const UnionQuery& Q,
                   const DependencySet& sigma, const ChaseOptions& options) {
  QueryChaseResult chased = ChaseQuery(q, sigma, options);
  if (chased.failed) return Tri::kYes;
  for (const ConjunctiveQuery& d : Q.disjuncts()) {
    if (d.arity() != q.arity()) continue;
    if (EvaluatesTo(d, chased.instance, chased.frozen_head)) return Tri::kYes;
  }
  return chased.saturated ? Tri::kNo : Tri::kUnknown;
}

}  // namespace semacyc
