#include "chase/query_chase.h"

#include <cassert>
#include <chrono>

#include "core/canonical.h"
#include "core/homomorphism.h"

namespace semacyc {

const char* ToString(Tri t) {
  switch (t) {
    case Tri::kYes:
      return "yes";
    case Tri::kNo:
      return "no";
    case Tri::kUnknown:
      return "unknown";
  }
  return "?";
}

QueryChaseResult ChaseQuery(const ConjunctiveQuery& q,
                            const DependencySet& sigma,
                            const ChaseOptions& options) {
  auto t0 = std::chrono::steady_clock::now();
  FrozenQuery frozen = Freeze(q, TermKind::kNull);
  ChaseResult chase = Chase(frozen.instance, sigma, options);
  QueryChaseResult result;
  result.build_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  result.instance = std::move(chase.instance);
  result.saturated = chase.saturated;
  result.failed = chase.failed;
  result.steps = chase.steps;
  for (const auto& [var, frozen_term] : frozen.var_to_frozen) {
    result.var_to_frozen[var] = chase.Resolve(frozen_term);
  }
  result.frozen_head.reserve(frozen.frozen_head.size());
  for (Term t : frozen.frozen_head) {
    result.frozen_head.push_back(chase.Resolve(t));
  }
  return result;
}

size_t QueryChaseResult::ApproxBytes() const {
  return sizeof(QueryChaseResult) + instance.ApproxBytes() +
         frozen_head.size() * sizeof(Term) +
         var_to_frozen.size() * (2 * sizeof(Term) + 4 * sizeof(void*));
}

std::shared_ptr<const QueryChaseResult> ChaseIsoMatch::Resolve(
    const ConjunctiveQuery& key,
    const std::shared_ptr<const QueryChaseResult>& value,
    const ConjunctiveQuery& probe) {
  std::optional<Substitution> iso = FindIsomorphism(key, probe);
  if (!iso.has_value()) return nullptr;
  // The instance's frozen nulls are anonymous and frozen_head is aligned
  // with the head position-wise (preserved by the bijection), so both
  // transport verbatim; only var_to_frozen needs the rename σ(v) → frozen.
  auto adapted = std::make_shared<QueryChaseResult>();
  adapted->instance = value->instance;
  adapted->frozen_head = value->frozen_head;
  adapted->saturated = value->saturated;
  adapted->failed = value->failed;
  adapted->steps = value->steps;
  adapted->build_ns = value->build_ns;
  adapted->var_to_frozen.reserve(value->var_to_frozen.size());
  for (const auto& [var, frozen] : value->var_to_frozen) {
    adapted->var_to_frozen.emplace(Apply(*iso, var), frozen);
  }
  return adapted;
}

std::shared_ptr<const QueryChaseResult> QueryChaseCache::GetOrCompute(
    const ConjunctiveQuery& q, const DependencySet& sigma,
    const ChaseOptions& options, bool* inserted) {
  return cache_.GetOrCompute(
      q, [&]() -> std::shared_ptr<const QueryChaseResult> {
        auto computed = std::make_shared<const QueryChaseResult>(
            ChaseQuery(q, sigma, options));
        // A chase truncated by cancellation (as opposed to its own step
        // budgets) must not be memoized: the caller is aborting, and a
        // later uncancelled run must recompute the full artifact.
        if (options.cancel != nullptr && options.cancel->triggered()) {
          return nullptr;
        }
        if (inserted != nullptr) *inserted = true;
        return computed;
      });
}

Tri ContainedUnder(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                   const DependencySet& sigma, const ChaseOptions& options) {
  assert(q1.arity() == q2.arity());
  QueryChaseResult chased = ChaseQuery(q1, sigma, options);
  if (chased.failed) return Tri::kYes;  // q1 is empty on every model of Σ
  if (EvaluatesTo(q2, chased.instance, chased.frozen_head, options.cancel)) {
    return Tri::kYes;  // a found homomorphism is sound even when cancelled
  }
  if (options.cancel != nullptr && options.cancel->triggered()) {
    return Tri::kUnknown;  // the hom search may have been truncated
  }
  return chased.saturated ? Tri::kNo : Tri::kUnknown;
}

Tri EquivalentUnder(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                    const DependencySet& sigma, const ChaseOptions& options) {
  Tri forward = ContainedUnder(q1, q2, sigma, options);
  if (forward == Tri::kNo) return Tri::kNo;
  Tri backward = ContainedUnder(q2, q1, sigma, options);
  if (backward == Tri::kNo) return Tri::kNo;
  if (forward == Tri::kYes && backward == Tri::kYes) return Tri::kYes;
  return Tri::kUnknown;
}

Tri ContainedUnder(const ConjunctiveQuery& q, const UnionQuery& Q,
                   const DependencySet& sigma, const ChaseOptions& options) {
  QueryChaseResult chased = ChaseQuery(q, sigma, options);
  if (chased.failed) return Tri::kYes;
  for (const ConjunctiveQuery& d : Q.disjuncts()) {
    if (d.arity() != q.arity()) continue;
    if (EvaluatesTo(d, chased.instance, chased.frozen_head, options.cancel)) {
      return Tri::kYes;
    }
  }
  if (options.cancel != nullptr && options.cancel->triggered()) {
    return Tri::kUnknown;
  }
  return chased.saturated ? Tri::kNo : Tri::kUnknown;
}

}  // namespace semacyc
