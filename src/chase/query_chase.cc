#include "chase/query_chase.h"

#include <cassert>

#include "core/canonical.h"
#include "core/homomorphism.h"

namespace semacyc {

const char* ToString(Tri t) {
  switch (t) {
    case Tri::kYes:
      return "yes";
    case Tri::kNo:
      return "no";
    case Tri::kUnknown:
      return "unknown";
  }
  return "?";
}

QueryChaseResult ChaseQuery(const ConjunctiveQuery& q,
                            const DependencySet& sigma,
                            const ChaseOptions& options) {
  FrozenQuery frozen = Freeze(q, TermKind::kNull);
  ChaseResult chase = Chase(frozen.instance, sigma, options);
  QueryChaseResult result;
  result.instance = std::move(chase.instance);
  result.saturated = chase.saturated;
  result.failed = chase.failed;
  result.steps = chase.steps;
  for (const auto& [var, frozen_term] : frozen.var_to_frozen) {
    result.var_to_frozen[var] = chase.Resolve(frozen_term);
  }
  result.frozen_head.reserve(frozen.frozen_head.size());
  for (Term t : frozen.frozen_head) {
    result.frozen_head.push_back(chase.Resolve(t));
  }
  return result;
}

std::shared_ptr<const QueryChaseResult> QueryChaseCache::Find(
    uint64_t fp, const ConjunctiveQuery& q) const {
  auto it = map_.find(fp);
  if (it == map_.end()) return nullptr;
  for (const auto& [cached, chase] : it->second) {
    if (cached == q) return chase;
  }
  return nullptr;
}

std::shared_ptr<const QueryChaseResult> QueryChaseCache::GetOrCompute(
    const ConjunctiveQuery& q, const DependencySet& sigma,
    const ChaseOptions& options) {
  uint64_t fp = CanonicalFingerprint(q);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto cached = Find(fp, q)) {
      ++hits_;
      return cached;
    }
  }
  auto computed =
      std::make_shared<const QueryChaseResult>(ChaseQuery(q, sigma, options));
  std::lock_guard<std::mutex> lock(mu_);
  if (auto cached = Find(fp, q)) {
    ++hits_;  // lost the race; serve the first insert for determinism
    return cached;
  }
  ++misses_;
  map_[fp].emplace_back(q, computed);
  return computed;
}

size_t QueryChaseCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

size_t QueryChaseCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

Tri ContainedUnder(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                   const DependencySet& sigma, const ChaseOptions& options) {
  assert(q1.arity() == q2.arity());
  QueryChaseResult chased = ChaseQuery(q1, sigma, options);
  if (chased.failed) return Tri::kYes;  // q1 is empty on every model of Σ
  if (EvaluatesTo(q2, chased.instance, chased.frozen_head)) return Tri::kYes;
  return chased.saturated ? Tri::kNo : Tri::kUnknown;
}

Tri EquivalentUnder(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                    const DependencySet& sigma, const ChaseOptions& options) {
  Tri forward = ContainedUnder(q1, q2, sigma, options);
  if (forward == Tri::kNo) return Tri::kNo;
  Tri backward = ContainedUnder(q2, q1, sigma, options);
  if (backward == Tri::kNo) return Tri::kNo;
  if (forward == Tri::kYes && backward == Tri::kYes) return Tri::kYes;
  return Tri::kUnknown;
}

Tri ContainedUnder(const ConjunctiveQuery& q, const UnionQuery& Q,
                   const DependencySet& sigma, const ChaseOptions& options) {
  QueryChaseResult chased = ChaseQuery(q, sigma, options);
  if (chased.failed) return Tri::kYes;
  for (const ConjunctiveQuery& d : Q.disjuncts()) {
    if (d.arity() != q.arity()) continue;
    if (EvaluatesTo(d, chased.instance, chased.frozen_head)) return Tri::kYes;
  }
  return chased.saturated ? Tri::kNo : Tri::kUnknown;
}

}  // namespace semacyc
