#ifndef SEMACYC_DATA_COLUMNAR_H_
#define SEMACYC_DATA_COLUMNAR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/instance.h"

/// semacyc::data — the columnar data plane (docs/DATAPLANE.md).
///
/// The paper's practical payoff (Prop. 24) is FPT evaluation: reformulate a
/// semantically acyclic query once, then run Yannakakis over the database in
/// time linear in |D|. That bound is only real when the per-tuple constant
/// is small, so this layer stores relations column-major with
/// dictionary-encoded 32-bit value ids (terms are interned process-wide but
/// sparse; value ids are dense per instance), and the evaluator
/// (semijoin_program.h) runs over selection vectors with integer join keys —
/// no per-tuple allocation, no string keys.
namespace semacyc::data {

/// Sentinel for "this term does not occur in the instance".
inline constexpr uint32_t kNoValue = 0xffffffffu;

/// Per-predicate column-major storage over a per-instance dictionary.
///
/// Immutable once built (loaders seal the instance before returning it):
/// every accessor is const and safe to share across threads, which is what
/// lets one preloaded database serve a whole batch (`semacyc_cli --eval
/// --db FILE`) or a multi-tenant engine.
class ColumnarInstance {
 public:
  struct Relation {
    Predicate pred;
    uint32_t arity = 0;
    size_t rows = 0;
    /// columns[c][r] is the value id of argument c of row r.
    std::vector<std::vector<uint32_t>> columns;
    /// Sorted-run index per position: sorted_runs[c] lists the row ids
    /// ordered by (columns[c][row], row), so all rows holding one value id
    /// in position c form one contiguous run (EqualRange binary-searches
    /// it). This is the constant-filter access path of match ops.
    std::vector<std::vector<uint32_t>> sorted_runs;
  };

  ColumnarInstance() = default;

  /// Bulk-converts a row-oriented Instance (used by Engine::Eval's
  /// columnar-by-default path and by the differential tests).
  static ColumnarInstance FromInstance(const Instance& db);

  /// Loads from a fact file: one ground atom per line in the core parser's
  /// syntax — `R('a',42,'b')` — with '%' comments and blank lines skipped
  /// (format spec in docs/DATAPLANE.md). Returns nullopt with `*error`
  /// set (line number included) on the first malformed or non-ground line.
  static std::optional<ColumnarInstance> FromFile(const std::string& path,
                                                  std::string* error);
  /// Same, over an in-memory buffer (FromFile delegates here).
  static std::optional<ColumnarInstance> FromText(std::string_view text,
                                                  std::string* error);

  /// The dense value id of `t`, or kNoValue when t never occurs.
  uint32_t ValueIdOf(Term t) const {
    auto it = term_to_id_.find(t);
    return it == term_to_id_.end() ? kNoValue : it->second;
  }
  /// The term behind a value id (vid < NumValues()).
  Term TermOf(uint32_t vid) const { return dictionary_[vid]; }
  size_t NumValues() const { return dictionary_.size(); }

  /// The relation stored for `p`, or nullptr when no fact uses it.
  const Relation* RelationOf(Predicate p) const {
    auto it = by_pred_.find(p.id());
    return it == by_pred_.end() ? nullptr : &relations_[it->second];
  }
  const std::vector<Relation>& relations() const { return relations_; }
  size_t TotalRows() const { return total_rows_; }

  /// The contiguous run of `rel.sorted_runs[pos]` whose rows hold value id
  /// `vid` in column `pos`: [first, last) over row ids.
  std::pair<const uint32_t*, const uint32_t*> EqualRange(const Relation& rel,
                                                         size_t pos,
                                                         uint32_t vid) const;

  /// Rebuilds the row-oriented Instance (differential tests; O(rows)).
  Instance ToInstance() const;

  /// Approximate heap footprint: dictionary + columns + sorted runs +
  /// hash-map overhead. Deterministic, O(relations).
  size_t ApproxBytes() const;

  std::string ToString() const;  // shape summary, not the data

 private:
  uint32_t Intern(Term t);
  Relation& RelationFor(Predicate p);
  /// Builds every sorted-run index; loaders call it exactly once.
  void Seal();

  std::vector<Term> dictionary_;
  std::unordered_map<Term, uint32_t, TermHash> term_to_id_;
  std::vector<Relation> relations_;  // first-occurrence order
  std::unordered_map<uint32_t, size_t> by_pred_;
  size_t total_rows_ = 0;
};

}  // namespace semacyc::data

#endif  // SEMACYC_DATA_COLUMNAR_H_
