#include "data/semijoin_program.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

namespace semacyc::data {
namespace {

using Relation = ColumnarInstance::Relation;

/// 64-bit key over `n` value ids. One or two columns pack losslessly
/// (value ids are 32-bit), so those keys are exact; wider keys hash, and
/// every probe re-verifies the columns — collisions never change answers.
inline uint64_t PackKey(const uint32_t* vals, size_t n) {
  if (n == 1) return vals[0];
  if (n == 2) return (uint64_t{vals[0]} << 32) | vals[1];
  size_t seed = 0x9e3779b97f4a7c15ull ^ n;
  for (size_t i = 0; i < n; ++i) {
    HashCombine(&seed, std::hash<uint32_t>{}(vals[i]));
  }
  return seed;
}

/// Flat row-major table of value ids (DP answer assembly). `nrows` is
/// explicit because Boolean carries have width 0.
struct FlatTable {
  size_t width = 0;
  size_t nrows = 0;
  std::vector<uint32_t> data;

  const uint32_t* row(size_t r) const { return data.data() + r * width; }
};

/// Collision-safe dedup over width-w slices of a growing flat arena:
/// 64-bit key buckets hold row indices, equality compares the slices.
class VidTupleSet {
 public:
  VidTupleSet(const std::vector<uint32_t>* arena, size_t width)
      : arena_(arena), width_(width) {}

  /// True iff the tuple is new; the caller must append it to the arena
  /// right after (the recorded index is the arena's current row count).
  bool InsertIfNew(const uint32_t* t) {
    std::vector<uint32_t>& bucket = buckets_[PackKey(t, width_)];
    for (uint32_t idx : bucket) {
      const uint32_t* have = arena_->data() + size_t{idx} * width_;
      bool same = true;
      for (size_t i = 0; i < width_ && same; ++i) same = have[i] == t[i];
      if (same) return false;
    }
    bucket.push_back(static_cast<uint32_t>(arena_->size() / std::max<size_t>(
                                                                width_, 1)));
    return true;
  }

 private:
  const std::vector<uint32_t>* arena_;
  size_t width_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets_;
};

inline bool PollEvery(size_t i, CancelToken* cancel) {
  return (i & 4095) == 0 && cancel != nullptr && cancel->Poll();
}

}  // namespace

SemiJoinProgram SemiJoinProgram::Compile(const ConjunctiveQuery& q,
                                         const JoinTreeView& tree) {
  SemiJoinProgram p;
  p.head_ = q.head();
  const std::vector<Atom>& body = q.body();
  if (body.empty()) {
    // The empty conjunction is true with the (constant-only) head.
    p.trivial_true_ = true;
    for (Term h : q.head()) {
      AnswerSlot slot;
      slot.is_const = true;
      slot.constant = h;
      p.answer_.push_back(slot);
    }
    return p;
  }

  const size_t n = body.size();
  assert(tree.size() == n);
  // Per-node variable layout: distinct variables in first-occurrence order
  // (the same order the row path's MatchAtom uses), each mapped to its
  // first column; later occurrences become column-equality filters and
  // non-variables become column-constant filters.
  std::vector<std::vector<Term>> vars(n);
  p.nodes_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const Atom& atom = body[i];
    NodeSpec& spec = p.nodes_[i];
    spec.pred = atom.predicate();
    for (size_t c = 0; c < atom.arity(); ++c) {
      Term t = atom.arg(c);
      if (!t.IsVariable()) {
        spec.const_cols.push_back({static_cast<uint32_t>(c), t});
        continue;
      }
      auto it = std::find(vars[i].begin(), vars[i].end(), t);
      if (it == vars[i].end()) {
        vars[i].push_back(t);
        spec.var_cols.push_back(static_cast<uint32_t>(c));
      } else {
        spec.eq_cols.push_back(
            {static_cast<uint32_t>(c),
             spec.var_cols[static_cast<size_t>(it - vars[i].begin())]});
      }
    }
  }

  // Semi-join key columns for a tree edge: the shared variables in the
  // target's variable order, resolved to first-occurrence columns on both
  // sides. Empty keys (chained disconnected components) keep the row
  // path's "clear target iff source empty" semantics.
  auto shared_op = [&](int target, int source) {
    SemiJoinOp op;
    op.target = target;
    op.source = source;
    for (size_t vi = 0; vi < vars[target].size(); ++vi) {
      auto it = std::find(vars[source].begin(), vars[source].end(),
                          vars[target][vi]);
      if (it != vars[source].end()) {
        op.target_cols.push_back(p.nodes_[target].var_cols[vi]);
        op.source_cols.push_back(
            p.nodes_[source]
                .var_cols[static_cast<size_t>(it - vars[source].begin())]);
      }
    }
    return op;
  };
  for (int node : tree.BottomUpOrder()) {
    int parent = tree.parent()[node];
    if (parent >= 0) p.bottom_up_.push_back(shared_op(parent, node));
  }
  for (int node : tree.TopDownOrder()) {
    for (int child : tree.children()[node]) {
      p.top_down_.push_back(shared_op(child, node));
    }
  }

  // Answer-assembly DP, variable layouts resolved statically: acc starts
  // as the node's own variables, each child join appends the child carry's
  // new variables, and the projection keeps head variables plus the
  // connector to the parent *atom* (exactly the row path's keep set).
  std::unordered_set<Term> free_vars;
  for (Term h : q.head()) {
    if (h.IsVariable()) free_vars.insert(h);
  }
  std::vector<std::vector<Term>> carry(n);
  for (int node : tree.BottomUpOrder()) {
    DpSpec spec;
    spec.node = node;
    std::vector<Term> acc_vars = vars[static_cast<size_t>(node)];
    for (int child : tree.children()[node]) {
      JoinStep step;
      step.child = child;
      const std::vector<Term>& cv = carry[static_cast<size_t>(child)];
      for (size_t i = 0; i < acc_vars.size(); ++i) {
        auto it = std::find(cv.begin(), cv.end(), acc_vars[i]);
        if (it != cv.end()) {
          step.left_pos.push_back(static_cast<uint32_t>(i));
          step.right_pos.push_back(static_cast<uint32_t>(it - cv.begin()));
        }
      }
      for (size_t i = 0; i < cv.size(); ++i) {
        if (std::find(acc_vars.begin(), acc_vars.end(), cv[i]) ==
            acc_vars.end()) {
          step.extra_pos.push_back(static_cast<uint32_t>(i));
          acc_vars.push_back(cv[i]);
        }
      }
      spec.joins.push_back(std::move(step));
    }
    int parent = tree.parent()[node];
    for (size_t i = 0; i < acc_vars.size(); ++i) {
      bool keep = free_vars.count(acc_vars[i]) > 0;
      if (!keep && parent >= 0) {
        const std::vector<Term>& pv = vars[static_cast<size_t>(parent)];
        keep = std::find(pv.begin(), pv.end(), acc_vars[i]) != pv.end();
      }
      if (keep) {
        spec.proj_pos.push_back(static_cast<uint32_t>(i));
        carry[static_cast<size_t>(node)].push_back(acc_vars[i]);
      }
    }
    p.dp_.push_back(std::move(spec));
  }
  p.root_ = tree.root();

  const std::vector<Term>& root_carry = carry[static_cast<size_t>(p.root_)];
  for (Term h : q.head()) {
    AnswerSlot slot;
    if (!h.IsVariable()) {
      slot.is_const = true;
      slot.constant = h;
    } else {
      auto it = std::find(root_carry.begin(), root_carry.end(), h);
      if (it == root_carry.end()) {
        // Unreachable for connected queries; mirror the row path's
        // defensive empty-answer behavior rather than crash.
        p.head_unreachable_ = true;
      } else {
        slot.root_pos = static_cast<uint32_t>(it - root_carry.begin());
      }
    }
    p.answer_.push_back(slot);
  }
  return p;
}

int SemiJoinProgram::Reduce(const ColumnarInstance& db,
                            const ExecOptions& opts,
                            std::vector<std::vector<uint32_t>>* sel,
                            ExecStats* stats) const {
  CancelToken* cancel = opts.cancel;
  const size_t n = nodes_.size();
  sel->assign(n, {});

  // Match ops.
  for (size_t i = 0; i < n; ++i) {
    if (cancel != nullptr && cancel->PollNow()) return -1;
    const NodeSpec& spec = nodes_[i];
    std::vector<uint32_t>& out = (*sel)[i];
    const Relation* rel = db.RelationOf(spec.pred);
    if (rel == nullptr || rel->rows == 0) return 0;  // empty relation
    // Resolve constants against the dictionary once per execution.
    std::vector<std::pair<uint32_t, uint32_t>> const_vids;
    bool absent = false;
    for (const auto& [col, term] : spec.const_cols) {
      uint32_t vid = db.ValueIdOf(term);
      if (vid == kNoValue) {
        absent = true;
        break;
      }
      const_vids.push_back({col, vid});
    }
    if (absent) return 0;
    auto row_ok = [&](uint32_t r) {
      for (const auto& [col, vid] : const_vids) {
        if (rel->columns[col][r] != vid) return false;
      }
      for (const auto& [col, first] : spec.eq_cols) {
        if (rel->columns[col][r] != rel->columns[first][r]) return false;
      }
      return true;
    };
    if (!const_vids.empty()) {
      // Index path: the run is ordered by row id within one value, so the
      // selection vector stays ascending like the scan path's.
      auto [lo, hi] = db.EqualRange(*rel, const_vids[0].first,
                                    const_vids[0].second);
      stats->rows_scanned += static_cast<size_t>(hi - lo);
      for (const uint32_t* r = lo; r != hi; ++r) {
        if (PollEvery(static_cast<size_t>(r - lo), cancel)) return -1;
        if (row_ok(*r)) out.push_back(*r);
      }
    } else {
      stats->rows_scanned += rel->rows;
      if (spec.eq_cols.empty()) {
        // Unconstrained atom: the selection is the identity.
        out.resize(rel->rows);
        for (size_t r = 0; r < rel->rows; ++r) {
          out[r] = static_cast<uint32_t>(r);
        }
      } else {
        for (size_t r = 0; r < rel->rows; ++r) {
          if (PollEvery(r, cancel)) return -1;
          if (row_ok(static_cast<uint32_t>(r))) {
            out.push_back(static_cast<uint32_t>(r));
          }
        }
      }
    }
    if (out.empty()) return 0;
  }

  // Bottom-up semi-joins (parent ⋉ child).
  for (const SemiJoinOp& op : bottom_up_) {
    if (cancel != nullptr && cancel->PollNow()) return -1;
    if (!ExecSemiJoin(db, op, sel, cancel, stats)) return -1;
    if ((*sel)[static_cast<size_t>(op.target)].empty()) return 0;
  }
  return 1;
}

bool SemiJoinProgram::ExecSemiJoin(const ColumnarInstance& db,
                                   const SemiJoinOp& op,
                                   std::vector<std::vector<uint32_t>>* sel,
                                   CancelToken* cancel,
                                   ExecStats* stats) const {
  std::vector<uint32_t>& tsel = (*sel)[static_cast<size_t>(op.target)];
  std::vector<uint32_t>& ssel = (*sel)[static_cast<size_t>(op.source)];
  if (op.target_cols.empty()) {
    // Chained disconnected components share no variables: the semi-join
    // degenerates to "clear the target iff the source is empty".
    if (ssel.empty()) tsel.clear();
    return true;
  }
  if (ssel.empty()) {
    tsel.clear();
    return true;
  }
  if (tsel.empty()) return true;
  const Relation& trel =
      *db.RelationOf(nodes_[static_cast<size_t>(op.target)].pred);
  const Relation& srel =
      *db.RelationOf(nodes_[static_cast<size_t>(op.source)].pred);
  const size_t kn = op.target_cols.size();
  const bool exact = kn <= 2;

  uint32_t key_buf[8];
  std::vector<uint32_t> wide_buf;
  uint32_t* keys = kn <= 8 ? key_buf : (wide_buf.resize(kn), wide_buf.data());
  auto gather = [&](const Relation& rel, const std::vector<uint32_t>& cols,
                    uint32_t row) {
    for (size_t i = 0; i < kn; ++i) keys[i] = rel.columns[cols[i]][row];
    return PackKey(keys, kn);
  };

  // Exact path: a set of packed keys. Hashed path: buckets of source rows,
  // verified column-by-column on every probe.
  std::unordered_set<uint64_t> key_set;
  std::unordered_map<uint64_t, std::vector<uint32_t>> key_rows;
  if (exact) key_set.reserve(ssel.size());
  for (size_t i = 0; i < ssel.size(); ++i) {
    if (PollEvery(i, cancel)) return false;
    uint64_t k = gather(srel, op.source_cols, ssel[i]);
    if (exact) {
      key_set.insert(k);
    } else {
      key_rows[k].push_back(ssel[i]);
    }
  }

  size_t kept = 0;
  for (size_t i = 0; i < tsel.size(); ++i) {
    if (PollEvery(i, cancel)) return false;
    ++stats->semijoin_probes;
    uint32_t row = tsel[i];
    uint64_t k = gather(trel, op.target_cols, row);
    bool hit;
    if (exact) {
      hit = key_set.count(k) > 0;
    } else {
      hit = false;
      auto it = key_rows.find(k);
      if (it != key_rows.end()) {
        for (uint32_t srow : it->second) {
          bool same = true;
          for (size_t c = 0; c < kn && same; ++c) {
            same = trel.columns[op.target_cols[c]][row] ==
                   srel.columns[op.source_cols[c]][srow];
          }
          if (same) {
            hit = true;
            break;
          }
        }
      }
    }
    if (hit) tsel[kept++] = row;
  }
  tsel.resize(kept);
  return true;
}

ColumnarEvalResult SemiJoinProgram::Execute(const ColumnarInstance& db,
                                            const ExecOptions& opts) const {
  ColumnarEvalResult result;
  if (trivial_true_) {
    std::vector<Term> answer;
    answer.reserve(answer_.size());
    for (const AnswerSlot& slot : answer_) answer.push_back(slot.constant);
    result.answers.push_back(std::move(answer));
    return result;
  }
  if (head_unreachable_) return result;

  CancelToken* cancel = opts.cancel;
  std::vector<std::vector<uint32_t>> sel;
  int reduced = Reduce(db, opts, &sel, &result.stats);
  if (reduced < 0) {
    result.aborted = true;
    return result;
  }
  if (reduced == 0) return result;

  // Top-down semi-joins (child ⋉ parent).
  for (const SemiJoinOp& op : top_down_) {
    if (cancel != nullptr && cancel->PollNow()) {
      result.aborted = true;
      return result;
    }
    if (!ExecSemiJoin(db, op, &sel, cancel, &result.stats)) {
      result.aborted = true;
      return result;
    }
    if (sel[static_cast<size_t>(op.target)].empty()) return result;
  }

  // Answer assembly: bottom-up DP over flat value-id tables.
  std::vector<FlatTable> dp(nodes_.size());
  for (const DpSpec& spec : dp_) {
    if (cancel != nullptr && cancel->PollNow()) {
      result.aborted = true;
      return result;
    }
    const NodeSpec& ns = nodes_[static_cast<size_t>(spec.node)];
    const Relation& rel = *db.RelationOf(ns.pred);
    const std::vector<uint32_t>& s = sel[static_cast<size_t>(spec.node)];

    FlatTable acc;
    acc.width = ns.var_cols.size();
    acc.nrows = s.size();
    acc.data.reserve(s.size() * acc.width);
    for (size_t i = 0; i < s.size(); ++i) {
      if (PollEvery(i, cancel)) {
        result.aborted = true;
        return result;
      }
      for (uint32_t c : ns.var_cols) acc.data.push_back(rel.columns[c][s[i]]);
    }
    result.stats.dp_rows += acc.nrows;

    uint32_t key_buf[8];
    std::vector<uint32_t> wide_buf;
    for (const JoinStep& step : spec.joins) {
      if (cancel != nullptr && cancel->PollNow()) {
        result.aborted = true;
        return result;
      }
      const FlatTable& child = dp[static_cast<size_t>(step.child)];
      const size_t kn = step.left_pos.size();
      const bool exact = kn <= 2;
      uint32_t* keys =
          kn <= 8 ? key_buf : (wide_buf.resize(kn), wide_buf.data());
      auto gather = [&](const uint32_t* row, const std::vector<uint32_t>& pos) {
        for (size_t i = 0; i < kn; ++i) keys[i] = row[pos[i]];
        return PackKey(keys, kn);
      };
      // Empty keys (kn == 0) means cross product: every row keys to 0.
      std::unordered_map<uint64_t, std::vector<uint32_t>> index;
      index.reserve(child.nrows);
      for (size_t cr = 0; cr < child.nrows; ++cr) {
        if (PollEvery(cr, cancel)) {
          result.aborted = true;
          return result;
        }
        index[kn == 0 ? 0 : gather(child.row(cr), step.right_pos)].push_back(
            static_cast<uint32_t>(cr));
      }
      FlatTable joined;
      joined.width = acc.width + step.extra_pos.size();
      for (size_t ar = 0; ar < acc.nrows; ++ar) {
        if (PollEvery(ar, cancel)) {
          result.aborted = true;
          return result;
        }
        const uint32_t* arow = acc.row(ar);
        auto it = index.find(kn == 0 ? 0 : gather(arow, step.left_pos));
        if (it == index.end()) continue;
        for (uint32_t cr : it->second) {
          const uint32_t* crow = child.row(cr);
          if (!exact && kn > 0) {
            bool same = true;
            for (size_t c = 0; c < kn && same; ++c) {
              same = arow[step.left_pos[c]] == crow[step.right_pos[c]];
            }
            if (!same) continue;
          }
          joined.data.insert(joined.data.end(), arow, arow + acc.width);
          for (uint32_t ep : step.extra_pos) joined.data.push_back(crow[ep]);
          ++joined.nrows;
        }
      }
      result.stats.dp_rows += joined.nrows;
      acc = std::move(joined);
    }

    // Project to the carry and dedup.
    FlatTable out;
    out.width = spec.proj_pos.size();
    VidTupleSet seen(&out.data, out.width);
    std::vector<uint32_t> buf(out.width);
    for (size_t ar = 0; ar < acc.nrows; ++ar) {
      if (PollEvery(ar, cancel)) {
        result.aborted = true;
        return result;
      }
      const uint32_t* arow = acc.row(ar);
      for (size_t i = 0; i < out.width; ++i) buf[i] = arow[spec.proj_pos[i]];
      if (seen.InsertIfNew(buf.data())) {
        out.data.insert(out.data.end(), buf.begin(), buf.end());
        ++out.nrows;
      }
    }
    dp[static_cast<size_t>(spec.node)] = std::move(out);
  }

  // Assemble answers from the root carry. Carry tuples are distinct over
  // the distinct head variables, so the assembled answers are distinct.
  const FlatTable& root = dp[static_cast<size_t>(root_)];
  result.answers.reserve(root.nrows);
  for (size_t r = 0; r < root.nrows; ++r) {
    if (PollEvery(r, cancel)) {
      result.aborted = true;
      result.answers.clear();
      return result;
    }
    std::vector<Term> answer;
    answer.reserve(answer_.size());
    const uint32_t* row = root.row(r);
    for (const AnswerSlot& slot : answer_) {
      answer.push_back(slot.is_const ? slot.constant
                                     : db.TermOf(row[slot.root_pos]));
    }
    result.answers.push_back(std::move(answer));
  }
  return result;
}

int SemiJoinProgram::ExecuteBoolean(const ColumnarInstance& db,
                                    const ExecOptions& opts) const {
  if (trivial_true_) return 1;
  ExecStats stats;
  std::vector<std::vector<uint32_t>> sel;
  return Reduce(db, opts, &sel, &stats);
}

std::string SemiJoinProgram::ToString() const {
  std::string out;
  auto cols = [](const std::vector<uint32_t>& v) {
    std::string s = "[";
    for (size_t i = 0; i < v.size(); ++i) {
      if (i > 0) s += ",";
      s += std::to_string(v[i]);
    }
    return s + "]";
  };
  if (trivial_true_) return "trivial-true\n";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const NodeSpec& ns = nodes_[i];
    out += "match " + std::to_string(i) + ": " + ns.pred.ToString() +
           " vars@" + cols(ns.var_cols);
    for (const auto& [col, term] : ns.const_cols) {
      out += " col" + std::to_string(col) + "==" + term.ToString();
    }
    for (const auto& [col, first] : ns.eq_cols) {
      out += " col" + std::to_string(col) + "==col" + std::to_string(first);
    }
    out += "\n";
  }
  for (const SemiJoinOp& op : bottom_up_) {
    out += "semijoin-up " + std::to_string(op.target) + " ⋉ " +
           std::to_string(op.source) + " on " + cols(op.target_cols) + "=" +
           cols(op.source_cols) + "\n";
  }
  for (const SemiJoinOp& op : top_down_) {
    out += "semijoin-down " + std::to_string(op.target) + " ⋉ " +
           std::to_string(op.source) + " on " + cols(op.target_cols) + "=" +
           cols(op.source_cols) + "\n";
  }
  for (const DpSpec& spec : dp_) {
    out += "dp " + std::to_string(spec.node) + ":";
    for (const JoinStep& step : spec.joins) {
      out += " join(child=" + std::to_string(step.child) + " keys=" +
             cols(step.left_pos) + "=" + cols(step.right_pos) + " extra=" +
             cols(step.extra_pos) + ")";
    }
    out += " proj=" + cols(spec.proj_pos) + "\n";
  }
  out += "answer:";
  for (const AnswerSlot& slot : answer_) {
    out += slot.is_const ? " const:" + slot.constant.ToString()
                         : " root[" + std::to_string(slot.root_pos) + "]";
  }
  out += "\n";
  return out;
}

}  // namespace semacyc::data
