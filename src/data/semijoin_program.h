#ifndef SEMACYC_DATA_SEMIJOIN_PROGRAM_H_
#define SEMACYC_DATA_SEMIJOIN_PROGRAM_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/interrupt.h"
#include "core/join_tree.h"
#include "core/query.h"
#include "data/columnar.h"

namespace semacyc::data {

/// Execution cost accounting (fed into Engine metrics and bench rows).
struct ExecStats {
  /// Rows examined by match-atom filters (full scans + index runs).
  size_t rows_scanned = 0;
  /// Target rows probed by semi-join ops.
  size_t semijoin_probes = 0;
  /// Tuples materialized into DP tables during answer assembly.
  size_t dp_rows = 0;
};

struct ExecOptions {
  /// Polled at op boundaries and inside long scans (nullptr = not
  /// cancellable). A fired token aborts the run with `aborted = true`;
  /// the program itself stays reusable.
  CancelToken* cancel = nullptr;
};

/// Result of one program execution. Mirrors YannakakisResult: answers are
/// term tuples over the query head, deduplicated; a Boolean query answers
/// {()} (one empty tuple) when true and {} when false.
struct ColumnarEvalResult {
  bool aborted = false;
  std::vector<std::vector<Term>> answers;
  ExecStats stats;
};

/// A compiled Yannakakis plan: one JoinTreeView lowered once into a flat
/// op sequence, executed any number of times over columnar instances.
///
/// Compilation resolves every variable-position lookup — which column of
/// which relation carries each variable, which positions must equal a
/// constant or repeat a variable, the key columns of every semi-join, the
/// join/projection positions of the answer DP — so execution touches only
/// integer arrays:
///
///   match      per node: filter the predicate's rows by constant and
///              repeated-variable columns into a selection vector (the
///              sorted-run index serves constant lookups)
///   semi-join  bottom-up parent ⋉ child then top-down child ⋉ parent
///              over 64-bit packed value-id keys (1–2 key columns are
///              exact; wider keys hash and re-verify the columns, so
///              collisions can never change answers)
///   dp-join    bottom-up join-and-project answer assembly over flat
///              value-id tables with collision-safe dedup
///
/// The program holds no pointers into the query or tree — only positions —
/// so it outlives both and is immutable/thread-safe after Compile.
class SemiJoinProgram {
 public:
  SemiJoinProgram() = default;

  /// Lowers q's join tree (a view over q.body(), see BuildJoinTreeView).
  /// The caller guarantees `tree` was built from q.body(); acyclicity is
  /// the caller's contract (Engine::Eval compiles the *witness*, which is
  /// acyclic by construction).
  static SemiJoinProgram Compile(const ConjunctiveQuery& q,
                                 const JoinTreeView& tree);

  /// Full evaluation: semi-join reduction + answer assembly.
  ColumnarEvalResult Execute(const ColumnarInstance& db,
                             const ExecOptions& opts = {}) const;

  /// Boolean fast path: stops after the bottom-up reduction.
  /// Returns 1/0, or -1 when the run was aborted by the cancel token.
  int ExecuteBoolean(const ColumnarInstance& db,
                     const ExecOptions& opts = {}) const;

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_ops() const {
    return nodes_.size() + bottom_up_.size() + top_down_.size() + dp_.size();
  }

  /// Human-readable op listing (docs/DATAPLANE.md shows one).
  std::string ToString() const;

 private:
  /// Compiled per-atom filter. `var_cols[i]` is the first column holding
  /// the node's i-th distinct variable.
  struct NodeSpec {
    Predicate pred;
    std::vector<uint32_t> var_cols;
    std::vector<std::pair<uint32_t, Term>> const_cols;   // column == constant
    std::vector<std::pair<uint32_t, uint32_t>> eq_cols;  // column == column
  };

  /// One semi-join `target ⋉ source` with key columns resolved into both
  /// base relations. Empty key columns encode the disconnected-components
  /// edge: "clear target iff source is empty".
  struct SemiJoinOp {
    int32_t target = -1;
    int32_t source = -1;
    std::vector<uint32_t> target_cols;
    std::vector<uint32_t> source_cols;
  };

  /// One DP hash join acc ⋈ dp[child]: key positions in the current acc
  /// layout and the child's carry layout, plus the child positions
  /// appended to acc (all resolved at compile time).
  struct JoinStep {
    int32_t child = -1;
    std::vector<uint32_t> left_pos;
    std::vector<uint32_t> right_pos;
    std::vector<uint32_t> extra_pos;
  };

  /// Answer assembly for one node (executed in bottom-up order).
  struct DpSpec {
    int32_t node = -1;
    std::vector<JoinStep> joins;
    /// Positions of the final acc layout kept in this node's carry.
    std::vector<uint32_t> proj_pos;
  };

  /// One head slot: a constant term, or a position in the root carry.
  struct AnswerSlot {
    bool is_const = false;
    Term constant;
    uint32_t root_pos = 0;
  };

  /// Shared first phase of Execute/ExecuteBoolean: match + bottom-up
  /// reduction into `sel`. Returns 0 on empty (early exit), -1 on abort,
  /// 1 otherwise.
  int Reduce(const ColumnarInstance& db, const ExecOptions& opts,
             std::vector<std::vector<uint32_t>>* sel, ExecStats* stats) const;
  /// Filters sel[op.target] to rows with a key match in sel[op.source].
  /// Returns false on abort.
  bool ExecSemiJoin(const ColumnarInstance& db, const SemiJoinOp& op,
                    std::vector<std::vector<uint32_t>>* sel,
                    CancelToken* cancel, ExecStats* stats) const;

  bool trivial_true_ = false;     // empty body: answers = {head constants}
  bool head_unreachable_ = false; // defensive (mirrors the row path)
  std::vector<Term> head_;
  std::vector<NodeSpec> nodes_;
  std::vector<SemiJoinOp> bottom_up_;
  std::vector<SemiJoinOp> top_down_;
  std::vector<DpSpec> dp_;
  int32_t root_ = -1;
  std::vector<AnswerSlot> answer_;
};

}  // namespace semacyc::data

#endif  // SEMACYC_DATA_SEMIJOIN_PROGRAM_H_
