#include "data/columnar.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "core/parser.h"

namespace semacyc::data {

uint32_t ColumnarInstance::Intern(Term t) {
  auto [it, inserted] =
      term_to_id_.emplace(t, static_cast<uint32_t>(dictionary_.size()));
  if (inserted) dictionary_.push_back(t);
  return it->second;
}

ColumnarInstance::Relation& ColumnarInstance::RelationFor(Predicate p) {
  auto [it, inserted] = by_pred_.emplace(p.id(), relations_.size());
  if (inserted) {
    Relation rel;
    rel.pred = p;
    rel.arity = static_cast<uint32_t>(p.arity());
    rel.columns.resize(rel.arity);
    relations_.push_back(std::move(rel));
  }
  return relations_[it->second];
}

ColumnarInstance ColumnarInstance::FromInstance(const Instance& db) {
  ColumnarInstance out;
  out.dictionary_.reserve(db.size());
  for (const Atom& a : db.atoms()) {
    Relation& rel = out.RelationFor(a.predicate());
    for (size_t c = 0; c < a.arity(); ++c) {
      rel.columns[c].push_back(out.Intern(a.arg(c)));
    }
    ++rel.rows;
    ++out.total_rows_;
  }
  out.Seal();
  return out;
}

std::optional<ColumnarInstance> ColumnarInstance::FromFile(
    const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open fact file: " + path;
    return std::nullopt;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return FromText(buffer.str(), error);
}

std::optional<ColumnarInstance> ColumnarInstance::FromText(
    std::string_view text, std::string* error) {
  ColumnarInstance out;
  size_t line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_no;
    // Skip blanks and '%' comment lines without invoking the parser.
    size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string_view::npos || line[first] == '%') {
      if (end == text.size()) break;
      continue;
    }
    ParseResult<std::vector<Atom>> atoms = ParseAtoms(line);
    if (!atoms.ok()) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": " + atoms.error;
      }
      return std::nullopt;
    }
    for (const Atom& a : *atoms.value) {
      if (a.MentionsKind(TermKind::kVariable)) {
        if (error != nullptr) {
          *error = "line " + std::to_string(line_no) +
                   ": facts must be ground (got " + a.ToString() +
                   "; quote constants: 'a', or use numbers)";
        }
        return std::nullopt;
      }
      Relation& rel = out.RelationFor(a.predicate());
      for (size_t c = 0; c < a.arity(); ++c) {
        rel.columns[c].push_back(out.Intern(a.arg(c)));
      }
      ++rel.rows;
      ++out.total_rows_;
    }
    if (end == text.size()) break;
  }
  out.Seal();
  return out;
}

void ColumnarInstance::Seal() {
  for (Relation& rel : relations_) {
    rel.sorted_runs.resize(rel.arity);
    for (uint32_t c = 0; c < rel.arity; ++c) {
      std::vector<uint32_t>& run = rel.sorted_runs[c];
      run.resize(rel.rows);
      for (size_t r = 0; r < rel.rows; ++r) {
        run[r] = static_cast<uint32_t>(r);
      }
      const std::vector<uint32_t>& col = rel.columns[c];
      std::sort(run.begin(), run.end(), [&col](uint32_t a, uint32_t b) {
        return col[a] != col[b] ? col[a] < col[b] : a < b;
      });
    }
  }
}

std::pair<const uint32_t*, const uint32_t*> ColumnarInstance::EqualRange(
    const Relation& rel, size_t pos, uint32_t vid) const {
  const std::vector<uint32_t>& run = rel.sorted_runs[pos];
  const std::vector<uint32_t>& col = rel.columns[pos];
  auto lo = std::lower_bound(run.begin(), run.end(), vid,
                             [&col](uint32_t row, uint32_t v) {
                               return col[row] < v;
                             });
  auto hi = std::upper_bound(lo, run.end(), vid,
                             [&col](uint32_t v, uint32_t row) {
                               return v < col[row];
                             });
  return {run.data() + (lo - run.begin()), run.data() + (hi - run.begin())};
}

Instance ColumnarInstance::ToInstance() const {
  Instance out;
  out.Reserve(total_rows_);
  for (const Relation& rel : relations_) {
    for (size_t r = 0; r < rel.rows; ++r) {
      std::vector<Term> args;
      args.reserve(rel.arity);
      for (uint32_t c = 0; c < rel.arity; ++c) {
        args.push_back(dictionary_[rel.columns[c][r]]);
      }
      out.Insert(Atom(rel.pred, std::move(args)));
    }
  }
  return out;
}

size_t ColumnarInstance::ApproxBytes() const {
  size_t bytes = sizeof(ColumnarInstance);
  // Dictionary vector + hash map (charge node overhead per entry).
  bytes += dictionary_.size() * (sizeof(Term) * 2 + 4 * sizeof(void*));
  for (const Relation& rel : relations_) {
    bytes += sizeof(Relation);
    // Data columns and sorted runs: 4 bytes per cell each.
    bytes += rel.rows * rel.arity * 2 * sizeof(uint32_t);
  }
  return bytes;
}

std::string ColumnarInstance::ToString() const {
  std::string out = "ColumnarInstance{values=" +
                    std::to_string(dictionary_.size()) + ", rows=" +
                    std::to_string(total_rows_);
  for (const Relation& rel : relations_) {
    out += ", " + rel.pred.name() + "/" + std::to_string(rel.arity) + ":" +
           std::to_string(rel.rows);
  }
  return out + "}";
}

}  // namespace semacyc::data
