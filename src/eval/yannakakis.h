#ifndef SEMACYC_EVAL_YANNAKAKIS_H_
#define SEMACYC_EVAL_YANNAKAKIS_H_

#include <vector>

#include "core/instance.h"
#include "core/join_tree.h"
#include "core/query.h"

namespace semacyc {

/// Yannakakis' algorithm [27]: evaluates an *acyclic* CQ over a database by
/// a full semi-join reduction along a join tree (bottom-up then top-down)
/// followed by a bottom-up join-and-project answer computation. Boolean
/// acyclic queries run in O(|q|·|D|).
struct YannakakisResult {
  /// False iff the query was cyclic (nothing evaluated).
  bool ok = false;
  std::vector<std::vector<Term>> answers;
  /// Number of tuple-level semi-join probes (cost accounting for benches).
  size_t semijoin_probes = 0;
};

YannakakisResult EvaluateAcyclic(const ConjunctiveQuery& q,
                                 const Instance& database);

/// Same, over a precomputed join-tree view of q.body() (built once, e.g.
/// by Engine::Eval from a prepared query's GYO forest; no atoms are copied
/// either way — the view references q's body in place).
YannakakisResult EvaluateAcyclic(const ConjunctiveQuery& q,
                                 const JoinTreeView& tree,
                                 const Instance& database);

/// Boolean fast path: stops after the bottom-up reduction.
/// Returns kUnknownCyclic (-1) when q is cyclic, else 0/1.
int EvaluateAcyclicBoolean(const ConjunctiveQuery& q,
                           const Instance& database);

/// Boolean fast path over a precomputed join-tree view.
int EvaluateAcyclicBoolean(const ConjunctiveQuery& q, const JoinTreeView& tree,
                           const Instance& database);

}  // namespace semacyc

#endif  // SEMACYC_EVAL_YANNAKAKIS_H_
