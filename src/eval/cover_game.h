#ifndef SEMACYC_EVAL_COVER_GAME_H_
#define SEMACYC_EVAL_COVER_GAME_H_

#include <vector>

#include "core/instance.h"

namespace semacyc {

/// The existential 1-cover game of Chen–Dalmau [13], via the Lemma 28
/// characterization: the duplicator wins on (I, t̄) vs (I', t̄') iff there
/// is a mapping H assigning to each atom of I a nonempty set of same-
/// predicate atoms of I' such that
///   (1) head components map position-wise t̄ -> t̄', and
///   (2) every chosen image is compatible, on shared terms, with some
///       choice for every other atom of I.
/// Computed as an arc-consistency fixpoint; polynomial (Prop 29).
///
/// Genuine constants are rigid (homomorphisms are the identity on C);
/// nulls and the frozen "@" constants of queries are flexible.
struct CoverGameResult {
  bool duplicator_wins = false;
  /// Surviving candidate images per atom of I (diagnostics).
  std::vector<std::vector<uint32_t>> strategy;
  size_t iterations = 0;
};

CoverGameResult SolveCoverGame(const Instance& I, const std::vector<Term>& t,
                               const Instance& J,
                               const std::vector<Term>& t_prime);

/// Convenience: (I,t̄) ≡∃1c (J,t̄').
bool DuplicatorWins(const Instance& I, const std::vector<Term>& t,
                    const Instance& J, const std::vector<Term>& t_prime);

}  // namespace semacyc

#endif  // SEMACYC_EVAL_COVER_GAME_H_
