#ifndef SEMACYC_EVAL_SEMAC_EVAL_H_
#define SEMACYC_EVAL_SEMAC_EVAL_H_

#include "eval/cover_game.h"
#include "eval/yannakakis.h"
#include "semacyc/decider.h"

namespace semacyc {

/// §7: evaluating a semantically acyclic CQ over a database satisfying Σ.

/// Theorem 25 (with Prop 31 / Lemma 32): when q is semantically acyclic
/// under a guarded Σ and D |= Σ, t̄ ∈ q(D) iff the duplicator wins the
/// existential 1-cover game on (q, x̄) vs (D, t̄) — the chase is not
/// needed, so the whole check is polynomial.
bool GuardedGameEvaluate(const ConjunctiveQuery& q, const Instance& database,
                         const std::vector<Term>& tuple);

/// Prop 31 (general Σ): t̄ ∈ q(D) iff (chase(q,Σ), x̄) ≡∃1c (D, t̄).
/// Exact when the chase saturates; kUnknown otherwise.
Tri GameEvaluateViaChase(const ConjunctiveQuery& q, const DependencySet& sigma,
                         const Instance& database,
                         const std::vector<Term>& tuple,
                         const ChaseOptions& options = {});

/// Prop 24: the fixed-parameter-tractable pipeline — find an equivalent
/// acyclic q' (double-exponential in |q|+|Σ|, but independent of D), then
/// run Yannakakis on q'.
struct FptEvalResult {
  /// Whether an acyclic reformulation was found.
  bool reformulated = false;
  ConjunctiveQuery witness;
  YannakakisResult evaluation;
};

FptEvalResult FptEvaluate(const ConjunctiveQuery& q,
                          const DependencySet& sigma, const Instance& database,
                          const SemAcOptions& options = {});

}  // namespace semacyc

#endif  // SEMACYC_EVAL_SEMAC_EVAL_H_
