#include "eval/semac_eval.h"

#include "chase/query_chase.h"
#include "semacyc/engine.h"

namespace semacyc {

bool GuardedGameEvaluate(const ConjunctiveQuery& q, const Instance& database,
                         const std::vector<Term>& tuple) {
  FrozenQuery frozen = Freeze(q, TermKind::kNull);
  return DuplicatorWins(frozen.instance, frozen.frozen_head, database, tuple);
}

Tri GameEvaluateViaChase(const ConjunctiveQuery& q, const DependencySet& sigma,
                         const Instance& database,
                         const std::vector<Term>& tuple,
                         const ChaseOptions& options) {
  QueryChaseResult chase = ChaseQuery(q, sigma, options);
  if (chase.failed) return Tri::kNo;  // q empty on every model of Σ
  bool wins =
      DuplicatorWins(chase.instance, chase.frozen_head, database, tuple);
  if (!chase.saturated) {
    // A win on a chase prefix may be lost on the full chase (the spoiler
    // gains atoms), so only a loss is definitive... and not even that:
    // more atoms also never help the duplicator. Either way the prefix
    // answer is only a heuristic; report kUnknown unless saturated.
    return Tri::kUnknown;
  }
  return wins ? Tri::kYes : Tri::kNo;
}

FptEvalResult FptEvaluate(const ConjunctiveQuery& q,
                          const DependencySet& sigma, const Instance& database,
                          const SemAcOptions& options) {
  // One-shot wrapper over a transient Engine (see Engine::Eval for the
  // session API with an explicit status and reformulation reuse).
  Engine engine(sigma, options);
  EvalOutcome out = engine.Eval(engine.Prepare(q), database);
  FptEvalResult result;
  if (!out.reformulated) return result;
  result.reformulated = true;
  result.witness = std::move(out.witness);
  result.evaluation = std::move(out.evaluation);
  return result;
}

}  // namespace semacyc
