#include "eval/semac_eval.h"

#include "chase/query_chase.h"

namespace semacyc {

bool GuardedGameEvaluate(const ConjunctiveQuery& q, const Instance& database,
                         const std::vector<Term>& tuple) {
  FrozenQuery frozen = Freeze(q, TermKind::kNull);
  return DuplicatorWins(frozen.instance, frozen.frozen_head, database, tuple);
}

Tri GameEvaluateViaChase(const ConjunctiveQuery& q, const DependencySet& sigma,
                         const Instance& database,
                         const std::vector<Term>& tuple,
                         const ChaseOptions& options) {
  QueryChaseResult chase = ChaseQuery(q, sigma, options);
  if (chase.failed) return Tri::kNo;  // q empty on every model of Σ
  bool wins =
      DuplicatorWins(chase.instance, chase.frozen_head, database, tuple);
  if (!chase.saturated) {
    // A win on a chase prefix may be lost on the full chase (the spoiler
    // gains atoms), so only a loss is definitive... and not even that:
    // more atoms also never help the duplicator. Either way the prefix
    // answer is only a heuristic; report kUnknown unless saturated.
    return Tri::kUnknown;
  }
  return wins ? Tri::kYes : Tri::kNo;
}

FptEvalResult FptEvaluate(const ConjunctiveQuery& q,
                          const DependencySet& sigma, const Instance& database,
                          const SemAcOptions& options) {
  FptEvalResult result;
  SemAcResult decision = DecideSemanticAcyclicity(q, sigma, options);
  if (decision.answer != SemAcAnswer::kYes || !decision.witness.has_value()) {
    return result;
  }
  result.reformulated = true;
  result.witness = *decision.witness;
  result.evaluation = EvaluateAcyclic(result.witness, database);
  return result;
}

}  // namespace semacyc
