#include "eval/cover_game.h"

#include <cassert>
#include <unordered_map>

namespace semacyc {
namespace {

bool Rigid(Term t) { return t.IsConstant() && !t.IsFrozenNull(); }

/// The position-wise map a -> b as a functional term mapping; nullopt when
/// inconsistent (same source term to two targets) or when it moves a rigid
/// constant.
std::optional<std::vector<std::pair<Term, Term>>> AtomMap(const Atom& a,
                                                          const Atom& b) {
  if (a.predicate() != b.predicate()) return std::nullopt;
  std::vector<std::pair<Term, Term>> out;
  for (size_t i = 0; i < a.arity(); ++i) {
    Term s = a.arg(i);
    Term d = b.arg(i);
    if (Rigid(s) && s != d) return std::nullopt;
    bool found = false;
    for (auto& [x, y] : out) {
      if (x == s) {
        if (y != d) return std::nullopt;
        found = true;
        break;
      }
    }
    if (!found) out.push_back({s, d});
  }
  return out;
}

Term ImageOf(const std::vector<std::pair<Term, Term>>& map, Term s) {
  for (const auto& [x, y] : map) {
    if (x == s) return y;
  }
  return Term();
}

}  // namespace

CoverGameResult SolveCoverGame(const Instance& I, const std::vector<Term>& t,
                               const Instance& J,
                               const std::vector<Term>& t_prime) {
  CoverGameResult result;
  assert(t.size() == t_prime.size());
  const size_t n = I.size();
  if (n == 0) {
    result.duplicator_wins = true;
    return result;
  }

  // Head correspondence as a (required-functional) term map.
  std::unordered_map<Term, Term, TermHash> head_map;
  for (size_t i = 0; i < t.size(); ++i) {
    auto [it, inserted] = head_map.emplace(t[i], t_prime[i]);
    if (!inserted && it->second != t_prime[i]) {
      // The same source head term must go to two different targets: no
      // H can satisfy condition (1) for any atom mentioning it. If no
      // atom mentions it, the pair is irrelevant — drop to a sentinel
      // that poisons atoms mentioning the term.
      it->second = Term();  // invalid target = unsatisfiable
    }
  }

  // Candidate images per atom of I, honoring condition (1).
  std::vector<std::vector<uint32_t>> cand(n);
  std::vector<std::vector<std::vector<std::pair<Term, Term>>>> maps(n);
  for (size_t a = 0; a < n; ++a) {
    for (uint32_t b : J.AtomsOf(I.atom(a).predicate())) {
      auto map = AtomMap(I.atom(a), J.atom(b));
      if (!map.has_value()) continue;
      bool head_ok = true;
      for (const auto& [s, d] : *map) {
        auto it = head_map.find(s);
        if (it != head_map.end() && (!it->second.IsValid() || it->second != d)) {
          head_ok = false;
          break;
        }
      }
      if (!head_ok) continue;
      cand[a].push_back(b);
      maps[a].push_back(std::move(*map));
    }
    if (cand[a].empty()) return result;  // spoiler wins
  }

  // Atoms sharing terms (condition (2) is vacuous otherwise, except for
  // plain nonemptiness which the loop maintains).
  std::vector<std::vector<uint32_t>> neighbors(n);
  for (size_t a = 0; a < n; ++a) {
    for (size_t g = 0; g < n; ++g) {
      if (a == g) continue;
      bool shares = false;
      for (Term x : I.atom(a).DistinctTerms()) {
        if (I.atom(g).Mentions(x)) {
          shares = true;
          break;
        }
      }
      if (shares) neighbors[a].push_back(static_cast<uint32_t>(g));
    }
  }

  // Arc-consistency fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    ++result.iterations;
    for (size_t a = 0; a < n; ++a) {
      for (size_t ci = 0; ci < cand[a].size();) {
        const auto& fa = maps[a][ci];
        bool supported_everywhere = true;
        for (uint32_t g : neighbors[a]) {
          bool supported = false;
          for (size_t cj = 0; cj < cand[g].size() && !supported; ++cj) {
            const auto& fg = maps[g][cj];
            bool compatible = true;
            for (const auto& [x, y] : fa) {
              Term other = ImageOf(fg, x);
              if (other.IsValid() && other != y) {
                compatible = false;
                break;
              }
            }
            if (compatible) supported = true;
          }
          if (!supported) {
            supported_everywhere = false;
            break;
          }
        }
        if (!supported_everywhere) {
          cand[a].erase(cand[a].begin() + static_cast<long>(ci));
          maps[a].erase(maps[a].begin() + static_cast<long>(ci));
          changed = true;
          if (cand[a].empty()) return result;  // spoiler wins
        } else {
          ++ci;
        }
      }
    }
  }

  result.duplicator_wins = true;
  result.strategy = std::move(cand);
  return result;
}

bool DuplicatorWins(const Instance& I, const std::vector<Term>& t,
                    const Instance& J, const std::vector<Term>& t_prime) {
  return SolveCoverGame(I, t, J, t_prime).duplicator_wins;
}

}  // namespace semacyc
