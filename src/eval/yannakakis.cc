#include "eval/yannakakis.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "core/hypergraph.h"

namespace semacyc {
namespace {

/// A node relation: tuples over the distinct variables of one query atom.
struct NodeRelation {
  std::vector<Term> vars;                  // distinct variables of the atom
  std::vector<std::vector<Term>> tuples;   // bindings aligned with vars
};

/// Matches of `atom` in `db` as bindings over the atom's distinct vars.
NodeRelation MatchAtom(const Atom& atom, const Instance& db) {
  NodeRelation rel;
  for (Term t : atom.args()) {
    if (t.IsVariable() &&
        std::find(rel.vars.begin(), rel.vars.end(), t) == rel.vars.end()) {
      rel.vars.push_back(t);
    }
  }
  for (uint32_t idx : db.AtomsOf(atom.predicate())) {
    const Atom& fact = db.atom(idx);
    std::unordered_map<Term, Term, TermHash> binding;
    bool ok = true;
    for (size_t i = 0; i < atom.arity() && ok; ++i) {
      Term pattern = atom.arg(i);
      Term value = fact.arg(i);
      if (pattern.IsVariable()) {
        auto [it, inserted] = binding.emplace(pattern, value);
        if (!inserted && it->second != value) ok = false;
      } else if (pattern != value) {
        ok = false;
      }
    }
    if (!ok) continue;
    std::vector<Term> tuple;
    tuple.reserve(rel.vars.size());
    for (Term v : rel.vars) tuple.push_back(binding[v]);
    rel.tuples.push_back(std::move(tuple));
  }
  return rel;
}

std::vector<Term> SharedVars(const NodeRelation& a, const NodeRelation& b) {
  std::vector<Term> out;
  for (Term v : a.vars) {
    if (std::find(b.vars.begin(), b.vars.end(), v) != b.vars.end()) {
      out.push_back(v);
    }
  }
  return out;
}

std::string KeyOf(const std::vector<Term>& tuple,
                  const std::vector<int>& positions) {
  std::string key;
  for (int p : positions) {
    key += std::to_string(tuple[static_cast<size_t>(p)].raw_bits()) + ",";
  }
  return key;
}

std::vector<int> PositionsOf(const std::vector<Term>& vars,
                             const std::vector<Term>& subset) {
  std::vector<int> out;
  for (Term v : subset) {
    auto it = std::find(vars.begin(), vars.end(), v);
    assert(it != vars.end());
    out.push_back(static_cast<int>(it - vars.begin()));
  }
  return out;
}

/// Keeps in `target` only tuples whose shared-variable projection appears
/// in `source` (semi-join target ⋉ source).
void SemiJoin(NodeRelation* target, const NodeRelation& source,
              size_t* probes) {
  std::vector<Term> shared = SharedVars(*target, source);
  if (shared.empty()) {
    if (source.tuples.empty()) target->tuples.clear();
    return;
  }
  std::vector<int> src_pos = PositionsOf(source.vars, shared);
  std::vector<int> dst_pos = PositionsOf(target->vars, shared);
  std::unordered_set<std::string> keys;
  for (const auto& t : source.tuples) keys.insert(KeyOf(t, src_pos));
  std::vector<std::vector<Term>> kept;
  for (auto& t : target->tuples) {
    ++*probes;
    if (keys.count(KeyOf(t, dst_pos))) kept.push_back(std::move(t));
  }
  target->tuples = std::move(kept);
}

}  // namespace

YannakakisResult EvaluateAcyclic(const ConjunctiveQuery& q,
                                 const Instance& database) {
  // View-based join tree over the GYO parent array: only integer arrays
  // are built per evaluation, never atom copies.
  std::optional<JoinTreeView> tree =
      BuildJoinTreeView(q.body(), ConnectingTerms::kVariables);
  if (!tree.has_value()) return YannakakisResult{};
  return EvaluateAcyclic(q, *tree, database);
}

YannakakisResult EvaluateAcyclic(const ConjunctiveQuery& q,
                                 const JoinTreeView& tree,
                                 const Instance& database) {
  YannakakisResult result;
  result.ok = true;

  if (q.body().empty()) {
    // The empty conjunction is true with the (constant-only) head.
    result.answers.push_back(q.head());
    return result;
  }

  const size_t n = q.body().size();
  std::vector<NodeRelation> rels(n);
  for (size_t i = 0; i < n; ++i) rels[i] = MatchAtom(q.body()[i], database);

  std::vector<int> bottom_up = tree.BottomUpOrder();
  std::vector<int> top_down = tree.TopDownOrder();

  // Bottom-up semi-joins: parent ⋉ child.
  for (int node : bottom_up) {
    int parent = tree.parent()[node];
    if (parent >= 0) {
      SemiJoin(&rels[parent], rels[node], &result.semijoin_probes);
    }
  }
  // Top-down: child ⋉ parent.
  for (int node : top_down) {
    for (int child : tree.children()[node]) {
      SemiJoin(&rels[child], rels[node], &result.semijoin_probes);
    }
  }

  // Answer computation: bottom-up join keeping only head variables plus
  // the variables connecting to the parent.
  std::unordered_set<Term> free_vars;
  for (Term h : q.head()) {
    if (h.IsVariable()) free_vars.insert(h);
  }

  // For each node, the set of variables its DP relation carries.
  std::vector<std::vector<Term>> carry(n);
  std::vector<NodeRelation> dp(n);
  for (int node : bottom_up) {
    // Join node relation with all children's DP relations.
    NodeRelation acc;
    acc.vars = rels[node].vars;
    acc.tuples = rels[node].tuples;
    for (int child : tree.children()[node]) {
      // Hash join acc ⋈ dp[child] on shared vars.
      NodeRelation joined;
      joined.vars = acc.vars;
      for (Term v : dp[child].vars) {
        if (std::find(joined.vars.begin(), joined.vars.end(), v) ==
            joined.vars.end()) {
          joined.vars.push_back(v);
        }
      }
      std::vector<Term> shared = SharedVars(acc, dp[child]);
      std::vector<int> left_pos = PositionsOf(acc.vars, shared);
      std::vector<int> right_pos = PositionsOf(dp[child].vars, shared);
      std::unordered_map<std::string, std::vector<const std::vector<Term>*>>
          index;
      for (const auto& t : dp[child].tuples) {
        index[KeyOf(t, right_pos)].push_back(&t);
      }
      std::vector<int> extra;  // positions of dp[child] vars not in acc
      for (size_t i = 0; i < dp[child].vars.size(); ++i) {
        if (std::find(acc.vars.begin(), acc.vars.end(), dp[child].vars[i]) ==
            acc.vars.end()) {
          extra.push_back(static_cast<int>(i));
        }
      }
      for (const auto& t : acc.tuples) {
        auto it = index.find(KeyOf(t, left_pos));
        if (it == index.end()) continue;
        for (const std::vector<Term>* rt : it->second) {
          std::vector<Term> merged = t;
          for (int p : extra) merged.push_back((*rt)[static_cast<size_t>(p)]);
          joined.tuples.push_back(std::move(merged));
        }
      }
      acc = std::move(joined);
    }
    // Project to head vars + connector with parent.
    int parent = tree.parent()[node];
    std::unordered_set<Term> keep;
    for (Term v : acc.vars) {
      if (free_vars.count(v)) keep.insert(v);
    }
    if (parent >= 0) {
      for (Term v : rels[parent].vars) {
        if (std::find(acc.vars.begin(), acc.vars.end(), v) != acc.vars.end()) {
          keep.insert(v);
        }
      }
    }
    NodeRelation projected;
    for (Term v : acc.vars) {
      if (keep.count(v)) projected.vars.push_back(v);
    }
    std::vector<int> proj_pos = PositionsOf(acc.vars, projected.vars);
    std::unordered_set<std::string> seen;
    for (const auto& t : acc.tuples) {
      std::vector<Term> p;
      p.reserve(proj_pos.size());
      for (int pos : proj_pos) p.push_back(t[static_cast<size_t>(pos)]);
      std::string key = KeyOf(p, PositionsOf(projected.vars, projected.vars));
      if (seen.insert(key).second) projected.tuples.push_back(std::move(p));
    }
    dp[node] = std::move(projected);
  }

  // Assemble answers from the root DP relation.
  const NodeRelation& root = dp[static_cast<size_t>(tree.root())];
  std::unordered_set<std::string> out_seen;
  for (const auto& t : root.tuples) {
    std::vector<Term> answer;
    answer.reserve(q.head().size());
    bool ok = true;
    for (Term h : q.head()) {
      if (!h.IsVariable()) {
        answer.push_back(h);
        continue;
      }
      auto it = std::find(root.vars.begin(), root.vars.end(), h);
      if (it == root.vars.end()) {
        ok = false;  // head var not in root carry: should not happen for
        break;       // connected queries; fall through defensively
      }
      answer.push_back(t[static_cast<size_t>(it - root.vars.begin())]);
    }
    if (!ok) continue;
    std::string key;
    for (Term a : answer) key += std::to_string(a.raw_bits()) + ",";
    if (out_seen.insert(key).second) result.answers.push_back(answer);
  }
  return result;
}

int EvaluateAcyclicBoolean(const ConjunctiveQuery& q,
                           const Instance& database) {
  std::optional<JoinTreeView> tree =
      BuildJoinTreeView(q.body(), ConnectingTerms::kVariables);
  if (!tree.has_value()) return -1;
  return EvaluateAcyclicBoolean(q, *tree, database);
}

int EvaluateAcyclicBoolean(const ConjunctiveQuery& q, const JoinTreeView& tree,
                           const Instance& database) {
  if (q.body().empty()) return 1;

  const size_t n = q.body().size();
  std::vector<NodeRelation> rels(n);
  for (size_t i = 0; i < n; ++i) {
    rels[i] = MatchAtom(q.body()[i], database);
    if (rels[i].tuples.empty()) return 0;
  }
  size_t probes = 0;
  for (int node : tree.BottomUpOrder()) {
    int parent = tree.parent()[node];
    if (parent >= 0) {
      SemiJoin(&rels[parent], rels[node], &probes);
      if (rels[parent].tuples.empty()) return 0;
    }
  }
  return rels[static_cast<size_t>(tree.root())].tuples.empty() ? 0 : 1;
}

}  // namespace semacyc
