#include "eval/yannakakis.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "core/hypergraph.h"

namespace semacyc {
namespace {

/// A node relation: tuples over the distinct variables of one query atom.
struct NodeRelation {
  std::vector<Term> vars;                  // distinct variables of the atom
  std::vector<std::vector<Term>> tuples;   // bindings aligned with vars
};

/// Matches of `atom` in `db` as bindings over the atom's distinct vars.
NodeRelation MatchAtom(const Atom& atom, const Instance& db) {
  NodeRelation rel;
  for (Term t : atom.args()) {
    if (t.IsVariable() &&
        std::find(rel.vars.begin(), rel.vars.end(), t) == rel.vars.end()) {
      rel.vars.push_back(t);
    }
  }
  for (uint32_t idx : db.AtomsOf(atom.predicate())) {
    const Atom& fact = db.atom(idx);
    std::unordered_map<Term, Term, TermHash> binding;
    bool ok = true;
    for (size_t i = 0; i < atom.arity() && ok; ++i) {
      Term pattern = atom.arg(i);
      Term value = fact.arg(i);
      if (pattern.IsVariable()) {
        auto [it, inserted] = binding.emplace(pattern, value);
        if (!inserted && it->second != value) ok = false;
      } else if (pattern != value) {
        ok = false;
      }
    }
    if (!ok) continue;
    std::vector<Term> tuple;
    tuple.reserve(rel.vars.size());
    for (Term v : rel.vars) tuple.push_back(binding[v]);
    rel.tuples.push_back(std::move(tuple));
  }
  return rel;
}

std::vector<Term> SharedVars(const NodeRelation& a, const NodeRelation& b) {
  std::vector<Term> out;
  for (Term v : a.vars) {
    if (std::find(b.vars.begin(), b.vars.end(), v) != b.vars.end()) {
      out.push_back(v);
    }
  }
  return out;
}

/// 64-bit key of a tuple's projection onto `positions`. Collisions are
/// possible, so every probe re-verifies the projected terms themselves
/// (ProjectionsEqual) — correctness never rests on the hash.
uint64_t KeyOf(const std::vector<Term>& tuple,
               const std::vector<int>& positions) {
  size_t seed = 0x9e3779b97f4a7c15ull ^ positions.size();
  for (int p : positions) {
    HashCombine(&seed, TermHash{}(tuple[static_cast<size_t>(p)]));
  }
  return seed;
}

/// 64-bit key over the whole tuple (dedup sets).
uint64_t KeyOfAll(const std::vector<Term>& tuple) {
  size_t seed = 0x9e3779b97f4a7c15ull ^ tuple.size();
  for (Term t : tuple) HashCombine(&seed, TermHash{}(t));
  return seed;
}

bool ProjectionsEqual(const std::vector<Term>& a, const std::vector<int>& pa,
                      const std::vector<Term>& b, const std::vector<int>& pb) {
  for (size_t i = 0; i < pa.size(); ++i) {
    if (a[static_cast<size_t>(pa[i])] != b[static_cast<size_t>(pb[i])]) {
      return false;
    }
  }
  return true;
}

/// Collision-safe dedup set over whole tuples: 64-bit key buckets holding
/// indices into the owning tuple vector, equality by the tuples themselves.
class TupleSeenSet {
 public:
  explicit TupleSeenSet(const std::vector<std::vector<Term>>* owner)
      : owner_(owner) {}

  /// True iff `t` was not seen before. The caller must push `t` onto the
  /// owner vector right after a true return (the recorded index points at
  /// the owner's current end).
  bool InsertIfNew(const std::vector<Term>& t) {
    std::vector<size_t>& bucket = buckets_[KeyOfAll(t)];
    for (size_t idx : bucket) {
      if ((*owner_)[idx] == t) return false;
    }
    bucket.push_back(owner_->size());
    return true;
  }

 private:
  const std::vector<std::vector<Term>>* owner_;
  std::unordered_map<uint64_t, std::vector<size_t>> buckets_;
};

std::vector<int> PositionsOf(const std::vector<Term>& vars,
                             const std::vector<Term>& subset) {
  std::vector<int> out;
  for (Term v : subset) {
    auto it = std::find(vars.begin(), vars.end(), v);
    assert(it != vars.end());
    out.push_back(static_cast<int>(it - vars.begin()));
  }
  return out;
}

/// Keeps in `target` only tuples whose shared-variable projection appears
/// in `source` (semi-join target ⋉ source).
void SemiJoin(NodeRelation* target, const NodeRelation& source,
              size_t* probes) {
  std::vector<Term> shared = SharedVars(*target, source);
  if (shared.empty()) {
    if (source.tuples.empty()) target->tuples.clear();
    return;
  }
  std::vector<int> src_pos = PositionsOf(source.vars, shared);
  std::vector<int> dst_pos = PositionsOf(target->vars, shared);
  std::unordered_map<uint64_t, std::vector<const std::vector<Term>*>> keys;
  for (const auto& t : source.tuples) keys[KeyOf(t, src_pos)].push_back(&t);
  std::vector<std::vector<Term>> kept;
  for (auto& t : target->tuples) {
    ++*probes;
    auto it = keys.find(KeyOf(t, dst_pos));
    if (it == keys.end()) continue;
    for (const std::vector<Term>* s : it->second) {
      if (ProjectionsEqual(t, dst_pos, *s, src_pos)) {
        kept.push_back(std::move(t));
        break;
      }
    }
  }
  target->tuples = std::move(kept);
}

}  // namespace

YannakakisResult EvaluateAcyclic(const ConjunctiveQuery& q,
                                 const Instance& database) {
  // View-based join tree over the GYO parent array: only integer arrays
  // are built per evaluation, never atom copies. Re-rooting at an atom
  // covering the head keeps the answer-assembly DP linear (join_tree.h).
  std::optional<JoinTreeView> tree =
      BuildJoinTreeView(q.body(), ConnectingTerms::kVariables);
  if (!tree.has_value()) return YannakakisResult{};
  JoinTreeView rooted = RerootForHead(*tree, q.head());
  return EvaluateAcyclic(q, rooted, database);
}

YannakakisResult EvaluateAcyclic(const ConjunctiveQuery& q,
                                 const JoinTreeView& tree,
                                 const Instance& database) {
  YannakakisResult result;
  result.ok = true;

  if (q.body().empty()) {
    // The empty conjunction is true with the (constant-only) head.
    result.answers.push_back(q.head());
    return result;
  }

  const size_t n = q.body().size();
  std::vector<NodeRelation> rels(n);
  for (size_t i = 0; i < n; ++i) rels[i] = MatchAtom(q.body()[i], database);

  std::vector<int> bottom_up = tree.BottomUpOrder();
  std::vector<int> top_down = tree.TopDownOrder();

  // Bottom-up semi-joins: parent ⋉ child.
  for (int node : bottom_up) {
    int parent = tree.parent()[node];
    if (parent >= 0) {
      SemiJoin(&rels[parent], rels[node], &result.semijoin_probes);
    }
  }
  // Top-down: child ⋉ parent.
  for (int node : top_down) {
    for (int child : tree.children()[node]) {
      SemiJoin(&rels[child], rels[node], &result.semijoin_probes);
    }
  }

  // Answer computation: bottom-up join keeping only head variables plus
  // the variables connecting to the parent.
  std::unordered_set<Term> free_vars;
  for (Term h : q.head()) {
    if (h.IsVariable()) free_vars.insert(h);
  }

  // For each node, the set of variables its DP relation carries.
  std::vector<std::vector<Term>> carry(n);
  std::vector<NodeRelation> dp(n);
  for (int node : bottom_up) {
    // Join node relation with all children's DP relations.
    NodeRelation acc;
    acc.vars = rels[node].vars;
    acc.tuples = rels[node].tuples;
    for (int child : tree.children()[node]) {
      // Hash join acc ⋈ dp[child] on shared vars.
      NodeRelation joined;
      joined.vars = acc.vars;
      for (Term v : dp[child].vars) {
        if (std::find(joined.vars.begin(), joined.vars.end(), v) ==
            joined.vars.end()) {
          joined.vars.push_back(v);
        }
      }
      std::vector<Term> shared = SharedVars(acc, dp[child]);
      std::vector<int> left_pos = PositionsOf(acc.vars, shared);
      std::vector<int> right_pos = PositionsOf(dp[child].vars, shared);
      std::unordered_map<uint64_t, std::vector<const std::vector<Term>*>>
          index;
      for (const auto& t : dp[child].tuples) {
        index[KeyOf(t, right_pos)].push_back(&t);
      }
      std::vector<int> extra;  // positions of dp[child] vars not in acc
      for (size_t i = 0; i < dp[child].vars.size(); ++i) {
        if (std::find(acc.vars.begin(), acc.vars.end(), dp[child].vars[i]) ==
            acc.vars.end()) {
          extra.push_back(static_cast<int>(i));
        }
      }
      for (const auto& t : acc.tuples) {
        auto it = index.find(KeyOf(t, left_pos));
        if (it == index.end()) continue;
        for (const std::vector<Term>* rt : it->second) {
          if (!ProjectionsEqual(t, left_pos, *rt, right_pos)) continue;
          std::vector<Term> merged = t;
          for (int p : extra) merged.push_back((*rt)[static_cast<size_t>(p)]);
          joined.tuples.push_back(std::move(merged));
        }
      }
      acc = std::move(joined);
    }
    // Project to head vars + connector with parent.
    int parent = tree.parent()[node];
    std::unordered_set<Term> keep;
    for (Term v : acc.vars) {
      if (free_vars.count(v)) keep.insert(v);
    }
    if (parent >= 0) {
      for (Term v : rels[parent].vars) {
        if (std::find(acc.vars.begin(), acc.vars.end(), v) != acc.vars.end()) {
          keep.insert(v);
        }
      }
    }
    NodeRelation projected;
    for (Term v : acc.vars) {
      if (keep.count(v)) projected.vars.push_back(v);
    }
    std::vector<int> proj_pos = PositionsOf(acc.vars, projected.vars);
    TupleSeenSet seen(&projected.tuples);
    for (const auto& t : acc.tuples) {
      std::vector<Term> p;
      p.reserve(proj_pos.size());
      for (int pos : proj_pos) p.push_back(t[static_cast<size_t>(pos)]);
      if (seen.InsertIfNew(p)) projected.tuples.push_back(std::move(p));
    }
    dp[node] = std::move(projected);
  }

  // Assemble answers from the root DP relation.
  const NodeRelation& root = dp[static_cast<size_t>(tree.root())];
  TupleSeenSet out_seen(&result.answers);
  for (const auto& t : root.tuples) {
    std::vector<Term> answer;
    answer.reserve(q.head().size());
    bool ok = true;
    for (Term h : q.head()) {
      if (!h.IsVariable()) {
        answer.push_back(h);
        continue;
      }
      auto it = std::find(root.vars.begin(), root.vars.end(), h);
      if (it == root.vars.end()) {
        ok = false;  // head var not in root carry: should not happen for
        break;       // connected queries; fall through defensively
      }
      answer.push_back(t[static_cast<size_t>(it - root.vars.begin())]);
    }
    if (!ok) continue;
    if (out_seen.InsertIfNew(answer)) result.answers.push_back(answer);
  }
  return result;
}

int EvaluateAcyclicBoolean(const ConjunctiveQuery& q,
                           const Instance& database) {
  std::optional<JoinTreeView> tree =
      BuildJoinTreeView(q.body(), ConnectingTerms::kVariables);
  if (!tree.has_value()) return -1;
  return EvaluateAcyclicBoolean(q, *tree, database);
}

int EvaluateAcyclicBoolean(const ConjunctiveQuery& q, const JoinTreeView& tree,
                           const Instance& database) {
  if (q.body().empty()) return 1;

  const size_t n = q.body().size();
  std::vector<NodeRelation> rels(n);
  for (size_t i = 0; i < n; ++i) {
    rels[i] = MatchAtom(q.body()[i], database);
    if (rels[i].tuples.empty()) return 0;
  }
  size_t probes = 0;
  for (int node : tree.BottomUpOrder()) {
    int parent = tree.parent()[node];
    if (parent >= 0) {
      SemiJoin(&rels[parent], rels[node], &probes);
      if (rels[parent].tuples.empty()) return 0;
    }
  }
  return rels[static_cast<size_t>(tree.root())].tuples.empty() ? 0 : 1;
}

}  // namespace semacyc
