#ifndef SEMACYC_DEPS_WEAKLY_ACYCLIC_H_
#define SEMACYC_DEPS_WEAKLY_ACYCLIC_H_

#include <vector>

#include "chase/dependency.h"

namespace semacyc {

/// The position dependency graph of Fagin et al. [16]: nodes are positions
/// (R, i); for each tgd and each body occurrence of a frontier variable x
/// at position p:
///   * a regular edge p -> p' for every head occurrence of x at p';
///   * a special edge p => p'' for every head position p'' holding an
///     existentially quantified variable.
/// The set is weakly acyclic iff no cycle goes through a special edge.
/// Weak acyclicity guarantees chase termination; the class contains all
/// full tgds and is therefore ruled out for SemAc by Theorem 7.
bool IsWeaklyAcyclic(const std::vector<Tgd>& tgds);

}  // namespace semacyc

#endif  // SEMACYC_DEPS_WEAKLY_ACYCLIC_H_
