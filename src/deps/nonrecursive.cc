#include "deps/nonrecursive.h"

#include <algorithm>

namespace semacyc {

PredicateGraph PredicateGraph::Of(const std::vector<Tgd>& tgds) {
  PredicateGraph g;
  auto node_of = [&g](Predicate p) {
    auto it = std::find(g.nodes.begin(), g.nodes.end(), p);
    if (it != g.nodes.end()) return static_cast<int>(it - g.nodes.begin());
    g.nodes.push_back(p);
    return static_cast<int>(g.nodes.size() - 1);
  };
  for (const Tgd& tgd : tgds) {
    for (const Atom& b : tgd.body()) {
      int from = node_of(b.predicate());
      for (const Atom& h : tgd.head()) {
        int to = node_of(h.predicate());
        if (std::find(g.edges.begin(), g.edges.end(),
                      std::make_pair(from, to)) == g.edges.end()) {
          g.edges.push_back({from, to});
        }
      }
    }
  }
  return g;
}

bool PredicateGraph::HasDirectedCycle() const {
  const int n = static_cast<int>(nodes.size());
  std::vector<std::vector<int>> adj(n);
  for (auto [a, b] : edges) adj[a].push_back(b);
  // 0 = unvisited, 1 = on stack, 2 = done.
  std::vector<int> state(n, 0);
  std::vector<std::pair<int, size_t>> stack;
  for (int start = 0; start < n; ++start) {
    if (state[start] != 0) continue;
    stack.push_back({start, 0});
    state[start] = 1;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      if (next < adj[node].size()) {
        int child = adj[node][next++];
        if (state[child] == 1) return true;
        if (state[child] == 0) {
          state[child] = 1;
          stack.push_back({child, 0});
        }
      } else {
        state[node] = 2;
        stack.pop_back();
      }
    }
  }
  return false;
}

std::vector<int> PredicateGraph::Strata() const {
  if (HasDirectedCycle()) return {};
  const int n = static_cast<int>(nodes.size());
  std::vector<int> strata(n, 0);
  // Longest-path layering by repeated relaxation (graphs are tiny).
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto [a, b] : edges) {
      if (strata[b] < strata[a] + 1) {
        strata[b] = strata[a] + 1;
        changed = true;
      }
    }
  }
  return strata;
}

bool IsNonRecursive(const std::vector<Tgd>& tgds) {
  return !PredicateGraph::Of(tgds).HasDirectedCycle();
}

size_t NonRecursiveChaseDepthBound(const std::vector<Tgd>& tgds) {
  PredicateGraph g = PredicateGraph::Of(tgds);
  std::vector<int> strata = g.Strata();
  int max_stratum = 0;
  for (int s : strata) max_stratum = std::max(max_stratum, s);
  return static_cast<size_t>(max_stratum) + 2;
}

}  // namespace semacyc
