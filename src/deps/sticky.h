#ifndef SEMACYC_DEPS_STICKY_H_
#define SEMACYC_DEPS_STICKY_H_

#include <set>
#include <string>
#include <vector>

#include "chase/dependency.h"

namespace semacyc {

/// The sticky marking procedure of Calì–Gottlob–Pieris, as sketched in §2
/// and Figure 1(b) of the paper.
///
///   * Base step: mark (every body occurrence of) each variable of a tgd
///     that fails to occur in *every* head atom of that tgd.
///   * Propagation: if a marked variable occurs in some tgd body at
///     position (R, i), then for every tgd whose head contains a
///     universally quantified variable u at (R, i), mark u in that tgd's
///     body. Iterate to fixpoint.
///
/// The set is sticky iff no tgd body contains two occurrences of a marked
/// variable.
struct StickyMarking {
  /// marked[t] = the marked body variables of tgds[t].
  std::vector<std::set<Term>> marked;
  /// The marked body positions (predicate id, argument index).
  std::set<std::pair<uint32_t, int>> marked_positions;
  /// Index of the first tgd violating stickiness, or -1.
  int violating_tgd = -1;
  /// The violating (doubly occurring marked) variable, when any.
  Term violating_variable;

  bool IsSticky() const { return violating_tgd < 0; }
  std::string ToString(const std::vector<Tgd>& tgds) const;
};

/// Runs the marking procedure.
StickyMarking ComputeStickyMarking(const std::vector<Tgd>& tgds);

/// S (§2): the set passes the sticky test.
bool IsSticky(const std::vector<Tgd>& tgds);

}  // namespace semacyc

#endif  // SEMACYC_DEPS_STICKY_H_
