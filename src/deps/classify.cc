#include "deps/classify.h"

#include <algorithm>

#include "deps/nonrecursive.h"
#include "deps/sticky.h"
#include "deps/weakly_acyclic.h"

namespace semacyc {

const char* ToString(TgdClass c) {
  switch (c) {
    case TgdClass::kFull:
      return "full";
    case TgdClass::kGuarded:
      return "guarded";
    case TgdClass::kLinear:
      return "linear";
    case TgdClass::kInclusion:
      return "inclusion";
    case TgdClass::kNonRecursive:
      return "non-recursive";
    case TgdClass::kSticky:
      return "sticky";
    case TgdClass::kWeaklyAcyclic:
      return "weakly-acyclic";
  }
  return "?";
}

bool TgdClassification::Is(TgdClass c) const {
  switch (c) {
    case TgdClass::kFull:
      return full;
    case TgdClass::kGuarded:
      return guarded;
    case TgdClass::kLinear:
      return linear;
    case TgdClass::kInclusion:
      return inclusion;
    case TgdClass::kNonRecursive:
      return non_recursive;
    case TgdClass::kSticky:
      return sticky;
    case TgdClass::kWeaklyAcyclic:
      return weakly_acyclic;
  }
  return false;
}

std::string TgdClassification::ToString() const {
  std::string out;
  auto add = [&out](bool flag, const char* name) {
    if (flag) {
      if (!out.empty()) out += ", ";
      out += name;
    }
  };
  add(full, "full");
  add(guarded, "guarded");
  add(linear, "linear");
  add(inclusion, "inclusion");
  add(non_recursive, "non-recursive");
  add(sticky, "sticky");
  add(weakly_acyclic, "weakly-acyclic");
  if (out.empty()) out = "(none)";
  return out;
}

bool IsFullSet(const std::vector<Tgd>& tgds) {
  return std::all_of(tgds.begin(), tgds.end(),
                     [](const Tgd& t) { return t.IsFull(); });
}

bool IsGuardedSet(const std::vector<Tgd>& tgds) {
  return std::all_of(tgds.begin(), tgds.end(),
                     [](const Tgd& t) { return t.IsGuarded(); });
}

bool IsLinearSet(const std::vector<Tgd>& tgds) {
  return std::all_of(tgds.begin(), tgds.end(),
                     [](const Tgd& t) { return t.IsLinear(); });
}

bool IsInclusionSet(const std::vector<Tgd>& tgds) {
  return std::all_of(tgds.begin(), tgds.end(),
                     [](const Tgd& t) { return t.IsInclusionDependency(); });
}

TgdClassification Classify(const std::vector<Tgd>& tgds) {
  TgdClassification out;
  out.full = IsFullSet(tgds);
  out.guarded = IsGuardedSet(tgds);
  out.linear = IsLinearSet(tgds);
  out.inclusion = IsInclusionSet(tgds);
  out.non_recursive = IsNonRecursive(tgds);
  out.sticky = IsSticky(tgds);
  out.weakly_acyclic = IsWeaklyAcyclic(tgds);
  return out;
}

bool RecognizedFd::IsKey() const {
  std::vector<int> covered = lhs;
  covered.push_back(rhs);
  std::sort(covered.begin(), covered.end());
  covered.erase(std::unique(covered.begin(), covered.end()), covered.end());
  return static_cast<int>(covered.size()) == predicate.arity();
}

std::optional<RecognizedFd> RecognizeFd(const Egd& egd) {
  if (egd.body().size() != 2) return std::nullopt;
  const Atom& a = egd.body()[0];
  const Atom& b = egd.body()[1];
  if (a.predicate() != b.predicate()) return std::nullopt;
  RecognizedFd fd;
  fd.predicate = a.predicate();
  for (size_t i = 0; i < a.arity(); ++i) {
    Term ta = a.arg(i);
    Term tb = b.arg(i);
    if (!ta.IsVariable() || !tb.IsVariable()) return std::nullopt;
    if (ta == tb) {
      fd.lhs.push_back(static_cast<int>(i));
    } else if ((ta == egd.lhs() && tb == egd.rhs()) ||
               (ta == egd.rhs() && tb == egd.lhs())) {
      if (fd.rhs != -1) return std::nullopt;  // equated pair must be unique
      fd.rhs = static_cast<int>(i);
    }
    // Positions with distinct non-equated variables are "don't care"
    // attributes; they are fine for an FD A -> {rhs}.
  }
  if (fd.rhs == -1) return std::nullopt;
  // The equated variables must not occur anywhere else (otherwise the egd is
  // not a plain FD).
  int occurrences_l = 0, occurrences_r = 0;
  for (const Atom& atom : egd.body()) {
    for (Term t : atom.args()) {
      if (t == egd.lhs()) ++occurrences_l;
      if (t == egd.rhs()) ++occurrences_r;
    }
  }
  if (occurrences_l != 1 || occurrences_r != 1) return std::nullopt;
  return fd;
}

bool IsK2Set(const std::vector<Egd>& egds) {
  for (const Egd& e : egds) {
    std::optional<RecognizedFd> fd = RecognizeFd(e);
    if (!fd.has_value()) return false;
    if (fd->predicate.arity() > 2) return false;
    if (!fd->IsKey()) return false;
  }
  return true;
}

bool IsUnaryFdSet(const std::vector<Egd>& egds) {
  for (const Egd& e : egds) {
    std::optional<RecognizedFd> fd = RecognizeFd(e);
    if (!fd.has_value() || !fd->IsUnary()) return false;
  }
  return true;
}

}  // namespace semacyc
