#ifndef SEMACYC_DEPS_CLASSIFY_H_
#define SEMACYC_DEPS_CLASSIFY_H_

#include <optional>
#include <string>
#include <vector>

#include "chase/dependency.h"

namespace semacyc {

/// The syntactic classes of sets of tgds from §2 of the paper.
enum class TgdClass {
  kFull,          // F:  no existential head variables
  kGuarded,       // G:  some body atom contains all body variables
  kLinear,        // L:  single body atom
  kInclusion,     // ID: linear, single head atom, no repeated variables
  kNonRecursive,  // NR: acyclic predicate graph
  kSticky,        // S:  sticky marking has no repeated marked variable
  kWeaklyAcyclic, // WA: position dependency graph, no special cycle
};

const char* ToString(TgdClass c);

/// Per-set classification report.
struct TgdClassification {
  bool full = false;
  bool guarded = false;
  bool linear = false;
  bool inclusion = false;
  bool non_recursive = false;
  bool sticky = false;
  bool weakly_acyclic = false;

  bool Is(TgdClass c) const;
  std::string ToString() const;
};

/// Classifies a set of tgds against every implemented class.
TgdClassification Classify(const std::vector<Tgd>& tgds);

/// Individual set-level checks.
bool IsFullSet(const std::vector<Tgd>& tgds);
bool IsGuardedSet(const std::vector<Tgd>& tgds);
bool IsLinearSet(const std::vector<Tgd>& tgds);
bool IsInclusionSet(const std::vector<Tgd>& tgds);

/// ---- Egd-side recognizers (§6). ----

/// A recognized functional dependency shape: body is two atoms of the same
/// predicate; `lhs` = positions where both atoms share a variable; the
/// equated pair sits at position `rhs` of the two atoms.
struct RecognizedFd {
  Predicate predicate;
  std::vector<int> lhs;
  int rhs = -1;

  bool IsKey() const;
  bool IsUnary() const { return lhs.size() == 1; }
};

/// Tries to interpret an egd as a functional dependency R : A -> {b}.
std::optional<RecognizedFd> RecognizeFd(const Egd& egd);

/// K2 (§6.2): every egd is a key over a unary or binary predicate.
bool IsK2Set(const std::vector<Egd>& egds);

/// Unary FDs over unconstrained signatures (Theorem 23 extension /
/// [Figueira, LICS'16]).
bool IsUnaryFdSet(const std::vector<Egd>& egds);

}  // namespace semacyc

#endif  // SEMACYC_DEPS_CLASSIFY_H_
