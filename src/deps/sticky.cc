#include "deps/sticky.h"

namespace semacyc {

StickyMarking ComputeStickyMarking(const std::vector<Tgd>& tgds) {
  StickyMarking marking;
  marking.marked.resize(tgds.size());

  // Base step: variable occurs in the body but not in every head atom.
  for (size_t t = 0; t < tgds.size(); ++t) {
    for (Term v : tgds[t].body_variables()) {
      bool in_every_head_atom = true;
      for (const Atom& h : tgds[t].head()) {
        if (!h.Mentions(v)) {
          in_every_head_atom = false;
          break;
        }
      }
      if (!in_every_head_atom) marking.marked[t].insert(v);
    }
  }

  auto collect_positions = [&]() {
    std::set<std::pair<uint32_t, int>> positions;
    for (size_t t = 0; t < tgds.size(); ++t) {
      for (const Atom& b : tgds[t].body()) {
        for (size_t i = 0; i < b.arity(); ++i) {
          if (b.arg(i).IsVariable() && marking.marked[t].count(b.arg(i))) {
            positions.insert({b.predicate().id(), static_cast<int>(i)});
          }
        }
      }
    }
    return positions;
  };

  // Propagation to fixpoint: head variable at a marked position becomes
  // marked in its own body.
  bool changed = true;
  while (changed) {
    changed = false;
    std::set<std::pair<uint32_t, int>> positions = collect_positions();
    for (size_t t = 0; t < tgds.size(); ++t) {
      // Universally quantified head variables = frontier variables.
      std::set<Term> frontier(tgds[t].frontier().begin(),
                              tgds[t].frontier().end());
      for (const Atom& h : tgds[t].head()) {
        for (size_t i = 0; i < h.arity(); ++i) {
          Term u = h.arg(i);
          if (!u.IsVariable() || !frontier.count(u)) continue;
          if (!positions.count({h.predicate().id(), static_cast<int>(i)})) {
            continue;
          }
          if (marking.marked[t].insert(u).second) changed = true;
        }
      }
    }
  }
  marking.marked_positions = collect_positions();

  // Sticky test: no tgd body has two occurrences of a marked variable.
  for (size_t t = 0; t < tgds.size() && marking.violating_tgd < 0; ++t) {
    for (Term v : marking.marked[t]) {
      int occurrences = 0;
      for (const Atom& b : tgds[t].body()) {
        for (Term arg : b.args()) {
          if (arg == v) ++occurrences;
        }
      }
      if (occurrences >= 2) {
        marking.violating_tgd = static_cast<int>(t);
        marking.violating_variable = v;
        break;
      }
    }
  }
  return marking;
}

bool IsSticky(const std::vector<Tgd>& tgds) {
  return ComputeStickyMarking(tgds).IsSticky();
}

std::string StickyMarking::ToString(const std::vector<Tgd>& tgds) const {
  std::string out;
  for (size_t t = 0; t < tgds.size(); ++t) {
    out += tgds[t].ToString() + "   marked: {";
    bool first = true;
    for (Term v : marked[t]) {
      if (!first) out += ",";
      out += v.ToString();
      first = false;
    }
    out += "}\n";
  }
  out += IsSticky() ? "=> sticky" : "=> NOT sticky";
  if (!IsSticky()) {
    out += " (tgd " + std::to_string(violating_tgd) + ", variable " +
           violating_variable.ToString() + ")";
  }
  return out;
}

}  // namespace semacyc
