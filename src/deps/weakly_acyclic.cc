#include "deps/weakly_acyclic.h"

#include <map>
#include <set>

namespace semacyc {
namespace {

using Position = std::pair<uint32_t, int>;  // (predicate id, argument index)

struct PositionGraph {
  std::set<Position> nodes;
  std::set<std::pair<Position, Position>> regular;
  std::set<std::pair<Position, Position>> special;
};

PositionGraph BuildPositionGraph(const std::vector<Tgd>& tgds) {
  PositionGraph g;
  for (const Tgd& tgd : tgds) {
    std::set<Term> frontier(tgd.frontier().begin(), tgd.frontier().end());
    std::set<Term> existential(tgd.existential_variables().begin(),
                               tgd.existential_variables().end());
    for (const Atom& b : tgd.body()) {
      for (size_t i = 0; i < b.arity(); ++i) {
        Term x = b.arg(i);
        if (!x.IsVariable()) continue;
        Position p{b.predicate().id(), static_cast<int>(i)};
        g.nodes.insert(p);
        if (!frontier.count(x)) continue;
        for (const Atom& h : tgd.head()) {
          for (size_t j = 0; j < h.arity(); ++j) {
            Position q{h.predicate().id(), static_cast<int>(j)};
            g.nodes.insert(q);
            Term y = h.arg(j);
            if (y == x) g.regular.insert({p, q});
            if (y.IsVariable() && existential.count(y)) {
              g.special.insert({p, q});
            }
          }
        }
      }
    }
  }
  return g;
}

}  // namespace

bool IsWeaklyAcyclic(const std::vector<Tgd>& tgds) {
  PositionGraph g = BuildPositionGraph(tgds);
  // A cycle through a special edge exists iff for some special edge
  // (u, v) there is a path v ->* u using any edges. Compute reachability
  // by Floyd–Warshall-style closure over the (small) node set.
  std::vector<Position> nodes(g.nodes.begin(), g.nodes.end());
  const int n = static_cast<int>(nodes.size());
  std::map<Position, int> index;
  for (int i = 0; i < n; ++i) index[nodes[i]] = i;
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  auto add_edges = [&](const std::set<std::pair<Position, Position>>& edges) {
    for (const auto& [a, b] : edges) reach[index[a]][index[b]] = true;
  };
  add_edges(g.regular);
  add_edges(g.special);
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      if (!reach[i][k]) continue;
      for (int j = 0; j < n; ++j) {
        if (reach[k][j]) reach[i][j] = true;
      }
    }
  }
  for (const auto& [u, v] : g.special) {
    if (u == v || reach[index[v]][index[u]]) return false;
  }
  return true;
}

}  // namespace semacyc
