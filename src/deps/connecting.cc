#include "deps/connecting.h"

namespace semacyc {
namespace {

std::vector<Atom> StarAtoms(const std::vector<Atom>& atoms, Term w) {
  std::vector<Atom> out;
  out.reserve(atoms.size());
  for (const Atom& a : atoms) {
    std::vector<Term> args = a.args();
    args.push_back(w);
    out.emplace_back(ConnectingOperator::Star(a.predicate()), std::move(args));
  }
  return out;
}

}  // namespace

Predicate ConnectingOperator::Star(Predicate p) {
  return Predicate::Get(p.name() + "_star", p.arity() + 1);
}

Predicate ConnectingOperator::Aux() { return Predicate::Get("aux", 2); }

ConjunctiveQuery ConnectingOperator::ConnectLeft(const ConjunctiveQuery& q) {
  Term w = FreshVariable();
  std::vector<Atom> body = StarAtoms(q.body(), w);
  body.push_back(Atom(Aux(), {w, w}));
  return ConjunctiveQuery(q.head(), std::move(body));
}

ConjunctiveQuery ConnectingOperator::ConnectRight(const ConjunctiveQuery& q) {
  Term w = FreshVariable();
  Term u = FreshVariable();
  Term v = FreshVariable();
  std::vector<Atom> body = StarAtoms(q.body(), w);
  body.push_back(Atom(Aux(), {w, u}));
  body.push_back(Atom(Aux(), {u, v}));
  body.push_back(Atom(Aux(), {v, w}));
  return ConjunctiveQuery(q.head(), std::move(body));
}

Tgd ConnectingOperator::Connect(const Tgd& tgd) {
  Term w = FreshVariable();
  return Tgd(StarAtoms(tgd.body(), w), StarAtoms(tgd.head(), w));
}

DependencySet ConnectingOperator::Connect(const DependencySet& sigma) {
  DependencySet out;
  out.tgds.reserve(sigma.tgds.size());
  for (const Tgd& t : sigma.tgds) out.tgds.push_back(Connect(t));
  out.egds = sigma.egds;  // the operator is defined for tgds (§4)
  return out;
}

}  // namespace semacyc
