#ifndef SEMACYC_DEPS_CONNECTING_H_
#define SEMACYC_DEPS_CONNECTING_H_

#include "chase/dependency.h"
#include "core/query.h"

namespace semacyc {

/// The connecting operator of §4 (lower-bound machinery): a generic
/// polynomial-time reduction from AcBoolCont(C) to RestCont(C) for every
/// class C closed under connecting.
///
/// Every atom R(v̄) becomes R*(v̄, w) for a fresh variable w shared by the
/// whole query/tgd; c(q) additionally carries aux(w,w), and c(q') carries
/// an aux-triangle aux(w,u), aux(u,v), aux(v,w), which makes c(q') cyclic
/// in an essential way (not semantically acyclic under c(Σ)).
struct ConnectingOperator {
  /// c(q): starred atoms plus aux(w,w). Preserves acyclicity of q.
  static ConjunctiveQuery ConnectLeft(const ConjunctiveQuery& q);
  /// c(q'): starred atoms plus the aux triangle.
  static ConjunctiveQuery ConnectRight(const ConjunctiveQuery& q);
  /// c(Σ): each tgd gets the extra w position on every atom.
  static Tgd Connect(const Tgd& tgd);
  static DependencySet Connect(const DependencySet& sigma);

  /// The starred predicate R* of R (arity + 1).
  static Predicate Star(Predicate p);
  /// The binary aux predicate.
  static Predicate Aux();
};

}  // namespace semacyc

#endif  // SEMACYC_DEPS_CONNECTING_H_
