#ifndef SEMACYC_DEPS_NONRECURSIVE_H_
#define SEMACYC_DEPS_NONRECURSIVE_H_

#include <vector>

#include "chase/dependency.h"

namespace semacyc {

/// The predicate graph of a set of tgds: an edge R -> S whenever R occurs
/// in the body and S in the head of the same tgd.
struct PredicateGraph {
  std::vector<Predicate> nodes;
  std::vector<std::pair<int, int>> edges;  // indices into nodes

  static PredicateGraph Of(const std::vector<Tgd>& tgds);
  bool HasDirectedCycle() const;
  /// Topological strata: stratum of a predicate = longest path to it.
  /// Empty when cyclic.
  std::vector<int> Strata() const;
};

/// NR (§2): the predicate graph is a DAG.
bool IsNonRecursive(const std::vector<Tgd>& tgds);

/// Upper bound on the chase rounds needed to saturate a non-recursive set
/// (number of strata of the predicate graph + 1); used to size chase
/// budgets so NR chases always run to saturation.
size_t NonRecursiveChaseDepthBound(const std::vector<Tgd>& tgds);

}  // namespace semacyc

#endif  // SEMACYC_DEPS_NONRECURSIVE_H_
