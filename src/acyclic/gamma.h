#ifndef SEMACYC_ACYCLIC_GAMMA_H_
#define SEMACYC_ACYCLIC_GAMMA_H_

#include <vector>

#include "acyclic/hypergraph.h"

namespace semacyc::acyclic {

/// Result of the γ-acyclicity decision.
///
/// γ-acyclicity (Fagin; D'Atri–Moscarini) is decided by a confluent
/// reduction that repeatedly applies five rules; the hypergraph is
/// γ-acyclic iff the reduction erases every vertex and every edge. Each
/// applied rule is recorded, so the trace is a replayable certificate.
/// None of the rules can destroy a γ-cycle (a γ-cycle never goes through
/// an isolated vertex, a singleton edge, or both twins of a duplicated
/// vertex/edge), and the exhaustive ≤4-edge cross-check in
/// tests/acyclic_test.cc pins the reduction against the literal
/// no-γ-cycle definition.
struct GammaResult {
  enum class Rule {
    kIsolatedVertex,   // vertex in at most one edge: drop it
    kDuplicateVertex,  // two vertices in exactly the same edges: drop one
    kEmptyEdge,        // edge with no vertices left: drop it
    kSingletonEdge,    // one-vertex edge: drop it
    kDuplicateEdge,    // two edges with equal vertex sets: drop one
  };
  struct Step {
    Rule rule;
    int vertex = -1;   // subject of the vertex rules
    int edge = -1;     // subject of the edge rules
    int partner = -1;  // surviving twin for the duplicate rules
  };

  bool gamma_acyclic = false;
  std::vector<Step> trace;
};

/// Worklist reduction: a vertex is re-examined only when an incident edge
/// dies (the only events that change its degree or incidence signature),
/// an edge only when it shrinks (the only event that can make it empty, a
/// singleton, or a duplicate). Near-linear on the deep Berge trees where
/// the round-based sweep pays O(depth) full rescans.
GammaResult DecideGamma(const Hypergraph& hg);

/// The round-based fixpoint (full sweep of all five rules per round).
/// Kept as the reference implementation and the bench baseline; worst-case
/// O(rounds · m · a) with rounds up to the reduction depth.
GammaResult DecideGammaRounds(const Hypergraph& hg);

}  // namespace semacyc::acyclic

#endif  // SEMACYC_ACYCLIC_GAMMA_H_
