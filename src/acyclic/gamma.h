#ifndef SEMACYC_ACYCLIC_GAMMA_H_
#define SEMACYC_ACYCLIC_GAMMA_H_

#include <vector>

#include "acyclic/hypergraph.h"

namespace semacyc::acyclic {

/// Result of the γ-acyclicity decision.
///
/// γ-acyclicity (Fagin; D'Atri–Moscarini) is decided by a confluent
/// reduction that repeatedly applies five rules; the hypergraph is
/// γ-acyclic iff the reduction erases every vertex and every edge. Each
/// applied rule is recorded, so the trace is a replayable certificate.
/// None of the rules can destroy a γ-cycle (a γ-cycle never goes through
/// an isolated vertex, a singleton edge, or both twins of a duplicated
/// vertex/edge), and the exhaustive ≤4-edge cross-check in
/// tests/acyclic_test.cc pins the reduction against the literal
/// no-γ-cycle definition.
struct GammaResult {
  enum class Rule {
    kIsolatedVertex,   // vertex in at most one edge: drop it
    kDuplicateVertex,  // two vertices in exactly the same edges: drop one
    kEmptyEdge,        // edge with no vertices left: drop it
    kSingletonEdge,    // one-vertex edge: drop it
    kDuplicateEdge,    // two edges with equal vertex sets: drop one
  };
  struct Step {
    Rule rule;
    int vertex = -1;   // subject of the vertex rules
    int edge = -1;     // subject of the edge rules
    int partner = -1;  // surviving twin for the duplicate rules
  };

  bool gamma_acyclic = false;
  std::vector<Step> trace;
};

GammaResult DecideGamma(const Hypergraph& hg);

}  // namespace semacyc::acyclic

#endif  // SEMACYC_ACYCLIC_GAMMA_H_
