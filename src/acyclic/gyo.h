#ifndef SEMACYC_ACYCLIC_GYO_H_
#define SEMACYC_ACYCLIC_GYO_H_

#include <vector>

#include "acyclic/hypergraph.h"

namespace semacyc::acyclic {

/// Result of the GYO (Graham / Yu–Özsoyoğlu) ear-removal reduction.
struct GyoResult {
  bool acyclic = false;
  /// A join forest over edge indices: parent[e] is the witness edge e was
  /// folded into, or -1 for roots. Distinct connected components end up as
  /// sibling roots (they share no vertices, so chaining the roots preserves
  /// the running-intersection property).
  std::vector<int> parent;
  /// Edge indices in removal order. On acyclic inputs this covers every
  /// edge (survivors appended last); on cyclic inputs only the removed
  /// ears appear.
  std::vector<int> elimination_order;
};

/// Indexed worklist GYO: per-vertex edge incidence, exact-duplicate edges
/// folded up front via hashing, ears located through their minimum-degree
/// vertex. Near-linear on the acyclic hypergraphs the semac pipeline
/// produces, versus O(m²·a) per pass for GyoReduceNaive.
GyoResult GyoReduce(const Hypergraph& hg);

/// The seed implementation (quadratic scan for an ear witness, repeated
/// until fixpoint). Kept as the reference oracle and the bench baseline.
GyoResult GyoReduceNaive(const Hypergraph& hg);

}  // namespace semacyc::acyclic

#endif  // SEMACYC_ACYCLIC_GYO_H_
