#ifndef SEMACYC_ACYCLIC_HYPERGRAPH_H_
#define SEMACYC_ACYCLIC_HYPERGRAPH_H_

#include <cstddef>
#include <vector>

namespace semacyc::acyclic {

/// The acyclicity engine's own hypergraph representation: vertices are the
/// integers [0, num_vertices), edges are sorted duplicate-free vertex lists.
///
/// This layer is deliberately below core/ — it knows nothing about terms,
/// atoms or queries. core/hypergraph.cc adapts term-keyed hypergraphs into
/// this form (interning terms as vertex ids) and delegates all acyclicity
/// reasoning here. Edge indices are preserved by every algorithm so callers
/// can map results (join forests, elimination orders) back onto their atoms.
struct Hypergraph {
  int num_vertices = 0;
  std::vector<std::vector<int>> edges;

  /// Appends an edge; the vertex list is sorted and deduplicated, and
  /// num_vertices is raised to cover every mentioned vertex. Returns the
  /// edge index.
  int AddEdge(std::vector<int> verts);

  size_t NumEdges() const { return edges.size(); }
  /// Sum of edge sizes (the input size m in complexity statements).
  size_t TotalSize() const;
};

/// Per-vertex incidence lists: incidence[v] = indices of edges containing v.
std::vector<std::vector<int>> BuildIncidence(const Hypergraph& hg);

}  // namespace semacyc::acyclic

#endif  // SEMACYC_ACYCLIC_HYPERGRAPH_H_
