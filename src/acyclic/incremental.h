#ifndef SEMACYC_ACYCLIC_INCREMENTAL_H_
#define SEMACYC_ACYCLIC_INCREMENTAL_H_

#include <cstddef>
#include <vector>

#include "acyclic/classify.h"

namespace semacyc::acyclic {

/// Acyclicity classification maintained incrementally under a *stack* of
/// edges — the access pattern of DFS candidate enumeration (witness
/// search): PushEdge when the DFS descends, PopEdge when it backtracks.
///
/// Invariants exploited:
///  * Every class decides component-wise, so a push re-runs the target
///    decider only on the connected component the new edge lands in; all
///    other components keep their cached verdict.
///  * Small components cannot violate: any two edges are mutually
///    GYO-reducible and a γ-cycle needs three distinct edges, so α/β/γ
///    need no decider run until a component reaches 3 edges (Berge: 2).
///    This skips the decider for the bulk of DFS pushes.
///  * β-, γ- and Berge-acyclicity are *hereditary* (closed under taking a
///    subset of the edges; Fagin, Brault-Baron), so once the current edge
///    set violates such a target no extension can recover —
///    `CannotRecover()` lets the DFS prune the whole subtree, and pushes
///    made in a violated state skip the decider entirely (the verdict is
///    forced). α-acyclicity is not hereditary (an edge covering a cycle
///    repairs it), so for kAlpha `CannotRecover()` is always false and
///    every push re-decides its component.
///
/// Vertices are caller-chosen non-negative ids; the universe grows on
/// demand. Connectivity is tracked by a union-find with rollback (union by
/// size, no path compression), so PopEdge restores the exact prior state.
/// Frames are pooled: steady-state push/pop cycles allocate nothing.
class IncrementalClassifier {
 public:
  explicit IncrementalClassifier(AcyclicityClass target);

  /// Pushes an edge (vertex list; duplicates within the list are ignored).
  /// Returns Meets() for hereditary targets (for lazy targets the return
  /// value is always true; query Meets() when the verdict is needed).
  bool PushEdge(const std::vector<int>& verts);
  /// Undoes the most recent PushEdge. Must not be called at depth 0.
  void PopEdge();

  /// True iff the current edge set lies in `target` (or stricter). For
  /// hereditary targets this is O(1) (maintained eagerly so the DFS can
  /// prune); for α — where pushes can repair violations, making eager
  /// maintenance pay on every push for verdicts rarely consulted — it is
  /// computed on demand over the pushed (pre-interned) edges.
  bool Meets() {
    return eager_ ? bad_components_ == 0 : LazyMeets();
  }

  /// True when no extension of the current edge set can reach `target`:
  /// the target is hereditary (kBeta/kGamma/kBerge) and already violated.
  bool CannotRecover() const { return hereditary_ && bad_components_ > 0; }

  size_t depth() const { return depth_; }
  AcyclicityClass target() const { return target_; }

  /// Lifetime push/pop totals (observability counters; never reset —
  /// traces report deltas). pops() counts PopEdge calls, so at any moment
  /// pushes() - pops() == depth().
  size_t pushes() const { return pushes_; }
  size_t pops() const { return pops_; }

 private:
  int Find(int v) const;
  void EnsureVertex(int v);
  /// Runs the target decider on the component rooted at `root`.
  bool ComponentMeets(int root);
  /// Batch verdict over all pushed edges (the lazy α path).
  bool LazyMeets();
  /// Allocation-free deciders over work_sets_[0..work_count_) with dense
  /// vertex ids [0, nv) — the components seen here are DFS-path-sized, so
  /// scratch-reusing O(m²)-ish sweeps beat the engine deciders' setup
  /// cost by an order of magnitude. Verdicts agree with acyclic::Meets
  /// (pinned by the exhaustive cross-checks in witness_pipeline_test).
  bool ScratchMeets(int nv);
  bool ScratchAlpha(int nv);
  bool ScratchBeta(int nv);
  bool ScratchGamma(int nv);
  bool ScratchBerge(int nv);

  struct RootState {
    int root = -1;
    char bad = 0;
    int edge_count = 0;
  };
  struct Frame {
    std::vector<int> edge;  // sorted, deduplicated vertex list
    /// Union log: (child_root, parent_root) pairs, applied in order.
    std::vector<std::pair<int, int>> unions;
    /// Pre-push state of the distinct roots this push merged.
    std::vector<RootState> old_roots;
    int new_root = -1;
    char new_bad = 0;
  };

  AcyclicityClass target_;
  bool hereditary_;
  /// Eager per-push maintenance (hereditary targets); lazy otherwise.
  bool eager_;
  /// Components with fewer edges than this cannot violate the target.
  int min_violating_edges_;
  std::vector<int> parent_;
  std::vector<int> size_;
  /// Per-root component state; meaningful only at the index of a current
  /// root, restored exactly on PopEdge.
  std::vector<char> bad_;
  std::vector<int> edge_count_;
  int bad_components_ = 0;
  /// Pooled frame stack: frames_[0..depth_) are live; slots above depth_
  /// keep their buffers for reuse.
  std::vector<Frame> frames_;
  size_t depth_ = 0;
  size_t pushes_ = 0;
  size_t pops_ = 0;
  /// Scratch for ComponentMeets: dense vertex remapping by epoch stamps.
  std::vector<int> dense_id_;
  std::vector<unsigned> dense_epoch_;
  unsigned epoch_ = 0;
  /// Scratch edge sets for the allocation-free deciders. Inner vectors
  /// keep their capacity across calls; work_count_ bounds the live ones.
  std::vector<std::vector<int>> work_sets_;
  size_t work_count_ = 0;
  std::vector<char> scr_alive_;
  std::vector<char> scr_present_;
  std::vector<int> scr_deg_;
  std::vector<int> scr_parent_;
  std::vector<int> scr_inc_;
};

}  // namespace semacyc::acyclic

#endif  // SEMACYC_ACYCLIC_INCREMENTAL_H_
