#include "acyclic/hypergraph.h"

#include <algorithm>

namespace semacyc::acyclic {

int Hypergraph::AddEdge(std::vector<int> verts) {
  std::sort(verts.begin(), verts.end());
  verts.erase(std::unique(verts.begin(), verts.end()), verts.end());
  if (!verts.empty() && verts.back() >= num_vertices) {
    num_vertices = verts.back() + 1;
  }
  edges.push_back(std::move(verts));
  return static_cast<int>(edges.size()) - 1;
}

size_t Hypergraph::TotalSize() const {
  size_t total = 0;
  for (const auto& e : edges) total += e.size();
  return total;
}

std::vector<std::vector<int>> BuildIncidence(const Hypergraph& hg) {
  std::vector<std::vector<int>> incidence(
      static_cast<size_t>(hg.num_vertices));
  for (size_t e = 0; e < hg.edges.size(); ++e) {
    for (int v : hg.edges[e]) {
      incidence[static_cast<size_t>(v)].push_back(static_cast<int>(e));
    }
  }
  return incidence;
}

}  // namespace semacyc::acyclic
