#ifndef SEMACYC_ACYCLIC_ORACLE_H_
#define SEMACYC_ACYCLIC_ORACLE_H_

#include "acyclic/classify.h"
#include "acyclic/hypergraph.h"

namespace semacyc::acyclic {

/// Brute-force deciders implementing the *definitions* directly, as
/// independent cross-checks for the fast engines. Exponential — intended
/// for hypergraphs with a handful of edges (the tests sweep every
/// hypergraph with ≤ 4 edges).
///
/// Definitions (Fagin, "Degrees of acyclicity", JACM 1983):
///  * α: GYO reduces the hypergraph to at most one edge (naive engine).
///  * β: every subset of the edges forms an α-acyclic hypergraph.
///  * γ: there is no γ-cycle (S1,x1,...,Sm,xm,S1), m ≥ 3, with distinct
///    edges Si and distinct vertices xi, xi ∈ Si ∩ Si+1, and — for every
///    i < m, the last vertex being exempt — xi in no other edge of the
///    cycle.
///  * Berge: no Berge cycle (the same shape with m ≥ 2 and no
///    membership-exclusion condition).
bool OracleAlpha(const Hypergraph& hg);
bool OracleBeta(const Hypergraph& hg);
bool OracleGamma(const Hypergraph& hg);
bool OracleBerge(const Hypergraph& hg);

/// The tightest class according to the brute-force deciders.
AcyclicityClass OracleClassify(const Hypergraph& hg);

}  // namespace semacyc::acyclic

#endif  // SEMACYC_ACYCLIC_ORACLE_H_
