#include "acyclic/oracle.h"

#include <algorithm>
#include <cstdint>

#include "acyclic/gyo.h"

namespace semacyc::acyclic {

namespace {

bool Contains(const std::vector<int>& sorted, int v) {
  return std::binary_search(sorted.begin(), sorted.end(), v);
}

/// Searches for a cycle (S1,x1,...,Sm,xm,S1) over distinct edges and
/// distinct vertices with xi ∈ Si ∩ Si+1. With `gamma_rules`, additionally
/// requires xi ∉ Sj for every other cycle edge, for all i < m (the final
/// vertex is exempt — exactly Fagin's γ-cycle); without, any such closed
/// chain of length ≥ 2 counts (a Berge cycle).
struct CycleSearch {
  const Hypergraph& hg;
  bool gamma_rules;
  std::vector<int> edge_seq;
  std::vector<int> vert_seq;
  std::vector<char> edge_used;
  std::vector<char> vert_used;

  explicit CycleSearch(const Hypergraph& h, bool gamma)
      : hg(h),
        gamma_rules(gamma),
        edge_used(h.edges.size(), 0),
        vert_used(static_cast<size_t>(h.num_vertices), 0) {}

  /// The membership-exclusion condition for vertex x at position i
  /// (0-based) in a cycle of final length `m`: x may touch only its two
  /// neighbouring cycle edges. The last vertex (i == m-1) is exempt.
  bool VertexAdmissible(int x, size_t i, size_t m) const {
    if (!gamma_rules || i + 1 == m) return true;
    for (size_t j = 0; j < m; ++j) {
      if (j == i || j == i + 1) continue;
      if (Contains(hg.edges[static_cast<size_t>(edge_seq[j])], x)) {
        return false;
      }
    }
    return true;
  }

  /// With the edge sequence fixed, assigns distinct vertices x0..x{m-1}.
  bool AssignVertices(size_t i) {
    const size_t m = edge_seq.size();
    if (i == m) return true;
    const auto& cur = hg.edges[static_cast<size_t>(edge_seq[i])];
    const auto& nxt = hg.edges[static_cast<size_t>(edge_seq[(i + 1) % m])];
    for (int x : cur) {
      if (vert_used[static_cast<size_t>(x)] || !Contains(nxt, x)) continue;
      if (!VertexAdmissible(x, i, m)) continue;
      vert_used[static_cast<size_t>(x)] = 1;
      if (AssignVertices(i + 1)) return true;
      vert_used[static_cast<size_t>(x)] = 0;
    }
    return false;
  }

  bool ExtendEdges(size_t min_len) {
    if (edge_seq.size() >= min_len && AssignVertices(0)) return true;
    if (edge_seq.size() == hg.edges.size()) return false;
    for (size_t e = 0; e < hg.edges.size(); ++e) {
      if (edge_used[e]) continue;
      edge_used[e] = 1;
      edge_seq.push_back(static_cast<int>(e));
      if (ExtendEdges(min_len)) return true;
      edge_seq.pop_back();
      edge_used[e] = 0;
    }
    return false;
  }

  bool HasCycle(size_t min_len) { return ExtendEdges(min_len); }
};

}  // namespace

bool OracleAlpha(const Hypergraph& hg) { return GyoReduceNaive(hg).acyclic; }

bool OracleBeta(const Hypergraph& hg) {
  // β ⟺ every edge subset is α-acyclic. Exponential sweep.
  const size_t m = hg.edges.size();
  for (uint64_t mask = 0; mask < (1ull << m); ++mask) {
    Hypergraph sub;
    sub.num_vertices = hg.num_vertices;
    for (size_t e = 0; e < m; ++e) {
      if (mask & (1ull << e)) sub.edges.push_back(hg.edges[e]);
    }
    if (!GyoReduceNaive(sub).acyclic) return false;
  }
  return true;
}

bool OracleGamma(const Hypergraph& hg) {
  CycleSearch search(hg, /*gamma_rules=*/true);
  return !search.HasCycle(/*min_len=*/3);
}

bool OracleBerge(const Hypergraph& hg) {
  CycleSearch search(hg, /*gamma_rules=*/false);
  return !search.HasCycle(/*min_len=*/2);
}

AcyclicityClass OracleClassify(const Hypergraph& hg) {
  if (!OracleAlpha(hg)) return AcyclicityClass::kCyclic;
  if (!OracleBeta(hg)) return AcyclicityClass::kAlpha;
  if (!OracleGamma(hg)) return AcyclicityClass::kBeta;
  if (!OracleBerge(hg)) return AcyclicityClass::kGamma;
  return AcyclicityClass::kBerge;
}

}  // namespace semacyc::acyclic
