#ifndef SEMACYC_ACYCLIC_CLASSIFY_H_
#define SEMACYC_ACYCLIC_CLASSIFY_H_

#include "acyclic/beta.h"
#include "acyclic/gamma.h"
#include "acyclic/gyo.h"
#include "acyclic/hypergraph.h"

namespace semacyc::acyclic {

/// The acyclicity hierarchy, strictly nested (Fagin; Brault-Baron):
/// Berge-acyclic ⊊ γ-acyclic ⊊ β-acyclic ⊊ α-acyclic. Larger enum values
/// are stricter (tighter) classes.
enum class AcyclicityClass {
  kCyclic = 0,
  kAlpha = 1,
  kBeta = 2,
  kGamma = 3,
  kBerge = 4,
};

const char* ToString(AcyclicityClass c);

/// True iff `have` is at least as strict as `want` (e.g. a Berge-acyclic
/// hypergraph satisfies every target class).
inline bool AtLeast(AcyclicityClass have, AcyclicityClass want) {
  return static_cast<int>(have) >= static_cast<int>(want);
}

/// The tightest class of a hypergraph plus the per-class certificates that
/// were computed on the way (valid up to `cls`).
struct Classification {
  AcyclicityClass cls = AcyclicityClass::kCyclic;
  /// Always populated: the GYO join forest / ear order (acyclic iff
  /// cls >= kAlpha).
  GyoResult gyo;
  /// Populated when cls >= kBeta: the nest-point elimination order.
  BetaResult beta;
  /// Populated when cls >= kGamma: the reduction trace.
  GammaResult gamma;
};

/// Runs the deciders bottom-up with early exit: GYO first (cyclic inputs
/// never reach the stricter deciders), then β, γ, Berge.
Classification Classify(const Hypergraph& hg);

/// Berge acyclicity: the bipartite incidence graph is a forest (a cycle
/// there is exactly a Berge cycle). Linear time via union-find.
bool IsBergeAcyclic(const Hypergraph& hg);

/// Convenience: does `hg` meet `target`? Runs only the deciders needed.
bool Meets(const Hypergraph& hg, AcyclicityClass target);

}  // namespace semacyc::acyclic

#endif  // SEMACYC_ACYCLIC_CLASSIFY_H_
