#include "acyclic/classify.h"

#include <numeric>

namespace semacyc::acyclic {

const char* ToString(AcyclicityClass c) {
  switch (c) {
    case AcyclicityClass::kCyclic:
      return "cyclic";
    case AcyclicityClass::kAlpha:
      return "alpha";
    case AcyclicityClass::kBeta:
      return "beta";
    case AcyclicityClass::kGamma:
      return "gamma";
    case AcyclicityClass::kBerge:
      return "berge";
  }
  return "?";
}

bool IsBergeAcyclic(const Hypergraph& hg) {
  // Union-find over vertices ∪ edges; an incidence closing a cycle in the
  // bipartite incidence graph is a Berge cycle.
  const size_t n = static_cast<size_t>(hg.num_vertices);
  std::vector<int> parent(n + hg.edges.size());
  std::iota(parent.begin(), parent.end(), 0);
  std::vector<int> find_stack;
  auto find = [&](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      find_stack.push_back(x);
      x = parent[static_cast<size_t>(x)];
    }
    for (int y : find_stack) parent[static_cast<size_t>(y)] = x;
    find_stack.clear();
    return x;
  };
  for (size_t e = 0; e < hg.edges.size(); ++e) {
    int edge_node = static_cast<int>(n + e);
    for (int v : hg.edges[e]) {
      int rv = find(v);
      int re = find(edge_node);
      if (rv == re) return false;
      parent[static_cast<size_t>(rv)] = re;
    }
  }
  return true;
}

Classification Classify(const Hypergraph& hg) {
  Classification out;
  out.gyo = GyoReduce(hg);
  if (!out.gyo.acyclic) return out;
  out.cls = AcyclicityClass::kAlpha;

  out.beta = DecideBeta(hg);
  if (!out.beta.beta_acyclic) return out;
  out.cls = AcyclicityClass::kBeta;

  out.gamma = DecideGamma(hg);
  if (!out.gamma.gamma_acyclic) return out;
  out.cls = AcyclicityClass::kGamma;

  if (IsBergeAcyclic(hg)) out.cls = AcyclicityClass::kBerge;
  return out;
}

bool Meets(const Hypergraph& hg, AcyclicityClass target) {
  switch (target) {
    case AcyclicityClass::kCyclic:
      return true;
    case AcyclicityClass::kAlpha:
      return GyoReduce(hg).acyclic;
    case AcyclicityClass::kBeta:
      return DecideBeta(hg).beta_acyclic;
    case AcyclicityClass::kGamma:
      return DecideGamma(hg).gamma_acyclic;
    case AcyclicityClass::kBerge:
      return IsBergeAcyclic(hg);
  }
  return false;
}

}  // namespace semacyc::acyclic
