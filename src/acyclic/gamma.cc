#include "acyclic/gamma.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "acyclic/internal.h"

namespace semacyc::acyclic {

using internal::HashInts;

GammaResult DecideGamma(const Hypergraph& hg) {
  GammaResult result;
  std::vector<std::vector<int>> set(hg.edges);
  const size_t m = set.size();
  const size_t n = static_cast<size_t>(hg.num_vertices);
  std::vector<char> alive(m, 1);
  std::vector<char> present(n, 0);
  std::vector<int> deg(n, 0);
  std::vector<std::vector<int>> incidence = BuildIncidence(hg);
  int vertices_left = 0;
  int edges_left = static_cast<int>(m);
  for (const auto& e : hg.edges) {
    for (int v : e) {
      if (!present[static_cast<size_t>(v)]) {
        present[static_cast<size_t>(v)] = 1;
        ++vertices_left;
      }
      ++deg[static_cast<size_t>(v)];
    }
  }

  // Worklists. An edge is queued when it shrinks (may have become empty, a
  // singleton, or a duplicate of another edge); a vertex when an incident
  // edge dies (its degree drops and its incidence signature changes — the
  // only events that can make it isolated or a duplicate). Everything is
  // queued once up front.
  std::vector<char> equeued(m, 0);
  std::vector<char> vqueued(n, 0);
  std::vector<int> equeue;
  std::vector<int> vqueue;
  auto push_edge = [&](int e) {
    if (alive[static_cast<size_t>(e)] && !equeued[static_cast<size_t>(e)]) {
      equeued[static_cast<size_t>(e)] = 1;
      equeue.push_back(e);
    }
  };
  auto push_vertex = [&](int v) {
    if (present[static_cast<size_t>(v)] && !vqueued[static_cast<size_t>(v)]) {
      vqueued[static_cast<size_t>(v)] = 1;
      vqueue.push_back(v);
    }
  };

  auto drop_vertex = [&](int v, GammaResult::Rule rule, int partner) {
    // Removing v shrinks every alive incident edge; those edges are the
    // only objects whose rule status changes.
    std::vector<int>& inc = incidence[static_cast<size_t>(v)];
    size_t out = 0;
    for (int e : inc) {
      if (!alive[static_cast<size_t>(e)]) continue;
      inc[out++] = e;
      std::vector<int>& s = set[static_cast<size_t>(e)];
      auto it = std::lower_bound(s.begin(), s.end(), v);
      if (it != s.end() && *it == v) {
        s.erase(it);
        push_edge(e);
      }
    }
    inc.resize(out);
    present[static_cast<size_t>(v)] = 0;
    deg[static_cast<size_t>(v)] = 0;
    --vertices_left;
    result.trace.push_back({rule, v, -1, partner});
  };
  auto drop_edge = [&](int e, GammaResult::Rule rule, int partner) {
    alive[static_cast<size_t>(e)] = 0;
    --edges_left;
    for (int v : set[static_cast<size_t>(e)]) {
      --deg[static_cast<size_t>(v)];
      push_vertex(v);
    }
    result.trace.push_back({rule, -1, e, partner});
  };

  /// The alive incident edges of v, ascending (BuildIncidence emits edges
  /// in index order and compaction preserves it). While v is present every
  /// alive incident edge still contains v, so this is exactly v's
  /// incidence signature.
  auto signature_of = [&](int v) {
    std::vector<int>& inc = incidence[static_cast<size_t>(v)];
    size_t out = 0;
    for (int e : inc) {
      if (alive[static_cast<size_t>(e)]) inc[out++] = e;
    }
    inc.resize(out);
    return inc;  // by value of the compacted list
  };

  // Duplicate detection buckets. Entries go stale as sets/signatures
  // shrink (a changed object is requeued and re-inserted under its new
  // hash), so candidates are always re-verified against current content.
  std::unordered_map<uint64_t, std::vector<int>> edge_buckets;
  std::unordered_map<uint64_t, std::vector<int>> vertex_buckets;

  for (size_t e = 0; e < m; ++e) push_edge(static_cast<int>(e));
  for (size_t v = 0; v < n; ++v) push_vertex(static_cast<int>(v));

  size_t ehead = 0;
  size_t vhead = 0;
  while (ehead < equeue.size() || vhead < vqueue.size()) {
    if (ehead < equeue.size()) {
      int e = equeue[ehead++];
      equeued[static_cast<size_t>(e)] = 0;
      if (!alive[static_cast<size_t>(e)]) continue;
      const std::vector<int>& s = set[static_cast<size_t>(e)];
      if (s.empty()) {
        drop_edge(e, GammaResult::Rule::kEmptyEdge, -1);
        continue;
      }
      if (s.size() == 1) {
        drop_edge(e, GammaResult::Rule::kSingletonEdge, -1);
        continue;
      }
      std::vector<int>& twins = edge_buckets[HashInts(s)];
      int rep = -1;
      for (int r : twins) {
        if (r != e && alive[static_cast<size_t>(r)] &&
            set[static_cast<size_t>(r)] == s) {
          rep = r;
          break;
        }
      }
      if (rep >= 0) {
        drop_edge(e, GammaResult::Rule::kDuplicateEdge, rep);
      } else {
        twins.push_back(e);
      }
      continue;
    }
    int v = vqueue[vhead++];
    vqueued[static_cast<size_t>(v)] = 0;
    if (!present[static_cast<size_t>(v)]) continue;
    if (deg[static_cast<size_t>(v)] <= 1) {
      drop_vertex(v, GammaResult::Rule::kIsolatedVertex, -1);
      continue;
    }
    const std::vector<int> sig = signature_of(v);
    std::vector<int>& twins = vertex_buckets[HashInts(sig)];
    int rep = -1;
    for (int r : twins) {
      if (r != v && present[static_cast<size_t>(r)] &&
          signature_of(r) == sig) {
        rep = r;
        break;
      }
    }
    if (rep >= 0) {
      drop_vertex(v, GammaResult::Rule::kDuplicateVertex, rep);
    } else {
      twins.push_back(v);
    }
  }

  result.gamma_acyclic = (vertices_left == 0 && edges_left == 0);
  return result;
}

GammaResult DecideGammaRounds(const Hypergraph& hg) {
  GammaResult result;
  std::vector<std::vector<int>> set(hg.edges);
  std::vector<char> alive(hg.edges.size(), 1);
  std::vector<char> present(static_cast<size_t>(hg.num_vertices), 0);
  std::vector<int> deg(static_cast<size_t>(hg.num_vertices), 0);
  int vertices_left = 0;
  int edges_left = static_cast<int>(hg.edges.size());
  for (const auto& e : hg.edges) {
    for (int v : e) {
      if (!present[static_cast<size_t>(v)]) {
        present[static_cast<size_t>(v)] = 1;
        ++vertices_left;
      }
      ++deg[static_cast<size_t>(v)];
    }
  }

  auto drop_vertex = [&](int v, GammaResult::Rule rule, int partner) {
    for (size_t e = 0; e < set.size(); ++e) {
      if (!alive[e]) continue;
      auto it = std::lower_bound(set[e].begin(), set[e].end(), v);
      if (it != set[e].end() && *it == v) set[e].erase(it);
    }
    present[static_cast<size_t>(v)] = 0;
    deg[static_cast<size_t>(v)] = 0;
    --vertices_left;
    result.trace.push_back({rule, v, -1, partner});
  };
  auto drop_edge = [&](int e, GammaResult::Rule rule, int partner) {
    for (int v : set[static_cast<size_t>(e)]) --deg[static_cast<size_t>(v)];
    alive[static_cast<size_t>(e)] = 0;
    --edges_left;
    result.trace.push_back({rule, -1, e, partner});
  };

  // Round-based fixpoint: each round sweeps all five rules once over the
  // whole hypergraph, so disjoint reducible regions shrink in parallel.
  bool changed = true;
  while (changed && (vertices_left > 0 || edges_left > 0)) {
    changed = false;

    // Edge rules: empty, singleton, duplicate (hash-bucketed).
    std::unordered_map<uint64_t, std::vector<int>> buckets;
    for (size_t e = 0; e < set.size(); ++e) {
      if (!alive[e]) continue;
      if (set[e].empty()) {
        drop_edge(static_cast<int>(e), GammaResult::Rule::kEmptyEdge, -1);
        changed = true;
        continue;
      }
      if (set[e].size() == 1) {
        drop_edge(static_cast<int>(e), GammaResult::Rule::kSingletonEdge, -1);
        changed = true;
        continue;
      }
      std::vector<int>& twins = buckets[HashInts(set[e])];
      int rep = -1;
      for (int r : twins) {
        if (set[static_cast<size_t>(r)] == set[e]) {
          rep = r;
          break;
        }
      }
      if (rep >= 0) {
        drop_edge(static_cast<int>(e), GammaResult::Rule::kDuplicateEdge, rep);
        changed = true;
      } else {
        twins.push_back(static_cast<int>(e));
      }
    }

    // Vertex rule: isolated (in at most one alive edge).
    for (int v = 0; v < hg.num_vertices; ++v) {
      if (present[static_cast<size_t>(v)] && deg[static_cast<size_t>(v)] <= 1) {
        drop_vertex(v, GammaResult::Rule::kIsolatedVertex, -1);
        changed = true;
      }
    }

    // Vertex rule: duplicates (identical incidence signatures).
    std::vector<std::vector<int>> signature(
        static_cast<size_t>(hg.num_vertices));
    for (size_t e = 0; e < set.size(); ++e) {
      if (!alive[e]) continue;
      for (int v : set[e]) {
        signature[static_cast<size_t>(v)].push_back(static_cast<int>(e));
      }
    }
    std::unordered_map<uint64_t, std::vector<int>> vertex_buckets;
    for (int v = 0; v < hg.num_vertices; ++v) {
      if (!present[static_cast<size_t>(v)]) continue;
      std::vector<int>& twins =
          vertex_buckets[HashInts(signature[static_cast<size_t>(v)])];
      int rep = -1;
      for (int r : twins) {
        if (signature[static_cast<size_t>(r)] ==
            signature[static_cast<size_t>(v)]) {
          rep = r;
          break;
        }
      }
      if (rep >= 0) {
        drop_vertex(v, GammaResult::Rule::kDuplicateVertex, rep);
        changed = true;
      } else {
        twins.push_back(v);
      }
    }
  }

  result.gamma_acyclic = (vertices_left == 0 && edges_left == 0);
  return result;
}

}  // namespace semacyc::acyclic
