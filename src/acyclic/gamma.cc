#include "acyclic/gamma.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "acyclic/internal.h"

namespace semacyc::acyclic {

using internal::HashInts;

GammaResult DecideGamma(const Hypergraph& hg) {
  GammaResult result;
  std::vector<std::vector<int>> set(hg.edges);
  std::vector<char> alive(hg.edges.size(), 1);
  std::vector<char> present(static_cast<size_t>(hg.num_vertices), 0);
  std::vector<int> deg(static_cast<size_t>(hg.num_vertices), 0);
  int vertices_left = 0;
  int edges_left = static_cast<int>(hg.edges.size());
  for (const auto& e : hg.edges) {
    for (int v : e) {
      if (!present[static_cast<size_t>(v)]) {
        present[static_cast<size_t>(v)] = 1;
        ++vertices_left;
      }
      ++deg[static_cast<size_t>(v)];
    }
  }

  auto drop_vertex = [&](int v, GammaResult::Rule rule, int partner) {
    for (size_t e = 0; e < set.size(); ++e) {
      if (!alive[e]) continue;
      auto it = std::lower_bound(set[e].begin(), set[e].end(), v);
      if (it != set[e].end() && *it == v) set[e].erase(it);
    }
    present[static_cast<size_t>(v)] = 0;
    deg[static_cast<size_t>(v)] = 0;
    --vertices_left;
    result.trace.push_back({rule, v, -1, partner});
  };
  auto drop_edge = [&](int e, GammaResult::Rule rule, int partner) {
    for (int v : set[static_cast<size_t>(e)]) --deg[static_cast<size_t>(v)];
    alive[static_cast<size_t>(e)] = 0;
    --edges_left;
    result.trace.push_back({rule, -1, e, partner});
  };

  // Round-based fixpoint: each round sweeps all five rules once over the
  // whole hypergraph, so disjoint reducible regions shrink in parallel.
  bool changed = true;
  while (changed && (vertices_left > 0 || edges_left > 0)) {
    changed = false;

    // Edge rules: empty, singleton, duplicate (hash-bucketed).
    std::unordered_map<uint64_t, std::vector<int>> buckets;
    for (size_t e = 0; e < set.size(); ++e) {
      if (!alive[e]) continue;
      if (set[e].empty()) {
        drop_edge(static_cast<int>(e), GammaResult::Rule::kEmptyEdge, -1);
        changed = true;
        continue;
      }
      if (set[e].size() == 1) {
        drop_edge(static_cast<int>(e), GammaResult::Rule::kSingletonEdge, -1);
        changed = true;
        continue;
      }
      std::vector<int>& twins = buckets[HashInts(set[e])];
      int rep = -1;
      for (int r : twins) {
        if (set[static_cast<size_t>(r)] == set[e]) {
          rep = r;
          break;
        }
      }
      if (rep >= 0) {
        drop_edge(static_cast<int>(e), GammaResult::Rule::kDuplicateEdge, rep);
        changed = true;
      } else {
        twins.push_back(static_cast<int>(e));
      }
    }

    // Vertex rule: isolated (in at most one alive edge).
    for (int v = 0; v < hg.num_vertices; ++v) {
      if (present[static_cast<size_t>(v)] && deg[static_cast<size_t>(v)] <= 1) {
        drop_vertex(v, GammaResult::Rule::kIsolatedVertex, -1);
        changed = true;
      }
    }

    // Vertex rule: duplicates (identical incidence signatures).
    std::vector<std::vector<int>> signature(
        static_cast<size_t>(hg.num_vertices));
    for (size_t e = 0; e < set.size(); ++e) {
      if (!alive[e]) continue;
      for (int v : set[e]) {
        signature[static_cast<size_t>(v)].push_back(static_cast<int>(e));
      }
    }
    std::unordered_map<uint64_t, std::vector<int>> vertex_buckets;
    for (int v = 0; v < hg.num_vertices; ++v) {
      if (!present[static_cast<size_t>(v)]) continue;
      std::vector<int>& twins =
          vertex_buckets[HashInts(signature[static_cast<size_t>(v)])];
      int rep = -1;
      for (int r : twins) {
        if (signature[static_cast<size_t>(r)] ==
            signature[static_cast<size_t>(v)]) {
          rep = r;
          break;
        }
      }
      if (rep >= 0) {
        drop_vertex(v, GammaResult::Rule::kDuplicateVertex, rep);
        changed = true;
      } else {
        twins.push_back(v);
      }
    }
  }

  result.gamma_acyclic = (vertices_left == 0 && edges_left == 0);
  return result;
}

}  // namespace semacyc::acyclic
