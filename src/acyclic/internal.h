#ifndef SEMACYC_ACYCLIC_INTERNAL_H_
#define SEMACYC_ACYCLIC_INTERNAL_H_

#include <algorithm>
#include <cstdint>
#include <vector>

/// Helpers shared by the engine's translation units. Not part of the
/// subsystem's public surface.
namespace semacyc::acyclic::internal {

/// True iff sorted `a` ⊆ sorted `b`. Galloping lower_bound keeps the check
/// cheap when |a| << |b|.
inline bool IsSubsetSorted(const std::vector<int>& a,
                           const std::vector<int>& b) {
  if (a.size() > b.size()) return false;
  size_t j = 0;
  for (int x : a) {
    auto it = std::lower_bound(b.begin() + static_cast<long>(j), b.end(), x);
    if (it == b.end() || *it != x) return false;
    j = static_cast<size_t>(it - b.begin()) + 1;
  }
  return true;
}

/// Order-sensitive splitmix64-style hash of an int sequence (used to bucket
/// sorted edge sets and incidence signatures).
inline uint64_t HashInts(const std::vector<int>& xs) {
  uint64_t h = 0x9e3779b97f4a7c15ull + xs.size();
  for (int v : xs) {
    uint64_t x = static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ull + h;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    h = x;
  }
  return h;
}

}  // namespace semacyc::acyclic::internal

#endif  // SEMACYC_ACYCLIC_INTERNAL_H_
