#include "acyclic/gyo.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "acyclic/internal.h"

namespace semacyc::acyclic {

using internal::HashInts;
using internal::IsSubsetSorted;

GyoResult GyoReduce(const Hypergraph& hg) {
  const int m = static_cast<int>(hg.edges.size());
  GyoResult result;
  result.parent.assign(static_cast<size_t>(m), -1);
  if (m == 0) {
    result.acyclic = true;
    return result;
  }

  // Working state: shrinking sorted edge sets, alive flags, per-vertex
  // degrees and (lazily compacted) incidence lists.
  std::vector<std::vector<int>> set(hg.edges);
  std::vector<char> alive(static_cast<size_t>(m), 1);
  std::vector<int> deg(static_cast<size_t>(hg.num_vertices), 0);
  std::vector<std::vector<int>> incidence = BuildIncidence(hg);
  for (int e = 0; e < m; ++e) {
    for (int v : set[static_cast<size_t>(e)]) ++deg[static_cast<size_t>(v)];
  }
  int alive_count = m;

  auto kill = [&](int e, int witness) {
    alive[static_cast<size_t>(e)] = 0;
    result.parent[static_cast<size_t>(e)] = witness;
    result.elimination_order.push_back(e);
    --alive_count;
  };

  // Phase 1: fold exact-duplicate edges into a representative (a duplicate
  // is trivially an ear of its twin). Buckets by hash, verified by compare.
  {
    std::unordered_map<uint64_t, std::vector<int>> buckets;
    buckets.reserve(static_cast<size_t>(m) * 2);
    for (int e = 0; e < m && alive_count > 1; ++e) {
      std::vector<int>& reps = buckets[HashInts(set[static_cast<size_t>(e)])];
      int rep = -1;
      for (int r : reps) {
        if (set[static_cast<size_t>(r)] == set[static_cast<size_t>(e)]) {
          rep = r;
          break;
        }
      }
      if (rep < 0) {
        reps.push_back(e);
        continue;
      }
      kill(e, rep);
      for (int v : set[static_cast<size_t>(e)]) --deg[static_cast<size_t>(v)];
    }
  }

  // Phase 2: worklist ear removal. An edge is (re)examined when pushed;
  // the only event that can turn a non-ear into an ear is one of its
  // vertices dropping to degree 1, so that is the only re-queue trigger.
  std::vector<char> queued(static_cast<size_t>(m), 0);
  std::vector<int> queue;
  queue.reserve(static_cast<size_t>(m));
  auto push = [&](int e) {
    if (alive[static_cast<size_t>(e)] && !queued[static_cast<size_t>(e)]) {
      queued[static_cast<size_t>(e)] = 1;
      queue.push_back(e);
    }
  };
  for (int e = 0; e < m; ++e) push(e);

  // Queues the unique alive edge still containing v (called when deg[v]
  // drops to 1), compacting dead incidence entries along the way.
  auto push_lone_edge_of = [&](int v) {
    std::vector<int>& inc = incidence[static_cast<size_t>(v)];
    size_t out = 0;
    for (int f : inc) {
      if (alive[static_cast<size_t>(f)]) inc[out++] = f;
    }
    inc.resize(out);
    for (int f : inc) push(f);
  };

  size_t head = 0;
  while (head < queue.size() && alive_count > 1) {
    int e = queue[head++];
    queued[static_cast<size_t>(e)] = 0;
    if (!alive[static_cast<size_t>(e)]) continue;
    std::vector<int>& s = set[static_cast<size_t>(e)];

    // Prune vertices exclusive to e: they cannot block an ear removal.
    size_t out = 0;
    for (int v : s) {
      if (deg[static_cast<size_t>(v)] >= 2) {
        s[out++] = v;
      } else {
        deg[static_cast<size_t>(v)] = 0;
      }
    }
    s.resize(out);

    if (s.empty()) {
      // e shares nothing with any alive edge: it is the last edge of its
      // component, removable as a forest root.
      kill(e, -1);
      continue;
    }

    // Candidate containers must include e's minimum-degree shared vertex.
    int best_v = s[0];
    for (int v : s) {
      if (deg[static_cast<size_t>(v)] < deg[static_cast<size_t>(best_v)]) {
        best_v = v;
      }
    }
    int witness = -1;
    {
      std::vector<int>& inc = incidence[static_cast<size_t>(best_v)];
      size_t keep = 0;
      for (size_t i = 0; i < inc.size(); ++i) {
        int f = inc[i];
        if (!alive[static_cast<size_t>(f)]) continue;  // compact dead entry
        inc[keep++] = f;
        if (f != e && witness < 0 &&
            IsSubsetSorted(s, set[static_cast<size_t>(f)])) {
          witness = f;
          // Finish compacting the tail without further subset checks.
        }
      }
      inc.resize(keep);
    }
    if (witness < 0) continue;  // not an ear (yet)

    kill(e, witness);
    for (int v : s) {
      if (--deg[static_cast<size_t>(v)] == 1) push_lone_edge_of(v);
    }
  }

  result.acyclic = (alive_count <= 1);
  if (result.acyclic) {
    for (int e = 0; e < m; ++e) {
      if (alive[static_cast<size_t>(e)]) result.elimination_order.push_back(e);
    }
  }
  return result;
}

GyoResult GyoReduceNaive(const Hypergraph& hg) {
  const int m = static_cast<int>(hg.edges.size());
  GyoResult result;
  result.parent.assign(static_cast<size_t>(m), -1);
  if (m == 0) {
    result.acyclic = true;
    return result;
  }

  std::vector<bool> removed(static_cast<size_t>(m), false);
  std::vector<int> deg(static_cast<size_t>(hg.num_vertices), 0);
  for (const auto& edge : hg.edges) {
    for (int v : edge) ++deg[static_cast<size_t>(v)];
  }

  int remaining = m;
  bool progress = true;
  while (progress && remaining > 1) {
    progress = false;
    for (int e = 0; e < m && remaining > 1; ++e) {
      if (removed[static_cast<size_t>(e)]) continue;
      std::vector<int> shared;
      for (int v : hg.edges[static_cast<size_t>(e)]) {
        if (deg[static_cast<size_t>(v)] >= 2) shared.push_back(v);
      }
      int witness = -1;
      for (int f = 0; f < m; ++f) {
        if (f == e || removed[static_cast<size_t>(f)]) continue;
        bool contains_all = true;
        for (int v : shared) {
          if (!std::binary_search(hg.edges[static_cast<size_t>(f)].begin(),
                                  hg.edges[static_cast<size_t>(f)].end(), v)) {
            contains_all = false;
            break;
          }
        }
        if (contains_all) {
          witness = f;
          break;
        }
      }
      if (witness < 0) continue;
      removed[static_cast<size_t>(e)] = true;
      result.parent[static_cast<size_t>(e)] = witness;
      result.elimination_order.push_back(e);
      for (int v : hg.edges[static_cast<size_t>(e)]) {
        --deg[static_cast<size_t>(v)];
      }
      --remaining;
      progress = true;
    }
  }

  result.acyclic = (remaining <= 1);
  if (result.acyclic) {
    for (int e = 0; e < m; ++e) {
      if (!removed[static_cast<size_t>(e)]) {
        result.elimination_order.push_back(e);
      }
    }
  }
  return result;
}

}  // namespace semacyc::acyclic
