#include "acyclic/beta.h"

#include <algorithm>

#include "acyclic/internal.h"

namespace semacyc::acyclic {

namespace {

using internal::IsSubsetSorted;

/// Shared state for elimination and certificate replay.
struct BetaState {
  std::vector<std::vector<int>> set;         // shrinking sorted edge sets
  std::vector<std::vector<int>> incidence;   // static edge lists per vertex
  std::vector<char> present;
  int remaining = 0;

  explicit BetaState(const Hypergraph& hg)
      : set(hg.edges),
        incidence(BuildIncidence(hg)),
        present(static_cast<size_t>(hg.num_vertices), 0) {
    for (const auto& e : hg.edges) {
      for (int v : e) {
        if (!present[static_cast<size_t>(v)]) {
          present[static_cast<size_t>(v)] = 1;
          ++remaining;
        }
      }
    }
  }

  /// v is a nest point iff its incident (non-empty membership) edges form a
  /// chain under inclusion: sorted by size, consecutive containment.
  bool IsNestPoint(int v) const {
    std::vector<const std::vector<int>*> inc;
    for (int e : incidence[static_cast<size_t>(v)]) {
      const std::vector<int>& s = set[static_cast<size_t>(e)];
      if (std::binary_search(s.begin(), s.end(), v)) inc.push_back(&s);
    }
    std::sort(inc.begin(), inc.end(),
              [](const std::vector<int>* a, const std::vector<int>* b) {
                return a->size() < b->size();
              });
    for (size_t i = 0; i + 1 < inc.size(); ++i) {
      if (!IsSubsetSorted(*inc[i], *inc[i + 1])) return false;
    }
    return true;
  }

  /// Removes v from every edge; returns the vertices of the edges that
  /// shrank (the only candidates whose nest-point status may have changed).
  std::vector<int> Eliminate(int v) {
    std::vector<int> affected;
    for (int e : incidence[static_cast<size_t>(v)]) {
      std::vector<int>& s = set[static_cast<size_t>(e)];
      auto it = std::lower_bound(s.begin(), s.end(), v);
      if (it == s.end() || *it != v) continue;
      s.erase(it);
      affected.insert(affected.end(), s.begin(), s.end());
    }
    present[static_cast<size_t>(v)] = 0;
    --remaining;
    return affected;
  }
};

}  // namespace

BetaResult DecideBeta(const Hypergraph& hg) {
  BetaResult result;
  BetaState st(hg);

  std::vector<char> queued(static_cast<size_t>(hg.num_vertices), 0);
  std::vector<int> queue;
  auto push = [&](int v) {
    if (st.present[static_cast<size_t>(v)] && !queued[static_cast<size_t>(v)]) {
      queued[static_cast<size_t>(v)] = 1;
      queue.push_back(v);
    }
  };
  for (int v = 0; v < hg.num_vertices; ++v) push(v);

  size_t head = 0;
  while (head < queue.size()) {
    int v = queue[head++];
    queued[static_cast<size_t>(v)] = 0;
    if (!st.present[static_cast<size_t>(v)] || !st.IsNestPoint(v)) continue;
    result.elimination_order.push_back(v);
    for (int u : st.Eliminate(v)) push(u);
  }

  result.beta_acyclic = (st.remaining == 0);
  return result;
}

bool ValidateBetaOrder(const Hypergraph& hg, const std::vector<int>& order) {
  BetaState st(hg);
  for (int v : order) {
    if (v < 0 || v >= hg.num_vertices) return false;
    if (!st.present[static_cast<size_t>(v)]) return false;
    if (!st.IsNestPoint(v)) return false;
    st.Eliminate(v);
  }
  return st.remaining == 0;
}

}  // namespace semacyc::acyclic
