#ifndef SEMACYC_ACYCLIC_BETA_H_
#define SEMACYC_ACYCLIC_BETA_H_

#include <vector>

#include "acyclic/hypergraph.h"

namespace semacyc::acyclic {

/// Result of the β-acyclicity decision.
///
/// A hypergraph is β-acyclic iff every subhypergraph (subset of its edges)
/// is α-acyclic; equivalently (Brault-Baron, arXiv:1403.7076) iff repeatedly
/// deleting *nest points* — vertices whose incident edges form a chain under
/// inclusion — eliminates every vertex. The elimination order is the
/// certificate: replaying it and re-checking the chain condition at each
/// step verifies the answer.
struct BetaResult {
  bool beta_acyclic = false;
  /// Nest points in the order they were eliminated. Covers every occurring
  /// vertex iff beta_acyclic.
  std::vector<int> elimination_order;
};

/// Worklist nest-point elimination. A vertex is re-examined only when an
/// edge containing it shrinks (the only event that can create a nest point).
BetaResult DecideBeta(const Hypergraph& hg);

/// Replays `order` against `hg` and checks that each entry was a nest point
/// at its turn and that every occurring vertex is covered. Used to validate
/// certificates in tests.
bool ValidateBetaOrder(const Hypergraph& hg, const std::vector<int>& order);

}  // namespace semacyc::acyclic

#endif  // SEMACYC_ACYCLIC_BETA_H_
