#include "acyclic/incremental.h"

#include <algorithm>
#include <cassert>

#include "acyclic/internal.h"

namespace semacyc::acyclic {

IncrementalClassifier::IncrementalClassifier(AcyclicityClass target)
    : target_(target),
      hereditary_(static_cast<int>(target) >=
                  static_cast<int>(AcyclicityClass::kBeta)),
      eager_(hereditary_),
      // Any two edges are mutually GYO-reducible (their shared vertices
      // are contained in either one), so α/β violations need >= 3 edges;
      // a γ-cycle needs three distinct edges too. A Berge cycle already
      // exists with two edges sharing two vertices.
      min_violating_edges_(target == AcyclicityClass::kBerge ? 2 : 3) {}

int IncrementalClassifier::Find(int v) const {
  // No path compression: rollback must be able to restore parents exactly.
  while (parent_[static_cast<size_t>(v)] != v) {
    v = parent_[static_cast<size_t>(v)];
  }
  return v;
}

void IncrementalClassifier::EnsureVertex(int v) {
  while (static_cast<size_t>(v) >= parent_.size()) {
    parent_.push_back(static_cast<int>(parent_.size()));
    size_.push_back(1);
    bad_.push_back(0);
    edge_count_.push_back(0);
    dense_id_.push_back(0);
    dense_epoch_.push_back(0);
  }
}

bool IncrementalClassifier::ComponentMeets(int root) {
  if (target_ == AcyclicityClass::kCyclic) return true;
  // Collect the component's edges and remap its vertices densely (epoch
  // stamps avoid clearing the map between calls).
  ++epoch_;
  int next_id = 0;
  work_count_ = 0;
  for (size_t f = 0; f < depth_; ++f) {
    const std::vector<int>& edge = frames_[f].edge;
    if (edge.empty() || Find(edge[0]) != root) continue;
    if (work_count_ == work_sets_.size()) work_sets_.emplace_back();
    std::vector<int>& verts = work_sets_[work_count_++];
    verts.clear();
    for (int v : edge) {
      if (dense_epoch_[static_cast<size_t>(v)] != epoch_) {
        dense_epoch_[static_cast<size_t>(v)] = epoch_;
        dense_id_[static_cast<size_t>(v)] = next_id++;
      }
      verts.push_back(dense_id_[static_cast<size_t>(v)]);
    }
    std::sort(verts.begin(), verts.end());
  }
  return ScratchMeets(next_id);
}

bool IncrementalClassifier::LazyMeets() {
  if (target_ == AcyclicityClass::kCyclic) return true;
  ++epoch_;
  int next_id = 0;
  work_count_ = 0;
  for (size_t f = 0; f < depth_; ++f) {
    const std::vector<int>& edge = frames_[f].edge;
    if (work_count_ == work_sets_.size()) work_sets_.emplace_back();
    std::vector<int>& verts = work_sets_[work_count_++];
    verts.clear();
    for (int v : edge) {
      if (dense_epoch_[static_cast<size_t>(v)] != epoch_) {
        dense_epoch_[static_cast<size_t>(v)] = epoch_;
        dense_id_[static_cast<size_t>(v)] = next_id++;
      }
      verts.push_back(dense_id_[static_cast<size_t>(v)]);
    }
    std::sort(verts.begin(), verts.end());
    verts.erase(std::unique(verts.begin(), verts.end()), verts.end());
  }
  return ScratchMeets(next_id);
}

bool IncrementalClassifier::ScratchMeets(int nv) {
  scr_alive_.assign(work_count_, 1);
  scr_present_.assign(static_cast<size_t>(nv), 1);
  scr_deg_.assign(static_cast<size_t>(nv), 0);
  for (size_t e = 0; e < work_count_; ++e) {
    for (int v : work_sets_[e]) ++scr_deg_[static_cast<size_t>(v)];
  }
  switch (target_) {
    case AcyclicityClass::kCyclic:
      return true;
    case AcyclicityClass::kAlpha:
      return ScratchAlpha(nv);
    case AcyclicityClass::kBeta:
      return ScratchBeta(nv);
    case AcyclicityClass::kGamma:
      return ScratchGamma(nv);
    case AcyclicityClass::kBerge:
      return ScratchBerge(nv);
  }
  return false;
}

bool IncrementalClassifier::ScratchAlpha(int nv) {
  (void)nv;
  // Naive GYO with degree-pruned ear witnesses, fine at DFS-path sizes.
  size_t remaining = work_count_;
  bool progress = true;
  while (progress && remaining > 1) {
    progress = false;
    for (size_t e = 0; e < work_count_ && remaining > 1; ++e) {
      if (!scr_alive_[e]) continue;
      scr_inc_.clear();  // shared vertices of e
      for (int v : work_sets_[e]) {
        if (scr_deg_[static_cast<size_t>(v)] >= 2) scr_inc_.push_back(v);
      }
      bool found = false;
      for (size_t f = 0; f < work_count_ && !found; ++f) {
        if (f == e || !scr_alive_[f]) continue;
        found = internal::IsSubsetSorted(scr_inc_, work_sets_[f]);
      }
      if (!found) continue;
      scr_alive_[e] = 0;
      --remaining;
      for (int v : work_sets_[e]) --scr_deg_[static_cast<size_t>(v)];
      progress = true;
    }
  }
  return remaining <= 1;
}

bool IncrementalClassifier::ScratchBeta(int nv) {
  int remaining = nv;
  bool progress = true;
  while (progress && remaining > 0) {
    progress = false;
    for (int v = 0; v < nv; ++v) {
      if (!scr_present_[static_cast<size_t>(v)]) continue;
      // Incident edge sets must form a chain under inclusion.
      scr_inc_.clear();
      for (size_t e = 0; e < work_count_; ++e) {
        if (std::binary_search(work_sets_[e].begin(), work_sets_[e].end(),
                               v)) {
          scr_inc_.push_back(static_cast<int>(e));
        }
      }
      std::sort(scr_inc_.begin(), scr_inc_.end(), [this](int a, int b) {
        return work_sets_[static_cast<size_t>(a)].size() <
               work_sets_[static_cast<size_t>(b)].size();
      });
      bool chain = true;
      for (size_t i = 0; i + 1 < scr_inc_.size() && chain; ++i) {
        chain = internal::IsSubsetSorted(
            work_sets_[static_cast<size_t>(scr_inc_[i])],
            work_sets_[static_cast<size_t>(scr_inc_[i + 1])]);
      }
      if (!chain) continue;
      for (int e : scr_inc_) {
        std::vector<int>& s = work_sets_[static_cast<size_t>(e)];
        s.erase(std::lower_bound(s.begin(), s.end(), v));
      }
      scr_present_[static_cast<size_t>(v)] = 0;
      --remaining;
      progress = true;
    }
  }
  return remaining == 0;
}

bool IncrementalClassifier::ScratchGamma(int nv) {
  int verts_left = nv;
  int edges_left = static_cast<int>(work_count_);
  auto drop_edge = [&](size_t e) {
    scr_alive_[e] = 0;
    --edges_left;
    for (int v : work_sets_[e]) --scr_deg_[static_cast<size_t>(v)];
  };
  auto drop_vertex = [&](int v) {
    for (size_t e = 0; e < work_count_; ++e) {
      if (!scr_alive_[e]) continue;
      std::vector<int>& s = work_sets_[e];
      auto it = std::lower_bound(s.begin(), s.end(), v);
      if (it != s.end() && *it == v) s.erase(it);
    }
    scr_present_[static_cast<size_t>(v)] = 0;
    scr_deg_[static_cast<size_t>(v)] = 0;
    --verts_left;
  };
  bool changed = true;
  while (changed && (verts_left > 0 || edges_left > 0)) {
    changed = false;
    for (size_t e = 0; e < work_count_; ++e) {
      if (!scr_alive_[e]) continue;
      if (work_sets_[e].size() <= 1) {
        drop_edge(e);
        changed = true;
        continue;
      }
      for (size_t f = 0; f < e; ++f) {
        if (scr_alive_[f] && work_sets_[f] == work_sets_[e]) {
          drop_edge(e);
          changed = true;
          break;
        }
      }
    }
    for (int v = 0; v < nv; ++v) {
      if (scr_present_[static_cast<size_t>(v)] &&
          scr_deg_[static_cast<size_t>(v)] <= 1) {
        drop_vertex(v);
        changed = true;
      }
    }
    for (int v = 0; v < nv; ++v) {
      if (!scr_present_[static_cast<size_t>(v)]) continue;
      for (int u = v + 1; u < nv; ++u) {
        if (!scr_present_[static_cast<size_t>(u)]) continue;
        bool twins = true;
        for (size_t e = 0; e < work_count_ && twins; ++e) {
          if (!scr_alive_[e]) continue;
          twins = std::binary_search(work_sets_[e].begin(),
                                     work_sets_[e].end(), v) ==
                  std::binary_search(work_sets_[e].begin(),
                                     work_sets_[e].end(), u);
        }
        if (twins) {
          drop_vertex(u);
          changed = true;
        }
      }
    }
  }
  return verts_left == 0 && edges_left == 0;
}

bool IncrementalClassifier::ScratchBerge(int nv) {
  // Union-find over vertices ∪ edges without path compression; a closing
  // incidence is a Berge cycle.
  scr_parent_.resize(static_cast<size_t>(nv) + work_count_);
  for (size_t i = 0; i < scr_parent_.size(); ++i) {
    scr_parent_[i] = static_cast<int>(i);
  }
  auto find = [&](int x) {
    while (scr_parent_[static_cast<size_t>(x)] != x) {
      x = scr_parent_[static_cast<size_t>(x)];
    }
    return x;
  };
  for (size_t e = 0; e < work_count_; ++e) {
    int edge_node = nv + static_cast<int>(e);
    for (int v : work_sets_[e]) {
      int rv = find(v);
      int re = find(edge_node);
      if (rv == re) return false;
      scr_parent_[static_cast<size_t>(rv)] = re;
    }
  }
  return true;
}

bool IncrementalClassifier::PushEdge(const std::vector<int>& verts) {
  ++pushes_;
  const bool skip_decider = CannotRecover();
  if (depth_ == frames_.size()) frames_.emplace_back();
  Frame& f = frames_[depth_];
  ++depth_;
  f.edge.assign(verts.begin(), verts.end());
  f.unions.clear();
  f.old_roots.clear();
  f.new_root = -1;
  f.new_bad = 0;
  for (int v : f.edge) {
    assert(v >= 0);
    EnsureVertex(v);
  }
  // Lazy targets keep only the edge stack; verdicts are computed on
  // demand in Meets().
  if (!eager_) return true;
  std::sort(f.edge.begin(), f.edge.end());
  f.edge.erase(std::unique(f.edge.begin(), f.edge.end()), f.edge.end());

  // An empty edge (an atom with no connecting terms) is its own trivial
  // component and satisfies every class — even as a duplicate.
  if (f.edge.empty()) return Meets();

  // Distinct pre-push roots among the edge's vertices, with their state.
  int merged_edges = 1;
  for (int v : f.edge) {
    int r = Find(v);
    bool seen = false;
    for (const RootState& s : f.old_roots) {
      if (s.root == r) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    f.old_roots.push_back({r, bad_[static_cast<size_t>(r)],
                           edge_count_[static_cast<size_t>(r)]});
    merged_edges += edge_count_[static_cast<size_t>(r)];
  }

  // Merge everything into one component (union by size, logged).
  int acc = Find(f.edge[0]);
  for (size_t i = 1; i < f.edge.size(); ++i) {
    int r = Find(f.edge[i]);
    if (r == acc) continue;
    if (size_[static_cast<size_t>(acc)] < size_[static_cast<size_t>(r)]) {
      std::swap(acc, r);
    }
    parent_[static_cast<size_t>(r)] = acc;
    size_[static_cast<size_t>(acc)] += size_[static_cast<size_t>(r)];
    f.unions.push_back({r, acc});
  }
  f.new_root = acc;

  if (skip_decider) {
    // Hereditary target already violated: this frame pops before the
    // violating one (stack discipline), so the merged component's verdict
    // is only needed for consistent accounting — and hereditarily, a
    // component absorbing a bad one stays bad.
    for (const RootState& s : f.old_roots) {
      if (s.bad) f.new_bad = 1;
    }
  } else if (merged_edges < min_violating_edges_) {
    // Too few edges to contain any cycle of the target kind. (No merged
    // root can be bad either: bad components run the decider, which needs
    // at least min_violating_edges_ edges.)
    f.new_bad = 0;
  } else {
    f.new_bad = ComponentMeets(f.new_root) ? 0 : 1;
  }

  for (const RootState& s : f.old_roots) {
    if (s.bad) --bad_components_;
  }
  bad_[static_cast<size_t>(f.new_root)] = f.new_bad;
  edge_count_[static_cast<size_t>(f.new_root)] = merged_edges;
  if (f.new_bad) ++bad_components_;
  return Meets();
}

void IncrementalClassifier::PopEdge() {
  assert(depth_ > 0);
  ++pops_;
  Frame& f = frames_[depth_ - 1];
  if (!f.edge.empty()) {
    if (f.new_bad) --bad_components_;
    for (auto it = f.unions.rbegin(); it != f.unions.rend(); ++it) {
      const auto& [child, par] = *it;
      parent_[static_cast<size_t>(child)] = child;
      size_[static_cast<size_t>(par)] -= size_[static_cast<size_t>(child)];
    }
    for (const RootState& s : f.old_roots) {
      bad_[static_cast<size_t>(s.root)] = s.bad;
      edge_count_[static_cast<size_t>(s.root)] = s.edge_count;
      if (s.bad) ++bad_components_;
    }
  }
  --depth_;
}

}  // namespace semacyc::acyclic
