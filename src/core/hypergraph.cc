#include "core/hypergraph.h"

#include <unordered_map>

namespace semacyc {

Hypergraph Hypergraph::FromAtoms(const std::vector<Atom>& atoms,
                                 ConnectingTerms connecting) {
  Hypergraph hg;
  hg.edges.reserve(atoms.size());
  for (const Atom& a : atoms) {
    std::vector<Term> verts;
    for (Term t : a.DistinctTerms()) {
      bool connects = false;
      switch (connecting) {
        case ConnectingTerms::kNullsOnly:
          connects = t.IsNull();
          break;
        case ConnectingTerms::kVariables:
          connects = t.IsVariable();
          break;
        case ConnectingTerms::kAllTerms:
          connects = true;
          break;
      }
      if (connects) verts.push_back(t);
    }
    hg.edges.push_back(std::move(verts));
  }
  return hg;
}

acyclic::Hypergraph ToAcyclicHypergraph(const Hypergraph& hg) {
  acyclic::Hypergraph out;
  std::unordered_map<Term, int, TermHash> vertex_of;
  vertex_of.reserve(hg.edges.size() * 2);
  for (const auto& edge : hg.edges) {
    std::vector<int> verts;
    verts.reserve(edge.size());
    for (Term t : edge) {
      verts.push_back(
          vertex_of.emplace(t, static_cast<int>(vertex_of.size()))
              .first->second);
    }
    out.AddEdge(std::move(verts));
  }
  out.num_vertices = static_cast<int>(vertex_of.size());
  return out;
}

GyoResult RunGyo(const Hypergraph& hg) {
  return acyclic::GyoReduce(ToAcyclicHypergraph(hg));
}

acyclic::Classification ClassifyAtoms(const std::vector<Atom>& atoms,
                                      ConnectingTerms connecting) {
  return acyclic::Classify(
      ToAcyclicHypergraph(Hypergraph::FromAtoms(atoms, connecting)));
}

acyclic::Classification ClassifyQuery(const ConjunctiveQuery& q) {
  return ClassifyAtoms(q.body(), ConnectingTerms::kVariables);
}

bool MeetsAcyclicityClass(const std::vector<Atom>& atoms,
                          ConnectingTerms connecting,
                          acyclic::AcyclicityClass target) {
  return acyclic::Meets(
      ToAcyclicHypergraph(Hypergraph::FromAtoms(atoms, connecting)), target);
}

bool IsAcyclic(const std::vector<Atom>& atoms, ConnectingTerms connecting) {
  return RunGyo(Hypergraph::FromAtoms(atoms, connecting)).acyclic;
}

bool IsAcyclic(const ConjunctiveQuery& q) {
  return IsAcyclic(q.body(), ConnectingTerms::kVariables);
}

bool IsAcyclicInstance(const Instance& instance) {
  return IsAcyclic(instance.atoms(), ConnectingTerms::kNullsOnly);
}

bool IsAcyclicChase(const Instance& instance) {
  return IsAcyclic(instance.atoms(), ConnectingTerms::kAllTerms);
}

JoinTree JoinTreeFromForest(const std::vector<Atom>& atoms,
                            std::vector<int> parent) {
  int first_root = -1;
  for (size_t i = 0; i < parent.size(); ++i) {
    if (parent[i] != -1) continue;
    if (first_root == -1) {
      first_root = static_cast<int>(i);
    } else {
      parent[i] = first_root;
    }
  }
  return JoinTree(atoms, std::move(parent));
}

std::optional<JoinTree> BuildJoinTree(const std::vector<Atom>& atoms,
                                      ConnectingTerms connecting) {
  GyoResult gyo = RunGyo(Hypergraph::FromAtoms(atoms, connecting));
  if (!gyo.acyclic) return std::nullopt;
  return JoinTreeFromForest(atoms, std::move(gyo.parent));
}

std::optional<JoinTreeView> BuildJoinTreeView(const std::vector<Atom>& atoms,
                                              ConnectingTerms connecting) {
  GyoResult gyo = RunGyo(Hypergraph::FromAtoms(atoms, connecting));
  if (!gyo.acyclic) return std::nullopt;
  return JoinTreeView(atoms, std::move(gyo.parent));
}

}  // namespace semacyc
