#include "core/hypergraph.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace semacyc {

Hypergraph Hypergraph::FromAtoms(const std::vector<Atom>& atoms,
                                 ConnectingTerms connecting) {
  Hypergraph hg;
  hg.edges.reserve(atoms.size());
  for (const Atom& a : atoms) {
    std::vector<Term> verts;
    for (Term t : a.DistinctTerms()) {
      bool connects = false;
      switch (connecting) {
        case ConnectingTerms::kNullsOnly:
          connects = t.IsNull();
          break;
        case ConnectingTerms::kVariables:
          connects = t.IsVariable();
          break;
        case ConnectingTerms::kAllTerms:
          connects = true;
          break;
      }
      if (connects) verts.push_back(t);
    }
    hg.edges.push_back(std::move(verts));
  }
  return hg;
}

GyoResult RunGyo(const Hypergraph& hg) {
  const int m = static_cast<int>(hg.edges.size());
  GyoResult result;
  result.parent.assign(m, -1);
  if (m == 0) {
    result.acyclic = true;
    return result;
  }

  std::vector<bool> removed(m, false);
  // Per-vertex count of remaining edges containing it.
  std::unordered_map<Term, int> vertex_count;
  for (const auto& edge : hg.edges) {
    for (Term v : edge) ++vertex_count[v];
  }

  int remaining = m;
  bool progress = true;
  while (progress && remaining > 1) {
    progress = false;
    for (int e = 0; e < m && remaining > 1; ++e) {
      if (removed[e]) continue;
      // Vertices of e shared with some other remaining edge.
      std::vector<Term> shared;
      for (Term v : hg.edges[e]) {
        if (vertex_count[v] >= 2) shared.push_back(v);
      }
      // Find a witness edge f != e whose vertex set contains `shared`.
      int witness = -1;
      for (int f = 0; f < m; ++f) {
        if (f == e || removed[f]) continue;
        bool contains_all = true;
        for (Term v : shared) {
          if (std::find(hg.edges[f].begin(), hg.edges[f].end(), v) ==
              hg.edges[f].end()) {
            contains_all = false;
            break;
          }
        }
        if (contains_all) {
          witness = f;
          break;
        }
      }
      if (witness < 0) continue;
      removed[e] = true;
      result.parent[e] = witness;
      result.elimination_order.push_back(e);
      for (Term v : hg.edges[e]) --vertex_count[v];
      --remaining;
      progress = true;
    }
  }

  result.acyclic = (remaining <= 1);
  if (result.acyclic) {
    for (int e = 0; e < m; ++e) {
      if (!removed[e]) result.elimination_order.push_back(e);
    }
  }
  return result;
}

bool IsAcyclic(const std::vector<Atom>& atoms, ConnectingTerms connecting) {
  return RunGyo(Hypergraph::FromAtoms(atoms, connecting)).acyclic;
}

bool IsAcyclic(const ConjunctiveQuery& q) {
  return IsAcyclic(q.body(), ConnectingTerms::kVariables);
}

bool IsAcyclicInstance(const Instance& instance) {
  return IsAcyclic(instance.atoms(), ConnectingTerms::kNullsOnly);
}

bool IsAcyclicChase(const Instance& instance) {
  return IsAcyclic(instance.atoms(), ConnectingTerms::kAllTerms);
}

std::optional<JoinTree> BuildJoinTree(const std::vector<Atom>& atoms,
                                      ConnectingTerms connecting) {
  GyoResult gyo = RunGyo(Hypergraph::FromAtoms(atoms, connecting));
  if (!gyo.acyclic) return std::nullopt;
  // Link forest roots into a single chain (components share no connecting
  // terms, so this preserves the running-intersection property).
  int first_root = -1;
  for (size_t i = 0; i < gyo.parent.size(); ++i) {
    if (gyo.parent[i] != -1) continue;
    if (first_root == -1) {
      first_root = static_cast<int>(i);
    } else {
      gyo.parent[i] = first_root;
    }
  }
  return JoinTree(atoms, gyo.parent);
}

}  // namespace semacyc
