#ifndef SEMACYC_CORE_HYPERGRAPH_H_
#define SEMACYC_CORE_HYPERGRAPH_H_

#include <optional>
#include <vector>

#include "acyclic/classify.h"
#include "core/atom.h"
#include "core/instance.h"
#include "core/join_tree.h"
#include "core/query.h"

namespace semacyc {

/// Which terms act as *connecting* vertices when testing acyclicity.
///
/// The paper (§2) defines acyclicity of an instance through join trees whose
/// connectedness condition ranges over the *nulls* of the instance; the
/// acyclicity of a CQ replaces every variable by a fresh null first, so for
/// queries every variable connects. The semantic-acyclicity pipeline works
/// with chases of frozen queries in which the canonical constants c(x) play
/// the role of variables ("special constants treated as nulls"), hence
/// kAllTerms.
enum class ConnectingTerms {
  kNullsOnly,   // literal §2 definition for instances
  kVariables,   // CQ bodies: variables connect, constants do not
  kAllTerms,    // frozen-query chases: every term connects
};

/// A hypergraph: one hyperedge (list of distinct connecting vertices) per
/// atom. Vertices are terms. This is the term-keyed adapter view; all
/// algorithms live in the acyclic/ engine and run on the interned form
/// produced by ToAcyclicHypergraph.
struct Hypergraph {
  std::vector<std::vector<Term>> edges;

  static Hypergraph FromAtoms(const std::vector<Atom>& atoms,
                              ConnectingTerms connecting);
};

/// Result of the GYO ear-removal reduction (see acyclic/gyo.h). Edge
/// indices are atom indices; parent[i] == -1 marks forest roots.
using GyoResult = acyclic::GyoResult;

/// Interns the term vertices of `hg` (first-occurrence order) and returns
/// the engine form. Edge order — and hence atom indices — is preserved.
acyclic::Hypergraph ToAcyclicHypergraph(const Hypergraph& hg);

/// Runs the GYO reduction via the indexed worklist engine; near-linear on
/// acyclic inputs (the seed's quadratic scan survives as
/// acyclic::GyoReduceNaive for benches and oracles).
GyoResult RunGyo(const Hypergraph& hg);

/// Classifies the atoms' hypergraph in the acyclicity hierarchy
/// (cyclic ⊂ α ⊂ β ⊂ γ ⊂ Berge), with certificates.
acyclic::Classification ClassifyAtoms(const std::vector<Atom>& atoms,
                                      ConnectingTerms connecting);
acyclic::Classification ClassifyQuery(const ConjunctiveQuery& q);

/// True iff the atoms' hypergraph lies in `target` or a stricter class.
/// Runs only the decider for `target`, not the full classification.
bool MeetsAcyclicityClass(const std::vector<Atom>& atoms,
                          ConnectingTerms connecting,
                          acyclic::AcyclicityClass target);

/// Convenience wrappers (α-acyclicity, the paper's default notion).
bool IsAcyclic(const std::vector<Atom>& atoms, ConnectingTerms connecting);
bool IsAcyclic(const ConjunctiveQuery& q);                 // kVariables
bool IsAcyclicInstance(const Instance& instance);          // kNullsOnly
bool IsAcyclicChase(const Instance& instance);             // kAllTerms

/// Chains the roots of a GYO join forest into a single tree over `atoms`
/// (distinct components share no connecting terms, so this preserves the
/// running-intersection property). `parent` must come from a successful
/// reduction over the same atom order.
JoinTree JoinTreeFromForest(const std::vector<Atom>& atoms,
                            std::vector<int> parent);

/// Builds a join tree for an acyclic atom set; returns std::nullopt when the
/// atoms are cyclic. The tree spans all atoms (forest roots get chained).
std::optional<JoinTree> BuildJoinTree(const std::vector<Atom>& atoms,
                                      ConnectingTerms connecting);

/// View-based variant: the returned tree references `atoms` in place (no
/// atom copies; `atoms` must outlive the view). This is the per-evaluation
/// path of eval/yannakakis and Engine::Eval.
std::optional<JoinTreeView> BuildJoinTreeView(const std::vector<Atom>& atoms,
                                              ConnectingTerms connecting);

}  // namespace semacyc

#endif  // SEMACYC_CORE_HYPERGRAPH_H_
