#ifndef SEMACYC_CORE_HYPERGRAPH_H_
#define SEMACYC_CORE_HYPERGRAPH_H_

#include <vector>

#include "core/atom.h"
#include "core/instance.h"
#include "core/join_tree.h"
#include "core/query.h"

namespace semacyc {

/// Which terms act as *connecting* vertices when testing acyclicity.
///
/// The paper (§2) defines acyclicity of an instance through join trees whose
/// connectedness condition ranges over the *nulls* of the instance; the
/// acyclicity of a CQ replaces every variable by a fresh null first, so for
/// queries every variable connects. The semantic-acyclicity pipeline works
/// with chases of frozen queries in which the canonical constants c(x) play
/// the role of variables ("special constants treated as nulls"), hence
/// kAllTerms.
enum class ConnectingTerms {
  kNullsOnly,   // literal §2 definition for instances
  kVariables,   // CQ bodies: variables connect, constants do not
  kAllTerms,    // frozen-query chases: every term connects
};

/// A hypergraph: one hyperedge (list of distinct connecting vertices) per
/// atom. Vertices are terms.
struct Hypergraph {
  std::vector<std::vector<Term>> edges;

  static Hypergraph FromAtoms(const std::vector<Atom>& atoms,
                              ConnectingTerms connecting);
};

/// Result of the GYO ear-removal reduction.
struct GyoResult {
  bool acyclic = false;
  /// When acyclic: a join forest over atom indices, parent[i] == -1 for
  /// roots. Roots of distinct connected components are siblings.
  std::vector<int> parent;
  /// The order in which ears were removed (last entries removed last).
  std::vector<int> elimination_order;
};

/// Runs the GYO (Graham / Yu–Özsoyoğlu) reduction; O(m^2 · a) per pass.
GyoResult RunGyo(const Hypergraph& hg);

/// Convenience wrappers.
bool IsAcyclic(const std::vector<Atom>& atoms, ConnectingTerms connecting);
bool IsAcyclic(const ConjunctiveQuery& q);                 // kVariables
bool IsAcyclicInstance(const Instance& instance);          // kNullsOnly
bool IsAcyclicChase(const Instance& instance);             // kAllTerms

/// Builds a join tree for an acyclic atom set; returns std::nullopt when the
/// atoms are cyclic. The tree spans all atoms (forest roots get chained).
std::optional<JoinTree> BuildJoinTree(const std::vector<Atom>& atoms,
                                      ConnectingTerms connecting);

}  // namespace semacyc

#endif  // SEMACYC_CORE_HYPERGRAPH_H_
