#include "core/instance.h"

#include <algorithm>
#include <cassert>

namespace semacyc {

bool Instance::Insert(const Atom& atom) {
  auto [it, inserted] = atom_set_.insert(atom);
  if (!inserted) return false;
  atoms_.push_back(atom);
  IndexAtom(static_cast<uint32_t>(atoms_.size() - 1));
  return true;
}

void Instance::InsertAll(const std::vector<Atom>& atoms) {
  Reserve(atoms.size());
  for (const Atom& a : atoms) Insert(a);
}

void Instance::Reserve(size_t n) {
  atoms_.reserve(atoms_.size() + n);
  atom_set_.reserve(atom_set_.size() + n);
}

void Instance::IndexAtom(uint32_t idx) {
  const Atom& atom = atoms_[idx];
  by_predicate_[atom.predicate().id()].push_back(idx);
  for (size_t pos = 0; pos < atom.arity(); ++pos) {
    by_position_[{atom.predicate().id(), static_cast<uint32_t>(pos),
                  atom.arg(pos)}]
        .push_back(idx);
  }
}

bool Instance::Contains(const Atom& atom) const {
  return atom_set_.count(atom) > 0;
}

const std::vector<uint32_t>& Instance::AtomsOf(Predicate pred) const {
  static const std::vector<uint32_t>* empty = new std::vector<uint32_t>();
  auto it = by_predicate_.find(pred.id());
  return it == by_predicate_.end() ? *empty : it->second;
}

const std::vector<uint32_t>* Instance::FindCandidates(Predicate pred,
                                                      size_t position,
                                                      Term t) const {
  auto it = by_position_.find(
      {pred.id(), static_cast<uint32_t>(position), t});
  return it == by_position_.end() ? nullptr : &it->second;
}

std::vector<Predicate> Instance::Predicates() const {
  std::vector<Predicate> out;
  for (const Atom& a : atoms_) {
    if (std::find(out.begin(), out.end(), a.predicate()) == out.end()) {
      out.push_back(a.predicate());
    }
  }
  return out;
}

std::vector<Term> Instance::ActiveDomain() const {
  std::vector<Term> out;
  std::unordered_set<Term> seen;
  for (const Atom& a : atoms_) {
    for (Term t : a.args()) {
      if (seen.insert(t).second) out.push_back(t);
    }
  }
  return out;
}

std::vector<uint32_t> Instance::AtomsMentioning(Term t) const {
  std::vector<uint32_t> out;
  std::unordered_set<uint32_t> seen;
  for (const auto& [key, indices] : by_position_) {
    if (key.term != t) continue;
    for (uint32_t idx : indices) {
      if (seen.insert(idx).second) out.push_back(idx);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t Instance::ReplaceTerm(Term from, Term to) {
  if (from == to) return 0;
  size_t changed = 0;
  std::vector<Atom> rebuilt;
  rebuilt.reserve(atoms_.size());
  for (const Atom& a : atoms_) {
    bool hit = false;
    std::vector<Term> args = a.args();
    for (Term& t : args) {
      if (t == from) {
        t = to;
        hit = true;
      }
    }
    if (hit) {
      ++changed;
      rebuilt.emplace_back(a.predicate(), std::move(args));
    } else {
      rebuilt.push_back(a);
    }
  }
  if (changed == 0) return 0;
  // Rebuild all storage: collapsing terms may merge atoms.
  atoms_.clear();
  atom_set_.clear();
  by_predicate_.clear();
  by_position_.clear();
  for (const Atom& a : rebuilt) Insert(a);
  return changed;
}

Instance Instance::Restrict(const std::vector<uint32_t>& atom_indices) const {
  Instance out;
  for (uint32_t idx : atom_indices) {
    assert(idx < atoms_.size());
    out.Insert(atoms_[idx]);
  }
  return out;
}

size_t Instance::ApproxBytes() const {
  size_t bytes = sizeof(Instance);
  size_t occurrences = 0;
  for (const Atom& a : atoms_) {
    bytes += sizeof(Atom) + a.arity() * sizeof(Term);
    occurrences += a.arity();
  }
  // atom_set_ and by_predicate_ hold one entry per atom; by_position_ one
  // per argument occurrence. Charge hash-node overhead for each.
  bytes += atoms_.size() * (sizeof(Atom) + 4 * sizeof(void*));
  bytes += occurrences * (sizeof(uint32_t) + 4 * sizeof(void*));
  return bytes;
}

std::string Instance::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) out += ", ";
    out += atoms_[i].ToString();
  }
  out += "}";
  return out;
}

bool operator==(const Instance& a, const Instance& b) {
  if (a.size() != b.size()) return false;
  for (const Atom& atom : a.atoms_) {
    if (!b.Contains(atom)) return false;
  }
  return true;
}

}  // namespace semacyc
