#include "core/gaifman.h"

#include <algorithm>

namespace semacyc {

GaifmanGraph GaifmanGraph::Of(const std::vector<Atom>& atoms,
                              ConnectingTerms connecting) {
  GaifmanGraph g;
  Hypergraph hg = Hypergraph::FromAtoms(atoms, connecting);
  for (const auto& edge : hg.edges) {
    for (Term a : edge) {
      g.adjacency_[a];  // ensure isolated vertices appear
      for (Term b : edge) {
        if (a != b) g.adjacency_[a].insert(b);
      }
    }
  }
  return g;
}

GaifmanGraph GaifmanGraph::Of(const Instance& instance,
                              ConnectingTerms connecting) {
  return Of(instance.atoms(), connecting);
}

size_t GaifmanGraph::EdgeCount() const {
  size_t twice = 0;
  for (const auto& [v, nbrs] : adjacency_) twice += nbrs.size();
  return twice / 2;
}

bool GaifmanGraph::HasEdge(Term a, Term b) const {
  auto it = adjacency_.find(a);
  return it != adjacency_.end() && it->second.count(b) > 0;
}

const std::unordered_set<Term>& GaifmanGraph::Neighbors(Term t) const {
  static const std::unordered_set<Term>* empty =
      new std::unordered_set<Term>();
  auto it = adjacency_.find(t);
  return it == adjacency_.end() ? *empty : it->second;
}

bool GaifmanGraph::IsClique(const std::vector<Term>& terms) const {
  for (size_t i = 0; i < terms.size(); ++i) {
    for (size_t j = i + 1; j < terms.size(); ++j) {
      if (!HasEdge(terms[i], terms[j])) return false;
    }
  }
  return true;
}

size_t GaifmanGraph::GreedyCliqueLowerBound() const {
  // Order vertices by degree (descending) and grow a clique greedily.
  std::vector<Term> verts;
  verts.reserve(adjacency_.size());
  for (const auto& [v, _] : adjacency_) verts.push_back(v);
  std::sort(verts.begin(), verts.end(), [this](Term a, Term b) {
    return Neighbors(a).size() > Neighbors(b).size();
  });
  std::vector<Term> clique;
  for (Term v : verts) {
    bool compatible = true;
    for (Term c : clique) {
      if (!HasEdge(v, c)) {
        compatible = false;
        break;
      }
    }
    if (compatible) clique.push_back(v);
  }
  return clique.size();
}

bool GaifmanGraph::IsConnected() const {
  if (adjacency_.empty()) return true;
  std::unordered_set<Term> seen;
  std::vector<Term> stack = {adjacency_.begin()->first};
  seen.insert(stack[0]);
  while (!stack.empty()) {
    Term v = stack.back();
    stack.pop_back();
    for (Term n : Neighbors(v)) {
      if (seen.insert(n).second) stack.push_back(n);
    }
  }
  return seen.size() == adjacency_.size();
}

}  // namespace semacyc
