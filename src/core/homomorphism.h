#ifndef SEMACYC_CORE_HOMOMORPHISM_H_
#define SEMACYC_CORE_HOMOMORPHISM_H_

#include <functional>
#include <optional>
#include <vector>

#include "core/instance.h"
#include "core/interrupt.h"
#include "core/query.h"

namespace semacyc {

/// Options for the homomorphism search.
struct HomOptions {
  /// Pre-bound mappings (e.g. head variables to target constants).
  /// Default empty (unconstrained search). Terms bound here are used
  /// verbatim; they need not be "mappable" kinds. Set when answer
  /// positions are pinned — evaluation, containment, witness checks.
  Substitution fixed;
  /// Whether source nulls are treated as mappable (like variables).
  /// Default true — the right semantics for chase instances. Set false
  /// only when nulls are rigid identifiers that must map to themselves
  /// (e.g. comparing instances literally). Variables are always mappable;
  /// constants never are (they map identically).
  bool map_nulls = true;
  /// Require the term mapping to be injective. Default false; set true
  /// only for isomorphism checks (core computation, iso resolution).
  bool injective = false;
  /// Stop after this many solutions (count, not bytes). Default 1 — the
  /// existence check. 0 means "no cap"; raise only when enumerating
  /// answers and beware of exponential counts.
  size_t max_solutions = 1;
  /// Abort the search after this many backtracking steps (step count;
  /// 0 = unlimited, the default). When the budget is exhausted the search
  /// reports "not found" with budget_exhausted set; callers that need
  /// exactness must leave this at 0.
  size_t step_budget = 0;
  /// Cooperative cancellation token polled once per backtracking step
  /// (nullptr = not cancellable, the default). A fired token stops the
  /// search exactly like an exhausted step_budget — "not found" with
  /// budget_exhausted set — so no caller may treat the result as exact.
  CancelToken* cancel = nullptr;
};

/// Result of a homomorphism search.
struct HomResult {
  bool found = false;
  /// True if the search was cut short by step_budget (found may be false
  /// merely because the budget ran out).
  bool budget_exhausted = false;
  std::vector<Substitution> solutions;
};

/// Searches for homomorphisms h from `from` into `to`: Ri(h(v̄i)) ∈ to for
/// each atom, h identity on constants (§2). Backtracking with
/// most-constrained-first atom ordering, candidates narrowed through the
/// instance's (predicate, position, term) index.
HomResult FindHomomorphisms(const std::vector<Atom>& from, const Instance& to,
                            const HomOptions& options = {});

/// First homomorphism, if any.
std::optional<Substitution> FindHomomorphism(const std::vector<Atom>& from,
                                             const Instance& to,
                                             const Substitution& fixed = {});

/// True iff a homomorphism exists.
bool HasHomomorphism(const std::vector<Atom>& from, const Instance& to,
                     const Substitution& fixed = {});

/// Evaluates q over the instance: the set of tuples h(x̄) over all
/// homomorphisms h from q into `instance` (§2). Deduplicated.
std::vector<std::vector<Term>> EvaluateQuery(const ConjunctiveQuery& q,
                                             const Instance& instance,
                                             size_t max_answers = 0);

/// Decision version: t̄ ∈ q(I)? `cancel` (nullptr = not cancellable) is
/// polled during the search; a cancelled check returns false without
/// having decided — the caller must treat the answer as unknown when the
/// token has triggered.
bool EvaluatesTo(const ConjunctiveQuery& q, const Instance& instance,
                 const std::vector<Term>& tuple,
                 CancelToken* cancel = nullptr);

/// True iff the Boolean evaluation of q over `instance` is nonempty.
bool EvaluatesTrue(const ConjunctiveQuery& q, const Instance& instance);

/// Homomorphic equivalence of instances (nulls mappable, constants fixed):
/// used for chase(q,Σ) ≡ chase(q',Σ) checks (proof of Theorem 7).
bool HomomorphicallyEquivalent(const Instance& a, const Instance& b);

}  // namespace semacyc

#endif  // SEMACYC_CORE_HOMOMORPHISM_H_
