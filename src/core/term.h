#ifndef SEMACYC_CORE_TERM_H_
#define SEMACYC_CORE_TERM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace semacyc {

/// The three disjoint populations of terms of the paper's §2: constants (C),
/// labeled nulls (N), and variables (V).
enum class TermKind : uint8_t {
  kConstant = 0,
  kNull = 1,
  kVariable = 2,
};

/// A term is a 32-bit tagged handle: 2 bits of kind, 30 bits of index.
///
/// Constant and variable handles are interned by name in the process-wide
/// SymbolTable (see symbols.h helpers below); nulls are anonymous and minted
/// from a global counter, so every call to Term::FreshNull() yields a null
/// distinct from all previously created ones.
class Term {
 public:
  /// Default-constructed terms are an explicit "invalid" sentinel, distinct
  /// from every real term.
  constexpr Term() : bits_(kInvalidBits) {}

  /// Interns (or looks up) the constant with the given name.
  static Term Constant(const std::string& name);
  /// Interns (or looks up) the variable with the given name.
  static Term Variable(const std::string& name);
  /// Mints a fresh labeled null, distinct from all existing nulls.
  static Term FreshNull();
  /// Returns the null with a specific index (used by deserialization/tests).
  static Term NullAt(uint32_t index);

  constexpr bool IsValid() const { return bits_ != kInvalidBits; }
  TermKind kind() const { return static_cast<TermKind>(bits_ >> 30); }
  uint32_t index() const { return bits_ & 0x3fffffffu; }

  bool IsConstant() const { return IsValid() && kind() == TermKind::kConstant; }
  bool IsNull() const { return IsValid() && kind() == TermKind::kNull; }
  bool IsVariable() const { return IsValid() && kind() == TermKind::kVariable; }

  /// True for the canonical "@..."-named constants minted by Freeze(): the
  /// frozen images of query variables, which play the role of nulls
  /// throughout the semantic-acyclicity pipeline (§2 "special constants
  /// treated as nulls"). The "@" prefix is reserved for them — genuine
  /// constants must not use it.
  bool IsFrozenNull() const;

  /// Human-readable rendering: constant/variable names from the symbol
  /// table, nulls as "_:<index>", the invalid term as "<invalid>".
  std::string ToString() const;

  /// The name of a constant or variable. Must not be called on nulls.
  const std::string& name() const;

  friend bool operator==(Term a, Term b) { return a.bits_ == b.bits_; }
  friend bool operator!=(Term a, Term b) { return a.bits_ != b.bits_; }
  friend bool operator<(Term a, Term b) { return a.bits_ < b.bits_; }

  uint32_t raw_bits() const { return bits_; }

 private:
  static constexpr uint32_t kInvalidBits = 0xffffffffu;
  explicit constexpr Term(uint32_t bits) : bits_(bits) {}
  static Term Make(TermKind kind, uint32_t index);

  uint32_t bits_;
};

struct TermHash {
  size_t operator()(Term t) const {
    // splitmix-style avalanche over the raw handle.
    uint64_t x = t.raw_bits();
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

/// Combines a hash into a running seed (boost::hash_combine recipe).
inline void HashCombine(size_t* seed, size_t value) {
  *seed ^= value + 0x9e3779b97f4a7c15ull + (*seed << 6) + (*seed >> 2);
}

}  // namespace semacyc

namespace std {
template <>
struct hash<semacyc::Term> {
  size_t operator()(semacyc::Term t) const {
    return semacyc::TermHash{}(t);
  }
};
}  // namespace std

#endif  // SEMACYC_CORE_TERM_H_
