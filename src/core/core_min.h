#ifndef SEMACYC_CORE_CORE_MIN_H_
#define SEMACYC_CORE_CORE_MIN_H_

#include "core/query.h"

namespace semacyc {

/// Computes the core of `q`: the unique (up to isomorphism) minimal
/// equivalent subquery [Hell & Nešetřil]. In the constraint-free setting a
/// CQ is semantically acyclic iff its core is acyclic (§1), so this is both
/// the classical minimization routine and the Σ = ∅ decision procedure.
ConjunctiveQuery ComputeCore(const ConjunctiveQuery& q);

/// True iff q equals its own core (no proper retract exists).
bool IsCore(const ConjunctiveQuery& q);

}  // namespace semacyc

#endif  // SEMACYC_CORE_CORE_MIN_H_
