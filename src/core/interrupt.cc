#include "core/interrupt.h"

#include <cstdlib>
#include <mutex>
#include <new>
#include <unordered_map>

namespace semacyc {

struct FailpointRegistry::State {
  struct Point {
    FailpointAction action = FailpointAction::kCancel;
    uint64_t fire_on_hit = 1;
    uint64_t hits = 0;
    bool fired = false;
  };
  mutable std::mutex mu;
  std::unordered_map<std::string, Point> points;
};

FailpointRegistry::FailpointRegistry() : state_(new State) {
  if (const char* env = std::getenv("SEMACYC_FAILPOINTS")) {
    // "ON" arms nothing by itself — it is how CI spells "build/test with
    // failpoints compiled in"; concrete specs contain '='.
    std::string spec(env);
    if (spec.find('=') != std::string::npos) ArmFromSpec(spec);
  }
}

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry registry;
  return registry;
}

void FailpointRegistry::Arm(const std::string& name, FailpointAction action,
                            uint64_t fire_on_hit) {
  std::lock_guard<std::mutex> lock(state_->mu);
  State::Point& p = state_->points[name];
  p.action = action;
  p.fire_on_hit = fire_on_hit == 0 ? 1 : fire_on_hit;
  p.hits = 0;
  p.fired = false;
  armed_count_.store(state_->points.size(), std::memory_order_relaxed);
}

void FailpointRegistry::Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(state_->mu);
  state_->points.erase(name);
  armed_count_.store(state_->points.size(), std::memory_order_relaxed);
}

void FailpointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(state_->mu);
  state_->points.clear();
  armed_count_.store(0, std::memory_order_relaxed);
}

bool FailpointRegistry::ArmFromSpec(const std::string& spec) {
  size_t pos = 0;
  bool ok = true;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      ok = false;
      continue;
    }
    std::string name = entry.substr(0, eq);
    std::string action_str = entry.substr(eq + 1);
    uint64_t fire_on_hit = 1;
    size_t at = action_str.find('@');
    if (at != std::string::npos) {
      const std::string count = action_str.substr(at + 1);
      action_str.resize(at);
      if (count.empty() ||
          count.find_first_not_of("0123456789") != std::string::npos) {
        ok = false;
        continue;
      }
      fire_on_hit = std::strtoull(count.c_str(), nullptr, 10);
      if (fire_on_hit == 0) fire_on_hit = 1;
    }
    FailpointAction action;
    if (action_str == "cancel") {
      action = FailpointAction::kCancel;
    } else if (action_str == "bad_alloc") {
      action = FailpointAction::kBadAlloc;
    } else if (action_str == "flip") {
      action = FailpointAction::kFlipBranch;
    } else {
      ok = false;
      continue;
    }
    Arm(name, action, fire_on_hit);
  }
  return ok;
}

void FailpointRegistry::HitSlow(const char* name, CancelToken* cancel) {
  FailpointAction action;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    auto it = state_->points.find(name);
    if (it == state_->points.end()) return;
    State::Point& p = it->second;
    if (++p.hits != p.fire_on_hit) return;
    p.fired = true;
    action = p.action;
  }
  // Act outside the lock: kBadAlloc throws, and RequestCancel on a token
  // someone may poll concurrently has no business serializing on us.
  switch (action) {
    case FailpointAction::kCancel:
      if (cancel != nullptr) cancel->RequestCancel();
      break;
    case FailpointAction::kBadAlloc:
      throw std::bad_alloc();
    case FailpointAction::kFlipBranch:
      break;  // only meaningful at SEMACYC_FAILPOINT_FLIP sites
  }
}

void FailpointRegistry::HitFlipSlow(const char* name, bool* flag) {
  FailpointAction action;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    auto it = state_->points.find(name);
    if (it == state_->points.end()) return;
    State::Point& p = it->second;
    if (++p.hits != p.fire_on_hit) return;
    p.fired = true;
    action = p.action;
  }
  switch (action) {
    case FailpointAction::kFlipBranch:
      if (flag != nullptr) *flag = !*flag;
      break;
    case FailpointAction::kBadAlloc:
      throw std::bad_alloc();
    case FailpointAction::kCancel:
      break;  // no token at flip sites
  }
}

uint64_t FailpointRegistry::HitCount(const std::string& name) const {
  std::lock_guard<std::mutex> lock(state_->mu);
  auto it = state_->points.find(name);
  return it == state_->points.end() ? 0 : it->second.hits;
}

bool FailpointRegistry::Fired(const std::string& name) const {
  std::lock_guard<std::mutex> lock(state_->mu);
  auto it = state_->points.find(name);
  return it != state_->points.end() && it->second.fired;
}

std::vector<std::string> FailpointRegistry::ArmedNames() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  std::vector<std::string> names;
  names.reserve(state_->points.size());
  for (const auto& [name, point] : state_->points) names.push_back(name);
  return names;
}

}  // namespace semacyc
