#include "core/join_tree.h"

#include <cassert>
#include <unordered_set>

namespace semacyc {

JoinTree::JoinTree(std::vector<Atom> atoms, std::vector<int> parent)
    : atoms_(std::move(atoms)), parent_(std::move(parent)) {
  assert(atoms_.size() == parent_.size());
  children_.resize(atoms_.size());
  for (size_t i = 0; i < parent_.size(); ++i) {
    if (parent_[i] >= 0) {
      children_[parent_[i]].push_back(static_cast<int>(i));
    } else {
      assert(root_ == -1 && "join tree must have a single root");
      root_ = static_cast<int>(i);
    }
  }
}

std::vector<int> JoinTree::TopDownOrder() const {
  std::vector<int> order;
  if (root_ < 0) return order;
  order.reserve(atoms_.size());
  std::vector<int> stack = {root_};
  while (!stack.empty()) {
    int node = stack.back();
    stack.pop_back();
    order.push_back(node);
    for (int child : children_[node]) stack.push_back(child);
  }
  return order;
}

std::vector<int> JoinTree::BottomUpOrder() const {
  std::vector<int> order = TopDownOrder();
  std::reverse(order.begin(), order.end());
  return order;
}

bool JoinTree::Validate(const std::vector<Term>& connecting) const {
  if (atoms_.empty()) return true;
  if (root_ < 0) return false;
  std::unordered_set<Term> wanted(connecting.begin(), connecting.end());
  // For each term, walk the tree once: the nodes mentioning the term are
  // connected iff exactly one of them has a parent not mentioning it (or is
  // the root).
  for (Term t : wanted) {
    int heads = 0;
    int count = 0;
    for (size_t i = 0; i < atoms_.size(); ++i) {
      if (!atoms_[i].Mentions(t)) continue;
      ++count;
      int p = parent_[i];
      if (p < 0 || !atoms_[p].Mentions(t)) ++heads;
    }
    if (count > 0 && heads != 1) return false;
  }
  return true;
}

bool JoinTree::ValidateAllTerms() const {
  std::unordered_set<Term> terms;
  for (const Atom& a : atoms_) {
    for (Term t : a.args()) terms.insert(t);
  }
  return Validate(std::vector<Term>(terms.begin(), terms.end()));
}

JoinTreeView::JoinTreeView(const std::vector<Atom>& atoms,
                           std::vector<int> parent)
    : atoms_(&atoms), parent_(std::move(parent)) {
  assert(atoms.size() == parent_.size());
  // Chain sibling forest roots under the first root (JoinTreeFromForest).
  for (size_t i = 0; i < parent_.size(); ++i) {
    if (parent_[i] != -1) continue;
    if (root_ == -1) {
      root_ = static_cast<int>(i);
    } else {
      parent_[i] = root_;
    }
  }
  children_.resize(parent_.size());
  for (size_t i = 0; i < parent_.size(); ++i) {
    if (parent_[i] >= 0) {
      children_[static_cast<size_t>(parent_[i])].push_back(
          static_cast<int>(i));
    }
  }
}

std::vector<int> JoinTreeView::TopDownOrder() const {
  std::vector<int> order;
  if (root_ < 0) return order;
  order.reserve(parent_.size());
  std::vector<int> stack = {root_};
  while (!stack.empty()) {
    int node = stack.back();
    stack.pop_back();
    order.push_back(node);
    for (int child : children_[static_cast<size_t>(node)]) {
      stack.push_back(child);
    }
  }
  return order;
}

std::vector<int> JoinTreeView::BottomUpOrder() const {
  std::vector<int> order = TopDownOrder();
  std::reverse(order.begin(), order.end());
  return order;
}

bool JoinTreeView::Validate(const std::vector<Term>& connecting) const {
  if (parent_.empty()) return true;
  if (root_ < 0) return false;
  std::unordered_set<Term> wanted(connecting.begin(), connecting.end());
  for (Term t : wanted) {
    int heads = 0;
    int count = 0;
    for (size_t i = 0; i < parent_.size(); ++i) {
      if (!atom(static_cast<int>(i)).Mentions(t)) continue;
      ++count;
      int p = parent_[i];
      if (p < 0 || !atom(p).Mentions(t)) ++heads;
    }
    if (count > 0 && heads != 1) return false;
  }
  return true;
}

std::string JoinTree::ToString() const {
  std::string out;
  for (size_t i = 0; i < atoms_.size(); ++i) {
    out += std::to_string(i) + ": " + atoms_[i].ToString() +
           " (parent " + std::to_string(parent_[i]) + ")\n";
  }
  return out;
}

}  // namespace semacyc
