#include "core/join_tree.h"

#include <cassert>
#include <unordered_set>

namespace semacyc {

JoinTree::JoinTree(std::vector<Atom> atoms, std::vector<int> parent)
    : atoms_(std::move(atoms)), parent_(std::move(parent)) {
  assert(atoms_.size() == parent_.size());
  children_.resize(atoms_.size());
  for (size_t i = 0; i < parent_.size(); ++i) {
    if (parent_[i] >= 0) {
      children_[parent_[i]].push_back(static_cast<int>(i));
    } else {
      assert(root_ == -1 && "join tree must have a single root");
      root_ = static_cast<int>(i);
    }
  }
}

std::vector<int> JoinTree::TopDownOrder() const {
  std::vector<int> order;
  if (root_ < 0) return order;
  order.reserve(atoms_.size());
  std::vector<int> stack = {root_};
  while (!stack.empty()) {
    int node = stack.back();
    stack.pop_back();
    order.push_back(node);
    for (int child : children_[node]) stack.push_back(child);
  }
  return order;
}

std::vector<int> JoinTree::BottomUpOrder() const {
  std::vector<int> order = TopDownOrder();
  std::reverse(order.begin(), order.end());
  return order;
}

bool JoinTree::Validate(const std::vector<Term>& connecting) const {
  if (atoms_.empty()) return true;
  if (root_ < 0) return false;
  std::unordered_set<Term> wanted(connecting.begin(), connecting.end());
  // For each term, walk the tree once: the nodes mentioning the term are
  // connected iff exactly one of them has a parent not mentioning it (or is
  // the root).
  for (Term t : wanted) {
    int heads = 0;
    int count = 0;
    for (size_t i = 0; i < atoms_.size(); ++i) {
      if (!atoms_[i].Mentions(t)) continue;
      ++count;
      int p = parent_[i];
      if (p < 0 || !atoms_[p].Mentions(t)) ++heads;
    }
    if (count > 0 && heads != 1) return false;
  }
  return true;
}

bool JoinTree::ValidateAllTerms() const {
  std::unordered_set<Term> terms;
  for (const Atom& a : atoms_) {
    for (Term t : a.args()) terms.insert(t);
  }
  return Validate(std::vector<Term>(terms.begin(), terms.end()));
}

JoinTreeView::JoinTreeView(const std::vector<Atom>& atoms,
                           std::vector<int> parent)
    : atoms_(&atoms), parent_(std::move(parent)) {
  assert(atoms.size() == parent_.size());
  // Chain sibling forest roots under the first root (JoinTreeFromForest).
  for (size_t i = 0; i < parent_.size(); ++i) {
    if (parent_[i] != -1) continue;
    if (root_ == -1) {
      root_ = static_cast<int>(i);
    } else {
      parent_[i] = root_;
    }
  }
  children_.resize(parent_.size());
  for (size_t i = 0; i < parent_.size(); ++i) {
    if (parent_[i] >= 0) {
      children_[static_cast<size_t>(parent_[i])].push_back(
          static_cast<int>(i));
    }
  }
}

std::vector<int> JoinTreeView::TopDownOrder() const {
  std::vector<int> order;
  if (root_ < 0) return order;
  order.reserve(parent_.size());
  std::vector<int> stack = {root_};
  while (!stack.empty()) {
    int node = stack.back();
    stack.pop_back();
    order.push_back(node);
    for (int child : children_[static_cast<size_t>(node)]) {
      stack.push_back(child);
    }
  }
  return order;
}

std::vector<int> JoinTreeView::BottomUpOrder() const {
  std::vector<int> order = TopDownOrder();
  std::reverse(order.begin(), order.end());
  return order;
}

bool JoinTreeView::Validate(const std::vector<Term>& connecting) const {
  if (parent_.empty()) return true;
  if (root_ < 0) return false;
  std::unordered_set<Term> wanted(connecting.begin(), connecting.end());
  for (Term t : wanted) {
    int heads = 0;
    int count = 0;
    for (size_t i = 0; i < parent_.size(); ++i) {
      if (!atom(static_cast<int>(i)).Mentions(t)) continue;
      ++count;
      int p = parent_[i];
      if (p < 0 || !atom(p).Mentions(t)) ++heads;
    }
    if (count > 0 && heads != 1) return false;
  }
  return true;
}

std::string JoinTree::ToString() const {
  std::string out;
  for (size_t i = 0; i < atoms_.size(); ++i) {
    out += std::to_string(i) + ": " + atoms_[i].ToString() +
           " (parent " + std::to_string(parent_[i]) + ")\n";
  }
  return out;
}

JoinTreeView RerootForHead(const JoinTreeView& tree,
                           const std::vector<Term>& head) {
  if (tree.size() == 0 || tree.root() < 0) return tree;
  std::unordered_set<Term> head_vars;
  for (Term h : head) {
    if (h.IsVariable()) head_vars.insert(h);
  }
  if (head_vars.empty()) return tree;

  // Depth of every node (for the closest-to-root tie break).
  const size_t n = tree.size();
  std::vector<int> depth(n, 0);
  for (int node : tree.TopDownOrder()) {
    int p = tree.parent()[static_cast<size_t>(node)];
    depth[static_cast<size_t>(node)] =
        p < 0 ? 0 : depth[static_cast<size_t>(p)] + 1;
  }

  auto cover_of = [&](int i) {
    size_t cover = 0;
    for (Term v : head_vars) {
      if (tree.atom(i).Mentions(v)) ++cover;
    }
    return cover;
  };
  int best = tree.root();
  size_t best_cover = cover_of(best);
  for (size_t i = 0; i < n; ++i) {
    size_t cover = cover_of(static_cast<int>(i));
    size_t best_i = static_cast<size_t>(best);
    if (cover > best_cover ||
        (cover == best_cover && depth[i] < depth[best_i])) {
      best = static_cast<int>(i);
      best_cover = cover;
    }
  }
  if (best == tree.root()) return tree;

  // Reverse the parent pointers along the path best -> old root; every
  // other edge keeps its orientation.
  std::vector<int> parent = tree.parent();
  int node = best;
  int prev = -1;
  while (node != -1) {
    int next = parent[static_cast<size_t>(node)];
    parent[static_cast<size_t>(node)] = prev;
    prev = node;
    node = next;
  }
  return JoinTreeView(tree.atoms(), std::move(parent));
}

}  // namespace semacyc
