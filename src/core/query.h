#ifndef SEMACYC_CORE_QUERY_H_
#define SEMACYC_CORE_QUERY_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/atom.h"
#include "core/instance.h"

namespace semacyc {

/// A mapping from terms to terms (homomorphisms, substitutions, freezings).
using Substitution = std::unordered_map<Term, Term, TermHash>;

/// Applies `sub` to `t`: mapped terms are replaced, all others kept.
Term Apply(const Substitution& sub, Term t);
/// Applies `sub` to every argument of `atom`.
Atom Apply(const Substitution& sub, const Atom& atom);
/// Applies `sub` to every atom.
std::vector<Atom> Apply(const Substitution& sub,
                        const std::vector<Atom>& atoms);

/// A conjunctive query q(x̄) := ∃ȳ (R1(v̄1) ∧ ... ∧ Rm(v̄m)), §2 of the
/// paper. The head lists the free variables x̄ (possibly with repetitions);
/// body atoms contain variables and constants, never nulls.
class ConjunctiveQuery {
 public:
  ConjunctiveQuery() = default;
  /// Builds a query; aborts (assert) if a head variable does not occur in
  /// the body or if the body mentions nulls.
  ConjunctiveQuery(std::vector<Term> head, std::vector<Atom> body);

  const std::vector<Term>& head() const { return head_; }
  const std::vector<Atom>& body() const { return body_; }
  size_t arity() const { return head_.size(); }
  bool IsBoolean() const { return head_.empty(); }
  size_t size() const { return body_.size(); }  // |q| = number of atoms

  /// All variables of the query in first-occurrence order (head first).
  std::vector<Term> Variables() const;
  /// The distinct head variables in first-occurrence order.
  std::vector<Term> FreeVariables() const;
  /// Variables occurring in the body but not in the head.
  std::vector<Term> ExistentialVariables() const;

  /// Groups body-atom indices into Gaifman-connected components (two atoms
  /// are connected when they share a variable; constants do not connect).
  std::vector<std::vector<int>> ConnectedComponents() const;
  bool IsConnected() const { return ConnectedComponents().size() <= 1; }

  /// Applies a variable renaming/substitution to head and body.
  ConjunctiveQuery Substitute(const Substitution& sub) const;

  /// Returns a copy with fresh variable names, disjoint from any query
  /// produced earlier (used before combining two queries).
  ConjunctiveQuery RenameApart() const;

  /// Approximate heap footprint (cache byte accounting): head and body
  /// payload plus per-atom vector overhead. Deterministic, O(|q|).
  size_t ApproxBytes() const;

  std::string ToString() const;

  friend bool operator==(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
    return a.head_ == b.head_ && a.body_ == b.body_;
  }

 private:
  std::vector<Term> head_;
  std::vector<Atom> body_;
};

/// A frozen query: the canonical database D_q of §2/§5 plus the image of the
/// head under the freezing substitution c(·).
struct FrozenQuery {
  Instance instance;
  std::vector<Term> frozen_head;
  Substitution var_to_frozen;  // variable -> frozen term
};

/// Freezes `q` by replacing each variable x with the canonical constant
/// c(x) (kind = kConstant) or with a fresh null (kind = kNull). Constants in
/// the body are kept. The paper freezes with "special constants treated as
/// nulls"; callers that chase with egds freeze to nulls so the chase can
/// merge them.
FrozenQuery Freeze(const ConjunctiveQuery& q,
                   TermKind freeze_kind = TermKind::kConstant);

/// Mints a fresh variable with a reserved name ("v$<n>") that the parser
/// can never produce.
Term FreshVariable();

/// Inverse of freezing: converts an instance (e.g. a sub-instance of a
/// chase) back into a query. Every null and every term in `rename` becomes
/// a variable; other constants are kept. `head_terms` lists the instance
/// terms that become the head, in order (they must occur in the instance).
ConjunctiveQuery QueryFromInstance(const Instance& instance,
                                   const std::vector<Term>& head_terms);

/// Same inverse freezing over a bare atom list — the candidate-pipeline
/// fast path: building an Instance (with its inverted indexes) per DFS
/// node just to convert it back into a query is pure overhead.
ConjunctiveQuery QueryFromAtoms(const std::vector<Atom>& atoms,
                                const std::vector<Term>& head_terms);

/// A union of conjunctive queries (§5). All disjuncts share the head arity.
class UnionQuery {
 public:
  UnionQuery() = default;
  explicit UnionQuery(std::vector<ConjunctiveQuery> disjuncts);

  const std::vector<ConjunctiveQuery>& disjuncts() const { return disjuncts_; }
  size_t size() const { return disjuncts_.size(); }
  bool empty() const { return disjuncts_.empty(); }
  void Add(ConjunctiveQuery q) { disjuncts_.push_back(std::move(q)); }

  /// The height of the UCQ: the maximal size of its disjuncts (§5).
  size_t Height() const;

  /// Approximate heap footprint (sum over disjuncts).
  size_t ApproxBytes() const;

  std::string ToString() const;

 private:
  std::vector<ConjunctiveQuery> disjuncts_;
};

}  // namespace semacyc

#endif  // SEMACYC_CORE_QUERY_H_
