#ifndef SEMACYC_CORE_GAIFMAN_H_
#define SEMACYC_CORE_GAIFMAN_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/hypergraph.h"
#include "core/instance.h"

namespace semacyc {

/// The Gaifman graph of an atom set: vertices are connecting terms, with an
/// edge between two terms iff they co-occur in some atom (§3.2 of the
/// paper). Used to measure how badly a chase destroys query structure
/// (Examples 2 and 5: cliques and grids appear).
class GaifmanGraph {
 public:
  static GaifmanGraph Of(const std::vector<Atom>& atoms,
                         ConnectingTerms connecting);
  static GaifmanGraph Of(const Instance& instance, ConnectingTerms connecting);

  size_t VertexCount() const { return adjacency_.size(); }
  size_t EdgeCount() const;

  bool HasEdge(Term a, Term b) const;
  const std::unordered_set<Term>& Neighbors(Term t) const;

  /// True if every pair of the given terms is adjacent.
  bool IsClique(const std::vector<Term>& terms) const;

  /// Greedy lower bound on the max clique size (exact on small graphs is
  /// not needed; Example 2 constructs explicit cliques).
  size_t GreedyCliqueLowerBound() const;

  bool IsConnected() const;

 private:
  std::unordered_map<Term, std::unordered_set<Term>> adjacency_;
};

}  // namespace semacyc

#endif  // SEMACYC_CORE_GAIFMAN_H_
