#ifndef SEMACYC_CORE_ATOM_H_
#define SEMACYC_CORE_ATOM_H_

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "core/term.h"

namespace semacyc {

/// Interned relation symbol. A predicate is identified by (name, arity);
/// the same name with different arities yields distinct predicates (this
/// is what the connecting operator of §4 relies on when it widens arities).
class Predicate {
 public:
  constexpr Predicate() : id_(kInvalidId) {}

  /// Interns (or looks up) the predicate `name/arity`.
  static Predicate Get(const std::string& name, int arity);

  bool IsValid() const { return id_ != kInvalidId; }
  uint32_t id() const { return id_; }
  const std::string& name() const;
  int arity() const;
  std::string ToString() const;  // "name/arity"

  friend bool operator==(Predicate a, Predicate b) { return a.id_ == b.id_; }
  friend bool operator!=(Predicate a, Predicate b) { return a.id_ != b.id_; }
  friend bool operator<(Predicate a, Predicate b) { return a.id_ < b.id_; }

 private:
  static constexpr uint32_t kInvalidId = 0xffffffffu;
  explicit Predicate(uint32_t id) : id_(id) {}
  uint32_t id_;
};

struct PredicateHash {
  size_t operator()(Predicate p) const {
    return std::hash<uint32_t>{}(p.id());
  }
};

/// A relational atom R(t1,...,tn). Terms may be constants, nulls or
/// variables depending on context (query bodies contain no nulls; instances
/// contain no variables).
class Atom {
 public:
  Atom() = default;
  Atom(Predicate pred, std::vector<Term> args);
  Atom(Predicate pred, std::initializer_list<Term> args);

  Predicate predicate() const { return pred_; }
  const std::vector<Term>& args() const { return args_; }
  size_t arity() const { return args_.size(); }
  Term arg(size_t i) const { return args_[i]; }

  /// True if any argument has the given kind.
  bool MentionsKind(TermKind kind) const;
  /// True if some argument equals `t`.
  bool Mentions(Term t) const;

  /// The distinct terms of the atom, in first-occurrence order.
  std::vector<Term> DistinctTerms() const;

  std::string ToString() const;

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.pred_ == b.pred_ && a.args_ == b.args_;
  }
  friend bool operator!=(const Atom& a, const Atom& b) { return !(a == b); }
  friend bool operator<(const Atom& a, const Atom& b);

 private:
  Predicate pred_;
  std::vector<Term> args_;
};

struct AtomHash {
  size_t operator()(const Atom& a) const {
    size_t seed = PredicateHash{}(a.predicate());
    for (Term t : a.args()) HashCombine(&seed, TermHash{}(t));
    return seed;
  }
};

/// Renders a list of atoms as "R(x,y), S(y,z)".
std::string AtomsToString(const std::vector<Atom>& atoms);

}  // namespace semacyc

#endif  // SEMACYC_CORE_ATOM_H_
