#include "core/worksteal.h"

#include <algorithm>
#include <thread>

namespace semacyc {

uint64_t ParallelSearchPool::WorkerContext::Cap() const {
  if (pool_->stopped_.load(std::memory_order_relaxed)) return 0;
  uint64_t committed = pool_->committed_.load(std::memory_order_relaxed);
  return committed >= pool_->budget_ ? 0 : pool_->budget_ - committed;
}

bool ParallelSearchPool::WorkerContext::Stopped() const {
  return pool_->stopped_.load(std::memory_order_relaxed);
}

ParallelSearchPool::ParallelSearchPool(size_t num_units, size_t num_threads,
                                       uint64_t budget)
    : num_units_(num_units),
      num_workers_(std::max<size_t>(
          1, std::min(num_threads, std::max<size_t>(num_units, 1)))),
      budget_(budget) {
  outcomes_.resize(num_units_);
  done_.assign(num_units_, 0);
  last_claimed_.assign(num_workers_, Result::kNoUnit);
  worker_visits_.assign(num_workers_, 0);
}

void ParallelSearchPool::AdvanceCommits() {
  while (!finalized_ && commit_next_ < num_units_ && done_[commit_next_]) {
    const SearchUnitOutcome& o = outcomes_[commit_next_];
    uint64_t committed = committed_.load(std::memory_order_relaxed);
    uint64_t allowance = committed >= budget_ ? 0 : budget_ - committed;
    if (o.found && o.found_at <= allowance) {
      result_.found = true;
      result_.final_unit = commit_next_;
      result_.final_unit_cutoff = o.found_at;
      result_.official_visits = committed + o.found_at;
      result_.committed_units = commit_next_;
      finalized_ = true;
      stopped_.store(true, std::memory_order_relaxed);
      return;
    }
    if (o.exhausted && o.visits <= allowance) {
      committed_.store(committed + o.visits, std::memory_order_relaxed);
      ++commit_next_;
      continue;
    }
    // The sequential search runs out of budget inside this unit: its
    // (budget + 1)-th visit attempt lands here. The unit contributes at
    // most `allowance` countable visits before the truncating attempt.
    result_.truncated = true;
    result_.final_unit = commit_next_;
    result_.final_unit_cutoff = allowance;
    result_.official_visits = budget_ + 1;
    result_.committed_units = commit_next_;
    finalized_ = true;
    stopped_.store(true, std::memory_order_relaxed);
    return;
  }
  if (!finalized_ && commit_next_ == num_units_) {
    result_.committed_units = num_units_;
    result_.official_visits = committed_.load(std::memory_order_relaxed);
    finalized_ = true;
    stopped_.store(true, std::memory_order_relaxed);
  }
}

void ParallelSearchPool::WorkerLoop(size_t worker, const UnitRunner& run_unit) {
  WorkerContext ctx(this, worker);
  size_t claimed_units = 0, steals = 0, commit_waits = 0;
  try {
    while (!stopped_.load(std::memory_order_relaxed)) {
      size_t unit = next_unit_.fetch_add(1, std::memory_order_relaxed);
      if (unit >= num_units_) break;
      ++claimed_units;
      // A claim that does not extend this worker's own run of units is a
      // steal from the shared frontier (the first claim is just startup).
      if (last_claimed_[worker] != Result::kNoUnit &&
          unit != last_claimed_[worker] + 1) {
        ++steals;
      }
      last_claimed_[worker] = unit;
      SearchUnitOutcome out = run_unit(unit, ctx);
      worker_visits_[worker] += out.visits;
      {
        std::lock_guard<std::mutex> lock(mu_);
        outcomes_[unit] = out;
        done_[unit] = 1;
        if (unit != commit_next_) ++commit_waits;
        AdvanceCommits();
      }
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!first_error_) first_error_ = std::current_exception();
    finalized_ = true;
    stopped_.store(true, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(mu_);
  stats_.units_claimed += claimed_units;
  stats_.steals += steals;
  stats_.replays += ctx.replays_;
  stats_.commit_waits += commit_waits;
}

ParallelSearchPool::Result ParallelSearchPool::Run(const UnitRunner& run_unit) {
  std::vector<std::thread> threads;
  threads.reserve(num_workers_ - 1);
  for (size_t w = 1; w < num_workers_; ++w) {
    threads.emplace_back([this, w, &run_unit] { WorkerLoop(w, run_unit); });
  }
  WorkerLoop(0, run_unit);
  for (std::thread& t : threads) t.join();

  if (first_error_) std::rethrow_exception(first_error_);
  // Every unit was either run or the result finalized early; if no unit
  // existed at all, finalize the trivial empty search.
  if (!finalized_) AdvanceCommits();

  uint64_t total = 0;
  for (uint64_t v : worker_visits_) total += v;
  stats_.wasted_visits =
      total > result_.official_visits ? total - result_.official_visits : 0;
  return result_;
}

}  // namespace semacyc
