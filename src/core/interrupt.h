#ifndef SEMACYC_CORE_INTERRUPT_H_
#define SEMACYC_CORE_INTERRUPT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace semacyc {

/// Cooperative cancellation: an atomic cancel flag plus an optional
/// steady_clock deadline, polled from inside every unbounded loop in the
/// decision pipeline. The deciding thread calls Poll() (amortized — the
/// clock is read once every kPollStride calls); any thread may call
/// RequestCancel(). Once a poll observes cancellation the token is
/// *tripped* and stays tripped (sticky), so every later poll along the
/// unwind path agrees and the abort is reported exactly once.
///
/// Tokens chain: a per-query token in DecideBatch points at the
/// batch-level token, inherits the tighter of the two deadlines at
/// SetParent() time, and observes the parent's RequestCancel() on every
/// poll — a batch deadline cancels stragglers without touching them.
///
/// Thread contract: Poll()/PollNow() are called by the single thread
/// executing the decision; RequestCancel() and triggered() are safe from
/// any thread. A token must outlive every decision polling it.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Clock reads happen once per this many Poll() calls; flag checks
  /// happen on every call. Poll sites fire every few microseconds at
  /// most, so worst-case deadline overshoot is well under a millisecond.
  static constexpr uint32_t kPollStride = 64;

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Tightens the deadline to `tp` (keeps the earlier of the two if one
  /// is already set).
  void SetDeadline(Clock::time_point tp) {
    if (!has_deadline_ || tp < deadline_) {
      deadline_ = tp;
      has_deadline_ = true;
    }
  }

  /// Tightens the deadline to now + `ms`. `ms <= 0` is a no-op (the
  /// SemAcOptions convention: 0 = no deadline).
  void SetDeadlineInMs(int64_t ms) {
    if (ms > 0) SetDeadline(Clock::now() + std::chrono::milliseconds(ms));
  }

  /// Chains this token under `parent`: polls observe the parent's
  /// RequestCancel(), and the parent's deadline (as of this call) is
  /// folded into this token's own — the effective deadline is
  /// min(own, parent). Set the parent's deadline before chaining.
  void SetParent(const CancelToken* parent) {
    parent_ = parent;
    if (parent != nullptr && parent->has_deadline_) {
      SetDeadline(parent->deadline_);
    }
  }

  /// Requests cancellation; the next poll trips the token. Any thread.
  void RequestCancel() { cancel_requested_.store(true, std::memory_order_relaxed); }

  /// Amortized poll: flag checks every call, clock check every
  /// kPollStride calls. Returns true once the token has tripped.
  bool Poll() {
    if (triggered_.load(std::memory_order_relaxed)) return true;
    if (++countdown_ < kPollStride) {
      if (!cancel_requested_.load(std::memory_order_relaxed) &&
          (parent_ == nullptr || !parent_->CancelRequested())) {
        return false;
      }
      return Trip();
    }
    countdown_ = 0;
    return PollNow();
  }

  /// Unamortized poll (flags + clock, immediately). Used at phase
  /// boundaries where an extra clock read is noise.
  bool PollNow() {
    if (triggered_.load(std::memory_order_relaxed)) return true;
    if (cancel_requested_.load(std::memory_order_relaxed)) return Trip();
    if (parent_ != nullptr && parent_->CancelRequested()) return Trip();
    if (has_deadline_ && Clock::now() >= deadline_) return Trip();
    return false;
  }

  /// True once a poll has observed cancellation. Safe from any thread;
  /// does not itself check the clock.
  bool triggered() const { return triggered_.load(std::memory_order_relaxed); }

  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }

 private:
  bool CancelRequested() const {
    return cancel_requested_.load(std::memory_order_relaxed) ||
           triggered_.load(std::memory_order_relaxed);
  }
  bool Trip() {
    triggered_.store(true, std::memory_order_relaxed);
    return true;
  }

  std::atomic<bool> cancel_requested_{false};
  std::atomic<bool> triggered_{false};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  const CancelToken* parent_ = nullptr;
  uint32_t countdown_ = 0;
};

/// What an armed failpoint does when it fires.
enum class FailpointAction {
  kCancel,      ///< RequestCancel() on the decision's token.
  kBadAlloc,    ///< throw std::bad_alloc (simulated allocation failure).
  kFlipBranch,  ///< invert the bool at a SEMACYC_FAILPOINT_FLIP site.
};

/// Process-global registry of named failpoints at pipeline phase
/// boundaries (catalogue in docs/ROBUSTNESS.md). Unarmed cost is one
/// relaxed atomic load + branch per site; with SEMACYC_FAILPOINTS
/// compiled OFF the sites vanish entirely. Arm programmatically from
/// tests or via the SEMACYC_FAILPOINTS environment variable:
///
///   SEMACYC_FAILPOINTS="subsets.visit=cancel@100,decide.after_chase=bad_alloc"
///
/// (action one of cancel | bad_alloc | flip; `@K` fires on the K-th hit,
/// default the 1st). Arming data lives behind a mutex touched only on
/// the armed slow path.
class FailpointRegistry {
 public:
  static FailpointRegistry& Global();

  /// Arms `name` to perform `action` on its `fire_on_hit`-th hit
  /// (1-based; re-arming resets the hit counter).
  void Arm(const std::string& name, FailpointAction action,
           uint64_t fire_on_hit = 1);
  void Disarm(const std::string& name);
  void DisarmAll();

  /// Parses the SEMACYC_FAILPOINTS spec format (see class comment) and
  /// arms accordingly. Returns false on a malformed spec (valid entries
  /// before the malformed one stay armed). Called once with the
  /// environment value when the registry is first used.
  bool ArmFromSpec(const std::string& spec);

  /// Hot-path hook behind SEMACYC_FAILPOINT: no-op unless something is
  /// armed. On the K-th hit of an armed point, kCancel requests
  /// cancellation on `cancel` (if non-null) and kBadAlloc throws.
  void Hit(const char* name, CancelToken* cancel) {
    if (armed_count_.load(std::memory_order_relaxed) == 0) return;
    HitSlow(name, cancel);
  }

  /// Hook behind SEMACYC_FAILPOINT_FLIP: on the K-th hit of a point
  /// armed with kFlipBranch, inverts `*flag` (other actions behave as in
  /// Hit with no token).
  void HitFlip(const char* name, bool* flag) {
    if (armed_count_.load(std::memory_order_relaxed) == 0) return;
    HitFlipSlow(name, flag);
  }

  /// Observability for tests: hits seen by an armed point, and whether
  /// it has fired. Unarmed (or never-armed) names report 0 / false.
  uint64_t HitCount(const std::string& name) const;
  bool Fired(const std::string& name) const;
  std::vector<std::string> ArmedNames() const;

 private:
  FailpointRegistry();
  void HitSlow(const char* name, CancelToken* cancel);
  void HitFlipSlow(const char* name, bool* flag);

  struct State;
  std::atomic<uint64_t> armed_count_{0};
  State* state_;  // owned; never freed (process-lifetime singleton)
};

}  // namespace semacyc

// Failpoint sites compile away unless SEMACYC_FAILPOINTS is ON (the
// CMake option defines SEMACYC_FAILPOINTS_ENABLED=1; the default build
// keeps them in so the fault-injection suite runs under plain ctest).
#if defined(SEMACYC_FAILPOINTS_ENABLED) && SEMACYC_FAILPOINTS_ENABLED
#define SEMACYC_FAILPOINT(name, cancel) \
  ::semacyc::FailpointRegistry::Global().Hit((name), (cancel))
#define SEMACYC_FAILPOINT_FLIP(name, flag) \
  ::semacyc::FailpointRegistry::Global().HitFlip((name), (flag))
#else
#define SEMACYC_FAILPOINT(name, cancel) ((void)0)
#define SEMACYC_FAILPOINT_FLIP(name, flag) ((void)0)
#endif

#endif  // SEMACYC_CORE_INTERRUPT_H_
