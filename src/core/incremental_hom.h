#ifndef SEMACYC_CORE_INCREMENTAL_HOM_H_
#define SEMACYC_CORE_INCREMENTAL_HOM_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/instance.h"
#include "core/interrupt.h"
#include "core/query.h"

namespace semacyc {

/// Exact decision of "do the pushed atoms map homomorphically into a fixed
/// target instance?" maintained incrementally under a *stack* of atoms —
/// the access pattern of the exhaustive witness enumerator (PushAtom when
/// the DFS appends a candidate atom, PopAtom when it backtracks). Replaces
/// a from-scratch FindHomomorphisms run per DFS node with work proportional
/// to what the new atom actually changed, without giving up exactness:
/// found() always equals FindHomomorphisms(pushed atoms, target).found with
/// the same fixed bindings (parity pinned by incremental_hom_test).
///
/// How a push is absorbed, cheapest case first:
///
///  * Forward checking. Every mappable term (variable or null; terms bound
///    by `fixed` count as pre-bound variables) carries a *candidate
///    domain*: the target terms it can still take under the per-atom
///    constraints seen so far. A push scans the new atom's candidate
///    tuples — the target's per-predicate list, narrowed through the
///    (predicate, position, term) index by any ground or domain-singleton
///    position — and intersects each variable's domain with the values the
///    compatible tuples support. An emptied domain (or an empty candidate
///    list) refutes the push in O(affected): domains over-approximate the
///    image of every homomorphism, so emptiness is an exact NO and no
///    search runs at all.
///  * Witness extension. When the prefix has a witness homomorphism (the
///    common case), the same scan also looks for a tuple consistent with
///    the already-bound variables; finding one extends the witness to the
///    new atom's fresh variables and the push is done — no search.
///  * Repair. Only when the prefix witness cannot be extended does a
///    backtracking search run over all pushed atoms (earlier choices may
///    need revision) — a dense DFS over each level's cached
///    compatible-tuple list, guided by the current domains. Its outcome is
///    exact; a failure is remembered, and — homomorphisms being closed
///    under restriction to a sub-conjunction — deeper pushes under a
///    failed prefix are refuted for free.
///
/// PopAtom undoes a push exactly: domain shrinkage is trail-based (each
/// domain is a values array with an active prefix; shrinking swaps
/// survivors to the front and records the old active size, so undo is O(1)
/// per touched variable), variables first seen in the popped atom die with
/// it, and the prefix's found() verdict is restored. A witness surviving a
/// pop stays valid — restricting a homomorphism to fewer atoms never
/// breaks it — so repaired bindings of older variables are kept, not
/// rolled back.
///
/// Sessions are reusable: Reset() clears the stack and re-seeds the fixed
/// bindings (the enumerator resets once per head pattern). Steady-state
/// push/pop cycles allocate nothing — levels, domains and scratch buffers
/// are pooled.
///
/// Not thread-safe; one session per search, like IncrementalClassifier.
class IncrementalHomomorphism {
 public:
  /// Counters for introspection and benches: how pushes were absorbed.
  struct Stats {
    size_t pushes = 0;
    /// Pushes refuted by forward checking (no compatible tuple, or an
    /// emptied domain) — exact NOs with no search.
    size_t fc_rejects = 0;
    /// Pushes absorbed by extending the prefix witness — exact YESes with
    /// no search.
    size_t extends = 0;
    /// Pushes that ran the full backtracking repair search.
    size_t repairs = 0;
    /// Repairs that came back empty (exact NO the hard way).
    size_t repair_fails = 0;
    /// Pushes onto an already-failed prefix (free, hereditary NO).
    size_t dead_prefix = 0;
  };

  /// Binds the session to `target` (kept by reference — it must outlive
  /// the session and stay unchanged while atoms are pushed). The session
  /// starts at depth 0 with no fixed bindings and found() == true (the
  /// empty conjunction maps trivially).
  explicit IncrementalHomomorphism(const Instance& target);

  /// Clears the stack and re-seeds the pre-bound mappings (e.g. head
  /// variables to frozen head terms). Terms bound here are used verbatim,
  /// like HomOptions::fixed. Pooled storage is kept.
  void Reset(const Substitution& fixed = {});

  /// Pushes an atom and returns found(): whether all pushed atoms still
  /// map into the target (with the fixed bindings respected). Variables
  /// and nulls are mappable; constants map to themselves.
  bool PushAtom(const Atom& atom);

  /// Undoes the most recent PushAtom. Must not be called at depth 0.
  void PopAtom();

  /// Whether the pushed atoms map into the target. Exact — agrees with a
  /// from-scratch FindHomomorphisms at every depth.
  bool found() const { return found_; }

  size_t depth() const { return depth_; }

  /// The current witness homomorphism: every mappable term of every pushed
  /// atom (plus the fixed seeds), mapped. Only meaningful when found().
  Substitution Witness() const;

  const Stats& stats() const { return stats_; }

  /// Attaches a cooperative cancellation token polled inside the repair
  /// DFS (the only super-linear path; nullptr = not cancellable, the
  /// default). A fired token makes the in-flight repair fail as if the
  /// search space were empty — found() may then be false spuriously, so
  /// the caller must discard the outcome once the token has triggered.
  /// Pops stay exact: the undo trail is independent of the search.
  void SetCancel(CancelToken* cancel) { cancel_ = cancel; }

 private:
  /// Dense ids: every distinct term of the target is interned once at
  /// construction into [0, num_dense), and the target's tuples are stored
  /// dense — so the per-tuple scan does array arithmetic only, no term
  /// hashing. The sentinel marks "not a target term" (such a ground source
  /// argument can never match) and "unbound".
  static constexpr uint32_t kNoDense = 0xffffffffu;

  /// Candidate-domain state of one mappable term, over dense target ids.
  /// `values[0..active)` are the live candidates; shrinking permutes
  /// survivors into that prefix so a trail entry (old active size) undoes
  /// it exactly. `where[d]` is 1 + the slot of dense id d in `values`
  /// (0 = absent), maintained across the permutations for O(1) membership.
  struct VarState {
    Term term;
    std::vector<uint32_t> values;
    std::vector<uint32_t> where;  // sized num_dense; zeroed on release
    size_t active = 0;
    uint32_t bound = kNoDense;  // dense witness image; kNoDense = unbound
    Term fixed_term;            // witness image of a fixed seed (verbatim)
    bool is_fixed = false;
  };

  /// Undo record of one push, plus the level's slice of the repair search
  /// space (its compatible tuples and its position→variable pattern).
  struct Level {
    /// (var index, active size before this push's shrink).
    std::vector<std::pair<uint32_t, uint32_t>> trail;
    /// Variables first seen in this push (a suffix of the var stack);
    /// PopAtom releases them, so lifetime is purely stack-based.
    std::vector<uint32_t> fresh;
    /// Target atoms compatible with the pushed atom at push time — a
    /// superset of what any homomorphism can pick for it (domains only
    /// shrink afterwards), so the repair DFS is complete over these lists.
    std::vector<uint32_t> tuples;
    /// Per position: the variable id, or kNoDense for a ground position
    /// (ground consistency is already baked into `tuples`).
    std::vector<uint32_t> pos_var;
    bool saved_found = true;
    /// Push landed on an already-failed prefix: nothing to undo.
    bool dead_prefix = false;
  };

  /// Scratch for one slot (distinct mappable term) of the pushed atom.
  /// The support set is epoch-stamped (stamp[d] == epoch means dense id d
  /// is supported this push), so clearing between pushes is free.
  struct SlotScratch {
    uint32_t var = 0;
    bool fresh = false;
    std::vector<uint32_t> support_list;
    std::vector<uint32_t> stamp;  // sized num_dense
    uint32_t epoch = 0;
  };

  uint32_t InternVar(Term t);
  void ReleaseVar(uint32_t id);
  bool InDomain(const VarState& v, uint32_t dense) const {
    uint32_t w = v.where[dense];
    return w != 0 && w - 1 < v.active;
  }
  /// Shrinks `v` to the values stamped in `slot`, recording a trail entry
  /// (skipped when nothing shrinks).
  void ShrinkDomain(uint32_t var_id, Level* level, const SlotScratch& slot);
  /// Exact backtracking search over all pushed atoms (the repair path):
  /// a domain-guided DFS over the per-level compatible-tuple lists, with
  /// dense bindings and an undo stack — no allocation, no re-scan.
  bool Repair();
  bool RepairDfs(size_t level_idx);

  const Instance* target_;
  Substitution fixed_;

  /// Dense interning of the target's terms and tuples (built once; the
  /// target must not change during the session).
  std::unordered_map<Term, uint32_t, TermHash> dense_of_;
  std::vector<Term> dense_terms_;
  std::vector<std::vector<uint32_t>> dense_tuples_;

  /// Pooled variable records; vars_[0..vars_in_use_) are live. Fixed
  /// variables occupy the bottom of the stack and never die.
  std::vector<VarState> vars_;
  size_t vars_in_use_ = 0;
  std::unordered_map<Term, uint32_t, TermHash> var_index_;

  /// Pooled per-push undo records; levels_[0..depth_) are live.
  std::vector<Level> levels_;
  size_t depth_ = 0;

  bool found_ = true;
  Stats stats_;
  CancelToken* cancel_ = nullptr;

  /// Repair scratch: per-variable dense binding (kNoDense = unbound), the
  /// bound-order undo stack, and the most-constrained-first level order,
  /// pooled across repairs.
  std::vector<uint32_t> repair_binding_;
  std::vector<uint32_t> repair_undo_;
  std::vector<uint32_t> repair_order_;

  /// Per-push scratch, pooled across pushes. Values are dense target ids.
  std::vector<SlotScratch> slots_;
  /// Buckets the scan walks this push (one per domain value of the most
  /// selective position, or the whole per-predicate list), plus the
  /// per-position scratch the selection compares against it.
  std::vector<const std::vector<uint32_t>*> scan_buckets_;
  std::vector<const std::vector<uint32_t>*> probe_buckets_;
  std::vector<int> slot_of_position_;   // -1 = ground position
  std::vector<uint32_t> ground_dense_;  // per ground position: expected id
  std::vector<uint32_t> tuple_vals_;    // per-slot value of the current tuple
  std::vector<uint32_t> extend_vals_;   // per-slot values of the extension
};

}  // namespace semacyc

#endif  // SEMACYC_CORE_INCREMENTAL_HOM_H_
