#include "core/atom.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

namespace semacyc {
namespace {

/// Read-mostly like the term SymbolTable: known predicates (the steady
/// state — ArityOf runs per enumerated candidate atom) take a shared lock.
class PredicateTable {
 public:
  static PredicateTable& Get() {
    static PredicateTable* table = new PredicateTable();
    return *table;
  }

  uint32_t Intern(const std::string& name, int arity) {
    std::string key = name + "/" + std::to_string(arity);
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      auto it = map_.find(key);
      if (it != map_.end()) return it->second;
    }
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(entries_.size());
    entries_.push_back({name, arity});
    map_.emplace(std::move(key), id);
    return id;
  }

  const std::string& NameOf(uint32_t id) {
    std::shared_lock<std::shared_mutex> lock(mu_);
    assert(id < entries_.size());
    return entries_[id].name;
  }

  int ArityOf(uint32_t id) {
    std::shared_lock<std::shared_mutex> lock(mu_);
    assert(id < entries_.size());
    return entries_[id].arity;
  }

 private:
  struct Entry {
    std::string name;
    int arity;
  };
  std::shared_mutex mu_;
  std::unordered_map<std::string, uint32_t> map_;
  /// Deque, not vector: NameOf hands out references that must survive
  /// concurrent Intern calls (Engine::Decide runs on shared state).
  std::deque<Entry> entries_;
};

}  // namespace

Predicate Predicate::Get(const std::string& name, int arity) {
  return Predicate(PredicateTable::Get().Intern(name, arity));
}

const std::string& Predicate::name() const {
  return PredicateTable::Get().NameOf(id_);
}

int Predicate::arity() const { return PredicateTable::Get().ArityOf(id_); }

std::string Predicate::ToString() const {
  if (!IsValid()) return "<invalid>";
  return name() + "/" + std::to_string(arity());
}

Atom::Atom(Predicate pred, std::vector<Term> args)
    : pred_(pred), args_(std::move(args)) {
  assert(static_cast<int>(args_.size()) == pred.arity());
}

Atom::Atom(Predicate pred, std::initializer_list<Term> args)
    : Atom(pred, std::vector<Term>(args)) {}

bool Atom::MentionsKind(TermKind kind) const {
  for (Term t : args_) {
    if (t.IsValid() && t.kind() == kind) return true;
  }
  return false;
}

bool Atom::Mentions(Term t) const {
  return std::find(args_.begin(), args_.end(), t) != args_.end();
}

std::vector<Term> Atom::DistinctTerms() const {
  std::vector<Term> out;
  for (Term t : args_) {
    if (std::find(out.begin(), out.end(), t) == out.end()) out.push_back(t);
  }
  return out;
}

bool operator<(const Atom& a, const Atom& b) {
  if (a.pred_ != b.pred_) return a.pred_ < b.pred_;
  return a.args_ < b.args_;
}

std::string Atom::ToString() const {
  std::string out = pred_.IsValid() ? pred_.name() : "<invalid>";
  out += "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ",";
    out += args_[i].ToString();
  }
  out += ")";
  return out;
}

std::string AtomsToString(const std::vector<Atom>& atoms) {
  std::string out;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) out += ", ";
    out += atoms[i].ToString();
  }
  return out;
}

}  // namespace semacyc
