#ifndef SEMACYC_CORE_CONTAINMENT_H_
#define SEMACYC_CORE_CONTAINMENT_H_

#include "core/homomorphism.h"
#include "core/query.h"

namespace semacyc {

/// Classical (constraint-free) CQ containment, Chandra–Merlin: q1 ⊆ q2 iff
/// there is a homomorphism from q2 to the frozen q1 mapping head to head.
bool ContainedInClassic(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

/// q1 ≡ q2 over all databases.
bool EquivalentClassic(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

/// Containment of a CQ in a UCQ (no constraints): q ⊆ Q iff q ⊆ some
/// disjunct? No — iff the frozen q satisfies Q. (For CQs vs UCQs the
/// disjunct-wise test is complete, which this function exploits.)
bool ContainedInClassic(const ConjunctiveQuery& q, const UnionQuery& Q);

/// UCQ ⊆ UCQ (no constraints): every disjunct of Q1 contained in Q2.
bool ContainedInClassic(const UnionQuery& Q1, const UnionQuery& Q2);

/// Evaluates a UCQ over the frozen canonical database of `q` and reports
/// whether the frozen head is an answer; the building block of
/// rewriting-based containment (Definition 2 of the paper).
bool FrozenQuerySatisfies(const ConjunctiveQuery& q, const UnionQuery& Q);

}  // namespace semacyc

#endif  // SEMACYC_CORE_CONTAINMENT_H_
