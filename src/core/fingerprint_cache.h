#ifndef SEMACYC_CORE_FINGERPRINT_CACHE_H_
#define SEMACYC_CORE_FINGERPRINT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/canonical.h"
#include "core/query.h"

namespace semacyc {

/// Per-cache policy knobs. The default is the pre-eviction behavior
/// (unbounded, everything cached); budgets turn on LRU eviction.
struct CacheConfig {
  /// Default true. Disabled caches compute on every call and store
  /// nothing — the bypass the Engine's legacy cache_* / reuse_* toggles
  /// map onto. Disable per cache only to measure the layer beneath it.
  bool enabled = true;
  /// Byte budget across the whole cache (bytes of ApproxBytes accounting;
  /// 0 = unbounded, the default). Enforced per shard at
  /// max_bytes / shards, so a skewed fingerprint distribution can evict
  /// slightly before the global budget is reached. Set on long-running or
  /// multi-tenant engines; leave 0 for one-shot workloads.
  size_t max_bytes = 0;
  /// Entry budget across the whole cache (entry count; 0 = unbounded,
  /// the default), enforced per shard at max(1, max_entries / shards).
  /// Prefer it over max_bytes for caches whose entries grow after
  /// insertion (the oracle map). For an exact small-entry cap (e.g. the
  /// 1-entry caches of the eviction tests), set shards = 1.
  size_t max_entries = 0;
  /// Number of mutex-guarded shards (count; rounded up to a power of
  /// two, minimum 1). Default 8 — fine up to a few dozen threads. More
  /// shards = less lock contention, coarser budgets; raise only when
  /// profiling shows shard contention.
  size_t shards = 8;
};

/// Observable counters of one FingerprintCache, snapshot under the shard
/// locks (entries/bytes) and from the atomic counters (the rest).
struct CacheStats {
  size_t entries = 0;
  size_t bytes = 0;
  size_t hits = 0;
  size_t misses = 0;
  /// Entries added — one per miss, plus one per memoized *adapted* value
  /// (an adapting Matcher's rename layer inserts on the hit path, so
  /// inserts can exceed misses on such caches).
  size_t inserts = 0;
  size_t evictions = 0;
  /// Bytes of post-insert growth charged by Reweigh (honest accounting
  /// for values that grow after insertion — the oracle memos). Only the
  /// growth is counted; a shrink adjusts `bytes` but not this counter.
  size_t recharged_bytes = 0;
  /// Configured budgets, echoed so one snapshot is self-describing.
  size_t max_bytes = 0;
  size_t max_entries = 0;
  bool enabled = true;
};

/// Matcher for caches resolved by exact query equality only (the cache
/// always tries exact equality first; this matcher adds no fallback).
template <typename Value>
struct ExactMatch {
  static std::shared_ptr<const Value> Resolve(
      const ConjunctiveQuery& /*key*/,
      const std::shared_ptr<const Value>& /*value*/,
      const ConjunctiveQuery& /*probe*/) {
    return nullptr;
  }
};

/// Matcher for values that are valid verbatim for every query isomorphic
/// to their key (UCQ rewritings, containment oracles, decisions): the
/// cached value is served unchanged.
template <typename Value>
struct IsoMatch {
  static std::shared_ptr<const Value> Resolve(
      const ConjunctiveQuery& key, const std::shared_ptr<const Value>& value,
      const ConjunctiveQuery& probe) {
    return AreIsomorphic(key, probe) ? value : nullptr;
  }
};

/// One policy-bearing cache for every fingerprint-keyed memo in the
/// system: chase(q, Σ) results, UCQ rewritings, per-query containment
/// oracles and decision results are all instances of this template (the
/// four previously hand-rolled their bucket/double-checked-insert logic
/// independently, and none of them could evict).
///
/// Keys are ConjunctiveQuerys bucketed by canonical fingerprint
/// (isomorphism-invariant, so every variant of a query lands in one
/// bucket); within a bucket, a probe resolves by exact query equality
/// first and then by the Matcher:
///
///   struct Matcher {
///     /// Serve `value` (stored under `key`) for `probe`: nullptr when
///     /// the entry does not apply; `value` itself when it applies
///     /// verbatim; a freshly *adapted* value otherwise. Adapted values
///     /// are inserted under the probe key, so each renamed variant pays
///     /// the adaptation once and exact-hits afterwards.
///     static std::shared_ptr<const Value> Resolve(
///         const ConjunctiveQuery& key,
///         const std::shared_ptr<const Value>& value,
///         const ConjunctiveQuery& probe);
///   };
///
/// Eviction is LRU per shard, driven by the byte/entry budgets of
/// CacheConfig. Every entry is charged once at insert time with
/// key.ApproxBytes() + value->ApproxBytes() + bookkeeping; values that
/// grow afterwards (an oracle's memo) are re-charged via Reweigh — the
/// owner calls it after mutating a value, keeping byte budgets honest on
/// long-running engines (CacheStats::recharged_bytes counts the growth).
/// Values are handed out as shared_ptr<const Value>, so eviction never
/// invalidates a value a caller still holds.
///
/// Thread safety: all methods are safe to call concurrently. Lookups and
/// inserts take one shard mutex; computations AND Matcher::Resolve calls
/// run outside every lock (the matcher pass snapshots the bucket's
/// key/value pairs first, so an expensive isomorphism search or value
/// adaptation never serializes the shard). A racing computation of the
/// same key keeps the first inserted value, so all callers observe one
/// result; racing probes of two isomorphic-but-distinct keys may each
/// insert their own entry, which is benign duplication bounded by LRU.
template <typename Value, typename Matcher = ExactMatch<Value>>
class FingerprintCache {
 public:
  FingerprintCache() : FingerprintCache(CacheConfig{}) {}
  explicit FingerprintCache(const CacheConfig& config) : config_(config) {
    size_t shards = 1;
    while (shards < config_.shards && shards < 64) shards <<= 1;
    shards_ = std::vector<Shard>(shards);
    byte_budget_ = config_.max_bytes == 0
                       ? 0
                       : std::max<size_t>(1, config_.max_bytes / shards);
    entry_budget_ = config_.max_entries == 0
                        ? 0
                        : std::max<size_t>(1, config_.max_entries / shards);
  }

  FingerprintCache(const FingerprintCache&) = delete;
  FingerprintCache& operator=(const FingerprintCache&) = delete;

  const CacheConfig& config() const { return config_; }

  /// Returns the cached value for q, or computes and inserts it.
  /// `compute` must return std::shared_ptr<const Value>; it runs outside
  /// every lock. A compute that returns nullptr (a computation aborted by
  /// cancellation — caching its truncated artifact would poison later
  /// lookups) is counted as a miss, inserts nothing, and nullptr is
  /// returned to the caller.
  template <typename Compute>
  std::shared_ptr<const Value> GetOrCompute(uint64_t fp,
                                            const ConjunctiveQuery& q,
                                            Compute&& compute) {
    if (!config_.enabled) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return compute();
    }
    Shard& shard = ShardFor(fp);
    if (auto served = Probe(shard, fp, q)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return served;
    }
    std::shared_ptr<const Value> computed = compute();
    if (computed == nullptr) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    std::lock_guard<std::mutex> lock(shard.mu);
    // Exact-only recheck: a racing computation of the same key keeps the
    // first insert. (A racing isomorphic-but-distinct key may insert its
    // own entry — benign duplication, not worth an iso search per insert.)
    if (auto served = ExactFindLocked(shard, fp, q)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return served;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    InsertLocked(shard, fp, q, computed);
    return computed;
  }

  /// Convenience overload computing the fingerprint itself.
  template <typename Compute>
  std::shared_ptr<const Value> GetOrCompute(const ConjunctiveQuery& q,
                                            Compute&& compute) {
    return GetOrCompute(CanonicalFingerprint(q), q,
                        std::forward<Compute>(compute));
  }

  /// Lookup without compute; counts as a hit or miss. Not read-only: like
  /// any probe it touches LRU recency, and an adapting Matcher may
  /// memoize the adapted value under the probe key.
  std::shared_ptr<const Value> Find(uint64_t fp, const ConjunctiveQuery& q) {
    if (!config_.enabled) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    auto served = Probe(ShardFor(fp), fp, q);
    (served ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
    return served;
  }

  /// Snapshot of every resident value (MRU-first per shard). Used for
  /// counter aggregation over live oracles; the shared_ptrs keep the
  /// values alive past any concurrent eviction.
  std::vector<std::shared_ptr<const Value>> Values() const {
    std::vector<std::shared_ptr<const Value>> out;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (const Entry& e : shard.lru) out.push_back(e.value);
    }
    return out;
  }

  CacheStats Stats() const {
    CacheStats s;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      s.entries += shard.lru.size();
      s.bytes += shard.bytes;
    }
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.inserts = inserts_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.recharged_bytes = recharged_bytes_.load(std::memory_order_relaxed);
    s.max_bytes = config_.max_bytes;
    s.max_entries = config_.max_entries;
    s.enabled = config_.enabled;
    return s;
  }

  size_t hits() const { return hits_.load(std::memory_order_relaxed); }
  size_t misses() const { return misses_.load(std::memory_order_relaxed); }

  /// Evicts LRU entries until the cache holds at most target_bytes
  /// (enforced per shard at target_bytes / shards). Trim(0) drops every
  /// entry; counters survive, the drops count as evictions.
  void Trim(size_t target_bytes) {
    size_t per_shard = target_bytes / shards_.size();
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      while (!shard.lru.empty() && shard.bytes > per_shard) {
        EvictTailLocked(shard);
      }
    }
  }

  /// Re-charges the entry stored under this exact key against the current
  /// value->ApproxBytes() — the honest-accounting hook for values that
  /// grow after insertion (a containment oracle's memo). Growth adds to
  /// CacheStats::recharged_bytes; the entry is touched MRU and the shard
  /// budgets re-enforced, so a grown value triggers evictions exactly as
  /// an insert of that size would. No-op when the key was evicted.
  void Reweigh(uint64_t fp, const ConjunctiveQuery& q) {
    if (!config_.enabled) return;
    Shard& shard = ShardFor(fp);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto bucket_it = shard.buckets.find(fp);
    if (bucket_it == shard.buckets.end()) return;
    for (auto it : bucket_it->second) {
      if (!(it->key == q)) continue;
      size_t fresh =
          sizeof(Entry) + it->key.ApproxBytes() + it->value->ApproxBytes();
      if (fresh > it->bytes) {
        recharged_bytes_.fetch_add(fresh - it->bytes,
                                   std::memory_order_relaxed);
      }
      shard.bytes = shard.bytes - it->bytes + fresh;
      it->bytes = fresh;
      shard.lru.splice(shard.lru.begin(), shard.lru, it);
      if (byte_budget_ != 0 && fresh > byte_budget_) {
        // Grown past the whole shard budget: evicting everything else
        // could not make it fit, so drop the entry itself (mirror of the
        // declined-oversize-insert rule).
        shard.lru.splice(shard.lru.end(), shard.lru, it);
        EvictTailLocked(shard);
      }
      while (!shard.lru.empty() &&
             ((byte_budget_ != 0 && shard.bytes > byte_budget_) ||
              (entry_budget_ != 0 && shard.lru.size() > entry_budget_))) {
        EvictTailLocked(shard);
      }
      return;
    }
  }

  /// Drops the entry stored under this exact key, if resident. The abort
  /// rollback hook: a decision cancelled mid-flight erases the entries it
  /// inserted so the engine's cache state matches one that never started
  /// the decision (values still leased via shared_ptr stay alive, exactly
  /// as with eviction — and the drop is counted as one). Returns whether
  /// an entry was dropped.
  bool Erase(uint64_t fp, const ConjunctiveQuery& q) {
    if (!config_.enabled) return false;
    Shard& shard = ShardFor(fp);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto bucket_it = shard.buckets.find(fp);
    if (bucket_it == shard.buckets.end()) return false;
    for (auto it : bucket_it->second) {
      if (!(it->key == q)) continue;
      shard.lru.splice(shard.lru.end(), shard.lru, it);
      EvictTailLocked(shard);
      return true;
    }
    return false;
  }

 private:
  struct Entry {
    uint64_t fp = 0;
    ConjunctiveQuery key;
    std::shared_ptr<const Value> value;
    size_t bytes = 0;
  };
  using EntryList = std::list<Entry>;
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used. std::list iterators are stable, so
    /// the fingerprint buckets can hold them across splices.
    EntryList lru;
    std::unordered_map<uint64_t, std::vector<typename EntryList::iterator>>
        buckets;
    size_t bytes = 0;
  };

  Shard& ShardFor(uint64_t fp) {
    // The low fingerprint bits index the bucket map already; fold the
    // high half in so shard choice is not correlated with bucket choice.
    return shards_[(fp ^ (fp >> 32)) & (shards_.size() - 1)];
  }

  /// Exact-equality scan under the shard lock (so a previously inserted
  /// adapted entry beats re-adapting from the original); touches LRU.
  std::shared_ptr<const Value> ExactFindLocked(Shard& shard, uint64_t fp,
                                               const ConjunctiveQuery& q) {
    auto bucket_it = shard.buckets.find(fp);
    if (bucket_it == shard.buckets.end()) return nullptr;
    for (auto it : bucket_it->second) {
      if (it->key == q) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it);
        return it->value;
      }
    }
    return nullptr;
  }

  /// Full probe: exact pass under the lock, then the Matcher pass on a
  /// snapshot of the bucket *outside* the lock — Matcher::Resolve may run
  /// an isomorphism search or copy a whole value, and must not serialize
  /// the shard while it does.
  std::shared_ptr<const Value> Probe(Shard& shard, uint64_t fp,
                                     const ConjunctiveQuery& q) {
    std::vector<std::pair<ConjunctiveQuery, std::shared_ptr<const Value>>>
        candidates;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      if (auto served = ExactFindLocked(shard, fp, q)) return served;
      auto bucket_it = shard.buckets.find(fp);
      if (bucket_it == shard.buckets.end()) return nullptr;
      candidates.reserve(bucket_it->second.size());
      for (auto it : bucket_it->second) {
        candidates.emplace_back(it->key, it->value);
      }
    }
    for (const auto& [key, value] : candidates) {
      std::shared_ptr<const Value> served = Matcher::Resolve(key, value, q);
      if (served == nullptr) continue;
      std::lock_guard<std::mutex> lock(shard.mu);
      TouchByKeyLocked(shard, fp, key);
      if (served != value) {
        // Adapted value: memoize it under the probe key — the next probe
        // with this exact query is then a plain exact hit — unless a
        // racing thread already inserted the same adaptation.
        if (auto existing = ExactFindLocked(shard, fp, q)) return existing;
        InsertLocked(shard, fp, q, served);
      }
      return served;
    }
    return nullptr;
  }

  /// Moves the entry with this exact key (if still resident) to the MRU
  /// position; the matcher pass works on a snapshot, so the source entry
  /// may have been evicted meanwhile.
  void TouchByKeyLocked(Shard& shard, uint64_t fp,
                        const ConjunctiveQuery& key) {
    auto bucket_it = shard.buckets.find(fp);
    if (bucket_it == shard.buckets.end()) return;
    for (auto it : bucket_it->second) {
      if (it->key == key) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it);
        return;
      }
    }
  }

  void InsertLocked(Shard& shard, uint64_t fp, const ConjunctiveQuery& q,
                    const std::shared_ptr<const Value>& value) {
    Entry entry;
    entry.fp = fp;
    entry.key = q;
    entry.value = value;
    entry.bytes = sizeof(Entry) + q.ApproxBytes() + value->ApproxBytes();
    if (byte_budget_ != 0 && entry.bytes > byte_budget_) {
      // An entry that alone exceeds the shard budget is never kept:
      // admitting it would flush every resident entry for a value that
      // still could not stay. The caller keeps its shared_ptr; the
      // declined insert counts as an eviction so the thrash is
      // observable.
      evictions_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    shard.bytes += entry.bytes;
    shard.lru.push_front(std::move(entry));
    shard.buckets[fp].push_back(shard.lru.begin());
    inserts_.fetch_add(1, std::memory_order_relaxed);
    while (!shard.lru.empty() &&
           ((byte_budget_ != 0 && shard.bytes > byte_budget_) ||
            (entry_budget_ != 0 && shard.lru.size() > entry_budget_))) {
      EvictTailLocked(shard);
    }
  }

  void EvictTailLocked(Shard& shard) {
    auto victim = std::prev(shard.lru.end());
    auto bucket_it = shard.buckets.find(victim->fp);
    auto& vec = bucket_it->second;
    for (size_t i = 0; i < vec.size(); ++i) {
      if (vec[i] == victim) {
        vec[i] = vec.back();
        vec.pop_back();
        break;
      }
    }
    if (vec.empty()) shard.buckets.erase(bucket_it);
    shard.bytes -= victim->bytes;
    shard.lru.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }

  CacheConfig config_;
  std::vector<Shard> shards_;
  size_t byte_budget_ = 0;
  size_t entry_budget_ = 0;
  mutable std::atomic<size_t> hits_{0};
  mutable std::atomic<size_t> misses_{0};
  mutable std::atomic<size_t> inserts_{0};
  mutable std::atomic<size_t> evictions_{0};
  mutable std::atomic<size_t> recharged_bytes_{0};
};

}  // namespace semacyc

#endif  // SEMACYC_CORE_FINGERPRINT_CACHE_H_
