#include "core/obs.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace semacyc::obs {

const char* ToString(Phase p) {
  switch (p) {
    case Phase::kDecision:
      return "DECISION";
    case Phase::kSchemaAnalyze:
      return "SCHEMA_ANALYZE";
    case Phase::kPrepare:
      return "PREPARE";
    case Phase::kCore:
      return "CORE";
    case Phase::kChase:
      return "CHASE";
    case Phase::kRewrite:
      return "REWRITE";
    case Phase::kOracle:
      return "ORACLE";
    case Phase::kCompaction:
      return "COMPACTION";
    case Phase::kImages:
      return "IMAGES";
    case Phase::kSubsets:
      return "SUBSETS";
    case Phase::kEnumerate:
      return "ENUMERATE";
    case Phase::kHomCheck:
      return "HOM_CHECK";
    case Phase::kEval:
      return "EVAL";
  }
  return "?";
}

const char* ToString(Counter c) {
  switch (c) {
    case Counter::kCandidatesTested:
      return "candidates_tested";
    case Counter::kEnumVisits:
      return "enum_visits";
    case Counter::kClassifierPushes:
      return "classifier_pushes";
    case Counter::kClassifierPops:
      return "classifier_pops";
    case Counter::kHomPushes:
      return "hom_pushes";
    case Counter::kHomDomainWipeouts:
      return "hom_domain_wipeouts";
    case Counter::kHomExtends:
      return "hom_extends";
    case Counter::kHomRepairs:
      return "hom_repairs";
    case Counter::kHomRepairFails:
      return "hom_repair_fails";
    case Counter::kHomDeadPrefix:
      return "hom_dead_prefix";
    case Counter::kOracleMemoHits:
      return "oracle_memo_hits";
    case Counter::kOracleMemoMisses:
      return "oracle_memo_misses";
    case Counter::kOraclePrefiltered:
      return "oracle_prefiltered";
    case Counter::kTracesEmitted:
      return "traces_emitted";
    case Counter::kEvalRowsScanned:
      return "eval_rows_scanned";
    case Counter::kEvalSemijoinProbes:
      return "eval_semijoin_probes";
    case Counter::kEvalDpRows:
      return "eval_dp_rows";
    case Counter::kParallelUnits:
      return "parallel_units";
    case Counter::kParallelSteals:
      return "parallel_steals";
    case Counter::kParallelReplays:
      return "parallel_replays";
    case Counter::kParallelWastedVisits:
      return "parallel_wasted_visits";
    case Counter::kParallelCommitWaits:
      return "parallel_commit_waits";
  }
  return "?";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// DecisionTracer / DecisionTrace
// ---------------------------------------------------------------------------

DecisionTracer::DecisionTracer() : start_(std::chrono::steady_clock::now()) {
  spans_.push_back(Span{});  // kDecision root, parent -1, start 0
  open_.push_back(0);
}

int64_t DecisionTracer::ElapsedNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

size_t DecisionTracer::OpenSpan(Phase phase) {
  Span s;
  s.phase = phase;
  s.parent = static_cast<int32_t>(open_.back());
  s.start_ns = ElapsedNs();
  spans_.push_back(std::move(s));
  size_t index = spans_.size() - 1;
  open_.push_back(index);
  return index;
}

void DecisionTracer::CloseSpan(size_t index) {
  spans_[index].end_ns = ElapsedNs();
  // Spans close in stack discipline; tolerate out-of-order closes by
  // popping through (never happens with RAII PhaseTimers).
  while (open_.size() > 1 && open_.back() >= index) open_.pop_back();
}

void DecisionTracer::AddCounter(size_t index, const char* name,
                                int64_t value) {
  spans_[index].counters.push_back(SpanCounter{name, value});
}

void DecisionTracer::CounterSpan(Phase phase,
                                 std::vector<SpanCounter> counters) {
  Span s;
  s.phase = phase;
  s.parent = static_cast<int32_t>(open_.back());
  s.start_ns = s.end_ns = ElapsedNs();
  s.counters = std::move(counters);
  spans_.push_back(std::move(s));
}

DecisionTrace DecisionTracer::Finish(std::string query, const char* answer,
                                     const char* strategy, bool cached) {
  spans_[0].end_ns = ElapsedNs();
  DecisionTrace trace;
  trace.query = std::move(query);
  trace.answer = answer;
  trace.strategy = strategy;
  trace.cached = cached;
  trace.total_ns = spans_[0].end_ns;
  trace.spans = std::move(spans_);
  spans_.clear();
  open_.clear();
  return trace;
}

std::string DecisionTrace::ToJson() const {
  std::ostringstream os;
  os << "{\"query\": \"" << JsonEscape(query) << "\", \"answer\": \""
     << JsonEscape(answer) << "\", \"strategy\": \"" << JsonEscape(strategy)
     << "\", \"cached\": " << (cached ? "true" : "false")
     << ", \"total_ns\": " << total_ns << ", \"spans\": [";
  for (size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    if (i != 0) os << ", ";
    os << "{\"phase\": \"" << ToString(s.phase) << "\", \"parent\": " << s.parent
       << ", \"start_ns\": " << s.start_ns << ", \"end_ns\": " << s.end_ns
       << ", \"counters\": {";
    for (size_t j = 0; j < s.counters.size(); ++j) {
      if (j != 0) os << ", ";
      os << "\"" << s.counters[j].name << "\": " << s.counters[j].value;
    }
    os << "}}";
  }
  os << "]}";
  return os.str();
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

void JsonLinesSink::Consume(const DecisionTrace& trace) {
  std::string line = trace.ToJson();  // render outside the lock
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(out_, "{\"trace\": %s}\n", line.c_str());
  std::fflush(out_);
}

void CollectingSink::Consume(const DecisionTrace& trace) {
  std::lock_guard<std::mutex> lock(mu_);
  traces_.push_back(trace);
}

std::vector<DecisionTrace> CollectingSink::Take() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<DecisionTrace> out = std::move(traces_);
  traces_.clear();
  return out;
}

size_t CollectingSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return traces_.size();
}

// ---------------------------------------------------------------------------
// LatencyHistogram / MetricsRegistry
// ---------------------------------------------------------------------------

LatencyHistogram::Snapshot LatencyHistogram::Snap() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum_ns = sum_ns_.load(std::memory_order_relaxed);
  s.max_ns = max_ns_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

MetricsRegistry::MetricsRegistry(std::vector<std::string> strategy_names,
                                 std::vector<std::string> answer_names)
    : strategy_names_(std::move(strategy_names)),
      answer_names_(std::move(answer_names)) {
  strategy_decisions_.reserve(strategy_names_.size());
  strategy_latency_.reserve(strategy_names_.size());
  for (size_t i = 0; i < strategy_names_.size(); ++i) {
    strategy_decisions_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
    strategy_latency_.push_back(std::make_unique<LatencyHistogram>());
  }
  answer_decisions_.reserve(answer_names_.size());
  for (size_t i = 0; i < answer_names_.size(); ++i) {
    answer_decisions_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  }
}

void MetricsRegistry::RecordDecision(size_t strategy, size_t answer,
                                     int64_t ns, bool cached) {
  decisions_total_.fetch_add(1, std::memory_order_relaxed);
  if (cached) decisions_cached_.fetch_add(1, std::memory_order_relaxed);
  if (answer < answer_decisions_.size()) {
    answer_decisions_[answer]->fetch_add(1, std::memory_order_relaxed);
  }
  if (strategy < strategy_decisions_.size()) {
    strategy_decisions_[strategy]->fetch_add(1, std::memory_order_relaxed);
    // Cached decisions skip the latency histogram: a hash lookup's few µs
    // would drown the strategy's real cost distribution.
    if (!cached) strategy_latency_[strategy]->Record(ns);
  }
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot s;
  s.decisions_total = decisions_total_.load(std::memory_order_relaxed);
  s.decisions_cached = decisions_cached_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < answer_names_.size(); ++i) {
    s.answers.emplace_back(answer_names_[i],
                           answer_decisions_[i]->load(std::memory_order_relaxed));
  }
  for (size_t i = 0; i < kNumCounters; ++i) {
    s.counters.emplace_back(ToString(static_cast<Counter>(i)),
                            counters_[i].load(std::memory_order_relaxed));
  }
  for (size_t i = 0; i < strategy_names_.size(); ++i) {
    MetricsSnapshot::StrategyRow row;
    row.name = strategy_names_[i];
    row.decisions = strategy_decisions_[i]->load(std::memory_order_relaxed);
    row.latency = strategy_latency_[i]->Snap();
    s.strategies.push_back(std::move(row));
  }
  for (size_t i = 0; i < kNumPhases; ++i) {
    MetricsSnapshot::PhaseRow row;
    row.name = ToString(static_cast<Phase>(i));
    row.latency = phase_latency_[i].Snap();
    s.phases.push_back(std::move(row));
  }
  return s;
}

// ---------------------------------------------------------------------------
// MetricsSnapshot JSON
// ---------------------------------------------------------------------------

namespace {

void HistogramToJson(std::ostringstream& os,
                     const LatencyHistogram::Snapshot& h) {
  os << "{\"count\": " << h.count << ", \"sum_ns\": " << h.sum_ns
     << ", \"max_ns\": " << h.max_ns << ", \"buckets\": [";
  for (size_t i = 0; i < h.buckets.size(); ++i) {
    if (i != 0) os << ", ";
    os << h.buckets[i];
  }
  os << "]}";
}

/// Minimal recursive-descent JSON reader, sufficient for the subset
/// MetricsSnapshot::ToJson emits (objects, arrays, strings without escapes
/// beyond JsonEscape's, and non-negative integers). Not a general parser.
class JsonReader {
 public:
  explicit JsonReader(const std::string& s) : s_(s) {}

  bool Fail() const { return failed_; }

  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    failed_ = true;
    return false;
  }

  bool Peek(char c) {
    SkipWs();
    return pos_ < s_.size() && s_[pos_] == c;
  }

  std::string String() {
    if (!Consume('"')) return {};
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        char e = s_[pos_++];
        switch (e) {
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 > s_.size()) {
              failed_ = true;
              return out;
            }
            unsigned code = static_cast<unsigned>(
                std::strtoul(s_.substr(pos_, 4).c_str(), nullptr, 16));
            pos_ += 4;
            out += static_cast<char>(code);  // control chars only
            break;
          }
          default:
            out += e;  // \" and \\ and anything else literal
        }
      } else {
        out += c;
      }
    }
    Consume('"');
    return out;
  }

  uint64_t UInt() {
    SkipWs();
    if (pos_ >= s_.size() ||
        !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      failed_ = true;
      return 0;
    }
    uint64_t v = 0;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      v = v * 10 + static_cast<uint64_t>(s_[pos_++] - '0');
    }
    return v;
  }

  bool Key(const char* expected) {
    std::string k = String();
    if (k != expected) failed_ = true;
    Consume(':');
    return !failed_;
  }

  bool Histogram(LatencyHistogram::Snapshot* h) {
    Consume('{');
    Key("count");
    h->count = UInt();
    Consume(',');
    Key("sum_ns");
    h->sum_ns = UInt();
    Consume(',');
    Key("max_ns");
    h->max_ns = UInt();
    Consume(',');
    Key("buckets");
    Consume('[');
    for (size_t i = 0; i < h->buckets.size(); ++i) {
      if (i != 0) Consume(',');
      h->buckets[i] = UInt();
    }
    Consume(']');
    Consume('}');
    return !failed_;
  }

  /// Parses {"name": count, ...} into pairs.
  bool CountMap(std::vector<std::pair<std::string, uint64_t>>* out) {
    Consume('{');
    if (!Peek('}')) {
      do {
        std::string name = String();
        Consume(':');
        uint64_t v = UInt();
        out->emplace_back(std::move(name), v);
      } while (!failed_ && Peek(',') && Consume(','));
    }
    Consume('}');
    return !failed_;
  }

 private:
  const std::string& s_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\"decisions_total\": " << decisions_total
     << ", \"decisions_cached\": " << decisions_cached << ", \"answers\": {";
  for (size_t i = 0; i < answers.size(); ++i) {
    if (i != 0) os << ", ";
    os << "\"" << JsonEscape(answers[i].first) << "\": " << answers[i].second;
  }
  os << "}, \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    if (i != 0) os << ", ";
    os << "\"" << JsonEscape(counters[i].first)
       << "\": " << counters[i].second;
  }
  os << "}, \"strategies\": [";
  for (size_t i = 0; i < strategies.size(); ++i) {
    if (i != 0) os << ", ";
    os << "{\"name\": \"" << JsonEscape(strategies[i].name)
       << "\", \"decisions\": " << strategies[i].decisions
       << ", \"latency\": ";
    HistogramToJson(os, strategies[i].latency);
    os << "}";
  }
  os << "], \"phases\": [";
  for (size_t i = 0; i < phases.size(); ++i) {
    if (i != 0) os << ", ";
    os << "{\"name\": \"" << JsonEscape(phases[i].name) << "\", \"latency\": ";
    HistogramToJson(os, phases[i].latency);
    os << "}";
  }
  os << "]}";
  return os.str();
}

std::optional<MetricsSnapshot> MetricsSnapshot::FromJson(
    const std::string& json) {
  JsonReader r(json);
  MetricsSnapshot s;
  r.Consume('{');
  r.Key("decisions_total");
  s.decisions_total = r.UInt();
  r.Consume(',');
  r.Key("decisions_cached");
  s.decisions_cached = r.UInt();
  r.Consume(',');
  r.Key("answers");
  r.CountMap(&s.answers);
  r.Consume(',');
  r.Key("counters");
  r.CountMap(&s.counters);
  r.Consume(',');
  r.Key("strategies");
  r.Consume('[');
  if (!r.Peek(']')) {
    do {
      StrategyRow row;
      r.Consume('{');
      r.Key("name");
      row.name = r.String();
      r.Consume(',');
      r.Key("decisions");
      row.decisions = r.UInt();
      r.Consume(',');
      r.Key("latency");
      r.Histogram(&row.latency);
      r.Consume('}');
      s.strategies.push_back(std::move(row));
    } while (!r.Fail() && r.Peek(',') && r.Consume(','));
  }
  r.Consume(']');
  r.Consume(',');
  r.Key("phases");
  r.Consume('[');
  if (!r.Peek(']')) {
    do {
      PhaseRow row;
      r.Consume('{');
      r.Key("name");
      row.name = r.String();
      r.Consume(',');
      r.Key("latency");
      r.Histogram(&row.latency);
      r.Consume('}');
      s.phases.push_back(std::move(row));
    } while (!r.Fail() && r.Peek(',') && r.Consume(','));
  }
  r.Consume(']');
  r.Consume('}');
  if (r.Fail()) return std::nullopt;
  return s;
}

}  // namespace semacyc::obs
