#include "core/containment.h"

#include <cassert>

namespace semacyc {

bool ContainedInClassic(const ConjunctiveQuery& q1,
                        const ConjunctiveQuery& q2) {
  assert(q1.arity() == q2.arity());
  FrozenQuery frozen = Freeze(q1);
  return EvaluatesTo(q2, frozen.instance, frozen.frozen_head);
}

bool EquivalentClassic(const ConjunctiveQuery& q1,
                       const ConjunctiveQuery& q2) {
  return ContainedInClassic(q1, q2) && ContainedInClassic(q2, q1);
}

bool FrozenQuerySatisfies(const ConjunctiveQuery& q, const UnionQuery& Q) {
  FrozenQuery frozen = Freeze(q);
  for (const ConjunctiveQuery& d : Q.disjuncts()) {
    if (EvaluatesTo(d, frozen.instance, frozen.frozen_head)) return true;
  }
  return false;
}

bool ContainedInClassic(const ConjunctiveQuery& q, const UnionQuery& Q) {
  // For a CQ lhs, containment in a UCQ reduces to evaluating the UCQ over
  // the canonical database (the classic Sagiv–Yannakakis argument).
  return FrozenQuerySatisfies(q, Q);
}

bool ContainedInClassic(const UnionQuery& Q1, const UnionQuery& Q2) {
  for (const ConjunctiveQuery& d : Q1.disjuncts()) {
    if (!ContainedInClassic(d, Q2)) return false;
  }
  return true;
}

}  // namespace semacyc
