#ifndef SEMACYC_CORE_WORKSTEAL_H_
#define SEMACYC_CORE_WORKSTEAL_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <unordered_set>
#include <utility>
#include <vector>

/// Deterministic work-stealing for a single budgeted DFS
/// (docs/ARCHITECTURE.md, "Parallel single decision").
///
/// The search space is decomposed — by the caller, combinatorially,
/// without running the search — into an ORDERED list of independent
/// subtree-root *units* whose concatenation in index order is exactly the
/// sequential DFS visit order. Idle workers steal the lowest unclaimed
/// unit (an atomic ticket; "stealing" is claiming ahead of the committed
/// frontier), explore it with their own replayed session state, and
/// record its outcome. A commit protocol then replays the outcomes in
/// strict unit order against the sequential budget semantics, so the
/// official result is a pure function of (search space, budget) — bitwise
/// identical for 1 and N workers:
///
///  * Each unit's exploration is sequential and deterministic: the local
///    visit count, the local visit index of the first YES, and whether
///    the unit exhausts are scheduling-independent.
///  * Commit walks units in index order, carrying `committed` (visits
///    charged so far). Unit u's allowance is a_u = budget - committed.
///    A YES at local visit y <= a_u wins (official visits committed + y);
///    an exhausted unit with visits <= a_u commits in full; anything else
///    is exactly where the sequential search would have run out of budget
///    (official visits budget + 1, truncated).
///  * Workers cap speculative exploration at Cap() = budget - committed
///    (a relaxed read). Because commits only ever grow `committed`,
///    Cap-at-poll >= the unit's final allowance — a capped unit has
///    provably overrun its allowance, so capping never under-explores the
///    official prefix; overshoot is wasted speculation, never a wrong
///    answer.
///
/// The pool owns scheduling, commit, cooperative stop and exception
/// containment only; all search semantics (sessions, replay, dedup,
/// candidate events) live in the caller's unit runner.
namespace semacyc {

/// Per-run observability of one parallel search; the engine folds these
/// into obs counters (parallel_units, parallel_steals, ...).
struct WorkStealStats {
  /// Units claimed and run (including pruned zero-visit units).
  size_t units_claimed = 0;
  /// Claims that jumped past another worker's units (the claimed index
  /// did not follow the worker's previous unit).
  size_t steals = 0;
  /// Worker session replays (state rebuilt to a stolen prefix), counted
  /// by the unit runner via WorkerContext::NoteReplay.
  size_t replays = 0;
  /// Speculative visits beyond the official prefix (work a 1-thread run
  /// would not have done).
  uint64_t wasted_visits = 0;
  /// Finished units that could not commit yet because an earlier unit
  /// was still in flight (shared-budget contention at the commit lock).
  size_t commit_waits = 0;
};

/// What one worker records for one unit. All fields are deterministic
/// functions of the unit (given the search space and the caller's cap
/// discipline) — never of scheduling.
struct SearchUnitOutcome {
  /// DFS nodes visited inside the unit (the budget's unit).
  uint64_t visits = 0;
  /// The unit's whole subtree was explored (not capped, not cancelled).
  bool exhausted = false;
  /// A witness was found inside the unit, at local visit `found_at`
  /// (1-based). The runner stops the unit at the find.
  bool found = false;
  uint64_t found_at = 0;
};

/// Runs an ordered unit list over N workers with the deterministic commit
/// protocol above. One-shot: construct, Run once, read stats.
class ParallelSearchPool {
 public:
  /// Handed to the unit runner; all methods are safe from the worker's
  /// thread.
  class WorkerContext {
   public:
    /// Remaining allowance floor: budget - committed visits. A unit may
    /// explore up to Cap() visits; at >= Cap() it must stop and report
    /// exhausted = false. Returns 0 once the official result is fixed.
    uint64_t Cap() const;
    /// True once the official result is fixed (or a worker threw):
    /// abandon the current unit, its outcome no longer matters.
    bool Stopped() const;
    /// Counts a session replay into the pool's stats.
    void NoteReplay() { ++replays_; }
    /// This worker's index in [0, workers); at most one live thread per
    /// index, so per-worker session state can key on it.
    size_t worker() const { return worker_; }

   private:
    friend class ParallelSearchPool;
    WorkerContext(ParallelSearchPool* pool, size_t worker)
        : pool_(pool), worker_(worker) {}
    ParallelSearchPool* pool_;
    size_t worker_;
    size_t replays_ = 0;
  };

  /// Explores unit `unit` and returns its outcome, polling ctx.Cap() /
  /// ctx.Stopped() per visit. Runs concurrently on distinct units.
  using UnitRunner =
      std::function<SearchUnitOutcome(size_t unit, WorkerContext& ctx)>;

  /// The official (sequential-equivalent) reconciliation.
  struct Result {
    static constexpr size_t kNoUnit = static_cast<size_t>(-1);
    bool found = false;
    bool truncated = false;
    /// Units committed in full before the final one.
    size_t committed_units = 0;
    /// The unit holding the official YES (found) or the budget edge
    /// (truncated); kNoUnit when every unit committed.
    size_t final_unit = kNoUnit;
    /// Local-visit cutoff inside final_unit: found_at for a win, the
    /// unit's allowance for a truncation. Callers replay per-unit test
    /// events up to this cutoff to reconstruct sequential counters.
    uint64_t final_unit_cutoff = 0;
    /// Total visits the sequential search would report (budget + 1 on
    /// truncation, mirroring the post-increment budget check).
    uint64_t official_visits = 0;
  };

  ParallelSearchPool(size_t num_units, size_t num_threads, uint64_t budget);

  /// Runs all units to the official result. Rethrows the first exception
  /// any unit runner threw (after joining every worker), so bad_alloc
  /// containment behaves exactly like the sequential strategies.
  Result Run(const UnitRunner& run_unit);

  /// Worker slots actually used (min(threads, units), at least 1);
  /// callers size per-worker session state by this.
  size_t workers() const { return num_workers_; }

  const WorkStealStats& stats() const { return stats_; }

 private:
  void WorkerLoop(size_t worker, const UnitRunner& run_unit);
  /// Holding mu_: replays finished outcomes in unit order against the
  /// budget; finalizes on a win, a truncation, or the last unit.
  void AdvanceCommits();

  const size_t num_units_;
  const size_t num_workers_;
  const uint64_t budget_;

  std::atomic<size_t> next_unit_{0};
  std::atomic<uint64_t> committed_{0};
  std::atomic<bool> stopped_{false};

  std::mutex mu_;
  std::vector<SearchUnitOutcome> outcomes_;
  std::vector<char> done_;
  size_t commit_next_ = 0;
  bool finalized_ = false;
  Result result_;
  std::exception_ptr first_error_;

  std::vector<size_t> last_claimed_;        // per worker, for steal counting
  std::vector<uint64_t> worker_visits_;     // per worker, for waste accounting
  WorkStealStats stats_;
};

/// Sharded concurrent fingerprint set — the shared dedup table of the
/// parallel witness searches. Only definitive NO answers are inserted
/// (YES stops the search, kUnknown is never recorded), so a hit merely
/// suppresses a redundant oracle call and can never change an answer.
/// Keys are the same CanonicalFingerprint128 pairs the sequential
/// candidate dedup uses.
class ConcurrentFingerprintSet {
 public:
  using Key = std::pair<uint64_t, uint64_t>;

  bool Contains(const Key& k) const {
    const Shard& s = ShardOf(k);
    std::lock_guard<std::mutex> lock(s.mu);
    return s.set.count(k) != 0;
  }

  /// True when newly inserted.
  bool Insert(const Key& k) {
    Shard& s = ShardOf(k);
    std::lock_guard<std::mutex> lock(s.mu);
    return s.set.insert(k).second;
  }

  size_t size() const {
    size_t n = 0;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      n += s.set.size();
    }
    return n;
  }

 private:
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(k.first ^ (k.second * 0x9e3779b97f4a7c15ull));
    }
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_set<Key, KeyHash> set;
  };
  static constexpr size_t kShards = 16;
  /// Shard by high bits; the set's hash consumes the low ones.
  Shard& ShardOf(const Key& k) { return shards_[(k.first >> 60) & 15]; }
  const Shard& ShardOf(const Key& k) const {
    return shards_[(k.first >> 60) & 15];
  }
  std::array<Shard, kShards> shards_;
};

}  // namespace semacyc

#endif  // SEMACYC_CORE_WORKSTEAL_H_
