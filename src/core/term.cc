#include "core/term.h"

#include <atomic>
#include <cassert>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

namespace semacyc {
namespace {

/// Process-wide interning table for named terms (constants and variables).
/// Read-mostly: lookups of known symbols (the steady state of concurrent
/// Engine decisions, which re-intern pooled names like "s$3" constantly)
/// take a shared lock; only genuinely new symbols take the exclusive one.
class SymbolTable {
 public:
  static SymbolTable& Get() {
    static SymbolTable* table = new SymbolTable();
    return *table;
  }

  uint32_t Intern(TermKind kind, const std::string& name) {
    auto& map = maps_[static_cast<int>(kind)];
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      auto it = map.find(name);
      if (it != map.end()) return it->second;
    }
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = map.find(name);
    if (it != map.end()) return it->second;
    auto& names = names_[static_cast<int>(kind)];
    uint32_t id = static_cast<uint32_t>(names.size());
    names.push_back(name);
    map.emplace(name, id);
    return id;
  }

  const std::string& NameOf(TermKind kind, uint32_t index) {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto& names = names_[static_cast<int>(kind)];
    assert(index < names.size());
    return names[index];
  }

 private:
  std::shared_mutex mu_;
  std::unordered_map<std::string, uint32_t> maps_[3];
  /// Deque, not vector: NameOf hands out references that must survive
  /// concurrent Intern calls (Engine::Decide runs on shared state).
  std::deque<std::string> names_[3];
};

std::atomic<uint32_t> g_null_counter{0};

}  // namespace

Term Term::Make(TermKind kind, uint32_t index) {
  assert(index < (1u << 30));
  return Term((static_cast<uint32_t>(kind) << 30) | index);
}

Term Term::Constant(const std::string& name) {
  return Make(TermKind::kConstant,
              SymbolTable::Get().Intern(TermKind::kConstant, name));
}

Term Term::Variable(const std::string& name) {
  return Make(TermKind::kVariable,
              SymbolTable::Get().Intern(TermKind::kVariable, name));
}

Term Term::FreshNull() {
  return Make(TermKind::kNull, g_null_counter.fetch_add(1));
}

Term Term::NullAt(uint32_t index) { return Make(TermKind::kNull, index); }

bool Term::IsFrozenNull() const {
  return IsConstant() && name().rfind('@', 0) == 0;
}

const std::string& Term::name() const {
  assert(IsValid() && kind() != TermKind::kNull);
  return SymbolTable::Get().NameOf(kind(), index());
}

std::string Term::ToString() const {
  if (!IsValid()) return "<invalid>";
  switch (kind()) {
    case TermKind::kConstant:
    case TermKind::kVariable:
      return name();
    case TermKind::kNull:
      return "_:" + std::to_string(index());
  }
  return "<unreachable>";
}

}  // namespace semacyc
