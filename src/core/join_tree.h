#ifndef SEMACYC_CORE_JOIN_TREE_H_
#define SEMACYC_CORE_JOIN_TREE_H_

#include <optional>
#include <string>
#include <vector>

#include "core/atom.h"

namespace semacyc {

/// A join tree of a set of atoms (§2): nodes are the atoms themselves; for
/// every connecting term t, the nodes whose atom mentions t induce a
/// connected subtree.
///
/// Stored as a rooted forest over atom indices that has been linked into a
/// single tree (safe because distinct components share no connecting terms).
class JoinTree {
 public:
  JoinTree() = default;
  JoinTree(std::vector<Atom> atoms, std::vector<int> parent);

  const std::vector<Atom>& atoms() const { return atoms_; }
  const std::vector<int>& parent() const { return parent_; }
  const std::vector<std::vector<int>>& children() const { return children_; }
  int root() const { return root_; }
  size_t size() const { return atoms_.size(); }

  /// Nodes in a top-down (parent before child) order.
  std::vector<int> TopDownOrder() const;
  /// Nodes in a bottom-up (child before parent) order.
  std::vector<int> BottomUpOrder() const;

  /// Checks the running-intersection property for the given terms: for each
  /// term in `connecting`, the atoms mentioning it must induce a connected
  /// subtree. Returns false on any violation.
  bool Validate(const std::vector<Term>& connecting) const;
  /// Validates over every term occurring in the atoms.
  bool ValidateAllTerms() const;

  std::string ToString() const;

 private:
  std::vector<Atom> atoms_;
  std::vector<int> parent_;
  std::vector<std::vector<int>> children_;
  int root_ = -1;
};

/// Non-owning analogue of JoinTree over a caller-owned atom vector: nodes
/// reference the atoms in place, so building one per evaluation costs only
/// the integer parent/children arrays (eval/yannakakis builds a view per
/// call instead of copying every atom; see the GyoResult parent array).
///
/// The atom vector must outlive the view. Like JoinTreeFromForest, sibling
/// forest roots are chained under the first root (distinct components share
/// no connecting terms, so the running-intersection property is preserved).
class JoinTreeView {
 public:
  JoinTreeView() = default;
  /// `parent` is a GYO join forest over indices into `atoms` (same order).
  JoinTreeView(const std::vector<Atom>& atoms, std::vector<int> parent);

  const Atom& atom(int i) const { return (*atoms_)[static_cast<size_t>(i)]; }
  const std::vector<Atom>& atoms() const { return *atoms_; }
  const std::vector<int>& parent() const { return parent_; }
  const std::vector<std::vector<int>>& children() const { return children_; }
  int root() const { return root_; }
  size_t size() const { return parent_.size(); }

  /// Nodes in a top-down (parent before child) order.
  std::vector<int> TopDownOrder() const;
  /// Nodes in a bottom-up (child before parent) order.
  std::vector<int> BottomUpOrder() const;

  /// Running-intersection check over the given terms (see JoinTree).
  bool Validate(const std::vector<Term>& connecting) const;

 private:
  const std::vector<Atom>* atoms_ = nullptr;
  std::vector<int> parent_;
  std::vector<std::vector<int>> children_;
  int root_ = -1;
};

/// Re-roots `tree` at the node whose atom mentions the most distinct head
/// variables (ties keep the node closest to the current root — the current
/// root itself when it ties for best). A join tree is undirected, so any
/// rooting preserves the running-intersection property; the choice matters
/// for evaluation cost: Yannakakis' answer-assembly DP carries head
/// variables from wherever they occur up to the root, so a root far from
/// them materializes intermediates of size Θ(|D| · |answers-so-far|) —
/// quadratic on e.g. a path query whose one head variable sits at the far
/// end of the chain. Rooting at a head-covering atom keeps every carried
/// column local and the DP linear. Boolean queries (no head variables)
/// come back unchanged.
JoinTreeView RerootForHead(const JoinTreeView& tree,
                           const std::vector<Term>& head);

}  // namespace semacyc

#endif  // SEMACYC_CORE_JOIN_TREE_H_
