#include "core/query.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <unordered_set>

namespace semacyc {

Term Apply(const Substitution& sub, Term t) {
  auto it = sub.find(t);
  return it == sub.end() ? t : it->second;
}

Atom Apply(const Substitution& sub, const Atom& atom) {
  std::vector<Term> args;
  args.reserve(atom.arity());
  for (Term t : atom.args()) args.push_back(Apply(sub, t));
  return Atom(atom.predicate(), std::move(args));
}

std::vector<Atom> Apply(const Substitution& sub,
                        const std::vector<Atom>& atoms) {
  std::vector<Atom> out;
  out.reserve(atoms.size());
  for (const Atom& a : atoms) out.push_back(Apply(sub, a));
  return out;
}

ConjunctiveQuery::ConjunctiveQuery(std::vector<Term> head,
                                   std::vector<Atom> body)
    : head_(std::move(head)), body_(std::move(body)) {
  for ([[maybe_unused]] const Atom& a : body_) {
    assert(!a.MentionsKind(TermKind::kNull) && "query bodies contain no nulls");
  }
#ifndef NDEBUG
  for (Term h : head_) {
    if (h.IsConstant()) continue;  // constants allowed in heads for generality
    bool found = false;
    for (const Atom& a : body_) {
      if (a.Mentions(h)) {
        found = true;
        break;
      }
    }
    assert(found && "every head variable must occur in the body");
  }
#endif
}

std::vector<Term> ConjunctiveQuery::Variables() const {
  std::vector<Term> out;
  std::unordered_set<Term> seen;
  for (Term h : head_) {
    if (h.IsVariable() && seen.insert(h).second) out.push_back(h);
  }
  for (const Atom& a : body_) {
    for (Term t : a.args()) {
      if (t.IsVariable() && seen.insert(t).second) out.push_back(t);
    }
  }
  return out;
}

std::vector<Term> ConjunctiveQuery::FreeVariables() const {
  std::vector<Term> out;
  std::unordered_set<Term> seen;
  for (Term h : head_) {
    if (h.IsVariable() && seen.insert(h).second) out.push_back(h);
  }
  return out;
}

std::vector<Term> ConjunctiveQuery::ExistentialVariables() const {
  std::unordered_set<Term> free;
  for (Term h : head_) free.insert(h);
  std::vector<Term> out;
  std::unordered_set<Term> seen;
  for (const Atom& a : body_) {
    for (Term t : a.args()) {
      if (t.IsVariable() && !free.count(t) && seen.insert(t).second) {
        out.push_back(t);
      }
    }
  }
  return out;
}

std::vector<std::vector<int>> ConjunctiveQuery::ConnectedComponents() const {
  const int n = static_cast<int>(body_.size());
  std::vector<int> comp(n, -1);
  // Union-find over atom indices, joined through shared variables.
  std::vector<int> parent(n);
  for (int i = 0; i < n; ++i) parent[i] = i;
  std::function<int(int)> find = [&](int x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  std::unordered_map<Term, int> first_atom_with;
  for (int i = 0; i < n; ++i) {
    for (Term t : body_[i].args()) {
      if (!t.IsVariable()) continue;
      auto [it, inserted] = first_atom_with.emplace(t, i);
      if (!inserted) parent[find(i)] = find(it->second);
    }
  }
  std::unordered_map<int, int> root_to_comp;
  std::vector<std::vector<int>> out;
  for (int i = 0; i < n; ++i) {
    int r = find(i);
    auto [it, inserted] = root_to_comp.emplace(r, out.size());
    if (inserted) out.emplace_back();
    comp[i] = it->second;
    out[it->second].push_back(i);
  }
  return out;
}

ConjunctiveQuery ConjunctiveQuery::Substitute(const Substitution& sub) const {
  std::vector<Term> head;
  head.reserve(head_.size());
  for (Term h : head_) head.push_back(Apply(sub, h));
  return ConjunctiveQuery(std::move(head), Apply(sub, body_));
}

ConjunctiveQuery ConjunctiveQuery::RenameApart() const {
  Substitution sub;
  for (Term v : Variables()) sub[v] = FreshVariable();
  return Substitute(sub);
}

size_t ConjunctiveQuery::ApproxBytes() const {
  size_t bytes = sizeof(ConjunctiveQuery) + head_.size() * sizeof(Term);
  for (const Atom& a : body_) bytes += sizeof(Atom) + a.arity() * sizeof(Term);
  return bytes;
}

std::string ConjunctiveQuery::ToString() const {
  std::string out = "q(";
  for (size_t i = 0; i < head_.size(); ++i) {
    if (i > 0) out += ",";
    out += head_[i].ToString();
  }
  out += ") :- ";
  out += AtomsToString(body_);
  return out;
}

namespace {
std::atomic<uint64_t> g_fresh_var_counter{0};
std::atomic<uint64_t> g_fresh_const_counter{0};
}  // namespace

Term FreshVariable() {
  return Term::Variable("v$" + std::to_string(g_fresh_var_counter.fetch_add(1)));
}

FrozenQuery Freeze(const ConjunctiveQuery& q, TermKind freeze_kind) {
  FrozenQuery out;
  for (Term v : q.Variables()) {
    if (freeze_kind == TermKind::kConstant) {
      // Distinct canonical constants per freeze call: c(x) must be fresh so
      // that two frozen queries never share canonical constants.
      out.var_to_frozen[v] = Term::Constant(
          "@" + std::to_string(g_fresh_const_counter.fetch_add(1)) + ":" +
          v.name());
    } else {
      out.var_to_frozen[v] = Term::FreshNull();
    }
  }
  for (const Atom& a : q.body()) {
    out.instance.Insert(Apply(out.var_to_frozen, a));
  }
  out.frozen_head.reserve(q.head().size());
  for (Term h : q.head()) {
    out.frozen_head.push_back(Apply(out.var_to_frozen, h));
  }
  return out;
}

ConjunctiveQuery QueryFromAtoms(const std::vector<Atom>& atoms,
                                const std::vector<Term>& head_terms) {
  Substitution rename;
  auto var_of = [&rename](Term t) -> Term {
    if (t.IsConstant() && !t.IsFrozenNull()) return t;  // real constant
    auto it = rename.find(t);
    if (it != rename.end()) return it->second;
    Term v = FreshVariable();
    rename.emplace(t, v);
    return v;
  };
  std::vector<Atom> body;
  body.reserve(atoms.size());
  for (const Atom& a : atoms) {
    std::vector<Term> args;
    args.reserve(a.arity());
    for (Term t : a.args()) args.push_back(var_of(t));
    body.emplace_back(a.predicate(), std::move(args));
  }
  std::vector<Term> head;
  head.reserve(head_terms.size());
  for (Term t : head_terms) head.push_back(var_of(t));
  return ConjunctiveQuery(std::move(head), std::move(body));
}

ConjunctiveQuery QueryFromInstance(const Instance& instance,
                                   const std::vector<Term>& head_terms) {
  return QueryFromAtoms(instance.atoms(), head_terms);
}

UnionQuery::UnionQuery(std::vector<ConjunctiveQuery> disjuncts)
    : disjuncts_(std::move(disjuncts)) {
#ifndef NDEBUG
  for (size_t i = 1; i < disjuncts_.size(); ++i) {
    assert(disjuncts_[i].arity() == disjuncts_[0].arity());
  }
#endif
}

size_t UnionQuery::Height() const {
  size_t h = 0;
  for (const auto& q : disjuncts_) h = std::max(h, q.size());
  return h;
}

size_t UnionQuery::ApproxBytes() const {
  size_t bytes = sizeof(UnionQuery);
  for (const auto& q : disjuncts_) bytes += q.ApproxBytes();
  return bytes;
}

std::string UnionQuery::ToString() const {
  std::string out;
  for (size_t i = 0; i < disjuncts_.size(); ++i) {
    if (i > 0) out += "\n  UNION ";
    out += disjuncts_[i].ToString();
  }
  return out;
}

}  // namespace semacyc
