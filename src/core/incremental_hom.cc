#include "core/incremental_hom.h"

#include <cassert>

namespace semacyc {

constexpr uint32_t IncrementalHomomorphism::kNoDense;

IncrementalHomomorphism::IncrementalHomomorphism(const Instance& target)
    : target_(&target) {
  // Dense interning: one hash per distinct target term, once per session,
  // so the per-push tuple scans run on integer arrays only.
  const std::vector<Atom>& atoms = target.atoms();
  dense_tuples_.resize(atoms.size());
  for (size_t i = 0; i < atoms.size(); ++i) {
    std::vector<uint32_t>& tuple = dense_tuples_[i];
    tuple.reserve(atoms[i].arity());
    for (Term t : atoms[i].args()) {
      auto [it, inserted] =
          dense_of_.emplace(t, static_cast<uint32_t>(dense_terms_.size()));
      if (inserted) dense_terms_.push_back(t);
      tuple.push_back(it->second);
    }
  }
}

void IncrementalHomomorphism::Reset(const Substitution& fixed) {
  depth_ = 0;
  while (vars_in_use_ > 0) ReleaseVar(static_cast<uint32_t>(vars_in_use_ - 1));
  found_ = true;
  fixed_ = fixed;
  for (const auto& [src, dst] : fixed_) {
    VarState& v = vars_[InternVar(src)];
    v.is_fixed = true;
    v.fixed_term = dst;
    // A fixed image outside the target has an empty domain: any atom
    // mentioning the seed is then refuted by the scan, which is exact —
    // but the empty conjunction still maps, so found_ stays true here.
    auto it = dense_of_.find(dst);
    if (it == dense_of_.end()) continue;
    v.values.push_back(it->second);
    v.where[it->second] = 1;
    v.active = 1;
    v.bound = it->second;
  }
}

uint32_t IncrementalHomomorphism::InternVar(Term t) {
  uint32_t id = static_cast<uint32_t>(vars_in_use_++);
  if (id == vars_.size()) vars_.emplace_back();
  VarState& v = vars_[id];
  v.term = t;
  v.values.clear();
  // `where` stays all-zero between occupants (ReleaseVar clears only the
  // entries its values touched), so reuse is O(1).
  v.where.resize(dense_terms_.size(), 0);
  v.active = 0;
  v.bound = kNoDense;
  v.fixed_term = Term();
  v.is_fixed = false;
  var_index_.emplace(t, id);
  return id;
}

void IncrementalHomomorphism::ReleaseVar(uint32_t id) {
  assert(id + 1 == vars_in_use_);
  VarState& v = vars_[id];
  for (uint32_t d : v.values) v.where[d] = 0;
  var_index_.erase(v.term);
  --vars_in_use_;
}

void IncrementalHomomorphism::ShrinkDomain(uint32_t var_id, Level* level,
                                           const SlotScratch& slot) {
  VarState& v = vars_[var_id];
  level->trail.emplace_back(var_id, static_cast<uint32_t>(v.active));
  size_t i = 0;
  while (i < v.active) {
    uint32_t d = v.values[i];
    if (slot.stamp[d] == slot.epoch) {
      ++i;
      continue;
    }
    --v.active;
    if (i != v.active) {
      std::swap(v.values[i], v.values[v.active]);
      v.where[v.values[i]] = static_cast<uint32_t>(i) + 1;
      v.where[v.values[v.active]] = static_cast<uint32_t>(v.active) + 1;
    }
  }
}

bool IncrementalHomomorphism::Repair() {
  // Any homomorphism of the pushed atoms picks, for each level, a tuple
  // that was compatible when that level was pushed (its images lie in
  // every domain along the way — domains only shrink), so a DFS over the
  // cached per-level tuple lists is complete; it is sound because tuple
  // consistency is re-checked against the dense bindings directly.
  repair_binding_.assign(vars_in_use_, kNoDense);
  for (size_t id = 0; id < vars_in_use_; ++id) {
    if (vars_[id].is_fixed) repair_binding_[id] = vars_[id].bound;
  }
  repair_undo_.clear();
  // Most-constrained-first: levels with fewer compatible tuples bind their
  // variables first, so the DFS fails (or commits) early. Insertion sort —
  // depth is the candidate-atom bound, single digits.
  repair_order_.resize(depth_);
  for (size_t i = 0; i < depth_; ++i) repair_order_[i] = static_cast<uint32_t>(i);
  for (size_t i = 1; i < depth_; ++i) {
    uint32_t x = repair_order_[i];
    size_t j = i;
    while (j > 0 &&
           levels_[repair_order_[j - 1]].tuples.size() >
               levels_[x].tuples.size()) {
      repair_order_[j] = repair_order_[j - 1];
      --j;
    }
    repair_order_[j] = x;
  }
  if (!RepairDfs(0)) return false;
  // Adopt wholesale: every live variable occurs in some pushed atom (or is
  // a fixed seed), so the search bound them all. Overwritten bindings of
  // older variables stay valid after pops — a homomorphism restricted to
  // fewer atoms is still a homomorphism.
  for (size_t id = 0; id < vars_in_use_; ++id) {
    if (!vars_[id].is_fixed && repair_binding_[id] != kNoDense) {
      vars_[id].bound = repair_binding_[id];
    }
  }
  return true;
}

bool IncrementalHomomorphism::RepairDfs(size_t level_idx) {
  if (level_idx == depth_) return true;
  if (cancel_ != nullptr && cancel_->Poll()) {
    // Bail as if this subtree were empty; the caller discards the whole
    // outcome once the token has triggered, so the spurious NO is never
    // observed as an answer. The undo trail stays exact for later pops.
    return false;
  }
  const Level& level = levels_[repair_order_[level_idx]];
  for (uint32_t idx : level.tuples) {
    const std::vector<uint32_t>& tgt = dense_tuples_[idx];
    size_t undo_mark = repair_undo_.size();
    bool ok = true;
    for (size_t i = 0; i < tgt.size() && ok; ++i) {
      uint32_t var = level.pos_var[i];
      if (var == kNoDense) continue;  // ground: baked into the list
      uint32_t& bound = repair_binding_[var];
      if (bound == kNoDense) {
        if (!InDomain(vars_[var], tgt[i])) {
          ok = false;
          continue;
        }
        bound = tgt[i];
        repair_undo_.push_back(var);
      } else if (bound != tgt[i]) {
        ok = false;
      }
    }
    if (ok && RepairDfs(level_idx + 1)) return true;
    while (repair_undo_.size() > undo_mark) {
      repair_binding_[repair_undo_.back()] = kNoDense;
      repair_undo_.pop_back();
    }
  }
  return false;
}

bool IncrementalHomomorphism::PushAtom(const Atom& atom) {
  ++stats_.pushes;
  if (depth_ == levels_.size()) levels_.emplace_back();
  Level& level = levels_[depth_];
  level.trail.clear();
  level.fresh.clear();
  level.tuples.clear();
  level.saved_found = found_;
  level.dead_prefix = !found_;
  ++depth_;
  if (level.dead_prefix) {
    // Homomorphisms restrict: an unmappable prefix stays unmappable under
    // any extension, so the verdict is forced and free.
    ++stats_.dead_prefix;
    return false;
  }

  const size_t arity = atom.arity();

  // Slot assembly: one slot per distinct mappable term of the atom. Terms
  // already interned (earlier atoms or fixed seeds — fixed constants count)
  // are mappable; otherwise variables and nulls are, constants are ground.
  size_t num_slots = 0;
  slot_of_position_.assign(arity, -1);
  ground_dense_.assign(arity, kNoDense);
  level.pos_var.assign(arity, kNoDense);
  for (size_t i = 0; i < arity; ++i) {
    Term t = atom.arg(i);
    uint32_t var_id;
    bool interned_now = false;
    auto it = var_index_.find(t);
    if (it != var_index_.end()) {
      var_id = it->second;
    } else if (t.IsVariable() || t.IsNull()) {
      var_id = InternVar(t);
      interned_now = true;
    } else {
      // Ground: the position must carry exactly this term (a term outside
      // the target keeps the kNoDense sentinel and matches no tuple).
      auto dense = dense_of_.find(t);
      if (dense != dense_of_.end()) ground_dense_[i] = dense->second;
      continue;
    }
    int slot = -1;
    for (size_t s = 0; s < num_slots; ++s) {
      if (slots_[s].var == var_id) {
        slot = static_cast<int>(s);
        break;
      }
    }
    if (slot < 0) {
      if (num_slots == slots_.size()) slots_.emplace_back();
      SlotScratch& sl = slots_[num_slots];
      sl.var = var_id;
      sl.fresh = interned_now;
      sl.support_list.clear();
      sl.stamp.resize(dense_terms_.size(), 0);
      ++sl.epoch;
      slot = static_cast<int>(num_slots++);
      if (interned_now) level.fresh.push_back(var_id);
    }
    slot_of_position_[i] = slot;
    level.pos_var[i] = var_id;
  }

  // Probe selection: scan the smallest tuple set the index offers. A
  // ground position contributes its (predicate, position, term) bucket; a
  // position carrying a small-domain variable contributes the union of the
  // per-value buckets (disjoint, so no dedup) — complete either way, since
  // a compatible tuple's value at the position must be the ground term
  // resp. lie in the domain. Fallback: the whole per-predicate list.
  constexpr size_t kMaxProbeValues = 3;
  const std::vector<uint32_t>& pred_bucket =
      target_->AtomsOf(atom.predicate());
  size_t best_sum = pred_bucket.size();
  bool impossible = pred_bucket.empty();
  scan_buckets_.clear();
  if (!impossible) scan_buckets_.push_back(&pred_bucket);
  for (size_t i = 0; i < arity && !impossible; ++i) {
    int slot = slot_of_position_[i];
    size_t sum = 0;
    probe_buckets_.clear();
    if (slot < 0) {
      if (ground_dense_[i] == kNoDense) {
        impossible = true;  // a term outside the target matches nothing
        break;
      }
      const std::vector<uint32_t>* b =
          target_->FindCandidates(atom.predicate(), i, atom.arg(i));
      if (b != nullptr) {
        sum = b->size();
        probe_buckets_.push_back(b);
      }
    } else {
      const SlotScratch& sl = slots_[static_cast<size_t>(slot)];
      const VarState& v = vars_[sl.var];
      if (sl.fresh) continue;
      if (v.active > kMaxProbeValues) continue;
      for (size_t k = 0; k < v.active; ++k) {
        const std::vector<uint32_t>* b = target_->FindCandidates(
            atom.predicate(), i, dense_terms_[v.values[k]]);
        if (b == nullptr) continue;
        sum += b->size();
        probe_buckets_.push_back(b);
      }
    }
    if (sum == 0) {
      impossible = true;  // no tuple can satisfy this position
      break;
    }
    if (sum < best_sum) {
      best_sum = sum;
      scan_buckets_ = probe_buckets_;
    }
  }
  if (impossible) scan_buckets_.clear();

  // One scan over the candidate tuples does all three jobs: per-variable
  // support collection (forward checking), the compatibility existence
  // check, and the hunt for a tuple extending the current witness.
  bool any_compatible = false;
  bool have_extension = false;
  tuple_vals_.assign(num_slots, kNoDense);
  for (const std::vector<uint32_t>* bucket : scan_buckets_) {
    for (uint32_t idx : *bucket) {
      const std::vector<uint32_t>& tgt = dense_tuples_[idx];
      bool ok = true;
      for (size_t s = 0; s < num_slots; ++s) tuple_vals_[s] = kNoDense;
      for (size_t i = 0; i < arity && ok; ++i) {
        uint32_t d = tgt[i];
        int slot = slot_of_position_[i];
        if (slot < 0) {
          ok = ground_dense_[i] == d;
          continue;
        }
        uint32_t& tv = tuple_vals_[static_cast<size_t>(slot)];
        if (tv != kNoDense) {
          ok = tv == d;
          continue;
        }
        const SlotScratch& sl = slots_[static_cast<size_t>(slot)];
        if (!sl.fresh && !InDomain(vars_[sl.var], d)) {
          ok = false;
          continue;
        }
        tv = d;
      }
      if (!ok) continue;
      any_compatible = true;
      level.tuples.push_back(idx);
      for (size_t s = 0; s < num_slots; ++s) {
        SlotScratch& sl = slots_[s];
        if (sl.stamp[tuple_vals_[s]] != sl.epoch) {
          sl.stamp[tuple_vals_[s]] = sl.epoch;
          sl.support_list.push_back(tuple_vals_[s]);
        }
      }
      if (!have_extension) {
        bool matches_witness = true;
        for (size_t s = 0; s < num_slots && matches_witness; ++s) {
          uint32_t bound = vars_[slots_[s].var].bound;
          if (bound != kNoDense && bound != tuple_vals_[s]) {
            matches_witness = false;
          }
        }
        if (matches_witness) {
          have_extension = true;
          extend_vals_ = tuple_vals_;
        }
      }
    }
  }

  if (!any_compatible) {
    // Exact NO: domains over-approximate the image of every homomorphism
    // of the pushed atoms (induction over pushes), so an atom with no
    // domain-compatible tuple admits none.
    found_ = false;
    ++stats_.fc_rejects;
    return false;
  }

  // Domain updates: fresh variables are born with their support as domain;
  // existing domains shrink to their support (recorded on the trail). A
  // compatible tuple contributed one support value per slot, so no domain
  // empties here — the empty case surfaced as !any_compatible above.
  for (size_t s = 0; s < num_slots; ++s) {
    SlotScratch& sl = slots_[s];
    VarState& v = vars_[sl.var];
    if (sl.fresh) {
      v.values = sl.support_list;
      for (uint32_t k = 0; k < v.values.size(); ++k) {
        v.where[v.values[k]] = k + 1;
      }
      v.active = v.values.size();
    } else if (sl.support_list.size() != v.active) {
      // Support is a subset of the pre-push domain (membership was checked
      // during the scan), so equal sizes mean nothing shrank — skip the
      // sweep and the trail entry entirely.
      ShrinkDomain(sl.var, &level, sl);
    }
  }

  if (have_extension) {
    // The prefix witness extends: bind the atom's fresh variables to the
    // extension tuple's values and the combined mapping is a homomorphism
    // of all pushed atoms.
    for (size_t s = 0; s < num_slots; ++s) {
      VarState& v = vars_[slots_[s].var];
      if (v.bound == kNoDense) v.bound = extend_vals_[s];
    }
    ++stats_.extends;
    return true;
  }

  ++stats_.repairs;
  if (Repair()) return true;
  ++stats_.repair_fails;
  found_ = false;
  return false;
}

void IncrementalHomomorphism::PopAtom() {
  assert(depth_ > 0);
  Level& level = levels_[--depth_];
  found_ = level.saved_found;
  if (level.dead_prefix) return;
  for (size_t i = level.trail.size(); i-- > 0;) {
    vars_[level.trail[i].first].active = level.trail[i].second;
  }
  // Fresh variables die with their introducing atom; they sit on top of
  // the variable stack in interning order, so reverse release unwinds it.
  for (size_t i = level.fresh.size(); i-- > 0;) ReleaseVar(level.fresh[i]);
}

Substitution IncrementalHomomorphism::Witness() const {
  Substitution out;
  for (size_t id = 0; id < vars_in_use_; ++id) {
    const VarState& v = vars_[id];
    if (v.is_fixed) {
      out.emplace(v.term, v.fixed_term);
    } else if (v.bound != kNoDense) {
      out.emplace(v.term, dense_terms_[v.bound]);
    }
  }
  return out;
}

}  // namespace semacyc
