#ifndef SEMACYC_CORE_CANONICAL_H_
#define SEMACYC_CORE_CANONICAL_H_

#include <string>

#include "core/query.h"

namespace semacyc {

/// Exact isomorphism test between two CQs: a bijective variable renaming
/// mapping head position-wise and body onto body. Used to deduplicate
/// rewriting frontiers and witness candidates.
bool AreIsomorphic(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

/// A cheap structural fingerprint that is invariant under variable renaming
/// (isomorphic queries get equal keys; unequal keys imply non-isomorphic).
/// Collisions are resolved with AreIsomorphic.
std::string StructuralKey(const ConjunctiveQuery& q);

}  // namespace semacyc

#endif  // SEMACYC_CORE_CANONICAL_H_
