#ifndef SEMACYC_CORE_CANONICAL_H_
#define SEMACYC_CORE_CANONICAL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "core/query.h"

namespace semacyc {

/// Exact isomorphism test between two CQs: a bijective variable renaming
/// mapping head position-wise and body onto body. Used to deduplicate
/// rewriting frontiers and witness candidates.
bool AreIsomorphic(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

/// The witnessing variable bijection of AreIsomorphic: a substitution σ
/// with σ(q1) = q2 (head position-wise, body onto body), or std::nullopt
/// when the queries are not isomorphic. The chase memo's iso-resolution
/// rename layer transports cached per-variable state through σ.
std::optional<Substitution> FindIsomorphism(const ConjunctiveQuery& q1,
                                            const ConjunctiveQuery& q2);

/// A hash-interned canonical form: a 64-bit fingerprint of the same
/// renaming/reordering-invariant that StructuralKey encodes (isomorphic
/// queries get equal fingerprints; unequal fingerprints imply
/// non-isomorphic). The hot-path replacement for StructuralKey — no
/// string building, no allocation beyond small scratch vectors. Exact
/// stores resolve fingerprint collisions with AreIsomorphic; pure-hash
/// dedup should combine two fingerprints with different `salt`s (the
/// salt perturbs every leaf of the hash, so the two values collide
/// independently — a 128-bit key whose conflation probability is
/// negligible against the invariant-level conflation StructuralKey
/// dedup already accepted).
uint64_t CanonicalFingerprint(const ConjunctiveQuery& q, uint64_t salt = 0);

/// A 128-bit key computed in one walk of the query (for pure-hash dedup
/// stores): the first component equals CanonicalFingerprint(q); the
/// second is an independent salted chain over the same invariant (its
/// fold order follows the combined sort, so it is its own invariant, not
/// literally CanonicalFingerprint(q, salt)).
inline constexpr uint64_t kSecondFingerprintSalt = 0x9e3779b97f4a7c15ull;
std::pair<uint64_t, uint64_t> CanonicalFingerprint128(
    const ConjunctiveQuery& q);

/// The string form of the same invariant (seed implementation). Kept for
/// the legacy candidate pipeline that benches measure against and as a
/// readable debugging rendition; new code should use CanonicalFingerprint.
std::string StructuralKey(const ConjunctiveQuery& q);

}  // namespace semacyc

#endif  // SEMACYC_CORE_CANONICAL_H_
