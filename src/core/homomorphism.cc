#include "core/homomorphism.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace semacyc {
namespace {

/// Is `t` a mappable term under the given options?
bool Mappable(Term t, const HomOptions& options) {
  if (t.IsVariable()) return true;
  if (t.IsNull()) return options.map_nulls;
  return false;
}

class Searcher {
 public:
  Searcher(const std::vector<Atom>& from, const Instance& to,
           const HomOptions& options)
      : from_(from), to_(to), options_(options) {}

  HomResult Run() {
    HomResult result;
    // Seed the binding with the fixed substitution.
    for (const auto& [src, dst] : options_.fixed) {
      binding_[src] = dst;
      if (options_.injective) ++used_targets_[dst];
    }
    order_ = OrderAtoms();
    Extend(0, &result);
    result.found = !result.solutions.empty();
    result.budget_exhausted = budget_exhausted_;
    return result;
  }

 private:
  /// Most-constrained-first ordering: repeatedly pick the atom with the
  /// most already-bound terms; tie-break on the smaller per-predicate
  /// candidate list. Keeps the search connected whenever possible.
  std::vector<int> OrderAtoms() {
    const int n = static_cast<int>(from_.size());
    std::vector<int> order;
    order.reserve(n);
    std::vector<bool> placed(n, false);
    std::unordered_set<Term> bound;
    for (const auto& [src, _] : options_.fixed) bound.insert(src);
    for (int step = 0; step < n; ++step) {
      int best = -1;
      long best_score = -1;
      for (int i = 0; i < n; ++i) {
        if (placed[i]) continue;
        long bound_terms = 0;
        for (Term t : from_[i].args()) {
          if (!Mappable(t, options_) || bound.count(t)) ++bound_terms;
        }
        long candidates =
            static_cast<long>(to_.AtomsOf(from_[i].predicate()).size());
        // Higher bound_terms first; then fewer candidates.
        long score = bound_terms * 1000000 - candidates;
        if (best == -1 || score > best_score) {
          best = i;
          best_score = score;
        }
      }
      placed[best] = true;
      order.push_back(best);
      for (Term t : from_[best].args()) {
        if (Mappable(t, options_)) bound.insert(t);
      }
    }
    return order;
  }

  /// Candidate target atoms for `atom` given the current binding.
  const std::vector<uint32_t>* Candidates(const Atom& atom,
                                          std::vector<uint32_t>* scratch) {
    // Pick the bound position with the smallest index bucket.
    const std::vector<uint32_t>* best = nullptr;
    for (size_t pos = 0; pos < atom.arity(); ++pos) {
      Term t = atom.arg(pos);
      Term image;
      if (!Mappable(t, options_)) {
        image = t;
      } else {
        auto it = binding_.find(t);
        if (it == binding_.end()) continue;
        image = it->second;
      }
      const std::vector<uint32_t>* bucket =
          to_.FindCandidates(atom.predicate(), pos, image);
      if (bucket == nullptr) {
        scratch->clear();
        return scratch;  // empty: no candidates at all
      }
      if (best == nullptr || bucket->size() < best->size()) best = bucket;
    }
    if (best != nullptr) return best;
    return &to_.AtomsOf(atom.predicate());
  }

  bool Extend(size_t depth, HomResult* result) {
    if (options_.step_budget > 0 && steps_ >= options_.step_budget) {
      budget_exhausted_ = true;
      return true;  // stop the whole search
    }
    if (options_.cancel != nullptr && options_.cancel->Poll()) {
      budget_exhausted_ = true;  // a fired token truncates like a budget
      return true;
    }
    ++steps_;
    if (depth == order_.size()) {
      result->solutions.push_back(binding_);
      return options_.max_solutions > 0 &&
             result->solutions.size() >= options_.max_solutions;
    }
    const Atom& atom = from_[order_[depth]];
    std::vector<uint32_t> scratch;
    const std::vector<uint32_t>* candidates = Candidates(atom, &scratch);
    for (uint32_t idx : *candidates) {
      const Atom& target = to_.atom(idx);
      if (target.predicate() != atom.predicate()) continue;
      // Try to unify argument-wise.
      std::vector<Term> newly_bound;
      bool ok = true;
      for (size_t pos = 0; pos < atom.arity() && ok; ++pos) {
        Term s = atom.arg(pos);
        Term d = target.arg(pos);
        if (!Mappable(s, options_)) {
          auto fx = binding_.find(s);
          Term expect = fx == binding_.end() ? s : fx->second;
          if (expect != d) ok = false;
          continue;
        }
        auto it = binding_.find(s);
        if (it != binding_.end()) {
          if (it->second != d) ok = false;
          continue;
        }
        if (options_.injective) {
          auto used = used_targets_.find(d);
          if (used != used_targets_.end() && used->second > 0) {
            ok = false;
            continue;
          }
          ++used_targets_[d];
        }
        binding_.emplace(s, d);
        newly_bound.push_back(s);
      }
      if (ok && Extend(depth + 1, result)) return true;
      for (Term s : newly_bound) {
        if (options_.injective) --used_targets_[binding_[s]];
        binding_.erase(s);
      }
    }
    return false;
  }

  const std::vector<Atom>& from_;
  const Instance& to_;
  const HomOptions& options_;
  std::vector<int> order_;
  Substitution binding_;
  std::unordered_map<Term, int, TermHash> used_targets_;
  size_t steps_ = 0;
  bool budget_exhausted_ = false;
};

}  // namespace

HomResult FindHomomorphisms(const std::vector<Atom>& from, const Instance& to,
                            const HomOptions& options) {
  Searcher searcher(from, to, options);
  return searcher.Run();
}

std::optional<Substitution> FindHomomorphism(const std::vector<Atom>& from,
                                             const Instance& to,
                                             const Substitution& fixed) {
  HomOptions options;
  options.fixed = fixed;
  HomResult result = FindHomomorphisms(from, to, options);
  if (!result.found) return std::nullopt;
  return result.solutions.front();
}

bool HasHomomorphism(const std::vector<Atom>& from, const Instance& to,
                     const Substitution& fixed) {
  return FindHomomorphism(from, to, fixed).has_value();
}

std::vector<std::vector<Term>> EvaluateQuery(const ConjunctiveQuery& q,
                                             const Instance& instance,
                                             size_t max_answers) {
  HomOptions options;
  options.max_solutions = 0;  // all
  HomResult result = FindHomomorphisms(q.body(), instance, options);
  std::vector<std::vector<Term>> answers;
  std::unordered_set<std::string> seen;  // dedup via printable key
  for (const Substitution& h : result.solutions) {
    std::vector<Term> tuple;
    tuple.reserve(q.head().size());
    std::string key;
    for (Term x : q.head()) {
      Term v = Apply(h, x);
      tuple.push_back(v);
      key += std::to_string(v.raw_bits()) + ",";
    }
    if (seen.insert(key).second) {
      answers.push_back(std::move(tuple));
      if (max_answers > 0 && answers.size() >= max_answers) break;
    }
  }
  return answers;
}

bool EvaluatesTo(const ConjunctiveQuery& q, const Instance& instance,
                 const std::vector<Term>& tuple, CancelToken* cancel) {
  assert(tuple.size() == q.head().size());
  Substitution fixed;
  for (size_t i = 0; i < tuple.size(); ++i) {
    Term h = q.head()[i];
    if (!h.IsVariable()) {
      if (h != tuple[i]) return false;
      continue;
    }
    auto it = fixed.find(h);
    if (it != fixed.end()) {
      if (it->second != tuple[i]) return false;
    } else {
      fixed.emplace(h, tuple[i]);
    }
  }
  HomOptions options;
  options.fixed = std::move(fixed);
  options.cancel = cancel;
  return FindHomomorphisms(q.body(), instance, options).found;
}

bool EvaluatesTrue(const ConjunctiveQuery& q, const Instance& instance) {
  return HasHomomorphism(q.body(), instance);
}

bool HomomorphicallyEquivalent(const Instance& a, const Instance& b) {
  return HasHomomorphism(a.atoms(), b) && HasHomomorphism(b.atoms(), a);
}

}  // namespace semacyc
