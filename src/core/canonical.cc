#include "core/canonical.h"

#include <algorithm>
#include <array>
#include <map>
#include <unordered_map>

#include "core/homomorphism.h"

namespace semacyc {

std::optional<Substitution> FindIsomorphism(const ConjunctiveQuery& q1,
                                            const ConjunctiveQuery& q2) {
  if (q1.arity() != q2.arity()) return std::nullopt;
  if (q1.body().size() != q2.body().size()) return std::nullopt;
  if (q1.Variables().size() != q2.Variables().size()) return std::nullopt;

  // Head correspondence must be position-wise; constants must agree.
  Substitution fixed;
  for (size_t i = 0; i < q1.head().size(); ++i) {
    Term a = q1.head()[i];
    Term b = q2.head()[i];
    if (a.IsVariable() != b.IsVariable()) return std::nullopt;
    if (!a.IsVariable()) {
      if (a != b) return std::nullopt;
      continue;
    }
    auto it = fixed.find(a);
    if (it != fixed.end()) {
      if (it->second != b) return std::nullopt;
    } else {
      fixed.emplace(a, b);
    }
  }

  Instance target;
  target.InsertAll(q2.body());
  HomOptions options;
  options.fixed = std::move(fixed);
  options.injective = true;
  HomResult result = FindHomomorphisms(q1.body(), target, options);
  if (!result.found) return std::nullopt;
  // Injective on terms + equal atom counts: check the atom map is onto.
  Substitution h = std::move(result.solutions.front());
  std::unordered_set<Atom, AtomHash> image;
  for (const Atom& a : q1.body()) image.insert(Apply(h, a));
  if (image.size() != q2.body().size()) return std::nullopt;
  return h;
}

bool AreIsomorphic(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  return FindIsomorphism(q1, q2).has_value();
}

namespace {

/// splitmix64 avalanche step, the mixing primitive for all fingerprints.
uint64_t Mix(uint64_t h, uint64_t x) {
  x += 0x9e3779b97f4a7c15ull + h;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

}  // namespace

namespace {

/// The same invariant as StructuralKey, hash-mixed instead of
/// string-built: per-variable occurrence signatures (sorted (pred, pos)
/// multiset plus head position), folded into per-atom hashes over the
/// intra-atom equality pattern, combined order-independently by sorting.
/// N independent salted chains are computed in one walk; each salt
/// perturbs every leaf, so the chains collide independently.
template <size_t N>
std::array<uint64_t, N> FingerprintChains(
    const ConjunctiveQuery& q, const std::array<uint64_t, N>& salts) {
  std::unordered_map<Term, int> head_pos;
  for (size_t i = 0; i < q.head().size(); ++i) {
    head_pos.emplace(q.head()[i], static_cast<int>(i));
  }
  std::unordered_map<Term, std::vector<std::pair<uint32_t, int>>> occ;
  for (const Atom& a : q.body()) {
    for (size_t pos = 0; pos < a.arity(); ++pos) {
      Term t = a.arg(pos);
      if (t.IsVariable()) {
        occ[t].push_back({a.predicate().id(), static_cast<int>(pos)});
      }
    }
  }
  std::unordered_map<Term, std::array<uint64_t, N>> var_sig;
  var_sig.reserve(occ.size());
  for (auto& [v, list] : occ) {
    std::sort(list.begin(), list.end());
    std::array<uint64_t, N> s;
    for (size_t n = 0; n < N; ++n) {
      s[n] = Mix(0x53454d4143594331ull, salts[n]);  // salted domain tag
    }
    for (auto& [p, i] : list) {
      for (size_t n = 0; n < N; ++n) {
        s[n] = Mix(s[n], p);
        s[n] = Mix(s[n], static_cast<uint64_t>(i));
      }
    }
    auto it = head_pos.find(v);
    uint64_t hp =
        it == head_pos.end() ? ~0ull : static_cast<uint64_t>(it->second);
    for (size_t n = 0; n < N; ++n) s[n] = Mix(s[n], hp);
    var_sig[v] = s;
  }
  std::vector<std::array<uint64_t, N>> atom_keys;
  atom_keys.reserve(q.body().size());
  for (const Atom& a : q.body()) {
    std::array<uint64_t, N> s;
    for (size_t n = 0; n < N; ++n) s[n] = Mix(salts[n], a.predicate().id());
    for (size_t pos = 0; pos < a.arity(); ++pos) {
      Term t = a.arg(pos);
      if (t.IsConstant()) {
        for (size_t n = 0; n < N; ++n) {
          s[n] = Mix(s[n], 0xc0ull);
          s[n] = Mix(s[n], t.raw_bits());
        }
      } else {
        size_t first = pos;
        for (size_t k = 0; k < pos; ++k) {
          if (a.arg(k) == t) {
            first = k;
            break;
          }
        }
        const std::array<uint64_t, N>& sig = var_sig[t];
        for (size_t n = 0; n < N; ++n) {
          s[n] = Mix(s[n], static_cast<uint64_t>(first));
          s[n] = Mix(s[n], sig[n]);
        }
      }
    }
    atom_keys.push_back(s);
  }
  std::sort(atom_keys.begin(), atom_keys.end());
  std::array<uint64_t, N> key;
  for (size_t n = 0; n < N; ++n) key[n] = Mix(salts[n], q.arity());
  for (const auto& s : atom_keys) {
    for (size_t n = 0; n < N; ++n) key[n] = Mix(key[n], s[n]);
  }
  return key;
}

}  // namespace

uint64_t CanonicalFingerprint(const ConjunctiveQuery& q, uint64_t salt) {
  return FingerprintChains<1>(q, {salt})[0];
}

std::pair<uint64_t, uint64_t> CanonicalFingerprint128(
    const ConjunctiveQuery& q) {
  std::array<uint64_t, 2> key =
      FingerprintChains<2>(q, {0, kSecondFingerprintSalt});
  return {key[0], key[1]};
}

std::string StructuralKey(const ConjunctiveQuery& q) {
  // Atom shapes: predicate plus the intra-atom equality pattern plus which
  // positions are constants / head variables.
  std::unordered_map<Term, int> head_pos;
  for (size_t i = 0; i < q.head().size(); ++i) {
    head_pos.emplace(q.head()[i], static_cast<int>(i));
  }
  // Per-variable occurrence multiset: (pred id, position) sorted.
  std::unordered_map<Term, std::vector<std::pair<uint32_t, int>>> occ;
  for (const Atom& a : q.body()) {
    for (size_t pos = 0; pos < a.arity(); ++pos) {
      Term t = a.arg(pos);
      if (t.IsVariable()) {
        occ[t].push_back({a.predicate().id(), static_cast<int>(pos)});
      }
    }
  }
  std::unordered_map<Term, std::string> var_sig;
  for (auto& [v, list] : occ) {
    std::sort(list.begin(), list.end());
    std::string s;
    for (auto& [p, i] : list) {
      s += std::to_string(p) + ":" + std::to_string(i) + ";";
    }
    auto it = head_pos.find(v);
    s += it == head_pos.end() ? "E" : ("H" + std::to_string(it->second));
    var_sig[v] = s;
  }
  std::vector<std::string> atom_keys;
  for (const Atom& a : q.body()) {
    std::string s = std::to_string(a.predicate().id()) + "(";
    // Intra-atom equality pattern + variable signatures.
    for (size_t pos = 0; pos < a.arity(); ++pos) {
      Term t = a.arg(pos);
      if (t.IsConstant()) {
        s += "c" + std::to_string(t.raw_bits());
      } else {
        size_t first = pos;
        for (size_t k = 0; k < pos; ++k) {
          if (a.arg(k) == t) {
            first = k;
            break;
          }
        }
        s += "v" + std::to_string(first) + "[" + var_sig[t] + "]";
      }
      s += ",";
    }
    s += ")";
    atom_keys.push_back(std::move(s));
  }
  std::sort(atom_keys.begin(), atom_keys.end());
  std::string key = "A" + std::to_string(q.arity()) + "|";
  for (const std::string& s : atom_keys) key += s + "&";
  return key;
}

}  // namespace semacyc
