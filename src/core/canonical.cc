#include "core/canonical.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "core/homomorphism.h"

namespace semacyc {

bool AreIsomorphic(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  if (q1.arity() != q2.arity()) return false;
  if (q1.body().size() != q2.body().size()) return false;
  if (q1.Variables().size() != q2.Variables().size()) return false;

  // Head correspondence must be position-wise; constants must agree.
  Substitution fixed;
  for (size_t i = 0; i < q1.head().size(); ++i) {
    Term a = q1.head()[i];
    Term b = q2.head()[i];
    if (a.IsVariable() != b.IsVariable()) return false;
    if (!a.IsVariable()) {
      if (a != b) return false;
      continue;
    }
    auto it = fixed.find(a);
    if (it != fixed.end()) {
      if (it->second != b) return false;
    } else {
      fixed.emplace(a, b);
    }
  }

  Instance target;
  target.InsertAll(q2.body());
  HomOptions options;
  options.fixed = std::move(fixed);
  options.injective = true;
  HomResult result = FindHomomorphisms(q1.body(), target, options);
  if (!result.found) return false;
  // Injective on terms + equal atom counts: check the atom map is onto.
  const Substitution& h = result.solutions.front();
  std::unordered_set<Atom, AtomHash> image;
  for (const Atom& a : q1.body()) image.insert(Apply(h, a));
  return image.size() == q2.body().size();
}

std::string StructuralKey(const ConjunctiveQuery& q) {
  // Atom shapes: predicate plus the intra-atom equality pattern plus which
  // positions are constants / head variables.
  std::unordered_map<Term, int> head_pos;
  for (size_t i = 0; i < q.head().size(); ++i) {
    head_pos.emplace(q.head()[i], static_cast<int>(i));
  }
  // Per-variable occurrence multiset: (pred id, position) sorted.
  std::unordered_map<Term, std::vector<std::pair<uint32_t, int>>> occ;
  for (const Atom& a : q.body()) {
    for (size_t pos = 0; pos < a.arity(); ++pos) {
      Term t = a.arg(pos);
      if (t.IsVariable()) {
        occ[t].push_back({a.predicate().id(), static_cast<int>(pos)});
      }
    }
  }
  std::unordered_map<Term, std::string> var_sig;
  for (auto& [v, list] : occ) {
    std::sort(list.begin(), list.end());
    std::string s;
    for (auto& [p, i] : list) {
      s += std::to_string(p) + ":" + std::to_string(i) + ";";
    }
    auto it = head_pos.find(v);
    s += it == head_pos.end() ? "E" : ("H" + std::to_string(it->second));
    var_sig[v] = s;
  }
  std::vector<std::string> atom_keys;
  for (const Atom& a : q.body()) {
    std::string s = std::to_string(a.predicate().id()) + "(";
    // Intra-atom equality pattern + variable signatures.
    for (size_t pos = 0; pos < a.arity(); ++pos) {
      Term t = a.arg(pos);
      if (t.IsConstant()) {
        s += "c" + std::to_string(t.raw_bits());
      } else {
        size_t first = pos;
        for (size_t k = 0; k < pos; ++k) {
          if (a.arg(k) == t) {
            first = k;
            break;
          }
        }
        s += "v" + std::to_string(first) + "[" + var_sig[t] + "]";
      }
      s += ",";
    }
    s += ")";
    atom_keys.push_back(std::move(s));
  }
  std::sort(atom_keys.begin(), atom_keys.end());
  std::string key = "A" + std::to_string(q.arity()) + "|";
  for (const std::string& s : atom_keys) key += s + "&";
  return key;
}

}  // namespace semacyc
