#ifndef SEMACYC_CORE_INSTANCE_H_
#define SEMACYC_CORE_INSTANCE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/atom.h"

namespace semacyc {

/// A (finite) instance: a duplicate-free bag of ground atoms over constants
/// and nulls (variables are permitted too so that frozen queries can be
/// manipulated uniformly; see QueryChase).
///
/// The instance maintains two access paths used throughout the library:
///   * per-predicate atom lists (`AtomsOf`), and
///   * a (predicate, position, term) inverted index (`FindCandidates`)
///     feeding the homomorphism solver and the chase trigger scan.
///
/// Atoms are append-only except for `ReplaceTerm`, which the egd chase uses
/// to merge terms; that operation rebuilds the affected indexes.
class Instance {
 public:
  Instance() = default;

  /// Inserts an atom; returns true iff it was not already present.
  bool Insert(const Atom& atom);
  /// Inserts every atom of `atoms` (reserves for the batch up front).
  void InsertAll(const std::vector<Atom>& atoms);

  /// Pre-sizes the atom vector and the dedup set for `n` additional atoms
  /// so bulk loads (million-tuple instances; see src/data/) don't rehash
  /// and reallocate repeatedly. The per-position inverted index cannot be
  /// pre-sized (its key space is data-dependent) and grows as usual.
  void Reserve(size_t n);

  bool Contains(const Atom& atom) const;
  size_t size() const { return atoms_.size(); }
  bool empty() const { return atoms_.empty(); }

  /// All atoms, in insertion order. Indices into this vector are stable
  /// (ReplaceTerm mutates atoms in place).
  const std::vector<Atom>& atoms() const { return atoms_; }
  const Atom& atom(size_t i) const { return atoms_[i]; }

  /// Indices of the atoms with the given predicate.
  const std::vector<uint32_t>& AtomsOf(Predicate pred) const;

  /// Indices of atoms with `pred` whose argument at `position` is `t`.
  /// Returns nullptr when no such atom exists.
  const std::vector<uint32_t>* FindCandidates(Predicate pred, size_t position,
                                              Term t) const;

  /// The set of distinct predicates occurring in the instance.
  std::vector<Predicate> Predicates() const;

  /// The active domain: every term occurring in some atom.
  std::vector<Term> ActiveDomain() const;

  /// Indices of all atoms mentioning term `t`.
  std::vector<uint32_t> AtomsMentioning(Term t) const;

  /// Replaces every occurrence of `from` by `to`, deduplicating collapsed
  /// atoms. Used by the egd chase. Returns the number of atoms changed.
  size_t ReplaceTerm(Term from, Term to);

  /// Restricts the instance to the atoms whose indices are listed.
  Instance Restrict(const std::vector<uint32_t>& atom_indices) const;

  /// Approximate heap footprint (cache byte accounting): atom payload plus
  /// an estimate for the three indexes, which hold one entry per atom
  /// occurrence. Deterministic, O(|atoms|).
  size_t ApproxBytes() const;

  std::string ToString() const;

  friend bool operator==(const Instance& a, const Instance& b);

 private:
  void IndexAtom(uint32_t idx);

  std::vector<Atom> atoms_;
  std::unordered_set<Atom, AtomHash> atom_set_;
  std::unordered_map<uint32_t, std::vector<uint32_t>> by_predicate_;

  struct PosKey {
    uint32_t pred;
    uint32_t position;
    Term term;
    bool operator==(const PosKey& o) const {
      return pred == o.pred && position == o.position && term == o.term;
    }
  };
  struct PosKeyHash {
    size_t operator()(const PosKey& k) const {
      size_t seed = std::hash<uint32_t>{}(k.pred);
      HashCombine(&seed, std::hash<uint32_t>{}(k.position));
      HashCombine(&seed, TermHash{}(k.term));
      return seed;
    }
  };
  std::unordered_map<PosKey, std::vector<uint32_t>, PosKeyHash> by_position_;
};

}  // namespace semacyc

#endif  // SEMACYC_CORE_INSTANCE_H_
