#include "core/parser.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace semacyc {

void Lexer::SkipWhitespaceAndComments() {
  while (pos_ < text_.size()) {
    char c = text_[pos_];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos_;
    } else if (c == '%') {
      while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
    } else {
      break;
    }
  }
}

Token Lexer::Peek() {
  if (!lookahead_.has_value()) lookahead_ = Next();
  return *lookahead_;
}

Token Lexer::Next() {
  if (lookahead_.has_value()) {
    Token t = *lookahead_;
    lookahead_.reset();
    return t;
  }
  SkipWhitespaceAndComments();
  Token token;
  token.position = pos_;
  if (pos_ >= text_.size()) {
    token.kind = Token::kEnd;
    return token;
  }
  char c = text_[pos_];
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    token.kind = Token::kIdent;
    token.text = std::string(text_.substr(start, pos_ - start));
    return token;
  }
  if (std::isdigit(static_cast<unsigned char>(c))) {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    token.kind = Token::kConstant;
    token.text = std::string(text_.substr(start, pos_ - start));
    return token;
  }
  if (c == '\'' || c == '"') {
    char quote = c;
    size_t start = ++pos_;
    while (pos_ < text_.size() && text_[pos_] != quote) ++pos_;
    if (pos_ >= text_.size()) {
      token.kind = Token::kError;
      token.text = "unterminated quoted constant";
      return token;
    }
    token.kind = Token::kConstant;
    token.text = std::string(text_.substr(start, pos_ - start));
    ++pos_;  // consume closing quote
    return token;
  }
  switch (c) {
    case '(':
      ++pos_;
      token.kind = Token::kLParen;
      return token;
    case ')':
      ++pos_;
      token.kind = Token::kRParen;
      return token;
    case ',':
      ++pos_;
      token.kind = Token::kComma;
      return token;
    case '.':
      ++pos_;
      token.kind = Token::kDot;
      return token;
    case '=':
      ++pos_;
      token.kind = Token::kEquals;
      return token;
    case '-':
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
        pos_ += 2;
        token.kind = Token::kArrow;
        return token;
      }
      break;
    case ':':
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '-') {
        pos_ += 2;
        token.kind = Token::kTurnstile;
        return token;
      }
      break;
    default:
      break;
  }
  token.kind = Token::kError;
  token.text = std::string("unexpected character '") + c + "'";
  return token;
}

namespace {

struct TermParse {
  std::optional<Term> term;
  std::string error;
};

TermParse ParseTermToken(const Token& token) {
  TermParse out;
  switch (token.kind) {
    case Token::kIdent:
      out.term = Term::Variable(token.text);
      return out;
    case Token::kConstant:
      out.term = Term::Constant(token.text);
      return out;
    default:
      out.error = "expected term at position " + std::to_string(token.position);
      return out;
  }
}

/// Parses "Pred(term, ..., term)". The predicate arity is inferred.
std::optional<Atom> ParseOneAtom(Lexer* lexer, std::string* error) {
  Token name = lexer->Next();
  if (name.kind != Token::kIdent) {
    *error = "expected predicate name at position " +
             std::to_string(name.position);
    return std::nullopt;
  }
  if (lexer->Next().kind != Token::kLParen) {
    *error = "expected '(' after predicate " + name.text;
    return std::nullopt;
  }
  std::vector<Term> args;
  if (lexer->Peek().kind == Token::kRParen) {
    lexer->Next();
  } else {
    while (true) {
      TermParse tp = ParseTermToken(lexer->Next());
      if (!tp.term.has_value()) {
        *error = tp.error;
        return std::nullopt;
      }
      args.push_back(*tp.term);
      Token sep = lexer->Next();
      if (sep.kind == Token::kComma) continue;
      if (sep.kind == Token::kRParen) break;
      *error = "expected ',' or ')' in atom " + name.text;
      return std::nullopt;
    }
  }
  // Evaluate the arity before std::move(args): the order in which function
  // arguments are evaluated is unspecified.
  const int arity = static_cast<int>(args.size());
  return Atom(Predicate::Get(name.text, arity), std::move(args));
}

std::optional<std::vector<Atom>> ParseAtomList(Lexer* lexer,
                                               std::string* error) {
  std::vector<Atom> atoms;
  while (true) {
    std::optional<Atom> atom = ParseOneAtom(lexer, error);
    if (!atom.has_value()) return std::nullopt;
    atoms.push_back(std::move(*atom));
    if (lexer->Peek().kind == Token::kComma) {
      lexer->Next();
      continue;
    }
    break;
  }
  return atoms;
}

}  // namespace

ParseResult<std::vector<Atom>> ParseAtoms(std::string_view text) {
  ParseResult<std::vector<Atom>> result;
  Lexer lexer(text);
  std::string error;
  std::optional<std::vector<Atom>> atoms = ParseAtomList(&lexer, &error);
  if (!atoms.has_value()) {
    result.error = error;
    return result;
  }
  Token tail = lexer.Next();
  if (tail.kind == Token::kDot) tail = lexer.Next();
  if (tail.kind != Token::kEnd) {
    result.error = "trailing input at position " + std::to_string(tail.position);
    return result;
  }
  result.value = std::move(atoms);
  return result;
}

ParseResult<ConjunctiveQuery> ParseQuery(std::string_view text) {
  ParseResult<ConjunctiveQuery> result;
  // Decide whether the text has an explicit head: "name(...) :- body".
  // We look ahead for ":-" at nesting depth 0.
  bool has_head = false;
  int depth = 0;
  for (size_t i = 0; i + 1 < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')') --depth;
    if (depth == 0 && text[i] == ':' && text[i + 1] == '-') {
      has_head = true;
      break;
    }
  }
  Lexer lexer(text);
  std::string error;
  std::vector<Term> head;
  if (has_head) {
    Token name = lexer.Next();
    if (name.kind != Token::kIdent) {
      result.error = "expected query name";
      return result;
    }
    if (lexer.Next().kind != Token::kLParen) {
      result.error = "expected '(' after query name";
      return result;
    }
    if (lexer.Peek().kind == Token::kRParen) {
      lexer.Next();
    } else {
      while (true) {
        Token t = lexer.Next();
        if (t.kind == Token::kIdent) {
          head.push_back(Term::Variable(t.text));
        } else if (t.kind == Token::kConstant) {
          head.push_back(Term::Constant(t.text));
        } else {
          result.error = "expected head term";
          return result;
        }
        Token sep = lexer.Next();
        if (sep.kind == Token::kComma) continue;
        if (sep.kind == Token::kRParen) break;
        result.error = "expected ',' or ')' in query head";
        return result;
      }
    }
    if (lexer.Next().kind != Token::kTurnstile) {
      result.error = "expected ':-' after query head";
      return result;
    }
  }
  std::optional<std::vector<Atom>> body = ParseAtomList(&lexer, &error);
  if (!body.has_value()) {
    result.error = error;
    return result;
  }
  Token tail = lexer.Next();
  if (tail.kind == Token::kDot) tail = lexer.Next();
  if (tail.kind != Token::kEnd) {
    result.error =
        "trailing input at position " + std::to_string(tail.position);
    return result;
  }
  result.value = ConjunctiveQuery(std::move(head), std::move(*body));
  return result;
}

ConjunctiveQuery MustParseQuery(std::string_view text) {
  ParseResult<ConjunctiveQuery> result = ParseQuery(text);
  if (!result.ok()) {
    std::fprintf(stderr, "MustParseQuery(\"%.*s\"): %s\n",
                 static_cast<int>(text.size()), text.data(),
                 result.error.c_str());
    std::abort();
  }
  return *result.value;
}

std::vector<Atom> MustParseAtoms(std::string_view text) {
  ParseResult<std::vector<Atom>> result = ParseAtoms(text);
  if (!result.ok()) {
    std::fprintf(stderr, "MustParseAtoms(\"%.*s\"): %s\n",
                 static_cast<int>(text.size()), text.data(),
                 result.error.c_str());
    std::abort();
  }
  return *result.value;
}

}  // namespace semacyc
