#include "core/core_min.h"

#include <algorithm>
#include <unordered_set>

#include "core/homomorphism.h"

namespace semacyc {
namespace {

/// Searches for a proper retract of q: a homomorphism from q's body into a
/// strict subset of its own atoms that fixes the head variables. Returns
/// the retract's image as a new body if found.
std::optional<std::vector<Atom>> ProperRetract(
    const std::vector<Term>& head, const std::vector<Atom>& body) {
  for (size_t skip = 0; skip < body.size(); ++skip) {
    Instance target;
    for (size_t i = 0; i < body.size(); ++i) {
      if (i != skip) target.Insert(body[i]);
    }
    Substitution fixed;
    for (Term h : head) {
      if (h.IsVariable()) fixed.emplace(h, h);
    }
    std::optional<Substitution> h = FindHomomorphism(body, target, fixed);
    if (!h.has_value()) continue;
    // The image of the endomorphism is the new (smaller) body.
    std::vector<Atom> image;
    std::unordered_set<Atom, AtomHash> seen;
    for (const Atom& a : body) {
      Atom mapped = Apply(*h, a);
      if (seen.insert(mapped).second) image.push_back(mapped);
    }
    if (image.size() < body.size()) return image;
  }
  return std::nullopt;
}

}  // namespace

ConjunctiveQuery ComputeCore(const ConjunctiveQuery& q) {
  std::vector<Atom> body = q.body();
  while (true) {
    std::optional<std::vector<Atom>> smaller = ProperRetract(q.head(), body);
    if (!smaller.has_value()) break;
    body = std::move(*smaller);
  }
  return ConjunctiveQuery(q.head(), std::move(body));
}

bool IsCore(const ConjunctiveQuery& q) {
  return !ProperRetract(q.head(), q.body()).has_value();
}

}  // namespace semacyc
