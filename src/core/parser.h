#ifndef SEMACYC_CORE_PARSER_H_
#define SEMACYC_CORE_PARSER_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/query.h"

namespace semacyc {

/// Lightweight result type (no exceptions across library boundaries).
template <typename T>
struct ParseResult {
  std::optional<T> value;
  std::string error;

  bool ok() const { return value.has_value(); }
  const T& operator*() const { return *value; }
  const T* operator->() const { return &*value; }
};

/// Text syntax (documented in README):
///   * identifiers are variables: x, y, customer
///   * constants are quoted ('madrid') or numeric (42)
///   * atom:      R(x,'a',y)
///   * query:     q(x,y) :- R(x,z), S(z,y)        (head optional => Boolean)
///   * tgd:       R(x,y), S(y,z) -> T(x,w)        (head-only vars existential)
///   * egd:       R(x,y), R(x,z) -> y = z
/// '%' starts a comment running to end of line.
ParseResult<ConjunctiveQuery> ParseQuery(std::string_view text);
ParseResult<std::vector<Atom>> ParseAtoms(std::string_view text);

/// Parses or aborts; for tests and examples where the text is a literal.
ConjunctiveQuery MustParseQuery(std::string_view text);
std::vector<Atom> MustParseAtoms(std::string_view text);

/// Tokenizer shared with the dependency parser (chase/dependency.h).
struct Token {
  enum Kind {
    kIdent,
    kConstant,  // quoted string or number (text holds the constant name)
    kLParen,
    kRParen,
    kComma,
    kDot,
    kArrow,     // ->
    kTurnstile, // :-
    kEquals,
    kEnd,
    kError,
  };
  Kind kind = kEnd;
  std::string text;
  size_t position = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}
  Token Next();
  Token Peek();

 private:
  void SkipWhitespaceAndComments();
  std::string_view text_;
  size_t pos_ = 0;
  std::optional<Token> lookahead_;
};

}  // namespace semacyc

#endif  // SEMACYC_CORE_PARSER_H_
