#ifndef SEMACYC_CORE_OBS_H_
#define SEMACYC_CORE_OBS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

/// semacyc::obs — decision tracing and engine metrics
/// (docs/OBSERVABILITY.md).
///
/// Two independent layers share one taxonomy of pipeline phases:
///
///  * DecisionTrace / TraceSink: one structured trace per Decide — nested
///    phase spans with wall times and counters, built only when a sink is
///    attached (SemAcOptions::trace_sink). A null sink costs one inlined
///    pointer check per phase; no span objects, labels or string work
///    happen on that path.
///  * MetricsRegistry: process-lifetime atomic counters and fixed-bucket
///    latency histograms keyed by strategy and phase, owned by Engine and
///    snapshotted via Engine::Metrics(). Always on — the per-decision cost
///    is a handful of steady_clock reads and relaxed atomic adds, gated
///    ≤2% by bench_obs_overhead.
///
/// This header depends on std only (no query/term types): traces carry
/// pre-rendered strings, so obs sits below every other layer.
namespace semacyc::obs {

/// The span/phase taxonomy of the decision pipeline. Phases are both
/// trace span kinds and metrics histogram keys; docs/OBSERVABILITY.md
/// holds the glossary.
enum class Phase : uint8_t {
  kDecision = 0,   // root span of one Engine::Decide
  kSchemaAnalyze,  // Σ classification + schema facts (Engine construction)
  kPrepare,        // PreparedQuery analysis (classification, bound)
  kCore,           // core computation + core-acyclicity strategy
  kChase,          // chase(q, Σ): memo lookup, compute on miss
  kRewrite,        // UCQ rewriting build (inside oracle construction)
  kOracle,         // containment-oracle acquisition (build or reuse)
  kCompaction,     // Lemma 9 chase compaction attempt
  kImages,         // strategy attempt: homomorphic images of q
  kSubsets,        // strategy attempt: acyclic chase sub-instances
  kEnumerate,      // strategy attempt: exhaustive canonical enumeration
  kHomCheck,       // per-candidate chase-homomorphism session (counters
                   // only: times would put a clock in the hot loop)
  kEval,           // Prop 24 evaluation: Yannakakis over the witness
                   // (Engine::Eval, both columnar and row paths)
};
inline constexpr size_t kNumPhases = 13;
const char* ToString(Phase p);

/// Process-lifetime counters aggregated by MetricsRegistry (trace spans
/// carry their own ad-hoc named counters; these are the registry keys).
enum class Counter : uint8_t {
  kCandidatesTested = 0,  // witness candidates handed to the oracle
  kEnumVisits,            // DFS nodes visited (the budgets' unit)
  kClassifierPushes,      // IncrementalClassifier edge pushes
  kClassifierPops,
  kHomPushes,             // IncrementalHomomorphism atom pushes
  kHomDomainWipeouts,     // pushes refuted by forward checking
  kHomExtends,            // pushes absorbed by witness extension
  kHomRepairs,            // pushes that ran the repair search
  kHomRepairFails,
  kHomDeadPrefix,         // pushes onto an already-failed prefix
  kOracleMemoHits,        // containment answers served from oracle memos
  kOracleMemoMisses,
  kOraclePrefiltered,     // instant NOs from the reachability prefilter
  kTracesEmitted,         // DecisionTraces handed to a sink
  kEvalRowsScanned,       // rows examined by columnar match-atom filters
  kEvalSemijoinProbes,    // semi-join probes during evaluation (both paths)
  kEvalDpRows,            // tuples materialized by the answer-assembly DP
  kParallelUnits,         // search units claimed by parallel Decide workers
  kParallelSteals,        // unit claims that jumped another worker's run
  kParallelReplays,       // worker sessions replayed to a stolen prefix
  kParallelWastedVisits,  // speculative visits beyond the official prefix
  kParallelCommitWaits,   // finished units stalled behind an earlier unit
};
inline constexpr size_t kNumCounters = 22;
const char* ToString(Counter c);

/// One named counter on a trace span. `name` must be a string literal (or
/// otherwise outlive the trace) — spans are built on the decision path and
/// must not copy strings per counter.
struct SpanCounter {
  const char* name;
  int64_t value;
};

/// One phase span of a decision trace. Spans form a tree by parent index
/// into DecisionTrace::spans (preorder; parent < own index; -1 = root).
/// Times are nanoseconds relative to the trace's start.
struct Span {
  Phase phase = Phase::kDecision;
  int32_t parent = -1;
  int64_t start_ns = 0;
  int64_t end_ns = 0;
  std::vector<SpanCounter> counters;
};

/// One structured trace per Engine::Decide: the answer path plus the span
/// tree. `spans[0]` is always the kDecision root; a decision served from
/// the decision cache has only that root and `cached = true`.
struct DecisionTrace {
  std::string query;     // the decided query, rendered
  std::string answer;    // "yes" / "no" / "unknown"
  std::string strategy;  // pipeline stage that produced the answer
  bool cached = false;   // served from the decision cache
  int64_t total_ns = 0;  // == spans[0] duration
  std::vector<Span> spans;

  /// Renders the trace as one JSON object (schema in docs/CLI.md).
  std::string ToJson() const;
};

/// Builder of one DecisionTrace. Constructed only when a sink is attached;
/// the engine passes `nullptr` otherwise and every instrumentation site
/// guards on that (the zero-cost-when-off design). Spans open/close in
/// stack discipline, mirroring the pipeline's scopes.
class DecisionTracer {
 public:
  DecisionTracer();

  /// Opens a child of the innermost open span; returns its index.
  size_t OpenSpan(Phase phase);
  void CloseSpan(size_t index);
  void AddCounter(size_t index, const char* name, int64_t value);
  /// Opens and immediately closes a counter-only child span (kHomCheck).
  void CounterSpan(Phase phase, std::vector<SpanCounter> counters);

  /// Closes the root span and moves the finished trace out. The tracer is
  /// spent afterwards.
  DecisionTrace Finish(std::string query, const char* answer,
                       const char* strategy, bool cached);

  int64_t ElapsedNs() const;

 private:
  std::chrono::steady_clock::time_point start_;
  std::vector<Span> spans_;
  std::vector<size_t> open_;
};

/// Consumer of finished decision traces. Consume() is called once per
/// Decide, after the decision completes, possibly concurrently from
/// DecideBatch workers — implementations must synchronize.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Consume(const DecisionTrace& trace) = 0;
};

/// Serializes each trace as one `{"trace": {...}}` JSON line to a stdio
/// stream (not owned; flushed per trace). Mutex-guarded, so one sink can
/// serve a whole DecideBatch.
class JsonLinesSink final : public TraceSink {
 public:
  explicit JsonLinesSink(std::FILE* out) : out_(out) {}
  void Consume(const DecisionTrace& trace) override;

 private:
  std::FILE* out_;
  std::mutex mu_;
};

/// Keeps every trace in memory (tests and in-process introspection).
class CollectingSink final : public TraceSink {
 public:
  void Consume(const DecisionTrace& trace) override;
  std::vector<DecisionTrace> Take();
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<DecisionTrace> traces_;
};

/// Fixed-bucket latency histogram, lock-free. Bucket `i` counts durations
/// whose microsecond value has bit-width `i`: bucket 0 is < 1µs, bucket i
/// covers [2^(i-1), 2^i) µs, and the last bucket absorbs everything from
/// ~67s up. 28 buckets — fixed at compile time so snapshots and JSON stay
/// schema-stable.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 28;

  void Record(int64_t ns) {
    uint64_t us = ns <= 0 ? 0 : static_cast<uint64_t>(ns) / 1000;
    size_t b = 0;
    while (us != 0 && b + 1 < kBuckets) {
      us >>= 1;
      ++b;
    }
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns <= 0 ? 0 : static_cast<uint64_t>(ns),
                      std::memory_order_relaxed);
    // Racy max is fine: a lost update can only under-report transiently.
    uint64_t cur = max_ns_.load(std::memory_order_relaxed);
    uint64_t v = ns <= 0 ? 0 : static_cast<uint64_t>(ns);
    while (v > cur &&
           !max_ns_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum_ns = 0;
    uint64_t max_ns = 0;
    std::array<uint64_t, kBuckets> buckets{};

    bool operator==(const Snapshot& o) const {
      return count == o.count && sum_ns == o.sum_ns && max_ns == o.max_ns &&
             buckets == o.buckets;
    }
  };
  Snapshot Snap() const;

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_ns_{0};
  std::atomic<uint64_t> max_ns_{0};
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

/// Point-in-time snapshot of a MetricsRegistry — plain values, comparable,
/// and JSON round-trippable. Designed as the payload for the ROADMAP's
/// future `semacycd /stats` endpoint.
struct MetricsSnapshot {
  struct StrategyRow {
    std::string name;
    uint64_t decisions = 0;
    LatencyHistogram::Snapshot latency;  // uncached decisions only

    bool operator==(const StrategyRow& o) const {
      return name == o.name && decisions == o.decisions &&
             latency == o.latency;
    }
  };
  struct PhaseRow {
    std::string name;
    LatencyHistogram::Snapshot latency;

    bool operator==(const PhaseRow& o) const {
      return name == o.name && latency == o.latency;
    }
  };

  uint64_t decisions_total = 0;
  uint64_t decisions_cached = 0;
  std::vector<std::pair<std::string, uint64_t>> answers;
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<StrategyRow> strategies;
  std::vector<PhaseRow> phases;

  bool operator==(const MetricsSnapshot& o) const {
    return decisions_total == o.decisions_total &&
           decisions_cached == o.decisions_cached && answers == o.answers &&
           counters == o.counters && strategies == o.strategies &&
           phases == o.phases;
  }

  /// Renders the snapshot as one JSON object (schema in docs/CLI.md).
  std::string ToJson() const;
  /// Parses a ToJson() rendering back; nullopt on malformed input.
  /// FromJson(s.ToJson()) == s for every snapshot (pinned by obs_test).
  static std::optional<MetricsSnapshot> FromJson(const std::string& json);
};

/// Process-lifetime metrics of one Engine: atomic counters plus latency
/// histograms keyed by strategy (decision latency) and phase. All methods
/// are thread-safe and wait-free; Snapshot() reads relaxed atomics, so a
/// snapshot taken concurrently with decisions is per-counter consistent
/// (sums across counters may be mid-decision). Strategy and answer names
/// are caller-provided so this layer stays below the decider's enums.
class MetricsRegistry {
 public:
  MetricsRegistry(std::vector<std::string> strategy_names,
                  std::vector<std::string> answer_names);

  void RecordDecision(size_t strategy, size_t answer, int64_t ns,
                      bool cached);
  void RecordPhase(Phase phase, int64_t ns) {
    phase_latency_[static_cast<size_t>(phase)].Record(ns);
  }
  void Add(Counter counter, uint64_t delta) {
    if (delta != 0) {
      counters_[static_cast<size_t>(counter)].fetch_add(
          delta, std::memory_order_relaxed);
    }
  }

  MetricsSnapshot Snapshot() const;

 private:
  std::vector<std::string> strategy_names_;
  std::vector<std::string> answer_names_;
  std::atomic<uint64_t> decisions_total_{0};
  std::atomic<uint64_t> decisions_cached_{0};
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> strategy_decisions_;
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> answer_decisions_;
  std::array<std::atomic<uint64_t>, kNumCounters> counters_{};
  std::vector<std::unique_ptr<LatencyHistogram>> strategy_latency_;
  std::array<LatencyHistogram, kNumPhases> phase_latency_;
};

/// RAII timer over one pipeline phase: always records the latency into
/// the registry's phase histogram; opens/closes a trace span only when a
/// tracer is attached. The null checks inline at every call site — with
/// tracing off a phase costs two steady_clock reads and one relaxed
/// histogram add.
class PhaseTimer {
 public:
  PhaseTimer(MetricsRegistry* metrics, DecisionTracer* tracer, Phase phase)
      : metrics_(metrics),
        tracer_(tracer),
        phase_(phase),
        start_(std::chrono::steady_clock::now()) {
    if (tracer_ != nullptr) span_ = tracer_->OpenSpan(phase);
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;
  ~PhaseTimer() { Stop(); }

  /// Attaches a named counter to the trace span (no-op without a tracer).
  void Counter(const char* name, int64_t value) {
    if (tracer_ != nullptr) tracer_->AddCounter(span_, name, value);
  }

  void Stop() {
    if (stopped_) return;
    stopped_ = true;
    int64_t ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - start_)
                     .count();
    if (metrics_ != nullptr) metrics_->RecordPhase(phase_, ns);
    if (tracer_ != nullptr) tracer_->CloseSpan(span_);
  }

 private:
  MetricsRegistry* metrics_;
  DecisionTracer* tracer_;
  Phase phase_;
  std::chrono::steady_clock::time_point start_;
  size_t span_ = 0;
  bool stopped_ = false;
};

/// Escapes a string for embedding in JSON output (shared by the trace and
/// metrics serializers and the CLI).
std::string JsonEscape(const std::string& s);

}  // namespace semacyc::obs

#endif  // SEMACYC_CORE_OBS_H_
