#ifndef SEMACYC_PCP_PCP_H_
#define SEMACYC_PCP_PCP_H_

#include <optional>
#include <string>
#include <vector>

namespace semacyc {

/// An instance of the Post correspondence problem over {a,b}: two equally
/// long lists of words (§3, proof of Theorem 7).
struct PcpInstance {
  std::vector<std::string> top;
  std::vector<std::string> bottom;

  size_t size() const { return top.size(); }
  /// The paper assumes all words have even length (wlog: a -> aa, b -> bb).
  PcpInstance MadeEven() const;
  bool AllEven() const;
  std::string ToString() const;
};

/// A solution: indices i1..im with top[i1]..top[im] == bottom[i1]..bottom[im].
struct PcpSolution {
  std::vector<int> indices;
  std::string word;
};

/// Bounded BFS over overhang states. Finds a shortest solution whose
/// matched word is at most `max_word_len` long; nullopt if none exists in
/// that bound (the unbounded problem is undecidable, which is the point of
/// Theorem 7).
std::optional<PcpSolution> SolvePcpBounded(const PcpInstance& instance,
                                           size_t max_word_len);

}  // namespace semacyc

#endif  // SEMACYC_PCP_PCP_H_
