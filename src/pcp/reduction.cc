#include "pcp/reduction.h"

#include <cassert>

#include "chase/query_chase.h"
#include "core/homomorphism.h"

namespace semacyc {
namespace {

Predicate Pa() { return Predicate::Get("Pa", 2); }
Predicate Pb() { return Predicate::Get("Pb", 2); }
Predicate Phash() { return Predicate::Get("Phash", 2); }
Predicate Pstar() { return Predicate::Get("Pstar", 2); }
Predicate Sync() { return Predicate::Get("sync", 2); }
Predicate Start() { return Predicate::Get("start", 1); }
Predicate End() { return Predicate::Get("end", 1); }

Predicate Letter(char c) { return c == 'a' ? Pa() : Pb(); }

/// Expands P_w(x, y) into a chain Pa1(x,x1), ..., Pat(x_{t-1}, y) with
/// fresh intermediate variables (the paper's shorthand).
void AppendWordPath(const std::string& word, Term from, Term to,
                    std::vector<Atom>* atoms) {
  assert(!word.empty());
  Term cur = from;
  for (size_t i = 0; i < word.size(); ++i) {
    Term next = (i + 1 == word.size()) ? to : FreshVariable();
    atoms->push_back(Atom(Letter(word[i]), {cur, next}));
    cur = next;
  }
}

}  // namespace

PcpReduction PcpReduction::Build(const PcpInstance& instance) {
  PcpReduction reduction;
  reduction.instance_ = instance;

  // ---- The query q (Figure 2). ----
  Term x = Term::Variable("qx");
  Term y = Term::Variable("qy");
  Term z = Term::Variable("qz");
  Term u = Term::Variable("qu");
  Term v = Term::Variable("qv");
  std::vector<Atom> body = {
      Atom(Start(), {x}),
      Atom(End(), {v}),
      Atom(Phash(), {x, y}),
      Atom(Phash(), {x, z}),
      Atom(Phash(), {x, u}),
      Atom(Pa(), {y, z}),
      Atom(Pa(), {z, u}),
      Atom(Pstar(), {y, v}),
      Atom(Pstar(), {z, v}),
      Atom(Pstar(), {u, v}),
      Atom(Pb(), {z, y}),
      Atom(Pb(), {u, z}),
      Atom(Pa(), {u, y}),
      Atom(Pb(), {y, u}),
  };
  // sync: all pairs over {y, z, u}.
  for (Term s : {y, z, u}) {
    for (Term d : {y, z, u}) {
      body.push_back(Atom(Sync(), {s, d}));
    }
  }
  reduction.q_ = ConjunctiveQuery({}, std::move(body));

  // ---- Σ: initialization rule. ----
  {
    Term ix = Term::Variable("ix");
    Term iy = Term::Variable("iy");
    reduction.sigma_.tgds.emplace_back(
        std::vector<Atom>{Atom(Start(), {ix}), Atom(Phash(), {ix, iy})},
        std::vector<Atom>{Atom(Sync(), {iy, iy})});
  }

  // ---- Σ: synchronization rules, one per tile. ----
  for (size_t i = 0; i < instance.size(); ++i) {
    Term sx = Term::Variable("sx");
    Term sy = Term::Variable("sy");
    Term sz = Term::Variable("sz");
    Term su = Term::Variable("su");
    std::vector<Atom> tgd_body = {Atom(Sync(), {sx, sy})};
    AppendWordPath(instance.top[i], sx, sz, &tgd_body);
    AppendWordPath(instance.bottom[i], sy, su, &tgd_body);
    reduction.sigma_.tgds.emplace_back(
        std::move(tgd_body), std::vector<Atom>{Atom(Sync(), {sz, su})});
  }

  // ---- Σ: finalization rules, one per tile. ----
  for (size_t i = 0; i < instance.size(); ++i) {
    Term fx = Term::Variable("fx");
    Term fy = Term::Variable("fy");
    Term fz = Term::Variable("fz");
    Term fu = Term::Variable("fu");
    Term fv = Term::Variable("fv");
    Term fy1 = Term::Variable("fy1");
    Term fy2 = Term::Variable("fy2");
    std::vector<Atom> tgd_body = {
        Atom(Start(), {fx}),   Atom(Pa(), {fy, fz}),
        Atom(Pa(), {fz, fu}),  Atom(Pstar(), {fu, fv}),
        Atom(End(), {fv}),     Atom(Sync(), {fy1, fy2}),
    };
    AppendWordPath(instance.top[i], fy1, fy, &tgd_body);
    AppendWordPath(instance.bottom[i], fy2, fy, &tgd_body);
    std::vector<Atom> tgd_head = {
        Atom(Phash(), {fx, fy}), Atom(Phash(), {fx, fz}),
        Atom(Phash(), {fx, fu}), Atom(Pstar(), {fy, fv}),
        Atom(Pstar(), {fz, fv}), Atom(Pb(), {fz, fy}),
        Atom(Pb(), {fu, fz}),    Atom(Pa(), {fu, fy}),
        Atom(Pb(), {fy, fu}),
    };
    // sync over all pairs of {fy, fz, fu}; the paper's printed rule omits
    // sync(u,u) — see the header comment.
    for (Term s : {fy, fz, fu}) {
      for (Term d : {fy, fz, fu}) {
        tgd_head.push_back(Atom(Sync(), {s, d}));
      }
    }
    reduction.sigma_.tgds.emplace_back(std::move(tgd_body),
                                       std::move(tgd_head));
  }

  return reduction;
}

ConjunctiveQuery PcpReduction::PathQuery(const std::string& word) {
  Term x = Term::Variable("px");
  std::vector<Atom> body = {Atom(Start(), {x})};
  Term word_start = FreshVariable();
  body.push_back(Atom(Phash(), {x, word_start}));
  Term y = FreshVariable();
  AppendWordPath(word, word_start, y, &body);
  Term z = FreshVariable();
  Term u = FreshVariable();
  Term v = FreshVariable();
  body.push_back(Atom(Pa(), {y, z}));
  body.push_back(Atom(Pa(), {z, u}));
  body.push_back(Atom(Pstar(), {u, v}));
  body.push_back(Atom(End(), {v}));
  return ConjunctiveQuery({}, std::move(body));
}

bool PcpReduction::PathWitnessWorks(const std::string& word) const {
  ConjunctiveQuery path = PathQuery(word);
  ChaseOptions options;
  options.max_steps = 0;  // full tgds over a fixed domain always terminate
  options.max_atoms = 0;
  QueryChaseResult chase = ChaseQuery(path, sigma_, options);
  assert(chase.saturated);
  return EvaluatesTrue(q_, chase.instance);
}

}  // namespace semacyc
