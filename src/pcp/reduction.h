#ifndef SEMACYC_PCP_REDUCTION_H_
#define SEMACYC_PCP_REDUCTION_H_

#include "chase/dependency.h"
#include "core/query.h"
#include "pcp/pcp.h"

namespace semacyc {

/// The Theorem 7 reduction: from a PCP instance to a Boolean CQ q and a
/// set Σ of *full* tgds over {Pa, Pb, P#, P*, sync, start, end} such that
/// the instance has a solution iff q is semantically acyclic under Σ.
/// (This witnesses that SemAc(F) is undecidable even though Cont(F) is
/// decidable — the paper's headline negative result.)
///
/// We implement the proof-sketch version (Figure 2): q is the 5-variable
/// gadget and the finalization rules create a copy of q in chase(q',Σ)
/// whenever the path query q' spells a PCP solution. One deviation from
/// the paper's text: the finalization head as printed omits sync(u,u)
/// although q contains it (q's sync holds *all* pairs over {y,z,u}); we
/// add it, otherwise q never maps into chase(q',Σ) and even the forward
/// direction of the reduction fails on the sketch gadget.
class PcpReduction {
 public:
  static PcpReduction Build(const PcpInstance& instance);

  const ConjunctiveQuery& q() const { return q_; }
  const DependencySet& sigma() const { return sigma_; }
  const PcpInstance& instance() const { return instance_; }

  /// The acyclic path query q' of the proof for a candidate solution word
  /// w: start -> P# -> P_{w[0]} -> ... -> P_{w[t-1]} -> Pa -> Pa -> P* ->
  /// end. When w is a PCP solution, q ≡Σ q'.
  static ConjunctiveQuery PathQuery(const std::string& word);

  /// Chases the path query of `word` under Σ and reports whether a copy of
  /// q appears (i.e., whether chase(q',Σ) ⊨ q) — the forward direction of
  /// the reduction, checkable because full-tgd chases terminate.
  bool PathWitnessWorks(const std::string& word) const;

 private:
  PcpInstance instance_;
  ConjunctiveQuery q_;
  DependencySet sigma_;
};

}  // namespace semacyc

#endif  // SEMACYC_PCP_REDUCTION_H_
