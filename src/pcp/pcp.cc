#include "pcp/pcp.h"

#include <deque>
#include <map>

namespace semacyc {

PcpInstance PcpInstance::MadeEven() const {
  auto doubled = [](const std::string& w) {
    std::string out;
    for (char c : w) {
      out += c;
      out += c;
    }
    return out;
  };
  PcpInstance out;
  for (const std::string& w : top) out.top.push_back(doubled(w));
  for (const std::string& w : bottom) out.bottom.push_back(doubled(w));
  return out;
}

bool PcpInstance::AllEven() const {
  for (const std::string& w : top) {
    if (w.size() % 2 != 0) return false;
  }
  for (const std::string& w : bottom) {
    if (w.size() % 2 != 0) return false;
  }
  return true;
}

std::string PcpInstance::ToString() const {
  std::string out;
  for (size_t i = 0; i < top.size(); ++i) {
    out += "  " + std::to_string(i + 1) + ": (" + top[i] + ", " + bottom[i] +
           ")\n";
  }
  return out;
}

std::optional<PcpSolution> SolvePcpBounded(const PcpInstance& instance,
                                           size_t max_word_len) {
  // State: (side, overhang): side = +1 when the top string is ahead by
  // `overhang`, -1 when the bottom is. Start state: empty overhang but not
  // yet started (must take at least one tile).
  struct State {
    int side;
    std::string overhang;
    bool operator<(const State& o) const {
      return std::tie(side, overhang) < std::tie(o.side, o.overhang);
    }
  };
  struct Entry {
    State state;
    std::vector<int> indices;
    size_t matched;  // length of agreed prefix so far
  };

  auto try_tile = [&](const Entry& e, int i,
                      Entry* out) -> std::optional<bool> {
    // Returns nullopt if the tile clashes; true if solved; false if new
    // state produced.
    std::string topw = e.state.side >= 0 ? e.state.overhang + instance.top[i]
                                         : instance.top[i];
    std::string botw = e.state.side >= 0
                           ? instance.bottom[i]
                           : e.state.overhang + instance.bottom[i];
    size_t common = std::min(topw.size(), botw.size());
    for (size_t k = 0; k < common; ++k) {
      if (topw[k] != botw[k]) return std::nullopt;
    }
    out->indices = e.indices;
    out->indices.push_back(i);
    out->matched = e.matched + common;
    if (topw.size() == botw.size()) {
      out->state = {0, ""};
      return true;  // solved
    }
    if (topw.size() > botw.size()) {
      out->state = {+1, topw.substr(common)};
    } else {
      out->state = {-1, botw.substr(common)};
    }
    return false;
  };

  std::deque<Entry> queue;
  std::map<State, bool> seen;
  queue.push_back({{0, ""}, {}, 0});
  while (!queue.empty()) {
    Entry e = std::move(queue.front());
    queue.pop_front();
    for (int i = 0; i < static_cast<int>(instance.size()); ++i) {
      Entry next;
      std::optional<bool> step = try_tile(e, i, &next);
      if (!step.has_value()) continue;
      if (*step && !next.indices.empty()) {
        PcpSolution solution;
        solution.indices = next.indices;
        for (int idx : solution.indices) solution.word += instance.top[idx];
        return solution;
      }
      if (next.matched + next.state.overhang.size() > max_word_len) continue;
      if (seen.emplace(next.state, true).second) queue.push_back(next);
    }
  }
  return std::nullopt;
}

}  // namespace semacyc
