#ifndef SEMACYC_SERVE_SERVER_H_
#define SEMACYC_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chase/dependency.h"
#include "core/interrupt.h"
#include "semacyc/engine.h"
#include "serve/socket.h"
#include "serve/worker_pool.h"

namespace semacyc::serve {

/// Configuration of one semacycd instance (defaults are the production
/// shape; tests shrink workers/queue to force the shedding paths).
struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (see Server::port).
  uint16_t port = 0;
  /// Decision worker threads; a hard Decide never blocks the accept loop.
  size_t workers = 4;
  /// Worker-queue high-water mark: a decide request arriving with this
  /// many already queued is shed with an immediate overloaded response.
  size_t queue_high_water = 64;
  /// Server-wide per-request deadline default (ms; 0 = none). A request's
  /// own "deadline_ms" field overrides it for that request.
  int64_t default_deadline_ms = 0;
  /// Graceful-shutdown drain budget: after RequestShutdown the server
  /// stops accepting and waits this long for in-flight decisions, then
  /// cancels stragglers through the chained drain token and waits up to
  /// the same budget again before closing connections outright.
  int64_t drain_ms = 2000;
  /// Total cache budget in MiB, split evenly across tenant engines via
  /// EngineOptions::SetTotalCacheBudget (0 = unbounded).
  size_t cache_mb = 0;
  /// Named tenants besides the always-present default tenant "". Each
  /// tenant gets its own Engine over the same schema, so cache budgets
  /// and stats are isolated per tenant while connections share engines.
  std::vector<std::string> tenants;
  /// Base decision options for every tenant engine. deadline_ms inside is
  /// forced to 0 — per-request deadlines are enforced through the
  /// request's CancelToken so the reported and enforced budgets agree.
  SemAcOptions semac;
  /// Requests longer than this many bytes poison the connection (one
  /// error line, then close): a line that never ends must not buffer
  /// unboundedly.
  size_t max_line_bytes = 1 << 20;
};

/// Lifetime counters, readable concurrently with Run (see the stats
/// endpoint's "server" object in docs/SERVING.md).
struct ServerCounters {
  size_t connections_accepted = 0;
  size_t connections_active = 0;
  size_t requests = 0;
  size_t decided = 0;
  size_t shed = 0;
  size_t bad_requests = 0;
};

/// A long-running decision service over one schema: a single-threaded
/// nonblocking poll() loop (level-triggered) accepts persistent loopback
/// TCP connections speaking the JSON-lines protocol of serve/protocol.h,
/// and dispatches decide requests to a fixed WorkerPool so a hard Decide
/// never blocks accept/recv/send. Responses are delivered strictly in
/// request order per connection (pipelining-safe): every request takes a
/// sequence slot, workers complete slots out of order, the loop flushes
/// the completed prefix.
///
/// One Engine per tenant (same schema), shared by all connections; the
/// total cache budget is split across tenants. Shutdown (SIGTERM via
/// ServeForever, or RequestShutdown from any thread) stops accepting,
/// drains in-flight work under ServerOptions::drain_ms, cancels
/// stragglers through a drain CancelToken every request token chains
/// under, flushes, and returns from Run with every fd closed.
class Server {
 public:
  Server(DependencySet sigma, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// False when construction failed (bind error, ...); error() says why.
  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  /// The actually bound port (== options.port unless that was 0).
  uint16_t port() const { return port_; }

  /// Serves until RequestShutdown, then drains and returns. Call once,
  /// from one thread.
  void Run();

  /// Initiates graceful shutdown. Async-signal-safe (an atomic store and
  /// one write() to the wake pipe) and safe from any thread.
  void RequestShutdown();

  ServerCounters counters() const;

  /// The engine serving `tenant` (nullptr if unknown) — parity checks in
  /// tests and the load generator decide directly against it.
  const Engine* tenant_engine(const std::string& tenant) const;

 private:
  struct Conn;

  void Accept();
  void ReadFrom(const std::shared_ptr<Conn>& conn);
  void HandleLine(const std::shared_ptr<Conn>& conn, const std::string& line);
  void Complete(const std::shared_ptr<Conn>& conn, uint64_t seq,
                std::string line);
  void FlushCompleted(Conn* conn);
  void WriteTo(Conn* conn);
  std::string StatsResponse(const std::string& tenant) const;
  Engine* EngineFor(const std::string& tenant) const;
  void Wake();

  ServerOptions options_;
  bool ok_ = false;
  std::string error_;
  uint16_t port_ = 0;
  Socket listener_;
  int wake_read_ = -1;
  int wake_write_ = -1;

  /// Tenant name -> engine; built in the constructor, immutable after.
  std::vector<std::pair<std::string, std::unique_ptr<Engine>>> engines_;
  std::unique_ptr<WorkerPool> pool_;
  /// Every request token chains under this; RequestShutdown's second
  /// drain phase cancels it to shed stragglers.
  CancelToken drain_token_;
  std::atomic<bool> shutdown_requested_{false};
  bool draining_ = false;

  std::map<int, std::shared_ptr<Conn>> conns_;

  mutable std::atomic<size_t> accepted_{0};
  mutable std::atomic<size_t> active_{0};
  mutable std::atomic<size_t> requests_{0};
  mutable std::atomic<size_t> decided_{0};
  mutable std::atomic<size_t> shed_{0};
  mutable std::atomic<size_t> bad_requests_{0};
};

/// Shared main of `semacycd` and `semacyc_cli --serve`: builds the
/// server, installs SIGTERM/SIGINT handlers that RequestShutdown, prints
/// "listening on 127.0.0.1:<port>" to stderr, runs to completion and
/// reports the drain summary. Returns a process exit code.
int ServeForever(DependencySet sigma, const ServerOptions& options);

}  // namespace semacyc::serve

#endif  // SEMACYC_SERVE_SERVER_H_
