#ifndef SEMACYC_SERVE_PROTOCOL_H_
#define SEMACYC_SERVE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>

#include "core/interrupt.h"
#include "semacyc/engine.h"

namespace semacyc::serve {

/// The JSON-lines protocol shared by `semacyc_cli --batch` and `semacycd`
/// (docs/CLI.md "JSON output schema", docs/SERVING.md). Exactly one
/// rendering path exists for a decision line — both the CLI batch loop
/// and the server worker call DecideResponse — so the two surfaces cannot
/// drift; serve_test pins byte-identical output through both.

/// Escapes `s` for embedding in a JSON string literal.
std::string JsonEscape(const std::string& s);

/// One parsed request line. Raw (non-JSON) lines are decide requests
/// carrying the line verbatim as query text — the `--batch` input format.
/// JSON object lines ({"op": ..., ...}) address the built-in endpoints
/// and per-request options:
///
///   {"query": "q(x) :- R(x,y)"}                      decide (op optional)
///   {"op": "decide", "query": "...", "deadline_ms": 50, "tenant": "t1"}
///   {"op": "stats"}      |  stats                    engine + server stats
///   {"op": "health"}     |  health                   liveness probe
///
/// A malformed JSON line (or an unknown op / field / wrong type) parses
/// to kBad with a message; the connection survives and answers with an
/// error line.
struct Request {
  enum class Kind { kDecide, kStats, kHealth, kBad };
  Kind kind = Kind::kDecide;
  std::string query;       // kDecide: the query text
  int64_t deadline_ms = 0; // kDecide: per-request deadline (0 = server default)
  std::string tenant;      // kDecide: tenant label ("" = default tenant)
  std::string error;       // kBad: what was wrong with the line
};

/// Parses one request line (no trailing newline). Blank and '%'-comment
/// lines return std::nullopt — they take no response slot, matching the
/// `--batch` convention. The bare words `stats` / `health` are accepted
/// as a convenience alias for their JSON forms.
std::optional<Request> ParseRequest(const std::string& line);

/// Decides `query_text` on `engine` and renders the decision as one JSON
/// line (no trailing newline) — the exact `--batch` output schema of
/// docs/CLI.md, including the two-field parse-error / internal-error
/// shapes. `reported_deadline_ms > 0` adds the "deadline_ms" field;
/// `cancel` (may be null, not owned) bounds the decision — the caller
/// configures its deadline/parent before the call.
std::string DecideResponse(const Engine& engine, const std::string& query_text,
                           int64_t reported_deadline_ms, CancelToken* cancel);

/// Raw-line semantics on top of DecideResponse: std::nullopt for blank
/// and '%'-comment lines, a decision line otherwise. The CLI batch loop
/// is exactly this per line.
std::optional<std::string> BatchLineResponse(const Engine& engine,
                                             const std::string& line,
                                             int64_t reported_deadline_ms,
                                             CancelToken* cancel);

/// Evaluates `query_text` on `engine` over the preloaded columnar
/// database (the Prop 24 pipeline: reformulate, then the compiled
/// semi-join program) and renders one JSON line (no trailing newline) —
/// the `--eval` output schema of docs/CLI.md:
///
///   {"query": ..., "status": "ok", "witness": ..., "columnar": true,
///    "answer_count": N, "answers": [["'a'","'b'"], ...],
///    "rows_scanned": ..., "semijoin_probes": ..., "dp_rows": ...}
///
/// `answers` carries at most `max_answers` tuples (0 = answer_count
/// only); the count is always the full answer-set size. Non-ok statuses
/// ("not_found" — no acyclic reformulation; "deadline_exceeded";
/// "unsupported") carry a "message" instead of answers; parse and
/// internal errors use the same two-field shapes as DecideResponse.
std::string EvalResponse(const Engine& engine,
                         const data::ColumnarInstance& db,
                         const std::string& query_text,
                         int64_t reported_deadline_ms, CancelToken* cancel,
                         size_t max_answers);

/// Raw-line semantics on top of EvalResponse: std::nullopt for blank and
/// '%'-comment lines, an eval line otherwise (`semacyc_cli --eval
/// --batch` is exactly this per line).
std::optional<std::string> EvalLineResponse(const Engine& engine,
                                            const data::ColumnarInstance& db,
                                            const std::string& line,
                                            int64_t reported_deadline_ms,
                                            CancelToken* cancel,
                                            size_t max_answers);

/// Renders the `--stats` payload object for one engine (the value of the
/// "stats" key: prepares/decisions/oracle counters + per-cache
/// CacheStats). Shared by the CLI's trailing {"stats": ...} line and the
/// server's stats endpoint.
std::string EngineStatsJson(const Engine& engine);

/// The immediate load-shedding response (docs/SERVING.md): sent instead
/// of queueing when the worker queue is at its high-water mark or the
/// server is draining.
std::string OverloadedResponse();

/// The health endpoint payload.
std::string HealthResponse();

}  // namespace semacyc::serve

#endif  // SEMACYC_SERVE_PROTOCOL_H_
