#ifndef SEMACYC_SERVE_CLIENT_H_
#define SEMACYC_SERVE_CLIENT_H_

#include <poll.h>

#include <cstdint>
#include <optional>
#include <string>

#include "serve/socket.h"

namespace semacyc::serve {

/// Blocking JSON-lines client for the semacycd protocol — the loopback
/// peer used by serve_test, the bench_serve_load generator, and its
/// --client scripted-session mode. Deliberately simple: one socket, an
/// input buffer, line-at-a-time send/recv with a timeout.
class LineClient {
 public:
  LineClient() = default;

  bool Connect(uint16_t port, std::string* error) {
    sock_ = ConnectLoopback(port, error);
    return sock_.valid();
  }

  bool connected() const { return sock_.valid(); }
  void Close() { sock_.Close(); }

  /// Sends `line` plus the terminating newline. False on a send error.
  bool SendLine(const std::string& line) {
    std::string framed = line;
    framed += '\n';
    size_t off = 0;
    while (off < framed.size()) {
      ssize_t n = ::send(sock_.fd(), framed.data() + off, framed.size() - off,
                         MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<size_t>(n);
    }
    return true;
  }

  /// Receives the next response line (without the newline), waiting up to
  /// `timeout_ms` (< 0 = forever). std::nullopt on timeout, peer close
  /// with no buffered line, or error.
  std::optional<std::string> RecvLine(int timeout_ms = -1) {
    while (true) {
      size_t pos = buffer_.find('\n');
      if (pos != std::string::npos) {
        std::string line = buffer_.substr(0, pos);
        buffer_.erase(0, pos + 1);
        return line;
      }
      pollfd pfd{sock_.fd(), POLLIN, 0};
      int rc = ::poll(&pfd, 1, timeout_ms);
      if (rc == 0) return std::nullopt;  // timeout
      if (rc < 0) {
        if (errno == EINTR) continue;
        return std::nullopt;
      }
      char chunk[4096];
      ssize_t n = ::recv(sock_.fd(), chunk, sizeof(chunk), 0);
      if (n == 0) return std::nullopt;  // peer closed
      if (n < 0) {
        if (errno == EINTR) continue;
        return std::nullopt;
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  Socket sock_;
  std::string buffer_;
};

}  // namespace semacyc::serve

#endif  // SEMACYC_SERVE_CLIENT_H_
