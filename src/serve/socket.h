#ifndef SEMACYC_SERVE_SOCKET_H_
#define SEMACYC_SERVE_SOCKET_H_

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>

namespace semacyc::serve {

/// Minimal RAII file-descriptor wrapper (the reindexer net/socket.h
/// idiom): owns one fd, move-only, closes on destruction. Everything the
/// server needs — nonblocking mode, listener setup, loopback connect —
/// is a named helper below instead of a method zoo; the event loop deals
/// in raw fds and keeps Sockets only for ownership.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Releases ownership without closing.
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
};

inline bool SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Binds and listens on 127.0.0.1:`port` (0 = kernel-assigned ephemeral
/// port, the test/bench default). On success returns the listening socket
/// (nonblocking, SO_REUSEADDR) and stores the actually bound port in
/// `*bound_port`; on failure returns an invalid Socket and a message in
/// `*error`.
inline Socket Listen(uint16_t port, uint16_t* bound_port, std::string* error) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    *error = std::string("socket: ") + std::strerror(errno);
    return Socket();
  }
  int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    *error = std::string("bind: ") + std::strerror(errno);
    return Socket();
  }
  if (::listen(sock.fd(), 128) != 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    return Socket();
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    *error = std::string("getsockname: ") + std::strerror(errno);
    return Socket();
  }
  *bound_port = ntohs(addr.sin_port);
  if (!SetNonBlocking(sock.fd())) {
    *error = std::string("fcntl: ") + std::strerror(errno);
    return Socket();
  }
  return sock;
}

/// Blocking loopback connect (clients: tests, the load generator).
inline Socket ConnectLoopback(uint16_t port, std::string* error) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    *error = std::string("socket: ") + std::strerror(errno);
    return Socket();
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    *error = std::string("connect: ") + std::strerror(errno);
    return Socket();
  }
  int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

}  // namespace semacyc::serve

#endif  // SEMACYC_SERVE_SOCKET_H_
