#include "serve/protocol.h"

#include <cstdio>
#include <utility>
#include <vector>

#include "core/parser.h"

namespace semacyc::serve {

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// One value of a flat request object. Requests are intentionally flat —
/// strings, integers, bools, null — so a full JSON tree is overkill;
/// nested containers are rejected as unsupported.
struct JsonValue {
  enum class Kind { kString, kInt, kBool, kNull };
  Kind kind = Kind::kNull;
  std::string str;
  int64_t num = 0;
  bool boolean = false;
};

/// Strict parser for one flat JSON object line. Returns false with a
/// message on any syntax error, trailing garbage, duplicate key, or
/// nested container.
class FlatObjectParser {
 public:
  explicit FlatObjectParser(const std::string& text) : text_(text) {}

  bool Parse(std::vector<std::pair<std::string, JsonValue>>* out,
             std::string* error) {
    SkipSpace();
    if (!Consume('{')) return Fail(error, "expected '{'");
    SkipSpace();
    if (Consume('}')) return AtEnd(error);
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return Fail(error, "expected string key");
      for (const auto& [seen, value] : *out) {
        (void)value;
        if (seen == key) return Fail(error, "duplicate key \"" + key + "\"");
      }
      SkipSpace();
      if (!Consume(':')) return Fail(error, "expected ':'");
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value, error)) return false;
      out->emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return AtEnd(error);
      return Fail(error, "expected ',' or '}'");
    }
  }

 private:
  bool AtEnd(std::string* error) {
    SkipSpace();
    if (pos_ != text_.size()) return Fail(error, "trailing characters");
    return true;
  }

  bool Fail(std::string* error, const std::string& what) {
    char at[32];
    std::snprintf(at, sizeof(at), " at offset %zu", pos_);
    *error = what + at;
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r'))
      ++pos_;
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            // Only the escapes JsonEscape emits (control characters, all
            // below 0x80) are accepted; that keeps round-trips exact
            // without a UTF-16 decoder.
            if (pos_ + 4 > text_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            if (code > 0x7f) return false;
            *out += static_cast<char>(code);
            break;
          }
          default:
            return false;
        }
      } else {
        *out += c;
      }
    }
    return false;  // unterminated
  }

  bool ParseValue(JsonValue* out, std::string* error) {
    char c = pos_ < text_.size() ? text_[pos_] : '\0';
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      if (!ParseString(&out->str)) return Fail(error, "bad string value");
      return true;
    }
    if (c == '{' || c == '[') {
      return Fail(error, "nested containers are not supported");
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      out->kind = JsonValue::Kind::kNull;
      return true;
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      bool negative = c == '-';
      if (negative) ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Fail(error, "bad number");
      }
      int64_t value = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        int digit = text_[pos_] - '0';
        if (value > (INT64_MAX - digit) / 10) {
          return Fail(error, "number out of range");
        }
        value = value * 10 + digit;
        ++pos_;
      }
      if (pos_ < text_.size() &&
          (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
        return Fail(error, "only integers are supported");
      }
      out->kind = JsonValue::Kind::kInt;
      out->num = negative ? -value : value;
      return true;
    }
    return Fail(error, "bad value");
  }

  const std::string& text_;
  size_t pos_ = 0;
};

Request BadRequest(std::string why) {
  Request out;
  out.kind = Request::Kind::kBad;
  out.error = std::move(why);
  return out;
}

Request ParseJsonRequest(const std::string& line) {
  std::vector<std::pair<std::string, JsonValue>> fields;
  std::string error;
  if (!FlatObjectParser(line).Parse(&fields, &error)) {
    return BadRequest("bad request: " + error);
  }
  Request out;
  std::string op = "decide";
  bool have_query = false;
  for (const auto& [key, value] : fields) {
    if (key == "op") {
      if (value.kind != JsonValue::Kind::kString) {
        return BadRequest("bad request: \"op\" must be a string");
      }
      op = value.str;
    } else if (key == "query") {
      if (value.kind != JsonValue::Kind::kString) {
        return BadRequest("bad request: \"query\" must be a string");
      }
      out.query = value.str;
      have_query = true;
    } else if (key == "deadline_ms") {
      if (value.kind != JsonValue::Kind::kInt || value.num < 0) {
        return BadRequest(
            "bad request: \"deadline_ms\" must be a non-negative integer");
      }
      out.deadline_ms = value.num;
    } else if (key == "tenant") {
      if (value.kind != JsonValue::Kind::kString) {
        return BadRequest("bad request: \"tenant\" must be a string");
      }
      out.tenant = value.str;
    } else {
      return BadRequest("bad request: unknown field \"" + key + "\"");
    }
  }
  if (op == "stats") {
    out.kind = Request::Kind::kStats;
    return out;
  }
  if (op == "health") {
    out.kind = Request::Kind::kHealth;
    return out;
  }
  if (op != "decide") {
    return BadRequest("bad request: unknown op \"" + op + "\"");
  }
  if (!have_query) {
    return BadRequest("bad request: decide needs a \"query\" field");
  }
  out.kind = Request::Kind::kDecide;
  return out;
}

}  // namespace

std::optional<Request> ParseRequest(const std::string& line) {
  size_t first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos || line[first] == '%') return std::nullopt;
  if (line[first] == '{') return ParseJsonRequest(line);
  size_t last = line.find_last_not_of(" \t\r");
  std::string word = line.substr(first, last - first + 1);
  if (word == "stats") {
    Request out;
    out.kind = Request::Kind::kStats;
    return out;
  }
  if (word == "health") {
    Request out;
    out.kind = Request::Kind::kHealth;
    return out;
  }
  // Anything else is the raw --batch line format: the line is the query.
  Request out;
  out.kind = Request::Kind::kDecide;
  out.query = line;
  return out;
}

std::string DecideResponse(const Engine& engine, const std::string& query_text,
                           int64_t reported_deadline_ms, CancelToken* cancel) {
  ParseResult<ConjunctiveQuery> q = ParseQuery(query_text);
  if (!q.ok()) {
    return "{\"query\": \"" + JsonEscape(query_text) + "\", \"error\": \"" +
           JsonEscape(q.error) + "\"}";
  }
  // A malformed-but-parseable query (e.g. arity drift across atoms) that
  // trips an internal invariant must not take the stream or the
  // connection down: report it as a structured error, exactly like a
  // parse failure.
  try {
    PreparedQuery pq = engine.Prepare(*q.value);
    SemAcResult result = engine.Decide(pq, cancel);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "\", \"answer\": \"%s\", \"strategy\": \"%s\", "
                  "\"exact\": %s, \"class\": \"%s\", \"bound\": %zu, "
                  "\"bound_justified\": %s, \"candidates\": %zu",
                  ToString(result.answer), ToString(result.strategy),
                  result.exact ? "true" : "false",
                  ToString(pq.acyclicity_class()), result.small_query_bound,
                  result.bound_justified ? "true" : "false",
                  result.candidates_tested);
    std::string line = "{\"query\": \"" + JsonEscape(q->ToString()) + buf;
    if (reported_deadline_ms > 0) {
      std::snprintf(buf, sizeof(buf), ", \"deadline_ms\": %lld",
                    static_cast<long long>(reported_deadline_ms));
      line += buf;
    }
    if (result.witness.has_value()) {
      line += ", \"witness\": \"" + JsonEscape(result.witness->ToString()) +
              "\", \"witness_class\": \"" +
              std::string(ToString(result.witness_class)) + "\"";
    }
    line += "}";
    return line;
  } catch (const std::exception& e) {
    return "{\"query\": \"" + JsonEscape(query_text) +
           "\", \"error\": \"internal: " + JsonEscape(e.what()) + "\"}";
  }
}

std::optional<std::string> BatchLineResponse(const Engine& engine,
                                             const std::string& line,
                                             int64_t reported_deadline_ms,
                                             CancelToken* cancel) {
  size_t first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos || line[first] == '%') return std::nullopt;
  return DecideResponse(engine, line, reported_deadline_ms, cancel);
}

std::string EvalResponse(const Engine& engine,
                         const data::ColumnarInstance& db,
                         const std::string& query_text,
                         int64_t reported_deadline_ms, CancelToken* cancel,
                         size_t max_answers) {
  ParseResult<ConjunctiveQuery> q = ParseQuery(query_text);
  if (!q.ok()) {
    return "{\"query\": \"" + JsonEscape(query_text) + "\", \"error\": \"" +
           JsonEscape(q.error) + "\"}";
  }
  try {
    PreparedQuery pq = engine.Prepare(*q.value);
    EvalOptions opts;
    opts.cancel = cancel;
    EvalOutcome out = engine.Eval(pq, db, opts);
    std::string line = "{\"query\": \"" + JsonEscape(q->ToString()) + "\"";
    char buf[256];
    if (reported_deadline_ms > 0) {
      std::snprintf(buf, sizeof(buf), ", \"deadline_ms\": %lld",
                    static_cast<long long>(reported_deadline_ms));
      line += buf;
    }
    if (!out.status.ok()) {
      const char* status = "unsupported";
      switch (out.status.code) {
        case Status::Code::kNotFound:
          status = "not_found";
          break;
        case Status::Code::kDeadlineExceeded:
          status = "deadline_exceeded";
          break;
        default:
          break;
      }
      line += ", \"status\": \"" + std::string(status) + "\", \"message\": \"" +
              JsonEscape(out.status.message) + "\"}";
      return line;
    }
    line += ", \"status\": \"ok\", \"witness\": \"" +
            JsonEscape(out.witness.ToString()) + "\", \"columnar\": " +
            (out.columnar ? "true" : "false");
    std::snprintf(buf, sizeof(buf),
                  ", \"answer_count\": %zu, \"rows_scanned\": %zu, "
                  "\"semijoin_probes\": %zu, \"dp_rows\": %zu",
                  out.evaluation.answers.size(), out.exec_stats.rows_scanned,
                  out.exec_stats.semijoin_probes, out.exec_stats.dp_rows);
    line += buf;
    if (max_answers > 0) {
      line += ", \"answers\": [";
      size_t shown = std::min(max_answers, out.evaluation.answers.size());
      for (size_t i = 0; i < shown; ++i) {
        if (i > 0) line += ", ";
        line += "[";
        const std::vector<Term>& tuple = out.evaluation.answers[i];
        for (size_t j = 0; j < tuple.size(); ++j) {
          if (j > 0) line += ", ";
          line += "\"" + JsonEscape(tuple[j].ToString()) + "\"";
        }
        line += "]";
      }
      line += "]";
      if (shown < out.evaluation.answers.size()) {
        std::snprintf(buf, sizeof(buf), ", \"answers_truncated\": %zu",
                      out.evaluation.answers.size() - shown);
        line += buf;
      }
    }
    line += "}";
    return line;
  } catch (const std::exception& e) {
    return "{\"query\": \"" + JsonEscape(query_text) +
           "\", \"error\": \"internal: " + JsonEscape(e.what()) + "\"}";
  }
}

std::optional<std::string> EvalLineResponse(const Engine& engine,
                                            const data::ColumnarInstance& db,
                                            const std::string& line,
                                            int64_t reported_deadline_ms,
                                            CancelToken* cancel,
                                            size_t max_answers) {
  size_t first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos || line[first] == '%') return std::nullopt;
  return EvalResponse(engine, db, line, reported_deadline_ms, cancel,
                      max_answers);
}

namespace {

void AppendCacheStatsJson(std::string* out, const char* name,
                          const CacheStats& s, bool trailing_comma) {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "\"%s\": {\"entries\": %zu, \"bytes\": %zu, \"hits\": %zu, "
      "\"misses\": %zu, \"inserts\": %zu, \"evictions\": %zu, "
      "\"recharged_bytes\": %zu, \"max_bytes\": %zu}%s",
      name, s.entries, s.bytes, s.hits, s.misses, s.inserts, s.evictions,
      s.recharged_bytes, s.max_bytes, trailing_comma ? ", " : "");
  *out += buf;
}

}  // namespace

std::string EngineStatsJson(const Engine& engine) {
  EngineStats agg = engine.stats();
  EngineCacheStats caches = engine.Stats();
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "{\"prepares\": %zu, \"decisions\": %zu, "
      "\"oracle_hits\": %zu, \"oracle_misses\": %zu, "
      "\"oracle_prefiltered\": %zu, \"deadline_ms\": %lld, \"caches\": {",
      agg.prepares, agg.decisions, agg.oracle_hits, agg.oracle_misses,
      agg.oracle_prefiltered,
      static_cast<long long>(engine.options().deadline_ms));
  std::string out = buf;
  AppendCacheStatsJson(&out, "chase", caches.chase, true);
  AppendCacheStatsJson(&out, "rewrite", caches.rewrite, true);
  AppendCacheStatsJson(&out, "oracles", caches.oracles, true);
  AppendCacheStatsJson(&out, "decisions", caches.decisions, false);
  out += "}}";
  return out;
}

std::string OverloadedResponse() { return "{\"status\": \"overloaded\"}"; }

std::string HealthResponse() { return "{\"status\": \"ok\"}"; }

}  // namespace semacyc::serve
