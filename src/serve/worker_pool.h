#ifndef SEMACYC_SERVE_WORKER_POOL_H_
#define SEMACYC_SERVE_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace semacyc::serve {

/// Fixed pool of decision workers behind a bounded FIFO queue. The event
/// loop hands a hard Decide to the pool and keeps accepting; when the
/// queue is at its high-water mark TrySubmit refuses instead of queueing
/// unboundedly — the caller sheds the request with an immediate
/// overloaded response (docs/SERVING.md "Load shedding").
///
/// Thread contract: TrySubmit from any thread; jobs run on pool threads
/// and must do their own result hand-off. Shutdown drains the queue
/// (jobs submitted before it are still run — under a tripped drain token
/// they finish fast) and joins the workers.
class WorkerPool {
 public:
  using Job = std::function<void()>;

  WorkerPool(size_t workers, size_t queue_high_water);
  ~WorkerPool() { Shutdown(); }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues `job` unless the queue holds queue_high_water jobs already
  /// (returns false: shed) or the pool is shutting down (also false).
  bool TrySubmit(Job job);

  /// Stops accepting, runs every job already queued, joins the workers.
  /// Idempotent.
  void Shutdown();

  /// Jobs currently queued (not yet picked up by a worker).
  size_t queued() const;
  /// Jobs currently executing on a worker.
  size_t active() const { return active_.load(std::memory_order_relaxed); }
  /// Lifetime counters: accepted submissions / refused (shed) ones.
  size_t submitted() const { return submitted_.load(std::memory_order_relaxed); }
  size_t shed() const { return shed_.load(std::memory_order_relaxed); }

 private:
  void WorkerMain();

  const size_t high_water_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
  std::atomic<size_t> active_{0};
  std::atomic<size_t> submitted_{0};
  std::atomic<size_t> shed_{0};
};

}  // namespace semacyc::serve

#endif  // SEMACYC_SERVE_WORKER_POOL_H_
