#include "serve/server.h"

#include <poll.h>
#include <signal.h>

#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>

#include "serve/protocol.h"

namespace semacyc::serve {

namespace {
using Clock = std::chrono::steady_clock;

int64_t MsUntil(Clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(tp -
                                                               Clock::now())
      .count();
}
}  // namespace

/// One persistent connection. The poll loop owns all fields except
/// `done`, which workers fill under `mu` — the request's sequence slot
/// machinery that keeps pipelined responses in request order: the loop
/// assigns `next_seq` per request, any thread completes a slot, and the
/// loop flushes the contiguous prefix starting at `next_flush`.
struct Server::Conn {
  Socket sock;
  std::string in;   // partial input line
  std::string out;  // rendered responses awaiting write
  bool read_closed = false;
  bool broken = false;  // read/write error: drop without draining
  bool fatal = false;   // poisoned (oversize line): close once flushed

  std::mutex mu;
  std::map<uint64_t, std::string> done;
  uint64_t next_seq = 0;
  uint64_t next_flush = 0;

  uint64_t pending() const { return next_seq - next_flush; }
};

Server::Server(DependencySet sigma, ServerOptions options)
    : options_(std::move(options)) {
  uint16_t bound = 0;
  listener_ = Listen(options_.port, &bound, &error_);
  if (!listener_.valid()) return;
  port_ = bound;

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    error_ = std::string("pipe: ") + std::strerror(errno);
    listener_.Close();
    return;
  }
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
  SetNonBlocking(wake_read_);
  SetNonBlocking(wake_write_);

  // One engine per tenant over the same schema; the default tenant ""
  // always exists. Budgets: the total cache budget splits evenly, so one
  // tenant's working set cannot evict another's.
  std::vector<std::string> tenants;
  tenants.push_back("");
  for (const std::string& t : options_.tenants) {
    bool seen = false;
    for (const std::string& have : tenants) seen = seen || have == t;
    if (!seen) tenants.push_back(t);
  }
  EngineOptions eopts;
  eopts.semac = options_.semac;
  // Per-request deadlines travel through the request CancelToken (the
  // reported and enforced budgets must be the same number); a schema-wide
  // engine deadline would double-report.
  eopts.semac.deadline_ms = 0;
  if (options_.cache_mb > 0) {
    eopts.SetTotalCacheBudget(options_.cache_mb * size_t{1024} * 1024 /
                              tenants.size());
  }
  engines_.reserve(tenants.size());
  for (const std::string& t : tenants) {
    engines_.emplace_back(t, std::make_unique<Engine>(sigma, eopts));
  }

  pool_ = std::make_unique<WorkerPool>(options_.workers,
                                       options_.queue_high_water);
  ok_ = true;
}

Server::~Server() {
  if (pool_ != nullptr) pool_->Shutdown();
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
}

void Server::RequestShutdown() {
  shutdown_requested_.store(true, std::memory_order_relaxed);
  Wake();
}

void Server::Wake() {
  if (wake_write_ >= 0) {
    char byte = 'w';
    // EAGAIN (pipe full) is fine: the loop is already due to wake.
    [[maybe_unused]] ssize_t n = ::write(wake_write_, &byte, 1);
  }
}

Engine* Server::EngineFor(const std::string& tenant) const {
  for (const auto& [name, engine] : engines_) {
    if (name == tenant) return engine.get();
  }
  return nullptr;
}

const Engine* Server::tenant_engine(const std::string& tenant) const {
  return EngineFor(tenant);
}

ServerCounters Server::counters() const {
  ServerCounters out;
  out.connections_accepted = accepted_.load(std::memory_order_relaxed);
  out.connections_active = active_.load(std::memory_order_relaxed);
  out.requests = requests_.load(std::memory_order_relaxed);
  out.decided = decided_.load(std::memory_order_relaxed);
  out.shed = shed_.load(std::memory_order_relaxed);
  out.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  return out;
}

std::string Server::StatsResponse(const std::string& tenant) const {
  const Engine* engine = EngineFor(tenant);
  if (engine == nullptr) {
    return "{\"error\": \"unknown tenant \\\"" + JsonEscape(tenant) +
           "\\\"\"}";
  }
  ServerCounters c = counters();
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      ", \"server\": {\"connections_accepted\": %zu, "
      "\"connections_active\": %zu, \"requests\": %zu, \"decided\": %zu, "
      "\"shed\": %zu, \"bad_requests\": %zu, \"queue_depth\": %zu, "
      "\"workers\": %zu, \"queue_high_water\": %zu, "
      "\"default_deadline_ms\": %lld, \"draining\": %s, \"tenants\": [",
      c.connections_accepted, c.connections_active, c.requests, c.decided,
      c.shed, c.bad_requests, pool_->queued(), options_.workers,
      options_.queue_high_water,
      static_cast<long long>(options_.default_deadline_ms),
      draining_ ? "true" : "false");
  std::string out = "{\"stats\": " + EngineStatsJson(*engine) +
                    ", \"metrics\": " + engine->Metrics().ToJson() + buf;
  for (size_t i = 0; i < engines_.size(); ++i) {
    char tbuf[128];
    std::snprintf(tbuf, sizeof(tbuf), "%s{\"name\": \"%s\", \"cache_bytes\": %zu}",
                  i == 0 ? "" : ", ",
                  JsonEscape(engines_[i].first).c_str(),
                  engines_[i].second->Stats().TotalBytes());
    out += tbuf;
  }
  out += "]}}";
  return out;
}

void Server::Complete(const std::shared_ptr<Conn>& conn, uint64_t seq,
                      std::string line) {
  std::lock_guard<std::mutex> lock(conn->mu);
  conn->done[seq] = std::move(line);
}

void Server::FlushCompleted(Conn* conn) {
  std::lock_guard<std::mutex> lock(conn->mu);
  auto it = conn->done.find(conn->next_flush);
  while (it != conn->done.end()) {
    conn->out += it->second;
    conn->out += '\n';
    conn->done.erase(it);
    ++conn->next_flush;
    it = conn->done.find(conn->next_flush);
  }
}

void Server::HandleLine(const std::shared_ptr<Conn>& conn,
                        const std::string& line) {
  std::optional<Request> req = ParseRequest(line);
  if (!req.has_value()) return;  // blank / comment: no response slot
  requests_.fetch_add(1, std::memory_order_relaxed);
  uint64_t seq = conn->next_seq++;
  switch (req->kind) {
    case Request::Kind::kBad:
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      Complete(conn, seq, "{\"error\": \"" + JsonEscape(req->error) + "\"}");
      return;
    case Request::Kind::kHealth:
      Complete(conn, seq, HealthResponse());
      return;
    case Request::Kind::kStats:
      Complete(conn, seq, StatsResponse(req->tenant));
      return;
    case Request::Kind::kDecide:
      break;
  }
  Engine* engine = EngineFor(req->tenant);
  if (engine == nullptr) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    Complete(conn, seq,
             "{\"error\": \"unknown tenant \\\"" + JsonEscape(req->tenant) +
                 "\\\"\"}");
    return;
  }
  int64_t deadline_ms = req->deadline_ms > 0 ? req->deadline_ms
                                             : options_.default_deadline_ms;
  // The job runs on a pool worker: decide, park the rendered line in the
  // connection's slot, wake the loop to flush it. The shared_ptr keeps
  // the Conn alive even if the peer disconnects mid-decision.
  auto job = [this, conn, seq, engine, text = std::move(req->query),
              deadline_ms] {
    CancelToken token;
    token.SetParent(&drain_token_);
    token.SetDeadlineInMs(deadline_ms);
    std::string response = DecideResponse(*engine, text, deadline_ms, &token);
    Complete(conn, seq, std::move(response));
    decided_.fetch_add(1, std::memory_order_relaxed);
    Wake();
  };
  if (draining_ || !pool_->TrySubmit(std::move(job))) {
    // Queue at high-water (or shutting down): shed instead of queueing
    // unboundedly — the client learns immediately and can back off.
    shed_.fetch_add(1, std::memory_order_relaxed);
    Complete(conn, seq, OverloadedResponse());
  }
}

void Server::ReadFrom(const std::shared_ptr<Conn>& conn) {
  char chunk[4096];
  while (true) {
    ssize_t n = ::recv(conn->sock.fd(), chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn->in.append(chunk, static_cast<size_t>(n));
      if (conn->in.size() > options_.max_line_bytes &&
          conn->in.find('\n') == std::string::npos) {
        // A line that never ends: answer once, stop reading, close after
        // the flush. (Pipelining is already broken for this peer.)
        uint64_t seq = conn->next_seq++;
        bad_requests_.fetch_add(1, std::memory_order_relaxed);
        Complete(conn, seq, "{\"error\": \"bad request: line too long\"}");
        conn->in.clear();
        conn->read_closed = true;
        conn->fatal = true;
        return;
      }
      size_t pos;
      while ((pos = conn->in.find('\n')) != std::string::npos) {
        std::string line = conn->in.substr(0, pos);
        conn->in.erase(0, pos + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        HandleLine(conn, line);
      }
      continue;
    }
    if (n == 0) {
      conn->read_closed = true;
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    conn->broken = true;
    return;
  }
}

void Server::WriteTo(Conn* conn) {
  while (!conn->out.empty()) {
    ssize_t n = ::send(conn->sock.fd(), conn->out.data(), conn->out.size(),
                       MSG_NOSIGNAL);
    if (n > 0) {
      conn->out.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    conn->broken = true;
    return;
  }
}

void Server::Accept() {
  while (true) {
    int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      // Transient accept failures (EMFILE, ECONNABORTED): keep serving
      // the connections we have.
      return;
    }
    SetNonBlocking(fd);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>();
    conn->sock = Socket(fd);
    conns_.emplace(fd, std::move(conn));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    active_.store(conns_.size(), std::memory_order_relaxed);
  }
}

void Server::Run() {
  assert(ok_);
  Clock::time_point drain_deadline{};
  Clock::time_point hard_deadline{};
  bool stragglers_cancelled = false;

  std::vector<pollfd> fds;
  std::vector<std::shared_ptr<Conn>> polled;
  while (true) {
    fds.clear();
    polled.clear();
    fds.push_back({wake_read_, POLLIN, 0});
    const bool listener_polled = !draining_ && listener_.valid();
    if (listener_polled) {
      fds.push_back({listener_.fd(), POLLIN, 0});
    }
    for (auto& [fd, conn] : conns_) {
      short events = 0;
      if (!draining_ && !conn->read_closed) events |= POLLIN;
      if (!conn->out.empty()) events |= POLLOUT;
      fds.push_back({fd, events, 0});
      polled.push_back(conn);
    }

    int timeout = -1;
    if (draining_) {
      Clock::time_point next =
          stragglers_cancelled ? hard_deadline : drain_deadline;
      int64_t ms = MsUntil(next);
      timeout = ms < 10 ? 10 : (ms > 200 ? 200 : static_cast<int>(ms));
    }
    int rc = ::poll(fds.data(), fds.size(), timeout);
    if (rc < 0 && errno != EINTR) break;

    // Wake pipe: drain it (worker completions and shutdown requests both
    // land here).
    if (fds[0].revents & POLLIN) {
      char sink[256];
      while (::read(wake_read_, sink, sizeof(sink)) > 0) {
      }
    }

    if (!draining_ && shutdown_requested_.load(std::memory_order_relaxed)) {
      // Graceful shutdown, phase 1: stop accepting, keep flushing.
      draining_ = true;
      listener_.Close();
      drain_deadline = Clock::now() + std::chrono::milliseconds(
                                          options_.drain_ms > 0
                                              ? options_.drain_ms
                                              : 0);
      hard_deadline = drain_deadline + std::chrono::milliseconds(
                                           options_.drain_ms > 0
                                               ? options_.drain_ms
                                               : 100);
    }

    // Move worker-completed slots into each connection's write buffer
    // (in request order), then push bytes.
    size_t fd_index = 1;
    if (listener_polled) {
      if ((fds[1].revents & POLLIN) && !draining_) Accept();
      fd_index = 2;
    }
    for (size_t i = 0; i < polled.size(); ++i, ++fd_index) {
      // Accept() may have appended connections; they are polled next
      // iteration.
      if (fd_index >= fds.size()) break;
      const std::shared_ptr<Conn>& conn = polled[i];
      short revents = fds[fd_index].revents;
      if (revents & (POLLERR | POLLNVAL)) {
        conn->broken = true;
        continue;
      }
      if ((revents & (POLLIN | POLLHUP)) && !draining_ &&
          !conn->read_closed) {
        ReadFrom(conn);
      }
    }
    for (auto& [fd, conn] : conns_) {
      if (conn->broken) continue;
      FlushCompleted(conn.get());
      if (!conn->out.empty()) WriteTo(conn.get());
    }

    // Reap: broken connections immediately; cleanly closed ones once
    // every response they are owed has been flushed.
    for (auto it = conns_.begin(); it != conns_.end();) {
      Conn* conn = it->second.get();
      bool drained = conn->pending() == 0 && conn->out.empty();
      if (conn->broken || ((conn->read_closed || conn->fatal) && drained)) {
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
    active_.store(conns_.size(), std::memory_order_relaxed);

    if (draining_) {
      bool idle = pool_->queued() == 0 && pool_->active() == 0;
      for (auto& [fd, conn] : conns_) {
        idle = idle && conn->pending() == 0 && conn->out.empty();
      }
      if (idle) break;
      if (!stragglers_cancelled && Clock::now() >= drain_deadline) {
        // Phase 2: the drain budget elapsed — cancel stragglers through
        // the chained token; in-flight decisions abort at their next
        // poll point and report deadline-exceeded lines.
        drain_token_.RequestCancel();
        stragglers_cancelled = true;
      }
      if (stragglers_cancelled && Clock::now() >= hard_deadline) break;
    }
  }

  // Teardown: no new work (listener closed above or here), wait for the
  // workers — under a tripped drain token any leftover jobs finish fast —
  // then drop every connection.
  listener_.Close();
  drain_token_.RequestCancel();
  pool_->Shutdown();
  conns_.clear();
  active_.store(0, std::memory_order_relaxed);
}

namespace {

std::atomic<Server*> g_signal_server{nullptr};

void OnTermSignal(int) {
  Server* server = g_signal_server.load(std::memory_order_relaxed);
  if (server != nullptr) server->RequestShutdown();
}

}  // namespace

int ServeForever(DependencySet sigma, const ServerOptions& options) {
  Server server(std::move(sigma), options);
  if (!server.ok()) {
    std::fprintf(stderr, "semacycd: %s\n", server.error().c_str());
    return 1;
  }
  g_signal_server.store(&server, std::memory_order_relaxed);
  struct sigaction action {};
  action.sa_handler = OnTermSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);

  std::fprintf(stderr, "semacycd listening on 127.0.0.1:%u\n",
               static_cast<unsigned>(server.port()));
  server.Run();
  g_signal_server.store(nullptr, std::memory_order_relaxed);

  ServerCounters c = server.counters();
  std::fprintf(stderr,
               "semacycd drained: %zu connections served, %zu decided, "
               "%zu shed, %zu bad requests\n",
               c.connections_accepted, c.decided, c.shed, c.bad_requests);
  return 0;
}

}  // namespace semacyc::serve
