#include "serve/worker_pool.h"

#include <utility>

namespace semacyc::serve {

WorkerPool::WorkerPool(size_t workers, size_t queue_high_water)
    : high_water_(queue_high_water) {
  if (workers == 0) workers = 1;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

bool WorkerPool::TrySubmit(Job job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || queue_.size() >= high_water_) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    queue_.push_back(std::move(job));
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  cv_.notify_one();
  return true;
}

void WorkerPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

size_t WorkerPool::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void WorkerPool::WorkerMain() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    active_.fetch_add(1, std::memory_order_relaxed);
    job();
    active_.fetch_sub(1, std::memory_order_relaxed);
  }
}

}  // namespace semacyc::serve
