#include "semacyc/approximation.h"

#include <algorithm>

#include "semacyc/engine.h"

namespace semacyc {

ConjunctiveQuery TrivialAcyclicUnderApproximation(const ConjunctiveQuery& q) {
  Term x = Term::Variable("approx$x");
  std::vector<Atom> body;
  std::vector<Predicate> seen;
  for (const Atom& a : q.body()) {
    if (std::find(seen.begin(), seen.end(), a.predicate()) != seen.end()) {
      continue;
    }
    seen.push_back(a.predicate());
    body.emplace_back(a.predicate(),
                      std::vector<Term>(a.arity(), x));
  }
  std::vector<Term> head(q.head().size(), x);
  return ConjunctiveQuery(std::move(head), std::move(body));
}

std::optional<ApproximationResult> AcyclicApproximation(
    const ConjunctiveQuery& q, const DependencySet& sigma,
    const SemAcOptions& options) {
  // One-shot wrapper over a transient Engine (see Engine::Approximate for
  // the Status-carrying session API).
  Engine engine(sigma, options);
  ApproximateOutcome out = engine.Approximate(engine.Prepare(q));
  if (!out.status.ok()) return std::nullopt;
  return std::move(out.result);
}

}  // namespace semacyc
