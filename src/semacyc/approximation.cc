#include "semacyc/approximation.h"

#include <algorithm>

#include "core/canonical.h"
#include "core/hypergraph.h"
#include "deps/classify.h"

namespace semacyc {

ConjunctiveQuery TrivialAcyclicUnderApproximation(const ConjunctiveQuery& q) {
  Term x = Term::Variable("approx$x");
  std::vector<Atom> body;
  std::vector<Predicate> seen;
  for (const Atom& a : q.body()) {
    if (std::find(seen.begin(), seen.end(), a.predicate()) != seen.end()) {
      continue;
    }
    seen.push_back(a.predicate());
    body.emplace_back(a.predicate(),
                      std::vector<Term>(a.arity(), x));
  }
  std::vector<Term> head(q.head().size(), x);
  return ConjunctiveQuery(std::move(head), std::move(body));
}

namespace {

/// Collects acyclic candidates q' with q' ⊆Σ q: homomorphic images and
/// acyclic chase subsets, like the decider's YES-strategies, but keeping
/// every verified candidate instead of stopping at the first equivalent.
class CandidateCollector {
 public:
  CandidateCollector(const ConjunctiveQuery& q, const DependencySet& sigma,
                     const SemAcOptions& options)
      : q_(q), sigma_(sigma), options_(options) {}

  std::vector<ConjunctiveQuery> Collect(const QueryChaseResult& chase,
                                        const ContainmentOracle& oracle) {
    std::vector<ConjunctiveQuery> out;
    std::unordered_set<uint64_t> seen;
    auto consider = [&](const ConjunctiveQuery& candidate) {
      if (!seen.insert(CanonicalFingerprint(candidate)).second) return;
      if (oracle.ContainedInQ(candidate) == Tri::kYes) {
        out.push_back(candidate);
      }
    };

    // Acyclic subsets of the chase (they all satisfy q ⊆Σ q_S — too
    // strong for approximation purposes? No: for approximation we need
    // q_S ⊆Σ q only, which `consider` verifies via the oracle).
    const auto& atoms = chase.instance.atoms();
    const size_t m = atoms.size();
    size_t bound =
        std::min<size_t>(SmallQueryBound(q_, sigma_, nullptr),
                         options_.witness_atoms_cap);
    size_t visits = 0;
    std::vector<uint32_t> subset;
    std::function<void(size_t)> dfs = [&](size_t next) {
      if (++visits > options_.subset_budget) return;
      if (!subset.empty() && subset.size() <= bound) {
        Instance sub = chase.instance.Restrict(subset);
        bool covers = true;
        for (Term t : chase.frozen_head) {
          if (t.IsConstant() && !t.IsFrozenNull()) continue;
          if (sub.AtomsMentioning(t).empty()) {
            covers = false;
            break;
          }
        }
        if (covers && IsAcyclic(sub.atoms(), ConnectingTerms::kAllTerms)) {
          consider(QueryFromInstance(sub, chase.frozen_head));
        }
      }
      if (subset.size() >= bound) return;
      for (size_t i = next; i < m; ++i) {
        subset.push_back(static_cast<uint32_t>(i));
        dfs(i + 1);
        subset.pop_back();
      }
    };
    dfs(0);
    return out;
  }

 private:
  const ConjunctiveQuery& q_;
  const DependencySet& sigma_;
  const SemAcOptions& options_;
};

}  // namespace

std::optional<ApproximationResult> AcyclicApproximation(
    const ConjunctiveQuery& q, const DependencySet& sigma,
    const SemAcOptions& options) {
  // Constants in q block the generic fallback witness (footnote in §8.2).
  for (const Atom& a : q.body()) {
    if (a.MentionsKind(TermKind::kConstant)) return std::nullopt;
  }

  ApproximationResult result;

  // If q is semantically acyclic, its witness is the (exact) approximation.
  SemAcResult decision = DecideSemanticAcyclicity(q, sigma, options);
  if (decision.answer == SemAcAnswer::kYes && decision.witness.has_value()) {
    result.approximation = *decision.witness;
    result.is_exact = true;
    result.maximality_exact = true;
    result.candidates = {*decision.witness};
    return result;
  }

  QueryChaseResult chase = ChaseQuery(q, sigma, options.chase);
  ContainmentOracle oracle(q, sigma, options.chase, options.rewrite);
  CandidateCollector collector(q, sigma, options);
  result.candidates = collector.Collect(chase, oracle);
  result.candidates.push_back(TrivialAcyclicUnderApproximation(q));

  // Pick a maximal element under ⊆Σ among the collected candidates.
  size_t best = 0;
  for (size_t i = 1; i < result.candidates.size(); ++i) {
    // candidates[i] strictly above current best?
    Tri up = ContainedUnder(result.candidates[best], result.candidates[i],
                            sigma, options.chase);
    Tri down = ContainedUnder(result.candidates[i], result.candidates[best],
                              sigma, options.chase);
    if (up == Tri::kYes && down != Tri::kYes) best = i;
  }
  result.approximation = result.candidates[best];
  result.is_exact = false;
  result.maximality_exact = decision.exact;
  return result;
}

}  // namespace semacyc
