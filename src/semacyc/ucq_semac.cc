#include "semacyc/ucq_semac.h"

namespace semacyc {

UcqSemAcResult DecideUcqSemanticAcyclicity(const UnionQuery& Q,
                                           const DependencySet& sigma,
                                           const SemAcOptions& options) {
  UcqSemAcResult result;
  const auto& disjuncts = Q.disjuncts();
  result.disjuncts.resize(disjuncts.size());
  result.exact = true;

  // Redundancy pass (UCQ minimization under Σ): q_i is redundant when some
  // other kept disjunct contains it. Mutually equivalent disjuncts keep
  // the one with the smaller index.
  std::vector<bool> redundant(disjuncts.size(), false);
  for (size_t i = 0; i < disjuncts.size(); ++i) {
    for (size_t j = 0; j < disjuncts.size(); ++j) {
      if (i == j || redundant[j]) continue;
      Tri forward = ContainedUnder(disjuncts[i], disjuncts[j], sigma,
                                   options.chase);
      if (forward != Tri::kYes) {
        if (forward == Tri::kUnknown) result.exact = false;
        continue;
      }
      Tri backward = ContainedUnder(disjuncts[j], disjuncts[i], sigma,
                                    options.chase);
      if (backward == Tri::kYes && j > i) continue;  // keep the earlier one
      redundant[i] = true;
      break;
    }
    result.disjuncts[i].redundant = redundant[i];
  }

  std::vector<ConjunctiveQuery> witness_disjuncts;
  bool all_yes = true;
  bool any_unknown = false;
  for (size_t i = 0; i < disjuncts.size(); ++i) {
    if (redundant[i]) continue;
    SemAcResult decision =
        DecideSemanticAcyclicity(disjuncts[i], sigma, options);
    result.disjuncts[i].decision = decision;
    if (decision.answer == SemAcAnswer::kYes) {
      witness_disjuncts.push_back(*decision.witness);
    } else if (decision.answer == SemAcAnswer::kNo) {
      all_yes = false;
      if (!decision.exact) result.exact = false;
    } else {
      all_yes = false;
      any_unknown = true;
    }
  }

  if (all_yes) {
    result.answer = SemAcAnswer::kYes;
    result.witness = UnionQuery(std::move(witness_disjuncts));
  } else if (any_unknown || !result.exact) {
    result.answer = SemAcAnswer::kUnknown;
    result.exact = false;
  } else {
    result.answer = SemAcAnswer::kNo;
  }
  return result;
}

}  // namespace semacyc
