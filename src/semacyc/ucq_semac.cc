#include "semacyc/ucq_semac.h"

#include "semacyc/engine.h"

namespace semacyc {

UcqSemAcResult DecideUcqSemanticAcyclicity(const UnionQuery& Q,
                                           const DependencySet& sigma,
                                           const SemAcOptions& options) {
  // One-shot wrapper: the disjuncts of Q share the transient Engine's
  // chase memo and oracles within this call.
  Engine engine(sigma, options);
  return engine.DecideUcq(Q);
}

}  // namespace semacyc
