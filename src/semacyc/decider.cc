#include "semacyc/decider.h"

#include <algorithm>

#include "deps/classify.h"
#include "semacyc/engine.h"

namespace semacyc {

const char* ToString(SemAcAnswer a) {
  switch (a) {
    case SemAcAnswer::kYes:
      return "yes";
    case SemAcAnswer::kNo:
      return "no";
    case SemAcAnswer::kUnknown:
      return "unknown";
  }
  return "?";
}

const char* ToString(Strategy s) {
  switch (s) {
    case Strategy::kNone:
      return "none";
    case Strategy::kAlreadyAcyclic:
      return "already-acyclic";
    case Strategy::kCore:
      return "core";
    case Strategy::kFailingChase:
      return "failing-chase";
    case Strategy::kChaseCompaction:
      return "chase-compaction";
    case Strategy::kImages:
      return "images";
    case Strategy::kSubsets:
      return "subsets";
    case Strategy::kExhaustive:
      return "exhaustive";
    case Strategy::kBudgetExhausted:
      return "budget-exhausted";
    case Strategy::kDeadlineExceeded:
      return "deadline-exceeded";
  }
  return "?";
}

namespace {

/// Shared bound logic of both SmallQueryBound overloads, off predigested
/// schema flags.
size_t BoundFromFacts(const ConjunctiveQuery& q, const DependencySet& sigma,
                      bool egds_bounded, bool guarded, bool nr_or_sticky,
                      bool* theoretically_justified) {
  bool justified = false;
  size_t bound = 2 * std::max<size_t>(q.size(), 1);
  if (!sigma.HasTgds()) {
    // Egds: Theorem 21/Prop 22 machinery (K2 / unary FDs) gives 2·|q|.
    justified = egds_bounded;
  } else if (!sigma.HasEgds()) {
    if (guarded) {
      justified = true;  // Prop 8 via Prop 12
    } else if (nr_or_sticky) {
      justified = true;  // Prop 15 via Props 17/19
      bound = 2 * PaperRewriteHeightBound(q, sigma.tgds);
    }
  }
  if (theoretically_justified != nullptr) {
    *theoretically_justified = justified;
  }
  return bound;
}

}  // namespace

size_t SmallQueryBound(const ConjunctiveQuery& q, const DependencySet& sigma,
                       bool* theoretically_justified) {
  bool egds_bounded = IsK2Set(sigma.egds) || IsUnaryFdSet(sigma.egds);
  bool guarded = false;
  bool nr_or_sticky = false;
  if (sigma.HasTgds() && !sigma.HasEgds()) {
    TgdClassification cls = Classify(sigma.tgds);
    guarded = cls.guarded;
    nr_or_sticky = cls.non_recursive || cls.sticky;
  }
  return BoundFromFacts(q, sigma, egds_bounded, guarded, nr_or_sticky,
                        theoretically_justified);
}

size_t SmallQueryBound(const ConjunctiveQuery& q, const DependencySet& sigma,
                       const SchemaFacts& facts,
                       bool* theoretically_justified) {
  return BoundFromFacts(q, sigma, facts.egds_bounded, facts.guarded,
                        facts.nr_or_sticky, theoretically_justified);
}

SemAcResult DecideSemanticAcyclicity(const ConjunctiveQuery& q,
                                     const DependencySet& sigma,
                                     const SemAcOptions& options) {
  // One-shot wrapper: a transient Engine runs the identical pipeline; its
  // caches simply never see a second call.
  Engine engine(sigma, options);
  return engine.Decide(q);
}

}  // namespace semacyc
