#include "semacyc/decider.h"

#include <algorithm>

#include "core/core_min.h"
#include "core/hypergraph.h"
#include "deps/classify.h"
#include "semacyc/compaction.h"

namespace semacyc {

const char* ToString(SemAcAnswer a) {
  switch (a) {
    case SemAcAnswer::kYes:
      return "yes";
    case SemAcAnswer::kNo:
      return "no";
    case SemAcAnswer::kUnknown:
      return "unknown";
  }
  return "?";
}

size_t SmallQueryBound(const ConjunctiveQuery& q, const DependencySet& sigma,
                       bool* theoretically_justified) {
  bool justified = false;
  size_t bound = 2 * std::max<size_t>(q.size(), 1);
  if (!sigma.HasTgds()) {
    // Egds: Theorem 21/Prop 22 machinery (K2 / unary FDs) gives 2·|q|.
    justified = IsK2Set(sigma.egds) || IsUnaryFdSet(sigma.egds);
  } else if (!sigma.HasEgds()) {
    TgdClassification cls = Classify(sigma.tgds);
    if (cls.guarded) {
      justified = true;  // Prop 8 via Prop 12
    } else if (cls.non_recursive || cls.sticky) {
      justified = true;  // Prop 15 via Props 17/19
      bound = 2 * PaperRewriteHeightBound(q, sigma.tgds);
    }
  }
  if (theoretically_justified != nullptr) {
    *theoretically_justified = justified;
  }
  return bound;
}

SemAcResult DecideSemanticAcyclicity(const ConjunctiveQuery& q,
                                     const DependencySet& sigma,
                                     const SemAcOptions& options) {
  SemAcResult result;
  const acyclic::AcyclicityClass target = options.target_class;
  bool bound_justified = false;
  result.small_query_bound = SmallQueryBound(q, sigma, &bound_justified);

  // Records a witness together with its (tightest) classification.
  auto accept = [&result](ConjunctiveQuery witness, const char* strategy) {
    result.witness_class = ClassifyQuery(witness).cls;
    result.answer = SemAcAnswer::kYes;
    result.witness = std::move(witness);
    result.strategy = strategy;
    result.exact = true;
  };

  // Strategy 0: q itself reaches the target class.
  if (MeetsAcyclicityClass(q.body(), ConnectingTerms::kVariables, target)) {
    accept(q, "already-acyclic");
    return result;
  }

  // Strategy 1: the core of q reaches the target class. Complete for
  // Σ = ∅ and *every* target: constraint-free equivalence preserves cores
  // up to isomorphism, and β/γ/Berge-acyclicity are hereditary under atom
  // removal, so any witness q' ≡ q yields the (isomorphic) core of q as a
  // witness too. (For α the same completeness is the §1 classical result.)
  ConjunctiveQuery core = ComputeCore(q);
  if (MeetsAcyclicityClass(core.body(), ConnectingTerms::kVariables, target)) {
    accept(core, "core");
    return result;
  }
  if (sigma.size() == 0) {
    result.answer = SemAcAnswer::kNo;
    result.strategy = "core";
    result.exact = true;
    return result;
  }

  // Chase once; shared by the remaining strategies.
  QueryChaseResult chase = ChaseQuery(q, sigma, options.chase);
  if (chase.failed) {
    // q is unsatisfiable on every model of Σ; any acyclic query that is
    // also unsatisfiable under Σ is equivalent to it. The constant-free
    // single-atom query over one of q's predicates chased to failure would
    // do; for simplicity report YES with the core as placeholder only if
    // it is unsatisfiable too — otherwise answer via the trivial argument:
    // q ≡Σ q' holds for any q' that is empty under Σ. We use q's first
    // atom repeated — but verifying emptiness generically is involved, so
    // we return kYes with no witness and flag it.
    result.answer = SemAcAnswer::kYes;
    result.strategy = "failing-chase";
    result.exact = true;
    return result;
  }

  ContainmentOracle oracle(q, sigma, options.chase, options.rewrite);

  // Strategy 2: the chase itself is acyclic -> compact it (Lemma 9). The
  // compaction preserves α-acyclicity only, so for stricter targets the
  // compacted witness is re-classified and kept only when it qualifies.
  if (chase.saturated &&
      IsAcyclic(chase.instance.atoms(), ConnectingTerms::kAllTerms)) {
    std::optional<CompactionResult> compact =
        CompactAcyclicWitness(q, chase.instance, chase.frozen_head);
    if (compact.has_value() &&
        MeetsAcyclicityClass(compact->witness.body(),
                             ConnectingTerms::kVariables, target)) {
      accept(compact->witness, "chase-compaction");
      return result;
    }
  }

  size_t bound = std::min<size_t>(result.small_query_bound,
                                  options.witness_atoms_cap);
  result.bound_used = bound;

  // Strategy 3: homomorphic images of q inside the chase.
  if (options.enable_images) {
    WitnessSearchOutcome images = FindWitnessInQueryImages(
        q, chase, oracle, options.image_homs, target);
    result.candidates_tested += images.candidates_tested;
    if (images.answer == Tri::kYes) {
      accept(std::move(*images.witness), "images");
      return result;
    }
  }

  // Strategy 4: target-acyclic sub-instances of the chase.
  if (options.enable_subsets) {
    WitnessSearchOutcome subsets = FindWitnessInChaseSubsets(
        q, chase, oracle, bound, options.subset_budget, target);
    result.candidates_tested += subsets.candidates_tested;
    if (subsets.answer == Tri::kYes) {
      accept(std::move(*subsets.witness), "subsets");
      return result;
    }
  }

  // Strategy 5: exhaustive canonical enumeration up to the bound.
  if (options.enable_exhaustive) {
    WitnessSearchOutcome exhaustive = ExhaustiveWitnessSearch(
        q, sigma, chase, oracle, bound, options.exhaustive_budget, target);
    result.candidates_tested += exhaustive.candidates_tested;
    if (exhaustive.answer == Tri::kYes) {
      accept(std::move(*exhaustive.witness), "exhaustive");
      return result;
    }
    // A definitive NO needs: full enumeration, saturated chase, exact
    // oracle, an uncapped theoretical bound, and the α target (the
    // small-query theorems only cover α-acyclic witnesses).
    if (exhaustive.exhausted && chase.saturated && oracle.exact() &&
        bound_justified && bound >= result.small_query_bound &&
        target == acyclic::AcyclicityClass::kAlpha) {
      result.answer = SemAcAnswer::kNo;
      result.strategy = "exhaustive";
      result.exact = true;
      return result;
    }
  }

  result.answer = SemAcAnswer::kUnknown;
  result.strategy = "budget-exhausted";
  result.exact = false;
  return result;
}

}  // namespace semacyc
