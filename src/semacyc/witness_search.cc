#include "semacyc/witness_search.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <memory>
#include <unordered_set>

#include "acyclic/incremental.h"
#include "core/canonical.h"
#include "core/containment.h"
#include "core/homomorphism.h"
#include "core/incremental_hom.h"
#include "core/hypergraph.h"
#include "deps/classify.h"
#include "deps/nonrecursive.h"
#include "deps/weakly_acyclic.h"
#include "rewrite/rewrite_containment.h"

namespace semacyc {

SchemaFacts SchemaFacts::Compute(const DependencySet& sigma) {
  return Compute(sigma, sigma.HasTgds() ? Classify(sigma.tgds)
                                        : TgdClassification{});
}

SchemaFacts SchemaFacts::Compute(const DependencySet& sigma,
                                 const TgdClassification& tgd_classes) {
  SchemaFacts facts;
  // Static guarantees for the chase-based path: egd-only chases always
  // terminate; weakly acyclic tgd sets (which subsume NR and all full
  // sets) guarantee tgd-chase termination.
  if (!sigma.HasTgds()) {
    facts.chase_exact = true;
  } else if (!sigma.HasEgds() && IsWeaklyAcyclic(sigma.tgds)) {
    facts.chase_exact = true;
  }
  if (sigma.HasTgds()) {
    const TgdClassification& cls = tgd_classes;
    facts.rewritable = cls.non_recursive || cls.sticky || cls.linear;
    facts.guarded = cls.guarded;
    facts.nr_or_sticky = cls.non_recursive || cls.sticky;
  }
  // Vacuously true on an egd-free set, matching SmallQueryBound's
  // egd-only branch for Σ = ∅.
  facts.egds_bounded = IsK2Set(sigma.egds) || IsUnaryFdSet(sigma.egds);
  for (const Tgd& t : sigma.tgds) {
    for (const Atom& h : t.head()) {
      facts.tgd_head_preds.insert(h.predicate().id());
      for (const Atom& b : t.body()) {
        facts.reverse_pred_edges[h.predicate().id()].push_back(
            b.predicate().id());
      }
    }
  }
  return facts;
}

ContainmentOracle::ContainmentOracle(const ConjunctiveQuery& q,
                                     const DependencySet& sigma,
                                     const ChaseOptions& chase_options,
                                     const RewriteOptions& rewrite_options,
                                     bool try_rewriting, bool memoize)
    : ContainmentOracle(q, sigma, chase_options, rewrite_options,
                        SchemaFacts::Compute(sigma), /*rewrite_cache=*/nullptr,
                        try_rewriting, memoize, /*synchronized=*/false) {}

ContainmentOracle::ContainmentOracle(const ConjunctiveQuery& q,
                                     const DependencySet& sigma,
                                     const ChaseOptions& chase_options,
                                     const RewriteOptions& rewrite_options,
                                     const SchemaFacts& facts,
                                     RewriteCache* rewrite_cache,
                                     bool try_rewriting, bool memoize,
                                     bool synchronized)
    : q_(q),
      sigma_(sigma),
      chase_options_(chase_options),
      memoize_(memoize),
      synchronized_(synchronized) {
  exact_ = facts.chase_exact;
  // Rewriting is only worth its (possibly exponential) construction cost
  // when the chase may diverge — i.e. outside the weakly acyclic classes.
  if (try_rewriting && !exact_ && !sigma.HasEgds() && facts.rewritable) {
    std::shared_ptr<const RewriteResult> rewriting =
        rewrite_cache != nullptr
            ? rewrite_cache->GetOrCompute(q, sigma.tgds, rewrite_options)
            : std::make_shared<const RewriteResult>(
                  RewriteToUcq(q, sigma.tgds, rewrite_options));
    if (rewriting->complete) {
      rewriting_ = std::move(rewriting);
      exact_ = true;
    }
  }
  // Predicate-reachability prefilter (fast path only). Sound for kNo only
  // when the candidate's chase cannot fail, i.e. Σ has no egds: tgds never
  // invent predicates outside the body→head predicate graph, so a q
  // predicate unreachable from every candidate predicate can never appear
  // in chase(candidate, Σ).
  if (memoize_ && !sigma.HasEgds()) {
    // Chase-free degeneration: tgds only ever add atoms whose predicate is
    // some tgd head predicate. If none of those occur in q, the
    // q-homomorphism into chase(candidate, Σ) can only use candidate's own
    // atoms, so containment is the classical Chandra–Merlin test.
    chase_free_ = true;
    for (const Atom& a : q.body()) {
      if (facts.tgd_head_preds.count(a.predicate().id())) {
        chase_free_ = false;
        break;
      }
    }
    if (chase_free_) {
      // Compile q once for the per-candidate check: dense variable
      // indices, and a greedy connected atom order (most already-bound
      // variables first, head variables counting as pre-bound) so the
      // backtracking stays anchored.
      std::unordered_map<Term, int, TermHash> vidx;
      for (const Atom& a : q.body()) {
        for (Term t : a.args()) {
          if (t.IsVariable()) {
            vidx.emplace(t, static_cast<int>(vidx.size()));
          }
        }
      }
      cm_num_vars_ = vidx.size();
      for (Term h : q.head()) {
        cm_head_var_.push_back(h.IsVariable() ? vidx.at(h) : -1);
      }
      std::vector<char> seen(cm_num_vars_, 0);
      for (Term h : q.head()) {
        if (h.IsVariable()) seen[static_cast<size_t>(vidx.at(h))] = 1;
      }
      std::vector<bool> used(q.body().size(), false);
      for (size_t step = 0; step < q.body().size(); ++step) {
        size_t best = q.body().size();
        int best_score = -1;
        for (size_t i = 0; i < q.body().size(); ++i) {
          if (used[i]) continue;
          int score = 0;
          for (Term t : q.body()[i].args()) {
            if (!t.IsVariable() || seen[static_cast<size_t>(vidx.at(t))]) {
              ++score;
            }
          }
          if (score > best_score) {
            best_score = score;
            best = i;
          }
        }
        used[best] = true;
        const Atom& a = q.body()[best];
        CmAtom ca;
        ca.pred = a.predicate();
        for (Term t : a.args()) {
          if (t.IsVariable()) {
            int v = vidx.at(t);
            ca.var_at.push_back(v);
            ca.const_at.push_back(Term());
            seen[static_cast<size_t>(v)] = 1;
          } else {
            ca.var_at.push_back(-1);
            ca.const_at.push_back(t);
          }
        }
        cm_atoms_.push_back(std::move(ca));
      }
    }
    prefilter_ = true;
    std::unordered_set<uint32_t> q_preds;
    for (const Atom& a : q.body()) q_preds.insert(a.predicate().id());
    for (uint32_t p : q_preds) {
      std::unordered_set<uint32_t> sources;
      std::vector<uint32_t> stack = {p};
      sources.insert(p);
      while (!stack.empty()) {
        uint32_t cur = stack.back();
        stack.pop_back();
        auto it = facts.reverse_pred_edges.find(cur);
        if (it == facts.reverse_pred_edges.end()) continue;
        for (uint32_t src : it->second) {
          if (sources.insert(src).second) stack.push_back(src);
        }
      }
      q_pred_sources_.push_back(std::move(sources));
    }
  }
}

bool ContainmentOracle::PassesPredicateFilter(
    const ConjunctiveQuery& candidate) const {
  for (const auto& sources : q_pred_sources_) {
    bool reachable = false;
    for (const Atom& a : candidate.body()) {
      if (sources.count(a.predicate().id())) {
        reachable = true;
        break;
      }
    }
    if (!reachable) return false;
  }
  return true;
}

Tri ContainmentOracle::Decide(const ConjunctiveQuery& candidate,
                              CancelToken* cancel) const {
  if (rewriting_ != nullptr) {
    // Rewriting evaluation is one frozen-query UCQ check — cheap relative
    // to the per-candidate poll granularity, so it runs to completion.
    return RewriteContained(candidate, *rewriting_);
  }
  ChaseOptions options = chase_options_;
  options.cancel = cancel;
  return ContainedUnder(candidate, q_, sigma_, options);
}

Tri ContainmentOracle::DecideChaseFree(
    const ConjunctiveQuery& candidate) const {
  // Chandra–Merlin against the candidate body itself: its variables act as
  // the frozen canonical constants (rigid instance terms), no freezing or
  // chase needed. Exact in both directions. Runs the q-side compiled at
  // construction (cm_atoms_) over a dense binding array — this is the
  // per-candidate inner loop of exhaustive witness search, so it must not
  // allocate or hash. Scratch is thread_local (retaining capacity across
  // calls) so concurrent workers of a parallel search never contend: the
  // compiled q-side they read is immutable.
  thread_local std::vector<Term> binding;
  thread_local std::vector<int> undo;
  binding.assign(cm_num_vars_, Term());
  for (size_t i = 0; i < q_.head().size(); ++i) {
    Term c = candidate.head()[i];
    int v = cm_head_var_[i];
    if (v < 0) {
      if (q_.head()[i] != c) return Tri::kNo;
      continue;
    }
    Term& bound = binding[static_cast<size_t>(v)];
    if (bound.IsValid()) {
      if (bound != c) return Tri::kNo;
    } else {
      bound = c;
    }
  }
  undo.clear();
  return CmDfs(candidate.body(), 0, binding, undo) ? Tri::kYes : Tri::kNo;
}

bool ContainmentOracle::CmDfs(const std::vector<Atom>& target_atoms,
                              size_t depth, std::vector<Term>& binding,
                              std::vector<int>& undo) const {
  if (depth == cm_atoms_.size()) return true;
  const CmAtom& a = cm_atoms_[depth];
  for (const Atom& t : target_atoms) {
    if (t.predicate() != a.pred) continue;
    size_t undo_mark = undo.size();
    bool ok = true;
    for (size_t i = 0; i < a.var_at.size() && ok; ++i) {
      int v = a.var_at[i];
      if (v < 0) {
        ok = a.const_at[i] == t.arg(i);
        continue;
      }
      Term& bound = binding[static_cast<size_t>(v)];
      if (bound.IsValid()) {
        ok = bound == t.arg(i);
        continue;
      }
      bound = t.arg(i);
      undo.push_back(v);
    }
    if (ok && CmDfs(target_atoms, depth + 1, binding, undo)) return true;
    while (undo.size() > undo_mark) {
      binding[static_cast<size_t>(undo.back())] = Term();
      undo.pop_back();
    }
  }
  return false;
}

Tri ContainmentOracle::ContainedInQ(const ConjunctiveQuery& candidate,
                                    CancelToken* cancel) const {
  SEMACYC_FAILPOINT("oracle.candidate", cancel);
  if (cancel != nullptr && cancel->Poll()) return Tri::kUnknown;
  // Everything up to the memo reads only state frozen at construction
  // (plus relaxed counter bumps), so synchronized oracles run these
  // paths — the per-candidate inner loops of the parallel strategies —
  // without touching the lock.
  if (!memoize_) return Decide(candidate, cancel);
  if (prefilter_ && !PassesPredicateFilter(candidate)) {
    prefiltered_.fetch_add(1, std::memory_order_relaxed);
    return Tri::kNo;
  }
  // Chase-free candidates decide in one homomorphism test — cheaper than
  // the memo's own bookkeeping, so skip the cache entirely.
  if (chase_free_) return DecideChaseFree(candidate);
  if (!synchronized_) return ContainedInQMemo(candidate, cancel);
  std::lock_guard<std::mutex> lock(mu_);
  return ContainedInQMemo(candidate, cancel);
}

size_t ContainmentOracle::cache_hits() const {
  return hits_.load(std::memory_order_relaxed);
}

size_t ContainmentOracle::cache_misses() const {
  return misses_.load(std::memory_order_relaxed);
}

size_t ContainmentOracle::prefiltered() const {
  return prefiltered_.load(std::memory_order_relaxed);
}

size_t ContainmentOracle::memo_bytes() const {
  return memo_bytes_.load(std::memory_order_relaxed);
}

Tri ContainmentOracle::ContainedInQMemo(const ConjunctiveQuery& candidate,
                                        CancelToken* cancel) const {
  // Sound across isomorphism: candidate ⊆Σ q is invariant under bijective
  // variable renamings that preserve the head position-wise — exactly what
  // AreIsomorphic certifies after the fingerprint pre-filter.
  auto& bucket = memo_[CanonicalFingerprint(candidate)];
  for (const auto& [cached, answer] : bucket) {
    if (AreIsomorphic(cached, candidate)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return answer;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  Tri answer = Decide(candidate, cancel);
  // An answer computed under a fired token may rest on a truncated chase
  // or hom search: never memoize it, so a later uncancelled call (or the
  // post-abort parity re-decide) recomputes it exactly.
  if (cancel != nullptr && cancel->triggered()) return Tri::kUnknown;
  // Running memo footprint for honest cache accounting: the candidate
  // copy plus pair/bucket bookkeeping (an empty bucket also costs a map
  // node, folded into the per-entry constant).
  memo_bytes_.fetch_add(candidate.ApproxBytes() +
                            sizeof(std::pair<ConjunctiveQuery, Tri>) +
                            4 * sizeof(void*),
                        std::memory_order_relaxed);
  bucket.push_back({candidate, answer});
  return answer;
}

namespace {

/// Distinct terms that every candidate sub-instance must mention so the
/// head is expressible.
std::vector<Term> RequiredHeadTerms(const QueryChaseResult& chase) {
  std::vector<Term> out;
  for (Term t : chase.frozen_head) {
    if (t.IsConstant() && !t.IsFrozenNull()) continue;  // genuine constant
    if (std::find(out.begin(), out.end(), t) == out.end()) out.push_back(t);
  }
  return out;
}

/// Candidate dedup modulo the renaming-invariant key. The fast path keys
/// on a 128-bit salted fingerprint pair of the same invariant the seed's
/// StructuralKey dedup used (which likewise never resolved its own
/// conflations) — the conflation probability a dropped candidate rides
/// on is ~n²/2¹²⁸, negligible against every other failure mode. Legacy
/// mode keeps the seed's string keys.
class CandidateDedup {
 public:
  explicit CandidateDedup(bool legacy) : legacy_(legacy) {}

  /// True iff the candidate was not seen before.
  bool Insert(const ConjunctiveQuery& q) {
    if (legacy_) return strings_.insert(StructuralKey(q)).second;
    return keys_.insert(CanonicalFingerprint128(q)).second;
  }

 private:
  using Key128 = std::pair<uint64_t, uint64_t>;
  struct Key128Hash {
    size_t operator()(const Key128& k) const {
      return static_cast<size_t>(k.first ^ (k.second * 0x9e3779b97f4a7c15ull));
    }
  };
  bool legacy_;
  std::unordered_set<std::string> strings_;
  std::unordered_set<Key128, Key128Hash> keys_;
};

/// Enumeration signature of the exhaustive strategy: the predicates that
/// can occur in chase(q,Σ), the constants available to candidates, and
/// the ordered fresh-variable pool with its index. The construction
/// ORDER of these vectors fixes the enumeration order — the sequential
/// enumerator and the parallel unit plan must agree on it exactly (the
/// parity suite pins this), hence the single shared builder.
struct EnumSignature {
  std::vector<Predicate> predicates;
  std::vector<Term> constants;
  std::vector<Term> pool;
  std::unordered_map<Term, size_t, TermHash> pool_index;

  EnumSignature(const ConjunctiveQuery& q, const DependencySet& sigma,
                size_t max_atoms) {
    // Predicates of q plus head predicates of Σ's tgds (only those can
    // occur in chase(q,Σ), hence in any witness); first-seen order.
    std::unordered_set<uint32_t> seen;
    for (const Atom& a : q.body()) {
      if (seen.insert(a.predicate().id()).second) {
        predicates.push_back(a.predicate());
      }
    }
    for (const Tgd& t : sigma.tgds) {
      for (const Atom& a : t.head()) {
        if (seen.insert(a.predicate().id()).second) {
          predicates.push_back(a.predicate());
        }
      }
    }
    // Constants available to candidates: those of q and Σ.
    std::unordered_set<Term> cseen;
    for (const Atom& a : q.body()) {
      for (Term t : a.args()) {
        if (t.IsConstant() && cseen.insert(t).second) constants.push_back(t);
      }
    }
    for (const Tgd& t : sigma.tgds) {
      for (const Atom& a : t.body()) {
        for (Term arg : a.args()) {
          if (arg.IsConstant() && cseen.insert(arg).second) {
            constants.push_back(arg);
          }
        }
      }
      for (const Atom& a : t.head()) {
        for (Term arg : a.args()) {
          if (arg.IsConstant() && cseen.insert(arg).second) {
            constants.push_back(arg);
          }
        }
      }
    }
    int max_arity = 1;
    for (Predicate p : predicates) {
      max_arity = std::max(max_arity, p.arity());
    }
    // Variable pool: enough for max_atoms atoms of maximal arity.
    size_t n = max_atoms * static_cast<size_t>(max_arity);
    for (size_t i = 0; i < n; ++i) {
      pool.push_back(Term::Variable("w$" + std::to_string(i)));
      pool_index.emplace(pool.back(), i);
    }
  }
};

using Key128 = std::pair<uint64_t, uint64_t>;
struct Key128Hash {
  size_t operator()(const Key128& k) const {
    return static_cast<size_t>(k.first ^ (k.second * 0x9e3779b97f4a7c15ull));
  }
};

/// One candidate test inside a parallel unit, recorded at per-unit dedup
/// insert time (even when the shared NO-set suppressed the oracle call).
/// The commit-time replay walks these in unit order through one global
/// dedup set, reconstructing the sequential candidates_tested exactly.
struct CandidateEvent {
  uint64_t local_visit;
  Key128 key;
};

/// Sequential-equivalent candidates_tested from per-unit test events:
/// committed units count in full, the final unit up to its cutoff
/// (found_at for a win, the unit's allowance for a truncation); a global
/// dedup replay makes per-unit re-tests of earlier-seen candidates count
/// exactly once, like the sequential global dedup.
size_t ReplayCandidatesTested(
    const ParallelSearchPool::Result& res,
    const std::vector<std::vector<CandidateEvent>>& unit_events) {
  std::unordered_set<Key128, Key128Hash> seen;
  size_t tested = 0;
  auto count_unit = [&](size_t u, uint64_t cutoff) {
    for (const CandidateEvent& e : unit_events[u]) {
      if (e.local_visit > cutoff) break;  // events ascend in local visit
      if (seen.insert(e.key).second) ++tested;
    }
  };
  for (size_t u = 0; u < res.committed_units; ++u) {
    count_unit(u, ~uint64_t{0});
  }
  if (res.final_unit != ParallelSearchPool::Result::kNoUnit) {
    count_unit(res.final_unit, res.final_unit_cutoff);
  }
  return tested;
}

}  // namespace

WitnessSearchOutcome FindWitnessInQueryImages(const ConjunctiveQuery& q,
                                              const QueryChaseResult& chase,
                                              const ContainmentOracle& oracle,
                                              size_t max_homs,
                                              acyclic::AcyclicityClass target,
                                              const WitnessTuning& tuning,
                                              CancelToken* cancel) {
  WitnessSearchOutcome outcome;
  Substitution fixed;
  for (size_t i = 0; i < q.head().size(); ++i) {
    Term h = q.head()[i];
    if (!h.IsVariable()) continue;
    fixed.emplace(h, chase.frozen_head[i]);
  }
  HomOptions options;
  options.fixed = fixed;
  options.max_solutions = max_homs;
  options.cancel = cancel;
  HomResult homs = FindHomomorphisms(q.body(), chase.instance, options);
  outcome.exhausted = !homs.budget_exhausted &&
                      (max_homs == 0 || homs.solutions.size() < max_homs);
  CandidateDedup tested(tuning.legacy);
  for (const Substitution& h : homs.solutions) {
    if (cancel != nullptr && cancel->Poll()) {
      outcome.exhausted = false;
      return outcome;
    }
    Instance image;
    for (const Atom& a : q.body()) image.Insert(Apply(h, a));
    if (!MeetsAcyclicityClass(image.atoms(), ConnectingTerms::kAllTerms,
                              target)) {
      continue;
    }
    ConjunctiveQuery candidate = QueryFromInstance(image, chase.frozen_head);
    if (!tested.Insert(candidate)) continue;
    ++outcome.candidates_tested;
    if (oracle.ContainedInQ(candidate, cancel) == Tri::kYes) {
      outcome.answer = Tri::kYes;
      outcome.witness = std::move(candidate);
      return outcome;
    }
  }
  if (cancel != nullptr && cancel->triggered()) outcome.exhausted = false;
  return outcome;
}

WitnessSearchOutcome FindWitnessInChaseSubsets(const ConjunctiveQuery& q,
                                               const QueryChaseResult& chase,
                                               const ContainmentOracle& oracle,
                                               size_t max_atoms, size_t budget,
                                               acyclic::AcyclicityClass target,
                                               const WitnessTuning& tuning,
                                               CancelToken* cancel) {
  (void)q;  // the chase already encodes q; kept for interface symmetry
  WitnessSearchOutcome outcome;
  const auto& atoms = chase.instance.atoms();
  const size_t m = atoms.size();
  std::vector<Term> required = RequiredHeadTerms(chase);
  CandidateDedup tested(tuning.legacy);
  size_t visits = 0;
  bool truncated = false;

  // Incremental machinery (fast path): connecting vertices per chase atom
  // interned once up front, a push/pop classifier threaded along the DFS
  // path, and required-term coverage maintained by counters — so a DFS
  // node costs a component-local re-check instead of an Instance build
  // plus a from-scratch hypergraph classification.
  std::vector<std::vector<int>> atom_verts;
  std::vector<std::vector<size_t>> atom_required;
  acyclic::IncrementalClassifier inc(target);
  std::vector<int> req_cover(required.size(), 0);
  size_t covered = 0;
  if (!tuning.legacy) {
    atom_verts.resize(m);
    atom_required.resize(m);
    std::unordered_map<Term, int, TermHash> vertex_of;
    for (size_t i = 0; i < m; ++i) {
      // kAllTerms: in a frozen-query chase every term connects.
      for (Term t : atoms[i].DistinctTerms()) {
        atom_verts[i].push_back(
            vertex_of.emplace(t, static_cast<int>(vertex_of.size()))
                .first->second);
      }
      for (size_t k = 0; k < required.size(); ++k) {
        if (atoms[i].Mentions(required[k])) atom_required[i].push_back(k);
      }
    }
  }

  // Stable variable pool for inverse freezing on the fast path: fresh
  // per-candidate names would intern a new symbol for every variable of
  // every candidate; reusing "s$<i>" across candidates interns each name
  // exactly once per process.
  std::vector<Term> var_pool;
  std::vector<uint32_t> subset;
  auto pooled_query = [&]() {
    Substitution rename;
    size_t next_var = 0;
    auto var_of = [&](Term t) -> Term {
      if (t.IsConstant() && !t.IsFrozenNull()) return t;  // real constant
      auto it = rename.find(t);
      if (it != rename.end()) return it->second;
      if (next_var == var_pool.size()) {
        var_pool.push_back(
            Term::Variable("s$" + std::to_string(var_pool.size())));
      }
      Term v = var_pool[next_var++];
      rename.emplace(t, v);
      return v;
    };
    std::vector<Atom> body;
    body.reserve(subset.size());
    for (uint32_t i : subset) {
      const Atom& a = atoms[i];
      std::vector<Term> args;
      args.reserve(a.arity());
      for (Term t : a.args()) args.push_back(var_of(t));
      body.emplace_back(a.predicate(), std::move(args));
    }
    std::vector<Term> head;
    head.reserve(chase.frozen_head.size());
    for (Term t : chase.frozen_head) head.push_back(var_of(t));
    return ConjunctiveQuery(std::move(head), std::move(body));
  };

  auto test_candidate = [&](ConjunctiveQuery candidate) -> bool {
    if (!tested.Insert(candidate)) return false;
    ++outcome.candidates_tested;
    if (oracle.ContainedInQ(candidate, cancel) == Tri::kYes) {
      outcome.answer = Tri::kYes;
      outcome.witness = std::move(candidate);
      return true;
    }
    return false;
  };

  // DFS over index-increasing subsets, testing each acyclic subset that
  // covers the required terms. Small subsets are explored first through
  // iterative deepening on the subset size.
  std::function<bool(size_t, size_t)> dfs = [&](size_t next,
                                                size_t limit) -> bool {
    SEMACYC_FAILPOINT("subsets.visit", cancel);
    if (++visits > budget) {
      truncated = true;
      return false;
    }
    if (cancel != nullptr && cancel->Poll()) {
      truncated = true;  // a fired token truncates like an exhausted budget
      return false;
    }
    if (!subset.empty()) {
      if (tuning.legacy) {
        Instance sub = chase.instance.Restrict(subset);
        bool covers = true;
        for (Term t : required) {
          if (sub.AtomsMentioning(t).empty()) {
            covers = false;
            break;
          }
        }
        if (covers &&
            MeetsAcyclicityClass(sub.atoms(), ConnectingTerms::kAllTerms,
                                 target) &&
            test_candidate(QueryFromInstance(sub, chase.frozen_head))) {
          return true;
        }
      } else if (covered == required.size() && inc.Meets() &&
                 test_candidate(pooled_query())) {
        return true;
      }
    }
    if (subset.size() >= limit) return false;
    for (size_t i = next; i < m; ++i) {
      subset.push_back(static_cast<uint32_t>(i));
      bool pruned = false;
      if (!tuning.legacy) {
        for (size_t k : atom_required[i]) {
          if (req_cover[k]++ == 0) ++covered;
        }
        inc.PushEdge(atom_verts[i]);
        // β/γ/Berge are hereditary: a violated prefix can never recover,
        // so the whole subtree (including this subset itself) is dead.
        pruned = inc.CannotRecover();
      }
      bool found = !pruned && dfs(i + 1, limit);
      if (!tuning.legacy) {
        inc.PopEdge();
        for (size_t k : atom_required[i]) {
          if (--req_cover[k] == 0) --covered;
        }
      }
      subset.pop_back();
      if (found) return true;
      if (truncated) return false;
    }
    return false;
  };

  bool found = false;
  for (size_t limit = 1; limit <= max_atoms && !truncated; ++limit) {
    subset.clear();
    if (dfs(0, limit)) {
      found = true;
      break;
    }
  }
  // A token fired during the last oracle check truncates the search even
  // when no later DFS poll ran to observe it.
  if (cancel != nullptr && cancel->triggered()) truncated = true;
  if (!found) outcome.exhausted = !truncated;
  outcome.visits = visits;
  outcome.classifier_pushes = inc.pushes();
  outcome.classifier_pops = inc.pops();
  return outcome;
}

namespace {

/// Shared read-only view of the subsets search space, precomputed once by
/// the orchestrator. The vertex interning fixes one vertex numbering all
/// workers share; nothing here mutates after construction.
struct SubsetsSpace {
  const std::vector<Atom>* atoms = nullptr;
  std::vector<Term> required;
  std::vector<std::vector<int>> atom_verts;
  std::vector<std::vector<size_t>> atom_required;
};

/// One subtree-root unit of the subsets DFS, in sequential visit order:
/// the root visit of an iterative-deepening round (first < 0), or the
/// dfs subtree rooted at subset = {first} within that round.
struct SubsetsUnit {
  size_t limit;
  int64_t first;
};

/// Per-worker subsets search state: own classifier session, own coverage
/// counters, own child cancel token, own variable pool — sharing only the
/// immutable SubsetsSpace, the synchronized oracle, and the NO-only
/// fingerprint set. Failpoints take the PARENT token (RequestCancel is
/// thread-safe; a fired steal/replay/visit failpoint aborts the whole
/// decision, like the sequential strategies); per-visit polls use the
/// child (CancelToken::Poll is single-caller).
class SubsetsWorker {
 public:
  SubsetsWorker(const SubsetsSpace& space, const QueryChaseResult& chase,
                const ContainmentOracle& oracle,
                acyclic::AcyclicityClass target, CancelToken* parent,
                ConcurrentFingerprintSet* shared_no)
      : space_(space),
        chase_(chase),
        oracle_(oracle),
        parent_(parent),
        shared_no_(shared_no),
        inc_(target),
        req_cover_(space.required.size(), 0) {
    if (parent != nullptr) child_.SetParent(parent);
  }

  SearchUnitOutcome RunUnit(const SubsetsUnit& u,
                            ParallelSearchPool::WorkerContext& ctx,
                            std::vector<CandidateEvent>* events,
                            std::optional<ConjunctiveQuery>* witness_slot) {
    ctx_ = &ctx;
    events_ = events;
    witness_slot_ = witness_slot;
    visits_ = 0;
    truncated_ = false;
    found_ = false;
    found_at_ = 0;
    unit_seen_.clear();
    SEMACYC_FAILPOINT("parallel.steal", parent_);
    if (u.first < 0) {
      // The round's root visit: subset is empty, nothing is tested.
      Visit();
    } else {
      // Replay the stolen prefix: push the first atom into the fresh
      // session exactly as the sequential child loop would, pruned
      // prefixes yielding zero-visit exhausted units.
      SEMACYC_FAILPOINT("parallel.replay", parent_);
      ctx.NoteReplay();
      const size_t i = static_cast<size_t>(u.first);
      subset_.push_back(static_cast<uint32_t>(i));
      for (size_t k : space_.atom_required[i]) {
        if (req_cover_[k]++ == 0) ++covered_;
      }
      inc_.PushEdge(space_.atom_verts[i]);
      if (!inc_.CannotRecover()) Dfs(i + 1, u.limit);
      inc_.PopEdge();
      for (size_t k : space_.atom_required[i]) {
        if (--req_cover_[k] == 0) --covered_;
      }
      subset_.pop_back();
    }
    // A token fired during the unit's last oracle check may have hidden
    // an answer (kUnknown reads as "not contained"); never let such a
    // unit count as exhausted — mirrors the sequential post-run check.
    if (child_.triggered()) truncated_ = true;
    SearchUnitOutcome out;
    out.visits = visits_;
    out.found = found_;
    out.found_at = found_at_;
    out.exhausted = !found_ && !truncated_;
    return out;
  }

  size_t classifier_pushes() const { return inc_.pushes(); }
  size_t classifier_pops() const { return inc_.pops(); }

 private:
  /// One DFS node: failpoint, allowance cap, visit count, cancel poll —
  /// the sequential visit prefix with Cap() standing in for the budget.
  /// False stops the unit (cap or cancel → not exhausted).
  bool Visit() {
    SEMACYC_FAILPOINT("subsets.visit", parent_);
    if (visits_ >= ctx_->Cap()) {
      truncated_ = true;
      return false;
    }
    ++visits_;
    if (child_.Poll()) {
      truncated_ = true;
      return false;
    }
    return true;
  }

  bool Dfs(size_t next, size_t limit) {
    if (!Visit()) return false;
    if (!subset_.empty() && covered_ == space_.required.size() &&
        inc_.Meets() && TestSubset()) {
      return true;
    }
    if (subset_.size() >= limit) return false;
    const size_t m = space_.atoms->size();
    for (size_t i = next; i < m; ++i) {
      subset_.push_back(static_cast<uint32_t>(i));
      for (size_t k : space_.atom_required[i]) {
        if (req_cover_[k]++ == 0) ++covered_;
      }
      inc_.PushEdge(space_.atom_verts[i]);
      bool found = !inc_.CannotRecover() && Dfs(i + 1, limit);
      inc_.PopEdge();
      for (size_t k : space_.atom_required[i]) {
        if (--req_cover_[k] == 0) --covered_;
      }
      subset_.pop_back();
      if (found) return true;
      if (truncated_) return false;
    }
    return false;
  }

  bool TestSubset() {
    ConjunctiveQuery candidate = PooledQuery();
    Key128 key = CanonicalFingerprint128(candidate);
    // Per-unit dedup decides event recording; the shared NO-set only
    // suppresses the oracle CALL for already-refuted candidates (answers
    // are invariant — kYes stops the search, kUnknown is never inserted).
    if (!unit_seen_.insert(key).second) return false;
    events_->push_back({visits_, key});
    if (shared_no_->Contains(key)) return false;
    Tri r = oracle_.ContainedInQ(candidate, &child_);
    if (r == Tri::kYes) {
      found_ = true;
      found_at_ = visits_;
      *witness_slot_ = std::move(candidate);
      return true;
    }
    if (r == Tri::kNo) shared_no_->Insert(key);
    return false;
  }

  /// The sequential strategy's pooled inverse freezing, per worker: the
  /// "s$<i>" names intern to the same process-wide Terms, so candidates
  /// (and the published witness) are bitwise-identical to the sequential
  /// build for the same subset.
  ConjunctiveQuery PooledQuery() {
    Substitution rename;
    size_t next_var = 0;
    auto var_of = [&](Term t) -> Term {
      if (t.IsConstant() && !t.IsFrozenNull()) return t;  // real constant
      auto it = rename.find(t);
      if (it != rename.end()) return it->second;
      if (next_var == var_pool_.size()) {
        var_pool_.push_back(
            Term::Variable("s$" + std::to_string(var_pool_.size())));
      }
      Term v = var_pool_[next_var++];
      rename.emplace(t, v);
      return v;
    };
    std::vector<Atom> body;
    body.reserve(subset_.size());
    for (uint32_t i : subset_) {
      const Atom& a = (*space_.atoms)[i];
      std::vector<Term> args;
      args.reserve(a.arity());
      for (Term t : a.args()) args.push_back(var_of(t));
      body.emplace_back(a.predicate(), std::move(args));
    }
    std::vector<Term> head;
    head.reserve(chase_.frozen_head.size());
    for (Term t : chase_.frozen_head) head.push_back(var_of(t));
    return ConjunctiveQuery(std::move(head), std::move(body));
  }

  const SubsetsSpace& space_;
  const QueryChaseResult& chase_;
  const ContainmentOracle& oracle_;
  CancelToken* parent_;
  ConcurrentFingerprintSet* shared_no_;
  CancelToken child_;
  acyclic::IncrementalClassifier inc_;
  std::vector<int> req_cover_;
  size_t covered_ = 0;
  std::vector<uint32_t> subset_;
  std::vector<Term> var_pool_;
  std::unordered_set<Key128, Key128Hash> unit_seen_;
  ParallelSearchPool::WorkerContext* ctx_ = nullptr;
  std::vector<CandidateEvent>* events_ = nullptr;
  std::optional<ConjunctiveQuery>* witness_slot_ = nullptr;
  uint64_t visits_ = 0;
  bool truncated_ = false;
  bool found_ = false;
  uint64_t found_at_ = 0;
};

}  // namespace

WitnessSearchOutcome ParallelFindWitnessInChaseSubsets(
    const ConjunctiveQuery& q, const QueryChaseResult& chase,
    const ContainmentOracle& oracle, size_t max_atoms, size_t budget,
    size_t threads, acyclic::AcyclicityClass target,
    const WitnessTuning& tuning, CancelToken* cancel) {
  if (threads <= 1 || tuning.legacy) {
    return FindWitnessInChaseSubsets(q, chase, oracle, max_atoms, budget,
                                     target, tuning, cancel);
  }
  (void)q;  // the chase already encodes q; kept for interface symmetry
  WitnessSearchOutcome outcome;
  SubsetsSpace space;
  space.atoms = &chase.instance.atoms();
  space.required = RequiredHeadTerms(chase);
  const size_t m = space.atoms->size();
  space.atom_verts.resize(m);
  space.atom_required.resize(m);
  {
    std::unordered_map<Term, int, TermHash> vertex_of;
    for (size_t i = 0; i < m; ++i) {
      // kAllTerms: in a frozen-query chase every term connects.
      for (Term t : (*space.atoms)[i].DistinctTerms()) {
        space.atom_verts[i].push_back(
            vertex_of.emplace(t, static_cast<int>(vertex_of.size()))
                .first->second);
      }
      for (size_t k = 0; k < space.required.size(); ++k) {
        if ((*space.atoms)[i].Mentions(space.required[k])) {
          space.atom_required[i].push_back(k);
        }
      }
    }
  }
  // Ordered unit list = the sequential visit order: per deepening round,
  // the root visit, then one subtree per first chase atom.
  std::vector<SubsetsUnit> units;
  for (size_t limit = 1; limit <= max_atoms; ++limit) {
    units.push_back({limit, -1});
    for (size_t i = 0; i < m; ++i) {
      units.push_back({limit, static_cast<int64_t>(i)});
    }
  }
  ConcurrentFingerprintSet shared_no;
  std::vector<std::vector<CandidateEvent>> unit_events(units.size());
  std::vector<std::optional<ConjunctiveQuery>> unit_witness(units.size());
  ParallelSearchPool pool(units.size(), threads, budget);
  std::vector<std::unique_ptr<SubsetsWorker>> workers(pool.workers());
  ParallelSearchPool::Result res =
      pool.Run([&](size_t u, ParallelSearchPool::WorkerContext& ctx) {
        std::unique_ptr<SubsetsWorker>& w = workers[ctx.worker()];
        if (w == nullptr) {
          w = std::make_unique<SubsetsWorker>(space, chase, oracle, target,
                                              cancel, &shared_no);
        }
        return w->RunUnit(units[u], ctx, &unit_events[u], &unit_witness[u]);
      });
  bool truncated = res.truncated;
  // A token fired during the last oracle check truncates the search even
  // when no later DFS poll ran to observe it.
  if (cancel != nullptr && cancel->triggered()) truncated = true;
  if (res.found) {
    outcome.answer = Tri::kYes;
    outcome.witness = std::move(unit_witness[res.final_unit]);
  } else {
    outcome.exhausted = !truncated;
  }
  outcome.visits = res.official_visits;
  outcome.candidates_tested = ReplayCandidatesTested(res, unit_events);
  for (const auto& w : workers) {
    if (w == nullptr) continue;
    outcome.classifier_pushes += w->classifier_pushes();
    outcome.classifier_pops += w->classifier_pops();
  }
  outcome.parallel = pool.stats();
  return outcome;
}

namespace {

/// Fixed total order on atoms for canonical-growth enumeration: predicate
/// id, then argument handles lexicographically. The allocation-free
/// replacement for comparing EncodeAtom strings.
bool AtomOrderLess(const Atom& a, const Atom& b) {
  if (a.predicate() != b.predicate()) {
    return a.predicate().id() < b.predicate().id();
  }
  for (size_t i = 0; i < a.arity() && i < b.arity(); ++i) {
    if (a.arg(i) != b.arg(i)) {
      return a.arg(i).raw_bits() < b.arg(i).raw_bits();
    }
  }
  return a.arity() < b.arity();
}

/// Per-head-pattern invariants of the exhaustive enumeration,
/// precomputed by the parallel plan in the sequential pattern order.
struct HpPlan {
  std::vector<Term> head;
  Substitution fixed;
  std::vector<Term> choices;
};

enum class ExhUnitKind {
  kWholeHp,    // root Search() with empty prefix (coarse fallback)
  kRootVisit,  // the root visit alone (tests nothing: atoms_ is empty)
  kA1Visit,    // the [a1] node alone: one visit + one candidate test
  kA1Subtree,  // full subtree rooted at [a1] (coarse fallback)
  kA2Subtree,  // full subtree rooted at [a1, a2]
};

struct ExhUnit {
  uint32_t hp;
  ExhUnitKind kind;
  std::optional<Atom> a1;
  std::optional<Atom> a2;
};

struct ExhaustivePlan {
  std::vector<HpPlan> hps;
  std::vector<ExhUnit> units;
};

/// Builds the ordered unit plan combinatorially, without running any
/// search or session: head patterns in restricted-growth order; per
/// pattern the root visit, then per first atom the [a1] node, then per
/// valid second atom the full [a1,a2] subtree — the concatenation is
/// exactly the sequential preorder. Classifier/hom pruning is NOT
/// evaluated here; pruned prefixes become zero-visit units discovered by
/// whichever worker claims them. Past kSplitBudget units the
/// decomposition degrades to whole-[a1] and then whole-pattern units —
/// granularity only, the commit protocol keeps the official outcome
/// exact at any split.
ExhaustivePlan BuildExhaustivePlan(const ConjunctiveQuery& q,
                                   const QueryChaseResult& chase,
                                   const EnumSignature& sig,
                                   size_t max_atoms) {
  constexpr size_t kSplitBudget = 4096;
  ExhaustivePlan plan;
  // Head patterns: set partitions of head positions refining the equality
  // pattern of the frozen head (mirrors EnumerateHeadPatterns, including
  // the "h$<b>" block-variable names — identical interned Terms).
  const size_t k = q.head().size();
  std::vector<int> block(k, -1);
  std::function<void(size_t, int)> patterns = [&](size_t pos, int num_blocks) {
    if (pos == k) {
      HpPlan hp;
      hp.head.resize(k);
      std::vector<Term> block_var(static_cast<size_t>(num_blocks));
      for (int b = 0; b < num_blocks; ++b) {
        block_var[b] = Term::Variable("h$" + std::to_string(b));
      }
      for (size_t i = 0; i < k; ++i) hp.head[i] = block_var[block[i]];
      for (size_t i = 0; i < k; ++i) {
        hp.fixed[hp.head[i]] = chase.frozen_head[i];
      }
      // ArgChoices, verbatim: deduped head variables, the pool, constants.
      std::unordered_set<Term> seen;
      for (Term h : hp.head) {
        if (seen.insert(h).second) hp.choices.push_back(h);
      }
      for (Term v : sig.pool) hp.choices.push_back(v);
      for (Term c : sig.constants) hp.choices.push_back(c);
      plan.hps.push_back(std::move(hp));
      return;
    }
    for (int b = 0; b <= num_blocks; ++b) {
      bool ok = true;
      for (size_t j = 0; j < pos; ++j) {
        if (block[j] == b && chase.frozen_head[j] != chase.frozen_head[pos]) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      block[pos] = b;
      patterns(pos + 1, std::max(num_blocks, b + 1));
      block[pos] = -1;
    }
  };
  patterns(0, 0);

  // Argument-tuple enumeration, exactly as BuildArgs walks it: choices in
  // order, fresh pool variables introduced in order via the `used`
  // frontier threaded down the positions.
  auto for_each_atom = [&](Predicate p, const std::vector<Term>& choices,
                           size_t used0,
                           const std::function<void(Atom&&, size_t)>& fn) {
    std::vector<Term> args(static_cast<size_t>(p.arity()));
    std::function<void(size_t, size_t)> go = [&](size_t pos, size_t used) {
      if (pos == args.size()) {
        fn(Atom(p, args), used);
        return;
      }
      for (Term t : choices) {
        size_t next_used = used;
        auto it = sig.pool_index.find(t);
        if (it != sig.pool_index.end()) {
          if (it->second > used) continue;  // beyond the next fresh one
          next_used = std::max(used, it->second + 1);
        }
        args[pos] = t;
        go(pos + 1, next_used);
      }
    };
    go(0, used0);
  };

  for (uint32_t h = 0; h < plan.hps.size(); ++h) {
    if (plan.units.size() >= kSplitBudget) {
      plan.units.push_back({h, ExhUnitKind::kWholeHp, {}, {}});
      continue;
    }
    plan.units.push_back({h, ExhUnitKind::kRootVisit, {}, {}});
    if (max_atoms == 0) continue;  // the root visit is the whole pattern
    const HpPlan& hp = plan.hps[h];
    for (Predicate p : sig.predicates) {
      for_each_atom(p, hp.choices, 0, [&](Atom&& a1, size_t f1) {
        if (plan.units.size() >= kSplitBudget) {
          plan.units.push_back({h, ExhUnitKind::kA1Subtree, std::move(a1), {}});
          return;
        }
        if (max_atoms == 1) {
          // The [a1] node has no children; its visit is the subtree.
          plan.units.push_back({h, ExhUnitKind::kA1Visit, std::move(a1), {}});
          return;
        }
        plan.units.push_back({h, ExhUnitKind::kA1Visit, a1, {}});
        for (Predicate p2 : sig.predicates) {
          for_each_atom(p2, hp.choices, f1, [&](Atom&& a2, size_t) {
            // Canonical growth: non-decreasing atom order, no duplicates
            // (the sequential BuildArgs rejections at depth 1).
            if (AtomOrderLess(a2, a1) || a2 == a1) return;
            plan.units.push_back(
                {h, ExhUnitKind::kA2Subtree, a1, std::move(a2)});
          });
        }
      });
    }
  }
  return plan;
}

/// Canonical enumerator of acyclic candidate queries (strategy
/// "exhaustive"); see the header for the completeness contract.
class CandidateEnumerator {
 public:
  CandidateEnumerator(const ConjunctiveQuery& q, const DependencySet& sigma,
                      const QueryChaseResult& chase,
                      const ContainmentOracle& oracle, size_t max_atoms,
                      size_t budget, acyclic::AcyclicityClass target,
                      const WitnessTuning& tuning, CancelToken* cancel)
      : q_(q),
        chase_(chase),
        oracle_(oracle),
        max_atoms_(max_atoms),
        budget_(budget),
        target_(target),
        tuning_(tuning),
        cancel_(cancel),
        inc_(target),
        hom_(chase.instance),
        use_inc_hom_(!tuning.legacy && tuning.incremental_hom),
        tested_(tuning.legacy),
        failpoint_token_(cancel) {
    // The incremental session bails from repair search once the token
    // fires; its outcomes are then discarded with the whole enumeration.
    hom_.SetCancel(cancel);
    hom_options_.cancel = cancel;
    EnumSignature sig(q, sigma, max_atoms);
    predicates_ = std::move(sig.predicates);
    constants_ = std::move(sig.constants);
    pool_ = std::move(sig.pool);
    pool_index_ = std::move(sig.pool_index);
  }

  /// ---- Parallel-worker mode ----------------------------------------
  /// The enumerator doubles as one worker of the parallel exhaustive
  /// search: the SAME Search/BuildArgs drive each unit (so enumeration
  /// order cannot diverge from the sequential strategy), with the budget
  /// check swapped for the pool's allowance cap and TestCandidate rewired
  /// to per-unit dedup + the shared NO-set. Failpoints take the parent
  /// token (thread-safe RequestCancel → whole-decision abort); polls use
  /// this worker's chained child token.
  void EnterParallelMode(CancelToken* parent,
                         ConcurrentFingerprintSet* shared_no) {
    parallel_ = true;
    failpoint_token_ = parent;
    shared_no_ = shared_no;
    if (parent != nullptr) child_.SetParent(parent);
    cancel_ = &child_;
    hom_.SetCancel(&child_);
    hom_options_.cancel = &child_;
  }

  SearchUnitOutcome RunUnit(const ExhaustivePlan& plan, const ExhUnit& u,
                            ParallelSearchPool::WorkerContext& ctx,
                            std::vector<CandidateEvent>* events,
                            std::optional<ConjunctiveQuery>* witness_slot) {
    pctx_ = &ctx;
    events_ = events;
    visits_ = 0;
    truncated_ = false;
    found_at_ = 0;
    outcome_.answer = Tri::kUnknown;
    outcome_.witness.reset();
    unit_seen_.clear();
    SEMACYC_FAILPOINT("parallel.steal", failpoint_token_);
    // Once this worker's token fired, its hom session bails spuriously —
    // a prefix push could masquerade as a prune and mis-report a unit as
    // exhausted. Report cancelled units as truncated instead (the commit
    // turns the first one official; real cancels abort at the engine).
    if (child_.PollNow()) {
      SearchUnitOutcome out;
      out.exhausted = false;
      return out;
    }
    if (u.kind == ExhUnitKind::kRootVisit) {
      // Root node: one visit, atoms_ empty, nothing tested (TestCandidate
      // skips empty candidates) — no session state needed.
      VisitNode(/*test=*/false);
    } else {
      SetupHeadPattern(plan, u.hp);
      size_t pushed = 0;
      bool pruned = false;
      if (u.a1.has_value()) pruned = !PushPrefixAtom(*u.a1, &pushed);
      if (!pruned && u.a2.has_value()) pruned = !PushPrefixAtom(*u.a2, &pushed);
      if (!pruned) {
        if (u.kind == ExhUnitKind::kA1Visit) {
          VisitNode(/*test=*/true);
        } else {  // kWholeHp, kA1Subtree, kA2Subtree
          Search();
        }
      }
      PopPrefix(pushed);
    }
    // A token fired during the unit's last oracle check may have hidden
    // an answer (kUnknown reads as "not contained"); never let such a
    // unit count as exhausted — mirrors the sequential post-run check.
    if (child_.triggered()) truncated_ = true;
    SearchUnitOutcome out;
    out.visits = visits_;
    out.found = outcome_.answer == Tri::kYes;
    out.found_at = found_at_;
    out.exhausted = !out.found && !truncated_;
    if (out.found) *witness_slot = std::move(outcome_.witness);
    return out;
  }

  size_t classifier_pushes() const { return inc_.pushes(); }
  size_t classifier_pops() const { return inc_.pops(); }
  const IncrementalHomomorphism::Stats* hom_stats() const {
    return use_inc_hom_ ? &hom_.stats() : nullptr;
  }

  WitnessSearchOutcome Run() {
    // Enumerate head patterns: set partitions of head positions refining
    // the equality pattern of the frozen head.
    const size_t k = q_.head().size();
    std::vector<int> block(k, -1);
    EnumerateHeadPatterns(0, &block, 0);
    // A fired token may have pruned subtrees silently (a cancelled chase
    // hom check reports "no hom" and the enumeration skips the subtree),
    // so the whole run counts as truncated even if no visit poll tripped.
    if (cancel_ != nullptr && cancel_->triggered()) truncated_ = true;
    outcome_.exhausted = !truncated_;
    outcome_.visits = visits_;
    outcome_.classifier_pushes = inc_.pushes();
    outcome_.classifier_pops = inc_.pops();
    if (use_inc_hom_) outcome_.hom = hom_.stats();
    return outcome_;
  }

 private:
  void EnumerateHeadPatterns(size_t pos, std::vector<int>* block,
                             int num_blocks) {
    if (truncated_ || outcome_.answer == Tri::kYes) return;
    const size_t k = q_.head().size();
    if (pos == k) {
      // Build the head: one fresh variable per block.
      head_.clear();
      head_.resize(k);
      std::vector<Term> block_var(static_cast<size_t>(num_blocks));
      for (int b = 0; b < num_blocks; ++b) {
        block_var[b] = Term::Variable("h$" + std::to_string(b));
      }
      for (size_t i = 0; i < k; ++i) head_[i] = block_var[(*block)[i]];
      // Head variables must map to the frozen head position-wise; seed the
      // candidate search with that binding. Both the binding and the
      // argument choices are loop invariants of the whole pattern — build
      // them once here, not per enumeration node.
      hom_options_.fixed.clear();
      for (size_t i = 0; i < k; ++i) {
        hom_options_.fixed[head_[i]] = chase_.frozen_head[i];
      }
      hom_options_.max_solutions = 1;
      // The incremental session is per head pattern, like the fixed
      // binding it mirrors: Reset re-seeds it and keeps pooled storage.
      if (use_inc_hom_) hom_.Reset(hom_options_.fixed);
      choices_ = ArgChoices();
      atoms_.clear();
      used_frontier_ = 0;
      Search();
      return;
    }
    // Standard restricted-growth enumeration of set partitions.
    for (int b = 0; b <= num_blocks; ++b) {
      // Refinement constraint: same block => equal frozen head terms.
      bool ok = true;
      for (size_t j = 0; j < pos; ++j) {
        if ((*block)[j] == b &&
            chase_.frozen_head[j] != chase_.frozen_head[pos]) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      (*block)[pos] = b;
      EnumerateHeadPatterns(pos + 1, block, std::max(num_blocks, b + 1));
      (*block)[pos] = -1;
    }
  }

  /// Terms usable as atom arguments: head variables, the whole pool (the
  /// in-order-introduction rule is enforced position-wise in BuildArgs),
  /// and the known constants.
  std::vector<Term> ArgChoices() {
    std::vector<Term> out;
    std::unordered_set<Term> seen;
    for (Term h : head_) {
      if (seen.insert(h).second) out.push_back(h);
    }
    for (Term v : pool_) out.push_back(v);
    for (Term c : constants_) out.push_back(c);
    return out;
  }

  std::string EncodeAtom(const Atom& a) {
    std::string s = std::to_string(a.predicate().id()) + "(";
    for (Term t : a.args()) s += std::to_string(t.raw_bits()) + ",";
    return s + ")";
  }

  /// Pre-PR frontier computation (legacy mode only): rescans every atom
  /// argument against the whole pool — O(atoms · arity · pool) per
  /// BuildArgs position. The fast path threads `used` down the recursion
  /// instead (see BuildArgs).
  size_t CountUsedPool(const std::vector<Atom>& atoms) {
    size_t used = 0;
    for (const Atom& a : atoms) {
      for (Term t : a.args()) {
        for (size_t i = 0; i < pool_.size(); ++i) {
          if (t == pool_[i]) used = std::max(used, i + 1);
        }
      }
    }
    return used;
  }

  /// The atom's connecting vertices (kVariables: constants never connect),
  /// interned against the enumerator-wide vertex table. Fills the shared
  /// scratch buffer (the classifier copies and sorts/dedups).
  const std::vector<int>& VarVertices(const Atom& atom) {
    verts_scratch_.clear();
    for (Term t : atom.args()) {
      if (!t.IsVariable()) continue;
      verts_scratch_.push_back(
          vertex_of_.emplace(t, static_cast<int>(vertex_of_.size()))
              .first->second);
    }
    return verts_scratch_;
  }

  bool HeadCovered() {
    for (Term h : head_) {
      bool found = false;
      for (const Atom& a : atoms_) {
        if (a.Mentions(h)) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  }

  /// The candidate (with current atoms) still maps into the chase with the
  /// head bound position-wise — the certificate for q ⊆Σ candidate.
  bool MapsIntoChase() {
    return FindHomomorphisms(atoms_, chase_.instance, hom_options_).found;
  }

  /// Parallel mode: install one head pattern's invariants from the plan
  /// (identical to the pos == k arm of EnumerateHeadPatterns). A pattern
  /// switch is a session replay: the hom session re-seeds to the new
  /// fixed binding.
  void SetupHeadPattern(const ExhaustivePlan& plan, uint32_t hp) {
    if (cur_hp_ == static_cast<int64_t>(hp)) return;
    SEMACYC_FAILPOINT("parallel.replay", failpoint_token_);
    pctx_->NoteReplay();
    const HpPlan& h = plan.hps[hp];
    head_ = h.head;
    hom_options_.fixed = h.fixed;
    hom_options_.max_solutions = 1;
    if (use_inc_hom_) hom_.Reset(hom_options_.fixed);
    choices_ = h.choices;
    cur_hp_ = static_cast<int64_t>(hp);
  }

  /// Parallel mode: replay one stolen-prefix atom with the sequential
  /// push nesting (classifier first, then hom). False = the prefix is
  /// pruned exactly where the sequential BuildArgs would prune it — the
  /// unit is a zero-visit exhausted unit. On success `pushed` counts the
  /// levels PopPrefix must unwind.
  bool PushPrefixAtom(const Atom& atom, size_t* pushed) {
    size_t saved_frontier = used_frontier_;
    atoms_.push_back(atom);
    used_frontier_ = FrontierAfter(atom, saved_frontier);
    inc_.PushEdge(VarVertices(atom));
    bool ok = !inc_.CannotRecover();
    if (ok) {
      if (use_inc_hom_) {
        ok = hom_.PushAtom(atom);
        if (!ok) hom_.PopAtom();
      } else {
        ok = MapsIntoChase();
      }
    }
    if (!ok) {
      inc_.PopEdge();
      atoms_.pop_back();
      used_frontier_ = saved_frontier;
      return false;
    }
    frontier_stack_.push_back(saved_frontier);
    ++*pushed;
    return true;
  }

  void PopPrefix(size_t pushed) {
    while (pushed-- > 0) {
      if (use_inc_hom_) hom_.PopAtom();
      inc_.PopEdge();
      atoms_.pop_back();
      used_frontier_ = frontier_stack_.back();
      frontier_stack_.pop_back();
    }
  }

  /// The in-order-introduction frontier after `atom`, from pool-index
  /// lookups — the same value BuildArgs threads down its recursion.
  size_t FrontierAfter(const Atom& atom, size_t used) const {
    for (Term t : atom.args()) {
      auto it = pool_index_.find(t);
      if (it != pool_index_.end()) used = std::max(used, it->second + 1);
    }
    return used;
  }

  /// Parallel mode: one enumeration node by itself (the kRootVisit /
  /// kA1Visit units) — the visit prefix of Search() without the child
  /// recursion, which belongs to other units.
  void VisitNode(bool test) {
    SEMACYC_FAILPOINT("exhaustive.visit", failpoint_token_);
    if (visits_ >= pctx_->Cap()) {
      truncated_ = true;
      return;
    }
    ++visits_;
    if (cancel_ != nullptr && cancel_->Poll()) {
      truncated_ = true;
      return;
    }
    if (test) TestCandidate();
  }

  void TestCandidate() {
    if (atoms_.empty() || !HeadCovered()) return;
    bool meets = tuning_.legacy
                     ? MeetsAcyclicityClass(atoms_, ConnectingTerms::kVariables,
                                            target_)
                     : inc_.Meets();
    if (!meets) return;
    ConjunctiveQuery candidate(head_, atoms_);
    if (parallel_) {
      // Per-unit dedup gates the event record; the shared NO-set only
      // suppresses oracle CALLS for already-refuted candidates (kYes
      // stops the search, kUnknown is never inserted — answer-invariant).
      // The official candidates_tested is reconstructed by the
      // commit-time replay of these events.
      Key128 key = CanonicalFingerprint128(candidate);
      if (!unit_seen_.insert(key).second) return;
      events_->push_back({visits_, key});
      ++outcome_.candidates_tested;
      if (shared_no_->Contains(key)) return;
      Tri r = oracle_.ContainedInQ(candidate, cancel_);
      if (r == Tri::kYes) {
        outcome_.answer = Tri::kYes;
        outcome_.witness = std::move(candidate);
        found_at_ = visits_;
      } else if (r == Tri::kNo) {
        shared_no_->Insert(key);
      }
      return;
    }
    if (!tested_.Insert(candidate)) return;
    ++outcome_.candidates_tested;
    if (oracle_.ContainedInQ(candidate, cancel_) == Tri::kYes) {
      outcome_.answer = Tri::kYes;
      outcome_.witness = std::move(candidate);
    }
  }

  void Search() {
    if (truncated_ || outcome_.answer == Tri::kYes) return;
    SEMACYC_FAILPOINT("exhaustive.visit", failpoint_token_);
    if (parallel_) {
      // Unit-local visits against the pool's allowance floor: Cap() can
      // only be too generous while earlier units are in flight, so a
      // capped unit provably overran its final allowance — speculation
      // wasted, never an answer changed.
      if (visits_ >= pctx_->Cap()) {
        truncated_ = true;
        return;
      }
      ++visits_;
    } else if (++visits_ > budget_) {
      truncated_ = true;
      return;
    }
    if (cancel_ != nullptr && cancel_->Poll()) {
      truncated_ = true;  // a fired token truncates like an exhausted budget
      return;
    }
    TestCandidate();
    if (outcome_.answer == Tri::kYes) return;
    if (atoms_.size() >= max_atoms_) return;
    std::string last_code;
    if (tuning_.legacy && !atoms_.empty()) last_code = EncodeAtom(atoms_.back());
    for (Predicate p : predicates_) {
      std::vector<Term> args(static_cast<size_t>(p.arity()));
      BuildArgs(p, 0, &args, choices_, last_code, used_frontier_);
      if (truncated_ || outcome_.answer == Tri::kYes) return;
    }
  }

  void BuildArgs(Predicate p, size_t pos, std::vector<Term>* args,
                 const std::vector<Term>& choices,
                 const std::string& last_code, size_t used) {
    if (truncated_ || outcome_.answer == Tri::kYes) return;
    if (pos == args->size()) {
      Atom atom(p, *args);
      // Canonical growth: non-decreasing atom order; no duplicate atoms.
      if (!atoms_.empty()) {
        if (tuning_.legacy) {
          if (EncodeAtom(atom) < last_code) return;
        } else if (AtomOrderLess(atom, atoms_.back())) {
          return;
        }
      }
      if (tuning_.legacy) {
        // Pre-PR duplicate check: a linear scan of the whole prefix.
        for (const Atom& existing : atoms_) {
          if (existing == atom) return;
        }
      } else {
        // Atoms grow in non-decreasing AtomOrderLess order, so only the
        // trailing run of order-equal atoms can collide with the
        // candidate: the scan stops at the first atom strictly below it.
        for (auto it = atoms_.rbegin();
             it != atoms_.rend() && !AtomOrderLess(*it, atom); ++it) {
          if (*it == atom) return;
        }
      }
      atoms_.push_back(atom);
      size_t saved_frontier = used_frontier_;
      used_frontier_ = used;
      if (tuning_.legacy) {
        if (MapsIntoChase()) Search();
      } else {
        // The classifier push costs nanoseconds (scratch deciders), so it
        // runs before the chase homomorphism: a hereditarily violated
        // prefix can never recover, and pruning it here skips the hom for
        // the whole subtree.
        inc_.PushEdge(VarVertices(atom));
        if (!inc_.CannotRecover()) {
          if (use_inc_hom_) {
            // Incremental per-atom chase check, mirroring the classifier's
            // push/pop discipline: the session's stack tracks atoms_ along
            // the DFS path, so this push costs O(what the atom changed)
            // instead of a from-scratch backtracking search.
            if (hom_.PushAtom(atom)) Search();
            hom_.PopAtom();
          } else if (MapsIntoChase()) {
            Search();
          }
        }
        inc_.PopEdge();
      }
      used_frontier_ = saved_frontier;
      atoms_.pop_back();
      return;
    }
    // Fresh pool variables must be introduced in order; `used` carries the
    // frontier (pool variables consumed by atoms_ plus the args prefix)
    // down the recursion instead of rescanning atoms and prefix.
    if (tuning_.legacy) {
      // Pre-PR: recompute the frontier from scratch at every position.
      size_t rescan = CountUsedPool(atoms_);
      for (size_t i = 0; i < pos; ++i) {
        for (size_t j = 0; j < pool_.size(); ++j) {
          if ((*args)[i] == pool_[j]) rescan = std::max(rescan, j + 1);
        }
      }
      for (Term t : choices) {
        bool skip = false;
        for (size_t j = 0; j < pool_.size(); ++j) {
          if (t == pool_[j] && j > rescan) {
            skip = true;
            break;
          }
        }
        if (skip) continue;
        (*args)[pos] = t;
        BuildArgs(p, pos + 1, args, choices, last_code, used);
      }
      return;
    }
    for (Term t : choices) {
      size_t next_used = used;
      auto it = pool_index_.find(t);
      if (it != pool_index_.end()) {
        if (it->second > used) continue;  // beyond the next fresh one
        next_used = std::max(used, it->second + 1);
      }
      (*args)[pos] = t;
      BuildArgs(p, pos + 1, args, choices, last_code, next_used);
    }
  }

  const ConjunctiveQuery& q_;
  const QueryChaseResult& chase_;
  const ContainmentOracle& oracle_;
  size_t max_atoms_;
  size_t budget_;
  acyclic::AcyclicityClass target_;
  WitnessTuning tuning_;
  CancelToken* cancel_;

  std::vector<Predicate> predicates_;
  std::vector<Term> constants_;
  std::vector<Term> pool_;
  std::unordered_map<Term, size_t, TermHash> pool_index_;
  std::vector<Term> head_;
  std::vector<Atom> atoms_;
  /// Per-head-pattern invariants, hoisted out of the enumeration loop.
  std::vector<Term> choices_;
  HomOptions hom_options_;
  acyclic::IncrementalClassifier inc_;
  /// Incremental chase-homomorphism session (fast path): PushAtom/PopAtom
  /// mirror inc_'s PushEdge/PopEdge along the DFS path, replacing the
  /// per-push MapsIntoChase full search.
  IncrementalHomomorphism hom_;
  bool use_inc_hom_;
  std::unordered_map<Term, int, TermHash> vertex_of_;
  std::vector<int> verts_scratch_;
  /// Pool variables consumed by atoms_ (the in-order-introduction
  /// frontier), maintained incrementally across atom pushes/pops.
  size_t used_frontier_ = 0;
  CandidateDedup tested_;
  size_t visits_ = 0;
  bool truncated_ = false;
  WitnessSearchOutcome outcome_;

  /// Parallel-worker mode state (inert on the sequential path).
  /// failpoint_token_ is the engine token on the sequential path and the
  /// PARENT token in parallel mode; cancel_ then points at child_.
  bool parallel_ = false;
  CancelToken* failpoint_token_;
  CancelToken child_;
  ParallelSearchPool::WorkerContext* pctx_ = nullptr;
  ConcurrentFingerprintSet* shared_no_ = nullptr;
  std::vector<CandidateEvent>* events_ = nullptr;
  std::unordered_set<Key128, Key128Hash> unit_seen_;
  uint64_t found_at_ = 0;
  int64_t cur_hp_ = -1;
  std::vector<size_t> frontier_stack_;
};

}  // namespace

WitnessSearchOutcome ExhaustiveWitnessSearch(const ConjunctiveQuery& q,
                                             const DependencySet& sigma,
                                             const QueryChaseResult& chase,
                                             const ContainmentOracle& oracle,
                                             size_t max_atoms, size_t budget,
                                             acyclic::AcyclicityClass target,
                                             const WitnessTuning& tuning,
                                             CancelToken* cancel) {
  CandidateEnumerator enumerator(q, sigma, chase, oracle, max_atoms, budget,
                                 target, tuning, cancel);
  return enumerator.Run();
}

WitnessSearchOutcome ParallelExhaustiveWitnessSearch(
    const ConjunctiveQuery& q, const DependencySet& sigma,
    const QueryChaseResult& chase, const ContainmentOracle& oracle,
    size_t max_atoms, size_t budget, size_t threads,
    acyclic::AcyclicityClass target, const WitnessTuning& tuning,
    CancelToken* cancel) {
  if (threads <= 1 || tuning.legacy) {
    return ExhaustiveWitnessSearch(q, sigma, chase, oracle, max_atoms, budget,
                                   target, tuning, cancel);
  }
  WitnessSearchOutcome outcome;
  EnumSignature sig(q, sigma, max_atoms);
  ExhaustivePlan plan = BuildExhaustivePlan(q, chase, sig, max_atoms);
  ConcurrentFingerprintSet shared_no;
  std::vector<std::vector<CandidateEvent>> unit_events(plan.units.size());
  std::vector<std::optional<ConjunctiveQuery>> unit_witness(plan.units.size());
  ParallelSearchPool pool(plan.units.size(), threads, budget);
  // One enumerator per worker slot, created lazily on the worker's own
  // thread (each builds its own sessions and child token; the plan, the
  // oracle and the NO-set are the only shared state).
  std::vector<std::unique_ptr<CandidateEnumerator>> workers(pool.workers());
  ParallelSearchPool::Result res =
      pool.Run([&](size_t u, ParallelSearchPool::WorkerContext& ctx) {
        std::unique_ptr<CandidateEnumerator>& w = workers[ctx.worker()];
        if (w == nullptr) {
          w = std::make_unique<CandidateEnumerator>(q, sigma, chase, oracle,
                                                    max_atoms, budget, target,
                                                    tuning, nullptr);
          w->EnterParallelMode(cancel, &shared_no);
        }
        return w->RunUnit(plan, plan.units[u], ctx, &unit_events[u],
                          &unit_witness[u]);
      });
  bool truncated = res.truncated;
  // A fired token may have pruned subtrees silently; the whole run counts
  // as truncated even if no visit poll tripped (mirrors the sequential
  // post-run check).
  if (cancel != nullptr && cancel->triggered()) truncated = true;
  if (res.found) {
    outcome.answer = Tri::kYes;
    outcome.witness = std::move(unit_witness[res.final_unit]);
  }
  // Like the sequential Run(): exhausted reports "no budget/cancel
  // truncation", also on kYes.
  outcome.exhausted = !truncated;
  outcome.visits = res.official_visits;
  outcome.candidates_tested = ReplayCandidatesTested(res, unit_events);
  for (const auto& w : workers) {
    if (w == nullptr) continue;
    outcome.classifier_pushes += w->classifier_pushes();
    outcome.classifier_pops += w->classifier_pops();
    if (const IncrementalHomomorphism::Stats* hs = w->hom_stats()) {
      outcome.hom.pushes += hs->pushes;
      outcome.hom.fc_rejects += hs->fc_rejects;
      outcome.hom.extends += hs->extends;
      outcome.hom.repairs += hs->repairs;
      outcome.hom.repair_fails += hs->repair_fails;
      outcome.hom.dead_prefix += hs->dead_prefix;
    }
  }
  outcome.parallel = pool.stats();
  return outcome;
}

}  // namespace semacyc
