#include "semacyc/witness_search.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "core/canonical.h"
#include "core/containment.h"
#include "core/homomorphism.h"
#include "core/hypergraph.h"
#include "deps/classify.h"
#include "deps/nonrecursive.h"
#include "deps/weakly_acyclic.h"
#include "rewrite/rewrite_containment.h"

namespace semacyc {

ContainmentOracle::ContainmentOracle(const ConjunctiveQuery& q,
                                     const DependencySet& sigma,
                                     const ChaseOptions& chase_options,
                                     const RewriteOptions& rewrite_options,
                                     bool try_rewriting)
    : q_(q), sigma_(sigma), chase_options_(chase_options) {
  // Static guarantees for the chase-based path: egd-only chases always
  // terminate; weakly acyclic tgd sets (which subsume NR and all full
  // sets) guarantee tgd-chase termination.
  if (!sigma.HasTgds()) {
    exact_ = true;
  } else if (!sigma.HasEgds() && IsWeaklyAcyclic(sigma.tgds)) {
    exact_ = true;
  }
  // Rewriting is only worth its (possibly exponential) construction cost
  // when the chase may diverge — i.e. outside the weakly acyclic classes.
  if (try_rewriting && !exact_ && !sigma.HasEgds() && sigma.HasTgds()) {
    TgdClassification cls = Classify(sigma.tgds);
    if (cls.non_recursive || cls.sticky || cls.linear) {
      RewriteResult rewriting = RewriteToUcq(q, sigma.tgds, rewrite_options);
      if (rewriting.complete) {
        rewriting_ = std::move(rewriting);
        exact_ = true;
      }
    }
  }
}

Tri ContainmentOracle::ContainedInQ(const ConjunctiveQuery& candidate) const {
  if (rewriting_.has_value()) {
    return RewriteContained(candidate, *rewriting_);
  }
  return ContainedUnder(candidate, q_, sigma_, chase_options_);
}

namespace {

/// Distinct terms that every candidate sub-instance must mention so the
/// head is expressible.
std::vector<Term> RequiredHeadTerms(const QueryChaseResult& chase) {
  std::vector<Term> out;
  for (Term t : chase.frozen_head) {
    if (t.IsConstant() && t.name().rfind("@", 0) != 0) continue;  // genuine
    if (std::find(out.begin(), out.end(), t) == out.end()) out.push_back(t);
  }
  return out;
}

}  // namespace

WitnessSearchOutcome FindWitnessInQueryImages(const ConjunctiveQuery& q,
                                              const QueryChaseResult& chase,
                                              const ContainmentOracle& oracle,
                                              size_t max_homs,
                                              acyclic::AcyclicityClass target) {
  WitnessSearchOutcome outcome;
  Substitution fixed;
  for (size_t i = 0; i < q.head().size(); ++i) {
    Term h = q.head()[i];
    if (!h.IsVariable()) continue;
    fixed.emplace(h, chase.frozen_head[i]);
  }
  HomOptions options;
  options.fixed = fixed;
  options.max_solutions = max_homs;
  HomResult homs = FindHomomorphisms(q.body(), chase.instance, options);
  outcome.exhausted = !homs.budget_exhausted &&
                      (max_homs == 0 || homs.solutions.size() < max_homs);
  std::unordered_set<std::string> tested;
  for (const Substitution& h : homs.solutions) {
    Instance image;
    for (const Atom& a : q.body()) image.Insert(Apply(h, a));
    if (!MeetsAcyclicityClass(image.atoms(), ConnectingTerms::kAllTerms,
                              target)) {
      continue;
    }
    ConjunctiveQuery candidate = QueryFromInstance(image, chase.frozen_head);
    if (!tested.insert(StructuralKey(candidate)).second) continue;
    ++outcome.candidates_tested;
    if (oracle.ContainedInQ(candidate) == Tri::kYes) {
      outcome.answer = Tri::kYes;
      outcome.witness = std::move(candidate);
      return outcome;
    }
  }
  return outcome;
}

WitnessSearchOutcome FindWitnessInChaseSubsets(const ConjunctiveQuery& q,
                                               const QueryChaseResult& chase,
                                               const ContainmentOracle& oracle,
                                               size_t max_atoms, size_t budget,
                                               acyclic::AcyclicityClass target) {
  (void)q;  // the chase already encodes q; kept for interface symmetry
  WitnessSearchOutcome outcome;
  const auto& atoms = chase.instance.atoms();
  const size_t m = atoms.size();
  std::vector<Term> required = RequiredHeadTerms(chase);
  std::unordered_set<std::string> tested;
  size_t visits = 0;
  bool truncated = false;

  // DFS over index-increasing subsets, testing each acyclic subset that
  // covers the required terms. Small subsets are explored first through
  // iterative deepening on the subset size.
  std::vector<uint32_t> subset;
  std::function<bool(size_t, size_t)> dfs = [&](size_t next,
                                                size_t limit) -> bool {
    if (++visits > budget) {
      truncated = true;
      return false;
    }
    if (!subset.empty()) {
      Instance sub = chase.instance.Restrict(subset);
      bool covers = true;
      for (Term t : required) {
        if (sub.AtomsMentioning(t).empty()) {
          covers = false;
          break;
        }
      }
      if (covers && MeetsAcyclicityClass(sub.atoms(),
                                         ConnectingTerms::kAllTerms, target)) {
        ConjunctiveQuery candidate = QueryFromInstance(sub, chase.frozen_head);
        if (tested.insert(StructuralKey(candidate)).second) {
          ++outcome.candidates_tested;
          if (oracle.ContainedInQ(candidate) == Tri::kYes) {
            outcome.answer = Tri::kYes;
            outcome.witness = std::move(candidate);
            return true;
          }
        }
      }
    }
    if (subset.size() >= limit) return false;
    for (size_t i = next; i < m; ++i) {
      subset.push_back(static_cast<uint32_t>(i));
      if (dfs(i + 1, limit)) return true;
      subset.pop_back();
      if (truncated) return false;
    }
    return false;
  };

  for (size_t limit = 1; limit <= max_atoms && !truncated; ++limit) {
    subset.clear();
    if (dfs(0, limit)) return outcome;
  }
  outcome.exhausted = !truncated;
  return outcome;
}

namespace {

/// Canonical enumerator of acyclic candidate queries (strategy
/// "exhaustive"); see the header for the completeness contract.
class CandidateEnumerator {
 public:
  CandidateEnumerator(const ConjunctiveQuery& q, const DependencySet& sigma,
                      const QueryChaseResult& chase,
                      const ContainmentOracle& oracle, size_t max_atoms,
                      size_t budget, acyclic::AcyclicityClass target)
      : q_(q),
        chase_(chase),
        oracle_(oracle),
        max_atoms_(max_atoms),
        budget_(budget),
        target_(target) {
    // Signature: predicates of q plus head predicates of Σ's tgds (only
    // those can occur in chase(q,Σ), hence in any witness).
    std::unordered_set<uint32_t> seen;
    for (const Atom& a : q.body()) {
      if (seen.insert(a.predicate().id()).second) {
        predicates_.push_back(a.predicate());
      }
    }
    for (const Tgd& t : sigma.tgds) {
      for (const Atom& a : t.head()) {
        if (seen.insert(a.predicate().id()).second) {
          predicates_.push_back(a.predicate());
        }
      }
    }
    // Constants available to candidates: those of q and Σ.
    std::unordered_set<Term> cseen;
    for (const Atom& a : q.body()) {
      for (Term t : a.args()) {
        if (t.IsConstant() && cseen.insert(t).second) constants_.push_back(t);
      }
    }
    for (const Tgd& t : sigma.tgds) {
      for (const Atom& a : t.body()) {
        for (Term arg : a.args()) {
          if (arg.IsConstant() && cseen.insert(arg).second) {
            constants_.push_back(arg);
          }
        }
      }
      for (const Atom& a : t.head()) {
        for (Term arg : a.args()) {
          if (arg.IsConstant() && cseen.insert(arg).second) {
            constants_.push_back(arg);
          }
        }
      }
    }
    int max_arity = 1;
    for (Predicate p : predicates_) {
      max_arity = std::max(max_arity, p.arity());
    }
    // Variable pool: enough for max_atoms atoms of maximal arity.
    size_t pool = max_atoms_ * static_cast<size_t>(max_arity);
    for (size_t i = 0; i < pool; ++i) {
      pool_.push_back(Term::Variable("w$" + std::to_string(i)));
    }
  }

  WitnessSearchOutcome Run() {
    // Enumerate head patterns: set partitions of head positions refining
    // the equality pattern of the frozen head.
    const size_t k = q_.head().size();
    std::vector<int> block(k, -1);
    EnumerateHeadPatterns(0, &block, 0);
    outcome_.exhausted = !truncated_;
    return outcome_;
  }

 private:
  void EnumerateHeadPatterns(size_t pos, std::vector<int>* block,
                             int num_blocks) {
    if (truncated_ || outcome_.answer == Tri::kYes) return;
    const size_t k = q_.head().size();
    if (pos == k) {
      // Build the head: one fresh variable per block.
      head_.clear();
      head_.resize(k);
      std::vector<Term> block_var(static_cast<size_t>(num_blocks));
      for (int b = 0; b < num_blocks; ++b) {
        block_var[b] = Term::Variable("h$" + std::to_string(b));
      }
      for (size_t i = 0; i < k; ++i) head_[i] = block_var[(*block)[i]];
      // Head variables must map to the frozen head position-wise; seed the
      // candidate search with that binding.
      atoms_.clear();
      Search();
      return;
    }
    // Standard restricted-growth enumeration of set partitions.
    for (int b = 0; b <= num_blocks; ++b) {
      // Refinement constraint: same block => equal frozen head terms.
      bool ok = true;
      for (size_t j = 0; j < pos; ++j) {
        if ((*block)[j] == b &&
            chase_.frozen_head[j] != chase_.frozen_head[pos]) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      (*block)[pos] = b;
      EnumerateHeadPatterns(pos + 1, block, std::max(num_blocks, b + 1));
      (*block)[pos] = -1;
    }
  }

  /// Terms usable as atom arguments: head variables, the whole pool (the
  /// in-order-introduction rule is enforced position-wise in BuildArgs),
  /// and the known constants.
  std::vector<Term> ArgChoices() {
    std::vector<Term> out;
    std::unordered_set<Term> seen;
    for (Term h : head_) {
      if (seen.insert(h).second) out.push_back(h);
    }
    for (Term v : pool_) out.push_back(v);
    for (Term c : constants_) out.push_back(c);
    return out;
  }

  std::string EncodeAtom(const Atom& a) {
    std::string s = std::to_string(a.predicate().id()) + "(";
    for (Term t : a.args()) s += std::to_string(t.raw_bits()) + ",";
    return s + ")";
  }

  size_t CountUsedPool(const std::vector<Atom>& atoms) {
    size_t used = 0;
    for (const Atom& a : atoms) {
      for (Term t : a.args()) {
        for (size_t i = 0; i < pool_.size(); ++i) {
          if (t == pool_[i]) used = std::max(used, i + 1);
        }
      }
    }
    return used;
  }

  bool HeadCovered() {
    for (Term h : head_) {
      bool found = false;
      for (const Atom& a : atoms_) {
        if (a.Mentions(h)) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  }

  /// The candidate (with current atoms) still maps into the chase with the
  /// head bound position-wise — the certificate for q ⊆Σ candidate.
  bool MapsIntoChase() {
    Substitution fixed;
    for (size_t i = 0; i < head_.size(); ++i) {
      fixed[head_[i]] = chase_.frozen_head[i];
    }
    return HasHomomorphism(atoms_, chase_.instance, fixed);
  }

  void TestCandidate() {
    if (atoms_.empty() || !HeadCovered()) return;
    if (!MeetsAcyclicityClass(atoms_, ConnectingTerms::kVariables, target_)) {
      return;
    }
    ConjunctiveQuery candidate(head_, atoms_);
    if (!tested_.insert(StructuralKey(candidate)).second) return;
    ++outcome_.candidates_tested;
    if (oracle_.ContainedInQ(candidate) == Tri::kYes) {
      outcome_.answer = Tri::kYes;
      outcome_.witness = std::move(candidate);
    }
  }

  void Search() {
    if (truncated_ || outcome_.answer == Tri::kYes) return;
    if (++visits_ > budget_) {
      truncated_ = true;
      return;
    }
    TestCandidate();
    if (outcome_.answer == Tri::kYes) return;
    if (atoms_.size() >= max_atoms_) return;
    std::string last_code =
        atoms_.empty() ? std::string() : EncodeAtom(atoms_.back());
    std::vector<Term> choices = ArgChoices();
    for (Predicate p : predicates_) {
      std::vector<Term> args(static_cast<size_t>(p.arity()));
      BuildArgs(p, 0, &args, choices, last_code);
      if (truncated_ || outcome_.answer == Tri::kYes) return;
    }
  }

  void BuildArgs(Predicate p, size_t pos, std::vector<Term>* args,
                 const std::vector<Term>& choices,
                 const std::string& last_code) {
    if (truncated_ || outcome_.answer == Tri::kYes) return;
    if (pos == args->size()) {
      Atom atom(p, *args);
      // Canonical growth: non-decreasing atom codes; no duplicate atoms.
      if (!last_code.empty() && EncodeAtom(atom) < last_code) return;
      for (const Atom& existing : atoms_) {
        if (existing == atom) return;
      }
      atoms_.push_back(atom);
      if (MapsIntoChase()) Search();
      atoms_.pop_back();
      return;
    }
    // Fresh pool variables must be introduced in order: recompute the
    // frontier of used variables for each position.
    size_t used = CountUsedPool(atoms_);
    for (size_t i = 0; i < pos; ++i) {
      for (size_t j = 0; j < pool_.size(); ++j) {
        if ((*args)[i] == pool_[j]) used = std::max(used, j + 1);
      }
    }
    for (Term t : choices) {
      // Skip pool variables beyond the next fresh one.
      bool skip = false;
      for (size_t j = 0; j < pool_.size(); ++j) {
        if (t == pool_[j] && j > used) {
          skip = true;
          break;
        }
      }
      if (skip) continue;
      (*args)[pos] = t;
      BuildArgs(p, pos + 1, args, choices, last_code);
    }
  }

  const ConjunctiveQuery& q_;
  const QueryChaseResult& chase_;
  const ContainmentOracle& oracle_;
  size_t max_atoms_;
  size_t budget_;
  acyclic::AcyclicityClass target_;

  std::vector<Predicate> predicates_;
  std::vector<Term> constants_;
  std::vector<Term> pool_;
  std::vector<Term> head_;
  std::vector<Atom> atoms_;
  std::unordered_set<std::string> tested_;
  size_t visits_ = 0;
  bool truncated_ = false;
  WitnessSearchOutcome outcome_;
};

}  // namespace

WitnessSearchOutcome ExhaustiveWitnessSearch(const ConjunctiveQuery& q,
                                             const DependencySet& sigma,
                                             const QueryChaseResult& chase,
                                             const ContainmentOracle& oracle,
                                             size_t max_atoms, size_t budget,
                                             acyclic::AcyclicityClass target) {
  CandidateEnumerator enumerator(q, sigma, chase, oracle, max_atoms, budget,
                                 target);
  return enumerator.Run();
}

}  // namespace semacyc
