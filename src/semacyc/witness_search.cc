#include "semacyc/witness_search.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "acyclic/incremental.h"
#include "core/canonical.h"
#include "core/containment.h"
#include "core/homomorphism.h"
#include "core/incremental_hom.h"
#include "core/hypergraph.h"
#include "deps/classify.h"
#include "deps/nonrecursive.h"
#include "deps/weakly_acyclic.h"
#include "rewrite/rewrite_containment.h"

namespace semacyc {

SchemaFacts SchemaFacts::Compute(const DependencySet& sigma) {
  return Compute(sigma, sigma.HasTgds() ? Classify(sigma.tgds)
                                        : TgdClassification{});
}

SchemaFacts SchemaFacts::Compute(const DependencySet& sigma,
                                 const TgdClassification& tgd_classes) {
  SchemaFacts facts;
  // Static guarantees for the chase-based path: egd-only chases always
  // terminate; weakly acyclic tgd sets (which subsume NR and all full
  // sets) guarantee tgd-chase termination.
  if (!sigma.HasTgds()) {
    facts.chase_exact = true;
  } else if (!sigma.HasEgds() && IsWeaklyAcyclic(sigma.tgds)) {
    facts.chase_exact = true;
  }
  if (sigma.HasTgds()) {
    const TgdClassification& cls = tgd_classes;
    facts.rewritable = cls.non_recursive || cls.sticky || cls.linear;
    facts.guarded = cls.guarded;
    facts.nr_or_sticky = cls.non_recursive || cls.sticky;
  }
  // Vacuously true on an egd-free set, matching SmallQueryBound's
  // egd-only branch for Σ = ∅.
  facts.egds_bounded = IsK2Set(sigma.egds) || IsUnaryFdSet(sigma.egds);
  for (const Tgd& t : sigma.tgds) {
    for (const Atom& h : t.head()) {
      facts.tgd_head_preds.insert(h.predicate().id());
      for (const Atom& b : t.body()) {
        facts.reverse_pred_edges[h.predicate().id()].push_back(
            b.predicate().id());
      }
    }
  }
  return facts;
}

ContainmentOracle::ContainmentOracle(const ConjunctiveQuery& q,
                                     const DependencySet& sigma,
                                     const ChaseOptions& chase_options,
                                     const RewriteOptions& rewrite_options,
                                     bool try_rewriting, bool memoize)
    : ContainmentOracle(q, sigma, chase_options, rewrite_options,
                        SchemaFacts::Compute(sigma), /*rewrite_cache=*/nullptr,
                        try_rewriting, memoize, /*synchronized=*/false) {}

ContainmentOracle::ContainmentOracle(const ConjunctiveQuery& q,
                                     const DependencySet& sigma,
                                     const ChaseOptions& chase_options,
                                     const RewriteOptions& rewrite_options,
                                     const SchemaFacts& facts,
                                     RewriteCache* rewrite_cache,
                                     bool try_rewriting, bool memoize,
                                     bool synchronized)
    : q_(q),
      sigma_(sigma),
      chase_options_(chase_options),
      memoize_(memoize),
      synchronized_(synchronized) {
  exact_ = facts.chase_exact;
  // Rewriting is only worth its (possibly exponential) construction cost
  // when the chase may diverge — i.e. outside the weakly acyclic classes.
  if (try_rewriting && !exact_ && !sigma.HasEgds() && facts.rewritable) {
    std::shared_ptr<const RewriteResult> rewriting =
        rewrite_cache != nullptr
            ? rewrite_cache->GetOrCompute(q, sigma.tgds, rewrite_options)
            : std::make_shared<const RewriteResult>(
                  RewriteToUcq(q, sigma.tgds, rewrite_options));
    if (rewriting->complete) {
      rewriting_ = std::move(rewriting);
      exact_ = true;
    }
  }
  // Predicate-reachability prefilter (fast path only). Sound for kNo only
  // when the candidate's chase cannot fail, i.e. Σ has no egds: tgds never
  // invent predicates outside the body→head predicate graph, so a q
  // predicate unreachable from every candidate predicate can never appear
  // in chase(candidate, Σ).
  if (memoize_ && !sigma.HasEgds()) {
    // Chase-free degeneration: tgds only ever add atoms whose predicate is
    // some tgd head predicate. If none of those occur in q, the
    // q-homomorphism into chase(candidate, Σ) can only use candidate's own
    // atoms, so containment is the classical Chandra–Merlin test.
    chase_free_ = true;
    for (const Atom& a : q.body()) {
      if (facts.tgd_head_preds.count(a.predicate().id())) {
        chase_free_ = false;
        break;
      }
    }
    if (chase_free_) {
      // Compile q once for the per-candidate check: dense variable
      // indices, and a greedy connected atom order (most already-bound
      // variables first, head variables counting as pre-bound) so the
      // backtracking stays anchored.
      std::unordered_map<Term, int, TermHash> vidx;
      for (const Atom& a : q.body()) {
        for (Term t : a.args()) {
          if (t.IsVariable()) {
            vidx.emplace(t, static_cast<int>(vidx.size()));
          }
        }
      }
      cm_num_vars_ = vidx.size();
      for (Term h : q.head()) {
        cm_head_var_.push_back(h.IsVariable() ? vidx.at(h) : -1);
      }
      std::vector<char> seen(cm_num_vars_, 0);
      for (Term h : q.head()) {
        if (h.IsVariable()) seen[static_cast<size_t>(vidx.at(h))] = 1;
      }
      std::vector<bool> used(q.body().size(), false);
      for (size_t step = 0; step < q.body().size(); ++step) {
        size_t best = q.body().size();
        int best_score = -1;
        for (size_t i = 0; i < q.body().size(); ++i) {
          if (used[i]) continue;
          int score = 0;
          for (Term t : q.body()[i].args()) {
            if (!t.IsVariable() || seen[static_cast<size_t>(vidx.at(t))]) {
              ++score;
            }
          }
          if (score > best_score) {
            best_score = score;
            best = i;
          }
        }
        used[best] = true;
        const Atom& a = q.body()[best];
        CmAtom ca;
        ca.pred = a.predicate();
        for (Term t : a.args()) {
          if (t.IsVariable()) {
            int v = vidx.at(t);
            ca.var_at.push_back(v);
            ca.const_at.push_back(Term());
            seen[static_cast<size_t>(v)] = 1;
          } else {
            ca.var_at.push_back(-1);
            ca.const_at.push_back(t);
          }
        }
        cm_atoms_.push_back(std::move(ca));
      }
    }
    prefilter_ = true;
    std::unordered_set<uint32_t> q_preds;
    for (const Atom& a : q.body()) q_preds.insert(a.predicate().id());
    for (uint32_t p : q_preds) {
      std::unordered_set<uint32_t> sources;
      std::vector<uint32_t> stack = {p};
      sources.insert(p);
      while (!stack.empty()) {
        uint32_t cur = stack.back();
        stack.pop_back();
        auto it = facts.reverse_pred_edges.find(cur);
        if (it == facts.reverse_pred_edges.end()) continue;
        for (uint32_t src : it->second) {
          if (sources.insert(src).second) stack.push_back(src);
        }
      }
      q_pred_sources_.push_back(std::move(sources));
    }
  }
}

bool ContainmentOracle::PassesPredicateFilter(
    const ConjunctiveQuery& candidate) const {
  for (const auto& sources : q_pred_sources_) {
    bool reachable = false;
    for (const Atom& a : candidate.body()) {
      if (sources.count(a.predicate().id())) {
        reachable = true;
        break;
      }
    }
    if (!reachable) return false;
  }
  return true;
}

Tri ContainmentOracle::Decide(const ConjunctiveQuery& candidate,
                              CancelToken* cancel) const {
  if (rewriting_ != nullptr) {
    // Rewriting evaluation is one frozen-query UCQ check — cheap relative
    // to the per-candidate poll granularity, so it runs to completion.
    return RewriteContained(candidate, *rewriting_);
  }
  ChaseOptions options = chase_options_;
  options.cancel = cancel;
  return ContainedUnder(candidate, q_, sigma_, options);
}

Tri ContainmentOracle::DecideChaseFree(
    const ConjunctiveQuery& candidate) const {
  // Chandra–Merlin against the candidate body itself: its variables act as
  // the frozen canonical constants (rigid instance terms), no freezing or
  // chase needed. Exact in both directions. Runs the q-side compiled at
  // construction (cm_atoms_) over a dense binding array — this is the
  // per-candidate inner loop of exhaustive witness search, so it must not
  // allocate or hash.
  cm_binding_.assign(cm_num_vars_, Term());
  for (size_t i = 0; i < q_.head().size(); ++i) {
    Term c = candidate.head()[i];
    int v = cm_head_var_[i];
    if (v < 0) {
      if (q_.head()[i] != c) return Tri::kNo;
      continue;
    }
    Term& bound = cm_binding_[static_cast<size_t>(v)];
    if (bound.IsValid()) {
      if (bound != c) return Tri::kNo;
    } else {
      bound = c;
    }
  }
  cm_undo_.clear();
  return CmDfs(candidate.body(), 0) ? Tri::kYes : Tri::kNo;
}

bool ContainmentOracle::CmDfs(const std::vector<Atom>& target_atoms,
                              size_t depth) const {
  if (depth == cm_atoms_.size()) return true;
  const CmAtom& a = cm_atoms_[depth];
  for (const Atom& t : target_atoms) {
    if (t.predicate() != a.pred) continue;
    size_t undo_mark = cm_undo_.size();
    bool ok = true;
    for (size_t i = 0; i < a.var_at.size() && ok; ++i) {
      int v = a.var_at[i];
      if (v < 0) {
        ok = a.const_at[i] == t.arg(i);
        continue;
      }
      Term& bound = cm_binding_[static_cast<size_t>(v)];
      if (bound.IsValid()) {
        ok = bound == t.arg(i);
        continue;
      }
      bound = t.arg(i);
      cm_undo_.push_back(v);
    }
    if (ok && CmDfs(target_atoms, depth + 1)) return true;
    while (cm_undo_.size() > undo_mark) {
      cm_binding_[static_cast<size_t>(cm_undo_.back())] = Term();
      cm_undo_.pop_back();
    }
  }
  return false;
}

Tri ContainmentOracle::ContainedInQ(const ConjunctiveQuery& candidate,
                                    CancelToken* cancel) const {
  if (!synchronized_) return ContainedInQLocked(candidate, cancel);
  std::lock_guard<std::mutex> lock(mu_);
  return ContainedInQLocked(candidate, cancel);
}

size_t ContainmentOracle::cache_hits() const {
  if (!synchronized_) return hits_;
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

size_t ContainmentOracle::cache_misses() const {
  if (!synchronized_) return misses_;
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

size_t ContainmentOracle::prefiltered() const {
  if (!synchronized_) return prefiltered_;
  std::lock_guard<std::mutex> lock(mu_);
  return prefiltered_;
}

size_t ContainmentOracle::memo_bytes() const {
  if (!synchronized_) return memo_bytes_;
  std::lock_guard<std::mutex> lock(mu_);
  return memo_bytes_;
}

Tri ContainmentOracle::ContainedInQLocked(const ConjunctiveQuery& candidate,
                                          CancelToken* cancel) const {
  SEMACYC_FAILPOINT("oracle.candidate", cancel);
  if (cancel != nullptr && cancel->Poll()) return Tri::kUnknown;
  if (!memoize_) return Decide(candidate, cancel);
  if (prefilter_ && !PassesPredicateFilter(candidate)) {
    ++prefiltered_;
    return Tri::kNo;
  }
  // Chase-free candidates decide in one homomorphism test — cheaper than
  // the memo's own bookkeeping, so skip the cache entirely.
  if (chase_free_) return DecideChaseFree(candidate);
  // Sound across isomorphism: candidate ⊆Σ q is invariant under bijective
  // variable renamings that preserve the head position-wise — exactly what
  // AreIsomorphic certifies after the fingerprint pre-filter.
  auto& bucket = memo_[CanonicalFingerprint(candidate)];
  for (const auto& [cached, answer] : bucket) {
    if (AreIsomorphic(cached, candidate)) {
      ++hits_;
      return answer;
    }
  }
  ++misses_;
  Tri answer = Decide(candidate, cancel);
  // An answer computed under a fired token may rest on a truncated chase
  // or hom search: never memoize it, so a later uncancelled call (or the
  // post-abort parity re-decide) recomputes it exactly.
  if (cancel != nullptr && cancel->triggered()) return Tri::kUnknown;
  // Running memo footprint for honest cache accounting: the candidate
  // copy plus pair/bucket bookkeeping (an empty bucket also costs a map
  // node, folded into the per-entry constant).
  memo_bytes_ += candidate.ApproxBytes() +
                 sizeof(std::pair<ConjunctiveQuery, Tri>) + 4 * sizeof(void*);
  bucket.push_back({candidate, answer});
  return answer;
}

namespace {

/// Distinct terms that every candidate sub-instance must mention so the
/// head is expressible.
std::vector<Term> RequiredHeadTerms(const QueryChaseResult& chase) {
  std::vector<Term> out;
  for (Term t : chase.frozen_head) {
    if (t.IsConstant() && !t.IsFrozenNull()) continue;  // genuine constant
    if (std::find(out.begin(), out.end(), t) == out.end()) out.push_back(t);
  }
  return out;
}

/// Candidate dedup modulo the renaming-invariant key. The fast path keys
/// on a 128-bit salted fingerprint pair of the same invariant the seed's
/// StructuralKey dedup used (which likewise never resolved its own
/// conflations) — the conflation probability a dropped candidate rides
/// on is ~n²/2¹²⁸, negligible against every other failure mode. Legacy
/// mode keeps the seed's string keys.
class CandidateDedup {
 public:
  explicit CandidateDedup(bool legacy) : legacy_(legacy) {}

  /// True iff the candidate was not seen before.
  bool Insert(const ConjunctiveQuery& q) {
    if (legacy_) return strings_.insert(StructuralKey(q)).second;
    return keys_.insert(CanonicalFingerprint128(q)).second;
  }

 private:
  using Key128 = std::pair<uint64_t, uint64_t>;
  struct Key128Hash {
    size_t operator()(const Key128& k) const {
      return static_cast<size_t>(k.first ^ (k.second * 0x9e3779b97f4a7c15ull));
    }
  };
  bool legacy_;
  std::unordered_set<std::string> strings_;
  std::unordered_set<Key128, Key128Hash> keys_;
};

}  // namespace

WitnessSearchOutcome FindWitnessInQueryImages(const ConjunctiveQuery& q,
                                              const QueryChaseResult& chase,
                                              const ContainmentOracle& oracle,
                                              size_t max_homs,
                                              acyclic::AcyclicityClass target,
                                              const WitnessTuning& tuning,
                                              CancelToken* cancel) {
  WitnessSearchOutcome outcome;
  Substitution fixed;
  for (size_t i = 0; i < q.head().size(); ++i) {
    Term h = q.head()[i];
    if (!h.IsVariable()) continue;
    fixed.emplace(h, chase.frozen_head[i]);
  }
  HomOptions options;
  options.fixed = fixed;
  options.max_solutions = max_homs;
  options.cancel = cancel;
  HomResult homs = FindHomomorphisms(q.body(), chase.instance, options);
  outcome.exhausted = !homs.budget_exhausted &&
                      (max_homs == 0 || homs.solutions.size() < max_homs);
  CandidateDedup tested(tuning.legacy);
  for (const Substitution& h : homs.solutions) {
    if (cancel != nullptr && cancel->Poll()) {
      outcome.exhausted = false;
      return outcome;
    }
    Instance image;
    for (const Atom& a : q.body()) image.Insert(Apply(h, a));
    if (!MeetsAcyclicityClass(image.atoms(), ConnectingTerms::kAllTerms,
                              target)) {
      continue;
    }
    ConjunctiveQuery candidate = QueryFromInstance(image, chase.frozen_head);
    if (!tested.Insert(candidate)) continue;
    ++outcome.candidates_tested;
    if (oracle.ContainedInQ(candidate, cancel) == Tri::kYes) {
      outcome.answer = Tri::kYes;
      outcome.witness = std::move(candidate);
      return outcome;
    }
  }
  if (cancel != nullptr && cancel->triggered()) outcome.exhausted = false;
  return outcome;
}

WitnessSearchOutcome FindWitnessInChaseSubsets(const ConjunctiveQuery& q,
                                               const QueryChaseResult& chase,
                                               const ContainmentOracle& oracle,
                                               size_t max_atoms, size_t budget,
                                               acyclic::AcyclicityClass target,
                                               const WitnessTuning& tuning,
                                               CancelToken* cancel) {
  (void)q;  // the chase already encodes q; kept for interface symmetry
  WitnessSearchOutcome outcome;
  const auto& atoms = chase.instance.atoms();
  const size_t m = atoms.size();
  std::vector<Term> required = RequiredHeadTerms(chase);
  CandidateDedup tested(tuning.legacy);
  size_t visits = 0;
  bool truncated = false;

  // Incremental machinery (fast path): connecting vertices per chase atom
  // interned once up front, a push/pop classifier threaded along the DFS
  // path, and required-term coverage maintained by counters — so a DFS
  // node costs a component-local re-check instead of an Instance build
  // plus a from-scratch hypergraph classification.
  std::vector<std::vector<int>> atom_verts;
  std::vector<std::vector<size_t>> atom_required;
  acyclic::IncrementalClassifier inc(target);
  std::vector<int> req_cover(required.size(), 0);
  size_t covered = 0;
  if (!tuning.legacy) {
    atom_verts.resize(m);
    atom_required.resize(m);
    std::unordered_map<Term, int, TermHash> vertex_of;
    for (size_t i = 0; i < m; ++i) {
      // kAllTerms: in a frozen-query chase every term connects.
      for (Term t : atoms[i].DistinctTerms()) {
        atom_verts[i].push_back(
            vertex_of.emplace(t, static_cast<int>(vertex_of.size()))
                .first->second);
      }
      for (size_t k = 0; k < required.size(); ++k) {
        if (atoms[i].Mentions(required[k])) atom_required[i].push_back(k);
      }
    }
  }

  // Stable variable pool for inverse freezing on the fast path: fresh
  // per-candidate names would intern a new symbol for every variable of
  // every candidate; reusing "s$<i>" across candidates interns each name
  // exactly once per process.
  std::vector<Term> var_pool;
  std::vector<uint32_t> subset;
  auto pooled_query = [&]() {
    Substitution rename;
    size_t next_var = 0;
    auto var_of = [&](Term t) -> Term {
      if (t.IsConstant() && !t.IsFrozenNull()) return t;  // real constant
      auto it = rename.find(t);
      if (it != rename.end()) return it->second;
      if (next_var == var_pool.size()) {
        var_pool.push_back(
            Term::Variable("s$" + std::to_string(var_pool.size())));
      }
      Term v = var_pool[next_var++];
      rename.emplace(t, v);
      return v;
    };
    std::vector<Atom> body;
    body.reserve(subset.size());
    for (uint32_t i : subset) {
      const Atom& a = atoms[i];
      std::vector<Term> args;
      args.reserve(a.arity());
      for (Term t : a.args()) args.push_back(var_of(t));
      body.emplace_back(a.predicate(), std::move(args));
    }
    std::vector<Term> head;
    head.reserve(chase.frozen_head.size());
    for (Term t : chase.frozen_head) head.push_back(var_of(t));
    return ConjunctiveQuery(std::move(head), std::move(body));
  };

  auto test_candidate = [&](ConjunctiveQuery candidate) -> bool {
    if (!tested.Insert(candidate)) return false;
    ++outcome.candidates_tested;
    if (oracle.ContainedInQ(candidate, cancel) == Tri::kYes) {
      outcome.answer = Tri::kYes;
      outcome.witness = std::move(candidate);
      return true;
    }
    return false;
  };

  // DFS over index-increasing subsets, testing each acyclic subset that
  // covers the required terms. Small subsets are explored first through
  // iterative deepening on the subset size.
  std::function<bool(size_t, size_t)> dfs = [&](size_t next,
                                                size_t limit) -> bool {
    SEMACYC_FAILPOINT("subsets.visit", cancel);
    if (++visits > budget) {
      truncated = true;
      return false;
    }
    if (cancel != nullptr && cancel->Poll()) {
      truncated = true;  // a fired token truncates like an exhausted budget
      return false;
    }
    if (!subset.empty()) {
      if (tuning.legacy) {
        Instance sub = chase.instance.Restrict(subset);
        bool covers = true;
        for (Term t : required) {
          if (sub.AtomsMentioning(t).empty()) {
            covers = false;
            break;
          }
        }
        if (covers &&
            MeetsAcyclicityClass(sub.atoms(), ConnectingTerms::kAllTerms,
                                 target) &&
            test_candidate(QueryFromInstance(sub, chase.frozen_head))) {
          return true;
        }
      } else if (covered == required.size() && inc.Meets() &&
                 test_candidate(pooled_query())) {
        return true;
      }
    }
    if (subset.size() >= limit) return false;
    for (size_t i = next; i < m; ++i) {
      subset.push_back(static_cast<uint32_t>(i));
      bool pruned = false;
      if (!tuning.legacy) {
        for (size_t k : atom_required[i]) {
          if (req_cover[k]++ == 0) ++covered;
        }
        inc.PushEdge(atom_verts[i]);
        // β/γ/Berge are hereditary: a violated prefix can never recover,
        // so the whole subtree (including this subset itself) is dead.
        pruned = inc.CannotRecover();
      }
      bool found = !pruned && dfs(i + 1, limit);
      if (!tuning.legacy) {
        inc.PopEdge();
        for (size_t k : atom_required[i]) {
          if (--req_cover[k] == 0) --covered;
        }
      }
      subset.pop_back();
      if (found) return true;
      if (truncated) return false;
    }
    return false;
  };

  bool found = false;
  for (size_t limit = 1; limit <= max_atoms && !truncated; ++limit) {
    subset.clear();
    if (dfs(0, limit)) {
      found = true;
      break;
    }
  }
  // A token fired during the last oracle check truncates the search even
  // when no later DFS poll ran to observe it.
  if (cancel != nullptr && cancel->triggered()) truncated = true;
  if (!found) outcome.exhausted = !truncated;
  outcome.visits = visits;
  outcome.classifier_pushes = inc.pushes();
  outcome.classifier_pops = inc.pops();
  return outcome;
}

namespace {

/// Fixed total order on atoms for canonical-growth enumeration: predicate
/// id, then argument handles lexicographically. The allocation-free
/// replacement for comparing EncodeAtom strings.
bool AtomOrderLess(const Atom& a, const Atom& b) {
  if (a.predicate() != b.predicate()) {
    return a.predicate().id() < b.predicate().id();
  }
  for (size_t i = 0; i < a.arity() && i < b.arity(); ++i) {
    if (a.arg(i) != b.arg(i)) {
      return a.arg(i).raw_bits() < b.arg(i).raw_bits();
    }
  }
  return a.arity() < b.arity();
}

/// Canonical enumerator of acyclic candidate queries (strategy
/// "exhaustive"); see the header for the completeness contract.
class CandidateEnumerator {
 public:
  CandidateEnumerator(const ConjunctiveQuery& q, const DependencySet& sigma,
                      const QueryChaseResult& chase,
                      const ContainmentOracle& oracle, size_t max_atoms,
                      size_t budget, acyclic::AcyclicityClass target,
                      const WitnessTuning& tuning, CancelToken* cancel)
      : q_(q),
        chase_(chase),
        oracle_(oracle),
        max_atoms_(max_atoms),
        budget_(budget),
        target_(target),
        tuning_(tuning),
        cancel_(cancel),
        inc_(target),
        hom_(chase.instance),
        use_inc_hom_(!tuning.legacy && tuning.incremental_hom),
        tested_(tuning.legacy) {
    // The incremental session bails from repair search once the token
    // fires; its outcomes are then discarded with the whole enumeration.
    hom_.SetCancel(cancel);
    hom_options_.cancel = cancel;
    // Signature: predicates of q plus head predicates of Σ's tgds (only
    // those can occur in chase(q,Σ), hence in any witness).
    std::unordered_set<uint32_t> seen;
    for (const Atom& a : q.body()) {
      if (seen.insert(a.predicate().id()).second) {
        predicates_.push_back(a.predicate());
      }
    }
    for (const Tgd& t : sigma.tgds) {
      for (const Atom& a : t.head()) {
        if (seen.insert(a.predicate().id()).second) {
          predicates_.push_back(a.predicate());
        }
      }
    }
    // Constants available to candidates: those of q and Σ.
    std::unordered_set<Term> cseen;
    for (const Atom& a : q.body()) {
      for (Term t : a.args()) {
        if (t.IsConstant() && cseen.insert(t).second) constants_.push_back(t);
      }
    }
    for (const Tgd& t : sigma.tgds) {
      for (const Atom& a : t.body()) {
        for (Term arg : a.args()) {
          if (arg.IsConstant() && cseen.insert(arg).second) {
            constants_.push_back(arg);
          }
        }
      }
      for (const Atom& a : t.head()) {
        for (Term arg : a.args()) {
          if (arg.IsConstant() && cseen.insert(arg).second) {
            constants_.push_back(arg);
          }
        }
      }
    }
    int max_arity = 1;
    for (Predicate p : predicates_) {
      max_arity = std::max(max_arity, p.arity());
    }
    // Variable pool: enough for max_atoms atoms of maximal arity.
    size_t pool = max_atoms_ * static_cast<size_t>(max_arity);
    for (size_t i = 0; i < pool; ++i) {
      pool_.push_back(Term::Variable("w$" + std::to_string(i)));
      pool_index_.emplace(pool_.back(), i);
    }
  }

  WitnessSearchOutcome Run() {
    // Enumerate head patterns: set partitions of head positions refining
    // the equality pattern of the frozen head.
    const size_t k = q_.head().size();
    std::vector<int> block(k, -1);
    EnumerateHeadPatterns(0, &block, 0);
    // A fired token may have pruned subtrees silently (a cancelled chase
    // hom check reports "no hom" and the enumeration skips the subtree),
    // so the whole run counts as truncated even if no visit poll tripped.
    if (cancel_ != nullptr && cancel_->triggered()) truncated_ = true;
    outcome_.exhausted = !truncated_;
    outcome_.visits = visits_;
    outcome_.classifier_pushes = inc_.pushes();
    outcome_.classifier_pops = inc_.pops();
    if (use_inc_hom_) outcome_.hom = hom_.stats();
    return outcome_;
  }

 private:
  void EnumerateHeadPatterns(size_t pos, std::vector<int>* block,
                             int num_blocks) {
    if (truncated_ || outcome_.answer == Tri::kYes) return;
    const size_t k = q_.head().size();
    if (pos == k) {
      // Build the head: one fresh variable per block.
      head_.clear();
      head_.resize(k);
      std::vector<Term> block_var(static_cast<size_t>(num_blocks));
      for (int b = 0; b < num_blocks; ++b) {
        block_var[b] = Term::Variable("h$" + std::to_string(b));
      }
      for (size_t i = 0; i < k; ++i) head_[i] = block_var[(*block)[i]];
      // Head variables must map to the frozen head position-wise; seed the
      // candidate search with that binding. Both the binding and the
      // argument choices are loop invariants of the whole pattern — build
      // them once here, not per enumeration node.
      hom_options_.fixed.clear();
      for (size_t i = 0; i < k; ++i) {
        hom_options_.fixed[head_[i]] = chase_.frozen_head[i];
      }
      hom_options_.max_solutions = 1;
      // The incremental session is per head pattern, like the fixed
      // binding it mirrors: Reset re-seeds it and keeps pooled storage.
      if (use_inc_hom_) hom_.Reset(hom_options_.fixed);
      choices_ = ArgChoices();
      atoms_.clear();
      used_frontier_ = 0;
      Search();
      return;
    }
    // Standard restricted-growth enumeration of set partitions.
    for (int b = 0; b <= num_blocks; ++b) {
      // Refinement constraint: same block => equal frozen head terms.
      bool ok = true;
      for (size_t j = 0; j < pos; ++j) {
        if ((*block)[j] == b &&
            chase_.frozen_head[j] != chase_.frozen_head[pos]) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      (*block)[pos] = b;
      EnumerateHeadPatterns(pos + 1, block, std::max(num_blocks, b + 1));
      (*block)[pos] = -1;
    }
  }

  /// Terms usable as atom arguments: head variables, the whole pool (the
  /// in-order-introduction rule is enforced position-wise in BuildArgs),
  /// and the known constants.
  std::vector<Term> ArgChoices() {
    std::vector<Term> out;
    std::unordered_set<Term> seen;
    for (Term h : head_) {
      if (seen.insert(h).second) out.push_back(h);
    }
    for (Term v : pool_) out.push_back(v);
    for (Term c : constants_) out.push_back(c);
    return out;
  }

  std::string EncodeAtom(const Atom& a) {
    std::string s = std::to_string(a.predicate().id()) + "(";
    for (Term t : a.args()) s += std::to_string(t.raw_bits()) + ",";
    return s + ")";
  }

  /// Pre-PR frontier computation (legacy mode only): rescans every atom
  /// argument against the whole pool — O(atoms · arity · pool) per
  /// BuildArgs position. The fast path threads `used` down the recursion
  /// instead (see BuildArgs).
  size_t CountUsedPool(const std::vector<Atom>& atoms) {
    size_t used = 0;
    for (const Atom& a : atoms) {
      for (Term t : a.args()) {
        for (size_t i = 0; i < pool_.size(); ++i) {
          if (t == pool_[i]) used = std::max(used, i + 1);
        }
      }
    }
    return used;
  }

  /// The atom's connecting vertices (kVariables: constants never connect),
  /// interned against the enumerator-wide vertex table. Fills the shared
  /// scratch buffer (the classifier copies and sorts/dedups).
  const std::vector<int>& VarVertices(const Atom& atom) {
    verts_scratch_.clear();
    for (Term t : atom.args()) {
      if (!t.IsVariable()) continue;
      verts_scratch_.push_back(
          vertex_of_.emplace(t, static_cast<int>(vertex_of_.size()))
              .first->second);
    }
    return verts_scratch_;
  }

  bool HeadCovered() {
    for (Term h : head_) {
      bool found = false;
      for (const Atom& a : atoms_) {
        if (a.Mentions(h)) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  }

  /// The candidate (with current atoms) still maps into the chase with the
  /// head bound position-wise — the certificate for q ⊆Σ candidate.
  bool MapsIntoChase() {
    return FindHomomorphisms(atoms_, chase_.instance, hom_options_).found;
  }

  void TestCandidate() {
    if (atoms_.empty() || !HeadCovered()) return;
    bool meets = tuning_.legacy
                     ? MeetsAcyclicityClass(atoms_, ConnectingTerms::kVariables,
                                            target_)
                     : inc_.Meets();
    if (!meets) return;
    ConjunctiveQuery candidate(head_, atoms_);
    if (!tested_.Insert(candidate)) return;
    ++outcome_.candidates_tested;
    if (oracle_.ContainedInQ(candidate, cancel_) == Tri::kYes) {
      outcome_.answer = Tri::kYes;
      outcome_.witness = std::move(candidate);
    }
  }

  void Search() {
    if (truncated_ || outcome_.answer == Tri::kYes) return;
    SEMACYC_FAILPOINT("exhaustive.visit", cancel_);
    if (++visits_ > budget_) {
      truncated_ = true;
      return;
    }
    if (cancel_ != nullptr && cancel_->Poll()) {
      truncated_ = true;  // a fired token truncates like an exhausted budget
      return;
    }
    TestCandidate();
    if (outcome_.answer == Tri::kYes) return;
    if (atoms_.size() >= max_atoms_) return;
    std::string last_code;
    if (tuning_.legacy && !atoms_.empty()) last_code = EncodeAtom(atoms_.back());
    for (Predicate p : predicates_) {
      std::vector<Term> args(static_cast<size_t>(p.arity()));
      BuildArgs(p, 0, &args, choices_, last_code, used_frontier_);
      if (truncated_ || outcome_.answer == Tri::kYes) return;
    }
  }

  void BuildArgs(Predicate p, size_t pos, std::vector<Term>* args,
                 const std::vector<Term>& choices,
                 const std::string& last_code, size_t used) {
    if (truncated_ || outcome_.answer == Tri::kYes) return;
    if (pos == args->size()) {
      Atom atom(p, *args);
      // Canonical growth: non-decreasing atom order; no duplicate atoms.
      if (!atoms_.empty()) {
        if (tuning_.legacy) {
          if (EncodeAtom(atom) < last_code) return;
        } else if (AtomOrderLess(atom, atoms_.back())) {
          return;
        }
      }
      if (tuning_.legacy) {
        // Pre-PR duplicate check: a linear scan of the whole prefix.
        for (const Atom& existing : atoms_) {
          if (existing == atom) return;
        }
      } else {
        // Atoms grow in non-decreasing AtomOrderLess order, so only the
        // trailing run of order-equal atoms can collide with the
        // candidate: the scan stops at the first atom strictly below it.
        for (auto it = atoms_.rbegin();
             it != atoms_.rend() && !AtomOrderLess(*it, atom); ++it) {
          if (*it == atom) return;
        }
      }
      atoms_.push_back(atom);
      size_t saved_frontier = used_frontier_;
      used_frontier_ = used;
      if (tuning_.legacy) {
        if (MapsIntoChase()) Search();
      } else {
        // The classifier push costs nanoseconds (scratch deciders), so it
        // runs before the chase homomorphism: a hereditarily violated
        // prefix can never recover, and pruning it here skips the hom for
        // the whole subtree.
        inc_.PushEdge(VarVertices(atom));
        if (!inc_.CannotRecover()) {
          if (use_inc_hom_) {
            // Incremental per-atom chase check, mirroring the classifier's
            // push/pop discipline: the session's stack tracks atoms_ along
            // the DFS path, so this push costs O(what the atom changed)
            // instead of a from-scratch backtracking search.
            if (hom_.PushAtom(atom)) Search();
            hom_.PopAtom();
          } else if (MapsIntoChase()) {
            Search();
          }
        }
        inc_.PopEdge();
      }
      used_frontier_ = saved_frontier;
      atoms_.pop_back();
      return;
    }
    // Fresh pool variables must be introduced in order; `used` carries the
    // frontier (pool variables consumed by atoms_ plus the args prefix)
    // down the recursion instead of rescanning atoms and prefix.
    if (tuning_.legacy) {
      // Pre-PR: recompute the frontier from scratch at every position.
      size_t rescan = CountUsedPool(atoms_);
      for (size_t i = 0; i < pos; ++i) {
        for (size_t j = 0; j < pool_.size(); ++j) {
          if ((*args)[i] == pool_[j]) rescan = std::max(rescan, j + 1);
        }
      }
      for (Term t : choices) {
        bool skip = false;
        for (size_t j = 0; j < pool_.size(); ++j) {
          if (t == pool_[j] && j > rescan) {
            skip = true;
            break;
          }
        }
        if (skip) continue;
        (*args)[pos] = t;
        BuildArgs(p, pos + 1, args, choices, last_code, used);
      }
      return;
    }
    for (Term t : choices) {
      size_t next_used = used;
      auto it = pool_index_.find(t);
      if (it != pool_index_.end()) {
        if (it->second > used) continue;  // beyond the next fresh one
        next_used = std::max(used, it->second + 1);
      }
      (*args)[pos] = t;
      BuildArgs(p, pos + 1, args, choices, last_code, next_used);
    }
  }

  const ConjunctiveQuery& q_;
  const QueryChaseResult& chase_;
  const ContainmentOracle& oracle_;
  size_t max_atoms_;
  size_t budget_;
  acyclic::AcyclicityClass target_;
  WitnessTuning tuning_;
  CancelToken* cancel_;

  std::vector<Predicate> predicates_;
  std::vector<Term> constants_;
  std::vector<Term> pool_;
  std::unordered_map<Term, size_t, TermHash> pool_index_;
  std::vector<Term> head_;
  std::vector<Atom> atoms_;
  /// Per-head-pattern invariants, hoisted out of the enumeration loop.
  std::vector<Term> choices_;
  HomOptions hom_options_;
  acyclic::IncrementalClassifier inc_;
  /// Incremental chase-homomorphism session (fast path): PushAtom/PopAtom
  /// mirror inc_'s PushEdge/PopEdge along the DFS path, replacing the
  /// per-push MapsIntoChase full search.
  IncrementalHomomorphism hom_;
  bool use_inc_hom_;
  std::unordered_map<Term, int, TermHash> vertex_of_;
  std::vector<int> verts_scratch_;
  /// Pool variables consumed by atoms_ (the in-order-introduction
  /// frontier), maintained incrementally across atom pushes/pops.
  size_t used_frontier_ = 0;
  CandidateDedup tested_;
  size_t visits_ = 0;
  bool truncated_ = false;
  WitnessSearchOutcome outcome_;
};

}  // namespace

WitnessSearchOutcome ExhaustiveWitnessSearch(const ConjunctiveQuery& q,
                                             const DependencySet& sigma,
                                             const QueryChaseResult& chase,
                                             const ContainmentOracle& oracle,
                                             size_t max_atoms, size_t budget,
                                             acyclic::AcyclicityClass target,
                                             const WitnessTuning& tuning,
                                             CancelToken* cancel) {
  CandidateEnumerator enumerator(q, sigma, chase, oracle, max_atoms, budget,
                                 target, tuning, cancel);
  return enumerator.Run();
}

}  // namespace semacyc
