#ifndef SEMACYC_SEMACYC_APPROXIMATION_H_
#define SEMACYC_SEMACYC_APPROXIMATION_H_

#include <optional>
#include <vector>

#include "semacyc/decider.h"

namespace semacyc {

/// An acyclic approximation of q under Σ (§8.2): an acyclic CQ q' with
/// q' ⊆Σ q such that no collected acyclic q'' satisfies
/// q' ⊊Σ q'' ⊆Σ q.
struct ApproximationResult {
  ConjunctiveQuery approximation;
  /// True when the approximation is in fact equivalent to q under Σ
  /// (i.e., q was semantically acyclic and this is an exact reformulation).
  bool is_exact = false;
  /// All verified candidates the search collected (the set A(q) of §8.2,
  /// up to the explored budget).
  std::vector<ConjunctiveQuery> candidates;
  /// Maximality is relative to the explored candidate set; true when the
  /// candidate enumeration was exhaustive within the theoretical bound.
  bool maximality_exact = false;
};

/// Computes an acyclic approximation of q under Σ. Always succeeds for
/// constant-free q: the paper's fallback witness (a single variable x with
/// one atom R(x,...,x) per predicate of q) is contained in q under every Σ.
std::optional<ApproximationResult> AcyclicApproximation(
    const ConjunctiveQuery& q, const DependencySet& sigma,
    const SemAcOptions& options = {});

/// The §8.2 fallback: one variable x, body {R(x,..,x) : R in q's body},
/// head (x,...,x). Contained in every constant-free q.
ConjunctiveQuery TrivialAcyclicUnderApproximation(const ConjunctiveQuery& q);

}  // namespace semacyc

#endif  // SEMACYC_SEMACYC_APPROXIMATION_H_
