#ifndef SEMACYC_SEMACYC_UCQ_SEMAC_H_
#define SEMACYC_SEMACYC_UCQ_SEMAC_H_

#include <optional>
#include <vector>

#include "semacyc/decider.h"

namespace semacyc {

/// Semantic acyclicity for UCQs (§8.1, Propositions 33/34): a UCQ Q is
/// semantically acyclic under Σ iff every disjunct is either redundant
/// (contained under Σ in another disjunct) or equivalent under Σ to an
/// acyclic CQ of bounded size.
struct UcqSemAcResult {
  SemAcAnswer answer = SemAcAnswer::kUnknown;
  /// When kYes: an equivalent union of acyclic CQs.
  std::optional<UnionQuery> witness;
  /// Per-disjunct diagnostics.
  struct DisjunctInfo {
    bool redundant = false;
    SemAcResult decision;  // meaningful when !redundant
  };
  std::vector<DisjunctInfo> disjuncts;
  bool exact = false;
};

UcqSemAcResult DecideUcqSemanticAcyclicity(const UnionQuery& Q,
                                           const DependencySet& sigma,
                                           const SemAcOptions& options = {});

}  // namespace semacyc

#endif  // SEMACYC_SEMACYC_UCQ_SEMAC_H_
