#ifndef SEMACYC_SEMACYC_WITNESS_SEARCH_H_
#define SEMACYC_SEMACYC_WITNESS_SEARCH_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "acyclic/classify.h"
#include "chase/query_chase.h"
#include "rewrite/ucq_rewriter.h"

namespace semacyc {

/// Oracle answering "candidate ⊆Σ q" for a fixed (q, Σ). When Σ is
/// tgd-only and the UCQ rewriting of q is complete, candidates are checked
/// against the cached rewriting (exact, no chase of the candidate needed);
/// otherwise the candidate is chased (exact when that chase saturates).
///
/// With `memoize = true` (the default) the per-candidate work is cut two
/// ways:
///  * answers are memoized by the hash-interned canonical form of the
///    candidate (collisions resolved with AreIsomorphic, so the cache is
///    exact): isomorphic candidates revisited across witness strategies,
///    head patterns and iterative-deepening rounds hit the cache instead
///    of re-chasing;
///  * for egd-free Σ, a predicate-reachability prefilter answers kNo
///    without chasing when some predicate of q is unreachable (at the
///    predicate level, an over-approximation of derivability) from the
///    candidate's predicates — no chase of the candidate, however long,
///    can then produce the atoms q needs, so the rejection is definitive;
///  * when Σ is egd-free and no tgd head predicate occurs in q, the chase
///    of the candidate can never add an atom the q-homomorphism could
///    use, so containment degenerates to the classical Chandra–Merlin
///    check against the candidate itself — exact, chase-free, and cheap
///    enough that memoizing it would cost more than deciding.
/// `memoize = false` reproduces the pre-PR per-candidate cost and is the
/// bench baseline.
class ContainmentOracle {
 public:
  ContainmentOracle(const ConjunctiveQuery& q, const DependencySet& sigma,
                    const ChaseOptions& chase_options,
                    const RewriteOptions& rewrite_options,
                    bool try_rewriting = true, bool memoize = true);

  /// candidate ⊆Σ q.
  Tri ContainedInQ(const ConjunctiveQuery& candidate) const;
  /// True when kNo answers are exact.
  bool exact() const { return exact_; }
  /// Whether the cached-rewriting fast path is active.
  bool uses_rewriting() const { return rewriting_.has_value(); }
  /// Memoization counters (hits are answers served without a chase or
  /// rewriting evaluation; prefiltered counts instant-NO rejections).
  size_t cache_hits() const { return hits_; }
  size_t cache_misses() const { return misses_; }
  size_t prefiltered() const { return prefiltered_; }

 private:
  Tri Decide(const ConjunctiveQuery& candidate) const;
  Tri DecideChaseFree(const ConjunctiveQuery& candidate) const;
  bool PassesPredicateFilter(const ConjunctiveQuery& candidate) const;

  const ConjunctiveQuery& q_;
  const DependencySet& sigma_;
  ChaseOptions chase_options_;
  std::optional<RewriteResult> rewriting_;
  bool exact_ = false;
  bool memoize_;
  /// Predicate-reachability prefilter state: for each distinct predicate
  /// of q, the set of predicates from which it is reachable in Σ's
  /// body-to-head predicate graph (ANY-body over-approximation).
  bool prefilter_ = false;
  /// Σ cannot contribute atoms over q's predicates: decide classically.
  bool chase_free_ = false;
  std::vector<std::unordered_set<uint32_t>> q_pred_sources_;
  mutable std::unordered_map<uint64_t,
                             std::vector<std::pair<ConjunctiveQuery, Tri>>>
      memo_;
  mutable size_t hits_ = 0;
  mutable size_t misses_ = 0;
  mutable size_t prefiltered_ = 0;
};

/// Per-candidate machinery switch for the witness strategies. The default
/// is the incremental pipeline: push/pop acyclicity classification along
/// the DFS path (with hereditary subtree pruning for β/γ/Berge targets)
/// and fingerprint-based candidate dedup. `legacy = true` reproduces the
/// pre-incremental pipeline — a from-scratch hypergraph build and batch
/// decider run per candidate, string StructuralKey dedup — and exists so
/// benches can measure one against the other at identical budgets.
struct WitnessTuning {
  bool legacy = false;
};

/// Outcome of one witness-search strategy.
struct WitnessSearchOutcome {
  Tri answer = Tri::kUnknown;
  std::optional<ConjunctiveQuery> witness;
  /// True when the strategy exhausted its whole search space (as opposed
  /// to stopping on a budget); needed for kNo claims.
  bool exhausted = false;
  size_t candidates_tested = 0;
};

/// Every strategy takes a `target` acyclicity class: candidates are kept
/// only when their hypergraph lies in `target` or a stricter class. kAlpha
/// reproduces the paper's notion; kBeta/kGamma search for witnesses from
/// the stricter strata of the hierarchy (see acyclic/classify.h).

/// Strategy "images": every homomorphic image of q inside the chase whose
/// atom set meets `target` is a candidate (q ⊆Σ image by construction).
WitnessSearchOutcome FindWitnessInQueryImages(
    const ConjunctiveQuery& q, const QueryChaseResult& chase,
    const ContainmentOracle& oracle, size_t max_homs,
    acyclic::AcyclicityClass target = acyclic::AcyclicityClass::kAlpha,
    const WitnessTuning& tuning = {});

/// Strategy "subsets": `target`-acyclic sub-instances of the chase
/// mentioning all answer terms, up to `max_atoms` atoms (q ⊆Σ subset by
/// construction).
WitnessSearchOutcome FindWitnessInChaseSubsets(
    const ConjunctiveQuery& q, const QueryChaseResult& chase,
    const ContainmentOracle& oracle, size_t max_atoms, size_t budget,
    acyclic::AcyclicityClass target = acyclic::AcyclicityClass::kAlpha,
    const WitnessTuning& tuning = {});

/// Strategy "exhaustive": canonical enumeration of `target`-acyclic CQs up
/// to `max_atoms` atoms over the predicates that can occur in chase(q,Σ),
/// pruned by requiring a homomorphism into the chase (this certifies
/// q ⊆Σ candidate). Complete — i.e., a kNo answer is definitive — when
/// (a) the enumeration exhausted (no budget hit), (b) the chase saturated,
/// (c) the oracle is exact, (d) `max_atoms` is at least the paper's
/// small-query bound, and (e) target == kAlpha (the small-query theorems
/// are proven for α-acyclic witnesses only). The caller checks (b)–(e).
WitnessSearchOutcome ExhaustiveWitnessSearch(
    const ConjunctiveQuery& q, const DependencySet& sigma,
    const QueryChaseResult& chase, const ContainmentOracle& oracle,
    size_t max_atoms, size_t budget,
    acyclic::AcyclicityClass target = acyclic::AcyclicityClass::kAlpha,
    const WitnessTuning& tuning = {});

}  // namespace semacyc

#endif  // SEMACYC_SEMACYC_WITNESS_SEARCH_H_
